// Time-evolving graph history — the Section IV scenario.
//
// Models a Wikipedia-like network whose links appear and disappear over
// time. The full history is compressed into a differential TCSR
// (Algorithm 5); the example then answers the questions §IV motivates:
// was a link active at time t, what did a page link to at time t, and how
// does the whole graph look at a reconstructed snapshot — plus the storage
// comparison against storing every snapshot.
//
//   $ ./temporal_history [--nodes 5000] [--events 100000] [--frames 24]
#include <cstdio>

#include "graph/generators.hpp"
#include "tcsr/baselines.hpp"
#include "tcsr/journeys.hpp"
#include "tcsr/tcsr.hpp"
#include "util/flags.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pcq;
  using graph::TimeFrame;
  using graph::VertexId;

  util::Flags flags(argc, argv,
                    {{"nodes", "page count (default 5000)"},
                     {"events", "link change events (default 100000)"},
                     {"frames", "history length in frames (default 24)"},
                     {"threads", "processors (default 4)"}});
  const auto nodes = static_cast<VertexId>(flags.get_int("nodes", 5000));
  const auto events_n = static_cast<std::size_t>(flags.get_int("events", 100'000));
  const auto frames = static_cast<TimeFrame>(flags.get_int("frames", 24));
  const int threads = static_cast<int>(flags.get_int("threads", 4));

  // A revision history: each event toggles one link at one frame.
  const graph::TemporalEdgeList history =
      graph::evolving_graph(nodes, events_n, frames, 3, threads);
  std::printf("Revision history: %s link events over %u frames "
              "(%s as a raw triplet list)\n",
              util::with_commas(history.size()).c_str(), frames,
              util::human_bytes(history.size_bytes()).c_str());

  // Compress the full history (Algorithm 5).
  tcsr::TcsrBuildTimings timings;
  util::Timer timer;
  const auto tcsr =
      tcsr::DifferentialTcsr::build(history, nodes, frames, threads, &timings);
  std::printf("Differential TCSR built in %s with %d processors -> %s "
              "(%s state-change edges kept)\n\n",
              util::human_seconds(timer.seconds()).c_str(), threads,
              util::human_bytes(tcsr.size_bytes()).c_str(),
              util::with_commas(tcsr.num_delta_edges()).c_str());

  // Question 1: the lifecycle of one link.
  util::SplitMix64 rng(17);
  VertexId u = 0, v = 0;
  // find a link that actually toggles more than once
  for (int attempt = 0; attempt < 10'000; ++attempt) {
    const auto& e = history.edges()[rng.next_below(history.size())];
    int toggles = 0;
    for (TimeFrame t = 0; t < frames; ++t)
      if (tcsr.delta(t).has_edge(e.u, e.v)) ++toggles;
    if (toggles >= 2) {
      u = e.u;
      v = e.v;
      break;
    }
  }
  std::printf("Lifecycle of link (%u -> %u):\n  ", u, v);
  for (TimeFrame t = 0; t < frames; ++t)
    std::printf("%c", tcsr.edge_active(u, v, t) ? '#' : '.');
  std::printf("   ('#' = active at that frame)\n\n");

  // Question 2: what did page u link to at the first and last frame?
  const auto first_links = tcsr.neighbors_at(u, 0);
  const auto last_links = tcsr.neighbors_at(u, frames - 1);
  std::printf("Page %u linked to %zu pages at frame 0, %zu at frame %u.\n\n",
              u, first_links.size(), last_links.size(), frames - 1);

  // Question 3: reconstruct the midpoint snapshot in parallel (the
  // prefix-XOR over deltas, Algorithm 1's schedule).
  timer.restart();
  const csr::CsrGraph snapshot = tcsr.snapshot_at(frames / 2, threads);
  std::printf("Snapshot at frame %u: %s active links "
              "(reconstructed in %s)\n\n",
              frames / 2, util::with_commas(snapshot.num_edges()).c_str(),
              util::human_seconds(timer.seconds()).c_str());

  // Question 4: foremost journeys (related work [22]) — how information
  // starting at page u at frame 0 can spread through appearing links.
  timer.restart();
  const auto arrival = tcsr::foremost_arrival(tcsr, u, 0, threads);
  std::size_t reached = 0;
  for (auto a : arrival)
    if (a != tcsr::kNeverReached) ++reached;
  std::printf("Information from page %u at frame 0 reaches %zu/%u pages by "
              "the end of history (%s).\n",
              u, reached, nodes, util::human_seconds(timer.seconds()).c_str());
  const auto early = tcsr::reachable_in_window(tcsr, u, 0, frames / 4, threads);
  std::printf("...%zu of them within the first quarter (frames 0-%u).\n\n",
              early.size(), frames / 4);

  // Question 5: the full contact view of one link — its maximal activity
  // intervals (the ck-d-tree "contacts" of the related work).
  std::printf("Contacts of link (%u -> %u):", u, v);
  for (const auto& iv : tcsr.activity_intervals(u, v))
    std::printf(" [%u, %u]", iv.begin, iv.end);
  std::printf("\n\n");

  // Storage comparison against keeping every snapshot (the approach §IV
  // calls "space-consuming").
  const auto snaps = tcsr::SnapshotSequence::build(history, nodes, frames, threads);
  const auto evelog = tcsr::EveLog::build(history, nodes, threads);
  std::printf("Storage for the full history:\n");
  std::printf("  differential TCSR : %10s\n",
              util::human_bytes(tcsr.size_bytes()).c_str());
  std::printf("  snapshot per frame: %10s (%.1fx larger)\n",
              util::human_bytes(snaps.size_bytes()).c_str(),
              static_cast<double>(snaps.size_bytes()) / tcsr.size_bytes());
  std::printf("  EveLog            : %10s\n",
              util::human_bytes(evelog.size_bytes()).c_str());
  return 0;
}
