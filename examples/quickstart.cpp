// Quickstart: the paper's running example, end to end.
//
// Builds the 10-node graph of Table I (as its upper triangle, exactly
// Figure 1), constructs the bit-packed CSR in parallel, prints the two CSR
// arrays, and runs each of the Section V query algorithms on it.
//
//   $ ./quickstart
#include <cstdio>

#include "csr/builder.hpp"
#include "csr/query.hpp"
#include "graph/edge_list.hpp"
#include "util/format.hpp"

int main() {
  using namespace pcq;
  using graph::Edge;
  using graph::VertexId;

  // Table I's upper triangle: (0,5) (1,6) (1,7) (2,7) (3,8) (3,9) (4,9).
  graph::EdgeList list({{0, 5}, {1, 6}, {1, 7}, {2, 7}, {3, 8}, {3, 9}, {4, 9}});
  std::printf("Input: %zu edges over %u nodes (Table I, upper triangle)\n\n",
              list.size(), list.num_nodes());

  // Parallel construction (Algorithms 1-4) with 4 "processors".
  csr::CsrBuildTimings timings;
  const csr::BitPackedCsr packed =
      csr::build_bitpacked_csr_from_sorted(list, 10, /*num_threads=*/4,
                                           &timings);

  // Figure 1's two arrays.
  std::printf("Degree array (iA, cumulative): ");
  for (VertexId u = 0; u <= 10; ++u)
    std::printf("%llu ", static_cast<unsigned long long>(packed.offset(u)));
  std::printf("\nNeighbor list (jA):            ");
  for (std::size_t i = 0; i < packed.num_edges(); ++i)
    std::printf("%u ", packed.column(i));
  std::printf("\n\n");

  std::printf("Bit widths: iA %u bits/entry, jA %u bits/entry -> %s total\n",
              packed.offset_bits(), packed.column_bits(),
              util::human_bytes(packed.size_bytes()).c_str());
  std::printf("Raw edge list was %s.\n\n",
              util::human_bytes(list.size_bytes()).c_str());

  // Algorithm 6: batch neighbourhood queries.
  const std::vector<VertexId> users{1, 3};
  const auto rows = csr::batch_neighbors(packed, users, 4);
  for (std::size_t i = 0; i < users.size(); ++i) {
    std::printf("neighbors(%u) = { ", users[i]);
    for (VertexId v : rows[i]) std::printf("%u ", v);
    std::printf("}\n");
  }

  // Algorithm 7: batch edge existence.
  const std::vector<Edge> queries{{1, 7}, {2, 9}, {4, 9}};
  const auto exists = csr::batch_edge_existence(packed, queries, 4);
  for (std::size_t i = 0; i < queries.size(); ++i)
    std::printf("edge (%u, %u): %s\n", queries[i].u, queries[i].v,
                exists[i] ? "present" : "absent");

  // Algorithm 8: one query, the row split across processors.
  std::printf("intra-row search for (3, 9): %s\n",
              csr::edge_exists_intra_row(packed, 3, 9, 4) ? "present"
                                                          : "absent");
  std::printf("\nConstruction phases: degree %.1f us, scan %.1f us, "
              "fill %.1f us, pack %.1f us\n",
              timings.degree * 1e6, timings.scan * 1e6, timings.fill * 1e6,
              timings.pack * 1e6);
  return 0;
}
