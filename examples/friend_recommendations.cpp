// Friend-of-friend recommendations on a compressed social network — the
// workload the paper's introduction motivates ("checking who are all the
// acquaintances of a given user", §V).
//
// Generates a Pokec-shaped social graph, compresses it to a bit-packed
// CSR, then serves a batch of recommendation requests: for each user, the
// most frequent friends-of-friends who are not yet friends. All reads go
// through the Section V parallel query algorithms — the graph is never
// decompressed.
//
//   $ ./friend_recommendations [--scale 0.01] [--users 50] [--threads 4]
#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "csr/builder.hpp"
#include "csr/query.hpp"
#include "graph/generators.hpp"
#include "util/flags.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pcq;
  using graph::VertexId;

  util::Flags flags(argc, argv,
                    {{"scale", "fraction of the Pokec preset (default 0.01)"},
                     {"users", "number of users to serve (default 50)"},
                     {"threads", "processors (default 4)"},
                     {"top", "recommendations per user (default 5)"}});
  const double scale = flags.get_double("scale", 0.01);
  const auto users_n = static_cast<std::size_t>(flags.get_int("users", 50));
  const int threads = static_cast<int>(flags.get_int("threads", 4));
  const auto top_k = static_cast<std::size_t>(flags.get_int("top", 5));

  // A Pokec-shaped friendship graph, symmetrized (friendship is mutual).
  graph::EdgeList list = graph::make_preset_graph(
      graph::preset_by_name("Pokec"), scale, 7, threads);
  list.symmetrize();
  list.sort(threads);
  list.dedupe();
  const VertexId n = list.num_nodes();

  util::Timer build_timer;
  const csr::BitPackedCsr network =
      csr::build_bitpacked_csr_from_sorted(list, n, threads);
  std::printf("Social network: %s users, %s friendships -> %s compressed "
              "(built in %s with %d processors)\n\n",
              util::with_commas(n).c_str(),
              util::with_commas(list.size() / 2).c_str(),
              util::human_bytes(network.size_bytes()).c_str(),
              util::human_seconds(build_timer.seconds()).c_str(), threads);

  // Pick users with at least a few friends so recommendations exist.
  util::SplitMix64 rng(11);
  std::vector<VertexId> users;
  while (users.size() < users_n) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    if (network.degree(u) >= 3) users.push_back(u);
  }

  // Stage 1 (Algorithm 6): fetch every user's friend list in one parallel
  // batch.
  util::Timer serve_timer;
  const auto friend_lists = csr::batch_neighbors(network, users, threads);

  // Stage 2: fetch all friends-of-friends rows, again as one batch.
  std::vector<VertexId> fof_queries;
  for (const auto& friends : friend_lists)
    fof_queries.insert(fof_queries.end(), friends.begin(), friends.end());
  const auto fof_rows = csr::batch_neighbors(network, fof_queries, threads);

  // Stage 3: per user, rank candidates by mutual-friend count.
  std::size_t cursor = 0;
  std::size_t printed = 0;
  const double serve_ms = serve_timer.millis();
  for (std::size_t i = 0; i < users.size(); ++i) {
    const VertexId u = users[i];
    const auto& friends = friend_lists[i];
    std::unordered_map<VertexId, int> mutual;
    for (std::size_t j = 0; j < friends.size(); ++j) {
      for (VertexId candidate : fof_rows[cursor + j]) {
        if (candidate == u) continue;
        if (std::binary_search(friends.begin(), friends.end(), candidate))
          continue;  // already friends
        ++mutual[candidate];
      }
    }
    cursor += friends.size();

    std::vector<std::pair<int, VertexId>> ranked;
    ranked.reserve(mutual.size());
    for (const auto& [candidate, count] : mutual)
      ranked.emplace_back(count, candidate);
    std::sort(ranked.rbegin(), ranked.rend());

    if (printed < 5) {  // show the first few users' results
      std::printf("user %-8u (%u friends): recommend ", u, network.degree(u));
      for (std::size_t k = 0; k < std::min(top_k, ranked.size()); ++k)
        std::printf("%u(%d mutual) ", ranked[k].second, ranked[k].first);
      std::printf("\n");
      ++printed;
    }
  }

  std::printf("\nServed %zu users (%zu row decodes) in %.2f ms using %d "
              "processors.\n",
              users.size(), users.size() + fof_queries.size(), serve_ms,
              threads);
  return 0;
}
