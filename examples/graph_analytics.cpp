// Full analytics pass over a compressed social network.
//
// Demonstrates that the bit-packed CSR is a first-class analytics
// substrate: BFS, connected components, PageRank, triangle counting and
// degree statistics all run against the (bit-packed or plain) CSR built by
// the parallel pipeline — the paper's end goal of "efficient parallel
// graph processing" (§VII).
//
//   $ ./graph_analytics [--graph LiveJournal] [--scale 0.005] [--threads 4]
#include <algorithm>
#include <cstdio>

#include "algos/anf.hpp"
#include "algos/bfs.hpp"
#include "algos/betweenness.hpp"
#include "algos/clustering.hpp"
#include "algos/communities.hpp"
#include "algos/components.hpp"
#include "algos/kcore.hpp"
#include "algos/pagerank.hpp"
#include "algos/stats.hpp"
#include "algos/triangles.hpp"
#include "csr/builder.hpp"
#include "graph/generators.hpp"
#include "util/flags.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pcq;
  using graph::VertexId;

  util::Flags flags(argc, argv,
                    {{"graph", "preset name (default LiveJournal)"},
                     {"scale", "fraction of full size (default 0.005)"},
                     {"threads", "processors (default 4)"}});
  const auto& preset = graph::preset_by_name(flags.get("graph", "LiveJournal"));
  const double scale = flags.get_double("scale", 0.005);
  const int threads = static_cast<int>(flags.get_int("threads", 4));

  graph::EdgeList list = graph::make_preset_graph(preset, scale, 42, threads);
  list.symmetrize();
  list.sort(threads);
  list.dedupe();
  const VertexId n = list.num_nodes();

  util::Timer timer;
  const csr::CsrGraph csr = csr::build_csr_from_sorted(list, n, threads);
  const csr::BitPackedCsr packed = csr::BitPackedCsr::from_csr(csr, threads);
  std::printf("%s @ scale %.4f: %s nodes, %s directed edges\n",
              preset.name.c_str(), scale, util::with_commas(n).c_str(),
              util::with_commas(csr.num_edges()).c_str());
  std::printf("compressed to %s (%.2f bits/edge) in %s\n\n",
              util::human_bytes(packed.size_bytes()).c_str(),
              8.0 * packed.size_bytes() / csr.num_edges(),
              util::human_seconds(timer.seconds()).c_str());

  // Degree profile (validates the social-network skew of the workload).
  const auto stats = algos::degree_stats(csr, threads);
  std::printf("degrees: mean %.2f, median %.0f, p99 %.0f, max %u, "
              "gini %.3f\n",
              stats.mean, stats.p50, stats.p99, stats.max, stats.gini);

  // BFS from the highest-degree hub, straight off the packed structure.
  VertexId hub = 0;
  for (VertexId u = 0; u < n; ++u)
    if (csr.degree(u) > csr.degree(hub)) hub = u;
  timer.restart();
  const auto dist = algos::bfs(packed, hub, threads);
  std::size_t reached = 0;
  std::uint32_t eccentricity = 0;
  for (auto d : dist)
    if (d != algos::kUnreachable) {
      ++reached;
      eccentricity = std::max(eccentricity, d);
    }
  std::printf("BFS from hub %u: reached %s nodes, eccentricity %u (%s, on "
              "the packed CSR)\n",
              hub, util::with_commas(reached).c_str(), eccentricity,
              util::human_seconds(timer.seconds()).c_str());

  // Connected components.
  timer.restart();
  const auto labels = algos::connected_components_label_prop(csr, threads);
  std::printf("connected components: %s (%s)\n",
              util::with_commas(algos::count_components(labels)).c_str(),
              util::human_seconds(timer.seconds()).c_str());

  // PageRank top-5.
  timer.restart();
  const auto pr = algos::pagerank(csr, {}, threads);
  std::vector<VertexId> order(n);
  for (VertexId v = 0; v < n; ++v) order[v] = v;
  std::partial_sort(order.begin(), order.begin() + std::min<VertexId>(5, n),
                    order.end(), [&](VertexId a, VertexId b) {
                      return pr.scores[a] > pr.scores[b];
                    });
  std::printf("pagerank (%d iterations, %s): top nodes ", pr.iterations,
              util::human_seconds(timer.seconds()).c_str());
  for (VertexId i = 0; i < std::min<VertexId>(5, n); ++i)
    std::printf("%u ", order[i]);
  std::printf("\n");

  // Cohesion metrics: k-core decomposition and clustering coefficients.
  timer.restart();
  const auto coreness = algos::kcore_peeling(csr);
  std::printf("degeneracy (max k-core): %u (%s)\n",
              algos::degeneracy(coreness),
              util::human_seconds(timer.seconds()).c_str());
  timer.restart();
  const auto clustering = algos::clustering_coefficients(csr, threads);
  std::printf("clustering: average %.4f, global %.4f (%s)\n",
              clustering.average, clustering.global,
              util::human_seconds(timer.seconds()).c_str());

  // Sampled betweenness centrality (the intro's "edge betweenness of the
  // highways" analysis, node flavour, estimated from 64 sources).
  timer.restart();
  const auto bc = algos::betweenness_sampled(csr, 64, 7, threads);
  VertexId most_central = 0;
  for (VertexId v = 1; v < n; ++v)
    if (bc[v] > bc[most_central]) most_central = v;
  std::printf("most central node (sampled betweenness): %u (%s)\n",
              most_central, util::human_seconds(timer.seconds()).c_str());

  // Effective diameter via HyperLogLog sketches (ANF) and communities via
  // label propagation.
  timer.restart();
  const auto nf = algos::approximate_neighborhood_function(csr, 16, 7, threads);
  std::printf("effective diameter (90%%): %.2f over %zu hops measured (%s)\n",
              nf.effective_diameter(), nf.pairs.size() - 1,
              util::human_seconds(timer.seconds()).c_str());
  timer.restart();
  const auto communities = algos::label_propagation_communities(csr, 50, threads);
  std::printf("communities (LPA): %s in %d rounds, modularity %.3f (%s)\n",
              util::with_commas(communities.communities).c_str(),
              communities.rounds, algos::modularity(csr, communities.label),
              util::human_seconds(timer.seconds()).c_str());

  // Triangles on the upper-triangular form.
  graph::EdgeList tri_list(
      std::vector<graph::Edge>(list.edges().begin(), list.edges().end()));
  tri_list.to_upper_triangle();
  const csr::CsrGraph tri_csr = csr::build_csr_from_sorted(tri_list, n, threads);
  timer.restart();
  const auto triangles = algos::count_triangles(tri_csr, threads);
  std::printf("triangles: %s (%s)\n", util::with_commas(triangles).c_str(),
              util::human_seconds(timer.seconds()).c_str());
  return 0;
}
