// Tour of every time-evolving representation in the library.
//
// Builds one history and indexes it six ways — the paper's differential
// TCSR (Section IV) and the five related-work comparators from §II —
// then runs an identical query battery through each, cross-checking that
// they all agree and printing the storage/latency trade-off table. Use
// this example to pick the structure for your own workload.
//
//   $ ./temporal_structures_tour [--nodes 20000] [--events 200000]
//                                [--frames 24] [--threads 4]
#include <cstdio>

#include "graph/generators.hpp"
#include "tcsr/baselines.hpp"
#include "tcsr/cas_index.hpp"
#include "tcsr/contact_index.hpp"
#include "tcsr/edgelog.hpp"
#include "tcsr/tcsr.hpp"
#include "util/flags.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pcq;
  using graph::TimeFrame;
  using graph::VertexId;

  util::Flags flags(argc, argv,
                    {{"nodes", "node count (default 20000)"},
                     {"events", "event count (default 200000)"},
                     {"frames", "history frames (default 24)"},
                     {"threads", "processors (default 4)"},
                     {"queries", "query battery size (default 4000)"}});
  const auto nodes = static_cast<VertexId>(flags.get_int("nodes", 20'000));
  const auto events_n = static_cast<std::size_t>(flags.get_int("events", 200'000));
  const auto frames = static_cast<TimeFrame>(flags.get_int("frames", 24));
  const int threads = static_cast<int>(flags.get_int("threads", 4));
  const auto queries_n = static_cast<std::size_t>(flags.get_int("queries", 4000));

  // A persistent-edge history: initial burst, then light churn.
  const graph::TemporalEdgeList history = graph::evolving_graph_churn(
      nodes, events_n / 2, frames,
      frames > 1 ? events_n / 2 / (frames - 1) : 0, 0.4, 7);
  std::printf("History: %s events over %u frames (%s raw)\n\n",
              util::with_commas(history.size()).c_str(), frames,
              util::human_bytes(history.size_bytes()).c_str());

  // Build all six structures, timing each.
  struct Entry {
    const char* name;
    double build_s;
    std::size_t bytes;
    double query_us;
    std::size_t hits;
  };
  std::vector<Entry> entries;

  util::Timer timer;
  const auto tcsr = tcsr::DifferentialTcsr::build(history, nodes, frames, threads);
  const double t_tcsr = timer.seconds();
  timer.restart();
  const auto snaps = tcsr::SnapshotSequence::build(history, nodes, frames, threads);
  const double t_snaps = timer.seconds();
  timer.restart();
  const auto evelog = tcsr::EveLog::build(history, nodes, threads);
  const double t_evelog = timer.seconds();
  timer.restart();
  const auto cas = tcsr::CasIndex::build(history, nodes, threads);
  const double t_cas = timer.seconds();
  timer.restart();
  const auto contact = tcsr::ContactIndex::build(history, nodes, frames, threads);
  const double t_contact = timer.seconds();
  timer.restart();
  const auto edgelog = tcsr::EdgeLog::build(history, nodes, frames, threads);
  const double t_edgelog = timer.seconds();

  // Query battery: half real pairs, half random, identical for everyone.
  util::SplitMix64 rng(11);
  std::vector<tcsr::TemporalEdgeQuery> queries(queries_n);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (i % 2 == 0) {
      const auto& e = history.edges()[rng.next_below(history.size())];
      queries[i] = {e.u, e.v, static_cast<TimeFrame>(rng.next_below(frames))};
    } else {
      queries[i] = {static_cast<VertexId>(rng.next_below(nodes)),
                    static_cast<VertexId>(rng.next_below(nodes)),
                    static_cast<TimeFrame>(rng.next_below(frames))};
    }
  }
  auto battery = [&](auto&& fn) {
    util::Timer t;
    std::size_t hits = 0;
    for (const auto& q : queries) hits += fn(q) ? 1 : 0;
    return std::pair<double, std::size_t>(
        t.micros() / static_cast<double>(queries.size()), hits);
  };

  {
    auto [us, h] = battery([&](const auto& q) { return tcsr.edge_active(q.u, q.v, q.t); });
    entries.push_back({"differential TCSR (Sec. IV)", t_tcsr, tcsr.size_bytes(), us, h});
  }
  {
    auto [us, h] = battery([&](const auto& q) { return snaps.edge_active(q.u, q.v, q.t); });
    entries.push_back({"snapshot sequence", t_snaps, snaps.size_bytes(), us, h});
  }
  {
    auto [us, h] = battery([&](const auto& q) { return evelog.edge_active(q.u, q.v, q.t); });
    entries.push_back({"EveLog event replay", t_evelog, evelog.size_bytes(), us, h});
  }
  {
    auto [us, h] = battery([&](const auto& q) { return cas.edge_active(q.u, q.v, q.t); });
    entries.push_back({"CAS wavelet index", t_cas, cas.size_bytes(), us, h});
  }
  {
    auto [us, h] = battery([&](const auto& q) { return contact.edge_active(q.u, q.v, q.t); });
    entries.push_back({"contact index (ck-d model)", t_contact, contact.size_bytes(), us, h});
  }
  {
    auto [us, h] = battery([&](const auto& q) { return edgelog.edge_active(q.u, q.v, q.t); });
    entries.push_back({"EdgeLog interval lists", t_edgelog, edgelog.size_bytes(), us, h});
  }

  // Cross-check: every structure must report the same number of hits.
  const std::size_t expect_hits = entries.front().hits;
  bool all_agree = true;
  for (const auto& e : entries) all_agree = all_agree && e.hits == expect_hits;

  util::Table table({"Structure", "Build", "Size", "edge_active", "Hits"});
  for (const auto& e : entries) {
    table.add_row({e.name, util::human_seconds(e.build_s),
                   util::human_bytes(e.bytes),
                   util::fixed(e.query_us, 2) + " us",
                   util::with_commas(e.hits)});
  }
  table.print();
  std::printf("\nAll six structures agree on every query: %s\n",
              all_agree ? "yes" : "NO — BUG");
  return all_agree ? 0 : 1;
}
