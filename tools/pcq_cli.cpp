// pcq — command-line driver for the compression/query pipeline.
//
// Subcommands (first positional argument):
//   compress  <in.txt|in.bin> --out g.csr [--threads N] [--relabel]
//             parallel-sorts the edge list, builds the bit-packed CSR and
//             writes it to disk (optionally degree-relabeled first).
//   stats     <in.txt|in.bin|g.csr> [--threads N]
//             prints node/edge counts, sizes and the degree profile.
//   query     <g.csr> --node U | --edge U,V [--threads N] [--mmap]
//             answers a neighbourhood or edge-existence query; --mmap
//             answers it from a zero-copy mapped view of the file.
//   convert   <in.txt> --out out.bin   (text <-> binary edge lists)
//   tcompress <events.txt> --out h.tcsr [--threads N]
//             builds and saves the differential TCSR of a temporal list.
//   tquery    <h.tcsr> --edge U,V --frame T | --node U --frame T [--mmap]
//   check     <g.csr|h.tcsr> [--threads N] [--mmap]
//             runs the pcq::check structural validators over a compressed
//             artifact; exit 0 = valid, 4 = invariant violations (printed).
//
// Input format is inferred from the extension: .txt (SNAP text), .bin
// (pcq binary edge list), .csr / .tcsr (compressed artifacts).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "algos/stats.hpp"
#include "check/validate.hpp"
#include "csr/builder.hpp"
#include "csr/query.hpp"
#include "csr/serialize.hpp"
#include "graph/baselines.hpp"
#include "graph/io.hpp"
#include "graph/k2tree.hpp"
#include "graph/transforms.hpp"
#include "graph/webgraph.hpp"
#include "obs/trace.hpp"
#include "tcsr/baselines.hpp"
#include "tcsr/cas_index.hpp"
#include "tcsr/contact_index.hpp"
#include "tcsr/edgelog.hpp"
#include "tcsr/serialize.hpp"
#include "tcsr/tcsr.hpp"
#include "util/flags.hpp"
#include "util/format.hpp"
#include "util/io_error.hpp"
#include "util/timer.hpp"

namespace {

using namespace pcq;
using graph::VertexId;

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t len = std::strlen(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

graph::EdgeList load_edges(const std::string& path) {
  if (ends_with(path, ".bin")) return graph::load_binary(path);
  return graph::load_snap_text(path);
}

/// Parses "U,V" into an edge.
bool parse_edge(const std::string& s, VertexId* u, VertexId* v) {
  const auto comma = s.find(',');
  if (comma == std::string::npos) return false;
  *u = static_cast<VertexId>(std::strtoul(s.c_str(), nullptr, 10));
  *v = static_cast<VertexId>(std::strtoul(s.c_str() + comma + 1, nullptr, 10));
  return true;
}

/// Turns span recording on when the build commands were asked to report
/// phases (--trace and/or --stats).
void maybe_enable_tracing(const util::Flags& flags) {
  if (flags.has("trace") || flags.get_bool("stats", false))
    obs::set_trace_enabled(true);
}

/// Build-command epilogue: per-phase table to stdout (--stats) and Chrome
/// trace JSON to disk (--trace PATH). Returns the command's exit code.
int finish_tracing(const util::Flags& flags) {
  if (flags.get_bool("stats", false)) obs::write_phase_table(std::cout);
  const std::string path = flags.get("trace", "");
  if (!path.empty()) {
    if (!obs::write_chrome_trace_file(path)) {
      std::fprintf(stderr, "error: cannot write trace to %s\n", path.c_str());
      return 3;
    }
    std::printf("wrote trace %s (load in Perfetto / chrome://tracing)\n",
                path.c_str());
  }
  return 0;
}

int cmd_compress(const util::Flags& flags, const std::string& input) {
  maybe_enable_tracing(flags);
  const int threads = static_cast<int>(flags.get_int("threads", 0));
  const std::string out = flags.get("out", input + ".csr");

  util::Timer timer;
  graph::EdgeList list = load_edges(input);
  std::printf("loaded %s edges (%s) in %s\n",
              util::with_commas(list.size()).c_str(),
              util::human_bytes(list.size_bytes()).c_str(),
              util::human_seconds(timer.seconds()).c_str());

  if (flags.get_bool("relabel", false)) {
    timer.restart();
    graph::RelabelResult r = graph::relabel_by_degree(list, 0, threads);
    list = std::move(r.list);
    std::printf("degree-relabeled in %s\n",
                util::human_seconds(timer.seconds()).c_str());
  }

  timer.restart();
  list.sort_radix(threads);
  const double sort_s = timer.seconds();
  timer.restart();
  csr::CsrBuildTimings phases;
  const csr::BitPackedCsr packed =
      csr::build_bitpacked_csr_from_sorted(list, 0, threads, &phases);
  const double build_s = timer.seconds();
  csr::save_bitpacked_csr(packed, out);

  std::printf("compressed %s nodes / %s edges -> %s (%.2f bits/edge)\n",
              util::with_commas(packed.num_nodes()).c_str(),
              util::with_commas(packed.num_edges()).c_str(),
              util::human_bytes(packed.size_bytes()).c_str(),
              packed.num_edges() == 0
                  ? 0.0
                  : 8.0 * static_cast<double>(packed.size_bytes()) /
                        static_cast<double>(packed.num_edges()));
  std::printf("sort %s | degree %s | scan %s | fill %s | pack %s "
              "(build total %s)\n",
              util::human_seconds(sort_s).c_str(),
              util::human_seconds(phases.degree).c_str(),
              util::human_seconds(phases.scan).c_str(),
              util::human_seconds(phases.fill).c_str(),
              util::human_seconds(phases.pack).c_str(),
              util::human_seconds(build_s).c_str());
  std::printf("wrote %s\n", out.c_str());
  return finish_tracing(flags);
}

int cmd_stats(const util::Flags& flags, const std::string& input) {
  const int threads = static_cast<int>(flags.get_int("threads", 0));
  csr::CsrGraph csr;
  std::size_t compressed_bytes = 0;
  if (ends_with(input, ".csr")) {
    const csr::BitPackedCsr packed = csr::load_bitpacked_csr(input);
    compressed_bytes = packed.size_bytes();
    csr = packed.to_csr();
  } else {
    graph::EdgeList list = load_edges(input);
    list.sort_radix(threads);
    csr = csr::build_csr_from_sorted(list, 0, threads);
    compressed_bytes =
        csr::BitPackedCsr::from_csr(csr, threads).size_bytes();
  }
  const auto stats = algos::degree_stats(csr, threads);
  std::printf("nodes        %s\n", util::with_commas(csr.num_nodes()).c_str());
  std::printf("edges        %s\n", util::with_commas(csr.num_edges()).c_str());
  std::printf("packed size  %s\n", util::human_bytes(compressed_bytes).c_str());
  std::printf("degree       mean %.2f | median %.0f | p99 %.0f | max %u | "
              "gini %.3f\n",
              stats.mean, stats.p50, stats.p99, stats.max, stats.gini);
  const auto hist = algos::degree_histogram_log2(csr);
  std::printf("degree histogram (log2 buckets):\n");
  for (std::size_t k = 0; k < hist.size(); ++k)
    std::printf("  [%7u, %7u): %s\n", 1u << k, 2u << k,
                util::with_commas(hist[k]).c_str());
  return 0;
}

/// Loads a .csr either buffered or zero-copy mapped (--mmap). The returned
/// struct keeps the mapping alive for as long as the CSR is queried.
csr::MappedCsr load_csr_arg(const util::Flags& flags,
                            const std::string& input) {
  if (flags.has("mmap")) return csr::map_bitpacked_csr(input);
  csr::MappedCsr out;
  out.csr = csr::load_bitpacked_csr(input);
  return out;
}

tcsr::MappedTcsr load_tcsr_arg(const util::Flags& flags,
                               const std::string& input) {
  if (flags.has("mmap")) return tcsr::map_tcsr(input);
  tcsr::MappedTcsr out;
  out.tcsr = tcsr::load_tcsr(input);
  return out;
}

int cmd_query(const util::Flags& flags, const std::string& input) {
  const int threads = static_cast<int>(flags.get_int("threads", 0));
  const csr::MappedCsr loaded = load_csr_arg(flags, input);
  const csr::BitPackedCsr& packed = loaded.csr;

  if (flags.has("edge")) {
    VertexId u = 0, v = 0;
    if (!parse_edge(flags.get("edge", ""), &u, &v)) {
      std::fprintf(stderr, "error: --edge expects U,V\n");
      return 2;
    }
    if (u >= packed.num_nodes()) {
      std::fprintf(stderr, "error: node %u out of range (graph has %u)\n", u,
                   packed.num_nodes());
      return 2;
    }
    const bool present = csr::edge_exists_intra_row(packed, u, v, threads,
                                                    csr::RowSearch::kBinary);
    std::printf("edge (%u, %u): %s\n", u, v, present ? "present" : "absent");
    return 0;
  }
  if (flags.has("node")) {
    const auto u = static_cast<VertexId>(flags.get_int("node", 0));
    if (u >= packed.num_nodes()) {
      std::fprintf(stderr, "error: node %u out of range (graph has %u)\n", u,
                   packed.num_nodes());
      return 2;
    }
    const auto row = packed.neighbors(u);
    std::printf("neighbors(%u) [%zu]:", u, row.size());
    for (std::size_t i = 0; i < row.size() && i < 64; ++i)
      std::printf(" %u", row[i]);
    if (row.size() > 64) std::printf(" ...");
    std::printf("\n");
    return 0;
  }
  std::fprintf(stderr, "error: query needs --node or --edge\n");
  return 2;
}

int cmd_compare(const util::Flags& flags, const std::string& input) {
  // One-graph storage comparison across every structure the library
  // implements (the S2 bench for the user's own data).
  const int threads = static_cast<int>(flags.get_int("threads", 0));
  graph::EdgeList list = load_edges(input);
  list.sort_radix(threads);
  list.dedupe();
  const VertexId n = list.num_nodes();
  const csr::CsrGraph plain = csr::build_csr_from_sorted(list, n, threads);
  const csr::BitPackedCsr packed = csr::BitPackedCsr::from_csr(plain, threads);
  const graph::AdjacencyListGraph adj(list, n);
  const graph::GapZetaGraph zeta =
      graph::GapZetaGraph::build_from_sorted(list, n, 3, threads);
  const graph::K2Tree k2 = graph::K2Tree::build(list, n, 4, threads);

  std::printf("%s: %s nodes, %s distinct edges\n", input.c_str(),
              util::with_commas(n).c_str(),
              util::with_commas(list.size()).c_str());
  auto row = [&](const char* name, std::size_t bytes) {
    std::printf("  %-22s %12s  %6.2f bits/edge\n", name,
                util::human_bytes(bytes).c_str(),
                list.empty() ? 0.0
                             : 8.0 * static_cast<double>(bytes) /
                                   static_cast<double>(list.size()));
  };
  row("edge list (binary)", list.size_bytes());
  row("edge list (SNAP text)", list.text_size_bytes());
  row("adjacency list", adj.size_bytes());
  row("plain CSR", plain.size_bytes());
  row("bit-packed CSR", packed.size_bytes());
  row("gap+zeta (WebGraph)", zeta.size_bytes());
  row("k2-tree", k2.size_bytes());
  return 0;
}

int cmd_convert(const util::Flags& flags, const std::string& input) {
  const std::string out = flags.get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "error: convert needs --out\n");
    return 2;
  }
  const graph::EdgeList list = load_edges(input);
  if (ends_with(out, ".bin"))
    graph::save_binary(list, out);
  else
    graph::save_snap_text(list, out);
  std::printf("wrote %s (%s edges)\n", out.c_str(),
              util::with_commas(list.size()).c_str());
  return 0;
}

int cmd_tcompress(const util::Flags& flags, const std::string& input) {
  maybe_enable_tracing(flags);
  const int threads = static_cast<int>(flags.get_int("threads", 0));
  const std::string out = flags.get("out", input + ".tcsr");
  graph::TemporalEdgeList events = graph::load_temporal_text(input);
  events.sort(threads);
  util::Timer timer;
  const auto tcsr = tcsr::DifferentialTcsr::build(events, 0, 0, threads);
  tcsr::save_tcsr(tcsr, out);
  std::printf("compressed %s events over %u frames -> %s in %s; wrote %s\n",
              util::with_commas(events.size()).c_str(), tcsr.num_frames(),
              util::human_bytes(tcsr.size_bytes()).c_str(),
              util::human_seconds(timer.seconds()).c_str(), out.c_str());
  return finish_tracing(flags);
}

int cmd_tcompare(const util::Flags& flags, const std::string& input) {
  // Storage comparison across the temporal structures for the user's own
  // event history.
  const int threads = static_cast<int>(flags.get_int("threads", 0));
  graph::TemporalEdgeList events = graph::load_temporal_text(input);
  events.sort(threads);
  const auto nodes = events.num_nodes();
  const auto frames = events.num_frames();
  std::printf("%s: %s events, %u nodes, %u frames (%s raw)\n", input.c_str(),
              util::with_commas(events.size()).c_str(), nodes, frames,
              util::human_bytes(events.size_bytes()).c_str());
  auto row = [&](const char* name, std::size_t bytes) {
    std::printf("  %-24s %12s\n", name, util::human_bytes(bytes).c_str());
  };
  row("differential TCSR",
      tcsr::DifferentialTcsr::build(events, nodes, frames, threads).size_bytes());
  row("snapshot sequence",
      tcsr::SnapshotSequence::build(events, nodes, frames, threads).size_bytes());
  row("EveLog events", tcsr::EveLog::build(events, nodes, threads).size_bytes());
  row("CAS wavelet index",
      tcsr::CasIndex::build(events, nodes, threads).size_bytes());
  row("contact index",
      tcsr::ContactIndex::build(events, nodes, frames, threads).size_bytes());
  row("EdgeLog intervals",
      tcsr::EdgeLog::build(events, nodes, frames, threads).size_bytes());
  return 0;
}

int cmd_check(const util::Flags& flags, const std::string& input) {
  // Deep structural validation of a compressed artifact: the loader already
  // rejects inconsistent headers/truncation (IoError), this adds the full
  // O(n + m) invariant scan — the pipeline's answer to "did this file
  // survive the disk/transfer it came from?".
  const int threads = static_cast<int>(flags.get_int("threads", 0));
  check::ValidateOptions opts;
  opts.num_threads = threads;
  check::ValidationReport report;
  if (ends_with(input, ".tcsr")) {
    const auto loaded = load_tcsr_arg(flags, input);
    const auto& tcsr = loaded.tcsr;
    report = check::validate_tcsr(tcsr, opts);
    std::printf("%s: %u nodes, %u frames%s\n", input.c_str(), tcsr.num_nodes(),
                tcsr.num_frames(), loaded.mapped ? " (mapped)" : "");
  } else {
    const auto loaded = load_csr_arg(flags, input);
    const auto& packed = loaded.csr;
    report = check::validate_csr(packed, opts);
    std::printf("%s: %u nodes, %zu edges%s\n", input.c_str(),
                packed.num_nodes(), packed.num_edges(),
                loaded.mapped ? " (mapped)" : "");
  }
  if (report.ok()) {
    std::printf("check OK: all format invariants hold\n");
    return 0;
  }
  std::fprintf(stderr, "check FAILED:\n%s", report.to_string().c_str());
  return 4;
}

int cmd_tquery(const util::Flags& flags, const std::string& input) {
  maybe_enable_tracing(flags);
  const auto loaded = load_tcsr_arg(flags, input);
  const auto& tcsr = loaded.tcsr;
  const auto frame =
      static_cast<graph::TimeFrame>(flags.get_int("frame", 0));
  if (frame >= tcsr.num_frames()) {
    std::fprintf(stderr, "error: frame %u out of range (history has %u)\n",
                 frame, tcsr.num_frames());
    return 2;
  }
  if (flags.has("snapshot")) {
    // Materialize the frame's full adjacency via the paper's differential
    // scan (chunked prefix sum under the symmetric-difference monoid).
    const int threads = static_cast<int>(flags.get_int("threads", 0));
    util::Timer timer;
    const auto snap = tcsr.snapshot_at(frame, threads);
    std::printf("snapshot at frame %u: %s nodes / %s edges in %s\n", frame,
                util::with_commas(snap.num_nodes()).c_str(),
                util::with_commas(snap.num_edges()).c_str(),
                util::human_seconds(timer.seconds()).c_str());
    return finish_tracing(flags);
  }
  if (flags.has("edge")) {
    VertexId u = 0, v = 0;
    if (!parse_edge(flags.get("edge", ""), &u, &v)) {
      std::fprintf(stderr, "error: --edge expects U,V\n");
      return 2;
    }
    std::printf("edge (%u, %u) at frame %u: %s\n", u, v, frame,
                tcsr.edge_active(u, v, frame) ? "active" : "inactive");
    const auto intervals = tcsr.activity_intervals(u, v);
    std::printf("activity intervals:");
    for (const auto& iv : intervals)
      std::printf(" [%u, %u]", iv.begin, iv.end);
    std::printf("\n");
    return finish_tracing(flags);
  }
  if (flags.has("node")) {
    const auto u = static_cast<VertexId>(flags.get_int("node", 0));
    const auto row = tcsr.neighbors_at(u, frame);
    std::printf("neighbors(%u) at frame %u [%zu]:", u, frame, row.size());
    for (std::size_t i = 0; i < row.size() && i < 64; ++i)
      std::printf(" %u", row[i]);
    std::printf("\n");
    return finish_tracing(flags);
  }
  std::fprintf(stderr, "error: tquery needs --node, --edge or --snapshot\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv,
                    {{"out", "output path"},
                     {"threads", "processors (0 = all)"},
                     {"relabel", "degree-relabel before compressing"},
                     {"node", "node id to query"},
                     {"edge", "edge query as U,V"},
                     {"frame", "time-frame for temporal queries"},
                     {"snapshot", "materialize the frame's full snapshot"},
                     {"trace", "write Chrome trace JSON of the build here"},
                     {"stats", "print the per-phase span table"},
                     {"mmap", "query/check straight from a mapped file"}});
  const auto& pos = flags.positional();
  if (pos.size() < 2) {
    std::fprintf(stderr,
                 "usage: pcq <compress|stats|compare|query|convert|tcompress|"
                 "tquery|check> <input> [flags]\n");
    return 2;
  }
  const std::string& cmd = pos[0];
  const std::string& input = pos[1];
  // The (de)serializers throw pcq::IoError on missing, truncated or
  // corrupted files; report and exit instead of aborting, so scripted
  // pipelines see a clean diagnostic and a distinct exit code.
  try {
    if (cmd == "compress") return cmd_compress(flags, input);
    if (cmd == "stats") return cmd_stats(flags, input);
    if (cmd == "compare") return cmd_compare(flags, input);
    if (cmd == "query") return cmd_query(flags, input);
    if (cmd == "convert") return cmd_convert(flags, input);
    if (cmd == "tcompress") return cmd_tcompress(flags, input);
    if (cmd == "tquery") return cmd_tquery(flags, input);
    if (cmd == "tcompare") return cmd_tcompare(flags, input);
    if (cmd == "check") return cmd_check(flags, input);
  } catch (const pcq::IoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
  std::fprintf(stderr, "error: unknown command '%s'\n", cmd.c_str());
  return 2;
}
