// pcq_serve — drives the pcq::svc batch query service over a compressed
// graph: answering queries from stdin (one per line) until EOF, serving
// the pcq::net binary frame protocol over TCP (--listen), or acting as an
// interactive TCP client (--connect). Stdin modes print the service
// metrics block on exit; --listen prints the drain summary as well.
//
//   pcq_serve <g.csr> [--tcsr h.tcsr] [--dynamic] [--shards N] [--batch N]
//             [--window-us W] [--kernel-threads N] [--demo N]
//             [--mmap] [--warm] [--validate] [--listen PORT]
//   pcq_serve --connect HOST:PORT
//
// --dynamic serves the graph through a dyn::HybridGraph (CPMA mutable tier
// in front of the loaded CSR): the add/del line commands and the
// kAddEdges/kRemoveEdges wire kinds mutate it live while queries keep
// flowing, and the STATS registry dump shows the dyn.* ingest counters.
//
// --listen starts the epoll TCP front-end (src/net) instead of reading
// stdin: it prints "listening on 127.0.0.1:<port>" (port 0 binds an
// ephemeral port and prints the real one) and serves frames until SIGINT/
// SIGTERM or a shutdown control frame, then drains gracefully — stops
// accepting, answers everything in flight, flushes write buffers — and
// prints "drain complete". --connect is the matching interactive client:
// it speaks the same line protocol on stdin but ships each query over TCP
// ("shutdown" sends the drain control frame, "quit" just disconnects).
//
// --admin PORT (with --listen) opens the HTTP scrape endpoint on a second
// port of the same epoll thread: /metrics (Prometheus text), /metrics.json
// (composite snapshot), /slow (the slow-query log), /trace (Chrome trace),
// /healthz, /buildinfo. --slow-us sets the tail-sampling threshold
// (default 10ms), --slow-cap the log bound; --report FILE appends one
// JSONL line per --report-interval-ms with counter rates and sampled
// gauges. tools/pcq_top renders a live dashboard from /metrics.json.
//
// --mmap serves straight from memory-mapped files: the packed arrays are
// borrowed views over the mapping (zero payload copies), so startup cost is
// independent of graph size and pages fault in lazily as queries touch
// them. --warm adds a parallel page-touch pass before serving (trades
// startup time for no first-touch latency spikes); --validate runs the full
// pcq::check scan on whatever was loaded before serving it (the
// map -> validate -> serve discipline for files of untrusted provenance).
//
// Line protocol (whitespace-separated):
//   degree U            degree of node U
//   n U                 neighbours of U (Alg. 6 through the batcher)
//   e U V               does edge (U, V) exist? (Alg. 7)
//   te U V T            was (U, V) active at frame T? (needs --tcsr)
//   tn U T              neighbours of U at frame T (needs --tcsr)
//   j U V T             earliest frame >= T reaching V from U (needs --tcsr)
//   add U V             make edge (U, V) visible (needs --dynamic)
//   del U V             make edge (U, V) invisible (needs --dynamic)
//   metrics             print the metrics snapshot
//   STATS               metrics snapshot + the pcq::obs registry dump
//   TRACE <file>        export the span flight-recorder as Chrome trace JSON
//
// The tracer runs from startup in flight-recorder mode (last ~4k spans per
// worker thread), so TRACE captures the recent past on demand.
//
// --demo N skips stdin and pushes N random mixed queries through the
// service instead — a smoke workload for scripts and the CLI test.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <future>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/validate.hpp"
#include "csr/serialize.hpp"
#include "dyn/hybrid.hpp"
#include "net/admin.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/reporter.hpp"
#include "obs/slowlog.hpp"
#include "obs/trace.hpp"
#include "svc/service.hpp"
#include "tcsr/serialize.hpp"
#include "util/flags.hpp"
#include "util/format.hpp"
#include "util/io_error.hpp"
#include "util/rng.hpp"

namespace {

using namespace pcq;
using graph::VertexId;

void print_metrics(const svc::MetricsSnapshot& m) {
  std::printf("-- service metrics --\n");
  std::printf("submitted %s | completed %s | rejected %s | expired %s\n",
              util::with_commas(m.submitted).c_str(),
              util::with_commas(m.completed).c_str(),
              util::with_commas(m.rejected).c_str(),
              util::with_commas(m.expired).c_str());
  std::printf("throughput %.0f queries/s over %.2fs\n", m.qps,
              m.elapsed_seconds);
  std::printf("batches %s | size mean %.1f p50 %.0f p95 %.0f p99 %.0f\n",
              util::with_commas(m.batches).c_str(), m.mean_batch_size,
              m.batch_p50, m.batch_p95, m.batch_p99);
  if (m.mutations > 0)
    std::printf("mutations %s\n", util::with_commas(m.mutations).c_str());
  std::printf("latency us mean %.0f p50 %.0f p95 %.0f p99 %.0f\n",
              m.latency_mean_us, m.latency_p50_us, m.latency_p95_us,
              m.latency_p99_us);
  std::printf("queue wait us mean %.0f p50 %.0f p95 %.0f p99 %.0f\n",
              m.queue_wait_mean_us, m.queue_wait_p50_us, m.queue_wait_p95_us,
              m.queue_wait_p99_us);
}

void print_response(const svc::Request& req, const svc::Response& r) {
  switch (r.status) {
    case svc::Status::kRejected: std::printf("rejected\n"); return;
    case svc::Status::kExpired: std::printf("expired\n"); return;
    case svc::Status::kInvalid: std::printf("invalid (out of range)\n"); return;
    case svc::Status::kUnsupported:
      std::printf("unsupported (needs --tcsr for temporal, --dynamic for "
                  "mutations)\n");
      return;
    case svc::Status::kOk: break;
  }
  switch (req.kind) {
    case svc::QueryKind::kDegree:
      std::printf("degree(%u) = %u\n", req.u, r.degree);
      break;
    case svc::QueryKind::kNeighbors:
    case svc::QueryKind::kTemporalNeighbors: {
      std::printf("neighbors(%u) [%zu]:", req.u, r.neighbors.size());
      for (std::size_t i = 0; i < r.neighbors.size() && i < 64; ++i)
        std::printf(" %u", r.neighbors[i]);
      if (r.neighbors.size() > 64) std::printf(" ...");
      std::printf("\n");
      break;
    }
    case svc::QueryKind::kEdgeExists:
    case svc::QueryKind::kTemporalEdge:
      std::printf("edge (%u, %u): %s\n", req.u, req.v,
                  r.exists ? "present" : "absent");
      break;
    case svc::QueryKind::kForemostArrival:
      if (r.exists)
        std::printf("journey %u -> %u: arrives frame %u\n", req.u, req.v,
                    r.arrival);
      else
        std::printf("journey %u -> %u: unreachable\n", req.u, req.v);
      break;
    case svc::QueryKind::kAddEdges:
      std::printf("add (%u, %u): %s\n", req.u, req.v,
                  r.exists ? "added" : "already present");
      break;
    case svc::QueryKind::kRemoveEdges:
      std::printf("del (%u, %u): %s\n", req.u, req.v,
                  r.exists ? "removed" : "already absent");
      break;
  }
}

int run_demo(svc::QueryService& service, const csr::BitPackedCsr& graph,
             const tcsr::DifferentialTcsr* history, std::size_t count) {
  util::SplitMix64 rng(2024);
  const VertexId n = graph.num_nodes();
  if (n == 0) {
    std::fprintf(stderr, "error: empty graph\n");
    return 2;
  }
  // Temporal demo queries must be drawn from the history's own node/frame
  // space — the TCSR is an independent (usually smaller) artifact, and
  // CSR-ranged u with t pinned to 0 made every temporal pick silently
  // answer kInvalid without ever exercising frames > 0.
  const bool temporal = history != nullptr && history->num_nodes() > 0 &&
                        history->num_frames() > 0;
  const VertexId tn = temporal ? history->num_nodes() : 0;
  const graph::TimeFrame tf = temporal ? history->num_frames() : 0;
  std::vector<std::future<svc::Response>> futures;
  futures.reserve(count);
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < count; ++i) {
    svc::Request req;
    const auto pick = rng.next_below(temporal ? 5 : 3);
    if (pick >= 3) {
      req.u = static_cast<VertexId>(rng.next_below(tn));
      req.v = static_cast<VertexId>(rng.next_below(tn));
      req.t = static_cast<graph::TimeFrame>(rng.next_below(tf));
    } else {
      req.u = static_cast<VertexId>(rng.next_below(n));
      req.v = static_cast<VertexId>(rng.next_below(n));
    }
    switch (pick) {
      case 0: req.kind = svc::QueryKind::kDegree; break;
      case 1: req.kind = svc::QueryKind::kNeighbors; break;
      case 2: req.kind = svc::QueryKind::kEdgeExists; break;
      case 3: req.kind = svc::QueryKind::kTemporalEdge; break;
      default: req.kind = svc::QueryKind::kTemporalNeighbors; break;
    }
    futures.push_back(service.submit(req));
    // A demo client is closed-loop-ish: cap outstanding work so the
    // bounded queue exercises batching, not rejection.
    if (futures.size() >= 1024) {
      for (auto& f : futures)
        if (f.get().status == svc::Status::kRejected) ++rejected;
      futures.clear();
    }
  }
  for (auto& f : futures)
    if (f.get().status == svc::Status::kRejected) ++rejected;
  print_metrics(service.metrics());
  std::printf("demo done: %s queries, %s rejected\n",
              util::with_commas(count).c_str(),
              util::with_commas(rejected).c_str());
  return 0;
}

int run_stdin(svc::QueryService& service) {
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string op;
    if (!(in >> op)) continue;
    if (op == "metrics") {
      print_metrics(service.metrics());
      continue;
    }
    if (op == "STATS") {
      print_metrics(service.metrics());
      std::printf("-- registry --\n");
      obs::MetricsRegistry::global().write_text(std::cout);
      std::cout.flush();
      continue;
    }
    if (op == "TRACE") {
      std::string path;
      if (!(in >> path)) {
        std::printf("? TRACE needs a file path\n");
        continue;
      }
      if (obs::write_chrome_trace_file(path))
        std::printf("wrote trace %s\n", path.c_str());
      else
        std::printf("? cannot write trace to %s\n", path.c_str());
      continue;
    }
    if (op == "quit") break;
    svc::Request req;
    bool ok = false;
    if (op == "degree" && (in >> req.u)) {
      req.kind = svc::QueryKind::kDegree;
      ok = true;
    } else if (op == "n" && (in >> req.u)) {
      req.kind = svc::QueryKind::kNeighbors;
      ok = true;
    } else if (op == "e" && (in >> req.u >> req.v)) {
      req.kind = svc::QueryKind::kEdgeExists;
      ok = true;
    } else if (op == "te" && (in >> req.u >> req.v >> req.t)) {
      req.kind = svc::QueryKind::kTemporalEdge;
      ok = true;
    } else if (op == "tn" && (in >> req.u >> req.t)) {
      req.kind = svc::QueryKind::kTemporalNeighbors;
      ok = true;
    } else if (op == "j" && (in >> req.u >> req.v >> req.t)) {
      req.kind = svc::QueryKind::kForemostArrival;
      ok = true;
    } else if (op == "add" && (in >> req.u >> req.v)) {
      req.kind = svc::QueryKind::kAddEdges;
      ok = true;
    } else if (op == "del" && (in >> req.u >> req.v)) {
      req.kind = svc::QueryKind::kRemoveEdges;
      ok = true;
    }
    if (!ok) {
      std::printf("? unknown query '%s'\n", line.c_str());
      continue;
    }
    print_response(req, service.submit(req).get());
  }
  print_metrics(service.metrics());
  return 0;
}

// SIGINT/SIGTERM ask the TCP front-end for a graceful drain; request_stop
// is async-signal-safe (one eventfd write).
std::atomic<net::TcpServer*> g_server{nullptr};

extern "C" void handle_stop_signal(int) {
  net::TcpServer* server = g_server.load(std::memory_order_acquire);
  if (server != nullptr) server->request_stop();
}

int run_listen(svc::QueryService& service, const util::Flags& flags) {
  net::ServerOptions options;
  options.port = static_cast<std::uint16_t>(flags.get_int("listen", 0));
  options.admin_enabled = flags.has("admin");
  options.admin_port =
      static_cast<std::uint16_t>(flags.get_int("admin", 0));
  net::TcpServer server(service, options);

  // The reporter thread runs whenever we listen: its samplers keep the
  // sampled gauges (queue depths, connection stats, rusage) fresh for both
  // the JSONL series (--report) and admin scrapes (which also call
  // run_samplers directly, so a scrape is never stale).
  obs::Reporter reporter;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reporter.add_sampler([&service, &reg] {
    const std::vector<std::size_t> depths = service.queue_depths();
    std::size_t total = 0;
    std::size_t deepest = 0;
    for (const std::size_t d : depths) {
      total += d;
      deepest = std::max(deepest, d);
    }
    reg.gauge("svc.queue_depth").set(static_cast<std::int64_t>(total));
    reg.gauge("svc.queue_depth_max").set(static_cast<std::int64_t>(deepest));
  });
  const net::ServerStats& live = server.stats();
  reporter.add_sampler([&live, &reg] {
    const auto mirror = [&reg](const char* name, std::uint64_t v) {
      reg.gauge(name).set(static_cast<std::int64_t>(v));
    };
    reg.gauge("net.open_conns")
        .set(live.open_conns.load(std::memory_order_relaxed));
    mirror("net.accepted", live.accepted.load(std::memory_order_relaxed));
    mirror("net.frames_in", live.frames_in.load(std::memory_order_relaxed));
    mirror("net.frames_out", live.frames_out.load(std::memory_order_relaxed));
    mirror("net.bytes_in", live.bytes_in.load(std::memory_order_relaxed));
    mirror("net.bytes_out", live.bytes_out.load(std::memory_order_relaxed));
    mirror("net.rejected", live.rejected.load(std::memory_order_relaxed));
    mirror("net.protocol_errors",
           live.protocol_errors.load(std::memory_order_relaxed));
    mirror("net.admin_requests",
           live.admin_requests.load(std::memory_order_relaxed));
  });
  reporter.add_sampler(obs::sample_process_gauges);

  net::AdminContext admin_ctx;
  admin_ctx.service = &service;
  admin_ctx.server_stats = &server.stats();
  admin_ctx.refresh = [&reporter] { reporter.run_samplers(); };
  server.set_admin_handler(
      [admin_ctx](std::string_view method, std::string_view target) {
        return net::handle_admin_request(admin_ctx, method, target);
      });

  obs::ReporterOptions ropts;
  ropts.interval = std::chrono::milliseconds(
      flags.get_int("report-interval-ms", 1000));
  ropts.jsonl_path = flags.get("report", "");
  if (!reporter.start(ropts))
    std::fprintf(stderr, "warning: cannot open report file %s\n",
                 ropts.jsonl_path.c_str());

  g_server.store(&server, std::memory_order_release);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGPIPE, SIG_IGN);
  std::printf("listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  if (options.admin_enabled)
    std::printf("admin on 127.0.0.1:%u\n",
                static_cast<unsigned>(server.admin_port()));
  std::fflush(stdout);
  server.run();
  g_server.store(nullptr, std::memory_order_release);
  reporter.stop();
  const net::ServerStats& s = server.stats();
  std::printf("drain complete: %s in flight answered, all buffers flushed\n",
              util::with_commas(
                  s.drained_in_flight.load(std::memory_order_relaxed))
                  .c_str());
  // Relaxed is enough: run() has returned, so these are quiescent counters
  // (and seq_cst, the load() default, bought nothing here anyway).
  std::printf(
      "connections %s | frames in %s | frames out %s | "
      "rejected %s | protocol errors %s\n",
      util::with_commas(s.accepted.load(std::memory_order_relaxed)).c_str(),
      util::with_commas(s.frames_in.load(std::memory_order_relaxed)).c_str(),
      util::with_commas(s.frames_out.load(std::memory_order_relaxed)).c_str(),
      util::with_commas(s.rejected.load(std::memory_order_relaxed)).c_str(),
      util::with_commas(s.protocol_errors.load(std::memory_order_relaxed))
          .c_str());
  print_metrics(service.metrics());
  return 0;
}

/// Interactive TCP client: the stdin line protocol, shipped as binary
/// frames. Lock-step (one request, one response) — a latency-measuring
/// pipelined client lives in bench_svc --mode net.
int run_connect(const std::string& target) {
  const auto colon = target.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "error: --connect wants HOST:PORT\n");
    return 2;
  }
  net::Client client;
  client.connect(target.substr(0, colon),
                 static_cast<std::uint16_t>(
                     std::stoul(target.substr(colon + 1))));
  std::uint64_t next_id = 1;
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string op;
    if (!(in >> op)) continue;
    if (op == "quit") break;
    net::WireRequest w;
    w.id = next_id++;
    svc::Request req;  // mirrors the wire request for print_response
    bool ok = false;
    if (op == "shutdown") {
      w.kind = net::kShutdownKind;
      client.send_request(w);
      net::WireResponse resp;
      if (client.read_response(&resp) &&
          resp.status == static_cast<std::uint8_t>(svc::Status::kOk))
        std::printf("shutdown acknowledged, server draining\n");
      break;
    } else if (op == "degree" && (in >> w.u)) {
      req.kind = svc::QueryKind::kDegree;
      ok = true;
    } else if (op == "n" && (in >> w.u)) {
      req.kind = svc::QueryKind::kNeighbors;
      ok = true;
    } else if (op == "e" && (in >> w.u >> w.v)) {
      req.kind = svc::QueryKind::kEdgeExists;
      ok = true;
    } else if (op == "te" && (in >> w.u >> w.v >> w.t)) {
      req.kind = svc::QueryKind::kTemporalEdge;
      ok = true;
    } else if (op == "tn" && (in >> w.u >> w.t)) {
      req.kind = svc::QueryKind::kTemporalNeighbors;
      ok = true;
    } else if (op == "j" && (in >> w.u >> w.v >> w.t)) {
      req.kind = svc::QueryKind::kForemostArrival;
      ok = true;
    } else if (op == "add" && (in >> w.u >> w.v)) {
      req.kind = svc::QueryKind::kAddEdges;
      ok = true;
    } else if (op == "del" && (in >> w.u >> w.v)) {
      req.kind = svc::QueryKind::kRemoveEdges;
      ok = true;
    }
    if (!ok) {
      std::printf("? unknown query '%s'\n", line.c_str());
      continue;
    }
    w.kind = static_cast<std::uint8_t>(req.kind);
    req.u = w.u;
    req.v = w.v;
    req.t = w.t;
    client.send_request(w);
    net::WireResponse resp;
    if (!client.read_response(&resp)) {
      std::fprintf(stderr, "error: server closed the connection\n");
      return 3;
    }
    svc::Response r;
    r.status = static_cast<svc::Status>(resp.status);
    r.exists = resp.exists != 0;
    r.degree = resp.degree;
    r.arrival = resp.arrival;
    r.neighbors.assign(resp.neighbors.begin(), resp.neighbors.end());
    print_response(req, r);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  pcq::util::Flags flags(
      argc, argv,
      {{"tcsr", "temporal history (.tcsr) to serve alongside the CSR"},
       {"dynamic", "serve through a CPMA mutable tier (enables add/del and "
                   "the wire mutation kinds)"},
       {"shards", "shared-nothing shards (default 1)"},
       {"batch", "max requests per dispatched batch (default 256)"},
       {"window-us", "micro-batch flush window in microseconds (default 200)"},
       {"kernel-threads", "threads per batch-kernel call (default 1)"},
       {"demo", "run N random queries instead of reading stdin"},
       {"mmap", "serve from memory-mapped files (zero payload copies)"},
       {"warm", "with --mmap: parallel page-touch warmup before serving"},
       {"validate", "run the full pcq::check scan before serving"},
       {"listen", "serve the binary frame protocol on TCP port N (0 = "
                  "ephemeral, prints the bound port)"},
       {"admin", "with --listen: HTTP admin/scrape endpoint on port N (0 = "
                 "ephemeral, prints the bound port)"},
       {"slow-us", "slow-query capture threshold in microseconds "
                   "(default 10000; 0 disables)"},
       {"slow-cap", "slow-query log capacity (default 256)"},
       {"inject-delay-us", "debug: sleep N us inside every batch dispatch "
                           "(deterministic slow queries for tests)"},
       {"report", "append interval-delta JSONL telemetry to FILE"},
       {"report-interval-ms", "reporter tick interval (default 1000)"},
       {"connect", "act as an interactive TCP client against HOST:PORT"}});
  if (flags.has("connect")) {
    try {
      return run_connect(flags.get("connect", ""));
    } catch (const pcq::IoError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 3;
    }
  }
  const auto& pos = flags.positional();
  if (pos.empty()) {
    std::fprintf(stderr,
                 "usage: pcq_serve <g.csr> [flags] | pcq_serve --connect "
                 "HOST:PORT\n");
    return 2;
  }
  // Flight-recorder mode: record spans from startup so the TRACE command
  // can dump the recent past without any prior opt-in.
  pcq::obs::set_trace_enabled(true);
  try {
    using Clock = std::chrono::steady_clock;
    const bool use_mmap = flags.has("mmap");
    const bool temporal = flags.has("tcsr");

    // The mapped structs pair the borrowed-view structure with the mapping
    // that backs it; in buffered mode the same structs just own their
    // storage (mapped == false) so everything below is one code path.
    const auto t0 = Clock::now();
    pcq::csr::MappedCsr mc;
    if (use_mmap)
      mc = pcq::csr::map_bitpacked_csr(pos[0]);
    else
      mc.csr = pcq::csr::load_bitpacked_csr(pos[0]);
    pcq::tcsr::MappedTcsr mh;
    if (temporal) {
      if (use_mmap)
        mh = pcq::tcsr::map_tcsr(flags.get("tcsr", ""));
      else
        mh.tcsr = pcq::tcsr::load_tcsr(flags.get("tcsr", ""));
    }
    const auto load_us = std::chrono::duration_cast<std::chrono::microseconds>(
                             Clock::now() - t0)
                             .count();
    const pcq::csr::BitPackedCsr& graph = mc.csr;
    const pcq::tcsr::DifferentialTcsr& history = mh.tcsr;
    std::printf("loaded in %lld us (%s%s)\n",
                static_cast<long long>(load_us),
                mc.mapped ? "mapped" : "buffered",
                use_mmap && !mc.mapped ? " — mmap fallback" : "");

    if (flags.has("warm")) {
      const auto w0 = Clock::now();
      const int warm_threads =
          static_cast<int>(flags.get_int("kernel-threads", 0));
      std::uint64_t touched = mc.file.touch_pages(warm_threads);
      touched += mh.file.touch_pages(warm_threads);
      const auto warm_us =
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                w0)
              .count();
      std::printf("warmed %s mapped bytes in %lld us (checksum %llu)\n",
                  pcq::util::with_commas(mc.file.size() + mh.file.size())
                      .c_str(),
                  static_cast<long long>(warm_us),
                  static_cast<unsigned long long>(touched));
    }

    if (flags.has("validate")) {
      pcq::check::ValidateOptions vopts;
      vopts.num_threads = 0;
      const auto report = pcq::check::validate_csr(graph, vopts);
      if (!report.ok()) {
        std::fprintf(stderr, "error: CSR failed validation:\n%s\n",
                     report.to_string().c_str());
        return 4;
      }
      if (temporal) {
        const auto treport = pcq::check::validate_tcsr(history, vopts);
        if (!treport.ok()) {
          std::fprintf(stderr, "error: TCSR failed validation:\n%s\n",
                       treport.to_string().c_str());
          return 4;
        }
      }
      std::printf("validation passed\n");
    }

    pcq::svc::ServiceConfig config;
    config.shards = static_cast<int>(flags.get_int("shards", 1));
    config.max_batch =
        static_cast<std::size_t>(flags.get_int("batch", 256));
    config.batch_window =
        std::chrono::microseconds(flags.get_int("window-us", 200));
    config.kernel_threads =
        static_cast<int>(flags.get_int("kernel-threads", 1));
    config.debug_kernel_delay =
        std::chrono::microseconds(flags.get_int("inject-delay-us", 0));
    // Tail sampling is on by default at 10ms — cheap enough to always run
    // (one relaxed load per completion) and the flight recorder is exactly
    // what you want populated when something was slow.
    pcq::obs::SlowLog::global().set_threshold_us(
        static_cast<std::uint64_t>(flags.get_int("slow-us", 10000)));
    pcq::obs::SlowLog::global().set_capacity(
        static_cast<std::size_t>(flags.get_int("slow-cap", 256)));
    // --dynamic wraps the loaded CSR in the CPMA-backed hybrid; the hybrid
    // copies the packed arrays (views stay borrowed under --mmap, and the
    // mapping outlives the service), so `graph` stays usable for the demo.
    std::optional<pcq::dyn::HybridGraph> hybrid;
    std::unique_ptr<pcq::svc::QueryService> service;
    if (flags.has("dynamic")) {
      hybrid.emplace(graph);
      service = std::make_unique<pcq::svc::QueryService>(
          *hybrid, temporal ? &history : nullptr, config);
    } else {
      service = std::make_unique<pcq::svc::QueryService>(
          graph, temporal ? &history : nullptr, config);
    }
    std::printf("serving %s nodes / %s edges on %d shard(s)%s%s\n",
                pcq::util::with_commas(graph.num_nodes()).c_str(),
                pcq::util::with_commas(graph.num_edges()).c_str(),
                service->shards(), temporal ? " + temporal history" : "",
                hybrid.has_value() ? " + dynamic tier" : "");

    if (flags.has("listen")) return run_listen(*service, flags);
    if (flags.has("demo"))
      return run_demo(*service, graph, temporal ? &history : nullptr,
                      static_cast<std::size_t>(flags.get_int("demo", 10000)));
    return run_stdin(*service);
  } catch (const pcq::IoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
}
