// pcq_top — live terminal dashboard for a running pcq_serve, polling the
// admin endpoint's /metrics.json.
//
//   pcq_top HOST:PORT [--interval-ms N] [--count N] [--once]
//   pcq_top HOST:PORT --scrape /metrics
//
// Each tick fetches /metrics.json over a fresh TCP connection (the admin
// endpoint is one-request-per-connection) and renders qps (interval delta
// of the completed counter), latency percentiles, queue depth, rejects,
// connection and compaction counters, and process rss. --once prints a
// single snapshot without clearing the screen (scripts); --count N exits
// after N ticks. --scrape PATH fetches any admin path and prints the raw
// body — the test/CI-friendly way to scrape without curl.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "util/flags.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PCQ_TOP_SUPPORTED 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#else
#define PCQ_TOP_SUPPORTED 0
#endif

namespace {

#if PCQ_TOP_SUPPORTED

/// One blocking HTTP/1.0 GET; returns true and fills `body` on a 200.
bool http_get(const std::string& host, std::uint16_t port,
              const std::string& path, std::string* body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return false;
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char chunk[16 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n > 0) {
      response.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF or error: the server closes after the body
  }
  ::close(fd);
  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  const std::string_view status_line(response.data(),
                                     response.find("\r\n"));
  if (status_line.find(" 200 ") == std::string_view::npos) return false;
  body->assign(response, header_end + 4, std::string::npos);
  return true;
}

/// First number following `"key":` in `s` (searching from `from`);
/// fallback when absent. Good enough for the flat keys the admin endpoint
/// emits — no general JSON parser needed for a dashboard.
double num_after(std::string_view s, std::string_view key, double fallback,
                 std::size_t from = 0) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t at = s.find(needle, from);
  if (at == std::string_view::npos) return fallback;
  return std::strtod(std::string(s.substr(at + needle.size(), 32)).c_str(),
                     nullptr);
}

/// Sum of the array following `"key":[` — the per-shard queue depths.
double sum_array_after(std::string_view s, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":[";
  std::size_t at = s.find(needle);
  if (at == std::string_view::npos) return 0;
  at += needle.size();
  double total = 0;
  while (at < s.size() && s[at] != ']') {
    char* end = nullptr;
    const std::string chunk(s.substr(at, 32));
    total += std::strtod(chunk.c_str(), &end);
    at += static_cast<std::size_t>(end - chunk.c_str());
    if (at < s.size() && s[at] == ',') ++at;
  }
  return total;
}

struct Sample {
  bool ok = false;
  double completed = 0;
  double rejected = 0;
  double expired = 0;
  double p50 = 0, p95 = 0, p99 = 0;
  double queue_depth = 0;
  double open_conns = 0;
  double compactions = 0;
  double maxrss_kb = 0;
  double slow_captured = 0;
};

Sample fetch_sample(const std::string& host, std::uint16_t port) {
  Sample s;
  std::string body;
  if (!http_get(host, port, "/metrics.json", &body)) return s;
  s.ok = true;
  const std::string_view v(body);
  const std::size_t svc = v.find("\"service\":");
  s.completed = num_after(v, "completed", 0, svc);
  s.rejected = num_after(v, "rejected", 0, svc);
  s.expired = num_after(v, "expired", 0, svc);
  const std::size_t lat = v.find("\"latency_us\":");
  s.p50 = num_after(v, "p50", 0, lat);
  s.p95 = num_after(v, "p95", 0, lat);
  s.p99 = num_after(v, "p99", 0, lat);
  s.queue_depth = sum_array_after(v, "queue_depths");
  s.open_conns = num_after(v, "open_conns", 0);
  s.compactions = num_after(v, "dyn.hybrid.compactions", 0);
  s.maxrss_kb = num_after(v, "proc.maxrss_kb", 0);
  s.slow_captured = num_after(v, "captured", 0, v.find("\"slowlog\":"));
  return s;
}

void render(const Sample& now, const Sample& prev, double interval_s,
            bool clear) {
  if (clear) std::printf("\x1b[2J\x1b[H");
  const double qps =
      prev.ok && interval_s > 0 ? (now.completed - prev.completed) / interval_s
                                : 0;
  const double rejects_s =
      prev.ok && interval_s > 0 ? (now.rejected - prev.rejected) / interval_s
                                : 0;
  std::printf("pcq_top — live service telemetry\n");
  std::printf("  qps        %12.0f   completed %14.0f\n", qps, now.completed);
  std::printf("  latency us p50 %8.0f   p95 %10.0f   p99 %8.0f\n", now.p50,
              now.p95, now.p99);
  std::printf("  queue depth %11.0f   rejects/s %14.0f\n", now.queue_depth,
              rejects_s);
  std::printf("  open conns  %11.0f   expired   %14.0f\n", now.open_conns,
              now.expired);
  std::printf("  compactions %11.0f   slow captured %10.0f\n",
              now.compactions, now.slow_captured);
  std::printf("  maxrss      %9.0f MB\n", now.maxrss_kb / 1024.0);
  std::fflush(stdout);
}

#endif  // PCQ_TOP_SUPPORTED

}  // namespace

int main(int argc, char** argv) {
  pcq::util::Flags flags(
      argc, argv,
      {{"interval-ms", "poll interval (default 1000)"},
       {"count", "exit after N ticks (default: run until interrupted)"},
       {"once", "print one snapshot without clearing the screen"},
       {"scrape", "fetch an admin PATH (e.g. /metrics) and print the raw "
                  "body, then exit"}});
#if !PCQ_TOP_SUPPORTED
  (void)flags;
  std::fprintf(stderr, "error: pcq_top requires a POSIX platform\n");
  return 2;
#else
  const auto& pos = flags.positional();
  if (pos.empty()) {
    std::fprintf(stderr, "usage: pcq_top HOST:PORT [--interval-ms N] "
                         "[--count N] [--once] [--scrape PATH]\n");
    return 2;
  }
  const std::string& target = pos[0];
  const std::size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "error: expected HOST:PORT, got %s\n",
                 target.c_str());
    return 2;
  }
  const std::string host = target.substr(0, colon);
  const auto port =
      static_cast<std::uint16_t>(std::strtoul(target.c_str() + colon + 1,
                                              nullptr, 10));

  if (flags.has("scrape")) {
    std::string body;
    if (!http_get(host, port, flags.get("scrape", "/metrics"), &body)) {
      std::fprintf(stderr, "error: scrape failed for %s\n", target.c_str());
      return 3;
    }
    std::fwrite(body.data(), 1, body.size(), stdout);
    return 0;
  }

  const auto interval =
      std::chrono::milliseconds(flags.get_int("interval-ms", 1000));
  const double interval_s =
      std::chrono::duration<double>(interval).count();
  const std::int64_t count =
      flags.has("once") ? 1 : flags.get_int("count", 0);
  Sample prev;
  for (std::int64_t tick = 0; count <= 0 || tick < count; ++tick) {
    const Sample now = fetch_sample(host, port);
    if (!now.ok) {
      std::fprintf(stderr, "error: cannot reach %s\n", target.c_str());
      return 3;
    }
    render(now, prev, interval_s, /*clear=*/!flags.has("once"));
    prev = now;
    if (count > 0 && tick + 1 >= count) break;
    std::this_thread::sleep_for(interval);
  }
  return 0;
#endif
}
