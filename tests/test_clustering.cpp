#include "algos/clustering.hpp"

#include <gtest/gtest.h>

#include "csr/builder.hpp"
#include "graph/generators.hpp"

namespace pcq::algos {
namespace {

using graph::EdgeList;
using graph::VertexId;

csr::CsrGraph symmetric_csr(EdgeList g, VertexId n) {
  g.symmetrize();
  g.sort(4);
  g.dedupe();
  g.remove_self_loops();
  return csr::build_csr_from_sorted(g, n, 4);
}

TEST(Clustering, TriangleIsFullyClustered) {
  const csr::CsrGraph g =
      symmetric_csr(EdgeList({{0, 1}, {1, 2}, {0, 2}}), 3);
  const auto r = clustering_coefficients(g, 4);
  for (double c : r.local) EXPECT_DOUBLE_EQ(c, 1.0);
  EXPECT_DOUBLE_EQ(r.average, 1.0);
  EXPECT_DOUBLE_EQ(r.global, 1.0);
}

TEST(Clustering, PathHasNoTriangles) {
  const csr::CsrGraph g = symmetric_csr(EdgeList({{0, 1}, {1, 2}, {2, 3}}), 4);
  const auto r = clustering_coefficients(g, 4);
  for (double c : r.local) EXPECT_DOUBLE_EQ(c, 0.0);
  EXPECT_DOUBLE_EQ(r.global, 0.0);
}

TEST(Clustering, TriangleWithPendant) {
  // Node 2 is in the triangle but also has pendant 3: its 3 neighbours
  // {0, 1, 3} give 6 ordered pairs, 2 of which (0,1)/(1,0) are closed.
  const csr::CsrGraph g =
      symmetric_csr(EdgeList({{0, 1}, {1, 2}, {0, 2}, {2, 3}}), 4);
  const auto r = clustering_coefficients(g, 4);
  EXPECT_DOUBLE_EQ(r.local[0], 1.0);
  EXPECT_DOUBLE_EQ(r.local[1], 1.0);
  EXPECT_NEAR(r.local[2], 1.0 / 3, 1e-12);
  EXPECT_DOUBLE_EQ(r.local[3], 0.0);
}

TEST(Clustering, GlobalIsTriangleWedgeRatio) {
  // Global transitivity of the pendant-triangle graph: 3 triangles * 3
  // nodes * 2 orientations = wait — closed wedge count is 6 (2 per
  // triangle node), wedge count is 2+2+6+0 = 10.
  const csr::CsrGraph g =
      symmetric_csr(EdgeList({{0, 1}, {1, 2}, {0, 2}, {2, 3}}), 4);
  const auto r = clustering_coefficients(g, 4);
  EXPECT_NEAR(r.global, 6.0 / 10.0, 1e-12);
}

TEST(Clustering, CompleteGraphGlobalOne) {
  EdgeList g;
  for (VertexId u = 0; u < 10; ++u)
    for (VertexId v = u + 1; v < 10; ++v) g.push_back({u, v});
  const auto r = clustering_coefficients(symmetric_csr(std::move(g), 10), 4);
  EXPECT_NEAR(r.global, 1.0, 1e-12);
  EXPECT_NEAR(r.average, 1.0, 1e-12);
}

TEST(Clustering, ThreadCountInvariance) {
  const csr::CsrGraph g =
      symmetric_csr(graph::rmat(256, 5000, 0.57, 0.19, 0.19, 13, 4), 256);
  const auto ref = clustering_coefficients(g, 1);
  for (int p : {2, 4, 8}) {
    const auto got = clustering_coefficients(g, p);
    EXPECT_DOUBLE_EQ(got.global, ref.global);
    EXPECT_DOUBLE_EQ(got.average, ref.average);
  }
}

TEST(Clustering, SocialGraphMoreClusteredThanRandom) {
  // Watts-Strogatz at low beta retains the lattice's high clustering;
  // G(n, m) with the same density has ~0 clustering.
  const csr::CsrGraph ws =
      symmetric_csr(graph::watts_strogatz(1000, 4, 0.05, 17, 4), 1000);
  const csr::CsrGraph er =
      symmetric_csr(graph::erdos_renyi(1000, 4000, 17, 4), 1000);
  const auto rws = clustering_coefficients(ws, 4);
  const auto rer = clustering_coefficients(er, 4);
  EXPECT_GT(rws.global, 5 * rer.global);
}

TEST(Clustering, EmptyGraph) {
  const auto r = clustering_coefficients(csr::CsrGraph{}, 4);
  EXPECT_TRUE(r.local.empty());
  EXPECT_DOUBLE_EQ(r.global, 0.0);
}

}  // namespace
}  // namespace pcq::algos
