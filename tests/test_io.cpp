#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/generators.hpp"
#include "util/io_error.hpp"

namespace pcq::graph {
namespace {

class IoTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pcq_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, SnapTextRoundTrip) {
  const EdgeList original = erdos_renyi(200, 1000, 1, 2);
  save_snap_text(original, path("g.txt"));
  const EdgeList loaded = load_snap_text(path("g.txt"));
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_EQ(loaded.edges()[i], original.edges()[i]);
}

TEST_F(IoTest, SnapTextSkipsCommentsAndBlankLines) {
  {
    std::ofstream out(path("c.txt"));
    out << "# Undirected graph: soc-pokec\n"
        << "# Nodes: 3 Edges: 2\n"
        << "\n"
        << "0\t1\n"
        << "   \n"
        << "1 2\n";
  }
  const EdgeList g = load_snap_text(path("c.txt"));
  ASSERT_EQ(g.size(), 2u);
  EXPECT_EQ(g.edges()[0], (Edge{0, 1}));
  EXPECT_EQ(g.edges()[1], (Edge{1, 2}));
}

TEST_F(IoTest, SnapTextHandlesSpacesAndTabs) {
  {
    std::ofstream out(path("w.txt"));
    out << "10 20\n30\t40\n  50   60  \n";
  }
  const EdgeList g = load_snap_text(path("w.txt"));
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g.edges()[2], (Edge{50, 60}));
}

TEST_F(IoTest, EmptyTextFileLoadsEmptyList) {
  { std::ofstream out(path("e.txt")); }
  EXPECT_TRUE(load_snap_text(path("e.txt")).empty());
}

TEST_F(IoTest, TemporalTextRoundTrip) {
  const TemporalEdgeList original = evolving_graph(50, 500, 8, 3, 2);
  save_temporal_text(original, path("t.txt"));
  const TemporalEdgeList loaded = load_temporal_text(path("t.txt"));
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_EQ(loaded.edges()[i], original.edges()[i]);
}

TEST_F(IoTest, BinaryRoundTrip) {
  const EdgeList original = rmat(256, 5000, 0.57, 0.19, 0.19, 5, 2);
  save_binary(original, path("g.bin"));
  const EdgeList loaded = load_binary(path("g.bin"));
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_EQ(loaded.edges()[i], original.edges()[i]);
}

TEST_F(IoTest, BinaryEmptyList) {
  save_binary(EdgeList{}, path("empty.bin"));
  EXPECT_TRUE(load_binary(path("empty.bin")).empty());
}

TEST_F(IoTest, TemporalBinaryRoundTrip) {
  const TemporalEdgeList original = evolving_graph(80, 2000, 12, 7, 2);
  save_temporal_binary(original, path("t.bin"));
  const TemporalEdgeList loaded = load_temporal_binary(path("t.bin"));
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_EQ(loaded.edges()[i], original.edges()[i]);
}

TEST_F(IoTest, TemporalBinaryEmpty) {
  save_temporal_binary(TemporalEdgeList{}, path("te.bin"));
  EXPECT_TRUE(load_temporal_binary(path("te.bin")).empty());
}

TEST_F(IoTest, TemporalBinaryRejectsEdgeMagic) {
  save_binary(EdgeList({{0, 1}}), path("plain.bin"));
  EXPECT_THROW(load_temporal_binary(path("plain.bin")), IoError);
}

TEST_F(IoTest, BinaryIsSmallerThanTextForLargeIds) {
  EdgeList g;
  for (VertexId i = 0; i < 1000; ++i) g.push_back({1'000'000 + i, 2'000'000 + i});
  save_snap_text(g, path("big.txt"));
  save_binary(g, path("big.bin"));
  EXPECT_LT(std::filesystem::file_size(path("big.bin")),
            std::filesystem::file_size(path("big.txt")));
}

// Corrupt or unreadable inputs are reportable conditions, not programming
// errors: the loaders throw pcq::IoError (the CLI maps it to exit 3) and
// never abort or return a partial list.
TEST_F(IoTest, BinaryBadMagicThrows) {
  {
    std::ofstream out(path("bad.bin"), std::ios::binary);
    out << "NOTPCQ!!" << std::string(16, '\0');
  }
  EXPECT_THROW(load_binary(path("bad.bin")), IoError);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(load_snap_text(path("nope.txt")), IoError);
  EXPECT_THROW(load_binary(path("nope.bin")), IoError);
  EXPECT_THROW(load_temporal_text(path("nope.txt")), IoError);
  EXPECT_THROW(load_temporal_binary(path("nope.bin")), IoError);
}

TEST_F(IoTest, BinaryTruncatedPayloadThrows) {
  // Header promises 3 edges; payload holds one. The loader must detect the
  // short read rather than zero-fill the remainder.
  EdgeList g({{0, 1}, {1, 2}, {2, 0}});
  save_binary(g, path("full.bin"));
  const auto full = std::filesystem::file_size(path("full.bin"));
  std::filesystem::resize_file(path("full.bin"), full - 2 * sizeof(Edge));
  EXPECT_THROW(load_binary(path("full.bin")), IoError);
}

TEST_F(IoTest, BinaryHugeDeclaredCountThrows) {
  // A corrupt header declaring ~2^61 edges must fail on the short read
  // without first trying to allocate the declared payload.
  {
    std::ofstream out(path("huge.bin"), std::ios::binary);
    out.write("PCQEDGE1", 8);
    const std::uint64_t count = std::uint64_t{1} << 61;
    out.write(reinterpret_cast<const char*>(&count), sizeof count);
    out << "short";
  }
  EXPECT_THROW(load_binary(path("huge.bin")), IoError);
}

}  // namespace
}  // namespace pcq::graph
