#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pcq::util {
namespace {

/// Builds an argv that stays alive for the Flags constructor.
class ArgvFixture {
 public:
  explicit ArgvFixture(std::vector<std::string> args) : args_(std::move(args)) {
    for (auto& a : args_) ptrs_.push_back(a.data());
  }
  int argc() { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> args_;
  std::vector<char*> ptrs_;
};

const std::map<std::string, std::string> kSpec = {
    {"scale", "graph scale"},   {"threads", "thread list"},
    {"verbose", "chatty"},      {"seed", "rng seed"},
    {"name", "free string"},
};

TEST(Flags, SpaceSeparatedValue) {
  ArgvFixture a({"prog", "--scale", "0.5"});
  Flags flags(a.argc(), a.argv(), kSpec);
  EXPECT_TRUE(flags.has("scale"));
  EXPECT_DOUBLE_EQ(flags.get_double("scale", 1.0), 0.5);
}

TEST(Flags, EqualsSeparatedValue) {
  ArgvFixture a({"prog", "--seed=42"});
  Flags flags(a.argc(), a.argv(), kSpec);
  EXPECT_EQ(flags.get_int("seed", 0), 42);
}

TEST(Flags, DefaultsWhenAbsent) {
  ArgvFixture a({"prog"});
  Flags flags(a.argc(), a.argv(), kSpec);
  EXPECT_FALSE(flags.has("scale"));
  EXPECT_DOUBLE_EQ(flags.get_double("scale", 0.25), 0.25);
  EXPECT_EQ(flags.get_int("seed", 7), 7);
  EXPECT_EQ(flags.get("name", "dflt"), "dflt");
  EXPECT_FALSE(flags.get_bool("verbose", false));
}

TEST(Flags, BareBooleanFlag) {
  ArgvFixture a({"prog", "--verbose"});
  Flags flags(a.argc(), a.argv(), kSpec);
  EXPECT_TRUE(flags.get_bool("verbose", false));
}

TEST(Flags, IntListParsing) {
  ArgvFixture a({"prog", "--threads", "1,4,8,16,64"});
  Flags flags(a.argc(), a.argv(), kSpec);
  EXPECT_EQ(flags.get_int_list("threads", {}),
            (std::vector<int>{1, 4, 8, 16, 64}));
}

TEST(Flags, IntListFallback) {
  ArgvFixture a({"prog"});
  Flags flags(a.argc(), a.argv(), kSpec);
  EXPECT_EQ(flags.get_int_list("threads", {2, 3}), (std::vector<int>{2, 3}));
}

TEST(Flags, PositionalArguments) {
  ArgvFixture a({"prog", "input.txt", "--seed", "1", "more.txt"});
  Flags flags(a.argc(), a.argv(), kSpec);
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"input.txt", "more.txt"}));
}

TEST(FlagsDeathTest, UnknownFlagAborts) {
  ArgvFixture a({"prog", "--bogus", "1"});
  EXPECT_EXIT(Flags(a.argc(), a.argv(), kSpec), testing::ExitedWithCode(2),
              "unknown flag");
}

}  // namespace
}  // namespace pcq::util
