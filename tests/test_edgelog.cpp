#include "tcsr/edgelog.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "tcsr/contact_index.hpp"
#include "tcsr/tcsr.hpp"
#include "util/rng.hpp"

namespace pcq::tcsr {
namespace {

using graph::TemporalEdge;
using graph::TemporalEdgeList;
using graph::TimeFrame;
using graph::VertexId;

TemporalEdgeList sorted(std::vector<TemporalEdge> evs) {
  TemporalEdgeList list(std::move(evs));
  list.sort(2);
  return list;
}

TEST(EdgeLogIntervals, KnownLifecycle) {
  // (0,1): [1,2] and [5,7]; (0,3): [0,7]. History = 8 frames.
  const auto evs = sorted({{0, 1, 1}, {0, 1, 3}, {0, 1, 5}, {0, 3, 0}});
  const EdgeLog log = EdgeLog::build(evs, 4, 8, 2);
  EXPECT_EQ(log.intervals(0, 1),
            (std::vector<ActivityInterval>{{1, 2}, {5, 7}}));
  EXPECT_EQ(log.intervals(0, 3), (std::vector<ActivityInterval>{{0, 7}}));
  EXPECT_TRUE(log.intervals(0, 2).empty());
  EXPECT_TRUE(log.edge_active(0, 1, 6));
  EXPECT_FALSE(log.edge_active(0, 1, 4));
  EXPECT_EQ(log.neighbors_at(0, 1), (std::vector<VertexId>{1, 3}));
  EXPECT_EQ(log.neighbors_at(0, 4), (std::vector<VertexId>{3}));
}

TEST(EdgeLogIntervals, EmptyHistory) {
  const EdgeLog log = EdgeLog::build(TemporalEdgeList{}, 3, 0, 2);
  EXPECT_FALSE(log.edge_active(0, 1, 0));
  EXPECT_TRUE(log.neighbors_at(2, 0).empty());
}

TEST(EdgeLogIntervals, VertexWithNoEvents) {
  const auto evs = sorted({{0, 1, 0}});
  const EdgeLog log = EdgeLog::build(evs, 10, 4, 2);
  EXPECT_TRUE(log.neighbors_at(7, 2).empty());
  EXPECT_FALSE(log.edge_active(7, 1, 2));
}

TEST(EdgeLogIntervals, AgreesWithDifferentialTcsr) {
  const TemporalEdgeList evs = graph::evolving_graph(70, 3500, 10, 61, 4);
  const auto tcsr = DifferentialTcsr::build(evs, 70, 10, 4);
  const EdgeLog log = EdgeLog::build(evs, 70, 10, 4);

  pcq::util::SplitMix64 rng(63);
  for (int i = 0; i < 1500; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(70));
    const auto v = static_cast<VertexId>(rng.next_below(70));
    const auto t = static_cast<TimeFrame>(rng.next_below(10));
    ASSERT_EQ(log.edge_active(u, v, t), tcsr.edge_active(u, v, t))
        << u << "->" << v << "@" << t;
  }
  for (VertexId u = 0; u < 70; u += 7)
    for (TimeFrame t = 0; t < 10; t += 3)
      EXPECT_EQ(log.neighbors_at(u, t), tcsr.neighbors_at(u, t));
}

TEST(EdgeLogIntervals, IntervalsMatchContactIndex) {
  const TemporalEdgeList evs = graph::evolving_graph(50, 2000, 8, 67, 4);
  const EdgeLog log = EdgeLog::build(evs, 50, 8, 4);
  const ContactIndex idx = ContactIndex::build(evs, 50, 8, 4);
  for (VertexId u = 0; u < 50; u += 3)
    for (VertexId v = 0; v < 50; v += 4)
      EXPECT_EQ(log.intervals(u, v), idx.contacts(u, v)) << u << "->" << v;
}

TEST(EdgeLogIntervals, ThreadCountInvariance) {
  const TemporalEdgeList evs = graph::evolving_graph(60, 2500, 8, 71, 4);
  const EdgeLog ref = EdgeLog::build(evs, 60, 8, 1);
  for (int p : {2, 4, 8}) {
    const EdgeLog log = EdgeLog::build(evs, 60, 8, p);
    EXPECT_EQ(log.size_bytes(), ref.size_bytes()) << "p=" << p;
    for (VertexId u = 0; u < 60; u += 11)
      EXPECT_EQ(log.neighbors_at(u, 5), ref.neighbors_at(u, 5));
  }
}

TEST(EdgeLogIntervals, CompactOnPersistentWorkload) {
  // Long intervals gamma-code into a handful of bits per contact — far
  // smaller than the raw events.
  const TemporalEdgeList evs =
      graph::evolving_graph_churn(200, 5000, 24, 50, 0.4, 73);
  const EdgeLog log = EdgeLog::build(evs, 200, 24, 4);
  EXPECT_LT(log.size_bytes(), evs.size_bytes() / 2);
}

}  // namespace
}  // namespace pcq::tcsr
