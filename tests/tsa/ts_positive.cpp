// Thread-safety-analysis positive control.
//
// A miniature of every annotation pattern the codebase relies on, written
// with the locking discipline intact. Two jobs:
//
//   * compiled into an (unlinked) object in every build, it pins the
//     wrappers to valid C++ under GCC, where the attributes are no-ops;
//   * compiled with `-Wthread-safety -Werror=thread-safety` (the
//     `tsa_positive_analysis` ctest entry and the thread-safety preset),
//     it must come out CLEAN — which proves the analysis is actually
//     running, so its WILL_FAIL siblings in this directory cannot pass
//     vacuously (a broken flag set would make this control fail instead).
//
// The negative TUs next to this file take this exact code and delete one
// element each (an annotation, a lock) — keep them in sync when editing.

#include <cstdint>
#include <deque>

#include "util/thread_annotations.hpp"

namespace util = pcq::util;

namespace {

class Account {
 public:
  void deposit(std::int64_t amount) PCQ_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    balance_ += amount;
  }

  // The REQUIRES contract: callers hold the lock, the callee touches the
  // guarded member without re-acquiring.
  void apply_fee_locked(std::int64_t fee) PCQ_REQUIRES(mu_) {
    balance_ -= fee;
  }

  void apply_fees(const std::deque<std::int64_t>& fees) PCQ_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    for (const std::int64_t f : fees) apply_fee_locked(f);
  }

  [[nodiscard]] std::int64_t balance() const PCQ_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return balance_;
  }

  // Explicit predicate loop in the locked scope — the wait pattern the
  // condvar waits in svc/par/obs use (never a wait lambda, which the
  // analysis would treat as a separate unlocked function).
  void wait_for_funds(std::int64_t minimum) PCQ_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    while (balance_ < minimum) cv_.wait(lock);
  }

  void notify() { cv_.notify_all(); }

 private:
  mutable util::Mutex mu_;
  util::CondVar cv_;
  std::int64_t balance_ PCQ_GUARDED_BY(mu_) = 0;
};

}  // namespace

// The object must carry at least one symbol; also keeps Account's methods
// instantiated so the analysis actually visits them.
void pcq_tsa_positive_anchor() {
  Account account;
  account.deposit(10);
  account.apply_fees({1, 2});
  account.wait_for_funds(0);
  static_cast<void>(account.balance());
  account.notify();
}
