// Thread-safety-analysis negative control #1: a PCQ_GUARDED_BY member
// accessed without its mutex. Valid C++ (GCC compiles it silently), but
// `-Wthread-safety -Werror=thread-safety` must REJECT it — the
// `tsa_negative_unlocked` ctest entry asserts the non-zero exit. If this
// TU ever compiles clean under the analysis, the guard annotations have
// stopped guarding (macro edit, wrapper regression) and the whole
// thread-safety preset is decorative.

#include <cstdint>

#include "util/thread_annotations.hpp"

namespace util = pcq::util;

namespace {

class Account {
 public:
  void deposit(std::int64_t amount) PCQ_EXCLUDES(mu_) {
    balance_ += amount;  // BUG: guarded write, no lock held
  }

 private:
  mutable util::Mutex mu_;
  std::int64_t balance_ PCQ_GUARDED_BY(mu_) = 0;
};

}  // namespace

void pcq_tsa_negative_unlocked_anchor() {
  Account account;
  account.deposit(10);
}
