// Thread-safety-analysis negative control #2: a *_locked helper whose
// PCQ_REQUIRES annotation was dropped. The helper body then reads the
// guarded member with no capability in scope, and every call site loses
// its contract check. `-Wthread-safety -Werror=thread-safety` must REJECT
// this TU (the `tsa_negative_requires` ctest entry asserts the non-zero
// exit); GCC compiles it silently.

#include <cstdint>

#include "util/thread_annotations.hpp"

namespace util = pcq::util;

namespace {

class Account {
 public:
  void apply_fees(std::int64_t fee) PCQ_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    apply_fee_locked(fee);
  }

 private:
  // BUG: dropped PCQ_REQUIRES(mu_) — the guarded access below is now
  // unprotected as far as the analysis can prove.
  void apply_fee_locked(std::int64_t fee) {
    balance_ -= fee;
  }

  mutable util::Mutex mu_;
  std::int64_t balance_ PCQ_GUARDED_BY(mu_) = 0;
};

}  // namespace

void pcq_tsa_negative_requires_anchor() {
  Account account;
  account.apply_fees(1);
}
