#include "csr/serialize.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "csr/builder.hpp"
#include "graph/generators.hpp"

namespace pcq::csr {
namespace {

class SerializeTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pcq_csr_ser_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

BitPackedCsr sample_csr(std::uint64_t seed) {
  graph::EdgeList g = graph::rmat(1 << 10, 20'000, 0.57, 0.19, 0.19, seed, 4);
  g.sort(4);
  return build_bitpacked_csr_from_sorted(g, 1 << 10, 4);
}

TEST_F(SerializeTest, RoundTripPreservesEverything) {
  const BitPackedCsr original = sample_csr(3);
  save_bitpacked_csr(original, path("g.csr"));
  const BitPackedCsr loaded = load_bitpacked_csr(path("g.csr"));
  EXPECT_EQ(loaded.num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded.num_edges(), original.num_edges());
  EXPECT_EQ(loaded.offset_bits(), original.offset_bits());
  EXPECT_EQ(loaded.column_bits(), original.column_bits());
  EXPECT_TRUE(loaded.packed_offsets() == original.packed_offsets());
  EXPECT_TRUE(loaded.packed_columns() == original.packed_columns());
}

TEST_F(SerializeTest, LoadedStructureAnswersQueries) {
  const BitPackedCsr original = sample_csr(5);
  save_bitpacked_csr(original, path("g.csr"));
  const BitPackedCsr loaded = load_bitpacked_csr(path("g.csr"));
  for (graph::VertexId u = 0; u < loaded.num_nodes(); u += 37) {
    EXPECT_EQ(loaded.neighbors(u), original.neighbors(u)) << u;
  }
}

TEST_F(SerializeTest, EmptyGraphRoundTrip) {
  const CsrGraph empty = build_csr_from_sorted(graph::EdgeList{}, 8, 2);
  const BitPackedCsr packed = BitPackedCsr::from_csr(empty, 2);
  save_bitpacked_csr(packed, path("empty.csr"));
  const BitPackedCsr loaded = load_bitpacked_csr(path("empty.csr"));
  EXPECT_EQ(loaded.num_nodes(), 8u);
  EXPECT_EQ(loaded.num_edges(), 0u);
  EXPECT_EQ(loaded.degree(7), 0u);
}

TEST_F(SerializeTest, FileSizeTracksPackedSize) {
  const BitPackedCsr csr = sample_csr(7);
  save_bitpacked_csr(csr, path("g.csr"));
  const auto file_size = std::filesystem::file_size(path("g.csr"));
  EXPECT_GE(file_size, csr.size_bytes());
  EXPECT_LE(file_size, csr.size_bytes() + 128);  // header + word padding
}

TEST_F(SerializeTest, BadMagicAborts) {
  {
    std::ofstream out(path("bad.csr"), std::ios::binary);
    out << std::string(64, 'x');
  }
  EXPECT_DEATH(load_bitpacked_csr(path("bad.csr")), "bad CSR magic");
}

TEST_F(SerializeTest, TruncatedFileAborts) {
  const BitPackedCsr csr = sample_csr(9);
  save_bitpacked_csr(csr, path("g.csr"));
  std::filesystem::resize_file(path("g.csr"),
                               std::filesystem::file_size(path("g.csr")) / 2);
  EXPECT_DEATH(load_bitpacked_csr(path("g.csr")), "truncated");
}

}  // namespace
}  // namespace pcq::csr
