#include "csr/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "csr/builder.hpp"
#include "graph/generators.hpp"
#include "util/io_error.hpp"

namespace pcq::csr {
namespace {

class SerializeTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pcq_csr_ser_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

BitPackedCsr sample_csr(std::uint64_t seed) {
  graph::EdgeList g = graph::rmat(1 << 10, 20'000, 0.57, 0.19, 0.19, seed, 4);
  g.sort(4);
  return build_bitpacked_csr_from_sorted(g, 1 << 10, 4);
}

TEST_F(SerializeTest, RoundTripPreservesEverything) {
  const BitPackedCsr original = sample_csr(3);
  save_bitpacked_csr(original, path("g.csr"));
  const BitPackedCsr loaded = load_bitpacked_csr(path("g.csr"));
  EXPECT_EQ(loaded.num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded.num_edges(), original.num_edges());
  EXPECT_EQ(loaded.offset_bits(), original.offset_bits());
  EXPECT_EQ(loaded.column_bits(), original.column_bits());
  EXPECT_TRUE(loaded.packed_offsets() == original.packed_offsets());
  EXPECT_TRUE(loaded.packed_columns() == original.packed_columns());
}

TEST_F(SerializeTest, LoadedStructureAnswersQueries) {
  const BitPackedCsr original = sample_csr(5);
  save_bitpacked_csr(original, path("g.csr"));
  const BitPackedCsr loaded = load_bitpacked_csr(path("g.csr"));
  for (graph::VertexId u = 0; u < loaded.num_nodes(); u += 37) {
    EXPECT_EQ(loaded.neighbors(u), original.neighbors(u)) << u;
  }
}

TEST_F(SerializeTest, EmptyGraphRoundTrip) {
  const CsrGraph empty = build_csr_from_sorted(graph::EdgeList{}, 8, 2);
  const BitPackedCsr packed = BitPackedCsr::from_csr(empty, 2);
  save_bitpacked_csr(packed, path("empty.csr"));
  const BitPackedCsr loaded = load_bitpacked_csr(path("empty.csr"));
  EXPECT_EQ(loaded.num_nodes(), 8u);
  EXPECT_EQ(loaded.num_edges(), 0u);
  EXPECT_EQ(loaded.degree(7), 0u);
}

TEST_F(SerializeTest, FileSizeTracksPackedSize) {
  const BitPackedCsr csr = sample_csr(7);
  save_bitpacked_csr(csr, path("g.csr"));
  const auto file_size = std::filesystem::file_size(path("g.csr"));
  EXPECT_GE(file_size, csr.size_bytes());
  EXPECT_LE(file_size, csr.size_bytes() + 128);  // header + word padding
}

TEST_F(SerializeTest, SingleVertexGraphRoundTrip) {
  const CsrGraph tiny = build_csr_from_sorted(graph::EdgeList{}, 1, 1);
  const BitPackedCsr packed = BitPackedCsr::from_csr(tiny, 1);
  save_bitpacked_csr(packed, path("one.csr"));
  const BitPackedCsr loaded = load_bitpacked_csr(path("one.csr"));
  EXPECT_EQ(loaded.num_nodes(), 1u);
  EXPECT_EQ(loaded.num_edges(), 0u);
  EXPECT_TRUE(loaded.neighbors(0).empty());
}

// The serving layer loads graphs at runtime, so a bad file must throw
// pcq::IoError (rejectable) rather than abort the process.

TEST_F(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(load_bitpacked_csr(path("nonexistent.csr")), pcq::IoError);
}

TEST_F(SerializeTest, BadMagicThrows) {
  {
    std::ofstream out(path("bad.csr"), std::ios::binary);
    out << std::string(64, 'x');
  }
  try {
    load_bitpacked_csr(path("bad.csr"));
    FAIL() << "expected IoError";
  } catch (const pcq::IoError& e) {
    EXPECT_NE(std::string(e.what()).find("bad CSR magic"), std::string::npos);
    EXPECT_EQ(e.path(), path("bad.csr"));
  }
}

TEST_F(SerializeTest, TruncatedFileThrows) {
  const BitPackedCsr csr = sample_csr(9);
  save_bitpacked_csr(csr, path("g.csr"));
  std::filesystem::resize_file(path("g.csr"),
                               std::filesystem::file_size(path("g.csr")) / 2);
  EXPECT_THROW(load_bitpacked_csr(path("g.csr")), pcq::IoError);
}

TEST_F(SerializeTest, TruncatedHeaderThrows) {
  const BitPackedCsr csr = sample_csr(13);
  save_bitpacked_csr(csr, path("g.csr"));
  std::filesystem::resize_file(path("g.csr"), 20);  // mid-header
  EXPECT_THROW(load_bitpacked_csr(path("g.csr")), pcq::IoError);
}

TEST_F(SerializeTest, WrongEndianCanaryThrows) {
  const BitPackedCsr csr = sample_csr(15);
  save_bitpacked_csr(csr, path("g.csr"));
  {
    // Byte-swap the canary (offset 8, after the 8-byte magic) as a
    // big-endian writer would have produced it.
    std::fstream f(path("g.csr"),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8);
    const std::uint32_t swapped = 0x04030201;
    f.write(reinterpret_cast<const char*>(&swapped), 4);
  }
  try {
    load_bitpacked_csr(path("g.csr"));
    FAIL() << "expected IoError";
  } catch (const pcq::IoError& e) {
    EXPECT_NE(std::string(e.what()).find("canary"), std::string::npos);
  }
}

TEST_F(SerializeTest, CorruptedHeaderGeometryThrows) {
  const BitPackedCsr csr = sample_csr(17);
  save_bitpacked_csr(csr, path("g.csr"));
  {
    // Inflate the node count (offset 24: magic 8 + canary 4 + widths 8 +
    // reserved 4) without touching the bit counts: the geometry check
    // must reject before any structure is half-built.
    std::fstream f(path("g.csr"),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(24);
    const std::uint64_t bogus_nodes = 1'000'000;
    f.write(reinterpret_cast<const char*>(&bogus_nodes), 8);
  }
  try {
    load_bitpacked_csr(path("g.csr"));
    FAIL() << "expected IoError";
  } catch (const pcq::IoError& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt CSR header"),
              std::string::npos);
  }
}

TEST_F(SerializeTest, ZeroWidthHeaderThrows) {
  const BitPackedCsr csr = sample_csr(19);
  save_bitpacked_csr(csr, path("g.csr"));
  {
    std::fstream f(path("g.csr"),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(12);  // offset_width field
    const std::uint32_t zero = 0;
    f.write(reinterpret_cast<const char*>(&zero), 4);
  }
  EXPECT_THROW(load_bitpacked_csr(path("g.csr")), pcq::IoError);
}

}  // namespace
}  // namespace pcq::csr
