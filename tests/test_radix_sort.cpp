#include "par/radix_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "graph/types.hpp"
#include "util/rng.hpp"

namespace pcq::par {
namespace {

std::vector<std::uint64_t> random_values(std::size_t n, std::uint64_t seed,
                                         std::uint64_t bound) {
  pcq::util::SplitMix64 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = bound == 0 ? rng.next() : rng.next_below(bound);
  return v;
}

TEST(RadixSort, EmptyAndSingle) {
  std::vector<std::uint64_t> empty;
  parallel_radix_sort_u64(empty, 4);
  EXPECT_TRUE(empty.empty());

  std::vector<std::uint64_t> one{7};
  parallel_radix_sort_u64(one, 4);
  EXPECT_EQ(one, (std::vector<std::uint64_t>{7}));
}

TEST(RadixSort, Full64BitKeys) {
  auto v = random_values(50'000, 1, 0);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  parallel_radix_sort_u64(v, 4);
  EXPECT_EQ(v, expected);
}

TEST(RadixSort, SmallKeysSkipDeadPasses) {
  // 8-bit keys: only one digit pass should be needed; correctness is what
  // we assert, the skip is a perf property exercised implicitly.
  auto v = random_values(10'000, 2, 256);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  parallel_radix_sort_u64(v, 8);
  EXPECT_EQ(v, expected);
}

TEST(RadixSort, AllEqualKeys) {
  std::vector<std::uint64_t> v(5000, 42);
  parallel_radix_sort_u64(v, 4);
  EXPECT_TRUE(std::all_of(v.begin(), v.end(),
                          [](std::uint64_t x) { return x == 42; }));
}

TEST(RadixSort, AlreadySortedAndReverse) {
  std::vector<std::uint64_t> v(10'000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = i;
  auto expected = v;
  parallel_radix_sort_u64(v, 4);
  EXPECT_EQ(v, expected);
  std::reverse(v.begin(), v.end());
  parallel_radix_sort_u64(v, 4);
  EXPECT_EQ(v, expected);
}

TEST(RadixSort, StableForEqualKeys) {
  // Sort pairs by .first only; equal keys must keep insertion order.
  struct Item {
    std::uint32_t key;
    std::uint32_t seq;
  };
  pcq::util::SplitMix64 rng(5);
  std::vector<Item> items(20'000);
  for (std::uint32_t i = 0; i < items.size(); ++i)
    items[i] = {static_cast<std::uint32_t>(rng.next_below(16)), i};
  parallel_radix_sort(std::span<Item>(items), 4,
                      [](const Item& it) { return std::uint64_t{it.key}; });
  for (std::size_t i = 1; i < items.size(); ++i) {
    ASSERT_LE(items[i - 1].key, items[i].key);
    if (items[i - 1].key == items[i].key) {
      ASSERT_LT(items[i - 1].seq, items[i].seq);
    }
  }
}

TEST(RadixSort, EdgeKeyMatchesComparisonSort) {
  using graph::Edge;
  pcq::util::SplitMix64 rng(7);
  std::vector<Edge> edges(30'000);
  for (auto& e : edges)
    e = {static_cast<graph::VertexId>(rng.next()),
         static_cast<graph::VertexId>(rng.next())};
  auto expected = edges;
  std::sort(expected.begin(), expected.end());
  parallel_radix_sort(std::span<Edge>(edges), 8, [](const Edge& e) {
    return (static_cast<std::uint64_t>(e.u) << 32) | e.v;
  });
  EXPECT_EQ(edges, expected);
}

class RadixSortProperty
    : public testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(RadixSortProperty, MatchesStdSort) {
  const auto [n, threads] = GetParam();
  auto v = random_values(n, 31 * n + threads, 0);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  parallel_radix_sort_u64(v, threads);
  EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RadixSortProperty,
    testing::Combine(testing::Values<std::size_t>(0, 1, 2, 255, 256, 257, 4096,
                                                  65'537),
                     testing::Values(1, 2, 3, 4, 8, 16, 64)));

}  // namespace
}  // namespace pcq::par
