#include "graph/transforms.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "graph/generators.hpp"

namespace pcq::graph {
namespace {

TEST(Transpose, ReversesEveryEdge) {
  const EdgeList g({{0, 1}, {2, 3}, {1, 0}});
  const EdgeList t = transpose(g, 4);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.edges()[0], (Edge{1, 0}));
  EXPECT_EQ(t.edges()[1], (Edge{3, 2}));
  EXPECT_EQ(t.edges()[2], (Edge{0, 1}));
}

TEST(Transpose, InvolutionRestoresOriginal) {
  const EdgeList g = erdos_renyi(100, 2000, 3, 4);
  const EdgeList tt = transpose(transpose(g, 4), 4);
  for (std::size_t i = 0; i < g.size(); ++i)
    EXPECT_EQ(tt.edges()[i], g.edges()[i]);
}

TEST(RelabelByDegree, PermutationIsBijective) {
  const EdgeList g = rmat(256, 5000, 0.57, 0.19, 0.19, 5, 4);
  const RelabelResult r = relabel_by_degree(g, 256, 4);
  ASSERT_EQ(r.new_id.size(), 256u);
  ASSERT_EQ(r.old_id.size(), 256u);
  std::set<VertexId> news(r.new_id.begin(), r.new_id.end());
  EXPECT_EQ(news.size(), 256u);
  for (VertexId old = 0; old < 256; ++old)
    EXPECT_EQ(r.old_id[r.new_id[old]], old);
}

TEST(RelabelByDegree, HubsGetSmallIds) {
  // Star graph: the centre has the highest out-degree, so it becomes 0.
  EdgeList g;
  for (VertexId v = 1; v < 50; ++v) g.push_back({7, v});
  g.push_back({3, 7});
  const RelabelResult r = relabel_by_degree(g, 50, 4);
  EXPECT_EQ(r.new_id[7], 0u);
  EXPECT_EQ(r.old_id[0], 7u);
}

TEST(RelabelByDegree, DegreesPreservedUnderRelabel) {
  const EdgeList g = rmat(128, 3000, 0.57, 0.19, 0.19, 9, 4);
  const RelabelResult r = relabel_by_degree(g, 128, 4);
  std::vector<int> old_deg(128, 0), new_deg(128, 0);
  for (const Edge& e : g.edges()) ++old_deg[e.u];
  for (const Edge& e : r.list.edges()) ++new_deg[e.u];
  for (VertexId u = 0; u < 128; ++u)
    EXPECT_EQ(new_deg[r.new_id[u]], old_deg[u]);
  // New ids are sorted by non-increasing degree.
  for (VertexId rank = 1; rank < 128; ++rank)
    EXPECT_GE(old_deg[r.old_id[rank - 1]], old_deg[r.old_id[rank]]);
}

TEST(RelabelByDegree, TiesBrokenByOldId) {
  // All nodes degree 1: ranking must be the identity.
  EdgeList g;
  for (VertexId u = 0; u < 10; ++u) g.push_back({u, (u + 1) % 10});
  const RelabelResult r = relabel_by_degree(g, 10, 4);
  for (VertexId u = 0; u < 10; ++u) EXPECT_EQ(r.new_id[u], u);
}

TEST(InducedSubgraph, KeepsOnlyInternalEdges) {
  const EdgeList g({{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}});
  const std::vector<std::uint8_t> keep{1, 1, 0, 1};  // drop node 2
  std::vector<VertexId> old_id;
  const EdgeList sub = induced_subgraph(g, keep, 4, &old_id);
  // Surviving edges among {0, 1, 3}: (0,1), (3,0), (1,3).
  EXPECT_EQ(sub.size(), 3u);
  ASSERT_EQ(old_id.size(), 3u);
  EXPECT_EQ(old_id, (std::vector<VertexId>{0, 1, 3}));
  for (const Edge& e : sub.edges()) {
    EXPECT_LT(e.u, 3u);
    EXPECT_LT(e.v, 3u);
  }
}

TEST(InducedSubgraph, KeepAllIsIdentityModuloIds) {
  const EdgeList g = erdos_renyi(64, 500, 11, 4);
  const std::vector<std::uint8_t> keep(64, 1);
  const EdgeList sub = induced_subgraph(g, keep, 4);
  EXPECT_EQ(sub.size(), g.size());
}

TEST(InducedSubgraph, KeepNoneIsEmpty) {
  const EdgeList g = erdos_renyi(64, 500, 13, 4);
  const std::vector<std::uint8_t> keep(64, 0);
  EXPECT_TRUE(induced_subgraph(g, keep, 4).empty());
}

TEST(InducedSubgraph, ThreadCountInvariance) {
  const EdgeList g = erdos_renyi(200, 5000, 17, 4);
  std::vector<std::uint8_t> keep(200);
  for (std::size_t u = 0; u < 200; ++u) keep[u] = u % 3 != 0;
  const EdgeList ref = induced_subgraph(g, keep, 1);
  for (int p : {2, 4, 8}) {
    const EdgeList got = induced_subgraph(g, keep, p);
    ASSERT_EQ(got.size(), ref.size()) << "p=" << p;
    for (std::size_t i = 0; i < ref.size(); ++i)
      EXPECT_EQ(got.edges()[i], ref.edges()[i]);
  }
}

}  // namespace
}  // namespace pcq::graph
