#include "csr/query.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "csr/builder.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace pcq::csr {
namespace {

using graph::Edge;
using graph::EdgeList;
using graph::VertexId;

struct QueryFixture {
  QueryFixture() {
    EdgeList g = graph::rmat(512, 20'000, 0.57, 0.19, 0.19, 21, 4);
    g.sort(4);
    g.dedupe();
    plain = build_csr_from_sorted(g, 512, 4);
    packed = BitPackedCsr::from_csr(plain, 4);
  }
  CsrGraph plain;
  BitPackedCsr packed;
};

const QueryFixture& fixture() {
  static const QueryFixture f;
  return f;
}

std::vector<VertexId> random_nodes(std::size_t count, std::uint64_t seed) {
  pcq::util::SplitMix64 rng(seed);
  std::vector<VertexId> nodes(count);
  for (auto& u : nodes) u = static_cast<VertexId>(rng.next_below(512));
  return nodes;
}

std::vector<Edge> random_edge_queries(std::size_t count, std::uint64_t seed) {
  const auto& f = fixture();
  pcq::util::SplitMix64 rng(seed);
  std::vector<Edge> qs(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (rng.next_bool(0.5)) {
      // Half the queries hit real edges.
      const auto u = static_cast<VertexId>(rng.next_below(512));
      const auto row = f.plain.neighbors(u);
      if (!row.empty()) {
        qs[i] = {u, row[rng.next_below(row.size())]};
        continue;
      }
    }
    qs[i] = {static_cast<VertexId>(rng.next_below(512)),
             static_cast<VertexId>(rng.next_below(512))};
  }
  return qs;
}

// --- Algorithm 6 -----------------------------------------------------------

TEST(BatchNeighbors, MatchesPlainRows) {
  const auto& f = fixture();
  const auto nodes = random_nodes(200, 1);
  const auto result = batch_neighbors(f.packed, nodes, 4);
  ASSERT_EQ(result.size(), nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto expect = f.plain.neighbors(nodes[i]);
    ASSERT_EQ(result[i].size(), expect.size()) << "query " << i;
    EXPECT_TRUE(std::equal(result[i].begin(), result[i].end(), expect.begin()));
  }
}

TEST(BatchNeighbors, EmptyQueryArray) {
  EXPECT_TRUE(batch_neighbors(fixture().packed, {}, 4).empty());
}

TEST(BatchNeighbors, DuplicateQueriesAnsweredIndependently) {
  const auto& f = fixture();
  const std::vector<VertexId> nodes{7, 7, 7};
  const auto result = batch_neighbors(f.packed, nodes, 4);
  const auto expect = f.plain.neighbors(7);
  for (const auto& row : result) {
    ASSERT_EQ(row.size(), expect.size());
    EXPECT_TRUE(std::equal(row.begin(), row.end(), expect.begin()));
  }
}

TEST(BatchNeighborsFlat, MatchesNestedResult) {
  const auto& f = fixture();
  const auto nodes = random_nodes(300, 11);
  const auto nested = batch_neighbors(f.packed, nodes, 4);
  for (int p : {1, 2, 4, 8, 64}) {
    const auto flat = batch_neighbors_flat(f.packed, nodes, p);
    ASSERT_EQ(flat.offsets.size(), nodes.size() + 1);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto row = flat.row(i);
      ASSERT_EQ(row.size(), nested[i].size()) << "p=" << p << " i=" << i;
      EXPECT_TRUE(std::equal(row.begin(), row.end(), nested[i].begin()));
    }
  }
}

TEST(BatchNeighborsFlat, EmptyBatch) {
  const auto flat = batch_neighbors_flat(fixture().packed, {}, 4);
  EXPECT_EQ(flat.offsets, (std::vector<std::uint64_t>{0}));
  EXPECT_TRUE(flat.values.empty());
}

TEST(BatchNeighborsFlat, IsolatedNodesGetEmptyRows) {
  const CsrGraph csr = build_csr_from_sorted(EdgeList({{0, 1}}), 10, 2);
  const BitPackedCsr packed = BitPackedCsr::from_csr(csr, 2);
  const std::vector<VertexId> nodes{5, 0, 7};
  const auto flat = batch_neighbors_flat(packed, nodes, 4);
  EXPECT_TRUE(flat.row(0).empty());
  ASSERT_EQ(flat.row(1).size(), 1u);
  EXPECT_EQ(flat.row(1)[0], 1u);
  EXPECT_TRUE(flat.row(2).empty());
}

// --- Algorithm 7 -----------------------------------------------------------

TEST(BatchEdgeExistence, MatchesPlainHasEdge) {
  const auto& f = fixture();
  const auto queries = random_edge_queries(500, 3);
  const auto result = batch_edge_existence(f.packed, queries, 4);
  ASSERT_EQ(result.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(result[i] != 0, f.plain.has_edge(queries[i].u, queries[i].v))
        << queries[i].u << "->" << queries[i].v;
  }
}

TEST(BatchEdgeExistence, MixOfHitsAndMisses) {
  const auto queries = random_edge_queries(500, 5);
  const auto result = batch_edge_existence(fixture().packed, queries, 8);
  const std::size_t hits =
      static_cast<std::size_t>(std::count(result.begin(), result.end(), 1));
  EXPECT_GT(hits, 0u);
  EXPECT_LT(hits, queries.size());
}

TEST(BatchEdgeExistence, BinarySearchMatchesLinear) {
  const auto& f = fixture();
  const auto queries = random_edge_queries(500, 13);
  const auto linear =
      batch_edge_existence(f.packed, queries, 4, RowSearch::kLinear);
  for (int p : {1, 2, 4, 8}) {
    const auto binary =
        batch_edge_existence(f.packed, queries, p, RowSearch::kBinary);
    ASSERT_EQ(binary.size(), linear.size());
    for (std::size_t i = 0; i < queries.size(); ++i)
      EXPECT_EQ(binary[i], linear[i])
          << "p=" << p << " " << queries[i].u << "->" << queries[i].v;
  }
}

// --- Algorithm 8 -----------------------------------------------------------

TEST(IntraRowEdgeExistence, LinearMatchesOracle) {
  const auto& f = fixture();
  const auto queries = random_edge_queries(300, 7);
  for (const Edge& q : queries) {
    EXPECT_EQ(edge_exists_intra_row(f.packed, q.u, q.v, 4, RowSearch::kLinear),
              f.plain.has_edge(q.u, q.v));
  }
}

TEST(IntraRowEdgeExistence, BinaryMatchesLinear) {
  const auto& f = fixture();
  const auto queries = random_edge_queries(300, 9);
  for (const Edge& q : queries) {
    EXPECT_EQ(edge_exists_intra_row(f.packed, q.u, q.v, 4, RowSearch::kBinary),
              edge_exists_intra_row(f.packed, q.u, q.v, 4, RowSearch::kLinear));
  }
}

TEST(IntraRowEdgeExistence, EmptyRow) {
  // Build a graph with an isolated node and query it.
  const CsrGraph csr = build_csr_from_sorted(EdgeList({{0, 1}}), 10, 2);
  const BitPackedCsr packed = BitPackedCsr::from_csr(csr, 2);
  EXPECT_FALSE(edge_exists_intra_row(packed, 5, 1, 4));
}

TEST(IntraRowEdgeExistence, FirstAndLastNeighbor) {
  const auto& f = fixture();
  VertexId u = 0;
  std::uint32_t best = 0;
  for (VertexId c = 0; c < 512; ++c)
    if (f.plain.degree(c) > best) {
      best = f.plain.degree(c);
      u = c;
    }
  const auto row = f.plain.neighbors(u);
  ASSERT_GE(row.size(), 2u);
  for (int p : {1, 2, 4, 8}) {
    EXPECT_TRUE(edge_exists_intra_row(f.packed, u, row.front(), p));
    EXPECT_TRUE(edge_exists_intra_row(f.packed, u, row.back(), p));
    EXPECT_TRUE(
        edge_exists_intra_row(f.packed, u, row.front(), p, RowSearch::kBinary));
    EXPECT_TRUE(
        edge_exists_intra_row(f.packed, u, row.back(), p, RowSearch::kBinary));
  }
}

TEST(IntraRowEdgeExistence, EarlyExitOnHugeRow) {
  // A star hub with a row far longer than the 1024-element poll stride:
  // every chunk runs the polling loop, and hits anywhere in the row
  // (first, middle, last, absent) must stay correct at every thread count.
  constexpr VertexId kLeaves = 200'000;
  EdgeList star;
  star.reserve(kLeaves);
  for (VertexId v = 1; v <= kLeaves; ++v) star.push_back({0, v});
  const CsrGraph csr = build_csr_from_sorted(star, kLeaves + 1, 4);
  const BitPackedCsr packed = BitPackedCsr::from_csr(csr, 4);
  for (int p : {1, 2, 4, 8}) {
    EXPECT_TRUE(edge_exists_intra_row(packed, 0, 1, p)) << "p=" << p;
    EXPECT_TRUE(edge_exists_intra_row(packed, 0, kLeaves / 2, p)) << "p=" << p;
    EXPECT_TRUE(edge_exists_intra_row(packed, 0, kLeaves, p)) << "p=" << p;
    EXPECT_FALSE(edge_exists_intra_row(packed, 1, 0, p)) << "p=" << p;
    EXPECT_FALSE(edge_exists_intra_row(packed, 0, kLeaves + 1, p))
        << "p=" << p;
  }
}

// Property sweep: every algorithm at every thread count equals the oracle.
class QueryThreadSweep : public testing::TestWithParam<int> {};

TEST_P(QueryThreadSweep, AllAlgorithmsMatchOracle) {
  const int p = GetParam();
  const auto& f = fixture();
  const auto nodes = random_nodes(64, 100 + p);
  const auto nbrs = batch_neighbors(f.packed, nodes, p);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto expect = f.plain.neighbors(nodes[i]);
    ASSERT_EQ(nbrs[i].size(), expect.size());
    EXPECT_TRUE(std::equal(nbrs[i].begin(), nbrs[i].end(), expect.begin()));
  }
  const auto queries = random_edge_queries(128, 200 + p);
  const auto exist = batch_edge_existence(f.packed, queries, p);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const bool oracle = f.plain.has_edge(queries[i].u, queries[i].v);
    EXPECT_EQ(exist[i] != 0, oracle);
    EXPECT_EQ(edge_exists_intra_row(f.packed, queries[i].u, queries[i].v, p),
              oracle);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, QueryThreadSweep,
                         testing::Values(1, 2, 3, 4, 8, 16, 64));

}  // namespace
}  // namespace pcq::csr
