// Tests for the pcq::obs metrics registry and the geometric-midpoint
// quantile of LogHistogram (the histogram's bucket mechanics are covered
// by test_svc_metrics.cpp, which exercises the same class through the
// pcq::svc re-export).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using pcq::obs::Counter;
using pcq::obs::Gauge;
using pcq::obs::LogHistogram;
using pcq::obs::MetricsRegistry;

TEST(ObsMetricsRegistry, SameNameYieldsSameObject) {
  MetricsRegistry reg;
  Counter& a = reg.counter("svc.flush.size");
  Counter& b = reg.counter("svc.flush.size");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &reg.counter("svc.flush.deadline"));
  EXPECT_EQ(&reg.gauge("svc.window_us"), &reg.gauge("svc.window_us"));
  EXPECT_EQ(&reg.histogram("svc.wait_us"), &reg.histogram("svc.wait_us"));
}

TEST(ObsMetricsRegistry, KindsShareANamespacePerKindOnly) {
  MetricsRegistry reg;
  // The same name can back a counter and a gauge independently — kinds
  // live in separate maps.
  reg.counter("x").add(3);
  reg.gauge("x").set(-7);
  EXPECT_EQ(reg.counter("x").value(), 3u);
  EXPECT_EQ(reg.gauge("x").value(), -7);
}

TEST(ObsMetricsRegistry, ConcurrentCounterAddsAreLossless) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  constexpr int kThreads = 8;
  constexpr int kAdds = 20'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add(1);
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(ObsMetricsRegistry, WriteTextListsSortedNamesWithValues) {
  MetricsRegistry reg;
  reg.counter("b.count").add(2);
  reg.counter("a.count").add(1);
  reg.gauge("c.level").set(-4);
  reg.histogram("d.us").record(100);
  std::ostringstream out;
  reg.write_text(out);
  const std::string text = out.str();
  const auto pos_a = text.find("a.count 1");
  const auto pos_b = text.find("b.count 2");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  EXPECT_LT(pos_a, pos_b);
  EXPECT_NE(text.find("c.level -4"), std::string::npos);
  EXPECT_NE(text.find("d.us"), std::string::npos);
}

TEST(ObsMetricsRegistry, WriteJsonIsOneObject) {
  MetricsRegistry reg;
  reg.counter("a").add(5);
  reg.histogram("h").record(42);
  std::ostringstream out;
  reg.write_json(out);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"a\":5"), std::string::npos);
  EXPECT_NE(json.find("\"h\""), std::string::npos);
}

TEST(ObsMetricsRegistry, ResetZeroesButKeepsReferences) {
  MetricsRegistry reg;
  Counter& c = reg.counter("n");
  Gauge& g = reg.gauge("g");
  LogHistogram& h = reg.histogram("h");
  c.add(9);
  g.set(3);
  h.record(1000);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.snapshot().count, 0u);
  c.add(1);  // the pre-reset reference still records
  EXPECT_EQ(reg.counter("n").value(), 1u);
}

TEST(ObsMetricsRegistry, GlobalIsAProcessSingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

TEST(ObsLogHistogram, QuantileIsGeometricMidpointOfWinningBucket) {
  LogHistogram h;
  h.record(1000);
  const auto snap = h.snapshot();
  const int bucket = LogHistogram::bucket_index(1000);
  const double lo = static_cast<double>(LogHistogram::bucket_floor(bucket));
  const double hi =
      static_cast<double>(LogHistogram::bucket_floor(bucket + 1));
  const double q = snap.quantile(0.5);
  EXPECT_DOUBLE_EQ(q, std::sqrt(lo * hi));
  // The estimate never leaves the bucket that holds the sample, and the
  // relative error against the true value is within the documented bound.
  EXPECT_GE(q, lo);
  EXPECT_LT(q, hi);
  EXPECT_LT(std::abs(q - 1000.0) / 1000.0,
            std::sqrt(1.0 + 1.0 / LogHistogram::kSub) - 1.0 + 1e-9);
}

TEST(ObsLogHistogram, SmallValuesHaveExactQuantiles) {
  LogHistogram h;
  for (std::uint64_t v : {0, 1, 2, 3}) h.record(v);
  const auto snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 3.0);
}

}  // namespace
