#include "graph/edge_list.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace pcq::graph {
namespace {

TEST(EdgeList, EmptyProperties) {
  EdgeList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.num_nodes(), 0u);
  EXPECT_EQ(list.size_bytes(), 0u);
  EXPECT_TRUE(list.is_sorted());
}

TEST(EdgeList, NumNodesIsMaxPlusOne) {
  EdgeList list({{0, 5}, {3, 2}});
  EXPECT_EQ(list.num_nodes(), 6u);
  list.push_back({9, 1});
  EXPECT_EQ(list.num_nodes(), 10u);
}

TEST(EdgeList, SizeBytesIsEightPerEdge) {
  EdgeList list({{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(list.size_bytes(), 3 * 8u);
}

TEST(EdgeList, TextSizeMatchesSnapFormat) {
  // "0\t5\n" = 4, "12\t345\n" = 7, "1000000\t9\n" = 10.
  EdgeList list({{0, 5}, {12, 345}, {1'000'000, 9}});
  EXPECT_EQ(list.text_size_bytes(), 4u + 7u + 10u);
}

TEST(EdgeList, SortOrdersBySourceThenDest) {
  EdgeList list({{2, 1}, {0, 9}, {2, 0}, {0, 3}});
  EXPECT_FALSE(list.is_sorted());
  list.sort(4);
  EXPECT_TRUE(list.is_sorted());
  const auto edges = list.edges();
  EXPECT_EQ(edges[0], (Edge{0, 3}));
  EXPECT_EQ(edges[1], (Edge{0, 9}));
  EXPECT_EQ(edges[2], (Edge{2, 0}));
  EXPECT_EQ(edges[3], (Edge{2, 1}));
}

TEST(EdgeList, DedupeRemovesAdjacentDuplicates) {
  EdgeList list({{0, 1}, {0, 1}, {0, 1}, {1, 2}});
  list.dedupe();
  EXPECT_EQ(list.size(), 2u);
}

TEST(EdgeList, RemoveSelfLoops) {
  EdgeList list({{0, 0}, {0, 1}, {2, 2}, {1, 2}});
  list.remove_self_loops();
  EXPECT_EQ(list.size(), 2u);
  for (const Edge& e : list.edges()) EXPECT_NE(e.u, e.v);
}

TEST(EdgeList, SymmetrizeDoublesEdges) {
  EdgeList list({{0, 1}, {2, 3}});
  list.symmetrize();
  EXPECT_EQ(list.size(), 4u);
  const auto edges = list.edges();
  EXPECT_NE(std::find(edges.begin(), edges.end(), Edge{1, 0}), edges.end());
  EXPECT_NE(std::find(edges.begin(), edges.end(), Edge{3, 2}), edges.end());
}

TEST(EdgeList, UpperTriangleMatchesPaperFigure1) {
  // The 10-node example of Table I, given as a symmetric edge list. The
  // upper triangle must be exactly the 7 edges Figure 1 packs:
  // (0,5) (1,6) (1,7) (2,7) (3,8) (3,9) (4,9).
  EdgeList list({{0, 5}, {5, 0}, {1, 6}, {6, 1}, {1, 7}, {7, 1}, {2, 7},
                 {7, 2}, {3, 8}, {8, 3}, {3, 9}, {9, 3}, {4, 9}, {9, 4}});
  list.to_upper_triangle();
  const std::vector<Edge> expected{{0, 5}, {1, 6}, {1, 7}, {2, 7},
                                   {3, 8}, {3, 9}, {4, 9}};
  ASSERT_EQ(list.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(list.edges()[i], expected[i]);
}

TEST(TemporalEdgeList, SortUsesTimeSourceOrder) {
  TemporalEdgeList list({{5, 1, 2}, {0, 1, 0}, {3, 2, 0}, {0, 2, 1}});
  EXPECT_FALSE(list.is_sorted());
  list.sort(2);
  EXPECT_TRUE(list.is_sorted());
  const auto evs = list.edges();
  EXPECT_EQ(evs[0], (TemporalEdge{0, 1, 0}));
  EXPECT_EQ(evs[1], (TemporalEdge{3, 2, 0}));
  EXPECT_EQ(evs[2], (TemporalEdge{0, 2, 1}));
  EXPECT_EQ(evs[3], (TemporalEdge{5, 1, 2}));
}

TEST(TemporalEdgeList, FrameAndNodeCounts) {
  TemporalEdgeList list({{0, 1, 0}, {2, 3, 7}});
  EXPECT_EQ(list.num_nodes(), 4u);
  EXPECT_EQ(list.num_frames(), 8u);
  EXPECT_EQ(list.size_bytes(), 2 * sizeof(TemporalEdge));
}

TEST(TemporalEdgeList, EmptyCounts) {
  TemporalEdgeList list;
  EXPECT_EQ(list.num_nodes(), 0u);
  EXPECT_EQ(list.num_frames(), 0u);
}

}  // namespace
}  // namespace pcq::graph
