#include "algos/components.hpp"

#include <gtest/gtest.h>

#include "csr/builder.hpp"
#include "graph/generators.hpp"

namespace pcq::algos {
namespace {

using graph::EdgeList;
using graph::VertexId;

csr::CsrGraph build_symmetric(EdgeList g, VertexId n) {
  g.symmetrize();
  g.sort(4);
  g.dedupe();
  return csr::build_csr_from_sorted(g, n, 4);
}

TEST(Components, TwoIslands) {
  const csr::CsrGraph g = build_symmetric(EdgeList({{0, 1}, {1, 2}, {4, 5}}), 6);
  const auto labels = connected_components_label_prop(g, 4);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[4], labels[5]);
  EXPECT_NE(labels[0], labels[4]);
  EXPECT_NE(labels[3], labels[0]);  // isolated node 3 is its own component
  EXPECT_EQ(count_components(labels), 3u);
}

TEST(Components, LabelsAreComponentMinima) {
  const csr::CsrGraph g = build_symmetric(EdgeList({{5, 9}, {9, 7}, {1, 3}}), 10);
  const auto labels = connected_components_label_prop(g, 4);
  EXPECT_EQ(labels[5], 5u);
  EXPECT_EQ(labels[9], 5u);
  EXPECT_EQ(labels[7], 5u);
  EXPECT_EQ(labels[1], 1u);
  EXPECT_EQ(labels[3], 1u);
}

TEST(Components, SingleComponentRing) {
  EdgeList g;
  for (VertexId v = 0; v < 50; ++v) g.push_back({v, (v + 1) % 50});
  const csr::CsrGraph csr = build_symmetric(std::move(g), 50);
  const auto labels = connected_components_label_prop(csr, 4);
  EXPECT_EQ(count_components(labels), 1u);
  for (VertexId v = 0; v < 50; ++v) EXPECT_EQ(labels[v], 0u);
}

TEST(Components, LabelPropMatchesUnionFind) {
  const csr::CsrGraph g = build_symmetric(
      graph::erdos_renyi(500, 600, 71, 4), 500);  // sparse -> many components
  const auto lp = connected_components_label_prop(g, 4);
  const auto uf = connected_components_union_find(g);
  EXPECT_EQ(lp, uf);
  EXPECT_GT(count_components(lp), 1u);
}

TEST(Components, ThreadCountInvariance) {
  const csr::CsrGraph g =
      build_symmetric(graph::erdos_renyi(300, 400, 73, 4), 300);
  const auto ref = connected_components_label_prop(g, 1);
  for (int p : {2, 4, 8, 64})
    EXPECT_EQ(connected_components_label_prop(g, p), ref) << "p=" << p;
}

TEST(Components, EmptyGraphAllSingletons) {
  const csr::CsrGraph g = csr::build_csr_from_sorted(EdgeList{}, 7, 2);
  const auto labels = connected_components_label_prop(g, 4);
  EXPECT_EQ(count_components(labels), 7u);
}

}  // namespace
}  // namespace pcq::algos
