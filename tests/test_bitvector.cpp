#include "bits/bitvector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace pcq::bits {
namespace {

TEST(BitVector, EmptyProperties) {
  BitVector bv;
  EXPECT_EQ(bv.size(), 0u);
  EXPECT_TRUE(bv.empty());
  EXPECT_EQ(bv.size_bytes(), 0u);
  EXPECT_EQ(bv.popcount(), 0u);
}

TEST(BitVector, SizedConstructorZeroInitialises) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(bv.get(i));
  EXPECT_EQ(bv.size_bytes(), 24u);  // ceil(130/64) = 3 words
}

TEST(BitVector, SetAndGet) {
  BitVector bv(200);
  bv.set(0, true);
  bv.set(63, true);
  bv.set(64, true);
  bv.set(199, true);
  EXPECT_TRUE(bv.get(0));
  EXPECT_TRUE(bv.get(63));
  EXPECT_TRUE(bv.get(64));
  EXPECT_TRUE(bv.get(199));
  EXPECT_FALSE(bv.get(1));
  EXPECT_EQ(bv.popcount(), 4u);
  bv.set(63, false);
  EXPECT_FALSE(bv.get(63));
  EXPECT_EQ(bv.popcount(), 3u);
}

TEST(BitVector, PushBackAcrossWordBoundary) {
  BitVector bv;
  for (int i = 0; i < 130; ++i) bv.push_back(i % 3 == 0);
  EXPECT_EQ(bv.size(), 130u);
  for (int i = 0; i < 130; ++i) EXPECT_EQ(bv.get(i), i % 3 == 0) << i;
}

TEST(BitVector, AppendBitsRoundTrip) {
  BitVector bv;
  bv.append_bits(0b1011, 4);
  bv.append_bits(0xff, 8);
  bv.append_bits(0, 3);
  bv.append_bits(0x123456789abcdef0ULL, 64);
  EXPECT_EQ(bv.size(), 4u + 8 + 3 + 64);
  EXPECT_EQ(bv.read_bits(0, 4), 0b1011u);
  EXPECT_EQ(bv.read_bits(4, 8), 0xffu);
  EXPECT_EQ(bv.read_bits(12, 3), 0u);
  EXPECT_EQ(bv.read_bits(15, 64), 0x123456789abcdef0ULL);
}

TEST(BitVector, AppendBitsMasksHighBits) {
  BitVector bv;
  bv.append_bits(0xffffffffffffffffULL, 5);  // only the low 5 bits count
  EXPECT_EQ(bv.size(), 5u);
  EXPECT_EQ(bv.read_bits(0, 5), 0x1fu);
}

TEST(BitVector, ZeroWidthAppendIsNoop) {
  BitVector bv;
  bv.append_bits(123, 0);
  EXPECT_EQ(bv.size(), 0u);
}

TEST(BitVector, ReadBitsStraddlingWords) {
  BitVector bv;
  for (int rep = 0; rep < 4; ++rep) bv.append_bits(0xaaaaaaaaaaaaaaaaULL, 64);
  // A 64-bit read at offset 33 crosses a word boundary.
  const std::uint64_t v = bv.read_bits(33, 64);
  EXPECT_EQ(v, 0x5555555555555555ULL);
}

TEST(BitVector, RandomRoundTripMixedWidths) {
  pcq::util::SplitMix64 rng(42);
  std::vector<std::pair<std::uint64_t, unsigned>> entries;
  BitVector bv;
  for (int i = 0; i < 2000; ++i) {
    const auto width = static_cast<unsigned>(1 + rng.next_below(64));
    const std::uint64_t value =
        width == 64 ? rng.next() : rng.next() & ((1ULL << width) - 1);
    entries.emplace_back(value, width);
    bv.append_bits(value, width);
  }
  std::size_t pos = 0;
  for (const auto& [value, width] : entries) {
    EXPECT_EQ(bv.read_bits(pos, width), value);
    pos += width;
  }
  EXPECT_EQ(bv.size(), pos);
}

TEST(BitVector, AppendWordAligned) {
  BitVector a;
  a.append_bits(0xdeadbeef, 64);
  BitVector b;
  b.append_bits(0x1234, 64);
  a.append(b);
  EXPECT_EQ(a.size(), 128u);
  EXPECT_EQ(a.read_bits(0, 64), 0xdeadbeefULL);
  EXPECT_EQ(a.read_bits(64, 64), 0x1234ULL);
}

TEST(BitVector, AppendUnaligned) {
  BitVector a;
  a.append_bits(0b101, 3);
  BitVector b;
  b.append_bits(0b11011, 5);
  b.append_bits(0xabcdef, 24);
  a.append(b);
  EXPECT_EQ(a.size(), 32u);
  EXPECT_EQ(a.read_bits(0, 3), 0b101u);
  EXPECT_EQ(a.read_bits(3, 5), 0b11011u);
  EXPECT_EQ(a.read_bits(8, 24), 0xabcdefu);
}

TEST(BitVector, AppendEmptyIsNoop) {
  BitVector a;
  a.append_bits(7, 3);
  BitVector b;
  a.append(b);
  EXPECT_EQ(a.size(), 3u);
}

TEST(BitVector, EqualityIgnoresPaddingGarbage) {
  BitVector a, b;
  a.append_bits(0b101, 3);
  b.append_bits(0b101, 3);
  EXPECT_TRUE(a == b);
  b.set(2, false);
  EXPECT_FALSE(a == b);
}

TEST(BitVector, EqualityDifferentLengths) {
  BitVector a, b;
  a.append_bits(1, 1);
  b.append_bits(1, 2);
  EXPECT_FALSE(a == b);
}

TEST(BitVector, BitsForWidths) {
  EXPECT_EQ(bits_for(0), 1u);
  EXPECT_EQ(bits_for(1), 1u);
  EXPECT_EQ(bits_for(2), 2u);
  EXPECT_EQ(bits_for(3), 2u);
  EXPECT_EQ(bits_for(4), 3u);
  EXPECT_EQ(bits_for(255), 8u);
  EXPECT_EQ(bits_for(256), 9u);
  EXPECT_EQ(bits_for(0xffffffffffffffffULL), 64u);
}

}  // namespace
}  // namespace pcq::bits
