#include "graph/baselines.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.hpp"

namespace pcq::graph {
namespace {

EdgeList small_sorted_graph() {
  EdgeList g = erdos_renyi(64, 500, 9, 2);
  g.sort(2);
  g.dedupe();
  return g;
}

TEST(AdjacencyListGraph, NeighborsMatchInput) {
  const EdgeList g = small_sorted_graph();
  AdjacencyListGraph adj(g);
  std::size_t total = 0;
  for (VertexId u = 0; u < adj.num_nodes(); ++u) total += adj.neighbors(u).size();
  EXPECT_EQ(total, g.size());
  for (const Edge& e : g.edges()) {
    const auto nbrs = adj.neighbors(e.u);
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), e.v), nbrs.end());
  }
}

TEST(AdjacencyListGraph, HasEdgePositiveAndNegative) {
  const EdgeList g = small_sorted_graph();
  AdjacencyListGraph adj(g);
  std::set<Edge> present(g.edges().begin(), g.edges().end());
  for (const Edge& e : g.edges()) EXPECT_TRUE(adj.has_edge(e.u, e.v));
  int checked = 0;
  for (VertexId u = 0; u < 64 && checked < 100; ++u)
    for (VertexId v = 0; v < 64 && checked < 100; ++v)
      if (!present.count({u, v})) {
        EXPECT_FALSE(adj.has_edge(u, v));
        ++checked;
      }
}

TEST(AdjacencyListGraph, ExplicitNodeCountAllowsIsolatedNodes) {
  AdjacencyListGraph adj(EdgeList({{0, 1}}), 10);
  EXPECT_EQ(adj.num_nodes(), 10u);
  EXPECT_TRUE(adj.neighbors(9).empty());
}

TEST(AdjacencyListGraph, SizeBytesGrowsWithEdges) {
  const EdgeList small = erdos_renyi(64, 100, 1, 2);
  const EdgeList large = erdos_renyi(64, 10'000, 1, 2);
  EXPECT_LT(AdjacencyListGraph(small).size_bytes(),
            AdjacencyListGraph(large).size_bytes());
}

TEST(DenseBitMatrixGraph, QueriesMatchAdjacencyList) {
  const EdgeList g = small_sorted_graph();
  AdjacencyListGraph adj(g);
  DenseBitMatrixGraph mat(g);
  ASSERT_EQ(mat.num_nodes(), adj.num_nodes());
  for (VertexId u = 0; u < mat.num_nodes(); ++u) {
    for (VertexId v = 0; v < mat.num_nodes(); ++v)
      EXPECT_EQ(mat.has_edge(u, v), adj.has_edge(u, v));
    auto nbrs = adj.neighbors(u);
    std::vector<VertexId> sorted(nbrs.begin(), nbrs.end());
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    EXPECT_EQ(mat.neighbors(u), sorted);
  }
}

TEST(DenseBitMatrixGraph, QuadraticFootprint) {
  const EdgeList tiny({{0, 1}});
  DenseBitMatrixGraph mat(tiny, 1024);
  EXPECT_EQ(mat.size_bytes(), 1024u * 1024 / 8);
}

TEST(DenseBitMatrixGraphDeathTest, RejectsHugeGraphs) {
  EXPECT_DEATH(DenseBitMatrixGraph(EdgeList({{0, 1}}), 100'000),
               "dense matrix too large");
}

TEST(EdgeListGraph, SortedQueriesUseBinarySearch) {
  EdgeList g = small_sorted_graph();
  const EdgeList copy = g;
  EdgeListGraph store(std::move(g));
  for (const Edge& e : copy.edges()) EXPECT_TRUE(store.has_edge(e.u, e.v));
  EXPECT_FALSE(store.has_edge(63, 63));
}

TEST(EdgeListGraph, UnsortedQueriesStillCorrect) {
  EdgeList g({{5, 2}, {1, 9}, {5, 7}});
  EdgeListGraph store(std::move(g));
  EXPECT_TRUE(store.has_edge(5, 2));
  EXPECT_TRUE(store.has_edge(1, 9));
  EXPECT_FALSE(store.has_edge(2, 5));
  EXPECT_EQ(store.neighbors(5), (std::vector<VertexId>{2, 7}));
}

TEST(EdgeListGraph, NeighborsOfIsolatedNodeEmpty) {
  EdgeListGraph store(EdgeList({{0, 1}}));
  EXPECT_TRUE(store.neighbors(5).empty());
}

}  // namespace
}  // namespace pcq::graph
