#include "algos/frontier.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "algos/bfs.hpp"
#include "algos/components.hpp"
#include "csr/builder.hpp"
#include "graph/generators.hpp"

namespace pcq::algos {
namespace {

using graph::EdgeList;
using graph::VertexId;

csr::CsrGraph symmetric_csr(EdgeList g, VertexId n) {
  g.symmetrize();
  g.sort(4);
  g.dedupe();
  g.remove_self_loops();
  return csr::build_csr_from_sorted(g, n, 4);
}

TEST(VertexSubset, SingleAndMembership) {
  const auto s = VertexSubset::single(10, 3);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.ids(), (std::vector<VertexId>{3}));
}

TEST(VertexSubset, FromIdsDedupes) {
  const auto s = VertexSubset::from_ids(10, {5, 2, 5, 7, 2});
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.ids(), (std::vector<VertexId>{2, 5, 7}));
}

TEST(VertexSubset, DenseRoundTrip) {
  auto s = VertexSubset::from_ids(100, {1, 50, 99});
  s.to_dense();
  EXPECT_TRUE(s.is_dense());
  EXPECT_TRUE(s.contains(50));
  EXPECT_FALSE(s.contains(51));
  EXPECT_EQ(s.ids(), (std::vector<VertexId>{1, 50, 99}));
}

TEST(FrontierEngine, EdgeMapSinglePushStep) {
  // Star centre 0: one push step reaches all leaves exactly once.
  EdgeList g;
  for (VertexId v = 1; v < 20; ++v) g.push_back({0, v});
  const csr::CsrGraph csr = symmetric_csr(std::move(g), 20);
  FrontierEngine engine(csr, csr, 4);
  std::vector<std::atomic<int>> claims(20);
  for (auto& c : claims) c.store(0);
  const auto next = engine.edge_map(
      VertexSubset::single(20, 0),
      [&](VertexId, VertexId v) {
        return claims[v].fetch_add(1, std::memory_order_relaxed) == 0;
      },
      [](VertexId v) { return v != 0; });
  EXPECT_EQ(next.count(), 19u);
  for (VertexId v = 1; v < 20; ++v) EXPECT_TRUE(next.contains(v));
  EXPECT_FALSE(next.contains(0));
}

TEST(FrontierEngine, VertexMapAndFilter) {
  EdgeList g({{0, 1}});
  const csr::CsrGraph csr = symmetric_csr(std::move(g), 8);
  FrontierEngine engine(csr, csr, 2);
  const auto s = VertexSubset::from_ids(8, {1, 2, 3, 4, 5});
  std::atomic<int> visits{0};
  engine.vertex_map(s, [&](VertexId) { visits.fetch_add(1); });
  EXPECT_EQ(visits.load(), 5);
  const auto evens =
      engine.vertex_filter(s, [](VertexId v) { return v % 2 == 0; });
  EXPECT_EQ(evens.ids(), (std::vector<VertexId>{2, 4}));
}

TEST(BfsFrontier, MatchesDirectBfsOnRandomGraphs) {
  for (std::uint64_t seed : {3u, 7u, 11u}) {
    const csr::CsrGraph g = symmetric_csr(
        graph::rmat(1 << 9, 6000, 0.57, 0.19, 0.19, seed, 4), 1 << 9);
    const auto expect = bfs(g, 0, 4);
    for (int p : {1, 4, 8})
      EXPECT_EQ(bfs_frontier(g, 0, p), expect) << "seed=" << seed << " p=" << p;
  }
}

TEST(BfsFrontier, TriggersBothPushAndPull) {
  // A dense-ish graph forces the pull branch after the first expansion
  // (frontier degree mass > |E| / 20 quickly), while the first step is a
  // sparse push — the distances must still be exact.
  const csr::CsrGraph g = symmetric_csr(
      graph::erdos_renyi(500, 20'000, 13, 4), 500);
  EXPECT_EQ(bfs_frontier(g, 42, 4), bfs(g, 42, 4));
}

TEST(BfsFrontier, DisconnectedStaysUnreachable) {
  const csr::CsrGraph g = symmetric_csr(EdgeList({{0, 1}, {3, 4}}), 5);
  const auto dist = bfs_frontier(g, 0, 4);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(CcFrontier, MatchesUnionFind) {
  const csr::CsrGraph g = symmetric_csr(
      graph::erdos_renyi(400, 500, 17, 4), 400);  // sparse, many components
  const auto expect = connected_components_union_find(g);
  for (int p : {1, 4})
    EXPECT_EQ(cc_frontier(g, p), expect) << "p=" << p;
}

TEST(CcFrontier, SingleRing) {
  EdgeList g;
  for (VertexId v = 0; v < 64; ++v) g.push_back({v, (v + 1) % 64});
  const csr::CsrGraph csr = symmetric_csr(std::move(g), 64);
  const auto labels = cc_frontier(csr, 4);
  for (VertexId v = 0; v < 64; ++v) EXPECT_EQ(labels[v], 0u);
}

}  // namespace
}  // namespace pcq::algos
