#include "algos/pagerank.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "csr/builder.hpp"
#include "graph/generators.hpp"

namespace pcq::algos {
namespace {

using graph::EdgeList;
using graph::VertexId;

csr::CsrGraph build_sorted(EdgeList g, VertexId n) {
  g.sort(4);
  g.dedupe();
  return csr::build_csr_from_sorted(g, n, 4);
}

TEST(PageRank, ScoresSumToOne) {
  const csr::CsrGraph g =
      build_sorted(graph::rmat(256, 4000, 0.57, 0.19, 0.19, 81, 4), 256);
  const auto result = pagerank(g, {}, 4);
  const double sum =
      std::accumulate(result.scores.begin(), result.scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(PageRank, Converges) {
  const csr::CsrGraph g =
      build_sorted(graph::rmat(256, 4000, 0.57, 0.19, 0.19, 83, 4), 256);
  PageRankOptions opts;
  opts.tolerance = 1e-9;
  opts.max_iterations = 200;
  const auto result = pagerank(g, opts, 4);
  EXPECT_LT(result.final_delta, 1e-9);
  EXPECT_LT(result.iterations, 200);
}

TEST(PageRank, UniformOnRegularRing) {
  // A symmetric ring is degree-regular: every node has identical rank.
  EdgeList g;
  for (VertexId v = 0; v < 64; ++v) {
    g.push_back({v, (v + 1) % 64});
    g.push_back({(v + 1) % 64, v});
  }
  const csr::CsrGraph csr = build_sorted(std::move(g), 64);
  const auto result = pagerank(csr, {}, 4);
  for (double s : result.scores) EXPECT_NEAR(s, 1.0 / 64, 1e-9);
}

TEST(PageRank, HubOfStarDominates) {
  // Symmetric star: the centre must hold the largest score by far.
  EdgeList g;
  for (VertexId v = 1; v < 101; ++v) {
    g.push_back({0, v});
    g.push_back({v, 0});
  }
  const csr::CsrGraph csr = build_sorted(std::move(g), 101);
  const auto result = pagerank(csr, {}, 4);
  for (VertexId v = 1; v < 101; ++v)
    EXPECT_GT(result.scores[0], 10 * result.scores[v]);
}

TEST(PageRank, DanglingMassRedistributed) {
  // 0 -> 1, 1 has no out-edges: without dangling handling the mass leaks
  // and the sum drifts below 1.
  const csr::CsrGraph g = build_sorted(EdgeList({{0, 1}}), 2);
  const auto result = pagerank(g, {}, 2);
  const double sum =
      std::accumulate(result.scores.begin(), result.scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PageRank, EmptyGraph) {
  const auto result = pagerank(csr::CsrGraph{}, {}, 2);
  EXPECT_TRUE(result.scores.empty());
}

TEST(PageRank, PackedCsrMatchesPlain) {
  const csr::CsrGraph g =
      build_sorted(graph::rmat(256, 6000, 0.57, 0.19, 0.19, 89, 4), 256);
  const csr::BitPackedCsr packed = csr::BitPackedCsr::from_csr(g, 4);
  const auto plain = pagerank(g, {}, 4);
  for (int p : {1, 4}) {
    const auto got = pagerank(packed, {}, p);
    EXPECT_EQ(got.iterations, plain.iterations);
    ASSERT_EQ(got.scores.size(), plain.scores.size());
    for (std::size_t v = 0; v < plain.scores.size(); ++v)
      EXPECT_NEAR(got.scores[v], plain.scores[v], 1e-12) << "p=" << p;
  }
}

TEST(PageRank, PackedEmptyGraph) {
  const auto result = pagerank(csr::BitPackedCsr{}, {}, 2);
  EXPECT_TRUE(result.scores.empty());
}

TEST(PageRank, ThreadCountInvariance) {
  const csr::CsrGraph g =
      build_sorted(graph::rmat(128, 2000, 0.57, 0.19, 0.19, 87, 4), 128);
  const auto ref = pagerank(g, {}, 1);
  for (int p : {2, 4, 8}) {
    const auto got = pagerank(g, {}, p);
    ASSERT_EQ(got.scores.size(), ref.scores.size());
    for (std::size_t v = 0; v < ref.scores.size(); ++v)
      EXPECT_NEAR(got.scores[v], ref.scores[v], 1e-12) << "p=" << p;
  }
}

}  // namespace
}  // namespace pcq::algos
