#include "util/table.hpp"

#include <gtest/gtest.h>

namespace pcq::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"Graph", "Time"});
  t.add_row({"Orkut", "235.52"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Graph"), std::string::npos);
  EXPECT_NE(s.find("Orkut"), std::string::npos);
  EXPECT_NE(s.find("235.52"), std::string::npos);
}

TEST(Table, PadsColumnsToWidestCell) {
  Table t({"A", "B"});
  t.add_row({"short", "x"});
  t.add_row({"a-much-longer-cell", "y"});
  const std::string s = t.to_string();
  // Every rendered row must have the same length (aligned columns).
  std::size_t first_len = std::string::npos;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t nl = s.find('\n', pos);
    const std::size_t len = nl - pos;
    if (first_len == std::string::npos)
      first_len = len;
    else
      EXPECT_EQ(len, first_len);
    pos = nl + 1;
  }
}

TEST(Table, EmptyCellsRenderAsBlanks) {
  Table t({"Graph", "p", "Time"});
  t.add_row({"LiveJournal", "1", "164.76"});
  t.add_row({"", "4", "57.94"});  // merged-cell style of Table II
  const std::string s = t.to_string();
  EXPECT_NE(s.find("57.94"), std::string::npos);
}

TEST(Table, RulesSeparateGroups) {
  Table t({"x"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string s = t.to_string();
  // header top+bottom rule, the inserted rule and the final rule: >= 4.
  std::size_t rules = 0, pos = 0;
  while ((pos = s.find("+-", pos)) != std::string::npos) {
    ++rules;
    pos = s.find('\n', pos);
  }
  EXPECT_GE(rules, 4u);
}

TEST(TableDeathTest, WrongRowWidthAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

}  // namespace
}  // namespace pcq::util
