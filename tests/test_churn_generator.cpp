#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "tcsr/baselines.hpp"
#include "tcsr/tcsr.hpp"

namespace pcq::graph {
namespace {

TEST(ChurnGenerator, ShapeAndDeterminism) {
  const TemporalEdgeList a = evolving_graph_churn(500, 5000, 16, 100, 0.4, 7);
  EXPECT_TRUE(a.is_sorted());
  EXPECT_EQ(a.size(), 5000u + 15u * 100u);
  EXPECT_LE(a.num_frames(), 16u);
  for (const TemporalEdge& e : a.edges()) {
    EXPECT_LT(e.u, 500u);
    EXPECT_LT(e.v, 500u);
    EXPECT_NE(e.u, e.v);
  }
  const TemporalEdgeList b = evolving_graph_churn(500, 5000, 16, 100, 0.4, 7);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.edges()[i], b.edges()[i]);
}

TEST(ChurnGenerator, FrameZeroHoldsTheBurst) {
  const TemporalEdgeList evs = evolving_graph_churn(200, 2000, 8, 50, 0.5, 3);
  std::size_t frame0 = 0;
  for (const TemporalEdge& e : evs.edges())
    if (e.t == 0) ++frame0;
  EXPECT_EQ(frame0, 2000u);
}

TEST(ChurnGenerator, DeletionsShrinkTheLiveGraph) {
  // deletion_bias 1.0: after frame 0 every event removes a live edge, so
  // the final snapshot is smaller than the initial one.
  const TemporalEdgeList evs = evolving_graph_churn(300, 3000, 10, 150, 1.0, 5);
  const auto tcsr = tcsr::DifferentialTcsr::build(evs, 300, 10, 4);
  const auto first = tcsr.snapshot_at(0, 4);
  const auto last = tcsr.snapshot_at(9, 4);
  EXPECT_LT(last.num_edges(), first.num_edges());
}

TEST(ChurnGenerator, PureAdditionsGrowTheLiveGraph) {
  const TemporalEdgeList evs = evolving_graph_churn(300, 1000, 10, 150, 0.0, 9);
  const auto tcsr = tcsr::DifferentialTcsr::build(evs, 300, 10, 4);
  const auto first = tcsr.snapshot_at(0, 4);
  const auto last = tcsr.snapshot_at(9, 4);
  EXPECT_GT(last.num_edges(), first.num_edges());
}

TEST(ChurnGenerator, DifferentialAdvantageOverSnapshots) {
  // Persistent graph + small churn: the workload §IV motivates. The
  // differential TCSR must be much smaller than per-frame snapshots.
  const TemporalEdgeList evs = evolving_graph_churn(400, 8000, 20, 40, 0.5, 11);
  const auto tcsr = tcsr::DifferentialTcsr::build(evs, 400, 20, 4);
  const auto snaps = tcsr::SnapshotSequence::build(evs, 400, 20, 4);
  EXPECT_LT(tcsr.size_bytes() * 5, snaps.size_bytes());
}

}  // namespace
}  // namespace pcq::graph
