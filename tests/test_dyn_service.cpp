// pcq::svc over a live pcq::dyn::HybridGraph: mutation kinds land, reads
// observe them, the read-only service rejects them, and a mixed
// multi-client load leaves the graph exactly where a sequential oracle
// says it should be. The concurrent cases double as TSan subjects.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "csr/builder.hpp"
#include "dyn/hybrid.hpp"
#include "graph/generators.hpp"
#include "svc/service.hpp"
#include "util/rng.hpp"

namespace pcq::svc {
namespace {

using dyn::HybridGraph;
using graph::Edge;
using graph::VertexId;
using pcq::util::SplitMix64;

constexpr VertexId kNodes = 256;

csr::BitPackedCsr make_base(std::uint64_t seed) {
  graph::EdgeList list = graph::rmat(kNodes, 4000, 0.57, 0.19, 0.19, seed, 2);
  list.sort(2);
  list.dedupe();
  return csr::build_bitpacked_csr_from_sorted(list, kNodes, 2);
}

Request make(QueryKind kind, VertexId u, VertexId v = 0) {
  Request r;
  r.kind = kind;
  r.u = u;
  r.v = v;
  return r;
}

ServiceConfig quick_config(int shards = 2) {
  ServiceConfig config;
  config.shards = shards;
  // Deep enough that the open-loop concurrent test never hits kRejected.
  config.queue_capacity = 16384;
  config.max_batch = 64;
  config.batch_window = std::chrono::microseconds(100);
  config.kernel_threads = 2;
  return config;
}

TEST(DynService, MutationsVisibleToReads) {
  HybridGraph graph(make_base(21));
  QueryService service(graph, nullptr, quick_config());

  // Find an edge the base definitely lacks.
  VertexId u = 7, v = 9;
  while (graph.view().has_edge(u, v)) v = (v + 1) % kNodes;
  Response add = service.submit(make(QueryKind::kAddEdges, u, v)).get();
  EXPECT_EQ(add.status, Status::kOk);
  EXPECT_TRUE(add.exists);  // visibility changed

  Response exists = service.submit(make(QueryKind::kEdgeExists, u, v)).get();
  EXPECT_EQ(exists.status, Status::kOk);
  EXPECT_TRUE(exists.exists);

  // Second add of the same edge is a no-op.
  Response again = service.submit(make(QueryKind::kAddEdges, u, v)).get();
  EXPECT_EQ(again.status, Status::kOk);
  EXPECT_FALSE(again.exists);

  Response del = service.submit(make(QueryKind::kRemoveEdges, u, v)).get();
  EXPECT_EQ(del.status, Status::kOk);
  EXPECT_TRUE(del.exists);
  Response gone = service.submit(make(QueryKind::kEdgeExists, u, v)).get();
  EXPECT_FALSE(gone.exists);

  const MetricsSnapshot snap = service.metrics();
  EXPECT_EQ(snap.mutations, 3u);
}

TEST(DynService, ReadsMatchDirectView) {
  HybridGraph graph(make_base(22));
  // Mutate first so reads exercise base ⊕ delta, not just the base.
  SplitMix64 rng(22);
  std::vector<Edge> adds, dels;
  for (int i = 0; i < 500; ++i)
    adds.push_back({static_cast<VertexId>(rng.next_below(kNodes)),
                    static_cast<VertexId>(rng.next_below(kNodes))});
  for (int i = 0; i < 200; ++i)
    dels.push_back({static_cast<VertexId>(rng.next_below(kNodes)),
                    static_cast<VertexId>(rng.next_below(kNodes))});
  graph.add_edges(adds, 2);
  graph.remove_edges(dels, 2);

  QueryService service(graph, nullptr, quick_config());
  const HybridGraph::View view = graph.view();
  for (VertexId u = 0; u < kNodes; u += 3) {
    Response deg = service.submit(make(QueryKind::kDegree, u)).get();
    ASSERT_EQ(deg.status, Status::kOk);
    EXPECT_EQ(deg.degree, view.degree(u)) << u;
    Response row = service.submit(make(QueryKind::kNeighbors, u)).get();
    ASSERT_EQ(row.status, Status::kOk);
    EXPECT_EQ(row.neighbors, view.neighbors(u)) << u;
    const auto v = static_cast<VertexId>((u * 7 + 1) % kNodes);
    Response edge = service.submit(make(QueryKind::kEdgeExists, u, v)).get();
    ASSERT_EQ(edge.status, Status::kOk);
    EXPECT_EQ(edge.exists, view.has_edge(u, v)) << u;
  }
}

TEST(DynService, StaticServiceRejectsMutations) {
  const csr::BitPackedCsr base = make_base(23);
  QueryService service(base, nullptr, quick_config());
  Response r = service.submit(make(QueryKind::kAddEdges, 1, 2)).get();
  EXPECT_EQ(r.status, Status::kUnsupported);
  r = service.submit(make(QueryKind::kRemoveEdges, 1, 2)).get();
  EXPECT_EQ(r.status, Status::kUnsupported);
  EXPECT_EQ(service.metrics().mutations, 0u);
}

TEST(DynService, MutationValidatesBothEndpoints) {
  HybridGraph graph(make_base(24));
  QueryService service(graph, nullptr, quick_config());
  EXPECT_EQ(service.submit(make(QueryKind::kAddEdges, 0, kNodes)).get().status,
            Status::kInvalid);
  EXPECT_EQ(service.submit(make(QueryKind::kAddEdges, kNodes, 0)).get().status,
            Status::kInvalid);
  EXPECT_EQ(
      service.submit(make(QueryKind::kRemoveEdges, 0, kNodes)).get().status,
      Status::kInvalid);
}

TEST(DynService, MixedConcurrentClientsConverge) {
  HybridGraph::Config hconfig;
  hconfig.compact_min_keys = 512;  // let the service trigger compactions
  HybridGraph graph(make_base(25), hconfig);
  QueryService service(graph, nullptr, quick_config(4));

  // Each client owns a disjoint v-slice (v ≡ c mod kClients) and touches
  // every edge in it at most once, so the final visibility of each edge is
  // its single op's intent — deterministic no matter how the service
  // batches or how clients interleave.
  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 2000;
  std::vector<std::thread> clients;
  std::vector<std::set<std::pair<VertexId, VertexId>>> final_adds(kClients);
  std::vector<std::set<std::pair<VertexId, VertexId>>> final_dels(kClients);

  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      SplitMix64 rng(200 + static_cast<std::uint64_t>(c));
      std::vector<std::future<Response>> futures;
      std::set<std::pair<VertexId, VertexId>> touched;
      for (int i = 0; i < kOpsPerClient; ++i) {
        const auto u = static_cast<VertexId>(rng.next_below(kNodes));
        const auto v = static_cast<VertexId>(
            (rng.next_below(kNodes / kClients)) * kClients +
            static_cast<VertexId>(c));
        const bool mutate = rng.next_bool(0.6);
        if (mutate && touched.insert({u, v}).second) {
          if (rng.next_bool(0.4)) {
            futures.push_back(
                service.submit(make(QueryKind::kRemoveEdges, u, v)));
            final_dels[c].insert({u, v});
          } else {
            futures.push_back(service.submit(make(QueryKind::kAddEdges, u, v)));
            final_adds[c].insert({u, v});
          }
        } else {
          futures.push_back(service.submit(make(QueryKind::kDegree, u)));
        }
      }
      for (auto& f : futures) {
        const Response r = f.get();
        ASSERT_EQ(r.status, Status::kOk);
      }
    });
  }
  for (auto& t : clients) t.join();
  service.stop();

  EXPECT_GT(service.metrics().mutations, 0u);
  const HybridGraph::View view = graph.view();
  for (int c = 0; c < kClients; ++c) {
    for (const auto& [u, v] : final_adds[c])
      EXPECT_TRUE(view.has_edge(u, v)) << u << "," << v;
    for (const auto& [u, v] : final_dels[c])
      EXPECT_FALSE(view.has_edge(u, v)) << u << "," << v;
  }
  EXPECT_TRUE(view.delta().check_invariants());
}

}  // namespace
}  // namespace pcq::svc
