#include "par/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "par/threads.hpp"

namespace pcq::par {
namespace {

TEST(ClampThreads, Bounds) {
  EXPECT_GE(clamp_threads(0), 1);          // 0 -> hardware concurrency
  EXPECT_EQ(clamp_threads(-5), clamp_threads(0));
  EXPECT_EQ(clamp_threads(7), 7);
  EXPECT_EQ(clamp_threads(5000), 1024);    // default limit
  EXPECT_EQ(clamp_threads(50, 8), 8);      // explicit limit
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (int p : {1, 2, 4, 8, 64}) {
    std::vector<std::atomic<int>> visits(1000);
    for (auto& v : visits) v.store(0);
    parallel_for(1000, p, [&](std::size_t i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < 1000; ++i)
      ASSERT_EQ(visits[i].load(), 1) << "i=" << i << " p=" << p;
  }
}

TEST(ParallelFor, ZeroIterations) {
  bool called = false;
  parallel_for(0, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleIterationRunsInline) {
  std::size_t seen = 99;
  parallel_for(1, 8, [&](std::size_t i) { seen = i; });
  EXPECT_EQ(seen, 0u);
}

TEST(ParallelForChunks, ChunksPartitionRange) {
  for (int p : {1, 2, 3, 4, 8, 64}) {
    std::vector<std::atomic<int>> visits(777);
    for (auto& v : visits) v.store(0);
    std::atomic<int> chunk_invocations{0};
    parallel_for_chunks(777, p, [&](std::size_t, ChunkRange r) {
      chunk_invocations.fetch_add(1);
      for (std::size_t i = r.begin; i < r.end; ++i)
        visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < 777; ++i) ASSERT_EQ(visits[i].load(), 1);
    EXPECT_EQ(chunk_invocations.load(), std::min<int>(p, 777));
  }
}

TEST(ParallelForChunks, ChunkIdsAreDistinctAndDense) {
  constexpr int kThreads = 8;
  std::vector<std::atomic<int>> seen(kThreads);
  for (auto& s : seen) s.store(0);
  parallel_for_chunks(10'000, kThreads, [&](std::size_t c, ChunkRange) {
    seen[c].fetch_add(1);
  });
  for (int c = 0; c < kThreads; ++c) EXPECT_EQ(seen[c].load(), 1) << c;
}

TEST(ParallelForChunks, FewerElementsThanThreads) {
  std::atomic<int> invocations{0};
  std::atomic<std::size_t> covered{0};
  parallel_for_chunks(3, 16, [&](std::size_t, ChunkRange r) {
    invocations.fetch_add(1);
    covered.fetch_add(r.size());
  });
  EXPECT_EQ(invocations.load(), 3);
  EXPECT_EQ(covered.load(), 3u);
}

TEST(ParallelForChunks, EmptyRangeNoInvocation) {
  bool called = false;
  parallel_for_chunks(0, 4, [&](std::size_t, ChunkRange) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForChunks, BoundsMatchChunkRangeFunction) {
  constexpr std::size_t kN = 12345;
  constexpr std::size_t kP = 7;
  parallel_for_chunks(kN, static_cast<int>(kP), [&](std::size_t c, ChunkRange r) {
    EXPECT_EQ(r, chunk_range(kN, kP, c));
  });
}

}  // namespace
}  // namespace pcq::par
