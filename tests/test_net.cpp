// pcq::net — wire protocol codec tests (portable) and live TCP
// server/client tests (Linux: the server is epoll-based). The live tests
// exercise the serving contract end to end: every query kind over a real
// socket agrees with the direct kernel answer, pipelined frames are all
// answered, overload yields explicit kRejected frames, malformed frames
// close the connection, and both drain triggers (request_stop and the
// shutdown control frame) answer everything in flight before exiting.
#include "net/protocol.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "csr/builder.hpp"
#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "svc/service.hpp"
#include "util/rng.hpp"

#ifdef __linux__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace pcq::net {
namespace {

using graph::VertexId;
using svc::QueryKind;
using svc::Status;

// ---------------------------------------------------------------- protocol

TEST(Protocol, RequestRoundTrip) {
  WireRequest in;
  in.id = 0x0123456789abcdefull;
  in.kind = static_cast<std::uint8_t>(QueryKind::kTemporalEdge);
  in.u = 0xdeadbeef;
  in.v = 7;
  in.t = 42;
  in.deadline_ms = 1500;
  std::vector<std::uint8_t> bytes;
  encode_request(in, bytes);
  EXPECT_EQ(bytes.size(), kLengthBytes + kRequestPayloadBytes);

  WireRequest out;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_request(bytes.data(), bytes.size(), &out, &consumed),
            DecodeResult::kOk);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.kind, in.kind);
  EXPECT_EQ(out.u, in.u);
  EXPECT_EQ(out.v, in.v);
  EXPECT_EQ(out.t, in.t);
  EXPECT_EQ(out.deadline_ms, in.deadline_ms);
}

TEST(Protocol, ResponseRoundTripWithNeighbors) {
  WireResponse in;
  in.id = 99;
  in.status = static_cast<std::uint8_t>(Status::kOk);
  in.exists = 1;
  in.degree = 3;
  in.arrival = 5;
  in.neighbors = {10, 20, 30};
  std::vector<std::uint8_t> bytes;
  encode_response(in, bytes);
  EXPECT_EQ(bytes.size(), kLengthBytes + kResponseHeaderBytes + 3 * 4);

  WireResponse out;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_response(bytes.data(), bytes.size(), &out, &consumed),
            DecodeResult::kOk);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.status, in.status);
  EXPECT_EQ(out.exists, in.exists);
  EXPECT_EQ(out.degree, in.degree);
  EXPECT_EQ(out.arrival, in.arrival);
  EXPECT_EQ(out.neighbors, in.neighbors);
}

TEST(Protocol, PartialFramesNeedMore) {
  WireRequest req;
  req.kind = static_cast<std::uint8_t>(QueryKind::kDegree);
  std::vector<std::uint8_t> bytes;
  encode_request(req, bytes);
  WireRequest out;
  std::size_t consumed = 0;
  // Every strict prefix is kNeedMore, never an error or a bogus decode.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut)
    EXPECT_EQ(decode_request(bytes.data(), cut, &out, &consumed),
              DecodeResult::kNeedMore)
        << cut;
}

TEST(Protocol, BackToBackFramesDecodeInSequence) {
  std::vector<std::uint8_t> bytes;
  for (std::uint64_t id = 0; id < 5; ++id) {
    WireRequest req;
    req.id = id;
    req.kind = static_cast<std::uint8_t>(QueryKind::kDegree);
    req.u = static_cast<std::uint32_t>(id * 10);
    encode_request(req, bytes);
  }
  std::size_t pos = 0;
  for (std::uint64_t id = 0; id < 5; ++id) {
    WireRequest out;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_request(bytes.data() + pos, bytes.size() - pos, &out,
                             &consumed),
              DecodeResult::kOk);
    EXPECT_EQ(out.id, id);
    EXPECT_EQ(out.u, id * 10);
    pos += consumed;
  }
  EXPECT_EQ(pos, bytes.size());
}

TEST(Protocol, WrongLengthRequestIsError) {
  // A declared request payload of any size but kRequestPayloadBytes is
  // malformed: requests are fixed-size by contract.
  std::vector<std::uint8_t> bytes(kLengthBytes + 10, 0);
  bytes[0] = 10;  // little-endian length 10
  WireRequest out;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_request(bytes.data(), bytes.size(), &out, &consumed),
            DecodeResult::kError);
}

TEST(Protocol, OversizedResponseLengthIsError) {
  std::vector<std::uint8_t> bytes(kLengthBytes, 0xff);  // length ~4 GiB
  WireResponse out;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_response(bytes.data(), bytes.size(), &out, &consumed),
            DecodeResult::kError);
}

TEST(Protocol, IsQueryKind) {
  // 0..5 are reads, 6..7 the kAddEdges/kRemoveEdges mutations — all ride
  // the same frames (read-only services answer mutations kUnsupported).
  for (std::uint8_t k = 0; k <= 7; ++k) EXPECT_TRUE(is_query_kind(k));
  EXPECT_FALSE(is_query_kind(8));
  EXPECT_FALSE(is_query_kind(kShutdownKind));
}

// ------------------------------------------------------------- live server
#ifdef __linux__

struct Fixture {
  Fixture() {
    graph::EdgeList list = graph::rmat(1 << 9, 8'000, 0.57, 0.19, 0.19, 3, 2);
    list.sort(2);
    list.dedupe();
    csr = csr::build_bitpacked_csr_from_sorted(list, 1 << 9, 2);

    graph::TemporalEdgeList events;
    util::SplitMix64 rng(7);
    for (int i = 0; i < 2000; ++i)
      events.push_back({static_cast<VertexId>(rng.next_below(100)),
                        static_cast<VertexId>(rng.next_below(100)),
                        static_cast<graph::TimeFrame>(rng.next_below(6))});
    events.sort(2);
    tcsr = tcsr::DifferentialTcsr::build(events, 0, 0, 2);
  }
  csr::BitPackedCsr csr;
  tcsr::DifferentialTcsr tcsr;
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

/// A server over the fixture on an ephemeral port, with its epoll loop on
/// a background thread. The destructor drains via request_stop.
struct LiveServer {
  explicit LiveServer(svc::ServiceConfig config = {},
                      ServerOptions options = {})
      : service(fixture().csr, &fixture().tcsr, config),
        server(service, options),
        thread([this] { server.run(); }) {}
  ~LiveServer() {
    server.request_stop();
    thread.join();
  }
  svc::QueryService service;
  TcpServer server;
  std::thread thread;
};

Client connect_to(const LiveServer& s) {
  Client client;
  client.connect("127.0.0.1", s.server.port());
  return client;
}

WireRequest wire(std::uint64_t id, QueryKind kind, std::uint32_t u,
                 std::uint32_t v = 0, std::uint32_t t = 0) {
  WireRequest w;
  w.id = id;
  w.kind = static_cast<std::uint8_t>(kind);
  w.u = u;
  w.v = v;
  w.t = t;
  return w;
}

TEST(TcpServer, EveryKindMatchesKernelsOverTheWire) {
  const Fixture& f = fixture();
  LiveServer s;
  Client client = connect_to(s);
  util::SplitMix64 rng(21);
  for (std::uint64_t i = 0; i < 300; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(f.csr.num_nodes()));
    const auto v = static_cast<VertexId>(rng.next_below(f.csr.num_nodes()));
    const auto tu = static_cast<VertexId>(rng.next_below(f.tcsr.num_nodes()));
    const auto tv = static_cast<VertexId>(rng.next_below(f.tcsr.num_nodes()));
    const auto t =
        static_cast<graph::TimeFrame>(rng.next_below(f.tcsr.num_frames()));
    WireRequest w;
    switch (i % 6) {
      case 0: w = wire(i, QueryKind::kDegree, u); break;
      case 1: w = wire(i, QueryKind::kNeighbors, u); break;
      case 2: w = wire(i, QueryKind::kEdgeExists, u, v); break;
      case 3: w = wire(i, QueryKind::kTemporalEdge, tu, tv, t); break;
      case 4: w = wire(i, QueryKind::kTemporalNeighbors, tu, 0, t); break;
      default: w = wire(i, QueryKind::kForemostArrival, tu, tv, 0); break;
    }
    client.send_request(w);
    WireResponse r;
    ASSERT_TRUE(client.read_response(&r));
    ASSERT_EQ(r.id, i);
    ASSERT_EQ(r.status, static_cast<std::uint8_t>(Status::kOk)) << i;
    switch (i % 6) {
      case 0: EXPECT_EQ(r.degree, f.csr.degree(u)); break;
      case 1: EXPECT_EQ(r.neighbors, f.csr.neighbors(u)); break;
      case 2: EXPECT_EQ(r.exists != 0, f.csr.has_edge(u, v)); break;
      case 3: EXPECT_EQ(r.exists != 0, f.tcsr.edge_active(tu, tv, t)); break;
      case 4: EXPECT_EQ(r.neighbors, f.tcsr.neighbors_at(tu, t)); break;
      default: break;  // arrival checked implicitly by kOk id echo
    }
  }
}

TEST(TcpServer, PipelinedFramesAllAnswered) {
  LiveServer s;
  Client client = connect_to(s);
  constexpr std::uint64_t kFrames = 500;
  for (std::uint64_t i = 0; i < kFrames; ++i)
    client.send_request(wire(i, QueryKind::kDegree,
                             static_cast<std::uint32_t>(i % 64)));
  std::vector<bool> seen(kFrames, false);
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    WireResponse r;
    ASSERT_TRUE(client.read_response(&r));
    ASSERT_LT(r.id, kFrames);
    EXPECT_FALSE(seen[r.id]) << "duplicate response id " << r.id;
    seen[r.id] = true;
    EXPECT_EQ(r.status, static_cast<std::uint8_t>(Status::kOk));
  }
}

TEST(TcpServer, InvalidOperandsAnswerInvalidFrames) {
  const Fixture& f = fixture();
  LiveServer s;
  Client client = connect_to(s);
  const auto n = static_cast<std::uint32_t>(f.csr.num_nodes());
  client.send_request(wire(1, QueryKind::kDegree, n));
  client.send_request(wire(2, QueryKind::kEdgeExists, 0, n));
  client.send_request(wire(3, QueryKind::kDegree, 0));
  for (int i = 0; i < 3; ++i) {
    WireResponse r;
    ASSERT_TRUE(client.read_response(&r));
    EXPECT_EQ(r.status,
              static_cast<std::uint8_t>(r.id == 3 ? Status::kOk
                                                  : Status::kInvalid))
        << r.id;
  }
  // An unknown kind byte is answered kInvalid too (not a protocol error:
  // the frame itself is well-formed).
  WireRequest unknown = wire(4, QueryKind::kDegree, 0);
  unknown.kind = 77;
  client.send_request(unknown);
  WireResponse r;
  ASSERT_TRUE(client.read_response(&r));
  EXPECT_EQ(r.id, 4u);
  EXPECT_EQ(r.status, static_cast<std::uint8_t>(Status::kInvalid));
}

TEST(TcpServer, OverloadAnswersRejectedFrames) {
  // A tiny queue behind a slow window: a pipelined burst must overflow,
  // and overflow must surface as explicit kRejected frames — one response
  // per request regardless, nothing silently dropped or buffered forever.
  svc::ServiceConfig config;
  config.queue_capacity = 4;
  config.max_batch = 2;
  config.batch_window = std::chrono::microseconds(50'000);
  config.adaptive_window = false;
  LiveServer s(config);
  Client client = connect_to(s);
  constexpr std::uint64_t kBurst = 2000;
  for (std::uint64_t i = 0; i < kBurst; ++i)
    client.send_request(wire(i, QueryKind::kDegree, 1));
  std::uint64_t ok = 0, rejected = 0;
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    WireResponse r;
    ASSERT_TRUE(client.read_response(&r));
    if (r.status == static_cast<std::uint8_t>(Status::kRejected))
      ++rejected;
    else if (r.status == static_cast<std::uint8_t>(Status::kOk))
      ++ok;
  }
  EXPECT_EQ(ok + rejected, kBurst);
  EXPECT_GT(rejected, 0u) << "a 2000-burst must overflow a 4-slot queue";
  EXPECT_GT(ok, 0u);
  EXPECT_EQ(s.server.stats().rejected.load(), rejected);
}

TEST(TcpServer, HalfCloseStillAnswersEverythingThenEof) {
  // One-shot client pattern: pipeline a burst, shutdown(SHUT_WR), then
  // read. The server must answer every frame and only then close.
  LiveServer s;
  Client client = connect_to(s);
  constexpr std::uint64_t kFrames = 200;
  for (std::uint64_t i = 0; i < kFrames; ++i)
    client.send_request(wire(i, QueryKind::kDegree,
                             static_cast<std::uint32_t>(i % 32)));
  client.shutdown_write();
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    WireResponse r;
    ASSERT_TRUE(client.read_response(&r)) << "EOF before response " << i;
  }
  WireResponse extra;
  EXPECT_FALSE(client.read_response(&extra));  // clean EOF, no stray bytes
}

TEST(TcpServer, MalformedFrameClosesConnection) {
  LiveServer s;
  Client good = connect_to(s);
  WireRequest probe = wire(1, QueryKind::kDegree, 0);
  good.send_request(probe);
  WireResponse r;
  ASSERT_TRUE(good.read_response(&r));

  // Client::send_request only emits well-formed frames, so craft the
  // malformed one (declared payload size != kRequestPayloadBytes) on a raw
  // socket. The server must close that connection -- the next read is a
  // clean EOF -- without disturbing the well-behaved one.
  std::vector<std::uint8_t> bytes;
  encode_request(probe, bytes);
  bytes[0] = 3;  // little-endian declared length, corrupted to 3
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(s.server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
  std::uint8_t buf[16];
  ASSERT_EQ(::recv(fd, buf, sizeof buf, 0), 0);
  ::close(fd);

  good.send_request(wire(2, QueryKind::kDegree, 1));
  ASSERT_TRUE(good.read_response(&r));
  EXPECT_EQ(r.id, 2u);
  EXPECT_GE(s.server.stats().protocol_errors.load(), 1u);
}

TEST(TcpServer, ShutdownFrameDrainsAndExits) {
  svc::ServiceConfig config;
  config.max_batch = 16;
  config.batch_window = std::chrono::microseconds(5'000);
  auto* s = new LiveServer(config);
  Client client = connect_to(*s);
  constexpr std::uint64_t kFrames = 300;
  for (std::uint64_t i = 0; i < kFrames; ++i)
    client.send_request(wire(i, QueryKind::kDegree,
                             static_cast<std::uint32_t>(i % 16)));
  WireRequest stop;
  stop.id = kFrames;
  stop.kind = kShutdownKind;
  client.send_request(stop);
  // Every in-flight query is answered, then the shutdown ack, then EOF —
  // in id terms: kFrames + 1 responses total, none lost to the drain.
  std::uint64_t responses = 0;
  bool acked = false;
  WireResponse r;
  while (client.read_response(&r)) {
    ++responses;
    if (r.id == kFrames) {
      acked = true;
      EXPECT_EQ(r.status, static_cast<std::uint8_t>(Status::kOk));
    }
  }
  EXPECT_EQ(responses, kFrames + 1);
  EXPECT_TRUE(acked);
  // run() has returned (or is about to); joining must not hang.
  delete s;
}

TEST(TcpServer, RequestStopDrainsInFlightWork) {
  // The SIGINT path: queue a pipelined burst, call request_stop while the
  // burst is in flight, and require every admitted frame to be answered
  // and flushed before run() returns.
  svc::ServiceConfig config;
  config.max_batch = 32;
  config.batch_window = std::chrono::microseconds(2'000);
  config.queue_capacity = 4096;
  LiveServer s(config);
  Client client = connect_to(s);
  constexpr std::uint64_t kFrames = 400;
  for (std::uint64_t i = 0; i < kFrames; ++i)
    client.send_request(wire(i, QueryKind::kNeighbors,
                             static_cast<std::uint32_t>(i % 64)));
  s.server.request_stop();
  std::uint64_t answered = 0;
  WireResponse r;
  while (client.read_response(&r)) ++answered;
  // Everything the server admitted before the drain began was answered;
  // frames still in the socket when the drain hit are simply never read
  // (the client sees EOF for those). No partial frames either way —
  // read_response would have thrown on a mid-frame cut.
  EXPECT_LE(answered, kFrames);
  EXPECT_EQ(s.server.stats().frames_out.load(), answered);
}

TEST(TcpServer, ManyConcurrentConnections) {
  svc::ServiceConfig config;
  config.shards = 2;
  config.queue_capacity = 4096;
  LiveServer s(config);
  constexpr int kConns = 8;
  constexpr std::uint64_t kPerConn = 300;
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kConns; ++c)
    clients.emplace_back([&s, &answered, c] {
      Client client = connect_to(s);
      for (std::uint64_t i = 0; i < kPerConn; ++i)
        client.send_request(wire(i, QueryKind::kDegree,
                                 static_cast<std::uint32_t>((c * 31 + i) %
                                                            128)));
      for (std::uint64_t i = 0; i < kPerConn; ++i) {
        WireResponse r;
        ASSERT_TRUE(client.read_response(&r));
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (auto& t : clients) t.join();
  EXPECT_EQ(answered.load(), kConns * kPerConn);
  EXPECT_EQ(s.server.stats().accepted.load(), kConns);
}

#endif  // __linux__

}  // namespace
}  // namespace pcq::net
