// pcq::net — admin telemetry endpoint tests: the pure request handler
// (routing, status codes, content types) plus live-socket coverage on the
// epoll server's second listener — the exposition parses per the
// Prometheus grammar, /metrics.json and /slow are valid JSON, counters are
// monotonic across scrapes under load, and an injected kernel delay lands
// requests in the bounded slow-query log.
#include "net/admin.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "csr/builder.hpp"
#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/exposition.hpp"
#include "obs/slowlog.hpp"
#include "svc/service.hpp"

#ifdef __linux__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace pcq::net {
namespace {

using svc::QueryKind;
using svc::Status;

// Minimal JSON validity checker (objects/arrays/strings/numbers/keywords).
// Good enough to assert the admin documents are well-formed without a
// parser dependency.
class JsonScanner {
 public:
  explicit JsonScanner(std::string_view s) : s_(s) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return keyword("true");
      case 'f': return keyword("false");
      case 'n': return keyword("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }
  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    for (++pos_; pos_ < s_.size(); ++pos_) {
      if (s_[pos_] == '\\') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '"') {
        ++pos_;
        return true;
      }
    }
    return false;
  }
  bool number() {
    const char* begin = s_.data() + pos_;
    char* end = nullptr;
    std::strtod(begin, &end);
    if (end == begin) return false;
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }
  bool keyword(std::string_view k) {
    if (s_.substr(pos_, k.size()) != k) return false;
    pos_ += k.size();
    return true;
  }
  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool expect(char c) { return peek(c); }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

bool json_valid(std::string_view s) { return JsonScanner(s).valid(); }

TEST(JsonScanner, SelfCheck) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid("{\"a\":[1,2.5,-3e2],\"b\":{\"c\":\"x\"},"
                         "\"d\":true,\"e\":null}"));
  EXPECT_FALSE(json_valid("{\"a\":}"));
  EXPECT_FALSE(json_valid("{\"a\":1,}"));
  EXPECT_FALSE(json_valid("[1 2]"));
  EXPECT_FALSE(json_valid("{\"a\":1} trailing"));
}

#ifdef __linux__

struct AdminFixture {
  AdminFixture() {
    graph::EdgeList list = graph::rmat(1 << 9, 8'000, 0.57, 0.19, 0.19, 3, 2);
    list.sort(2);
    list.dedupe();
    csr = csr::build_bitpacked_csr_from_sorted(list, 1 << 9, 2);
  }
  csr::BitPackedCsr csr;
};

const AdminFixture& admin_fixture() {
  static const AdminFixture f;
  return f;
}

/// Frame server + admin listener on ephemeral ports, epoll loop on a
/// background thread, handler wired exactly like pcq_serve wires it.
struct LiveAdminServer {
  explicit LiveAdminServer(svc::ServiceConfig config = {})
      : service(admin_fixture().csr, nullptr, config) {
    ServerOptions options;
    options.admin_enabled = true;
    server = std::make_unique<TcpServer>(service, options);
    AdminContext ctx;
    ctx.service = &service;
    ctx.server_stats = &server->stats();
    ctx.started = std::chrono::steady_clock::now();
    server->set_admin_handler(
        [ctx](std::string_view method, std::string_view target) {
          return handle_admin_request(ctx, method, target);
        });
    thread = std::thread([this] { server->run(); });
  }
  ~LiveAdminServer() {
    server->request_stop();
    thread.join();
  }
  svc::QueryService service;
  std::unique_ptr<TcpServer> server;
  std::thread thread;
};

/// One blocking HTTP/1.0 exchange against the admin listener; returns the
/// full response (headers + body).
std::string admin_fetch(std::uint16_t port, const std::string& request_text) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  std::size_t sent = 0;
  while (sent < request_text.size()) {
    const ssize_t n = ::send(fd, request_text.data() + sent,
                             request_text.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char chunk[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string admin_get(const LiveAdminServer& s, const std::string& path) {
  return admin_fetch(s.server->admin_port(),
                     "GET " + path + " HTTP/1.0\r\nHost: t\r\n\r\n");
}

std::string body_of(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? std::string() : response.substr(at + 4);
}

WireRequest wire(std::uint64_t id, QueryKind kind, std::uint32_t u,
                 std::uint32_t v = 0) {
  WireRequest w;
  w.id = id;
  w.kind = static_cast<std::uint8_t>(kind);
  w.u = u;
  w.v = v;
  return w;
}

// ------------------------------------------------------- pure handler

TEST(AdminHandler, RoutesAndStatusCodes) {
  LiveAdminServer s;  // the handler closes over live service + stats
  AdminContext ctx;
  ctx.service = &s.service;
  ctx.server_stats = &s.server->stats();
  ctx.started = std::chrono::steady_clock::now();

  EXPECT_NE(handle_admin_request(ctx, "GET", "/healthz").find("200"),
            std::string::npos);
  EXPECT_NE(handle_admin_request(ctx, "GET", "/healthz").find("ok\n"),
            std::string::npos);
  EXPECT_NE(handle_admin_request(ctx, "GET", "/nope").find("404"),
            std::string::npos);
  EXPECT_NE(handle_admin_request(ctx, "POST", "/healthz").find("405"),
            std::string::npos);
  // Query strings are stripped before routing.
  EXPECT_NE(handle_admin_request(ctx, "GET", "/healthz?x=1").find("200"),
            std::string::npos);

  const std::string buildinfo = handle_admin_request(ctx, "GET", "/buildinfo");
  EXPECT_TRUE(json_valid(body_of(buildinfo))) << buildinfo;
}

// --------------------------------------------------------- live scrapes

TEST(AdminEndpoint, ListensOnItsOwnEphemeralPort) {
  LiveAdminServer s;
  EXPECT_NE(s.server->admin_port(), 0);
  EXPECT_NE(s.server->admin_port(), s.server->port());
  const std::string response = admin_get(s, "/healthz");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_EQ(body_of(response), "ok\n");
}

TEST(AdminEndpoint, MetricsExpositionParsesPerGrammar) {
  LiveAdminServer s;
  {
    Client client;
    client.connect("127.0.0.1", s.server->port());
    for (std::uint64_t i = 0; i < 50; ++i)
      client.send_request(wire(i, QueryKind::kDegree,
                               static_cast<std::uint32_t>(i % 64)));
    for (std::uint64_t i = 0; i < 50; ++i) {
      WireResponse r;
      ASSERT_TRUE(client.read_response(&r));
    }
  }
  const std::string response = admin_get(s, "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const std::string body = body_of(response);
  ASSERT_FALSE(body.empty());
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) name.resize(brace);
    EXPECT_TRUE(obs::is_valid_metric_name(name)) << line;
  }
}

TEST(AdminEndpoint, MetricsJsonAndSlowAreValidJson) {
  LiveAdminServer s;
  const std::string metrics = body_of(admin_get(s, "/metrics.json"));
  EXPECT_TRUE(json_valid(metrics)) << metrics.substr(0, 400);
  EXPECT_NE(metrics.find("\"server\":"), std::string::npos);
  EXPECT_NE(metrics.find("\"service\":"), std::string::npos);
  EXPECT_NE(metrics.find("\"slowlog\":"), std::string::npos);
  const std::string slow = body_of(admin_get(s, "/slow"));
  EXPECT_TRUE(json_valid(slow)) << slow.substr(0, 400);
}

TEST(AdminEndpoint, CountersAreMonotonicAcrossScrapesUnderLoad) {
  LiveAdminServer s;
  Client client;
  client.connect("127.0.0.1", s.server->port());
  auto drive = [&](std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i)
      client.send_request(wire(i, QueryKind::kDegree,
                               static_cast<std::uint32_t>(i % 32)));
    for (std::uint64_t i = 0; i < n; ++i) {
      WireResponse r;
      ASSERT_TRUE(client.read_response(&r));
    }
  };
  auto completed_of = [](const std::string& json) {
    const std::size_t svc = json.find("\"service\":");
    const std::size_t at = json.find("\"completed\":", svc);
    EXPECT_NE(at, std::string::npos);
    return std::strtoull(json.c_str() + at + 12, nullptr, 10);
  };
  drive(100);
  const std::string first = body_of(admin_get(s, "/metrics.json"));
  drive(100);
  const std::string second = body_of(admin_get(s, "/metrics.json"));
  const std::uint64_t c1 = completed_of(first);
  const std::uint64_t c2 = completed_of(second);
  EXPECT_GE(c1, 100u);
  EXPECT_GE(c2, c1 + 100);
  // The admin listener's own request counter advances too.
  EXPECT_GE(s.server->stats().admin_requests.load(), 2u);
}

TEST(AdminEndpoint, InjectedDelayLandsRequestsInTheSlowLog) {
  obs::SlowLog& log = obs::SlowLog::global();
  log.clear();
  log.set_capacity(4);
  log.set_threshold_us(500);
  {
    svc::ServiceConfig config;
    config.debug_kernel_delay = std::chrono::microseconds(2'000);
    LiveAdminServer s(config);
    Client client;
    client.connect("127.0.0.1", s.server->port());
    constexpr std::uint64_t kRequests = 10;
    for (std::uint64_t i = 1; i <= kRequests; ++i)
      client.send_request(wire(i, QueryKind::kDegree,
                               static_cast<std::uint32_t>(i % 16)));
    for (std::uint64_t i = 0; i < kRequests; ++i) {
      WireResponse r;
      ASSERT_TRUE(client.read_response(&r));
    }
    // Every request slept >= 2 ms in the kernel phase, all captured, the
    // bound respected and the retained records carrying wire trace ids.
    EXPECT_EQ(log.captured(), kRequests);
    const std::vector<obs::SlowQuery> snap = log.snapshot();
    ASSERT_EQ(snap.size(), 4u);  // capacity bound, drop-oldest
    for (const obs::SlowQuery& q : snap) {
      EXPECT_GE(q.total_us, 2'000u);
      EXPECT_GE(q.service_us, 2'000u);
      EXPECT_GT(q.trace_id, 0u);
      EXPECT_LE(q.trace_id, kRequests);
    }
    const std::string slow = body_of(admin_get(s, "/slow"));
    EXPECT_TRUE(json_valid(slow));
    EXPECT_NE(slow.find("\"captured\":10"), std::string::npos);
    EXPECT_NE(slow.find("\"trace_id\":"), std::string::npos);
  }
  log.clear();
  log.set_threshold_us(0);
  log.set_capacity(obs::SlowLog::kDefaultCapacity);
}

TEST(AdminEndpoint, MalformedRequestLineIs400) {
  LiveAdminServer s;
  const std::string response =
      admin_fetch(s.server->admin_port(), "BOGUS\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 400"), std::string::npos);
}

#endif  // __linux__

}  // namespace
}  // namespace pcq::net
