#include "algos/bfs.hpp"

#include <gtest/gtest.h>

#include <queue>

#include "csr/builder.hpp"
#include "graph/generators.hpp"

namespace pcq::algos {
namespace {

using graph::EdgeList;
using graph::VertexId;

std::vector<std::uint32_t> reference_bfs(const csr::CsrGraph& g,
                                         VertexId source) {
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  dist[source] = 0;
  std::queue<VertexId> q;
  q.push(source);
  while (!q.empty()) {
    const VertexId u = q.front();
    q.pop();
    for (VertexId v : g.neighbors(u))
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
  }
  return dist;
}

csr::CsrGraph path_graph(VertexId n) {
  EdgeList g;
  for (VertexId i = 0; i + 1 < n; ++i) {
    g.push_back({i, i + 1});
    g.push_back({i + 1, i});
  }
  g.sort(2);
  return csr::build_csr_from_sorted(g, n, 2);
}

TEST(Bfs, PathGraphDistances) {
  const csr::CsrGraph g = path_graph(10);
  const auto dist = bfs(g, 0, 4);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Bfs, DisconnectedNodesUnreachable) {
  EdgeList g({{0, 1}, {1, 0}, {3, 4}, {4, 3}});
  g.sort(2);
  const csr::CsrGraph csr = csr::build_csr_from_sorted(g, 5, 2);
  const auto dist = bfs(csr, 0, 4);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(Bfs, SingleNodeSource) {
  const csr::CsrGraph g = csr::build_csr_from_sorted(EdgeList{}, 1, 2);
  const auto dist = bfs(g, 0, 4);
  EXPECT_EQ(dist, (std::vector<std::uint32_t>{0}));
}

TEST(Bfs, MatchesReferenceOnRandomGraph) {
  EdgeList g = graph::rmat(1 << 9, 8000, 0.57, 0.19, 0.19, 61, 4);
  g.symmetrize();
  g.sort(4);
  g.dedupe();
  const csr::CsrGraph csr = csr::build_csr_from_sorted(g, 1 << 9, 4);
  const auto expect = reference_bfs(csr, 0);
  for (int p : {1, 2, 4, 8, 64}) EXPECT_EQ(bfs(csr, 0, p), expect) << "p=" << p;
}

TEST(Bfs, PackedMatchesPlain) {
  EdgeList g = graph::rmat(1 << 9, 8000, 0.57, 0.19, 0.19, 67, 4);
  g.symmetrize();
  g.sort(4);
  g.dedupe();
  const csr::CsrGraph plain = csr::build_csr_from_sorted(g, 1 << 9, 4);
  const csr::BitPackedCsr packed = csr::BitPackedCsr::from_csr(plain, 4);
  EXPECT_EQ(bfs(packed, 5, 4), bfs(plain, 5, 4));
}

TEST(Bfs, StarGraphOneHop) {
  EdgeList g;
  for (VertexId v = 1; v < 100; ++v) {
    g.push_back({0, v});
    g.push_back({v, 0});
  }
  g.sort(2);
  const csr::CsrGraph csr = csr::build_csr_from_sorted(g, 100, 2);
  const auto dist = bfs(csr, 0, 8);
  for (VertexId v = 1; v < 100; ++v) EXPECT_EQ(dist[v], 1u);
  const auto from_leaf = bfs(csr, 42, 8);
  EXPECT_EQ(from_leaf[0], 1u);
  EXPECT_EQ(from_leaf[17], 2u);
}

}  // namespace
}  // namespace pcq::algos
