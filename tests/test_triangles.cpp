#include "algos/triangles.hpp"

#include <gtest/gtest.h>

#include "csr/builder.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"

namespace pcq::algos {
namespace {

using graph::EdgeList;
using graph::VertexId;

csr::CsrGraph upper_triangle_csr(EdgeList g, VertexId n) {
  g.to_upper_triangle();
  return csr::build_csr_from_sorted(g, n, 4);
}

TEST(Triangles, SingleTriangle) {
  const csr::CsrGraph g =
      upper_triangle_csr(EdgeList({{0, 1}, {1, 2}, {0, 2}}), 3);
  EXPECT_EQ(count_triangles(g, 4), 1u);
}

TEST(Triangles, TriangleFreePath) {
  const csr::CsrGraph g =
      upper_triangle_csr(EdgeList({{0, 1}, {1, 2}, {2, 3}}), 4);
  EXPECT_EQ(count_triangles(g, 4), 0u);
}

TEST(Triangles, CompleteGraphK5) {
  EdgeList g;
  for (VertexId u = 0; u < 5; ++u)
    for (VertexId v = u + 1; v < 5; ++v) g.push_back({u, v});
  const csr::CsrGraph csr = upper_triangle_csr(std::move(g), 5);
  EXPECT_EQ(count_triangles(csr, 4), 10u);  // C(5,3)
}

TEST(Triangles, CompleteBipartiteIsTriangleFree) {
  EdgeList g;
  for (VertexId u = 0; u < 10; ++u)
    for (VertexId v = 10; v < 20; ++v) g.push_back({u, v});
  const csr::CsrGraph csr = upper_triangle_csr(std::move(g), 20);
  EXPECT_EQ(count_triangles(csr, 4), 0u);
}

TEST(Triangles, TwoSharedEdgeTriangles) {
  // Triangles {0,1,2} and {0,1,3} share edge (0,1).
  const csr::CsrGraph g = upper_triangle_csr(
      EdgeList({{0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3}}), 4);
  EXPECT_EQ(count_triangles(g, 4), 2u);
}

TEST(Triangles, ThreadCountInvariance) {
  EdgeList g = graph::rmat(256, 8000, 0.57, 0.19, 0.19, 91, 4);
  const csr::CsrGraph csr = upper_triangle_csr(std::move(g), 256);
  const auto ref = count_triangles(csr, 1);
  EXPECT_GT(ref, 0u);  // rmat at this density has triangles
  for (int p : {2, 4, 8, 64}) EXPECT_EQ(count_triangles(csr, p), ref);
}

TEST(Triangles, EmptyGraph) {
  EXPECT_EQ(count_triangles(csr::build_csr_from_sorted(EdgeList{}, 10, 2), 4),
            0u);
}

TEST(Triangles, PackedCsrMatchesPlain) {
  EdgeList g = graph::rmat(512, 20'000, 0.57, 0.19, 0.19, 93, 4);
  const csr::CsrGraph csr = upper_triangle_csr(std::move(g), 512);
  const csr::BitPackedCsr packed = csr::BitPackedCsr::from_csr(csr, 4);
  const auto ref = count_triangles(csr, 1);
  EXPECT_GT(ref, 0u);
  for (int p : {1, 2, 4, 8}) EXPECT_EQ(count_triangles(packed, p), ref);
}

TEST(Triangles, PackedSingleTriangle) {
  const csr::CsrGraph g =
      upper_triangle_csr(EdgeList({{0, 1}, {1, 2}, {0, 2}}), 3);
  EXPECT_EQ(count_triangles(csr::BitPackedCsr::from_csr(g, 2), 4), 1u);
}

}  // namespace
}  // namespace pcq::algos
