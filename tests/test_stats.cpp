#include "algos/stats.hpp"

#include <gtest/gtest.h>

#include "csr/builder.hpp"
#include "graph/generators.hpp"

namespace pcq::algos {
namespace {

using graph::EdgeList;
using graph::VertexId;

TEST(DegreeStats, UniformRing) {
  EdgeList g;
  for (VertexId v = 0; v < 100; ++v) g.push_back({v, (v + 1) % 100});
  g.sort(2);
  const csr::CsrGraph csr = csr::build_csr_from_sorted(g, 100, 2);
  const DegreeStats s = degree_stats(csr, 4);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 1.0);
  EXPECT_NEAR(s.gini, 0.0, 1e-9);  // perfectly equal degrees
}

TEST(DegreeStats, StarGraphInequality) {
  EdgeList g;
  for (VertexId v = 1; v < 100; ++v) g.push_back({0, v});
  g.sort(2);
  const csr::CsrGraph csr = csr::build_csr_from_sorted(g, 100, 2);
  const DegreeStats s = degree_stats(csr, 4);
  EXPECT_EQ(s.max, 99u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_GT(s.gini, 0.9);  // extreme concentration
}

TEST(DegreeStats, EmptyGraph) {
  const DegreeStats s = degree_stats(csr::CsrGraph{}, 4);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(DegreeStats, MeanIsEdgesOverNodes) {
  EdgeList g = graph::erdos_renyi(200, 5000, 99, 4);
  g.sort(4);
  const csr::CsrGraph csr = csr::build_csr_from_sorted(g, 200, 4);
  const DegreeStats s = degree_stats(csr, 4);
  EXPECT_NEAR(s.mean, 5000.0 / 200, 1e-9);
}

TEST(DegreeHistogram, BucketsPartitionNodes) {
  EdgeList g = graph::rmat(512, 20'000, 0.57, 0.19, 0.19, 101, 4);
  g.sort(4);
  const csr::CsrGraph csr = csr::build_csr_from_sorted(g, 512, 4);
  const auto hist = degree_histogram_log2(csr);
  std::uint64_t total = 0;
  for (auto c : hist) total += c;
  EXPECT_EQ(total, 512u);
}

TEST(DegreeHistogram, KnownBuckets) {
  // Degrees: node0 -> 1 edge (bucket 0), node1 -> 2 (bucket 1),
  // node2 -> 5 (bucket 2), nodes 3 and 4 -> 0 (bucket 0). Node 2's edges
  // reach destination 4, so the graph has 5 nodes.
  EdgeList g;
  g.push_back({0, 1});
  for (VertexId i = 0; i < 2; ++i) g.push_back({1, i});
  for (VertexId i = 0; i < 5; ++i) g.push_back({2, i});
  g.sort(2);
  const csr::CsrGraph csr = csr::build_csr_from_sorted(g, 5, 2);
  const auto hist = degree_histogram_log2(csr);
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 3u);  // degrees 0, 0 and 1
  EXPECT_EQ(hist[1], 1u);  // degree 2
  EXPECT_EQ(hist[2], 1u);  // degree 5 in [4, 8)
}

}  // namespace
}  // namespace pcq::algos
