#include "csr/builder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "graph/baselines.hpp"
#include "graph/generators.hpp"

namespace pcq::csr {
namespace {

using graph::Edge;
using graph::EdgeList;
using graph::VertexId;

/// The paper's running example: Table I's 10-node graph, upper triangle
/// (Figure 1).
EdgeList figure1_graph() {
  return EdgeList({{0, 5}, {1, 6}, {1, 7}, {2, 7}, {3, 8}, {3, 9}, {4, 9}});
}

TEST(CsrBuilder, Figure1DegreeArrayAndNeighbors) {
  const CsrGraph csr = build_csr_from_sorted(figure1_graph(), 10, 4);
  EXPECT_EQ(csr.num_nodes(), 10u);
  EXPECT_EQ(csr.num_edges(), 7u);
  // Degrees of the upper triangular rows: 1 2 1 2 1 0 0 0 0 0.
  const std::vector<std::uint32_t> expected_deg{1, 2, 1, 2, 1, 0, 0, 0, 0, 0};
  for (VertexId u = 0; u < 10; ++u) EXPECT_EQ(csr.degree(u), expected_deg[u]);
  // Neighbour list in Figure 1: 5 6 7 7 8 9 9.
  const std::vector<VertexId> expected_cols{5, 6, 7, 7, 8, 9, 9};
  for (std::size_t i = 0; i < expected_cols.size(); ++i)
    EXPECT_EQ(csr.columns()[i], expected_cols[i]);
}

TEST(CsrBuilder, EmptyGraph) {
  const CsrGraph csr = build_csr_from_sorted(EdgeList{}, 5, 4);
  EXPECT_EQ(csr.num_nodes(), 5u);
  EXPECT_EQ(csr.num_edges(), 0u);
  for (VertexId u = 0; u < 5; ++u) EXPECT_TRUE(csr.neighbors(u).empty());
}

TEST(CsrBuilder, SingleEdge) {
  const CsrGraph csr = build_csr_from_sorted(EdgeList({{3, 7}}), 0, 8);
  EXPECT_EQ(csr.num_nodes(), 8u);
  EXPECT_EQ(csr.degree(3), 1u);
  EXPECT_TRUE(csr.has_edge(3, 7));
  EXPECT_FALSE(csr.has_edge(7, 3));
}

TEST(CsrBuilder, ParallelEqualsSequentialReference) {
  EdgeList g = graph::rmat(1 << 10, 30'000, 0.57, 0.19, 0.19, 3, 4);
  g.sort(4);
  const CsrGraph ref = build_csr_sequential(g, 1 << 10);
  for (int p : {1, 2, 4, 8, 16, 64}) {
    const CsrGraph par = build_csr_from_sorted(g, 1 << 10, p);
    ASSERT_EQ(par.num_edges(), ref.num_edges()) << "p=" << p;
    EXPECT_TRUE(std::equal(par.offsets().begin(), par.offsets().end(),
                           ref.offsets().begin()))
        << "p=" << p;
    EXPECT_TRUE(std::equal(par.columns().begin(), par.columns().end(),
                           ref.columns().begin()))
        << "p=" << p;
  }
}

TEST(CsrBuilder, UnsortedConvenienceBuildSorts) {
  EdgeList g({{5, 1}, {0, 2}, {5, 0}, {3, 3}});
  const CsrGraph csr = build_csr(g, 0, 4);
  EXPECT_EQ(csr.neighbors(5)[0], 0u);
  EXPECT_EQ(csr.neighbors(5)[1], 1u);
  EXPECT_TRUE(csr.has_edge(3, 3));
}

TEST(CsrBuilder, NeighborsMatchAdjacencyListOracle) {
  EdgeList g = graph::erdos_renyi(300, 5000, 17, 4);
  g.sort(4);
  g.dedupe();
  const graph::AdjacencyListGraph oracle(g, 300);
  const CsrGraph csr = build_csr_from_sorted(g, 300, 8);
  for (VertexId u = 0; u < 300; ++u) {
    const auto expect = oracle.neighbors(u);
    const auto got = csr.neighbors(u);
    ASSERT_EQ(got.size(), expect.size()) << "u=" << u;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), expect.begin()));
  }
}

TEST(CsrBuilder, TimingsPopulated) {
  EdgeList g = graph::rmat(512, 20'000, 0.57, 0.19, 0.19, 5, 4);
  g.sort(4);
  CsrBuildTimings t;
  build_csr_from_sorted(g, 512, 4, &t);
  EXPECT_GE(t.degree, 0.0);
  EXPECT_GE(t.scan, 0.0);
  EXPECT_GE(t.fill, 0.0);
  EXPECT_GT(t.total(), 0.0);
}

TEST(CsrGraph, OffsetsAreMonotone) {
  EdgeList g = graph::rmat(256, 10'000, 0.57, 0.19, 0.19, 7, 4);
  g.sort(4);
  const CsrGraph csr = build_csr_from_sorted(g, 256, 8);
  const auto offs = csr.offsets();
  EXPECT_TRUE(std::is_sorted(offs.begin(), offs.end()));
  EXPECT_EQ(offs.front(), 0u);
  EXPECT_EQ(offs.back(), csr.num_edges());
}

TEST(CsrGraph, SizeBytesAccounting) {
  const CsrGraph csr = build_csr_from_sorted(figure1_graph(), 10, 2);
  EXPECT_EQ(csr.size_bytes(), 11 * 8 + 7 * 4u);
}

// Property: build across (graph shape, thread count) equals the reference.
class BuilderProperty
    : public testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(BuilderProperty, ParallelEqualsReference) {
  const auto [m, threads] = GetParam();
  EdgeList g = graph::rmat(512, m, 0.57, 0.19, 0.19, m + threads, 4);
  g.sort(4);
  const CsrGraph ref = build_csr_sequential(g, 512);
  const CsrGraph par = build_csr_from_sorted(g, 512, threads);
  EXPECT_TRUE(std::equal(par.offsets().begin(), par.offsets().end(),
                         ref.offsets().begin()));
  EXPECT_TRUE(std::equal(par.columns().begin(), par.columns().end(),
                         ref.columns().begin()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BuilderProperty,
    testing::Combine(testing::Values<std::size_t>(1, 2, 100, 1000, 50'000),
                     testing::Values(1, 2, 4, 8, 16, 64)));

}  // namespace
}  // namespace pcq::csr
