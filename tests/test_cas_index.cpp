#include "tcsr/cas_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "tcsr/tcsr.hpp"
#include "util/rng.hpp"

namespace pcq::tcsr {
namespace {

using graph::TemporalEdge;
using graph::TemporalEdgeList;
using graph::TimeFrame;
using graph::VertexId;

TEST(CasIndex, KnownLifecycle) {
  // (0,1): on at 0, off at 2; (0,2): on at 1.
  TemporalEdgeList evs({{0, 1, 0}, {0, 2, 1}, {0, 1, 2}});
  evs.sort(2);
  const CasIndex cas = CasIndex::build(evs, 3, 2);
  EXPECT_TRUE(cas.edge_active(0, 1, 0));
  EXPECT_TRUE(cas.edge_active(0, 1, 1));
  EXPECT_FALSE(cas.edge_active(0, 1, 2));
  EXPECT_FALSE(cas.edge_active(0, 2, 0));
  EXPECT_TRUE(cas.edge_active(0, 2, 2));
  EXPECT_FALSE(cas.edge_active(1, 0, 2));  // directed
  EXPECT_EQ(cas.neighbors_at(0, 1), (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(cas.neighbors_at(0, 2), (std::vector<VertexId>{2}));
}

TEST(CasIndex, EmptyHistory) {
  const CasIndex cas = CasIndex::build(TemporalEdgeList{}, 4, 2);
  EXPECT_EQ(cas.num_events(), 0u);
  EXPECT_FALSE(cas.edge_active(0, 1, 0));
  EXPECT_TRUE(cas.neighbors_at(2, 0).empty());
}

TEST(CasIndex, AgreesWithDifferentialTcsr) {
  const TemporalEdgeList evs = graph::evolving_graph(80, 4000, 12, 21, 4);
  const auto tcsr = DifferentialTcsr::build(evs, 80, 12, 4);
  const CasIndex cas = CasIndex::build(evs, 80, 4);

  pcq::util::SplitMix64 rng(23);
  for (int i = 0; i < 1500; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(80));
    const auto v = static_cast<VertexId>(rng.next_below(80));
    const auto t = static_cast<TimeFrame>(rng.next_below(12));
    ASSERT_EQ(cas.edge_active(u, v, t), tcsr.edge_active(u, v, t))
        << u << "->" << v << "@" << t;
  }
  for (VertexId u = 0; u < 80; u += 9)
    for (TimeFrame t = 0; t < 12; t += 5)
      EXPECT_EQ(cas.neighbors_at(u, t), tcsr.neighbors_at(u, t))
          << "u=" << u << " t=" << t;
}

TEST(CasIndex, UnsortedInputHandled) {
  // CAS re-sorts internally; feed events in reverse order.
  std::vector<TemporalEdge> evs{{5, 6, 3}, {0, 1, 2}, {5, 6, 1}, {0, 1, 0}};
  const CasIndex cas = CasIndex::build(TemporalEdgeList(std::move(evs)), 7, 2);
  EXPECT_TRUE(cas.edge_active(0, 1, 0));
  EXPECT_FALSE(cas.edge_active(0, 1, 2));  // toggled off at 2
  EXPECT_TRUE(cas.edge_active(5, 6, 2));
  EXPECT_FALSE(cas.edge_active(5, 6, 3));
}

TEST(CasIndex, ThreadCountInvariance) {
  const TemporalEdgeList evs = graph::evolving_graph(60, 2500, 8, 27, 4);
  const CasIndex ref = CasIndex::build(evs, 60, 1);
  for (int p : {2, 4, 8}) {
    const CasIndex cas = CasIndex::build(evs, 60, p);
    EXPECT_EQ(cas.size_bytes(), ref.size_bytes()) << "p=" << p;
    for (VertexId u = 0; u < 60; u += 13)
      EXPECT_EQ(cas.neighbors_at(u, 5), ref.neighbors_at(u, 5)) << "p=" << p;
  }
}

TEST(CasIndex, ChurnWorkloadAgreesWithTcsr) {
  const TemporalEdgeList evs =
      graph::evolving_graph_churn(100, 3000, 10, 100, 0.4, 31);
  const auto tcsr = DifferentialTcsr::build(evs, 100, 10, 4);
  const CasIndex cas = CasIndex::build(evs, 100, 4);
  pcq::util::SplitMix64 rng(33);
  for (int i = 0; i < 800; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(100));
    const auto v = static_cast<VertexId>(rng.next_below(100));
    const auto t = static_cast<TimeFrame>(rng.next_below(10));
    ASSERT_EQ(cas.edge_active(u, v, t), tcsr.edge_active(u, v, t));
  }
}

}  // namespace
}  // namespace pcq::tcsr
