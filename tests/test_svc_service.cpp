// End-to-end tests of the pcq::svc batch query service: every query kind
// must agree with the direct kernel answer for every batching
// configuration, and the admission-control paths (reject / expire /
// invalid / unsupported) must answer without touching the graph.
#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "csr/builder.hpp"
#include "graph/generators.hpp"
#include "tcsr/journeys.hpp"
#include "util/rng.hpp"

namespace pcq::svc {
namespace {

using graph::VertexId;
using namespace std::chrono_literals;

struct Fixture {
  Fixture() {
    graph::EdgeList list =
        graph::rmat(1 << 10, 20'000, 0.57, 0.19, 0.19, 11, 2);
    list.sort(2);
    list.dedupe();
    csr = csr::build_bitpacked_csr_from_sorted(list, 1 << 10, 2);

    graph::TemporalEdgeList events;
    util::SplitMix64 rng(5);
    for (int i = 0; i < 4000; ++i)
      events.push_back({static_cast<VertexId>(rng.next_below(200)),
                        static_cast<VertexId>(rng.next_below(200)),
                        static_cast<graph::TimeFrame>(rng.next_below(8))});
    events.sort(2);
    tcsr = tcsr::DifferentialTcsr::build(events, 0, 0, 2);
  }
  csr::BitPackedCsr csr;
  tcsr::DifferentialTcsr tcsr;
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

Request make(QueryKind kind, VertexId u, VertexId v = 0,
             graph::TimeFrame t = 0) {
  Request r;
  r.kind = kind;
  r.u = u;
  r.v = v;
  r.t = t;
  return r;
}

/// Submits every request via the future API and returns the responses.
std::vector<Response> run_all(QueryService& service,
                              const std::vector<Request>& requests) {
  std::vector<std::future<Response>> futures;
  futures.reserve(requests.size());
  for (const Request& r : requests) futures.push_back(service.submit(r));
  std::vector<Response> responses;
  responses.reserve(requests.size());
  for (auto& f : futures) responses.push_back(f.get());
  return responses;
}

/// Every kind answered correctly under the given config.
void check_correctness(ServiceConfig config) {
  const Fixture& f = fixture();
  QueryService service(f.csr, &f.tcsr, config);

  util::SplitMix64 rng(17);
  std::vector<Request> requests;
  for (int i = 0; i < 600; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(f.csr.num_nodes()));
    const auto v = static_cast<VertexId>(rng.next_below(f.csr.num_nodes()));
    const auto tu = static_cast<VertexId>(rng.next_below(f.tcsr.num_nodes()));
    const auto tv = static_cast<VertexId>(rng.next_below(f.tcsr.num_nodes()));
    const auto t =
        static_cast<graph::TimeFrame>(rng.next_below(f.tcsr.num_frames()));
    switch (i % 6) {
      case 0: requests.push_back(make(QueryKind::kDegree, u)); break;
      case 1: requests.push_back(make(QueryKind::kNeighbors, u)); break;
      case 2: requests.push_back(make(QueryKind::kEdgeExists, u, v)); break;
      case 3: requests.push_back(make(QueryKind::kTemporalEdge, tu, tv, t)); break;
      case 4: requests.push_back(make(QueryKind::kTemporalNeighbors, tu, 0, t)); break;
      default: requests.push_back(make(QueryKind::kForemostArrival, tu, tv, 0)); break;
    }
  }
  const std::vector<Response> responses = run_all(service, requests);

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& q = requests[i];
    const Response& r = responses[i];
    ASSERT_EQ(r.status, Status::kOk) << i;
    EXPECT_GE(r.latency.count(), 0) << i;
    switch (q.kind) {
      case QueryKind::kDegree:
        EXPECT_EQ(r.degree, f.csr.degree(q.u)) << i;
        break;
      case QueryKind::kNeighbors:
        EXPECT_EQ(r.neighbors, f.csr.neighbors(q.u)) << i;
        break;
      case QueryKind::kEdgeExists:
        EXPECT_EQ(r.exists, f.csr.has_edge(q.u, q.v)) << i;
        break;
      case QueryKind::kTemporalEdge:
        EXPECT_EQ(r.exists, f.tcsr.edge_active(q.u, q.v, q.t)) << i;
        break;
      case QueryKind::kTemporalNeighbors:
        EXPECT_EQ(r.neighbors, f.tcsr.neighbors_at(q.u, q.t)) << i;
        break;
      case QueryKind::kForemostArrival: {
        const auto arrivals = tcsr::foremost_arrival(f.tcsr, q.u, q.t, 1);
        EXPECT_EQ(r.arrival, arrivals[q.v]) << i;
        EXPECT_EQ(r.exists, arrivals[q.v] != tcsr::kNeverReached) << i;
        break;
      }
    }
  }

  const MetricsSnapshot m = service.metrics();
  EXPECT_EQ(m.submitted, requests.size());
  EXPECT_EQ(m.completed, requests.size());
  EXPECT_EQ(m.rejected, 0u);
  EXPECT_GE(m.batches, 1u);
}

TEST(QueryService, AnswersMatchKernels_SingleRequestDispatch) {
  ServiceConfig config;
  config.max_batch = 1;  // degenerate: every request its own batch
  config.batch_window = std::chrono::microseconds(0);
  check_correctness(config);
}

TEST(QueryService, AnswersMatchKernels_MicroBatched) {
  ServiceConfig config;
  config.max_batch = 64;
  config.batch_window = std::chrono::microseconds(200);
  check_correctness(config);
}

TEST(QueryService, AnswersMatchKernels_ShardedAdaptive) {
  ServiceConfig config;
  config.shards = 4;
  config.max_batch = 32;
  config.adaptive_window = true;
  check_correctness(config);
}

TEST(QueryService, AnswersMatchKernels_KernelThreads) {
  ServiceConfig config;
  config.max_batch = 128;
  config.kernel_threads = 4;
  config.edge_search = csr::RowSearch::kLinear;
  check_correctness(config);
}

TEST(QueryService, OutOfRangeNodeIsInvalidNotFatal) {
  const Fixture& f = fixture();
  QueryService service(f.csr, &f.tcsr, ServiceConfig{});
  const VertexId n = f.csr.num_nodes();
  EXPECT_EQ(service.submit(make(QueryKind::kDegree, n)).get().status,
            Status::kInvalid);
  EXPECT_EQ(service.submit(make(QueryKind::kNeighbors, n + 7)).get().status,
            Status::kInvalid);
  EXPECT_EQ(service.submit(make(QueryKind::kEdgeExists, n, 0)).get().status,
            Status::kInvalid);
  // Temporal kinds validate against the history's (smaller) node space.
  EXPECT_EQ(service
                .submit(make(QueryKind::kTemporalNeighbors,
                             f.tcsr.num_nodes(), 0, 0))
                .get()
                .status,
            Status::kInvalid);
  EXPECT_EQ(service
                .submit(make(QueryKind::kTemporalEdge, 0, 0,
                             f.tcsr.num_frames()))
                .get()
                .status,
            Status::kInvalid);
  // The service keeps serving after invalid requests.
  EXPECT_EQ(service.submit(make(QueryKind::kDegree, 0)).get().status,
            Status::kOk);
}

// Regression: an out-of-range *target* must be kInvalid for every edge
// kind, exactly like an out-of-range source. kEdgeExists used to answer
// kOk/absent for these while kDegree on the same id said kInvalid — the
// same nonsense id got two different verdicts depending on which operand
// slot it arrived in.
TEST(QueryService, OutOfRangeTargetIsInvalidForAllEdgeKinds) {
  const Fixture& f = fixture();
  QueryService service(f.csr, &f.tcsr, ServiceConfig{});
  const VertexId n = f.csr.num_nodes();
  const VertexId tn = f.tcsr.num_nodes();
  EXPECT_EQ(service.submit(make(QueryKind::kEdgeExists, 0, n)).get().status,
            Status::kInvalid);
  EXPECT_EQ(service.submit(make(QueryKind::kEdgeExists, 0, n + 123)).get()
                .status,
            Status::kInvalid);
  // Temporal kinds validate v against the history's (smaller) node space.
  EXPECT_EQ(service.submit(make(QueryKind::kTemporalEdge, 0, tn, 0)).get()
                .status,
            Status::kInvalid);
  EXPECT_EQ(service.submit(make(QueryKind::kForemostArrival, 0, tn, 0)).get()
                .status,
            Status::kInvalid);
  // Largest in-range target still answers normally.
  const Response r =
      service.submit(make(QueryKind::kEdgeExists, 0, n - 1)).get();
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.exists, f.csr.has_edge(0, n - 1));
}

TEST(QueryService, TemporalWithoutHistoryIsUnsupported) {
  const Fixture& f = fixture();
  QueryService service(f.csr, nullptr, ServiceConfig{});
  EXPECT_EQ(service.submit(make(QueryKind::kTemporalEdge, 0, 1, 0)).get().status,
            Status::kUnsupported);
  EXPECT_EQ(service.submit(make(QueryKind::kForemostArrival, 0, 1, 0)).get().status,
            Status::kUnsupported);
  EXPECT_EQ(service.submit(make(QueryKind::kNeighbors, 0)).get().status,
            Status::kOk);
}

TEST(QueryService, ExpiredDeadlineSkipsExecution) {
  const Fixture& f = fixture();
  ServiceConfig config;
  config.max_batch = 8;
  config.batch_window = std::chrono::microseconds(20'000);
  QueryService service(f.csr, nullptr, config);
  Request r = make(QueryKind::kNeighbors, 1);
  r.deadline = Clock::now() - 1ms;  // already past
  const Response resp = service.submit(r).get();
  EXPECT_EQ(resp.status, Status::kExpired);
  EXPECT_TRUE(resp.neighbors.empty());
  EXPECT_EQ(service.metrics().expired, 1u);
}

TEST(QueryService, BackpressureRejectsWhenQueueFull) {
  const Fixture& f = fixture();
  ServiceConfig config;
  config.queue_capacity = 4;
  config.max_batch = 2;
  // Large window so the single worker drains slowly enough to fill the
  // 4-slot queue from a burst.
  config.batch_window = std::chrono::microseconds(50'000);
  config.adaptive_window = false;
  QueryService service(f.csr, nullptr, config);

  std::atomic<int> callbacks{0};
  int rejected = 0;
  for (int i = 0; i < 5000; ++i) {
    const bool ok = service.submit(make(QueryKind::kDegree, 1),
                                   [&callbacks](Response&&) {
                                     callbacks.fetch_add(1);
                                   });
    if (!ok) ++rejected;
  }
  service.stop();
  EXPECT_GT(rejected, 0);  // a 5000-burst must overflow a 4-slot queue
  EXPECT_EQ(callbacks.load(), 5000 - rejected);  // accepted => exactly one cb
  const MetricsSnapshot m = service.metrics();
  EXPECT_EQ(m.rejected, static_cast<std::uint64_t>(rejected));
  EXPECT_EQ(m.completed, static_cast<std::uint64_t>(5000 - rejected));
}

TEST(QueryService, StopDrainsQueuedRequests) {
  const Fixture& f = fixture();
  ServiceConfig config;
  config.max_batch = 16;
  config.batch_window = std::chrono::microseconds(5'000);
  QueryService service(f.csr, nullptr, config);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 200; ++i)
    futures.push_back(service.submit(make(QueryKind::kDegree, 2)));
  service.stop();  // must answer everything already admitted
  for (auto& fut : futures) EXPECT_EQ(fut.get().status, Status::kOk);
  // New submissions after stop are rejected, not lost.
  EXPECT_EQ(service.submit(make(QueryKind::kDegree, 2)).get().status,
            Status::kRejected);
}

TEST(QueryService, MetricsRecordBatchSizes) {
  const Fixture& f = fixture();
  ServiceConfig config;
  config.max_batch = 32;
  config.batch_window = std::chrono::microseconds(2'000);
  QueryService service(f.csr, nullptr, config);
  run_all(service, std::vector<Request>(500, make(QueryKind::kDegree, 3)));
  const MetricsSnapshot m = service.metrics();
  EXPECT_EQ(m.completed, 500u);
  EXPECT_GE(m.mean_batch_size, 1.0);
  EXPECT_GT(m.qps, 0.0);
  EXPECT_GE(m.latency_p99_us, m.latency_p50_us);
}

// TSan target: many client threads hammering a sharded service.
TEST(QueryService, ConcurrentClientsStress) {
  const Fixture& f = fixture();
  ServiceConfig config;
  config.shards = 2;
  config.max_batch = 64;
  config.queue_capacity = 256;
  QueryService service(f.csr, &f.tcsr, config);

  constexpr int kClients = 4;
  constexpr int kPerClient = 1500;
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&service, &answered, &f, c] {
      util::SplitMix64 rng(static_cast<std::uint64_t>(c) + 1);
      for (int i = 0; i < kPerClient; ++i) {
        Request r = make(i % 2 == 0 ? QueryKind::kDegree
                                    : QueryKind::kEdgeExists,
                         static_cast<VertexId>(
                             rng.next_below(f.csr.num_nodes())),
                         static_cast<VertexId>(
                             rng.next_below(f.csr.num_nodes())));
        while (!service.submit(r, [&answered](Response&&) {
                 answered.fetch_add(1, std::memory_order_relaxed);
               }))
          std::this_thread::yield();
      }
    });
  for (auto& t : clients) t.join();
  service.stop();
  EXPECT_EQ(answered.load(), kClients * kPerClient);
}

// TSan target: stop() must be idempotent and safe to race — the TCP
// front-end calls it from a signal-triggered path while the owning thread
// may be tearing the service down. stopped_ is an atomic exchanged once;
// only the winner joins the workers.
TEST(QueryService, ConcurrentStopIsIdempotent) {
  const Fixture& f = fixture();
  for (int round = 0; round < 8; ++round) {
    QueryService service(f.csr, nullptr, ServiceConfig{});
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 64; ++i)
      futures.push_back(service.submit(make(QueryKind::kDegree, 1)));
    std::vector<std::thread> stoppers;
    for (int t = 0; t < 4; ++t)
      stoppers.emplace_back([&service] { service.stop(); });
    for (auto& t : stoppers) t.join();
    for (auto& fut : futures) EXPECT_EQ(fut.get().status, Status::kOk);
  }
}

}  // namespace
}  // namespace pcq::svc
