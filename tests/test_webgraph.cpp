#include "graph/webgraph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "csr/builder.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "util/rng.hpp"

namespace pcq::graph {
namespace {

EdgeList sorted_dedup(EdgeList g) {
  g.sort(4);
  g.dedupe();
  return g;
}

TEST(GapZetaGraph, SmallKnownGraph) {
  const EdgeList g({{0, 2}, {0, 5}, {0, 6}, {2, 0}, {3, 3}});
  const GapZetaGraph z = GapZetaGraph::build_from_sorted(g, 7, 3, 2);
  EXPECT_EQ(z.num_nodes(), 7u);
  EXPECT_EQ(z.num_edges(), 5u);
  EXPECT_EQ(z.degree(0), 3u);
  EXPECT_EQ(z.degree(1), 0u);
  EXPECT_EQ(z.neighbors(0), (std::vector<VertexId>{2, 5, 6}));
  EXPECT_EQ(z.neighbors(3), (std::vector<VertexId>{3}));
  EXPECT_TRUE(z.has_edge(0, 5));
  EXPECT_FALSE(z.has_edge(0, 4));
  EXPECT_FALSE(z.has_edge(5, 0));
}

TEST(GapZetaGraph, MatchesCsrOnRandomGraph) {
  const EdgeList g = sorted_dedup(rmat(512, 20'000, 0.57, 0.19, 0.19, 3, 4));
  const csr::CsrGraph csr = csr::build_csr_from_sorted(g, 512, 4);
  const GapZetaGraph z = GapZetaGraph::build_from_sorted(g, 512, 3, 4);
  ASSERT_EQ(z.num_edges(), csr.num_edges());
  for (VertexId u = 0; u < 512; ++u) {
    EXPECT_EQ(z.degree(u), csr.degree(u)) << u;
    const auto row = z.neighbors(u);
    const auto expect = csr.neighbors(u);
    ASSERT_EQ(row.size(), expect.size()) << u;
    EXPECT_TRUE(std::equal(row.begin(), row.end(), expect.begin()));
  }
}

TEST(GapZetaGraph, HasEdgeMatchesOracle) {
  const EdgeList g = sorted_dedup(rmat(256, 8000, 0.57, 0.19, 0.19, 5, 4));
  const csr::CsrGraph csr = csr::build_csr_from_sorted(g, 256, 4);
  const GapZetaGraph z = GapZetaGraph::build_from_sorted(g, 256, 3, 4);
  pcq::util::SplitMix64 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(256));
    const auto v = static_cast<VertexId>(rng.next_below(256));
    EXPECT_EQ(z.has_edge(u, v), csr.has_edge(u, v)) << u << "," << v;
  }
}

TEST(GapZetaGraph, ThreadCountInvariantSizes) {
  const EdgeList g = sorted_dedup(rmat(512, 20'000, 0.57, 0.19, 0.19, 9, 4));
  const GapZetaGraph ref = GapZetaGraph::build_from_sorted(g, 512, 3, 1);
  for (int p : {2, 4, 8, 64}) {
    const GapZetaGraph z = GapZetaGraph::build_from_sorted(g, 512, 3, p);
    EXPECT_EQ(z.size_bytes(), ref.size_bytes()) << "p=" << p;
    for (VertexId u = 0; u < 512; u += 41)
      EXPECT_EQ(z.neighbors(u), ref.neighbors(u)) << "p=" << p;
  }
}

TEST(GapZetaGraph, EmptyGraph) {
  const GapZetaGraph z = GapZetaGraph::build_from_sorted(EdgeList{}, 4, 3, 2);
  EXPECT_EQ(z.num_edges(), 0u);
  EXPECT_EQ(z.degree(2), 0u);
  EXPECT_TRUE(z.neighbors(2).empty());
}

TEST(GapZetaGraph, DegreeRelabelingShrinksStream) {
  // After degree-descending relabeling the gaps concentrate near zero, so
  // the zeta stream must shrink on a skewed graph.
  EdgeList g = rmat(1 << 12, 100'000, 0.57, 0.19, 0.19, 11, 4);
  RelabelResult relabeled = relabel_by_degree(g, 1 << 12, 4);
  const GapZetaGraph before =
      GapZetaGraph::build_from_sorted(sorted_dedup(std::move(g)), 1 << 12, 3, 4);
  const GapZetaGraph after = GapZetaGraph::build_from_sorted(
      sorted_dedup(std::move(relabeled.list)), 1 << 12, 3, 4);
  EXPECT_LT(after.size_bytes(), before.size_bytes());
}

TEST(GapZetaGraph, SmallerThanPackedCsrOnClusteredRows) {
  // Long clustered rows (a near-clique block) are where gap coding wins.
  EdgeList g;
  for (VertexId u = 0; u < 200; ++u)
    for (VertexId v = 0; v < 200; ++v)
      if (u != v) g.push_back({u, v});
  g.sort(4);
  const csr::BitPackedCsr packed =
      csr::build_bitpacked_csr_from_sorted(g, 200, 4);
  const GapZetaGraph z = GapZetaGraph::build_from_sorted(g, 200, 3, 4);
  EXPECT_LT(z.size_bytes(), packed.size_bytes());
}

}  // namespace
}  // namespace pcq::graph
