#include "bits/codecs.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace pcq::bits {
namespace {

TEST(Varint, SmallValuesOneByte) {
  std::vector<std::uint8_t> out;
  varint_encode(0, out);
  varint_encode(127, out);
  EXPECT_EQ(out.size(), 2u);
  std::size_t pos = 0;
  EXPECT_EQ(varint_decode(out, pos), 0u);
  EXPECT_EQ(varint_decode(out, pos), 127u);
  EXPECT_EQ(pos, 2u);
}

TEST(Varint, BoundaryValues) {
  std::vector<std::uint8_t> out;
  const std::vector<std::uint64_t> values{
      128, 16383, 16384, 0xffffffffULL, 0xffffffffffffffffULL};
  for (auto v : values) varint_encode(v, out);
  std::size_t pos = 0;
  for (auto v : values) EXPECT_EQ(varint_decode(out, pos), v);
}

TEST(Varint, MaxValueTakesTenBytes) {
  std::vector<std::uint8_t> out;
  varint_encode(0xffffffffffffffffULL, out);
  EXPECT_EQ(out.size(), 10u);
}

TEST(EliasGamma, KnownCodewordLengths) {
  // gamma(1) = "1" (1 bit), gamma(2) = "010" (3 bits), gamma(5) = 5 bits.
  BitVector bv;
  elias_gamma_encode(1, bv);
  EXPECT_EQ(bv.size(), 1u);
  elias_gamma_encode(2, bv);
  EXPECT_EQ(bv.size(), 4u);
  elias_gamma_encode(5, bv);
  EXPECT_EQ(bv.size(), 9u);
}

TEST(EliasGamma, RoundTrip) {
  BitVector bv;
  const std::vector<std::uint64_t> values{1, 2, 3, 4, 7, 8, 100, 1023, 1024,
                                          (1ULL << 40) + 12345};
  for (auto v : values) elias_gamma_encode(v, bv);
  std::size_t pos = 0;
  for (auto v : values) EXPECT_EQ(elias_gamma_decode(bv, pos), v);
  EXPECT_EQ(pos, bv.size());
}

TEST(EliasDelta, RoundTrip) {
  BitVector bv;
  const std::vector<std::uint64_t> values{1, 2, 3, 15, 16, 17, 1000000,
                                          (1ULL << 50) + 99};
  for (auto v : values) elias_delta_encode(v, bv);
  std::size_t pos = 0;
  for (auto v : values) EXPECT_EQ(elias_delta_decode(bv, pos), v);
  EXPECT_EQ(pos, bv.size());
}

TEST(EliasDelta, ShorterThanGammaForLargeValues) {
  BitVector g, d;
  elias_gamma_encode(1'000'000, g);
  elias_delta_encode(1'000'000, d);
  EXPECT_LT(d.size(), g.size());
}

TEST(EliasCodes, RandomRoundTrip) {
  pcq::util::SplitMix64 rng(21);
  std::vector<std::uint64_t> values(500);
  for (auto& v : values) v = 1 + rng.next_below(1ULL << 45);
  BitVector g, d;
  for (auto v : values) {
    elias_gamma_encode(v, g);
    elias_delta_encode(v, d);
  }
  std::size_t gp = 0, dp = 0;
  for (auto v : values) {
    EXPECT_EQ(elias_gamma_decode(g, gp), v);
    EXPECT_EQ(elias_delta_decode(d, dp), v);
  }
}

class GapSequenceTest : public testing::TestWithParam<GapCodec> {};

TEST_P(GapSequenceTest, RoundTripSorted) {
  const std::vector<std::uint64_t> values{0, 0, 1, 5, 5, 5, 100, 101, 1000000};
  const auto seq = GapEncodedSequence::encode(values, GetParam());
  EXPECT_EQ(seq.decode(), values);
  EXPECT_EQ(seq.size(), values.size());
}

TEST_P(GapSequenceTest, EmptySequence) {
  const auto seq = GapEncodedSequence::encode({}, GetParam());
  EXPECT_TRUE(seq.decode().empty());
}

TEST_P(GapSequenceTest, RandomSortedRoundTrip) {
  pcq::util::SplitMix64 rng(33);
  std::vector<std::uint64_t> values(2000);
  std::uint64_t acc = 0;
  for (auto& v : values) {
    acc += rng.next_below(50);
    v = acc;
  }
  const auto seq = GapEncodedSequence::encode(values, GetParam());
  EXPECT_EQ(seq.decode(), values);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, GapSequenceTest,
                         testing::Values(GapCodec::kVarint, GapCodec::kGamma,
                                         GapCodec::kDelta));

TEST(GapSequence, DenseSequencesCompressWell) {
  // Consecutive time-frames (gap 1): ~2-3 bits/entry with gamma, far below
  // the 64 bits/entry of the raw representation.
  std::vector<std::uint64_t> values(10'000);
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = i;
  const auto seq = GapEncodedSequence::encode(values, GapCodec::kGamma);
  EXPECT_LT(seq.size_bytes(), 10'000u);  // < 1 byte per entry
}

}  // namespace
}  // namespace pcq::bits
