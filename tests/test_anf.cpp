#include "algos/anf.hpp"

#include <gtest/gtest.h>

#include "algos/bfs.hpp"
#include "csr/builder.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace pcq::algos {
namespace {

using graph::EdgeList;
using graph::VertexId;

csr::CsrGraph symmetric_csr(EdgeList g, VertexId n) {
  g.symmetrize();
  g.sort(4);
  g.dedupe();
  g.remove_self_loops();
  return csr::build_csr_from_sorted(g, n, 4);
}

TEST(HllCounter, EstimatesSmallSetsExactly) {
  // Linear-counting regime: small sets should be within ~1.
  HllCounter c;
  pcq::util::SplitMix64 rng(3);
  for (int i = 0; i < 10; ++i) c.add_hash(rng.next());
  EXPECT_NEAR(c.estimate(), 10.0, 2.5);
}

TEST(HllCounter, EstimatesLargeSetsWithinTolerance) {
  HllCounter c;
  pcq::util::SplitMix64 rng(5);
  constexpr int kTrue = 100'000;
  for (int i = 0; i < kTrue; ++i) c.add_hash(rng.next());
  // 64 registers -> ~13% standard error; allow 3 sigma.
  EXPECT_NEAR(c.estimate(), kTrue, kTrue * 0.4);
}

TEST(HllCounter, DuplicatesDoNotInflate) {
  HllCounter c;
  pcq::util::SplitMix64 rng(7);
  const std::uint64_t h = rng.next();
  for (int i = 0; i < 1000; ++i) c.add_hash(h);
  EXPECT_LT(c.estimate(), 3.0);
}

TEST(HllCounter, MergeEqualsUnion) {
  HllCounter a, b, u;
  pcq::util::SplitMix64 rng(9);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t h = rng.next();
    a.add_hash(h);
    u.add_hash(h);
  }
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t h = rng.next();
    b.add_hash(h);
    u.add_hash(h);
  }
  a.merge(b);
  EXPECT_EQ(a, u);
}

TEST(Anf, PathGraphNeighborhoodGrowsLinearly) {
  EdgeList g;
  for (VertexId v = 0; v + 1 < 32; ++v) g.push_back({v, v + 1});
  const csr::CsrGraph csr = symmetric_csr(std::move(g), 32);
  const auto nf = approximate_neighborhood_function(csr, 40, 3, 4);
  // N(0) ~ 32 self-pairs; the function is monotone; N(31) ~ 32^2.
  EXPECT_NEAR(nf.pairs.front(), 32.0, 12.0);
  for (std::size_t h = 1; h < nf.pairs.size(); ++h)
    EXPECT_GE(nf.pairs[h], nf.pairs[h - 1] * 0.999);
  EXPECT_NEAR(nf.pairs.back(), 32.0 * 32.0, 32.0 * 32.0 * 0.45);
}

TEST(Anf, StarGraphDiameterTwo) {
  EdgeList g;
  for (VertexId v = 1; v < 200; ++v) g.push_back({0, v});
  const csr::CsrGraph csr = symmetric_csr(std::move(g), 200);
  const auto nf = approximate_neighborhood_function(csr, 10, 5, 4);
  // Everything is reachable within 2 hops: the curve must plateau there.
  ASSERT_GE(nf.pairs.size(), 3u);
  EXPECT_LE(nf.effective_diameter(0.99), 2.3);
}

TEST(Anf, SmallWorldHasSmallEffectiveDiameter) {
  const csr::CsrGraph g =
      symmetric_csr(graph::rmat(1 << 11, 30'000, 0.57, 0.19, 0.19, 7, 4),
                    1 << 11);
  const auto nf = approximate_neighborhood_function(g, 16, 7, 4);
  EXPECT_LT(nf.effective_diameter(0.9), 7.0);  // social graphs: ~4-6
}

TEST(Anf, DeterministicGivenSeed) {
  const csr::CsrGraph g =
      symmetric_csr(graph::erdos_renyi(256, 2000, 9, 4), 256);
  const auto a = approximate_neighborhood_function(g, 8, 11, 1);
  const auto b = approximate_neighborhood_function(g, 8, 11, 8);
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (std::size_t h = 0; h < a.pairs.size(); ++h)
    EXPECT_DOUBLE_EQ(a.pairs[h], b.pairs[h]);
}

TEST(Anf, EmptyGraph) {
  const auto nf = approximate_neighborhood_function(csr::CsrGraph{}, 4, 1, 2);
  EXPECT_EQ(nf.pairs.size(), 1u);
}

}  // namespace
}  // namespace pcq::algos
