#!/bin/sh
# End-to-end test of the pcq CLI: compress -> stats -> query -> convert ->
# temporal round trip, plus (when given) a pcq_serve smoke run and an
# admin-endpoint scrape via pcq_top.
# Usage: cli_test.sh <pcq-binary> [pcq_serve-binary] [pcq_top-binary]
set -e
PCQ="$1"
SERVE="$2"
TOP="$3"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

printf "# comment line\n0 1\n1 2\n2 0\n0 2\n" > "$TMP/g.txt"

"$PCQ" compress "$TMP/g.txt" --out "$TMP/g.csr" | grep -q "compressed 3 nodes / 4 edges"
"$PCQ" stats "$TMP/g.csr" | grep -q "edges        4"
"$PCQ" query "$TMP/g.csr" --edge 0,1 | grep -q "present"
"$PCQ" query "$TMP/g.csr" --edge 1,0 | grep -q "absent"
"$PCQ" query "$TMP/g.csr" --node 0 | grep -q "neighbors(0) \[2\]: 1 2"

# Binary conversion must feed the same pipeline bit-for-bit.
"$PCQ" convert "$TMP/g.txt" --out "$TMP/g.bin"
"$PCQ" compress "$TMP/g.bin" --out "$TMP/g2.csr" > /dev/null
cmp "$TMP/g.csr" "$TMP/g2.csr"

# Relabeled compression still answers (ids are renumbered, so only check
# that it runs and reports the same counts).
"$PCQ" compress "$TMP/g.txt" --out "$TMP/g3.csr" --relabel | grep -q "compressed 3 nodes / 4 edges"

# Temporal: edge (0,1) toggles on at frame 0, off at frame 2.
printf "0 1 0\n1 2 1\n0 1 2\n" > "$TMP/t.txt"
"$PCQ" tcompress "$TMP/t.txt" --out "$TMP/t.tcsr" | grep -q "3 events over 3 frames"
"$PCQ" tquery "$TMP/t.tcsr" --edge 0,1 --frame 1 | grep -q "frame 1: active"
"$PCQ" tquery "$TMP/t.tcsr" --edge 0,1 --frame 2 | grep -q "frame 2: inactive"
"$PCQ" tquery "$TMP/t.tcsr" --node 1 --frame 1 | grep -q "neighbors(1) at frame 1 \[1\]: 2"
"$PCQ" tquery "$TMP/t.tcsr" --snapshot --frame 1 --threads 4 \
    --trace "$TMP/snap.json" | grep -q "snapshot at frame 1"
grep -q "tcsr.differential_scan" "$TMP/snap.json"

"$PCQ" compare "$TMP/g.txt" | grep -q "bit-packed CSR"
"$PCQ" tcompare "$TMP/t.txt" | grep -q "differential TCSR"

# Structural validation: freshly written artifacts must pass the pcq::check
# invariant scan.
"$PCQ" check "$TMP/g.csr" | grep -q "check OK"
"$PCQ" check "$TMP/t.tcsr" --threads 2 | grep -q "check OK"

# Zero-copy mapped serving: --mmap must answer every query identically to
# the buffered path, and check must pass over the mapped views.
"$PCQ" query "$TMP/g.csr" --edge 0,1 --mmap | grep -q "present"
"$PCQ" query "$TMP/g.csr" --node 0 --mmap | grep -q "neighbors(0) \[2\]: 1 2"
"$PCQ" check "$TMP/g.csr" --mmap | grep -q "check OK"
"$PCQ" check "$TMP/g.csr" --mmap | grep -q "(mapped)"
"$PCQ" tquery "$TMP/t.tcsr" --edge 0,1 --frame 1 --mmap | grep -q "frame 1: active"
"$PCQ" tquery "$TMP/t.tcsr" --node 1 --frame 1 --mmap | grep -q "neighbors(1) at frame 1 \[1\]: 2"
"$PCQ" check "$TMP/t.tcsr" --mmap | grep -q "check OK"

# --- Negative cases: corrupt inputs are refused with a typed IoError -------
# (exit 3, "error: ..." on stderr), never a crash/abort. `set -e` is
# suspended around each expected failure via the if-negation idiom.
expect_ioerror() {
  # expect_ioerror <description> <cmd...>: must exit 3 and print "error:".
  desc="$1"; shift
  if "$@" > "$TMP/neg.out" 2>&1; then
    echo "NEGATIVE CASE FAILED ($desc): command succeeded"; exit 1
  else
    status=$?
    if [ "$status" -ne 3 ]; then
      echo "NEGATIVE CASE FAILED ($desc): exit $status, want 3 (IoError)"
      cat "$TMP/neg.out"; exit 1
    fi
  fi
  grep -q "error:" "$TMP/neg.out" || {
    echo "NEGATIVE CASE FAILED ($desc): no error message"; exit 1; }
}

# Missing inputs.
expect_ioerror "compress missing file"  "$PCQ" compress "$TMP/nope.txt"
expect_ioerror "tcompress missing file" "$PCQ" tcompress "$TMP/nope.txt"
expect_ioerror "stats missing csr"      "$PCQ" stats "$TMP/nope.csr"

# Garbage bytes where a compressed artifact is expected.
printf "garbage, not a csr" > "$TMP/bad.csr"
expect_ioerror "query garbage csr"  "$PCQ" query "$TMP/bad.csr" --node 0
expect_ioerror "stats garbage csr"  "$PCQ" stats "$TMP/bad.csr"
expect_ioerror "check garbage csr"  "$PCQ" check "$TMP/bad.csr"
printf "garbage, not a tcsr" > "$TMP/bad.tcsr"
expect_ioerror "tquery garbage tcsr" "$PCQ" tquery "$TMP/bad.tcsr" --edge 0,1 --frame 0
expect_ioerror "check garbage tcsr"  "$PCQ" check "$TMP/bad.tcsr"

# Truncated artifacts: mid-header and mid-payload cuts of real files.
head -c 30 "$TMP/g.csr" > "$TMP/trunc-header.csr"
expect_ioerror "query truncated header" "$PCQ" query "$TMP/trunc-header.csr" --node 0
head -c 60 "$TMP/g.csr" > "$TMP/trunc-payload.csr"
expect_ioerror "query truncated payload" "$PCQ" query "$TMP/trunc-payload.csr" --node 0
head -c 40 "$TMP/t.tcsr" > "$TMP/trunc.tcsr"
expect_ioerror "tquery truncated tcsr" "$PCQ" tquery "$TMP/trunc.tcsr" --edge 0,1 --frame 0

# The mapped load path must refuse the same corrupted fixtures with the
# same typed IoError (exit 3) — a bad file is rejected identically whether
# it is read or mapped.
expect_ioerror "mmap query garbage csr"      "$PCQ" query "$TMP/bad.csr" --node 0 --mmap
expect_ioerror "mmap check garbage csr"      "$PCQ" check "$TMP/bad.csr" --mmap
expect_ioerror "mmap query truncated header" "$PCQ" query "$TMP/trunc-header.csr" --node 0 --mmap
expect_ioerror "mmap query truncated payload" "$PCQ" query "$TMP/trunc-payload.csr" --node 0 --mmap
expect_ioerror "mmap tquery garbage tcsr"    "$PCQ" tquery "$TMP/bad.tcsr" --edge 0,1 --frame 0 --mmap
expect_ioerror "mmap check garbage tcsr"     "$PCQ" check "$TMP/bad.tcsr" --mmap
expect_ioerror "mmap tquery truncated tcsr"  "$PCQ" tquery "$TMP/trunc.tcsr" --edge 0,1 --frame 0 --mmap

# Binary edge lists: bad magic and a truncated payload (the header's edge
# count promises more than the file holds).
printf "NOTMAGIC" > "$TMP/bad.bin"
expect_ioerror "compress bad bin magic" "$PCQ" compress "$TMP/bad.bin" --out "$TMP/x.csr"
head -c 20 "$TMP/g.bin" > "$TMP/trunc.bin"
expect_ioerror "compress truncated bin" "$PCQ" compress "$TMP/trunc.bin" --out "$TMP/x.csr"

# Observability: --trace writes non-empty, valid Chrome trace JSON and
# --stats prints the per-phase table. Oversubscribed --threads forces the
# multi-chunk (instrumented) code paths even on a single-core host.
"$PCQ" compress "$TMP/g.txt" --out "$TMP/g4.csr" --threads 4 \
    --trace "$TMP/build.json" --stats > "$TMP/compress.out"
grep -q "wrote trace" "$TMP/compress.out"
grep -q "spans on" "$TMP/compress.out"
test -s "$TMP/build.json"
grep -q '"traceEvents"' "$TMP/build.json"
# Schema check with whatever JSON validator the host has; fall back to the
# byte checks above when neither python3 nor jq is available.
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$TMP/build.json" > /dev/null
elif command -v jq > /dev/null 2>&1; then
  jq . "$TMP/build.json" > /dev/null
fi

# Serving layer: line protocol, temporal queries, demo workload, and the
# typed-IoError path for a corrupt artifact (refused, not aborted).
if [ -n "$SERVE" ]; then
  printf "degree 0\ne 0 1\ne 1 0\nn 0\nquit\n" | "$SERVE" "$TMP/g.csr" > "$TMP/serve.out"
  grep -q "degree(0) = 2" "$TMP/serve.out"
  grep -q "edge (0, 1): present" "$TMP/serve.out"
  grep -q "edge (1, 0): absent" "$TMP/serve.out"
  grep -q "neighbors(0) \[2\]: 1 2" "$TMP/serve.out"
  printf "te 0 1 1\nte 0 1 2\nquit\n" | "$SERVE" "$TMP/g.csr" --tcsr "$TMP/t.tcsr" > "$TMP/serve_t.out"
  grep -q "edge (0, 1): present" "$TMP/serve_t.out"
  grep -q "edge (0, 1): absent" "$TMP/serve_t.out"
  "$SERVE" "$TMP/g.csr" --demo 2000 --shards 2 | grep -q "demo done"
  # Mapped serving: same answers straight off the mapping, with warmup and
  # the pre-serve validation gate; a corrupt file is refused identically.
  printf "degree 0\nn 0\nquit\n" | "$SERVE" "$TMP/g.csr" --tcsr "$TMP/t.tcsr" \
      --mmap --warm --validate > "$TMP/serve_m.out"
  grep -q "loaded in .* (mapped)" "$TMP/serve_m.out"
  grep -q "warmed" "$TMP/serve_m.out"
  grep -q "validation passed" "$TMP/serve_m.out"
  grep -q "degree(0) = 2" "$TMP/serve_m.out"
  grep -q "neighbors(0) \[2\]: 1 2" "$TMP/serve_m.out"
  # STATS dumps the service snapshot plus the pcq::obs registry; TRACE
  # exports the span flight-recorder as Chrome trace JSON.
  printf "degree 0\nSTATS\nTRACE %s\nquit\n" "$TMP/serve_trace.json" \
      | "$SERVE" "$TMP/g.csr" > "$TMP/serve_s.out"
  grep -q -- "-- registry --" "$TMP/serve_s.out"
  grep -q "svc.flush" "$TMP/serve_s.out"
  grep -q "wrote trace" "$TMP/serve_s.out"
  test -s "$TMP/serve_trace.json"
  grep -q '"traceEvents"' "$TMP/serve_trace.json"
  if command -v python3 > /dev/null 2>&1; then
    python3 -m json.tool "$TMP/serve_trace.json" > /dev/null
  fi
  printf "garbage" > "$TMP/bad.csr"
  if "$SERVE" "$TMP/bad.csr" < /dev/null > /dev/null 2>&1; then
    echo "corrupt csr was not refused"; exit 1
  fi
  if "$SERVE" "$TMP/bad.csr" --mmap < /dev/null > /dev/null 2>&1; then
    echo "corrupt csr was not refused under --mmap"; exit 1
  fi

  # TCP serving: --listen 0 binds an ephemeral port and prints it; the
  # --connect client drives the same line protocol over the binary frame
  # protocol; the shutdown control frame triggers a graceful drain (every
  # in-flight answer flushed, "drain complete" printed, exit 0).
  "$SERVE" "$TMP/g.csr" --tcsr "$TMP/t.tcsr" --listen 0 > "$TMP/listen.out" 2>&1 &
  LISTEN_PID=$!
  PORT=""
  i=0
  while [ $i -lt 50 ]; do
    PORT=$(sed -n 's/^listening on 127.0.0.1:\([0-9][0-9]*\)$/\1/p' "$TMP/listen.out")
    [ -n "$PORT" ] && break
    i=$((i + 1)); sleep 0.1
  done
  [ -n "$PORT" ] || { echo "pcq_serve --listen never printed its port"; exit 1; }
  printf "degree 0\ne 0 1\ne 1 0\nn 0\nte 0 1 1\nte 0 1 2\nshutdown\n" \
      | "$SERVE" --connect "127.0.0.1:$PORT" > "$TMP/connect.out"
  grep -q "degree(0) = 2" "$TMP/connect.out"
  grep -q "edge (0, 1): present" "$TMP/connect.out"
  grep -q "edge (1, 0): absent" "$TMP/connect.out"
  grep -q "neighbors(0) \[2\]: 1 2" "$TMP/connect.out"
  grep -q "shutdown acknowledged" "$TMP/connect.out"
  wait "$LISTEN_PID" || { echo "pcq_serve --listen exited nonzero"; exit 1; }
  grep -q "drain complete" "$TMP/listen.out"

  # Admin telemetry plane: a second --listen run with --admin 0 prints the
  # admin port; pcq_top --scrape drives every route. --slow-us 1 plus an
  # injected kernel delay guarantees the slow-query log fills, and the
  # reporter writes a JSONL series.
  if [ -n "$TOP" ]; then
    "$SERVE" "$TMP/g.csr" --listen 0 --admin 0 --slow-us 1 \
        --inject-delay-us 500 --report "$TMP/report.jsonl" \
        --report-interval-ms 100 > "$TMP/admin.out" 2>&1 &
    LISTEN_PID=$!
    PORT=""; ADMIN_PORT=""
    i=0
    while [ $i -lt 50 ]; do
      PORT=$(sed -n 's/^listening on 127.0.0.1:\([0-9][0-9]*\)$/\1/p' "$TMP/admin.out")
      ADMIN_PORT=$(sed -n 's/^admin on 127.0.0.1:\([0-9][0-9]*\)$/\1/p' "$TMP/admin.out")
      [ -n "$PORT" ] && [ -n "$ADMIN_PORT" ] && break
      i=$((i + 1)); sleep 0.1
    done
    [ -n "$ADMIN_PORT" ] || { echo "pcq_serve --admin never printed its port"; exit 1; }
    "$TOP" "127.0.0.1:$ADMIN_PORT" --scrape /healthz | grep -q "ok"
    printf "degree 0\ne 0 1\nn 0\nquit\n" | "$SERVE" --connect "127.0.0.1:$PORT" > /dev/null
    "$TOP" "127.0.0.1:$ADMIN_PORT" --scrape /metrics > "$TMP/metrics.txt"
    grep -q "# TYPE svc_flush_size counter" "$TMP/metrics.txt"
    "$TOP" "127.0.0.1:$ADMIN_PORT" --scrape /metrics.json > "$TMP/metrics.json"
    grep -q '"completed":3' "$TMP/metrics.json"
    "$TOP" "127.0.0.1:$ADMIN_PORT" --scrape /slow > "$TMP/slow.json"
    grep -q '"trace_id":' "$TMP/slow.json"
    "$TOP" "127.0.0.1:$ADMIN_PORT" --scrape /trace > "$TMP/admin_trace.json"
    grep -q '"traceEvents"' "$TMP/admin_trace.json"
    "$TOP" "127.0.0.1:$ADMIN_PORT" --once | grep -q "pcq_top"
    if command -v python3 > /dev/null 2>&1; then
      python3 -m json.tool "$TMP/metrics.json" > /dev/null
      python3 -m json.tool "$TMP/slow.json" > /dev/null
      python3 -m json.tool "$TMP/admin_trace.json" > /dev/null
    fi
    printf "shutdown\n" | "$SERVE" --connect "127.0.0.1:$PORT" > /dev/null
    wait "$LISTEN_PID" || { echo "admin --listen exited nonzero"; exit 1; }
    grep -q "drain complete" "$TMP/admin.out"
    test -s "$TMP/report.jsonl"
    if command -v python3 > /dev/null 2>&1; then
      python3 -c 'import json,sys
for line in open(sys.argv[1]):
    json.loads(line)' "$TMP/report.jsonl"
    fi
  fi

  # SIGINT takes the same graceful-drain path.
  "$SERVE" "$TMP/g.csr" --listen 0 > "$TMP/listen2.out" 2>&1 &
  LISTEN_PID=$!
  PORT=""
  i=0
  while [ $i -lt 50 ]; do
    PORT=$(sed -n 's/^listening on 127.0.0.1:\([0-9][0-9]*\)$/\1/p' "$TMP/listen2.out")
    [ -n "$PORT" ] && break
    i=$((i + 1)); sleep 0.1
  done
  [ -n "$PORT" ] || { echo "second --listen never printed its port"; exit 1; }
  printf "degree 1\nquit\n" | "$SERVE" --connect "127.0.0.1:$PORT" > /dev/null
  kill -INT "$LISTEN_PID"
  wait "$LISTEN_PID" || { echo "SIGINT drain exited nonzero"; exit 1; }
  grep -q "drain complete" "$TMP/listen2.out"
fi

echo CLI_OK
