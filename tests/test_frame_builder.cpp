#include "tcsr/frame_builder.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"

namespace pcq::tcsr {
namespace {

using graph::TemporalEdge;
using graph::TemporalEdgeList;
using graph::TimeFrame;
using graph::VertexId;

TEST(FrameOffsets, LocatesFrameSlices) {
  // Frames: t=0 has 2 events, t=1 has 0, t=2 has 3.
  TemporalEdgeList evs(
      {{0, 1, 0}, {2, 3, 0}, {0, 2, 2}, {1, 3, 2}, {4, 0, 2}});
  const auto offsets = frame_offsets(evs, 3, 4);
  EXPECT_EQ(offsets, (std::vector<std::uint64_t>{0, 2, 2, 5}));
}

TEST(FrameOffsets, ThreadCountInvariance) {
  const TemporalEdgeList evs = graph::evolving_graph(200, 10'000, 32, 3, 4);
  const auto ref = frame_offsets(evs, 32, 1);
  for (int p : {2, 4, 8, 64}) EXPECT_EQ(frame_offsets(evs, 32, p), ref);
}

TEST(BuildFrameCsrs, OneCsrPerFrame) {
  TemporalEdgeList evs({{0, 1, 0}, {1, 2, 1}, {2, 3, 3}});
  const auto frames = build_frame_csrs(evs, 4, 4, 2);
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0].num_edges(), 1u);
  EXPECT_TRUE(frames[0].has_edge(0, 1));
  EXPECT_EQ(frames[1].num_edges(), 1u);
  EXPECT_EQ(frames[2].num_edges(), 0u);  // empty frame
  EXPECT_EQ(frames[3].num_edges(), 1u);
}

TEST(BuildFrameCsrs, WithinFrameParityCancellation) {
  // (0,1) appears twice in frame 0 -> cancelled; three times in frame 1 ->
  // survives once.
  TemporalEdgeList evs({{0, 1, 0}, {0, 1, 0}, {0, 1, 1}, {0, 1, 1}, {0, 1, 1}});
  const auto frames = build_frame_csrs(evs, 2, 2, 4);
  EXPECT_EQ(frames[0].num_edges(), 0u);
  EXPECT_EQ(frames[1].num_edges(), 1u);
  EXPECT_TRUE(frames[1].has_edge(0, 1));
}

TEST(BuildFrameCsrs, AllNodesPresentInEveryFrameCsr) {
  TemporalEdgeList evs({{0, 1, 0}, {5, 2, 1}});
  const auto frames = build_frame_csrs(evs, 8, 2, 2);
  for (const auto& f : frames) EXPECT_EQ(f.num_nodes(), 8u);
}

TEST(BuildFrameCsrs, ThreadCountInvariance) {
  const TemporalEdgeList evs = graph::evolving_graph(100, 5000, 16, 7, 4);
  const auto ref = build_frame_csrs(evs, 100, 16, 1);
  for (int p : {2, 4, 8}) {
    const auto got = build_frame_csrs(evs, 100, 16, p);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t t = 0; t < ref.size(); ++t) {
      ASSERT_EQ(got[t].num_edges(), ref[t].num_edges()) << "t=" << t;
      EXPECT_TRUE(std::equal(got[t].offsets().begin(), got[t].offsets().end(),
                             ref[t].offsets().begin()));
      EXPECT_TRUE(std::equal(got[t].columns().begin(), got[t].columns().end(),
                             ref[t].columns().begin()));
    }
  }
}

TEST(BuildFrameCsrs, FrameSpanningManyChunks) {
  // One frame holds nearly all events: its slice spans every chunk, the
  // temporal analogue of the degree computation's long-run corner case.
  std::vector<TemporalEdge> evs;
  evs.push_back({0, 1, 0});
  for (VertexId i = 0; i < 1000; ++i) evs.push_back({i % 10, i / 10, 1});
  TemporalEdgeList list(std::move(evs));
  list.sort(4);
  const auto frames = build_frame_csrs(list, 100, 2, 8);
  EXPECT_EQ(frames[0].num_edges(), 1u);
  EXPECT_EQ(frames[1].num_edges(), 1000u);  // all pairs distinct, none cancel
}

}  // namespace
}  // namespace pcq::tcsr
