#include "csr/dynamic.hpp"

#include <gtest/gtest.h>

#include <set>

#include "csr/builder.hpp"
#include "csr/pcsr.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace pcq::csr {
namespace {

using graph::Edge;
using graph::EdgeList;
using graph::VertexId;

DynamicCsr make_dynamic(VertexId n, std::size_t m, std::uint64_t seed,
                        double rebuild_ratio = 0.25) {
  EdgeList g = graph::rmat(n, m, 0.57, 0.19, 0.19, seed, 4);
  g.sort(4);
  g.dedupe();
  return DynamicCsr(build_bitpacked_csr_from_sorted(g, n, 4), rebuild_ratio);
}

TEST(DynamicCsr, AddThenQuery) {
  DynamicCsr g = make_dynamic(64, 200, 1);
  // Find an absent edge, add it.
  VertexId u = 0, v = 0;
  pcq::util::SplitMix64 rng(1);
  do {
    u = static_cast<VertexId>(rng.next_below(64));
    v = static_cast<VertexId>(rng.next_below(64));
  } while (g.has_edge(u, v));
  const std::size_t before = g.num_edges();
  g.add_edge(u, v);
  EXPECT_TRUE(g.has_edge(u, v));
  EXPECT_EQ(g.num_edges(), before + 1);
  EXPECT_EQ(g.overlay_size(), 1u);
}

TEST(DynamicCsr, RemoveBaseEdge) {
  DynamicCsr g = make_dynamic(64, 200, 2);
  const auto row = g.base().neighbors(g.base().num_nodes() / 2);
  VertexId u = g.base().num_nodes() / 2;
  if (row.empty()) {
    u = 0;
    while (g.base().degree(u) == 0) ++u;
  }
  const VertexId v = g.base().neighbors(u).front();
  g.remove_edge(u, v);
  EXPECT_FALSE(g.has_edge(u, v));
  // Re-adding cancels the pending removal entirely.
  g.add_edge(u, v);
  EXPECT_TRUE(g.has_edge(u, v));
  EXPECT_EQ(g.overlay_size(), 0u);
}

TEST(DynamicCsr, DoubleAddIsNoop) {
  DynamicCsr g = make_dynamic(64, 200, 3);
  VertexId u = 0;
  while (g.base().degree(u) == 0) ++u;
  const VertexId v = g.base().neighbors(u).front();
  g.add_edge(u, v);  // already present
  EXPECT_EQ(g.overlay_size(), 0u);
  g.remove_edge(u, v);
  g.remove_edge(u, v);  // already removed
  EXPECT_EQ(g.overlay_size(), 1u);
}

TEST(DynamicCsr, NeighborsMergeOverlay) {
  DynamicCsr g = make_dynamic(64, 150, 4);
  VertexId u = 0;
  while (g.base().degree(u) < 2) ++u;
  auto base_row = g.base().neighbors(u);
  // Remove the first base neighbour, add two new ones.
  const VertexId removed = base_row.front();
  VertexId added_low = 0, added_high = 63;
  while (g.has_edge(u, added_low) || added_low == u) ++added_low;
  while (g.has_edge(u, added_high) || added_high == u) --added_high;
  g.remove_edge(u, removed);
  g.add_edge(u, added_low);
  g.add_edge(u, added_high);

  const auto row = g.neighbors(u);
  EXPECT_TRUE(std::is_sorted(row.begin(), row.end()));
  EXPECT_EQ(std::count(row.begin(), row.end(), removed), 0);
  EXPECT_EQ(std::count(row.begin(), row.end(), added_low), 1);
  EXPECT_EQ(std::count(row.begin(), row.end(), added_high), 1);
  EXPECT_EQ(row.size(), base_row.size() - 1 + 2);
}

TEST(DynamicCsr, RebuildCompactsOverlay) {
  DynamicCsr g = make_dynamic(128, 500, 5);
  pcq::util::SplitMix64 rng(5);
  std::set<std::pair<VertexId, VertexId>> added;
  for (int i = 0; i < 50; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(128));
    const auto v = static_cast<VertexId>(rng.next_below(128));
    if (!g.has_edge(u, v)) {
      g.add_edge(u, v);
      added.insert({u, v});
    }
  }
  const std::size_t edges_before = g.num_edges();
  g.rebuild(4);
  EXPECT_EQ(g.overlay_size(), 0u);
  EXPECT_EQ(g.num_edges(), edges_before);
  for (const auto& [u, v] : added) EXPECT_TRUE(g.has_edge(u, v));
}

TEST(DynamicCsr, NeedsRebuildThreshold) {
  DynamicCsr g = make_dynamic(64, 100, 6, /*rebuild_ratio=*/0.05);
  pcq::util::SplitMix64 rng(7);
  while (!g.needs_rebuild()) {
    const auto u = static_cast<VertexId>(rng.next_below(64));
    const auto v = static_cast<VertexId>(rng.next_below(64));
    if (!g.has_edge(u, v) && u != v) g.add_edge(u, v);
  }
  EXPECT_GT(g.overlay_size(), 0u);
  g.rebuild(4);
  EXPECT_FALSE(g.needs_rebuild());
}

TEST(DynamicCsr, MatchesSetOracleUnderChurn) {
  DynamicCsr g = make_dynamic(48, 150, 8);
  std::set<std::pair<VertexId, VertexId>> oracle;
  const CsrGraph base = g.base().to_csr();
  for (VertexId u = 0; u < 48; ++u)
    for (VertexId v : base.neighbors(u)) oracle.insert({u, v});

  pcq::util::SplitMix64 rng(9);
  for (int step = 0; step < 500; ++step) {
    const auto u = static_cast<VertexId>(rng.next_below(48));
    const auto v = static_cast<VertexId>(rng.next_below(48));
    if (rng.next_bool(0.5)) {
      g.add_edge(u, v);
      oracle.insert({u, v});
    } else {
      g.remove_edge(u, v);
      oracle.erase({u, v});
    }
    if (step % 100 == 99) g.rebuild(4);
  }
  for (VertexId u = 0; u < 48; ++u) {
    const auto row = g.neighbors(u);
    std::set<VertexId> expect;
    for (const auto& [a, b] : oracle)
      if (a == u) expect.insert(b);
    EXPECT_EQ(std::set<VertexId>(row.begin(), row.end()), expect) << "u=" << u;
  }
}

TEST(DynamicCsr, AgreesWithPmaUnderIdenticalOpStream) {
  // The two dynamic structures (overlay vs packed-memory-array) must stay
  // in lockstep across a long mixed add/remove/query stream.
  graph::EdgeList base = graph::rmat(96, 400, 0.57, 0.19, 0.19, 21, 4);
  base.sort(4);
  base.dedupe();
  DynamicCsr overlay(build_bitpacked_csr_from_sorted(base, 96, 4));
  PmaCsr pma(base);

  pcq::util::SplitMix64 rng(23);
  for (int step = 0; step < 5000; ++step) {
    const auto u = static_cast<VertexId>(rng.next_below(96));
    const auto v = static_cast<VertexId>(rng.next_below(96));
    if (rng.next_bool(0.6)) {
      overlay.add_edge(u, v);
      pma.add_edge(u, v);
    } else {
      overlay.remove_edge(u, v);
      pma.remove_edge(u, v);
    }
    if (step % 500 == 499) {
      ASSERT_EQ(overlay.num_edges(), pma.num_edges()) << step;
      for (VertexId q = 0; q < 96; q += 7)
        ASSERT_EQ(overlay.neighbors(q), pma.neighbors(q))
            << "step " << step << " q=" << q;
    }
    if (step == 2500) overlay.rebuild(4);  // compaction must not diverge
  }
  ASSERT_TRUE(pma.check_invariants());
  for (VertexId q = 0; q < 96; ++q)
    EXPECT_EQ(overlay.neighbors(q), pma.neighbors(q)) << q;
}

TEST(DynamicCsrDeathTest, OutOfRangeNodeAborts) {
  DynamicCsr g = make_dynamic(16, 50, 10);
  EXPECT_DEATH(g.add_edge(99, 0), "out of range");
}

}  // namespace
}  // namespace pcq::csr
