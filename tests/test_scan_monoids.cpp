// Non-commutative and exotic-monoid scans.
//
// The chunked prefix sum (Algorithm 1) and the Blelloch scan require only
// *associativity* — the TCSR snapshot reconstruction relies on that (its
// symmetric-difference monoid happens to be commutative, but nothing in
// the schedule may assume it). Every other scan test in the suite uses
// commutative operations, so an accidentally transposed combine
// (op(b, a) instead of op(a, b)) would slip through. These tests close
// that hole with string concatenation (free monoid, maximally
// non-commutative) and 2x2 matrix products.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "par/prefix_sum.hpp"
#include "util/rng.hpp"

namespace pcq::par {
namespace {

TEST(ScanMonoids, StringConcatenationChunked) {
  // Inclusive scan of single-char strings must spell out the prefixes of
  // the original sequence in order.
  const std::string alphabet = "abcdefghijklmnopqrstuvwxyz";
  for (int threads : {1, 2, 3, 4, 8, 16}) {
    std::vector<std::string> v;
    for (char c : alphabet) v.emplace_back(1, c);
    chunked_inclusive_scan(std::span<std::string>(v), threads,
                           [](const std::string& a, const std::string& b) {
                             return a + b;
                           });
    for (std::size_t i = 0; i < v.size(); ++i)
      ASSERT_EQ(v[i], alphabet.substr(0, i + 1)) << "threads=" << threads;
  }
}

TEST(ScanMonoids, StringConcatenationBlelloch) {
  const std::string alphabet = "abcdefghijklmnop";  // padding uses "" = T{}
  std::vector<std::string> v;
  for (char c : alphabet) v.emplace_back(1, c);
  blelloch_inclusive_scan(std::span<std::string>(v), 4,
                          [](const std::string& a, const std::string& b) {
                            return a + b;
                          });
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_EQ(v[i], alphabet.substr(0, i + 1));
}

/// 2x2 integer matrix; default-constructed is the identity (required by
/// the Blelloch padding contract).
struct Mat2 {
  std::array<std::int64_t, 4> m{1, 0, 0, 1};
  friend Mat2 operator*(const Mat2& a, const Mat2& b) {
    return Mat2{{a.m[0] * b.m[0] + a.m[1] * b.m[2],
                 a.m[0] * b.m[1] + a.m[1] * b.m[3],
                 a.m[2] * b.m[0] + a.m[3] * b.m[2],
                 a.m[2] * b.m[1] + a.m[3] * b.m[3]}};
  }
  friend bool operator==(const Mat2&, const Mat2&) = default;
};

TEST(ScanMonoids, MatrixProductsChunkedMatchesSequential) {
  pcq::util::SplitMix64 rng(7);
  std::vector<Mat2> input(257);
  for (auto& x : input)
    x = Mat2{{static_cast<std::int64_t>(rng.next_below(3)),
              static_cast<std::int64_t>(rng.next_below(3)),
              static_cast<std::int64_t>(rng.next_below(3)),
              static_cast<std::int64_t>(rng.next_below(3))}};

  std::vector<Mat2> expected = input;
  for (std::size_t i = 1; i < expected.size(); ++i)
    expected[i] = expected[i - 1] * expected[i];

  auto mul = [](const Mat2& a, const Mat2& b) { return a * b; };
  for (int threads : {2, 4, 8, 64}) {
    std::vector<Mat2> v = input;
    chunked_inclusive_scan(std::span<Mat2>(v), threads, mul);
    ASSERT_EQ(v, expected) << "threads=" << threads;
  }
}

TEST(ScanMonoids, MatrixProductsBlelloch) {
  // Fibonacci via Q-matrix powers: the scan of n copies of Q yields
  // Q^(i+1), whose top-left entry is F(i+2).
  const Mat2 q{{1, 1, 1, 0}};
  std::vector<Mat2> v(12, q);
  blelloch_inclusive_scan(std::span<Mat2>(v), 4,
                          [](const Mat2& a, const Mat2& b) { return a * b; });
  const std::int64_t fib[] = {1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233};
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_EQ(v[i].m[0], fib[i + 1]) << i;
}

TEST(ScanMonoids, SingleElementAndEmpty) {
  std::vector<std::string> one{"x"};
  chunked_inclusive_scan(std::span<std::string>(one), 8,
                         [](const std::string& a, const std::string& b) {
                           return a + b;
                         });
  EXPECT_EQ(one[0], "x");
  std::vector<std::string> none;
  chunked_inclusive_scan(std::span<std::string>(none), 8,
                         [](const std::string& a, const std::string& b) {
                           return a + b;
                         });
  EXPECT_TRUE(none.empty());
}

}  // namespace
}  // namespace pcq::par
