#include "util/format.hpp"

#include <gtest/gtest.h>

namespace pcq::util {
namespace {

TEST(Format, WithCommasSmall) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(7), "7");
  EXPECT_EQ(with_commas(999), "999");
}

TEST(Format, WithCommasGrouping) {
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(68993773), "68,993,773");   // LiveJournal edge count
  EXPECT_EQ(with_commas(4847571), "4,847,571");     // LiveJournal node count
  EXPECT_EQ(with_commas(117185083), "117,185,083"); // Orkut edge count
}

TEST(Format, WithCommasBoundaries) {
  EXPECT_EQ(with_commas(100), "100");
  EXPECT_EQ(with_commas(1001), "1,001");
  EXPECT_EQ(with_commas(10000), "10,000");
  EXPECT_EQ(with_commas(100000), "100,000");
  EXPECT_EQ(with_commas(1000000), "1,000,000");
}

TEST(Format, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(3.0, 0), "3");
  EXPECT_EQ(fixed(-1.5, 1), "-1.5");
  EXPECT_EQ(fixed(0.005, 2), "0.01");
}

TEST(Format, HumanBytesUnits) {
  EXPECT_EQ(human_bytes(0), "0 B");
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(1024), "1.00 KB");
  EXPECT_EQ(human_bytes(1536), "1.50 KB");
  EXPECT_EQ(human_bytes(1024ull * 1024), "1.00 MB");
  EXPECT_EQ(human_bytes(1024ull * 1024 * 1024), "1.00 GB");
}

TEST(Format, HumanBytesPaperScale) {
  // Table II reports LiveJournal's edge list as ~1.1 GB: 68993773 edges at
  // 16 text bytes each is the same magnitude; our 8-byte binary pairs give
  // ~526 MB. Just pin the unit selection here.
  EXPECT_TRUE(human_bytes(68993773ull * 8).ends_with("MB"));
  EXPECT_TRUE(human_bytes(68993773ull * 16).ends_with("GB"));
}

TEST(Format, HumanSeconds) {
  EXPECT_EQ(human_seconds(1.5), "1.50 s");
  EXPECT_EQ(human_seconds(0.16476), "164.76 ms");  // Table II LiveJournal p=1
  EXPECT_EQ(human_seconds(0.000577), "577.00 us"); // WebNotreDame p=16
  EXPECT_TRUE(human_seconds(3e-9).ends_with("ns"));
}

TEST(Format, Percent) {
  EXPECT_EQ(percent(0.6483), "64.83");  // Table II speed-up formatting
  EXPECT_EQ(percent(0.0), "0.00");
  EXPECT_EQ(percent(1.0), "100.00");
}

}  // namespace
}  // namespace pcq::util
