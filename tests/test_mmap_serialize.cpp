// Differential suite for the zero-copy mmap load path: whatever the
// buffered loader answers, the mapped view must answer byte for byte — on
// randomized graphs and on the layout's edge cases (empty graph, single
// vertex, zero-edge frames, width-64 columns). Plus the lifetime/safety
// contract: borrowed views refuse short spans, MappedFile turns every
// malformed file into a typed IoError, and a v1 file falls back to the
// buffered loader instead of being misparsed.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "bits/packed_array.hpp"
#include "check/validate.hpp"
#include "csr/builder.hpp"
#include "csr/serialize.hpp"
#include "graph/generators.hpp"
#include "io/mapped_file.hpp"
#include "tcsr/serialize.hpp"
#include "tcsr/tcsr.hpp"
#include "util/io_error.hpp"

namespace pcq {
namespace {

using graph::TimeFrame;
using graph::VertexId;

class MmapSerializeTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pcq_mmap_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) { return (dir_ / name).string(); }

  /// Overwrites one byte at `at` (corruption injection).
  void poke(const std::string& file, std::size_t at, unsigned char value) {
    std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekp(static_cast<std::streamoff>(at));
    f.write(reinterpret_cast<const char*>(&value), 1);
  }

  /// Truncates `file` to its first `keep` bytes.
  void truncate(const std::string& file, std::size_t keep) {
    std::filesystem::resize_file(file, keep);
  }

  std::filesystem::path dir_;
};

csr::BitPackedCsr sample_csr(std::uint64_t seed) {
  graph::EdgeList g = graph::rmat(1 << 10, 20'000, 0.57, 0.19, 0.19, seed, 4);
  g.sort(4);
  return csr::build_bitpacked_csr_from_sorted(g, 1 << 10, 4);
}

void expect_same_answers(const csr::BitPackedCsr& a,
                         const csr::BitPackedCsr& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(a.packed_offsets() == b.packed_offsets());
  EXPECT_TRUE(a.packed_columns() == b.packed_columns());
  for (VertexId u = 0; u < a.num_nodes(); ++u) {
    ASSERT_EQ(a.degree(u), b.degree(u)) << "u=" << u;
    ASSERT_EQ(a.neighbors(u), b.neighbors(u)) << "u=" << u;
  }
  for (VertexId u = 0; u < a.num_nodes(); u += 13)
    for (VertexId v = 0; v < a.num_nodes(); v += 29)
      ASSERT_EQ(a.has_edge(u, v), b.has_edge(u, v)) << u << "," << v;
}

TEST_F(MmapSerializeTest, CsrBufferedAndMappedAgreeOnRandomGraphs) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    const csr::BitPackedCsr original = sample_csr(seed);
    save_bitpacked_csr(original, path("g.csr"));
    const csr::BitPackedCsr buffered = csr::load_bitpacked_csr(path("g.csr"));
    const csr::MappedCsr mapped = csr::map_bitpacked_csr(path("g.csr"));
    if (io::MappedFile::supported()) {
      EXPECT_TRUE(mapped.mapped);
    }
    expect_same_answers(buffered, mapped.csr);
    expect_same_answers(original, mapped.csr);
  }
}

TEST_F(MmapSerializeTest, CsrEmptyGraphMaps) {
  const auto empty = csr::build_csr_from_sorted(graph::EdgeList{}, 8, 2);
  const auto packed = csr::BitPackedCsr::from_csr(empty, 2);
  save_bitpacked_csr(packed, path("empty.csr"));
  const csr::MappedCsr mapped = csr::map_bitpacked_csr(path("empty.csr"));
  EXPECT_EQ(mapped.csr.num_nodes(), 8u);
  EXPECT_EQ(mapped.csr.num_edges(), 0u);
  EXPECT_TRUE(mapped.csr.neighbors(0).empty());
}

TEST_F(MmapSerializeTest, CsrSingleVertexMaps) {
  graph::EdgeList g;
  g.push_back({0, 0});  // one self-loop on the only vertex
  g.sort(1);
  const auto packed = csr::build_bitpacked_csr_from_sorted(g, 1, 1);
  save_bitpacked_csr(packed, path("one.csr"));
  const csr::MappedCsr mapped = csr::map_bitpacked_csr(path("one.csr"));
  expect_same_answers(packed, mapped.csr);
}

TEST_F(MmapSerializeTest, CsrWidth64ColumnsMap) {
  // Maximum-width packed entries exercise the codec's word-crossing path
  // and the view geometry at its extreme (one word per element).
  const std::vector<std::uint64_t> offs = {0, 2, 3};
  const std::vector<std::uint64_t> cols = {0, 1, 1};
  const auto packed = csr::BitPackedCsr::from_parts(
      2, 3, bits::FixedWidthArray::pack_with_width(offs, 64, 1),
      bits::FixedWidthArray::pack_with_width(cols, 64, 1));
  save_bitpacked_csr(packed, path("w64.csr"));
  const csr::BitPackedCsr buffered = csr::load_bitpacked_csr(path("w64.csr"));
  const csr::MappedCsr mapped = csr::map_bitpacked_csr(path("w64.csr"));
  expect_same_answers(buffered, mapped.csr);
  EXPECT_EQ(mapped.csr.offset_bits(), 64u);
  EXPECT_EQ(mapped.csr.column_bits(), 64u);
}

TEST_F(MmapSerializeTest, ValidatorPassesOnMappedCsr) {
  save_bitpacked_csr(sample_csr(9), path("g.csr"));
  const csr::MappedCsr mapped = csr::map_bitpacked_csr(path("g.csr"));
  const auto report = check::validate_csr(mapped.csr);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(MmapSerializeTest, MappedCsrBorrowsFilePayload) {
  // The zero-copy claim, asserted directly: the packed arrays' word
  // storage must point INTO the mapping, not at heap copies.
  if (!io::MappedFile::supported()) GTEST_SKIP() << "no mmap on this host";
  save_bitpacked_csr(sample_csr(11), path("g.csr"));
  const csr::MappedCsr mapped = csr::map_bitpacked_csr(path("g.csr"));
  ASSERT_TRUE(mapped.mapped);
  const auto* base = reinterpret_cast<const unsigned char*>(mapped.file.data());
  const auto* end = base + mapped.file.size();
  const auto in_file = [&](std::span<const std::uint64_t> words) {
    const auto* p = reinterpret_cast<const unsigned char*>(words.data());
    return p >= base && p + words.size() * 8 <= end;
  };
  EXPECT_TRUE(in_file(mapped.csr.packed_offsets().bits().words()));
  EXPECT_TRUE(in_file(mapped.csr.packed_columns().bits().words()));
  EXPECT_FALSE(mapped.csr.packed_offsets().bits().owns_storage());
  EXPECT_FALSE(mapped.csr.packed_columns().bits().owns_storage());
}

TEST_F(MmapSerializeTest, V1CsrFallsBackToBufferedLoad) {
  // Hand-written v1 image (unaligned payloads): one vertex with a
  // self-loop. iA = [0, 1] at width 1 (bits 0b10), jA = [0] at width 1.
  struct V1Header {
    char magic[8];
    std::uint32_t canary, offset_width, column_width, reserved;
    std::uint64_t num_nodes, num_edges, offset_bits, column_bits;
  };
  static_assert(sizeof(V1Header) == 56);
  V1Header h{};
  std::memcpy(h.magic, "PCQCSRv1", 8);
  h.canary = 0x01020304;
  h.offset_width = h.column_width = 1;
  h.num_nodes = h.num_edges = 1;
  h.offset_bits = 2;
  h.column_bits = 1;
  const std::uint64_t ia_word = 0b10, ja_word = 0;
  {
    std::ofstream f(path("v1.csr"), std::ios::binary);
    f.write(reinterpret_cast<const char*>(&h), sizeof h);
    f.write(reinterpret_cast<const char*>(&ia_word), 8);
    f.write(reinterpret_cast<const char*>(&ja_word), 8);
  }
  const csr::MappedCsr loaded = csr::map_bitpacked_csr(path("v1.csr"));
  EXPECT_FALSE(loaded.mapped);  // legacy layout: buffered fallback
  EXPECT_EQ(loaded.csr.num_nodes(), 1u);
  EXPECT_EQ(loaded.csr.degree(0), 1u);
  EXPECT_TRUE(loaded.csr.has_edge(0, 0));
  // The in-memory mapped parser must refuse the same image outright.
  std::vector<std::uint64_t> raw(9);
  std::memcpy(raw.data(), &h, sizeof h);
  raw[7] = ia_word;
  raw[8] = ja_word;
  EXPECT_THROW(csr::map_bitpacked_csr_bytes(
                   std::as_bytes(std::span(raw)), "v1"),
               IoError);
}

// ---- TCSR ----

tcsr::DifferentialTcsr sample_tcsr(std::uint64_t seed) {
  const auto events = graph::evolving_graph(100, 5000, 12, seed, 4);
  return tcsr::DifferentialTcsr::build(events, 100, 12, 4);
}

void expect_same_history(const tcsr::DifferentialTcsr& a,
                         const tcsr::DifferentialTcsr& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_frames(), b.num_frames());
  for (TimeFrame t = 0; t < a.num_frames(); ++t) {
    EXPECT_TRUE(a.delta(t).packed_offsets() == b.delta(t).packed_offsets())
        << "t=" << t;
    EXPECT_TRUE(a.delta(t).packed_columns() == b.delta(t).packed_columns())
        << "t=" << t;
    for (VertexId u = 0; u < a.num_nodes(); u += 17)
      ASSERT_EQ(a.neighbors_at(u, t), b.neighbors_at(u, t))
          << "u=" << u << " t=" << t;
  }
  for (VertexId u = 0; u < a.num_nodes(); u += 13)
    for (VertexId v = 0; v < a.num_nodes(); v += 29)
      ASSERT_EQ(a.edge_active(u, v, a.num_frames() - 1),
                b.edge_active(u, v, b.num_frames() - 1));
}

TEST_F(MmapSerializeTest, TcsrBufferedAndMappedAgreeOnRandomHistories) {
  for (std::uint64_t seed : {2u, 23u}) {
    const auto original = sample_tcsr(seed);
    save_tcsr(original, path("h.tcsr"));
    const auto buffered = tcsr::load_tcsr(path("h.tcsr"));
    const tcsr::MappedTcsr mapped = tcsr::map_tcsr(path("h.tcsr"));
    if (io::MappedFile::supported()) {
      EXPECT_TRUE(mapped.mapped);
    }
    expect_same_history(buffered, mapped.tcsr);
    expect_same_history(original, mapped.tcsr);
  }
}

TEST_F(MmapSerializeTest, TcsrZeroEdgeFramesMap) {
  // Events only at frames 0 and 4 of 6 — the middle frames carry empty
  // deltas, whose zero-length payloads still get aligned slots on disk.
  graph::TemporalEdgeList events;
  events.push_back({0, 1, 0});
  events.push_back({1, 2, 0});
  events.push_back({0, 1, 4});
  events.sort(1);
  const auto original = tcsr::DifferentialTcsr::build(events, 3, 6, 1);
  ASSERT_EQ(original.num_frames(), 6u);
  save_tcsr(original, path("sparse.tcsr"));
  const auto buffered = tcsr::load_tcsr(path("sparse.tcsr"));
  const tcsr::MappedTcsr mapped = tcsr::map_tcsr(path("sparse.tcsr"));
  expect_same_history(buffered, mapped.tcsr);
  EXPECT_TRUE(mapped.tcsr.edge_active(0, 1, 0));
  EXPECT_TRUE(mapped.tcsr.edge_active(0, 1, 3));   // still on
  EXPECT_FALSE(mapped.tcsr.edge_active(0, 1, 4));  // toggled off
}

TEST_F(MmapSerializeTest, ValidatorPassesOnMappedTcsr) {
  save_tcsr(sample_tcsr(5), path("h.tcsr"));
  const tcsr::MappedTcsr mapped = tcsr::map_tcsr(path("h.tcsr"));
  const auto report = check::validate_tcsr(mapped.tcsr);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(MmapSerializeTest, MappedTcsrBorrowsFilePayload) {
  if (!io::MappedFile::supported()) GTEST_SKIP() << "no mmap on this host";
  save_tcsr(sample_tcsr(8), path("h.tcsr"));
  const tcsr::MappedTcsr mapped = tcsr::map_tcsr(path("h.tcsr"));
  ASSERT_TRUE(mapped.mapped);
  const auto* base = reinterpret_cast<const unsigned char*>(mapped.file.data());
  const auto* end = base + mapped.file.size();
  for (TimeFrame t = 0; t < mapped.tcsr.num_frames(); ++t) {
    const auto words = mapped.tcsr.delta(t).packed_offsets().bits().words();
    const auto* p = reinterpret_cast<const unsigned char*>(words.data());
    EXPECT_TRUE(p >= base && p + words.size() * 8 <= end) << "t=" << t;
    EXPECT_FALSE(mapped.tcsr.delta(t).packed_columns().bits().owns_storage());
  }
}

// ---- Lifetime / safety ----

TEST_F(MmapSerializeTest, BitVectorViewRefusesShortSpan) {
  const std::vector<std::uint64_t> words(2);
  EXPECT_DEATH((void)bits::BitVector::view(words, 129),
               "span shorter than nbits");
}

TEST_F(MmapSerializeTest, FixedWidthViewRefusesShortSpan) {
  const std::vector<std::uint64_t> words(1);
  EXPECT_DEATH((void)bits::FixedWidthArray::view(words, 100, 64),
               "span shorter than nbits");
}

TEST_F(MmapSerializeTest, BorrowedViewRefusesMutableAccess) {
  const std::vector<std::uint64_t> words(2, 0xffffffffffffffffull);
  bits::BitVector view = bits::BitVector::view(words, 128);
  EXPECT_DEATH((void)view.mutable_words(), "borrowed BitVector view");
}

TEST_F(MmapSerializeTest, TouchPagesChecksumIsThreadInvariant) {
  if (!io::MappedFile::supported()) {
    GTEST_SKIP() << "no mmap on this host";
  }
  save_bitpacked_csr(sample_csr(5), path("warm.csr"));
  const io::MappedFile file = io::MappedFile::open(path("warm.csr"));
  // The checksum sums the first byte of every 4 KiB page; recompute it
  // sequentially and require every thread count to agree with it.
  std::uint64_t expected = 0;
  const auto* bytes = reinterpret_cast<const unsigned char*>(file.data());
  for (std::size_t pg = 0; pg * 4096 < file.size(); ++pg)
    expected += bytes[pg * 4096];
  EXPECT_EQ(file.touch_pages(1), expected);
  EXPECT_EQ(file.touch_pages(4), expected);
  EXPECT_EQ(file.touch_pages(0), expected);  // 0 = all hardware threads
}

TEST_F(MmapSerializeTest, MappedFileMissingThrows) {
  EXPECT_THROW((void)io::MappedFile::open(path("nope.csr")), IoError);
  EXPECT_THROW((void)csr::map_bitpacked_csr(path("nope.csr")), IoError);
  EXPECT_THROW((void)tcsr::map_tcsr(path("nope.tcsr")), IoError);
}

TEST_F(MmapSerializeTest, MappedFileEmptyThrows) {
  { std::ofstream f(path("empty.bin"), std::ios::binary); }
  EXPECT_THROW((void)io::MappedFile::open(path("empty.bin")), IoError);
}

TEST_F(MmapSerializeTest, TruncatedMappedCsrThrows) {
  save_bitpacked_csr(sample_csr(3), path("g.csr"));
  const auto full = std::filesystem::file_size(path("g.csr"));
  truncate(path("g.csr"), static_cast<std::size_t>(full) - 16);
  EXPECT_THROW((void)csr::map_bitpacked_csr(path("g.csr")), IoError);
  truncate(path("g.csr"), 40);  // mid-header
  EXPECT_THROW((void)csr::map_bitpacked_csr(path("g.csr")), IoError);
}

TEST_F(MmapSerializeTest, BadCanaryMappedCsrThrows) {
  save_bitpacked_csr(sample_csr(3), path("g.csr"));
  poke(path("g.csr"), 8, 0xff);  // canary low byte
  EXPECT_THROW((void)csr::map_bitpacked_csr(path("g.csr")), IoError);
}

TEST_F(MmapSerializeTest, TruncatedMappedTcsrThrows) {
  save_tcsr(sample_tcsr(3), path("h.tcsr"));
  const auto full = std::filesystem::file_size(path("h.tcsr"));
  truncate(path("h.tcsr"), static_cast<std::size_t>(full) - 16);
  EXPECT_THROW((void)tcsr::map_tcsr(path("h.tcsr")), IoError);
}

TEST_F(MmapSerializeTest, BadCanaryMappedTcsrThrows) {
  save_tcsr(sample_tcsr(3), path("h.tcsr"));
  poke(path("h.tcsr"), 8, 0xff);
  EXPECT_THROW((void)tcsr::map_tcsr(path("h.tcsr")), IoError);
}

}  // namespace
}  // namespace pcq
