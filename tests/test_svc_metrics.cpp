#include "svc/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace pcq::svc {
namespace {

TEST(LogHistogram, BucketIndexIsMonotoneAndConsistentWithFloor) {
  int prev = -1;
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 5ull, 7ull, 8ull,
                          9ull, 15ull, 16ull, 100ull, 1000ull, 123456ull,
                          1ull << 30, 1ull << 45}) {
    const int idx = LogHistogram::bucket_index(v);
    EXPECT_GE(idx, prev) << v;
    prev = idx;
    // The bucket's floor must not exceed the value, and the next bucket's
    // floor must exceed it (within the histogram's range).
    EXPECT_LE(LogHistogram::bucket_floor(idx), v) << v;
    if (idx + 1 < LogHistogram::kBuckets)
      EXPECT_GT(LogHistogram::bucket_floor(idx + 1), v) << v;
  }
}

TEST(LogHistogram, SmallValuesAreExact) {
  LogHistogram h;
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 6u);
  EXPECT_DOUBLE_EQ(s.mean(), 1.5);
  // Sub-kSub values occupy their own buckets, so quantiles are exact-ish.
  EXPECT_LE(s.quantile(0.24), 1.0);
  EXPECT_GE(s.quantile(0.99), 3.0);
}

TEST(LogHistogram, QuantilesWithinBucketResolution) {
  LogHistogram h;
  for (std::uint64_t i = 1; i <= 10'000; ++i) h.record(i);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 10'000u);
  // Log-linear buckets with 4 sub-buckets are accurate to ~25% worst case;
  // check the envelope rather than exact values.
  EXPECT_NEAR(s.quantile(0.5), 5000.0, 5000.0 * 0.3);
  EXPECT_NEAR(s.quantile(0.99), 9900.0, 9900.0 * 0.3);
  EXPECT_DOUBLE_EQ(s.mean(), 5000.5);
}

TEST(LogHistogram, EmptyQuantileIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.snapshot().quantile(0.99), 0.0);
}

TEST(LogHistogram, AccumulateMergesShards) {
  LogHistogram a, b;
  a.record(10);
  b.record(20);
  b.record(30);
  LogHistogram::Snapshot merged;
  a.accumulate(merged);
  b.accumulate(merged);
  EXPECT_EQ(merged.count, 3u);
  EXPECT_EQ(merged.sum, 60u);
}

// TSan target: concurrent recorders on one histogram must be race-free and
// lose no samples (all paths are relaxed atomics).
TEST(LogHistogram, ConcurrentRecordingLosesNothing) {
  LogHistogram h;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPer = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPer; ++i)
        h.record(static_cast<std::uint64_t>(t) + i % 97);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.snapshot().count, kThreads * kPer);
}

}  // namespace
}  // namespace pcq::svc
