#include "algos/betweenness.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "csr/builder.hpp"
#include "graph/generators.hpp"

namespace pcq::algos {
namespace {

using graph::EdgeList;
using graph::VertexId;

csr::CsrGraph symmetric_csr(EdgeList g, VertexId n) {
  g.symmetrize();
  g.sort(4);
  g.dedupe();
  g.remove_self_loops();
  return csr::build_csr_from_sorted(g, n, 4);
}

TEST(Betweenness, PathGraphMiddleDominates) {
  // Path 0-1-2-3-4: node 2 lies on the most shortest paths.
  const csr::CsrGraph g =
      symmetric_csr(EdgeList({{0, 1}, {1, 2}, {2, 3}, {3, 4}}), 5);
  const auto bc = betweenness_exact(g, 4);
  // Brandes with both directions: centre of the path = 2 * (2*3-?) — use
  // known values: undirected path P5 has bc (0, 3, 4, 3, 0) doubled.
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[4], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 6.0);
  EXPECT_DOUBLE_EQ(bc[2], 8.0);
  EXPECT_DOUBLE_EQ(bc[3], 6.0);
}

TEST(Betweenness, StarCenterTakesAll) {
  EdgeList g;
  for (VertexId v = 1; v < 10; ++v) g.push_back({0, v});
  const csr::CsrGraph csr = symmetric_csr(std::move(g), 10);
  const auto bc = betweenness_exact(csr, 4);
  // All 9*8 ordered leaf pairs route through the centre.
  EXPECT_DOUBLE_EQ(bc[0], 72.0);
  for (VertexId v = 1; v < 10; ++v) EXPECT_DOUBLE_EQ(bc[v], 0.0);
}

TEST(Betweenness, CompleteGraphAllZero) {
  EdgeList g;
  for (VertexId u = 0; u < 6; ++u)
    for (VertexId v = u + 1; v < 6; ++v) g.push_back({u, v});
  const auto bc = betweenness_exact(symmetric_csr(std::move(g), 6), 4);
  for (double x : bc) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(Betweenness, SplitShortestPathsShareCredit) {
  // A 4-cycle: two shortest paths between opposite corners, each middle
  // node gets half the dependency.
  const csr::CsrGraph g =
      symmetric_csr(EdgeList({{0, 1}, {1, 2}, {2, 3}, {3, 0}}), 4);
  const auto bc = betweenness_exact(g, 4);
  for (double x : bc) EXPECT_DOUBLE_EQ(x, 1.0);  // 2 opposite pairs * 0.5
}

TEST(Betweenness, ThreadCountInvariance) {
  const csr::CsrGraph g =
      symmetric_csr(graph::rmat(128, 2000, 0.57, 0.19, 0.19, 23, 4), 128);
  const auto ref = betweenness_exact(g, 1);
  for (int p : {2, 4, 8}) {
    const auto got = betweenness_exact(g, p);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t v = 0; v < ref.size(); ++v)
      EXPECT_NEAR(got[v], ref[v], 1e-9) << "p=" << p;
  }
}

TEST(Betweenness, SampledApproximatesExactRanking) {
  const csr::CsrGraph g =
      symmetric_csr(graph::rmat(256, 6000, 0.57, 0.19, 0.19, 29, 4), 256);
  const auto exact = betweenness_exact(g, 4);
  const auto approx = betweenness_sampled(g, 128, 7, 4);
  // The exact top node must rank in the approximate top five.
  const auto top_exact = static_cast<std::size_t>(
      std::max_element(exact.begin(), exact.end()) - exact.begin());
  std::vector<std::size_t> order(exact.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return approx[a] > approx[b];
  });
  const bool found = std::find(order.begin(), order.begin() + 5, top_exact) !=
                     order.begin() + 5;
  EXPECT_TRUE(found);
}

TEST(Betweenness, SampledDeterministicGivenSeed) {
  const csr::CsrGraph g =
      symmetric_csr(graph::erdos_renyi(100, 800, 31, 4), 100);
  EXPECT_EQ(betweenness_sampled(g, 20, 5, 4), betweenness_sampled(g, 20, 5, 2));
}

}  // namespace
}  // namespace pcq::algos
