#include "tcsr/baselines.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.hpp"
#include "tcsr/tcsr.hpp"
#include "util/rng.hpp"

namespace pcq::tcsr {
namespace {

using graph::TemporalEdgeList;
using graph::TimeFrame;
using graph::VertexId;

struct TemporalFixture {
  TemporalFixture()
      : events(graph::evolving_graph(60, 4000, 10, 51, 4)),
        tcsr(DifferentialTcsr::build(events, 60, 10, 4)),
        snapshots(SnapshotSequence::build(events, 60, 10, 4)),
        evelog(EveLog::build(events, 60, 4)) {}

  TemporalEdgeList events;
  DifferentialTcsr tcsr;
  SnapshotSequence snapshots;
  EveLog evelog;
};

const TemporalFixture& fixture() {
  static const TemporalFixture f;
  return f;
}

TEST(SnapshotSequence, AgreesWithDifferentialTcsrOnEdgeQueries) {
  const auto& f = fixture();
  pcq::util::SplitMix64 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(60));
    const auto v = static_cast<VertexId>(rng.next_below(60));
    const auto t = static_cast<TimeFrame>(rng.next_below(10));
    EXPECT_EQ(f.snapshots.edge_active(u, v, t), f.tcsr.edge_active(u, v, t))
        << u << "->" << v << "@" << t;
  }
}

TEST(SnapshotSequence, AgreesOnNeighborQueries) {
  const auto& f = fixture();
  for (VertexId u = 0; u < 60; u += 5) {
    for (TimeFrame t = 0; t < 10; t += 4) {
      auto a = f.snapshots.neighbors_at(u, t);
      auto b = f.tcsr.neighbors_at(u, t);
      std::sort(a.begin(), a.end());
      EXPECT_EQ(a, b) << "u=" << u << " t=" << t;
    }
  }
}

TEST(SnapshotSequence, FrameCount) {
  EXPECT_EQ(fixture().snapshots.num_frames(), 10u);
}

TEST(EveLog, AgreesWithDifferentialTcsrOnEdgeQueries) {
  const auto& f = fixture();
  pcq::util::SplitMix64 rng(2);
  for (int i = 0; i < 1000; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(60));
    const auto v = static_cast<VertexId>(rng.next_below(60));
    const auto t = static_cast<TimeFrame>(rng.next_below(10));
    EXPECT_EQ(f.evelog.edge_active(u, v, t), f.tcsr.edge_active(u, v, t))
        << u << "->" << v << "@" << t;
  }
}

TEST(EveLog, AgreesOnNeighborQueries) {
  const auto& f = fixture();
  for (VertexId u = 0; u < 60; u += 7) {
    for (TimeFrame t = 0; t < 10; t += 3) {
      EXPECT_EQ(f.evelog.neighbors_at(u, t), f.tcsr.neighbors_at(u, t))
          << "u=" << u << " t=" << t;
    }
  }
}

TEST(EveLog, VertexWithNoEventsIsInactive) {
  const TemporalEdgeList evs({{0, 1, 0}});
  const EveLog log = EveLog::build(evs, 10, 2);
  EXPECT_FALSE(log.edge_active(5, 1, 0));
  EXPECT_TRUE(log.neighbors_at(5, 0).empty());
}

TEST(TemporalSizes, DifferentialSmallerThanSnapshotSequence) {
  // The motivating claim of §IV: with long-lived edges, storing per-frame
  // snapshots repeats unchanged state; the differential form does not.
  // Build a workload where most edges persist: one initial burst at t=0,
  // tiny churn afterwards.
  std::vector<graph::TemporalEdge> evs;
  pcq::util::SplitMix64 rng(77);
  for (int i = 0; i < 3000; ++i)
    evs.push_back({static_cast<VertexId>(rng.next_below(100)),
                   static_cast<VertexId>(rng.next_below(100)), 0});
  for (TimeFrame t = 1; t < 12; ++t)
    for (int i = 0; i < 20; ++i)
      evs.push_back({static_cast<VertexId>(rng.next_below(100)),
                     static_cast<VertexId>(rng.next_below(100)), t});
  TemporalEdgeList list(std::move(evs));
  list.sort(4);

  const auto diff = DifferentialTcsr::build(list, 100, 12, 4);
  const auto snaps = SnapshotSequence::build(list, 100, 12, 4);
  EXPECT_LT(diff.size_bytes() * 3, snaps.size_bytes());
}

}  // namespace
}  // namespace pcq::tcsr
