// pcq::obs — exposition, slow-log and reporter tests: the metric-name
// sanitiser and a lint of every name the library registers against the
// Prometheus grammar, the text-exposition writer's output shape, exact
// histogram min/max in every output format, the bounded slow-query log,
// and the reporter's interval-delta JSONL lines.
#include "obs/exposition.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "csr/builder.hpp"
#include "dyn/hybrid.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/reporter.hpp"
#include "obs/slowlog.hpp"
#include "svc/service.hpp"
#include "util/rng.hpp"

namespace pcq::obs {
namespace {

// ------------------------------------------------------------- sanitiser

TEST(Exposition, ValidNamesPassTheGrammar) {
  EXPECT_TRUE(is_valid_metric_name("svc_queue_wait_us"));
  EXPECT_TRUE(is_valid_metric_name("a"));
  EXPECT_TRUE(is_valid_metric_name("_leading_underscore"));
  EXPECT_TRUE(is_valid_metric_name("colons:are:fine"));
  EXPECT_TRUE(is_valid_metric_name("x123"));
}

TEST(Exposition, InvalidNamesFailTheGrammar) {
  EXPECT_FALSE(is_valid_metric_name(""));
  EXPECT_FALSE(is_valid_metric_name("svc.queue"));    // dots
  EXPECT_FALSE(is_valid_metric_name("9lives"));       // leading digit
  EXPECT_FALSE(is_valid_metric_name("has space"));
  EXPECT_FALSE(is_valid_metric_name("dash-ed"));
}

TEST(Exposition, SanitizeMapsDotsAndLeadingDigits) {
  EXPECT_EQ(sanitize_metric_name("svc.queue_wait_us"), "svc_queue_wait_us");
  EXPECT_EQ(sanitize_metric_name("dyn.hybrid.compactions"),
            "dyn_hybrid_compactions");
  EXPECT_EQ(sanitize_metric_name("9lives"), "_9lives");
  EXPECT_EQ(sanitize_metric_name(""), "_");
}

TEST(Exposition, SanitizeIsTotalAndIdempotent) {
  util::SplitMix64 rng(99);
  for (int i = 0; i < 2000; ++i) {
    std::string raw;
    const std::size_t len = rng.next_below(12);
    for (std::size_t j = 0; j < len; ++j)
      raw.push_back(static_cast<char>(1 + rng.next_below(255)));
    const std::string once = sanitize_metric_name(raw);
    EXPECT_TRUE(is_valid_metric_name(once)) << "raw bytes of length " << len;
    EXPECT_EQ(sanitize_metric_name(once), once);
  }
}

// Exercise representative library paths so their instrumentation registers
// its names, then lint every name in the global registry: each must map to
// a valid exposition name and no two distinct names may collide after
// sanitisation (a collision would silently merge two series).
TEST(Exposition, EveryRegisteredNameSanitizesCleanlyAndUniquely) {
  // csr.builds + svc.* names.
  graph::EdgeList list = graph::rmat(1 << 8, 2'000, 0.57, 0.19, 0.19, 5, 1);
  list.sort(1);
  list.dedupe();
  const auto csr = csr::build_bitpacked_csr_from_sorted(list, 1 << 8, 1);
  {
    svc::QueryService service(csr, nullptr, {});
    svc::Request req;
    req.kind = svc::QueryKind::kDegree;
    req.u = 1;
    service.submit(req).wait();
  }
  // dyn.* names.
  {
    dyn::HybridGraph hybrid(csr);
    const graph::Edge extra[] = {{1, 2}, {3, 4}};
    hybrid.add_edges(extra, 1);
    hybrid.maybe_compact(1);
  }
  // proc.* names.
  sample_process_gauges();

  std::vector<std::string> names;
  MetricsRegistry::global().for_each(
      [&](const std::string& name, std::uint64_t) { names.push_back(name); },
      [&](const std::string& name, std::int64_t) { names.push_back(name); },
      [&](const std::string& name, const LogHistogram::Snapshot&) {
        names.push_back(name);
      });
  ASSERT_FALSE(names.empty());
  std::set<std::string> sanitized;
  for (const std::string& name : names) {
    const std::string clean = sanitize_metric_name(name);
    EXPECT_TRUE(is_valid_metric_name(clean)) << name;
    EXPECT_TRUE(sanitized.insert(clean).second)
        << "sanitisation collision on " << name << " -> " << clean;
  }
}

// ------------------------------------------------------- text exposition

TEST(Exposition, PrometheusOutputParsesPerGrammar) {
  auto& reg = MetricsRegistry::global();
  reg.counter("expo.test.counter").add(3);
  reg.gauge("expo.test.gauge").set(-7);
  auto& h = reg.histogram("expo.test.hist_us");
  for (std::uint64_t v : {1u, 10u, 100u, 1000u}) h.record(v);

  std::ostringstream out;
  write_prometheus(reg, out);
  const std::string text = out.str();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');

  std::istringstream lines(text);
  std::string line;
  std::size_t samples = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      // "# TYPE <name> <counter|gauge|summary>"
      std::istringstream fields(line);
      std::string hash, kw, name, type;
      ASSERT_TRUE(fields >> hash >> kw >> name >> type) << line;
      EXPECT_EQ(hash, "#");
      EXPECT_EQ(kw, "TYPE");
      EXPECT_TRUE(is_valid_metric_name(name)) << line;
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "summary")
          << line;
      continue;
    }
    // "<name>[{labels}] <value>"
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << line;
      name.resize(brace);
    }
    EXPECT_TRUE(is_valid_metric_name(name)) << line;
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "unparseable sample value in: " << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);

  EXPECT_NE(text.find("# TYPE expo_test_counter counter"), std::string::npos);
  EXPECT_NE(text.find("expo_test_gauge -7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE expo_test_hist_us summary"), std::string::npos);
  EXPECT_NE(text.find("expo_test_hist_us{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("expo_test_hist_us_count 4"), std::string::npos);
  EXPECT_NE(text.find("expo_test_hist_us_sum 1111"), std::string::npos);
  EXPECT_NE(text.find("expo_test_hist_us_min 1"), std::string::npos);
  EXPECT_NE(text.find("expo_test_hist_us_max 1000"), std::string::npos);
}

// ------------------------------------------------------ histogram min/max

TEST(HistogramMinMax, ExactAcrossSnapshotTextAndJson) {
  LogHistogram h;
  EXPECT_EQ(h.snapshot().min(), 0u);  // empty normalises to 0
  EXPECT_EQ(h.snapshot().max(), 0u);
  h.record(17);
  h.record(123456);
  h.record(42);
  const LogHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.min(), 17u);
  EXPECT_EQ(s.max(), 123456u);

  auto& reg = MetricsRegistry::global();
  reg.histogram("expo.minmax.hist").record(17);
  reg.histogram("expo.minmax.hist").record(123456);
  std::ostringstream text, json;
  reg.write_text(text);
  reg.write_json(json);
  EXPECT_NE(text.str().find("min 17"), std::string::npos);
  EXPECT_NE(text.str().find("max 123456"), std::string::npos);
  EXPECT_NE(json.str().find("\"min\":17"), std::string::npos);
  EXPECT_NE(json.str().find("\"max\":123456"), std::string::npos);
}

// -------------------------------------------------------------- slow log

TEST(SlowLog, BoundedDropOldest) {
  SlowLog log;  // a private instance; global() is exercised in test_admin
  log.set_capacity(4);
  EXPECT_EQ(log.capacity(), 4u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    SlowQuery q;
    q.trace_id = i;
    q.total_us = 1000 + i;
    log.record(q);
  }
  EXPECT_EQ(log.captured(), 10u);
  const std::vector<SlowQuery> snap = log.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 0; i < snap.size(); ++i)
    EXPECT_EQ(snap[i].trace_id, 6 + i);  // oldest first, newest retained
}

TEST(SlowLog, ShrinkingCapacityEvictsImmediately) {
  SlowLog log;
  log.set_capacity(8);
  for (std::uint64_t i = 0; i < 8; ++i) {
    SlowQuery q;
    q.trace_id = i;
    log.record(q);
  }
  log.set_capacity(2);
  const std::vector<SlowQuery> snap = log.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].trace_id, 6u);
  EXPECT_EQ(snap[1].trace_id, 7u);
}

TEST(SlowLog, ThresholdRoundTripsAndClearResets) {
  SlowLog log;
  EXPECT_EQ(log.threshold_us(), 0u);  // sampling off by default
  log.set_threshold_us(2500);
  EXPECT_EQ(log.threshold_us(), 2500u);
  SlowQuery q;
  q.trace_id = 7;
  log.record(q);
  EXPECT_EQ(log.captured(), 1u);
  log.clear();
  EXPECT_EQ(log.captured(), 0u);
  EXPECT_TRUE(log.snapshot().empty());
  EXPECT_EQ(log.threshold_us(), 2500u);  // clear keeps the configuration
}

TEST(SlowLog, WriteJsonCarriesEveryField) {
  SlowLog log;
  log.set_threshold_us(100);
  SlowQuery q;
  q.trace_id = 77;
  q.kind = 2;
  q.status = 0;
  q.u = 5;
  q.v = 6;
  q.total_us = 1234;
  q.queue_us = 1000;
  q.service_us = 234;
  q.batch_size = 9;
  q.shard = 1;
  log.record(q);
  std::ostringstream out;
  log.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"threshold_us\":100"), std::string::npos);
  EXPECT_NE(json.find("\"captured\":1"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":77"), std::string::npos);
  EXPECT_NE(json.find("\"total_us\":1234"), std::string::npos);
  EXPECT_NE(json.find("\"queue_us\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"service_us\":234"), std::string::npos);
  EXPECT_NE(json.find("\"batch_size\":9"), std::string::npos);
}

// -------------------------------------------------------------- reporter

TEST(Reporter, TickEmitsIntervalDeltaJsonl) {
  auto& reg = MetricsRegistry::global();
  auto& counter = reg.counter("expo.reporter.events");
  Reporter reporter;
  bool sampled = false;
  reporter.add_sampler([&] {
    sampled = true;
    reg.gauge("expo.reporter.level").set(42);
  });

  counter.add(5);
  std::ostringstream first;
  reporter.tick(first);
  EXPECT_TRUE(sampled);
  const std::string line1 = first.str();
  EXPECT_EQ(line1.back(), '\n');
  EXPECT_EQ(line1.find('\n'), line1.size() - 1) << "one JSONL line per tick";
  EXPECT_NE(line1.find("\"ts_ms\":"), std::string::npos);
  EXPECT_NE(line1.find("\"interval_s\":"), std::string::npos);
  EXPECT_NE(line1.find("\"expo.reporter.level\":42"), std::string::npos);

  // The second tick reports the delta since the first: total is cumulative,
  // and a quiet counter has rate 0.
  counter.add(3);
  std::ostringstream second;
  reporter.tick(second);
  const std::string line2 = second.str();
  const std::size_t at = line2.find("\"expo.reporter.events\":");
  ASSERT_NE(at, std::string::npos);
  EXPECT_NE(line2.find("\"total\":", at), std::string::npos);
  EXPECT_NE(line2.find("\"rate\":", at), std::string::npos);
}

}  // namespace
}  // namespace pcq::obs
