#include <gtest/gtest.h>

#include <vector>

#include "bits/codecs.hpp"
#include "util/rng.hpp"

namespace pcq::bits {
namespace {

TEST(MinimalBinary, PowerOfTwoIntervalIsPlainBinary) {
  BitVector bv;
  for (std::uint64_t x = 0; x < 8; ++x) minimal_binary_encode(x, 8, bv);
  EXPECT_EQ(bv.size(), 8u * 3);  // 3 bits each
  std::size_t pos = 0;
  for (std::uint64_t x = 0; x < 8; ++x)
    EXPECT_EQ(minimal_binary_decode(bv, pos, 8), x);
}

TEST(MinimalBinary, NonPowerIntervalUsesShortCodes) {
  // n = 6: b = 3, two short 2-bit codewords for x in {0, 1}.
  BitVector bv;
  for (std::uint64_t x = 0; x < 6; ++x) minimal_binary_encode(x, 6, bv);
  EXPECT_EQ(bv.size(), 2u * 2 + 4u * 3);
  std::size_t pos = 0;
  for (std::uint64_t x = 0; x < 6; ++x)
    EXPECT_EQ(minimal_binary_decode(bv, pos, 6), x) << x;
  EXPECT_EQ(pos, bv.size());
}

TEST(MinimalBinary, IntervalOfOneIsZeroBits) {
  BitVector bv;
  minimal_binary_encode(0, 1, bv);
  EXPECT_EQ(bv.size(), 0u);
  std::size_t pos = 0;
  EXPECT_EQ(minimal_binary_decode(bv, pos, 1), 0u);
}

TEST(MinimalBinary, RandomRoundTripVariousIntervals) {
  pcq::util::SplitMix64 rng(3);
  for (std::uint64_t n : {2ull, 3ull, 5ull, 6ull, 7ull, 100ull, 1000ull,
                          (1ull << 33) - 5}) {
    BitVector bv;
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t x = rng.next_below(n);
      values.push_back(x);
      minimal_binary_encode(x, n, bv);
    }
    std::size_t pos = 0;
    for (std::uint64_t x : values)
      ASSERT_EQ(minimal_binary_decode(bv, pos, n), x) << "n=" << n;
    EXPECT_EQ(pos, bv.size());
  }
}

TEST(Zeta, KnownSmallValuesK1IsGammaShaped) {
  // zeta_1 has the same block structure as gamma: value 1 -> 1 bit.
  BitVector bv;
  zeta_encode(1, 1, bv);
  EXPECT_EQ(bv.size(), 1u);
  std::size_t pos = 0;
  EXPECT_EQ(zeta_decode(bv, pos, 1), 1u);
}

class ZetaRoundTrip : public testing::TestWithParam<unsigned> {};

TEST_P(ZetaRoundTrip, BoundaryValues) {
  const unsigned k = GetParam();
  BitVector bv;
  std::vector<std::uint64_t> values{1, 2, 3};
  // Block boundaries: 2^(hk) - 1, 2^(hk), 2^(hk) + 1 for several h.
  for (unsigned h = 1; h * k < 60; ++h) {
    const std::uint64_t base = 1ULL << (h * k);
    values.push_back(base - 1);
    values.push_back(base);
    values.push_back(base + 1);
  }
  values.push_back(0xffffffffffffffffULL);
  for (auto v : values) zeta_encode(v, k, bv);
  std::size_t pos = 0;
  for (auto v : values) ASSERT_EQ(zeta_decode(bv, pos, k), v) << "k=" << k;
  EXPECT_EQ(pos, bv.size());
}

TEST_P(ZetaRoundTrip, RandomValues) {
  const unsigned k = GetParam();
  pcq::util::SplitMix64 rng(k * 17);
  BitVector bv;
  std::vector<std::uint64_t> values(1000);
  for (auto& v : values) v = 1 + rng.next_below(1ULL << 40);
  for (auto v : values) zeta_encode(v, k, bv);
  std::size_t pos = 0;
  for (auto v : values) ASSERT_EQ(zeta_decode(bv, pos, k), v);
}

INSTANTIATE_TEST_SUITE_P(Ks, ZetaRoundTrip, testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(Zeta, SmallGapsBeatFixedWidth) {
  // Power-law-ish gaps (mostly 1-4): zeta_3 should average well under the
  // 20+ bits a fixed-width column id needs.
  pcq::util::SplitMix64 rng(9);
  BitVector bv;
  constexpr int kCount = 10'000;
  for (int i = 0; i < kCount; ++i) zeta_encode(1 + rng.next_below(4), 3, bv);
  EXPECT_LT(bv.size(), static_cast<std::size_t>(kCount) * 6);
}

TEST(ZetaDeathTest, ZeroValueAborts) {
  BitVector bv;
  EXPECT_DEATH(zeta_encode(0, 3, bv), "undefined for 0");
}

}  // namespace
}  // namespace pcq::bits
