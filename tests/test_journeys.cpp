#include "tcsr/journeys.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"

namespace pcq::tcsr {
namespace {

using graph::TemporalEdge;
using graph::TemporalEdgeList;
using graph::TimeFrame;
using graph::VertexId;

TemporalEdgeList sorted(std::vector<TemporalEdge> evs) {
  TemporalEdgeList list(std::move(evs));
  list.sort(2);
  return list;
}

TEST(ForemostArrival, WaitsForEdgesToAppear) {
  // 0-1 exists from frame 0; 1-2 only appears at frame 2. Arrival at 2 is
  // frame 2 even though the journey's first hop was possible earlier.
  const auto tcsr = DifferentialTcsr::build(
      sorted({{0, 1, 0}, {1, 2, 2}}), 3, 3, 2);
  const auto arrival = foremost_arrival(tcsr, 0, 0, 2);
  EXPECT_EQ(arrival[0], 0u);
  EXPECT_EQ(arrival[1], 0u);
  EXPECT_EQ(arrival[2], 2u);
}

TEST(ForemostArrival, DeletedEdgeCannotBeUsedLater) {
  // 1-2 exists only during frame 0 (deleted at frame 1); 0-1 appears at
  // frame 1. By then the second hop is gone: node 2 is never reached.
  const auto tcsr = DifferentialTcsr::build(
      sorted({{1, 2, 0}, {0, 1, 1}, {1, 2, 1}}), 3, 2, 2);
  const auto arrival = foremost_arrival(tcsr, 0, 0, 2);
  EXPECT_EQ(arrival[1], 1u);
  EXPECT_EQ(arrival[2], kNeverReached);
}

TEST(ForemostArrival, MultiHopWithinOneFrame) {
  // Chain 0-1-2-3 all active in frame 1: non-strict journeys traverse the
  // whole chain within the frame.
  const auto tcsr = DifferentialTcsr::build(
      sorted({{0, 1, 1}, {1, 2, 1}, {2, 3, 1}}), 4, 2, 2);
  const auto arrival = foremost_arrival(tcsr, 0, 0, 2);
  EXPECT_EQ(arrival[1], 1u);
  EXPECT_EQ(arrival[2], 1u);
  EXPECT_EQ(arrival[3], 1u);
}

TEST(ForemostArrival, StartFrameIgnoresEarlierEdges) {
  // 0-1 active only in frame 0; starting at frame 1, node 1 is never
  // reached.
  const auto tcsr = DifferentialTcsr::build(
      sorted({{0, 1, 0}, {0, 1, 1}}), 2, 2, 2);
  const auto arrival = foremost_arrival(tcsr, 0, 1, 2);
  EXPECT_EQ(arrival[0], 1u);
  EXPECT_EQ(arrival[1], kNeverReached);
}

TEST(ForemostArrival, ArrivalsAreMonotoneAlongJourneys) {
  const TemporalEdgeList evs = graph::evolving_graph(80, 3000, 10, 3, 4);
  const auto tcsr = DifferentialTcsr::build(evs, 80, 10, 4);
  const auto arrival = foremost_arrival(tcsr, 0, 0, 4);
  EXPECT_EQ(arrival[0], 0u);
  // Every reached node must actually have been adjacent, at its arrival
  // frame, to a node reached no later.
  for (VertexId v = 1; v < 80; ++v) {
    if (arrival[v] == kNeverReached) continue;
    const auto nbrs = tcsr.neighbors_at(v, arrival[v]);
    bool witnessed = false;
    for (VertexId w : nbrs)
      if (arrival[w] != kNeverReached && arrival[w] <= arrival[v])
        witnessed = true;
    // Note: edges are directed in the delta structure; the journey used
    // w -> v, so check the witnesses' out-rows as well.
    if (!witnessed) {
      for (VertexId w = 0; w < 80 && !witnessed; ++w) {
        if (arrival[w] == kNeverReached || arrival[w] > arrival[v]) continue;
        const auto out = tcsr.neighbors_at(w, arrival[v]);
        if (std::binary_search(out.begin(), out.end(), v)) witnessed = true;
      }
    }
    EXPECT_TRUE(witnessed) << "v=" << v;
  }
}

TEST(ForemostArrival, ThreadCountInvariance) {
  const TemporalEdgeList evs = graph::evolving_graph(60, 2000, 8, 5, 4);
  const auto tcsr = DifferentialTcsr::build(evs, 60, 8, 4);
  const auto ref = foremost_arrival(tcsr, 3, 0, 1);
  for (int p : {2, 4, 8}) EXPECT_EQ(foremost_arrival(tcsr, 3, 0, p), ref);
}

TEST(ReachableInWindow, FiltersByArrival) {
  const auto tcsr = DifferentialTcsr::build(
      sorted({{0, 1, 0}, {1, 2, 2}, {2, 3, 3}}), 4, 4, 2);
  const auto w01 = reachable_in_window(tcsr, 0, 0, 1, 2);
  EXPECT_EQ(w01, (std::vector<VertexId>{0, 1}));
  const auto w03 = reachable_in_window(tcsr, 0, 0, 3, 2);
  EXPECT_EQ(w03, (std::vector<VertexId>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace pcq::tcsr
