// End-to-end integration tests: the full paper pipeline — generate (or
// load) an edge list, sort, build the bit-packed CSR in parallel, query it,
// run analytics, and round-trip through disk — at multiple thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <numeric>

#include "algos/bfs.hpp"
#include "algos/components.hpp"
#include "algos/pagerank.hpp"
#include "algos/stats.hpp"
#include "csr/builder.hpp"
#include "csr/pcsr.hpp"
#include "csr/query.hpp"
#include "graph/baselines.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/k2tree.hpp"
#include "graph/webgraph.hpp"
#include "tcsr/baselines.hpp"
#include "tcsr/tcsr.hpp"
#include "util/rng.hpp"

namespace pcq {
namespace {

using graph::Edge;
using graph::EdgeList;
using graph::TemporalEdgeList;
using graph::VertexId;

TEST(Integration, MiniTableTwoPipeline) {
  // A miniature of the Table II experiment on every preset: generate at a
  // small scale, build at several thread counts, check invariants the
  // paper's table relies on (identical output, CSR smaller than the edge
  // list).
  for (const auto& preset : graph::paper_presets()) {
    const EdgeList list = graph::make_preset_graph(preset, 0.002, 42, 4);
    ASSERT_TRUE(list.is_sorted());
    const VertexId n = list.num_nodes();

    csr::CsrBuildTimings timings;
    const csr::BitPackedCsr ref =
        csr::build_bitpacked_csr_from_sorted(list, n, 1, &timings);
    EXPECT_LT(ref.size_bytes(), list.size_bytes()) << preset.name;
    for (int p : {4, 16}) {
      const csr::BitPackedCsr packed =
          csr::build_bitpacked_csr_from_sorted(list, n, p);
      EXPECT_TRUE(packed.packed_offsets() == ref.packed_offsets())
          << preset.name << " p=" << p;
      EXPECT_TRUE(packed.packed_columns() == ref.packed_columns())
          << preset.name << " p=" << p;
    }
  }
}

TEST(Integration, QueriesAgreeAcrossAllStructures) {
  // CSR, bit-packed CSR, adjacency list and edge list must answer every
  // query identically — the premise of the paper's S1 comparison.
  EdgeList list = graph::rmat(1 << 10, 30'000, 0.57, 0.19, 0.19, 7, 4);
  list.sort(4);
  list.dedupe();
  const VertexId n = 1 << 10;

  const csr::CsrGraph plain = csr::build_csr_from_sorted(list, n, 4);
  const csr::BitPackedCsr packed = csr::BitPackedCsr::from_csr(plain, 4);
  const graph::AdjacencyListGraph adj(list, n);
  const graph::EdgeListGraph raw(list);

  util::SplitMix64 rng(5);
  for (int i = 0; i < 2000; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    const auto v = static_cast<VertexId>(rng.next_below(n));
    const bool expect = adj.has_edge(u, v);
    EXPECT_EQ(plain.has_edge(u, v), expect);
    EXPECT_EQ(packed.has_edge(u, v), expect);
    EXPECT_EQ(raw.has_edge(u, v), expect);
    EXPECT_EQ(csr::edge_exists_intra_row(packed, u, v, 4), expect);
  }
}

TEST(Integration, DiskRoundTripThenFullPipeline) {
  const auto dir = std::filesystem::temp_directory_path() / "pcq_integration";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "graph.txt").string();

  EdgeList original = graph::rmat(512, 10'000, 0.57, 0.19, 0.19, 11, 4);
  graph::save_snap_text(original, path);
  EdgeList loaded = graph::load_snap_text(path);
  loaded.sort(4);
  original.sort(4);

  const csr::BitPackedCsr a =
      csr::build_bitpacked_csr_from_sorted(loaded, 512, 4);
  const csr::BitPackedCsr b =
      csr::build_bitpacked_csr_from_sorted(original, 512, 4);
  EXPECT_TRUE(a.packed_columns() == b.packed_columns());
  std::filesystem::remove_all(dir);
}

TEST(Integration, AnalyticsOnPackedEqualsPlain) {
  EdgeList list = graph::rmat(1 << 9, 15'000, 0.57, 0.19, 0.19, 13, 4);
  list.symmetrize();
  list.sort(4);
  list.dedupe();
  const VertexId n = 1 << 9;
  const csr::CsrGraph plain = csr::build_csr_from_sorted(list, n, 4);
  const csr::BitPackedCsr packed = csr::BitPackedCsr::from_csr(plain, 4);

  EXPECT_EQ(algos::bfs(packed, 0, 4), algos::bfs(plain, 0, 4));

  const auto labels = algos::connected_components_label_prop(plain, 4);
  EXPECT_EQ(labels, algos::connected_components_union_find(plain));

  const auto pr = algos::pagerank(plain, {}, 4);
  EXPECT_NEAR(std::accumulate(pr.scores.begin(), pr.scores.end(), 0.0), 1.0,
              1e-6);
}

TEST(Integration, TemporalPipelineEndToEnd) {
  // Build every temporal structure from one workload and cross-validate on
  // a query battery, then confirm the size ordering DESIGN.md documents.
  const TemporalEdgeList events = graph::evolving_graph(128, 8000, 16, 17, 4);
  const auto tcsr = tcsr::DifferentialTcsr::build(events, 128, 16, 4);
  const auto snaps = tcsr::SnapshotSequence::build(events, 128, 16, 4);
  const auto evelog = tcsr::EveLog::build(events, 128, 4);

  util::SplitMix64 rng(19);
  for (int i = 0; i < 500; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(128));
    const auto v = static_cast<VertexId>(rng.next_below(128));
    const auto t = static_cast<graph::TimeFrame>(rng.next_below(16));
    const bool expect = tcsr.edge_active(u, v, t);
    EXPECT_EQ(snaps.edge_active(u, v, t), expect);
    EXPECT_EQ(evelog.edge_active(u, v, t), expect);
  }

  // Reconstructed final snapshot equals the snapshot-sequence's last frame.
  const csr::CsrGraph last = tcsr.snapshot_at(15, 4);
  for (VertexId u = 0; u < 128; u += 9) {
    auto a = last.neighbors(u);
    const auto b = snaps.neighbors_at(u, 15);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << u;
  }
}

TEST(Integration, SixtyFourThreadOversubscription) {
  // The paper's largest configuration (p = 64) on every pipeline stage —
  // exercises chunk logic far past the physical core count.
  EdgeList list = graph::rmat(1 << 10, 50'000, 0.57, 0.19, 0.19, 23, 64);
  list.sort(64);
  const csr::BitPackedCsr packed =
      csr::build_bitpacked_csr_from_sorted(list, 1 << 10, 64);
  const csr::BitPackedCsr ref =
      csr::build_bitpacked_csr_from_sorted(list, 1 << 10, 1);
  EXPECT_TRUE(packed.packed_columns() == ref.packed_columns());

  std::vector<VertexId> nodes(1000);
  util::SplitMix64 rng(29);
  for (auto& u : nodes) u = static_cast<VertexId>(rng.next_below(1 << 10));
  const auto rows = csr::batch_neighbors(packed, nodes, 64);
  const csr::CsrGraph plain = packed.to_csr();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto expect = plain.neighbors(nodes[i]);
    ASSERT_EQ(rows[i].size(), expect.size());
    EXPECT_TRUE(std::equal(rows[i].begin(), rows[i].end(), expect.begin()));
  }
}

TEST(Integration, AllCompressedStructuresAgreeOnQueries) {
  // The full comparator spectrum — plain CSR, bit-packed CSR, gap+zeta,
  // k²-tree, PMA — answers one query battery identically.
  EdgeList list = graph::rmat(1 << 9, 12'000, 0.57, 0.19, 0.19, 37, 4);
  list.sort(4);
  list.dedupe();
  const VertexId n = 1 << 9;
  const csr::CsrGraph plain = csr::build_csr_from_sorted(list, n, 4);
  const csr::BitPackedCsr packed = csr::BitPackedCsr::from_csr(plain, 4);
  const graph::GapZetaGraph zeta =
      graph::GapZetaGraph::build_from_sorted(list, n, 3, 4);
  const graph::K2Tree k2 = graph::K2Tree::build(list, n, 2, 4);
  const csr::PmaCsr pma(list);

  util::SplitMix64 rng(39);
  for (int i = 0; i < 1500; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    const auto v = static_cast<VertexId>(rng.next_below(n));
    const bool expect = plain.has_edge(u, v);
    ASSERT_EQ(packed.has_edge(u, v), expect) << u << "," << v;
    ASSERT_EQ(zeta.has_edge(u, v), expect) << u << "," << v;
    ASSERT_EQ(k2.has_edge(u, v), expect) << u << "," << v;
    ASSERT_EQ(pma.has_edge(u, v), expect) << u << "," << v;
  }
  for (VertexId u = 0; u < n; u += 31) {
    const auto expect = plain.neighbors(u);
    const std::vector<VertexId> expect_v(expect.begin(), expect.end());
    EXPECT_EQ(packed.neighbors(u), expect_v);
    EXPECT_EQ(zeta.neighbors(u), expect_v);
    EXPECT_EQ(k2.neighbors(u), expect_v);
    EXPECT_EQ(pma.neighbors(u), expect_v);
  }
}

TEST(Integration, DegreeDistributionSurvivesCompression) {
  // Stats computed on the unpacked form of the packed CSR equal stats on
  // the plain CSR — compression is lossless for analytics.
  EdgeList list = graph::make_preset_graph(
      graph::preset_by_name("WebNotreDame"), 0.02, 31, 4);
  const csr::CsrGraph plain =
      csr::build_csr_from_sorted(list, list.num_nodes(), 4);
  const csr::BitPackedCsr packed = csr::BitPackedCsr::from_csr(plain, 4);
  const auto a = algos::degree_stats(plain, 4);
  const auto b = algos::degree_stats(packed.to_csr(), 4);
  EXPECT_EQ(a.max, b.max);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.gini, b.gini);
}

}  // namespace
}  // namespace pcq
