#include "par/chunking.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace pcq::par {
namespace {

TEST(Chunking, SingleChunkCoversAll) {
  EXPECT_EQ(chunk_range(10, 1, 0), (ChunkRange{0, 10}));
}

TEST(Chunking, EvenSplit) {
  EXPECT_EQ(chunk_range(12, 4, 0), (ChunkRange{0, 3}));
  EXPECT_EQ(chunk_range(12, 4, 1), (ChunkRange{3, 6}));
  EXPECT_EQ(chunk_range(12, 4, 2), (ChunkRange{6, 9}));
  EXPECT_EQ(chunk_range(12, 4, 3), (ChunkRange{9, 12}));
}

TEST(Chunking, RemainderGoesToFirstChunks) {
  // 10 into 4: sizes 3,3,2,2.
  EXPECT_EQ(chunk_range(10, 4, 0).size(), 3u);
  EXPECT_EQ(chunk_range(10, 4, 1).size(), 3u);
  EXPECT_EQ(chunk_range(10, 4, 2).size(), 2u);
  EXPECT_EQ(chunk_range(10, 4, 3).size(), 2u);
}

TEST(Chunking, MoreChunksThanElements) {
  // 3 into 5: the first 3 chunks get one element, the rest are empty.
  EXPECT_EQ(chunk_range(3, 5, 0).size(), 1u);
  EXPECT_EQ(chunk_range(3, 5, 2).size(), 1u);
  EXPECT_TRUE(chunk_range(3, 5, 3).empty());
  EXPECT_TRUE(chunk_range(3, 5, 4).empty());
}

TEST(Chunking, ZeroElements) {
  for (std::size_t i = 0; i < 4; ++i) EXPECT_TRUE(chunk_range(0, 4, i).empty());
  EXPECT_EQ(num_nonempty_chunks(0, 4), 0u);
}

TEST(Chunking, NumNonemptyChunks) {
  EXPECT_EQ(num_nonempty_chunks(100, 4), 4u);
  EXPECT_EQ(num_nonempty_chunks(3, 8), 3u);
  EXPECT_EQ(num_nonempty_chunks(8, 8), 8u);
}

// Property sweep: chunks must partition [0, n) exactly — contiguous,
// disjoint, complete, and balanced to within one element.
class ChunkPartitionProperty
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ChunkPartitionProperty, PartitionIsExact) {
  const auto [n, p] = GetParam();
  std::size_t expected_begin = 0;
  std::size_t min_size = n + 1, max_size = 0;
  for (std::size_t i = 0; i < p; ++i) {
    const ChunkRange r = chunk_range(n, p, i);
    EXPECT_EQ(r.begin, expected_begin);
    EXPECT_LE(r.begin, r.end);
    expected_begin = r.end;
    min_size = std::min(min_size, r.size());
    max_size = std::max(max_size, r.size());
  }
  EXPECT_EQ(expected_begin, n);           // complete
  EXPECT_LE(max_size - min_size, 1u);     // balanced
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChunkPartitionProperty,
    testing::Combine(testing::Values<std::size_t>(0, 1, 2, 7, 16, 63, 64, 65,
                                                  1000, 12345),
                     testing::Values<std::size_t>(1, 2, 3, 4, 7, 8, 16, 64)));

}  // namespace
}  // namespace pcq::par
