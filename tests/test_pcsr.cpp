#include "csr/pcsr.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace pcq::csr {
namespace {

using graph::Edge;
using graph::EdgeList;
using graph::VertexId;

TEST(PmaCsr, EmptyStore) {
  PmaCsr pma;
  EXPECT_EQ(pma.num_edges(), 0u);
  EXPECT_FALSE(pma.has_edge(0, 0));
  EXPECT_TRUE(pma.neighbors(5).empty());
  EXPECT_TRUE(pma.check_invariants());
}

TEST(PmaCsr, BulkLoadMatchesInput) {
  EdgeList g = graph::rmat(256, 5000, 0.57, 0.19, 0.19, 3, 4);
  g.sort(4);
  g.dedupe();
  const PmaCsr pma(g);
  EXPECT_EQ(pma.num_edges(), g.size());
  EXPECT_TRUE(pma.check_invariants());
  for (const Edge& e : g.edges()) EXPECT_TRUE(pma.has_edge(e.u, e.v));
  const auto back = pma.to_edges();
  ASSERT_EQ(back.size(), g.size());
  EXPECT_TRUE(std::equal(back.begin(), back.end(), g.edges().begin()));
}

TEST(PmaCsr, InsertAscending) {
  PmaCsr pma;
  for (VertexId i = 0; i < 2000; ++i)
    EXPECT_TRUE(pma.add_edge(i / 50, i % 50));
  EXPECT_EQ(pma.num_edges(), 2000u);
  EXPECT_TRUE(pma.check_invariants());
}

TEST(PmaCsr, InsertDescending) {
  PmaCsr pma;
  for (VertexId i = 2000; i-- > 0;)
    EXPECT_TRUE(pma.add_edge(i / 50, i % 50));
  EXPECT_EQ(pma.num_edges(), 2000u);
  EXPECT_TRUE(pma.check_invariants());
}

TEST(PmaCsr, DuplicateInsertRejected) {
  PmaCsr pma;
  EXPECT_TRUE(pma.add_edge(3, 4));
  EXPECT_FALSE(pma.add_edge(3, 4));
  EXPECT_EQ(pma.num_edges(), 1u);
}

TEST(PmaCsr, RemoveAndReinsert) {
  PmaCsr pma;
  pma.add_edge(1, 2);
  pma.add_edge(1, 3);
  EXPECT_TRUE(pma.remove_edge(1, 2));
  EXPECT_FALSE(pma.remove_edge(1, 2));
  EXPECT_FALSE(pma.has_edge(1, 2));
  EXPECT_TRUE(pma.has_edge(1, 3));
  EXPECT_TRUE(pma.add_edge(1, 2));
  EXPECT_EQ(pma.num_edges(), 2u);
  EXPECT_TRUE(pma.check_invariants());
}

TEST(PmaCsr, NeighborsSortedAndComplete) {
  PmaCsr pma;
  pcq::util::SplitMix64 rng(5);
  std::set<std::pair<VertexId, VertexId>> oracle;
  for (int i = 0; i < 3000; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(64));
    const auto v = static_cast<VertexId>(rng.next_below(64));
    pma.add_edge(u, v);
    oracle.insert({u, v});
  }
  for (VertexId u = 0; u < 64; ++u) {
    const auto row = pma.neighbors(u);
    EXPECT_TRUE(std::is_sorted(row.begin(), row.end()));
    std::set<VertexId> expect;
    for (const auto& [a, b] : oracle)
      if (a == u) expect.insert(b);
    EXPECT_EQ(std::set<VertexId>(row.begin(), row.end()), expect) << u;
  }
}

TEST(PmaCsr, FuzzAgainstSetOracle) {
  PmaCsr pma;
  std::set<std::pair<VertexId, VertexId>> oracle;
  pcq::util::SplitMix64 rng(7);
  for (int step = 0; step < 20'000; ++step) {
    const auto u = static_cast<VertexId>(rng.next_below(128));
    const auto v = static_cast<VertexId>(rng.next_below(128));
    if (rng.next_bool(0.65)) {
      const bool added = pma.add_edge(u, v);
      EXPECT_EQ(added, oracle.insert({u, v}).second);
    } else {
      const bool removed = pma.remove_edge(u, v);
      EXPECT_EQ(removed, oracle.erase({u, v}) > 0);
    }
    if (step % 2500 == 0) {
      ASSERT_TRUE(pma.check_invariants()) << "step " << step;
      ASSERT_EQ(pma.num_edges(), oracle.size());
    }
  }
  ASSERT_TRUE(pma.check_invariants());
  EXPECT_EQ(pma.num_edges(), oracle.size());
  for (const auto& [u, v] : oracle) EXPECT_TRUE(pma.has_edge(u, v));
}

TEST(PmaCsr, ShrinksAfterMassDeletion) {
  PmaCsr pma;
  for (VertexId i = 0; i < 4000; ++i) pma.add_edge(i / 63, i % 63);
  const std::size_t grown = pma.size_bytes();
  for (VertexId i = 0; i < 4000; ++i) pma.remove_edge(i / 63, i % 63);
  EXPECT_EQ(pma.num_edges(), 0u);
  EXPECT_LT(pma.size_bytes(), grown / 4);
  EXPECT_TRUE(pma.check_invariants());
}

TEST(PmaCsr, SkewedHubInsertions) {
  // All edges share one source: the worst case for segment balance.
  PmaCsr pma;
  for (VertexId v = 0; v < 5000; ++v) EXPECT_TRUE(pma.add_edge(7, v));
  EXPECT_EQ(pma.num_edges(), 5000u);
  EXPECT_EQ(pma.neighbors(7).size(), 5000u);
  EXPECT_TRUE(pma.check_invariants());
}

// Regression: remove_edge used to rebalance only on the global
// quarter-density shrink, so clustered deletions could drain a window far
// below its minimum density (and leave the root in the gap between the
// shrink trigger and the root bound) without any redistribution. The
// low-density window walk must keep the structure consistent and the
// drained region fully usable for re-insertion.
TEST(PmaCsr, ClusteredDeletionRebalances) {
  PmaCsr pma;
  // ~60 rows of 100 neighbours; rows 20-39 will be fully drained, which
  // concentrates the deletions in a contiguous key range (one region of
  // segments) while the global density stays above the shrink trigger.
  for (VertexId u = 0; u < 60; ++u)
    for (VertexId v = 0; v < 100; ++v) ASSERT_TRUE(pma.add_edge(u, v));
  for (VertexId u = 20; u < 40; ++u)
    for (VertexId v = 0; v < 100; ++v) ASSERT_TRUE(pma.remove_edge(u, v));
  EXPECT_EQ(pma.num_edges(), 4000u);
  ASSERT_TRUE(pma.check_invariants());
  for (VertexId u = 0; u < 60; ++u) {
    const bool drained = u >= 20 && u < 40;
    EXPECT_EQ(pma.neighbors(u).size(), drained ? 0u : 100u) << u;
  }
  // The drained key range must still route inserts correctly.
  for (VertexId u = 20; u < 40; ++u) {
    for (VertexId v = 0; v < 50; ++v) ASSERT_TRUE(pma.add_edge(u, v)) << u;
  }
  EXPECT_EQ(pma.num_edges(), 5000u);
  EXPECT_TRUE(pma.check_invariants());
}

TEST(PmaCsr, DrainToSparseKeepsDensityBounds) {
  // Delete all but a sliver, in key order (the pattern that starves leading
  // windows), crossing the global shrink threshold several times. Every
  // intermediate structure must stay consistent and queryable.
  PmaCsr pma;
  for (VertexId i = 0; i < 6000; ++i)
    ASSERT_TRUE(pma.add_edge(i / 75, i % 75));
  std::size_t removed = 0;
  for (VertexId i = 0; i < 6000; ++i) {
    if (i % 40 == 39) continue;  // survivors spread across the key space
    ASSERT_TRUE(pma.remove_edge(i / 75, i % 75)) << i;
    if (++removed % 500 == 0) {
      ASSERT_TRUE(pma.check_invariants()) << i;
    }
  }
  ASSERT_TRUE(pma.check_invariants());
  EXPECT_EQ(pma.num_edges(), 150u);
  for (VertexId i = 0; i < 6000; ++i)
    EXPECT_EQ(pma.has_edge(i / 75, i % 75), i % 40 == 39) << i;
}

}  // namespace
}  // namespace pcq::csr
