// Tests for the pcq::obs span tracer: ring recording, wrap/loss
// accounting under concurrent writers, collection ordering, and the
// Chrome trace JSON export. The compile-time OFF proof lives in
// obs_trace_off_check.cpp (a compile-only TU with PCQ_TRACE_ENABLED=0).
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace {

using pcq::obs::CollectedSpan;
using pcq::obs::TraceStats;

static_assert(pcq::obs::kTraceCompiledIn,
              "the test suite builds with the tracer compiled in");
static_assert(std::is_empty_v<pcq::obs::NullTraceScope>,
              "the OFF-build scope type must carry no state");

/// Every test starts from a clean, enabled tracer and leaves it disabled.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pcq::obs::reset_trace();
    pcq::obs::set_trace_enabled(true);
  }
  void TearDown() override {
    pcq::obs::set_trace_enabled(false);
    pcq::obs::reset_trace();
  }
};

TEST_F(TraceTest, DisabledScopeRecordsNothing) {
  pcq::obs::set_trace_enabled(false);
  { PCQ_TRACE_SCOPE("should-not-appear", 7); }
  pcq::obs::record_span("also-not", 1, 2, 3);
  EXPECT_TRUE(pcq::obs::collect_trace().empty());
}

TEST_F(TraceTest, ScopeRecordsNameArgAndOrderedTimes) {
  { PCQ_TRACE_SCOPE("unit-span", 42); }
  const auto spans = pcq::obs::collect_trace();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "unit-span");
  EXPECT_EQ(spans[0].arg, 42u);
  EXPECT_LE(spans[0].start_ns, spans[0].end_ns);
}

TEST_F(TraceTest, ExplicitRecordSpanRoundTrips) {
  pcq::obs::record_span("explicit", 100, 250, 9);
  const auto spans = pcq::obs::collect_trace();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "explicit");
  EXPECT_EQ(spans[0].start_ns, 100u);
  EXPECT_EQ(spans[0].end_ns, 250u);
}

TEST_F(TraceTest, ConcurrentWritersWrapWithExactLossAccounting) {
  // 8 writers, each overflowing its own ring: written must exceed the
  // per-ring capacity so wrap-dropping kicks in, and at quiescence the
  // books must balance exactly: written == collected + dropped.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread =
      pcq::obs::detail::TraceRing::kCapacity + 1500;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        pcq::obs::record_span("load", i, i + 1,
                              static_cast<std::uint64_t>(t));
    });
  }
  for (auto& w : writers) w.join();

  const auto spans = pcq::obs::collect_trace();
  const TraceStats stats = pcq::obs::trace_stats();
  EXPECT_EQ(stats.written, kThreads * kPerThread);
  EXPECT_EQ(stats.written, spans.size() + stats.dropped);
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GE(stats.threads, static_cast<std::uint64_t>(kThreads));

  // Every ring keeps its newest events: with per-thread args 0..N-1, the
  // collected set per writer must be the contiguous tail.
  std::vector<std::uint64_t> max_start(kThreads, 0);
  std::vector<std::uint64_t> count(kThreads, 0);
  for (const CollectedSpan& s : spans) {
    ASSERT_LT(s.arg, static_cast<std::uint64_t>(kThreads));
    max_start[s.arg] = std::max(max_start[s.arg], s.start_ns);
    ++count[s.arg];
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(max_start[t], kPerThread - 1) << "writer " << t;
    EXPECT_EQ(count[t], pcq::obs::detail::TraceRing::kCapacity)
        << "writer " << t;
  }
}

TEST_F(TraceTest, CollectedSpansAreTimeOrderedPerThread) {
  constexpr int kThreads = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < 500; ++i) PCQ_TRACE_SCOPE("ordered", i);
    });
  }
  for (auto& w : writers) w.join();
  const auto spans = pcq::obs::collect_trace();
  ASSERT_EQ(spans.size(), kThreads * 500u);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].tid != spans[i - 1].tid) {
      EXPECT_GT(spans[i].tid, spans[i - 1].tid);  // lanes grouped
      continue;
    }
    EXPECT_GE(spans[i].start_ns, spans[i - 1].start_ns);
  }
}

TEST_F(TraceTest, ChromeTraceJsonIsStructurallyValid) {
  pcq::obs::record_span("phase.a", 1000, 3000, 5);
  pcq::obs::record_span("needs \"escaping\" \\ here", 4000, 5000);
  std::ostringstream out;
  pcq::obs::write_chrome_trace(out);
  const std::string json = out.str();

  // Shape: a single object holding the traceEvents array, one metadata
  // event plus one complete event per span.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"phase.a\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.000"), std::string::npos);  // 2000 ns -> us
  EXPECT_NE(json.find("\"arg\":5"), std::string::npos);
  // Quotes and backslashes in names must come out escaped.
  EXPECT_NE(json.find("needs \\\"escaping\\\" \\\\ here"),
            std::string::npos);
  // Balanced delimiters outside strings — cheap structural validity check
  // mirroring what the CLI test verifies with python3 -m json.tool.
  int depth = 0;
  bool in_string = false, escaped = false;
  for (const char c : json) {
    if (escaped) { escaped = false; continue; }
    if (c == '\\') { escaped = true; continue; }
    if (c == '"') { in_string = !in_string; continue; }
    if (in_string) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(TraceTest, PhaseTableAggregatesByName) {
  pcq::obs::record_span("alpha", 0, 1000);
  pcq::obs::record_span("alpha", 2000, 4000);
  pcq::obs::record_span("beta", 0, 500);
  std::ostringstream out;
  pcq::obs::write_phase_table(out);
  const std::string table = out.str();
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
  EXPECT_NE(table.find("spans on"), std::string::npos);
}

TEST_F(TraceTest, ResetForgetsSpansAndAccounting) {
  for (int i = 0; i < 10; ++i) PCQ_TRACE_SCOPE("gone");
  pcq::obs::reset_trace();
  EXPECT_TRUE(pcq::obs::collect_trace().empty());
  const TraceStats stats = pcq::obs::trace_stats();
  EXPECT_EQ(stats.written, 0u);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST_F(TraceTest, CollectorRunsConcurrentlyWithWriters) {
  // Drain while a writer is live: no crash, no torn reads surfacing as
  // null names, and every drained span is well-formed. (TSan builds make
  // this a real seqlock race test.)
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      pcq::obs::record_span("live", i, i + 1, i);
      ++i;
    }
  });
  for (int round = 0; round < 50; ++round) {
    const auto spans = pcq::obs::collect_trace();
    for (const CollectedSpan& s : spans) {
      ASSERT_NE(s.name, nullptr);
      ASSERT_LE(s.start_ns, s.end_ns);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

}  // namespace
