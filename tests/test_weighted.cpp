#include "csr/weighted.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace pcq::csr {
namespace {

using graph::VertexId;
using graph::WeightedEdge;

std::vector<WeightedEdge> sorted_random_weighted(std::size_t m, VertexId n,
                                                 std::uint64_t seed) {
  pcq::util::SplitMix64 rng(seed);
  std::vector<WeightedEdge> edges(m);
  for (auto& e : edges)
    e = {static_cast<VertexId>(rng.next_below(n)),
         static_cast<VertexId>(rng.next_below(n)),
         static_cast<std::uint32_t>(rng.next_below(1000))};
  std::sort(edges.begin(), edges.end());
  // Drop (u, v) duplicates so edge -> weight is a function.
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const WeightedEdge& a, const WeightedEdge& b) {
                            return a.u == b.u && a.v == b.v;
                          }),
              edges.end());
  return edges;
}

TEST(WeightedCsr, SmallKnownGraph) {
  const std::vector<WeightedEdge> edges{
      {0, 1, 10}, {0, 3, 30}, {2, 0, 5}, {2, 2, 7}};
  const WeightedCsr csr = WeightedCsr::build_from_sorted(edges, 4, 2);
  EXPECT_EQ(csr.num_nodes(), 4u);
  EXPECT_EQ(csr.num_edges(), 4u);
  EXPECT_EQ(csr.degree(0), 2u);
  EXPECT_EQ(csr.weights(0)[0], 10u);
  EXPECT_EQ(csr.weights(0)[1], 30u);
  std::uint32_t w = 0;
  EXPECT_TRUE(csr.edge_weight(2, 2, &w));
  EXPECT_EQ(w, 7u);
  EXPECT_FALSE(csr.edge_weight(1, 0, &w));
}

TEST(WeightedCsr, WeightsAlignWithNeighbors) {
  const auto edges = sorted_random_weighted(5000, 200, 3);
  const WeightedCsr csr = WeightedCsr::build_from_sorted(edges, 200, 4);
  for (const WeightedEdge& e : edges) {
    const auto nbrs = csr.neighbors(e.u);
    const auto ws = csr.weights(e.u);
    ASSERT_EQ(nbrs.size(), ws.size());
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), e.v);
    ASSERT_NE(it, nbrs.end());
    EXPECT_EQ(ws[static_cast<std::size_t>(it - nbrs.begin())], e.w);
  }
}

TEST(WeightedCsr, ThreadCountInvariance) {
  const auto edges = sorted_random_weighted(10'000, 300, 5);
  const WeightedCsr ref = WeightedCsr::build_from_sorted(edges, 300, 1);
  for (int p : {2, 4, 8, 64}) {
    const WeightedCsr got = WeightedCsr::build_from_sorted(edges, 300, p);
    EXPECT_TRUE(std::equal(got.weight_array().begin(), got.weight_array().end(),
                           ref.weight_array().begin()))
        << "p=" << p;
  }
}

TEST(WeightedCsr, EmptyInput) {
  const WeightedCsr csr = WeightedCsr::build_from_sorted({}, 0, 4);
  EXPECT_EQ(csr.num_edges(), 0u);
}

TEST(BitPackedWeightedCsr, LookupsMatchPlain) {
  const auto edges = sorted_random_weighted(5000, 256, 7);
  const WeightedCsr plain = WeightedCsr::build_from_sorted(edges, 256, 4);
  const BitPackedWeightedCsr packed =
      BitPackedWeightedCsr::from_weighted_csr(plain, 4);
  ASSERT_EQ(packed.num_edges(), plain.num_edges());
  pcq::util::SplitMix64 rng(9);
  for (int i = 0; i < 2000; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(256));
    const auto v = static_cast<VertexId>(rng.next_below(256));
    std::uint32_t wp = 0, wq = 0;
    const bool in_plain = plain.edge_weight(u, v, &wp);
    const bool in_packed = packed.edge_weight(u, v, &wq);
    EXPECT_EQ(in_plain, in_packed);
    if (in_plain) {
      EXPECT_EQ(wp, wq);
    }
  }
}

TEST(BitPackedWeightedCsr, WeightWidthFollowsMaxWeight) {
  const std::vector<WeightedEdge> edges{{0, 1, 3}, {1, 0, 7}};
  const WeightedCsr plain = WeightedCsr::build_from_sorted(edges, 2, 2);
  const BitPackedWeightedCsr packed =
      BitPackedWeightedCsr::from_weighted_csr(plain, 2);
  EXPECT_EQ(packed.weight_bits(), 3u);  // max weight 7
}

TEST(BitPackedWeightedCsr, SmallerThanPlain) {
  const auto edges = sorted_random_weighted(20'000, 1 << 12, 11);
  const WeightedCsr plain =
      WeightedCsr::build_from_sorted(edges, 1 << 12, 4);
  const BitPackedWeightedCsr packed =
      BitPackedWeightedCsr::from_weighted_csr(plain, 4);
  EXPECT_LT(packed.size_bytes(), plain.size_bytes());
}

}  // namespace
}  // namespace pcq::csr
