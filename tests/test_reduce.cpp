#include "par/reduce.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "util/rng.hpp"

namespace pcq::par {
namespace {

TEST(ParallelReduce, SumMatchesAccumulate) {
  pcq::util::SplitMix64 rng(1);
  std::vector<std::uint64_t> v(100'000);
  for (auto& x : v) x = rng.next_below(1000);
  const auto expected = std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  EXPECT_EQ(parallel_reduce<std::uint64_t>(v, 0, 8), expected);
}

TEST(ParallelReduce, EmptyReturnsInit) {
  std::vector<std::uint64_t> v;
  EXPECT_EQ(parallel_reduce<std::uint64_t>(v, 42, 4), 42u);
}

TEST(ParallelReduce, MaxMonoid) {
  std::vector<std::uint64_t> v{5, 3, 99, 12, 7};
  EXPECT_EQ(parallel_reduce<std::uint64_t>(
                v, 0, 4,
                [](std::uint64_t a, std::uint64_t b) { return std::max(a, b); }),
            99u);
}

std::vector<std::uint32_t> reference_histogram(
    std::span<const std::uint32_t> keys, std::size_t buckets) {
  std::vector<std::uint32_t> h(buckets, 0);
  for (auto k : keys) ++h[k];
  return h;
}

class HistogramProperty
    : public testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(HistogramProperty, AtomicMatchesReference) {
  const auto [n, threads] = GetParam();
  pcq::util::SplitMix64 rng(n + threads);
  std::vector<std::uint32_t> keys(n);
  constexpr std::size_t kBuckets = 37;
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng.next_below(kBuckets));
  EXPECT_EQ(histogram_atomic(keys, kBuckets, threads),
            reference_histogram(keys, kBuckets));
}

TEST_P(HistogramProperty, PerThreadMatchesReference) {
  const auto [n, threads] = GetParam();
  pcq::util::SplitMix64 rng(n * 3 + threads);
  std::vector<std::uint32_t> keys(n);
  constexpr std::size_t kBuckets = 37;
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng.next_below(kBuckets));
  EXPECT_EQ(histogram_per_thread(keys, kBuckets, threads),
            reference_histogram(keys, kBuckets));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HistogramProperty,
    testing::Combine(testing::Values<std::size_t>(0, 1, 37, 1000, 50'000),
                     testing::Values(1, 2, 4, 8, 16)));

TEST(Histogram, SkewedKeysAllInOneBucket) {
  std::vector<std::uint32_t> keys(10'000, 5);
  const auto h = histogram_atomic(keys, 10, 8);
  EXPECT_EQ(h[5], 10'000u);
  for (std::size_t b = 0; b < 10; ++b) {
    if (b != 5) {
      EXPECT_EQ(h[b], 0u);
    }
  }
}

}  // namespace
}  // namespace pcq::par
