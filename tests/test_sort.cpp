#include "par/sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <tuple>
#include <vector>

#include "graph/types.hpp"
#include "util/rng.hpp"

namespace pcq::par {
namespace {

std::vector<std::uint64_t> random_values(std::size_t n, std::uint64_t seed) {
  pcq::util::SplitMix64 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next();
  return v;
}

TEST(ParallelSort, EmptyAndTiny) {
  std::vector<std::uint64_t> empty;
  parallel_sort(std::span<std::uint64_t>(empty), 4);
  EXPECT_TRUE(empty.empty());

  std::vector<std::uint64_t> v{3, 1, 2};
  parallel_sort(std::span<std::uint64_t>(v), 4);
  EXPECT_EQ(v, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(ParallelSort, AlreadySorted) {
  std::vector<std::uint64_t> v(10'000);
  std::iota(v.begin(), v.end(), 0);
  auto expected = v;
  parallel_sort(std::span<std::uint64_t>(v), 8);
  EXPECT_EQ(v, expected);
}

TEST(ParallelSort, ReverseSorted) {
  std::vector<std::uint64_t> v(10'000);
  std::iota(v.rbegin(), v.rend(), 0);
  parallel_sort(std::span<std::uint64_t>(v), 8);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(ParallelSort, ManyDuplicates) {
  pcq::util::SplitMix64 rng(3);
  std::vector<std::uint64_t> v(50'000);
  for (auto& x : v) x = rng.next_below(10);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  parallel_sort(std::span<std::uint64_t>(v), 8);
  EXPECT_EQ(v, expected);
}

TEST(ParallelSort, CustomComparator) {
  auto v = random_values(20'000, 7);
  auto expected = v;
  std::sort(expected.begin(), expected.end(), std::greater<>{});
  parallel_sort(std::span<std::uint64_t>(v), 4, std::greater<>{});
  EXPECT_EQ(v, expected);
}

TEST(ParallelSort, EdgeStructOrdering) {
  using graph::Edge;
  pcq::util::SplitMix64 rng(11);
  std::vector<Edge> edges(30'000);
  for (auto& e : edges)
    e = {static_cast<graph::VertexId>(rng.next_below(100)),
         static_cast<graph::VertexId>(rng.next_below(100))};
  auto expected = edges;
  std::sort(expected.begin(), expected.end());
  parallel_sort(std::span<Edge>(edges), 8);
  EXPECT_EQ(edges, expected);
}

TEST(ParallelSort, TemporalEdgeTimeSourceOrder) {
  using graph::TemporalEdge;
  using graph::TimeSourceOrder;
  pcq::util::SplitMix64 rng(13);
  std::vector<TemporalEdge> evs(30'000);
  for (auto& e : evs)
    e = {static_cast<graph::VertexId>(rng.next_below(50)),
         static_cast<graph::VertexId>(rng.next_below(50)),
         static_cast<graph::TimeFrame>(rng.next_below(20))};
  auto expected = evs;
  std::sort(expected.begin(), expected.end(), TimeSourceOrder{});
  parallel_sort(std::span<TemporalEdge>(evs), 8, TimeSourceOrder{});
  EXPECT_EQ(evs, expected);
}

class ParallelSortProperty
    : public testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(ParallelSortProperty, MatchesStdSort) {
  const auto [n, threads] = GetParam();
  auto v = random_values(n, 77 + n * 31 + threads);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  parallel_sort(std::span<std::uint64_t>(v), threads);
  EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelSortProperty,
    testing::Combine(testing::Values<std::size_t>(0, 1, 2, 100, 2047, 2048,
                                                  2049, 10'000, 131'072),
                     testing::Values(1, 2, 3, 4, 8, 16, 64)));

}  // namespace
}  // namespace pcq::par
