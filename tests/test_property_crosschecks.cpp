// Seed-parameterized cross-structure property suite.
//
// For a sweep of generator seeds (i.e. structurally different graphs),
// asserts the global invariants that tie the library together:
//   * every static structure answers identically,
//   * every temporal structure answers identically,
//   * compression is lossless (round trips through the packed forms),
//   * derived quantities (degree sums, component counts) are consistent
//     across independent implementations.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "algos/components.hpp"
#include "csr/builder.hpp"
#include "csr/pcsr.hpp"
#include "graph/baselines.hpp"
#include "graph/generators.hpp"
#include "graph/k2tree.hpp"
#include "graph/webgraph.hpp"
#include "tcsr/cas_index.hpp"
#include "tcsr/contact_index.hpp"
#include "tcsr/edgelog.hpp"
#include "tcsr/tcsr.hpp"
#include "util/rng.hpp"

namespace pcq {
namespace {

using graph::EdgeList;
using graph::TemporalEdgeList;
using graph::TimeFrame;
using graph::VertexId;

class StaticCrossCheck : public testing::TestWithParam<std::uint64_t> {};

TEST_P(StaticCrossCheck, FiveStructuresOneTruth) {
  const std::uint64_t seed = GetParam();
  constexpr VertexId kN = 300;
  EdgeList list = graph::rmat(kN, 6000, 0.57, 0.19, 0.19, seed, 4);
  list.sort(4);
  list.dedupe();

  const csr::CsrGraph plain = csr::build_csr_from_sorted(list, kN, 4);
  const csr::BitPackedCsr packed = csr::BitPackedCsr::from_csr(plain, 4);
  const graph::GapZetaGraph zeta =
      graph::GapZetaGraph::build_from_sorted(list, kN, 3, 4);
  const graph::K2Tree k2 = graph::K2Tree::build(list, kN, 4, 4);
  const csr::PmaCsr pma(list);
  const graph::AdjacencyListGraph adj(list, kN);

  // Degree sums agree everywhere.
  std::uint64_t deg_sum = 0;
  for (VertexId u = 0; u < kN; ++u) deg_sum += plain.degree(u);
  EXPECT_EQ(deg_sum, list.size());
  EXPECT_EQ(pma.num_edges(), list.size());
  EXPECT_EQ(k2.num_edges(), list.size());

  util::SplitMix64 rng(seed ^ 0xabcdef);
  for (int i = 0; i < 400; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(kN));
    const auto v = static_cast<VertexId>(rng.next_below(kN));
    const bool expect = adj.has_edge(u, v);
    ASSERT_EQ(plain.has_edge(u, v), expect);
    ASSERT_EQ(packed.has_edge(u, v), expect);
    ASSERT_EQ(zeta.has_edge(u, v), expect);
    ASSERT_EQ(k2.has_edge(u, v), expect);
    ASSERT_EQ(pma.has_edge(u, v), expect);
  }
  for (VertexId u = 0; u < kN; u += 17) {
    const auto row = plain.neighbors(u);
    const std::vector<VertexId> expect(row.begin(), row.end());
    ASSERT_EQ(packed.neighbors(u), expect);
    ASSERT_EQ(zeta.neighbors(u), expect);
    ASSERT_EQ(k2.neighbors(u), expect);
    ASSERT_EQ(pma.neighbors(u), expect);
  }
}

TEST_P(StaticCrossCheck, CompressionIsLossless) {
  const std::uint64_t seed = GetParam();
  EdgeList list = graph::erdos_renyi(200, 3000, seed, 4);
  list.sort(4);
  list.dedupe();
  const csr::CsrGraph plain = csr::build_csr_from_sorted(list, 200, 4);
  const csr::CsrGraph back =
      csr::BitPackedCsr::from_csr(plain, 4).to_csr();
  EXPECT_TRUE(std::equal(back.offsets().begin(), back.offsets().end(),
                         plain.offsets().begin()));
  EXPECT_TRUE(std::equal(back.columns().begin(), back.columns().end(),
                         plain.columns().begin()));
}

TEST_P(StaticCrossCheck, ComponentCountsConsistent) {
  const std::uint64_t seed = GetParam();
  EdgeList list = graph::erdos_renyi(250, 300, seed, 4);  // sparse
  list.symmetrize();
  list.sort(4);
  list.dedupe();
  const csr::CsrGraph g = csr::build_csr_from_sorted(list, 250, 4);
  EXPECT_EQ(algos::connected_components_label_prop(g, 4),
            algos::connected_components_union_find(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaticCrossCheck,
                         testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

class TemporalCrossCheck : public testing::TestWithParam<std::uint64_t> {};

TEST_P(TemporalCrossCheck, SixStructuresOneTruth) {
  const std::uint64_t seed = GetParam();
  constexpr VertexId kN = 80;
  constexpr TimeFrame kT = 10;
  const TemporalEdgeList events =
      seed % 2 == 0
          ? graph::evolving_graph(kN, 3000, kT, seed, 4)
          : graph::evolving_graph_churn(kN, 1500, kT, 150, 0.4, seed);

  const auto tcsr = tcsr::DifferentialTcsr::build(events, kN, kT, 4);
  const auto cas = tcsr::CasIndex::build(events, kN, 4);
  const auto contact = tcsr::ContactIndex::build(events, kN, kT, 4);
  const auto edgelog = tcsr::EdgeLog::build(events, kN, kT, 4);

  util::SplitMix64 rng(seed * 31 + 7);
  for (int i = 0; i < 400; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(kN));
    const auto v = static_cast<VertexId>(rng.next_below(kN));
    const auto t = static_cast<TimeFrame>(rng.next_below(kT));
    const bool expect = tcsr.edge_active(u, v, t);
    ASSERT_EQ(cas.edge_active(u, v, t), expect) << u << "," << v << "@" << t;
    ASSERT_EQ(contact.edge_active(u, v, t), expect);
    ASSERT_EQ(edgelog.edge_active(u, v, t), expect);
  }
  for (VertexId u = 0; u < kN; u += 13) {
    for (TimeFrame t = 0; t < kT; t += 4) {
      const auto expect = tcsr.neighbors_at(u, t);
      ASSERT_EQ(cas.neighbors_at(u, t), expect);
      ASSERT_EQ(contact.neighbors_at(u, t), expect);
      ASSERT_EQ(edgelog.neighbors_at(u, t), expect);
    }
  }
}

TEST_P(TemporalCrossCheck, SnapshotsEqualAccumulatedDeltas) {
  const std::uint64_t seed = GetParam();
  const TemporalEdgeList events = graph::evolving_graph(60, 2000, 8, seed, 4);
  const auto tcsr = tcsr::DifferentialTcsr::build(events, 60, 8, 4);
  const auto snaps = tcsr.all_snapshots(4);
  // Edge count of each snapshot equals what per-frame reconstruction says.
  for (TimeFrame t = 0; t < 8; ++t) {
    const auto snap = tcsr.snapshot_at(t, 4);
    ASSERT_EQ(snap.num_edges(), snaps[t].size()) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TemporalCrossCheck,
                         testing::Values(2u, 3u, 5u, 7u, 11u, 13u));

}  // namespace
}  // namespace pcq
