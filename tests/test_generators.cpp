#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "algos/stats.hpp"
#include "csr/builder.hpp"

namespace pcq::graph {
namespace {

TEST(ErdosRenyi, CountsAndBounds) {
  const EdgeList g = erdos_renyi(100, 5000, 1, 4);
  EXPECT_EQ(g.size(), 5000u);
  for (const Edge& e : g.edges()) {
    EXPECT_LT(e.u, 100u);
    EXPECT_LT(e.v, 100u);
    EXPECT_NE(e.u, e.v);
  }
}

TEST(ErdosRenyi, DeterministicAcrossThreadCounts) {
  const EdgeList a = erdos_renyi(1000, 20'000, 7, 1);
  const EdgeList b = erdos_renyi(1000, 20'000, 7, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.edges()[i], b.edges()[i]);
}

TEST(ErdosRenyi, DifferentSeedsDiffer) {
  const EdgeList a = erdos_renyi(1000, 1000, 1, 4);
  const EdgeList b = erdos_renyi(1000, 1000, 2, 4);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a.edges()[i] != b.edges()[i]) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Rmat, CountsAndBounds) {
  const EdgeList g = rmat(1 << 10, 10'000, 0.57, 0.19, 0.19, 3, 4);
  EXPECT_EQ(g.size(), 10'000u);
  for (const Edge& e : g.edges()) {
    EXPECT_LT(e.u, 1u << 10);
    EXPECT_LT(e.v, 1u << 10);
    EXPECT_NE(e.u, e.v);
  }
}

TEST(Rmat, NonPowerOfTwoNodeCount) {
  const EdgeList g = rmat(1000, 5000, 0.57, 0.19, 0.19, 5, 4);
  for (const Edge& e : g.edges()) {
    EXPECT_LT(e.u, 1000u);
    EXPECT_LT(e.v, 1000u);
  }
}

TEST(Rmat, SkewedDegreesUnlikeUniform) {
  // R-MAT with social skew must concentrate edges far more than G(n, m):
  // compare max degree and Gini coefficient.
  const int n = 1 << 12;
  const std::size_t m = 50'000;
  EdgeList r = rmat(n, m, 0.57, 0.19, 0.19, 11, 4);
  EdgeList e = erdos_renyi(n, m, 11, 4);
  r.sort(4);
  e.sort(4);
  const auto stats_r =
      pcq::algos::degree_stats(csr::build_csr_from_sorted(r, n, 4), 4);
  const auto stats_e =
      pcq::algos::degree_stats(csr::build_csr_from_sorted(e, n, 4), 4);
  EXPECT_GT(stats_r.max, stats_e.max * 3);
  EXPECT_GT(stats_r.gini, stats_e.gini + 0.1);
}

TEST(Rmat, DeterministicAcrossThreadCounts) {
  const EdgeList a = rmat(512, 10'000, 0.57, 0.19, 0.19, 9, 1);
  const EdgeList b = rmat(512, 10'000, 0.57, 0.19, 0.19, 9, 16);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.edges()[i], b.edges()[i]);
}

TEST(BarabasiAlbert, CountsAndPreferentialSkew) {
  const EdgeList g = barabasi_albert(2000, 3, 13);
  EXPECT_EQ(g.size(), 1u + 3u * 1998u);
  EXPECT_LE(g.num_nodes(), 2000u);
  for (const Edge& e : g.edges()) EXPECT_NE(e.u, e.v);
  // Early nodes accumulate degree: node 0/1 should beat the median node.
  std::vector<int> degree(2000, 0);
  for (const Edge& e : g.edges()) {
    ++degree[e.u];
    ++degree[e.v];
  }
  EXPECT_GT(degree[0] + degree[1], 40);
}

TEST(WattsStrogatz, BetaZeroIsRingLattice) {
  const EdgeList g = watts_strogatz(100, 2, 0.0, 1, 4);
  EXPECT_EQ(g.size(), 200u);
  for (const Edge& e : g.edges()) {
    const unsigned fwd = (e.v + 100 - e.u) % 100;
    EXPECT_TRUE(fwd == 1 || fwd == 2) << e.u << "->" << e.v;
  }
}

TEST(WattsStrogatz, BetaOneRewiresMostEdges) {
  const EdgeList g = watts_strogatz(1000, 2, 1.0, 2, 4);
  std::size_t lattice_edges = 0;
  for (const Edge& e : g.edges()) {
    const unsigned fwd = (e.v + 1000 - e.u) % 1000;
    if (fwd == 1 || fwd == 2) ++lattice_edges;
  }
  EXPECT_LT(lattice_edges, g.size() / 10);
}

TEST(PlantedPartition, MostEdgesIntraBlock) {
  const EdgeList g = planted_partition(1000, 20'000, 10, 0.9, 7, 4);
  EXPECT_EQ(g.size(), 20'000u);
  std::size_t intra = 0;
  for (const Edge& e : g.edges()) {
    EXPECT_LT(e.u, 1000u);
    EXPECT_NE(e.u, e.v);
    if (e.u % 10 == e.v % 10) ++intra;
  }
  // p_intra = 0.9 plus the ~10% of random edges that land intra anyway.
  EXPECT_GT(intra, g.size() * 85 / 100);
  EXPECT_LT(intra, g.size() * 97 / 100);
}

TEST(PlantedPartition, ZeroIntraIsNearUniform) {
  const EdgeList g = planted_partition(1000, 20'000, 10, 0.0, 9, 4);
  std::size_t intra = 0;
  for (const Edge& e : g.edges())
    if (e.u % 10 == e.v % 10) ++intra;
  EXPECT_NEAR(static_cast<double>(intra), g.size() * 0.1, g.size() * 0.02);
}

TEST(PlantedPartition, DeterministicAcrossThreads) {
  const EdgeList a = planted_partition(500, 5000, 5, 0.8, 11, 1);
  const EdgeList b = planted_partition(500, 5000, 5, 0.8, 11, 8);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.edges()[i], b.edges()[i]);
}

TEST(EvolvingGraph, SortedBoundedAndDeterministic) {
  const TemporalEdgeList a = evolving_graph(500, 20'000, 16, 4, 1);
  EXPECT_EQ(a.size(), 20'000u);
  EXPECT_TRUE(a.is_sorted());
  EXPECT_LE(a.num_frames(), 16u);
  for (const TemporalEdge& e : a.edges()) {
    EXPECT_LT(e.u, 500u);
    EXPECT_LT(e.v, 500u);
    EXPECT_LT(e.t, 16u);
  }
  const TemporalEdgeList b = evolving_graph(500, 20'000, 16, 4, 8);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.edges()[i], b.edges()[i]);
}

TEST(Presets, FourPaperGraphs) {
  const auto& presets = paper_presets();
  ASSERT_EQ(presets.size(), 4u);
  EXPECT_EQ(presets[0].name, "LiveJournal");
  EXPECT_EQ(presets[0].nodes, 4'847'571u);
  EXPECT_EQ(presets[0].edges, 68'993'773u);
  EXPECT_EQ(presets[2].name, "Orkut");
  EXPECT_EQ(presets[2].edges, 117'185'083u);
}

TEST(Presets, LookupByNameCaseInsensitive) {
  EXPECT_EQ(preset_by_name("pokec").nodes, 1'632'803u);
  EXPECT_EQ(preset_by_name("WEBNOTREDAME").edges, 1'497'134u);
}

TEST(PresetsDeathTest, UnknownNameAborts) {
  EXPECT_DEATH(preset_by_name("friendster"), "unknown graph preset");
}

TEST(Presets, ScaledInstantiationIsSortedAndSized) {
  const GraphPreset& p = preset_by_name("WebNotreDame");
  const EdgeList g = make_preset_graph(p, 0.01, 42, 4);
  EXPECT_TRUE(g.is_sorted());
  EXPECT_NEAR(static_cast<double>(g.size()), p.edges * 0.01, 2.0);
  EXPECT_LE(g.num_nodes(), static_cast<VertexId>(p.nodes * 0.01) + 1);
}

}  // namespace
}  // namespace pcq::graph
