#include "algos/communities.hpp"

#include <gtest/gtest.h>

#include <set>

#include "csr/builder.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace pcq::algos {
namespace {

using graph::EdgeList;
using graph::VertexId;

csr::CsrGraph symmetric_csr(EdgeList g, VertexId n) {
  g.symmetrize();
  g.sort(4);
  g.dedupe();
  g.remove_self_loops();
  return csr::build_csr_from_sorted(g, n, 4);
}

/// Two dense cliques joined by one bridge edge.
csr::CsrGraph two_cliques(VertexId size) {
  EdgeList g;
  for (VertexId u = 0; u < size; ++u)
    for (VertexId v = u + 1; v < size; ++v) g.push_back({u, v});
  for (VertexId u = size; u < 2 * size; ++u)
    for (VertexId v = u + 1; v < 2 * size; ++v) g.push_back({u, v});
  g.push_back({0, size});  // bridge
  return symmetric_csr(std::move(g), 2 * size);
}

TEST(Communities, TwoCliquesSeparate) {
  const csr::CsrGraph g = two_cliques(12);
  const auto result = label_propagation_communities(g, 50, 4);
  // Each clique converges to one label; the two labels differ.
  const VertexId a = result.label[1];
  const VertexId b = result.label[13];
  EXPECT_NE(a, b);
  for (VertexId v = 0; v < 12; ++v) EXPECT_EQ(result.label[v], a) << v;
  for (VertexId v = 12; v < 24; ++v) EXPECT_EQ(result.label[v], b) << v;
  EXPECT_EQ(result.communities, 2u);
}

TEST(Communities, ModularityOfPlantedPartitionIsHigh) {
  const csr::CsrGraph g = two_cliques(10);
  const auto result = label_propagation_communities(g, 50, 4);
  EXPECT_GT(modularity(g, result.label), 0.4);
}

TEST(Communities, SingletonLabelingHasLowModularity) {
  const csr::CsrGraph g = two_cliques(10);
  std::vector<VertexId> singletons(g.num_nodes());
  for (VertexId v = 0; v < g.num_nodes(); ++v) singletons[v] = v;
  EXPECT_LT(modularity(g, singletons), 0.05);
}

TEST(Communities, OneCommunityLabelingHasZeroModularity) {
  const csr::CsrGraph g = two_cliques(10);
  const std::vector<VertexId> all_zero(g.num_nodes(), 0);
  EXPECT_NEAR(modularity(g, all_zero), 0.0, 1e-12);
}

TEST(Communities, IsolatedNodesKeepOwnLabels) {
  const csr::CsrGraph g = symmetric_csr(EdgeList({{0, 1}}), 5);
  const auto result = label_propagation_communities(g, 10, 4);
  EXPECT_EQ(result.label[2], 2u);
  EXPECT_EQ(result.label[3], 3u);
  EXPECT_EQ(result.label[0], result.label[1]);
}

TEST(Communities, ConvergesWithinRoundBudget) {
  const csr::CsrGraph g = symmetric_csr(
      graph::watts_strogatz(500, 4, 0.05, 13, 4), 500);
  const auto result = label_propagation_communities(g, 100, 4);
  EXPECT_LT(result.rounds, 100);
  EXPECT_GT(result.communities, 1u);
  EXPECT_LT(result.communities, 500u);
}

TEST(Communities, ThreadCountInvariance) {
  const csr::CsrGraph g = two_cliques(8);
  const auto ref = label_propagation_communities(g, 50, 1);
  for (int p : {2, 4, 8})
    EXPECT_EQ(label_propagation_communities(g, 50, p).label, ref.label)
        << "p=" << p;
}

TEST(Communities, RecoversPlantedPartition) {
  // 4 blocks of 50 nodes, 90% intra edges: LPA must land a labeling whose
  // modularity is close to the planted structure's (~Q = 0.9 - 1/4 norm).
  const csr::CsrGraph g = symmetric_csr(
      graph::planted_partition(200, 6000, 4, 0.9, 17, 4), 200);
  const auto result = label_propagation_communities(g, 100, 4);
  EXPECT_GT(modularity(g, result.label), 0.4);

  // The planted labeling itself scores high, and LPA should be within
  // striking distance of it.
  std::vector<VertexId> planted(200);
  for (VertexId v = 0; v < 200; ++v) planted[v] = v % 4;
  const double planted_q = modularity(g, planted);
  EXPECT_GT(planted_q, 0.5);
  EXPECT_GT(modularity(g, result.label), planted_q * 0.7);
}

TEST(Communities, EmptyGraph) {
  const auto result = label_propagation_communities(csr::CsrGraph{}, 10, 4);
  EXPECT_TRUE(result.label.empty());
  EXPECT_EQ(result.communities, 0u);
}

}  // namespace
}  // namespace pcq::algos
