// pcq::dyn::HybridGraph — differential tests against DynamicCsr (the
// single-threaded reference with the identical parity rule) and against a
// std::set oracle, across mutation batches AND compactions; plus snapshot
// isolation and concurrent readers racing writers/compaction (TSan).
#include "dyn/hybrid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "csr/builder.hpp"
#include "csr/dynamic.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace pcq::dyn {
namespace {

using graph::Edge;
using graph::VertexId;
using pcq::util::SplitMix64;

constexpr VertexId kNodes = 512;

csr::BitPackedCsr make_base(std::uint64_t seed, std::size_t edges = 10'000) {
  graph::EdgeList list =
      graph::rmat(kNodes, edges, 0.57, 0.19, 0.19, seed, 2);
  list.sort(2);
  list.dedupe();
  return csr::build_bitpacked_csr_from_sorted(list, kNodes, 2);
}

std::set<std::pair<VertexId, VertexId>> edge_set(const csr::BitPackedCsr& g) {
  std::set<std::pair<VertexId, VertexId>> out;
  for (VertexId u = 0; u < g.num_nodes(); ++u)
    for (VertexId v : g.neighbors(u)) out.insert({u, v});
  return out;
}

/// Full-surface comparison: has_edge, degree, neighbors, num_edges.
void expect_matches(const HybridGraph& hybrid,
                    const std::set<std::pair<VertexId, VertexId>>& oracle) {
  const HybridGraph::View view = hybrid.view();
  ASSERT_TRUE(view.valid());
  ASSERT_TRUE(view.delta().check_invariants());
  ASSERT_EQ(view.num_edges(), oracle.size());
  for (VertexId u = 0; u < kNodes; ++u) {
    std::vector<VertexId> expect;
    for (auto it = oracle.lower_bound({u, 0});
         it != oracle.end() && it->first == u; ++it)
      expect.push_back(it->second);
    ASSERT_EQ(view.neighbors(u), expect) << "row " << u;
    ASSERT_EQ(view.degree(u), expect.size()) << "row " << u;
  }
}

TEST(HybridGraph, StartsAsBase) {
  HybridGraph hybrid(make_base(11));
  const auto oracle = edge_set(hybrid.view().base());
  EXPECT_EQ(hybrid.delta_keys(), 0u);
  expect_matches(hybrid, oracle);
}

TEST(HybridGraph, AddAndRemoveBatches) {
  HybridGraph hybrid(make_base(12));
  auto oracle = edge_set(hybrid.view().base());

  std::vector<Edge> adds = {{1, 2}, {1, 3}, {100, 7}, {511, 0}};
  std::vector<std::uint8_t> changed;
  const std::size_t added = hybrid.add_edges(adds, 2, &changed);
  ASSERT_EQ(changed.size(), adds.size());
  std::size_t expect_added = 0;
  for (std::size_t i = 0; i < adds.size(); ++i) {
    const bool fresh = oracle.insert({adds[i].u, adds[i].v}).second;
    EXPECT_EQ(changed[i] != 0, fresh) << i;
    expect_added += fresh ? 1 : 0;
  }
  EXPECT_EQ(added, expect_added);
  expect_matches(hybrid, oracle);

  // Remove one fresh edge and one base edge.
  const auto base_edge = *oracle.begin();
  std::vector<Edge> dels = {{1, 2}, {base_edge.first, base_edge.second}};
  const std::size_t removed = hybrid.remove_edges(dels, 2, &changed);
  EXPECT_EQ(removed, 2u);
  oracle.erase({1, 2});
  oracle.erase(base_edge);
  expect_matches(hybrid, oracle);
}

TEST(HybridGraph, DuplicateEdgesInOneBatch) {
  HybridGraph hybrid(make_base(13));
  auto oracle = edge_set(hybrid.view().base());
  ASSERT_FALSE(oracle.count({500, 500}));
  std::vector<Edge> adds = {{500, 500}, {500, 500}, {500, 500}};
  std::vector<std::uint8_t> changed;
  EXPECT_EQ(hybrid.add_edges(adds, 2, &changed), 1u);
  // First occurrence claims the change; the rest are no-ops.
  EXPECT_EQ(changed, (std::vector<std::uint8_t>{1, 0, 0}));
  oracle.insert({500, 500});
  expect_matches(hybrid, oracle);
}

TEST(HybridGraph, ToggleCancellation) {
  // add → remove → add of the same absent edge must end visible with a
  // delta of exactly one key (toggles cancel, never accumulate).
  HybridGraph hybrid(make_base(14));
  std::vector<Edge> e = {{9, 9}};
  ASSERT_FALSE(hybrid.view().has_edge(9, 9));
  hybrid.add_edges(e, 1);
  EXPECT_TRUE(hybrid.view().has_edge(9, 9));
  EXPECT_EQ(hybrid.delta_keys(), 1u);
  hybrid.remove_edges(e, 1);
  EXPECT_FALSE(hybrid.view().has_edge(9, 9));
  EXPECT_EQ(hybrid.delta_keys(), 0u);
  hybrid.add_edges(e, 1);
  EXPECT_TRUE(hybrid.view().has_edge(9, 9));
  EXPECT_EQ(hybrid.delta_keys(), 1u);
}

TEST(HybridGraph, MatchesDynamicCsrUnderChurn) {
  HybridGraph hybrid(make_base(15));
  csr::DynamicCsr reference(hybrid.view().base());
  SplitMix64 rng(15);
  for (int round = 0; round < 25; ++round) {
    std::vector<Edge> batch;
    for (int i = 0; i < 400; ++i)
      batch.push_back({static_cast<VertexId>(rng.next_below(kNodes)),
                       static_cast<VertexId>(rng.next_below(kNodes))});
    const bool add = rng.next_bool(0.6);
    if (add) {
      hybrid.add_edges(batch, 4);
      for (const Edge& e : batch) reference.add_edge(e.u, e.v);
    } else {
      hybrid.remove_edges(batch, 4);
      for (const Edge& e : batch) reference.remove_edge(e.u, e.v);
    }
    ASSERT_EQ(hybrid.num_edges(), reference.num_edges()) << "round " << round;
  }
  const HybridGraph::View view = hybrid.view();
  for (VertexId u = 0; u < kNodes; ++u)
    ASSERT_EQ(view.neighbors(u), reference.neighbors(u)) << "row " << u;
}

TEST(HybridGraph, CompactionPreservesEdgeSet) {
  HybridGraph hybrid(make_base(16));
  auto oracle = edge_set(hybrid.view().base());
  SplitMix64 rng(16);
  std::vector<Edge> adds, dels;
  for (int i = 0; i < 3000; ++i)
    adds.push_back({static_cast<VertexId>(rng.next_below(kNodes)),
                    static_cast<VertexId>(rng.next_below(kNodes))});
  for (int i = 0; i < 1000; ++i)
    dels.push_back({static_cast<VertexId>(rng.next_below(kNodes)),
                    static_cast<VertexId>(rng.next_below(kNodes))});
  hybrid.add_edges(adds, 4);
  for (const Edge& e : adds) oracle.insert({e.u, e.v});
  hybrid.remove_edges(dels, 4);
  for (const Edge& e : dels) oracle.erase({e.u, e.v});

  ASSERT_GT(hybrid.delta_keys(), 0u);
  EXPECT_TRUE(hybrid.compact(4));
  EXPECT_EQ(hybrid.delta_keys(), 0u);
  expect_matches(hybrid, oracle);
  // The compacted base alone now carries the whole edge set.
  EXPECT_EQ(edge_set(hybrid.view().base()), oracle);
  // Compacting an empty delta is a no-op.
  EXPECT_FALSE(hybrid.compact(4));

  // Mutations keep landing correctly on the fresh base.
  std::vector<Edge> more = {{0, 1}, {0, 2}};
  hybrid.remove_edges(more, 2);
  oracle.erase({0, 1});
  oracle.erase({0, 2});
  expect_matches(hybrid, oracle);
}

TEST(HybridGraph, ViewIsolationAcrossCompaction) {
  HybridGraph hybrid(make_base(17));
  std::vector<Edge> adds = {{3, 3}, {4, 4}, {5, 5}};
  hybrid.add_edges(adds, 2);
  const HybridGraph::View pinned = hybrid.view();
  const std::size_t edges_before = pinned.num_edges();

  hybrid.compact(2);
  std::vector<Edge> dels = {{3, 3}};
  hybrid.remove_edges(dels, 2);

  // The pinned (base, delta) pair still answers the pre-compaction state.
  EXPECT_TRUE(pinned.has_edge(3, 3));
  EXPECT_EQ(pinned.num_edges(), edges_before);
  EXPECT_FALSE(hybrid.view().has_edge(3, 3));
  EXPECT_GT(hybrid.view().version(), pinned.version());
}

TEST(HybridGraph, MaybeCompactHonoursThresholds) {
  HybridGraph::Config config;
  config.compact_ratio = 0.25;
  config.compact_min_keys = 64;
  HybridGraph hybrid(make_base(18, 2000), config);
  ASSERT_FALSE(hybrid.needs_compaction());
  EXPECT_FALSE(hybrid.maybe_compact(2));

  SplitMix64 rng(18);
  std::vector<Edge> adds;
  while (!hybrid.needs_compaction()) {
    adds.clear();
    for (int i = 0; i < 512; ++i)
      adds.push_back({static_cast<VertexId>(rng.next_below(kNodes)),
                      static_cast<VertexId>(rng.next_below(kNodes))});
    hybrid.add_edges(adds, 2);
  }
  EXPECT_TRUE(hybrid.maybe_compact(2));
  EXPECT_EQ(hybrid.delta_keys(), 0u);
  EXPECT_FALSE(hybrid.needs_compaction());
}

TEST(HybridGraph, RejectsOutOfRangeEndpoints) {
  HybridGraph hybrid(make_base(19));
  std::vector<Edge> bad = {{0, kNodes}};
  EXPECT_DEATH(hybrid.add_edges(bad, 1), "PCQ_CHECK");
  std::vector<Edge> bad2 = {{kNodes, 0}};
  EXPECT_DEATH(hybrid.remove_edges(bad2, 1), "PCQ_CHECK");
}

// Readers answer point/row queries from pinned Views while one thread
// mutates in batches and another runs ratio-triggered compactions. Every
// View must stay internally consistent (degree == |neighbors| for sampled
// rows); TSan certifies the epoch publication protocol.
TEST(HybridGraph, ConcurrentReadersDuringMutationAndCompaction) {
  HybridGraph::Config config;
  config.compact_min_keys = 256;
  HybridGraph hybrid(make_base(20), config);
  std::atomic<bool> done{false};
  std::atomic<int> views_checked{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      SplitMix64 rng(100 + static_cast<std::uint64_t>(r));
      std::uint64_t last_version = 0;
      while (!done.load(std::memory_order_acquire)) {
        const HybridGraph::View view = hybrid.view();
        ASSERT_GE(view.version(), last_version);
        last_version = view.version();
        const auto u = static_cast<VertexId>(rng.next_below(kNodes));
        const auto row = view.neighbors(u);
        ASSERT_EQ(view.degree(u), row.size());
        ASSERT_TRUE(std::is_sorted(row.begin(), row.end()));
        for (const VertexId v : row) ASSERT_TRUE(view.has_edge(u, v));
        views_checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::thread compactor([&] {
    while (!done.load(std::memory_order_acquire)) hybrid.maybe_compact(2);
  });

  SplitMix64 rng(20);
  for (int round = 0; round < 40; ++round) {
    std::vector<Edge> batch;
    for (int i = 0; i < 300; ++i)
      batch.push_back({static_cast<VertexId>(rng.next_below(kNodes)),
                       static_cast<VertexId>(rng.next_below(kNodes))});
    if (round % 3 == 2)
      hybrid.remove_edges(batch, 2);
    else
      hybrid.add_edges(batch, 2);
  }
  done.store(true, std::memory_order_release);
  compactor.join();
  for (auto& t : readers) t.join();
  EXPECT_GT(views_checked.load(), 0);
  // Final state still fully consistent.
  EXPECT_TRUE(hybrid.view().delta().check_invariants());
}

}  // namespace
}  // namespace pcq::dyn
