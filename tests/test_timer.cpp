#include "util/timer.hpp"

#include <gtest/gtest.h>

namespace pcq::util {
namespace {

TEST(Timer, MonotoneNonNegative) {
  Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(Timer, RestartResetsOrigin) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const double before = t.seconds();
  t.restart();
  EXPECT_LT(t.seconds(), before + 1e-3);
}

TEST(Timer, UnitConversions) {
  Timer t;
  const double s = t.seconds();
  EXPECT_NEAR(t.millis(), s * 1e3, s * 1e3 + 1.0);   // within the next read
  EXPECT_GE(t.micros(), s * 1e6);
}

TEST(TimingStats, MinMaxMean) {
  TimingStats stats;
  stats.add(3.0);
  stats.add(1.0);
  stats.add(2.0);
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
  EXPECT_DOUBLE_EQ(stats.median(), 2.0);
}

TEST(TimingStats, MedianEvenCount) {
  TimingStats stats;
  stats.add(1.0);
  stats.add(2.0);
  stats.add(10.0);
  stats.add(4.0);
  EXPECT_DOUBLE_EQ(stats.median(), 3.0);  // (2 + 4) / 2
}

TEST(TimingStatsDeathTest, EmptyStatsAbort) {
  TimingStats stats;
  EXPECT_DEATH((void)stats.min(), "PCQ_CHECK");
}

TEST(TimeRepeated, RunsWarmupsPlusRepeats) {
  int calls = 0;
  const TimingStats stats = time_repeated([&] { ++calls; }, 3, 2);
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_GE(stats.min(), 0.0);
}

}  // namespace
}  // namespace pcq::util
