// Tests for the extended temporal queries: batch neighbourhoods, window
// existence, and activity intervals (the ck-d-tree "contact" view, §II).
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "tcsr/tcsr.hpp"
#include "util/rng.hpp"

namespace pcq::tcsr {
namespace {

using graph::TemporalEdge;
using graph::TemporalEdgeList;
using graph::TimeFrame;
using graph::VertexId;

TemporalEdgeList sorted(std::vector<TemporalEdge> evs) {
  TemporalEdgeList list(std::move(evs));
  list.sort(2);
  return list;
}

TEST(BatchNeighborsAt, MatchesScalarQueries) {
  const TemporalEdgeList evs = graph::evolving_graph(60, 3000, 10, 3, 4);
  const auto tcsr = DifferentialTcsr::build(evs, 60, 10, 4);
  pcq::util::SplitMix64 rng(5);
  std::vector<TemporalNodeQuery> queries(200);
  for (auto& q : queries)
    q = {static_cast<VertexId>(rng.next_below(60)),
         static_cast<TimeFrame>(rng.next_below(10))};
  for (int p : {1, 4, 64}) {
    const auto result = tcsr.batch_neighbors_at(queries, p);
    ASSERT_EQ(result.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i)
      EXPECT_EQ(result[i], tcsr.neighbors_at(queries[i].u, queries[i].t))
          << "p=" << p;
  }
}

TEST(EdgeActiveInWindow, MatchesPointQueries) {
  const TemporalEdgeList evs = graph::evolving_graph(40, 2000, 12, 7, 4);
  const auto tcsr = DifferentialTcsr::build(evs, 40, 12, 4);
  pcq::util::SplitMix64 rng(9);
  for (int i = 0; i < 500; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(40));
    const auto v = static_cast<VertexId>(rng.next_below(40));
    auto t1 = static_cast<TimeFrame>(rng.next_below(12));
    auto t2 = static_cast<TimeFrame>(rng.next_below(12));
    if (t1 > t2) std::swap(t1, t2);
    bool any = false;
    for (TimeFrame t = t1; t <= t2; ++t) any = any || tcsr.edge_active(u, v, t);
    EXPECT_EQ(tcsr.edge_active_in_window(u, v, t1, t2), any)
        << u << "->" << v << " [" << t1 << "," << t2 << "]";
  }
}

TEST(ActivityIntervals, KnownLifecycle) {
  // (0,1): on at 1, off at 3, on at 5, never off again (history = 8).
  const auto tcsr = DifferentialTcsr::build(
      sorted({{0, 1, 1}, {0, 1, 3}, {0, 1, 5}}), 2, 8, 2);
  const auto intervals = tcsr.activity_intervals(0, 1);
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0], (ActivityInterval{1, 2}));
  EXPECT_EQ(intervals[1], (ActivityInterval{5, 7}));
}

TEST(ActivityIntervals, NeverActive) {
  const auto tcsr =
      DifferentialTcsr::build(sorted({{0, 1, 0}}), 3, 4, 2);
  EXPECT_TRUE(tcsr.activity_intervals(1, 2).empty());
}

TEST(ActivityIntervals, SingleFrameBlip) {
  // On at 2, off at 3: exactly one frame of activity.
  const auto tcsr = DifferentialTcsr::build(
      sorted({{4, 5, 2}, {4, 5, 3}}), 6, 6, 2);
  const auto intervals = tcsr.activity_intervals(4, 5);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0], (ActivityInterval{2, 2}));
}

TEST(ActivityIntervals, ConsistentWithPointQueries) {
  const TemporalEdgeList evs = graph::evolving_graph(30, 1500, 10, 11, 4);
  const auto tcsr = DifferentialTcsr::build(evs, 30, 10, 4);
  pcq::util::SplitMix64 rng(13);
  for (int i = 0; i < 300; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(30));
    const auto v = static_cast<VertexId>(rng.next_below(30));
    const auto intervals = tcsr.activity_intervals(u, v);
    for (TimeFrame t = 0; t < 10; ++t) {
      const bool in_interval =
          std::any_of(intervals.begin(), intervals.end(),
                      [&](const ActivityInterval& iv) {
                        return iv.begin <= t && t <= iv.end;
                      });
      ASSERT_EQ(in_interval, tcsr.edge_active(u, v, t))
          << u << "->" << v << "@" << t;
    }
  }
}

}  // namespace
}  // namespace pcq::tcsr
