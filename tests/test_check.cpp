// pcq::check validator tests: every rule must fire on its targeted
// corruption with a diagnostic naming the offending index, and must stay
// silent on structures the builders and serializers actually produce.
#include "check/validate.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "bits/bitvector.hpp"
#include "bits/packed_array.hpp"
#include "csr/builder.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "tcsr/tcsr.hpp"

namespace pcq::check {
namespace {

using graph::Edge;
using graph::EdgeList;
using graph::TemporalEdge;
using graph::TemporalEdgeList;
using graph::VertexId;
using pcq::bits::BitVector;
using pcq::bits::FixedWidthArray;
using pcq::csr::BitPackedCsr;
using pcq::tcsr::DifferentialTcsr;

/// 4-node, 5-edge reference graph: rows {1, 2}, {2}, {3}, {0}.
BitPackedCsr reference_csr() {
  EdgeList list(
      std::vector<Edge>{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}});
  return pcq::csr::build_bitpacked_csr_from_sorted(list, 4, 2);
}

/// Packs `values` at the reference geometry's offset width.
FixedWidthArray pack_u64(const std::vector<std::uint64_t>& values,
                         unsigned width) {
  return FixedWidthArray::pack_with_width(values, width, 1);
}

TEST(ValidateCsr, AcceptsBuilderOutput) {
  const BitPackedCsr csr = reference_csr();
  ValidateOptions opts;
  opts.canonical = true;  // the packer emits minimal widths, exact storage
  const ValidationReport report = validate_csr(csr, opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ValidateCsr, AcceptsEmptyAndSingleVertexGraphs) {
  const BitPackedCsr empty =
      BitPackedCsr::from_csr(pcq::csr::CsrGraph({0}, {}), 1);
  EXPECT_TRUE(validate_csr(empty).ok());
  const BitPackedCsr single =
      BitPackedCsr::from_csr(pcq::csr::CsrGraph({0, 0}, {}), 1);
  EXPECT_TRUE(validate_csr(single).ok());
}

TEST(ValidateCsr, CatchesFlippedBitInPackedOffsets) {
  const BitPackedCsr csr = reference_csr();
  // iA = [0, 2, 3, 4, 5] at width bits_for(5) = 3. Flipping the top bit of
  // iA[1] turns 2 into 6 — past num_edges and above its successor.
  const FixedWidthArray& offs = csr.packed_offsets();
  std::vector<std::uint64_t> words(offs.bits().words().begin(),
                                   offs.bits().words().end());
  const std::size_t bit = 1 * offs.width() + 2;  // top bit of element 1
  words[bit >> 6] ^= std::uint64_t{1} << (bit & 63);
  const BitPackedCsr corrupt = BitPackedCsr::from_parts(
      csr.num_nodes(), csr.num_edges(),
      FixedWidthArray::from_bits(
          BitVector::from_words(std::move(words), offs.bits().size()),
          offs.size(), offs.width()),
      csr.packed_columns());

  const ValidationReport report = validate_csr(corrupt);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.violates("csr.offsets.range")) << report.to_string();
  EXPECT_TRUE(report.violates("csr.offsets.monotone")) << report.to_string();
  EXPECT_NE(report.to_string().find("iA[1] = 6"), std::string::npos)
      << report.to_string();
}

TEST(ValidateCsr, CatchesNonMonotoneOffsets) {
  const BitPackedCsr csr = reference_csr();
  const BitPackedCsr corrupt = BitPackedCsr::from_parts(
      4, 5, pack_u64({0, 3, 2, 4, 5}, csr.packed_offsets().width()),
      csr.packed_columns());
  const ValidationReport report = validate_csr(corrupt);
  EXPECT_TRUE(report.violates("csr.offsets.monotone")) << report.to_string();
  EXPECT_NE(report.to_string().find("iA[2] = 2"), std::string::npos)
      << report.to_string();
}

TEST(ValidateCsr, CatchesNonZeroFirstOffset) {
  const BitPackedCsr csr = reference_csr();
  const BitPackedCsr corrupt = BitPackedCsr::from_parts(
      4, 5, pack_u64({1, 2, 3, 4, 5}, csr.packed_offsets().width()),
      csr.packed_columns());
  EXPECT_TRUE(validate_csr(corrupt).violates("csr.offsets.first"));
}

TEST(ValidateCsr, CatchesFinalOffsetMismatch) {
  const BitPackedCsr csr = reference_csr();
  const BitPackedCsr corrupt = BitPackedCsr::from_parts(
      4, 5, pack_u64({0, 2, 3, 4, 4}, csr.packed_offsets().width()),
      csr.packed_columns());
  EXPECT_TRUE(validate_csr(corrupt).violates("csr.offsets.final"));
}

TEST(ValidateCsr, CatchesOutOfRangeColumn) {
  const BitPackedCsr csr = reference_csr();
  // jA = [1, 2, 2, 3, 0] at width bits_for(3) = 2: every value in range.
  // Re-pack at width 3 so the array can hold 4..7, then poison one entry.
  const BitPackedCsr corrupt = BitPackedCsr::from_parts(
      4, 5, csr.packed_offsets(), pack_u64({1, 2, 2, 7, 0}, 3));
  const ValidationReport report = validate_csr(corrupt);
  EXPECT_TRUE(report.violates("csr.columns.range")) << report.to_string();
  EXPECT_NE(report.to_string().find("jA[3] = 7"), std::string::npos)
      << report.to_string();
}

TEST(ValidateCsr, CatchesUnsortedRow) {
  const BitPackedCsr csr = reference_csr();
  // Row 0 is {1, 2}; swap it to {2, 1} — binary search would miss edges.
  const BitPackedCsr corrupt = BitPackedCsr::from_parts(
      4, 5, csr.packed_offsets(),
      pack_u64({2, 1, 2, 3, 0}, csr.packed_columns().width()));
  const ValidationReport report = validate_csr(corrupt);
  EXPECT_TRUE(report.violates("csr.rows.sorted")) << report.to_string();
  EXPECT_NE(report.to_string().find("row 0"), std::string::npos)
      << report.to_string();
}

TEST(ValidateCsr, CatchesInsufficientOffsetWidth) {
  // Offsets packed at 2 bits cannot represent num_edges = 5.
  const BitPackedCsr csr = reference_csr();
  const BitPackedCsr corrupt = BitPackedCsr::from_parts(
      4, 5, pack_u64({0, 1, 2, 3, 3}, 2), csr.packed_columns());
  EXPECT_TRUE(validate_csr(corrupt).violates("csr.offsets.width"));
}

TEST(ValidateCsr, CatchesZeroedOffsetStorage) {
  // A zeroed iA (e.g. a hole punched in the file) with a non-zero edge
  // count: the final-offset rule localises it.
  const BitPackedCsr csr = reference_csr();
  const FixedWidthArray zeroed =
      FixedWidthArray::from_bits(BitVector(5 * 3), 5, 3);
  const BitPackedCsr corrupt =
      BitPackedCsr::from_parts(4, 5, zeroed, csr.packed_columns());
  const ValidationReport report = validate_csr(corrupt);
  EXPECT_TRUE(report.violates("csr.offsets.final")) << report.to_string();
}

TEST(ValidateCsr, CanonicalModeRejectsOversizedWidth) {
  const BitPackedCsr csr = reference_csr();
  const BitPackedCsr wide = BitPackedCsr::from_parts(
      4, 5, pack_u64({0, 2, 3, 4, 5}, 10), csr.packed_columns());
  EXPECT_TRUE(validate_csr(wide).ok());  // sufficient is fine by default
  ValidateOptions canonical;
  canonical.canonical = true;
  EXPECT_TRUE(
      validate_csr(wide, canonical).violates("csr.offsets.width.canonical"));
}

TEST(ValidateCsr, SaturatesAtMaxViolations) {
  // Every column out of range: the report must stop at the cap.
  const BitPackedCsr csr = reference_csr();
  const BitPackedCsr corrupt = BitPackedCsr::from_parts(
      4, 5, csr.packed_offsets(), pack_u64({7, 7, 7, 7, 7}, 3));
  ValidateOptions opts;
  opts.max_violations = 2;
  const ValidationReport report = validate_csr(corrupt, opts);
  EXPECT_FALSE(report.ok());
  EXPECT_LE(report.violations().size(), 2u);
}

// --- TCSR ------------------------------------------------------------------

/// Figure 4-style storyline: edges toggling over 3 frames.
DifferentialTcsr reference_tcsr() {
  TemporalEdgeList events(std::vector<TemporalEdge>{
      {0, 1, 0}, {1, 2, 0}, {2, 3, 0},  // frame 0: initial path
      {0, 1, 1},                        // frame 1: delete (0, 1)
      {0, 3, 2}, {1, 2, 2},             // frame 2: add (0,3), delete (1,2)
  });
  return DifferentialTcsr::build(events, 4, 3, 2);
}

TEST(ValidateTcsr, AcceptsBuilderOutput) {
  const ValidationReport report = validate_tcsr(reference_tcsr());
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ValidateTcsr, AcceptsRandomChurnHistory) {
  const TemporalEdgeList events =
      graph::evolving_graph_churn(64, 120, 8, 30, 0.4, /*seed=*/7);
  const DifferentialTcsr tcsr = DifferentialTcsr::build(events, 0, 0, 4);
  ValidateOptions opts;
  opts.num_threads = 4;
  const ValidationReport report = validate_tcsr(tcsr, opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ValidateTcsr, CatchesFrameNodeCountMismatch) {
  const DifferentialTcsr good = reference_tcsr();
  std::vector<BitPackedCsr> deltas;
  for (graph::TimeFrame t = 0; t < good.num_frames(); ++t)
    deltas.push_back(good.delta(t));
  // Frame 1 claims a different vertex-set size than the container.
  deltas[1] = BitPackedCsr::from_csr(pcq::csr::CsrGraph({0, 0}, {}), 1);
  const DifferentialTcsr corrupt = DifferentialTcsr::from_parts(
      good.num_nodes(), std::move(deltas));
  const ValidationReport report = validate_tcsr(corrupt);
  EXPECT_TRUE(report.violates("tcsr.frame.nodes")) << report.to_string();
  EXPECT_NE(report.to_string().find("frame 1"), std::string::npos)
      << report.to_string();
}

TEST(ValidateTcsr, CatchesDuplicateEdgeWithinFrame) {
  const DifferentialTcsr good = reference_tcsr();
  std::vector<BitPackedCsr> deltas;
  for (graph::TimeFrame t = 0; t < good.num_frames(); ++t)
    deltas.push_back(good.delta(t));
  // A frame whose row 0 holds {1, 1}: a double-toggle the parity
  // cancellation can never emit.
  deltas[2] = BitPackedCsr::from_parts(
      4, 2, pack_u64({0, 2, 2, 2, 2}, 2), pack_u64({1, 1}, 2));
  const DifferentialTcsr corrupt = DifferentialTcsr::from_parts(
      good.num_nodes(), std::move(deltas));
  const ValidationReport report = validate_tcsr(corrupt);
  EXPECT_TRUE(report.violates("csr.rows.duplicate")) << report.to_string();
  EXPECT_NE(report.to_string().find("frame 2"), std::string::npos)
      << report.to_string();
}

TEST(ValidateTcsr, CatchesCorruptFrameColumns) {
  const DifferentialTcsr good = reference_tcsr();
  std::vector<BitPackedCsr> deltas;
  for (graph::TimeFrame t = 0; t < good.num_frames(); ++t)
    deltas.push_back(good.delta(t));
  // Shuffled/poisoned frame: columns past the vertex range.
  deltas[0] = BitPackedCsr::from_parts(
      4, 3, pack_u64({0, 1, 2, 3, 3}, 2), pack_u64({5, 6, 7}, 3));
  const DifferentialTcsr corrupt = DifferentialTcsr::from_parts(
      good.num_nodes(), std::move(deltas));
  const ValidationReport report = validate_tcsr(corrupt);
  EXPECT_TRUE(report.violates("csr.columns.range")) << report.to_string();
  EXPECT_NE(report.to_string().find("frame 0"), std::string::npos)
      << report.to_string();
}

TEST(ValidateTcsr, ParityRoundtripRunsCleanOnValidHistories) {
  // The parity cross-check compares the parallel prefix-XOR snapshot with
  // a sequential reconstruction — a differential self-test of the scan
  // machinery over the stored deltas.
  const TemporalEdgeList events =
      graph::evolving_graph(32, 900, 40, /*seed=*/13, 4);
  const DifferentialTcsr tcsr = DifferentialTcsr::build(events, 0, 0, 4);
  ValidateOptions opts;
  opts.num_threads = 4;
  opts.parity_roundtrip = true;
  const ValidationReport report = validate_tcsr(tcsr, opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(PackedGeometry, FromBitsRefusesOverflowingSizeTimesWidth) {
  // Regression: `storage.size() >= size * width` used to wrap for a
  // header-supplied size near SIZE_MAX, letting an adversarial file pass
  // the geometry gate with a tiny buffer. The checked multiply must die
  // loudly instead of wrapping quietly.
  bits::BitVector storage;
  storage.push_back(true);
  constexpr std::size_t kHuge = std::numeric_limits<std::size_t>::max() / 8;
  EXPECT_DEATH(
      (void)bits::FixedWidthArray::from_bits(std::move(storage), kHuge, 64),
      "overflow");
}

TEST(PackedGeometry, ViewRefusesOverflowingSizeTimesWidth) {
  const std::vector<std::uint64_t> words(4);
  constexpr std::size_t kHuge = std::numeric_limits<std::size_t>::max() / 2;
  EXPECT_DEATH((void)bits::FixedWidthArray::view(words, kHuge, 3), "overflow");
}

}  // namespace
}  // namespace pcq::check
