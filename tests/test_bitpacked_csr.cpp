#include "csr/bitpacked_csr.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "csr/builder.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace pcq::csr {
namespace {

using graph::EdgeList;
using graph::VertexId;

EdgeList figure1_graph() {
  return EdgeList({{0, 5}, {1, 6}, {1, 7}, {2, 7}, {3, 8}, {3, 9}, {4, 9}});
}

BitPackedCsr packed_random(VertexId n, std::size_t m, std::uint64_t seed,
                           int threads) {
  EdgeList g = graph::rmat(n, m, 0.57, 0.19, 0.19, seed, threads);
  g.sort(threads);
  return build_bitpacked_csr_from_sorted(g, n, threads);
}

TEST(BitPackedCsr, Figure1Widths) {
  const CsrGraph csr = build_csr_from_sorted(figure1_graph(), 10, 2);
  const BitPackedCsr packed = BitPackedCsr::from_csr(csr, 2);
  // 7 edges -> iA entries fit in 3 bits; column ids up to 9 -> 4 bits.
  EXPECT_EQ(packed.offset_bits(), 3u);
  EXPECT_EQ(packed.column_bits(), 4u);
  EXPECT_EQ(packed.num_nodes(), 10u);
  EXPECT_EQ(packed.num_edges(), 7u);
}

TEST(BitPackedCsr, Figure1RoundTrip) {
  const CsrGraph csr = build_csr_from_sorted(figure1_graph(), 10, 2);
  const BitPackedCsr packed = BitPackedCsr::from_csr(csr, 2);
  const CsrGraph back = packed.to_csr();
  EXPECT_TRUE(std::equal(back.offsets().begin(), back.offsets().end(),
                         csr.offsets().begin()));
  EXPECT_TRUE(std::equal(back.columns().begin(), back.columns().end(),
                         csr.columns().begin()));
}

TEST(BitPackedCsr, DecodeRowMatchesPlainRows) {
  const BitPackedCsr packed = packed_random(512, 20'000, 3, 4);
  const CsrGraph plain = packed.to_csr();
  std::vector<VertexId> row;
  for (VertexId u = 0; u < 512; ++u) {
    row.resize(packed.degree(u));
    EXPECT_EQ(packed.decode_row(u, row), plain.degree(u));
    const auto expect = plain.neighbors(u);
    EXPECT_TRUE(std::equal(row.begin(), row.end(), expect.begin()));
  }
}

TEST(BitPackedCsr, NeighborsConvenience) {
  const BitPackedCsr packed = packed_random(128, 2000, 5, 4);
  const CsrGraph plain = packed.to_csr();
  for (VertexId u = 0; u < 128; u += 7) {
    const auto got = packed.neighbors(u);
    const auto expect = plain.neighbors(u);
    ASSERT_EQ(got.size(), expect.size());
    EXPECT_TRUE(std::equal(got.begin(), got.end(), expect.begin()));
  }
}

TEST(BitPackedCsr, HasEdgeMatchesPlain) {
  const BitPackedCsr packed = packed_random(256, 5000, 7, 4);
  const CsrGraph plain = packed.to_csr();
  pcq::util::SplitMix64 rng(99);
  for (int i = 0; i < 2000; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(256));
    const auto v = static_cast<VertexId>(rng.next_below(256));
    EXPECT_EQ(packed.has_edge(u, v), plain.has_edge(u, v)) << u << "," << v;
  }
}

TEST(BitPackedCsr, SmallerThanPlainCsr) {
  const BitPackedCsr packed = packed_random(1 << 12, 100'000, 9, 4);
  const CsrGraph plain = packed.to_csr();
  // 12-bit columns vs 32-bit, 17-bit offsets vs 64-bit: > 2x smaller.
  EXPECT_LT(packed.size_bytes() * 2, plain.size_bytes());
}

TEST(BitPackedCsr, SmallerThanEdgeList) {
  // The Table II comparison: bit-packed CSR vs the raw edge list.
  EdgeList g = graph::rmat(1 << 12, 100'000, 0.57, 0.19, 0.19, 11, 4);
  g.sort(4);
  const std::size_t edge_list_bytes = g.size_bytes();
  const BitPackedCsr packed = build_bitpacked_csr_from_sorted(g, 1 << 12, 4);
  EXPECT_LT(packed.size_bytes(), edge_list_bytes);
}

TEST(BitPackedCsr, ThreadCountInvariance) {
  const BitPackedCsr a = packed_random(512, 30'000, 13, 1);
  for (int p : {2, 4, 8, 64}) {
    const BitPackedCsr b = packed_random(512, 30'000, 13, p);
    EXPECT_EQ(a.size_bytes(), b.size_bytes()) << "p=" << p;
    EXPECT_TRUE(a.packed_offsets() == b.packed_offsets()) << "p=" << p;
    EXPECT_TRUE(a.packed_columns() == b.packed_columns()) << "p=" << p;
  }
}

TEST(BitPackedCsr, EmptyGraph) {
  const CsrGraph csr = build_csr_from_sorted(EdgeList{}, 4, 2);
  const BitPackedCsr packed = BitPackedCsr::from_csr(csr, 2);
  EXPECT_EQ(packed.num_edges(), 0u);
  for (VertexId u = 0; u < 4; ++u) {
    EXPECT_EQ(packed.degree(u), 0u);
    EXPECT_TRUE(packed.neighbors(u).empty());
    EXPECT_FALSE(packed.has_edge(u, 0));
  }
}

TEST(BitPackedCsr, ParallelToCsrRoundTripsMultiChunkGraph) {
  // Large enough that every thread count below splits the column array
  // into several chunks, exercising the chunked bulk-decode boundaries.
  const BitPackedCsr packed = packed_random(1 << 12, 200'000, 17, 4);
  const CsrGraph serial = packed.to_csr(1);
  for (int p : {2, 3, 8, 64}) {
    const CsrGraph parallel = packed.to_csr(p);
    ASSERT_EQ(parallel.num_nodes(), serial.num_nodes()) << "p=" << p;
    ASSERT_EQ(parallel.num_edges(), serial.num_edges()) << "p=" << p;
    EXPECT_TRUE(std::equal(parallel.offsets().begin(),
                           parallel.offsets().end(),
                           serial.offsets().begin()))
        << "p=" << p;
    EXPECT_TRUE(std::equal(parallel.columns().begin(),
                           parallel.columns().end(),
                           serial.columns().begin()))
        << "p=" << p;
  }
  // And the round trip itself holds: re-packing the expansion is identical.
  const BitPackedCsr repacked = BitPackedCsr::from_csr(packed.to_csr(8), 4);
  EXPECT_TRUE(repacked.packed_offsets() == packed.packed_offsets());
  EXPECT_TRUE(repacked.packed_columns() == packed.packed_columns());
}

TEST(BitPackedCsr, RowCursorMatchesDecodeRow) {
  const BitPackedCsr packed = packed_random(512, 20'000, 19, 4);
  std::vector<VertexId> row;
  for (VertexId u = 0; u < 512; ++u) {
    row.resize(packed.degree(u));
    packed.decode_row(u, row);
    pcq::bits::RowCursor cursor = packed.row_cursor(u);
    ASSERT_EQ(cursor.remaining(), row.size());
    for (VertexId expected : row) ASSERT_EQ(cursor.next(), expected);
    EXPECT_TRUE(cursor.done());
  }
}

TEST(BitPackedCsr, ZeroEdgeGraphRoundTrips) {
  const CsrGraph csr = build_csr_from_sorted(EdgeList{}, 16, 2);
  const BitPackedCsr packed = BitPackedCsr::from_csr(csr, 2);
  for (int p : {1, 4}) {
    const CsrGraph back = packed.to_csr(p);
    EXPECT_EQ(back.num_edges(), 0u);
    EXPECT_EQ(back.num_nodes(), 16u);
  }
  EXPECT_TRUE(packed.row_cursor(3).done());
}

TEST(BitPackedCsr, SingleNodeGraph) {
  const CsrGraph csr = build_csr_from_sorted(EdgeList({{0, 0}}), 1, 2);
  const BitPackedCsr packed = BitPackedCsr::from_csr(csr, 2);
  EXPECT_EQ(packed.num_nodes(), 1u);
  EXPECT_EQ(packed.num_edges(), 1u);
  EXPECT_EQ(packed.neighbors(0), (std::vector<VertexId>{0}));
  const CsrGraph back = packed.to_csr(4);
  EXPECT_EQ(back.neighbors(0).size(), 1u);
  EXPECT_TRUE(packed.has_edge(0, 0));
}

TEST(BitPackedCsr, IsolatedTailNodes) {
  // Nodes after the last edge source still need valid offsets.
  const CsrGraph csr = build_csr_from_sorted(EdgeList({{0, 1}}), 100, 2);
  const BitPackedCsr packed = BitPackedCsr::from_csr(csr, 2);
  EXPECT_EQ(packed.degree(0), 1u);
  for (VertexId u = 1; u < 100; ++u) EXPECT_EQ(packed.degree(u), 0u);
}

}  // namespace
}  // namespace pcq::csr
