#include "par/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace pcq::par {
namespace {

TEST(WorkerPool, RunsEveryJob) {
  std::atomic<int> ran{0};
  {
    WorkerPool pool(3);
    EXPECT_EQ(pool.size(), 3);
    for (int i = 0; i < 100; ++i)
      ASSERT_TRUE(pool.submit([&ran] { ran.fetch_add(1); }));
  }  // destructor drains and joins
  EXPECT_EQ(ran.load(), 100);
}

TEST(WorkerPool, ClampsToAtLeastOneThread) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<bool> ran{false};
  ASSERT_TRUE(pool.submit([&ran] { ran.store(true); }));
  // Destructor join guarantees completion.
}

TEST(WorkerPool, SubmitAfterCloseIsRejected) {
  WorkerPool pool(1);
  pool.close();
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(WorkerPool, LongRunningJobsOccupyWorkersIndependently) {
  // Two persistent "shard loop" style jobs must run concurrently on a
  // pool of two; each signals the other, so a serial pool would deadlock
  // (guarded by the test timeout).
  WorkerPool pool(2);
  std::atomic<bool> a_ready{false}, b_ready{false};
  pool.submit([&] {
    a_ready.store(true);
    while (!b_ready.load()) std::this_thread::yield();
  });
  pool.submit([&] {
    b_ready.store(true);
    while (!a_ready.load()) std::this_thread::yield();
  });
}

TEST(WorkerPool, ConcurrentSubmitters) {
  std::atomic<int> ran{0};
  {
    WorkerPool pool(4);
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t)
      submitters.emplace_back([&pool, &ran] {
        for (int i = 0; i < 500; ++i)
          while (!pool.submit([&ran] { ran.fetch_add(1); }))
            std::this_thread::yield();
      });
    for (auto& t : submitters) t.join();
  }
  EXPECT_EQ(ran.load(), 2000);
}

}  // namespace
}  // namespace pcq::par
