#include "tcsr/contact_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "tcsr/tcsr.hpp"
#include "util/rng.hpp"

namespace pcq::tcsr {
namespace {

using graph::TemporalEdge;
using graph::TemporalEdgeList;
using graph::TimeFrame;
using graph::VertexId;

TemporalEdgeList sorted(std::vector<TemporalEdge> evs) {
  TemporalEdgeList list(std::move(evs));
  list.sort(2);
  return list;
}

TEST(ContactIndex, KnownIntervals) {
  // (0,1): [1,2] and [5,7]; (0,2): [0,7] (never closed, history = 8).
  const auto evs =
      sorted({{0, 1, 1}, {0, 1, 3}, {0, 1, 5}, {0, 2, 0}});
  const ContactIndex idx = ContactIndex::build(evs, 3, 8, 2);
  EXPECT_EQ(idx.num_contacts(), 3u);
  EXPECT_EQ(idx.contacts(0, 1),
            (std::vector<ActivityInterval>{{1, 2}, {5, 7}}));
  EXPECT_EQ(idx.contacts(0, 2), (std::vector<ActivityInterval>{{0, 7}}));
  EXPECT_TRUE(idx.edge_active(0, 1, 2));
  EXPECT_FALSE(idx.edge_active(0, 1, 3));
  EXPECT_TRUE(idx.edge_active(0, 1, 6));
  EXPECT_TRUE(idx.edge_active(0, 2, 7));
  EXPECT_FALSE(idx.edge_active(1, 0, 1));  // directed
}

TEST(ContactIndex, NeighborsAtFiltersIntervals) {
  const auto evs = sorted({{0, 1, 0}, {0, 2, 1}, {0, 1, 2}, {0, 3, 2}});
  const ContactIndex idx = ContactIndex::build(evs, 4, 4, 2);
  EXPECT_EQ(idx.neighbors_at(0, 0), (std::vector<VertexId>{1}));
  EXPECT_EQ(idx.neighbors_at(0, 1), (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(idx.neighbors_at(0, 2), (std::vector<VertexId>{2, 3}));
}

TEST(ContactIndex, WithinFrameRepeatsCancel) {
  // (0,1) toggled twice in frame 1: no state change, so one contact [0,3].
  const auto evs = sorted({{0, 1, 0}, {0, 1, 1}, {0, 1, 1}});
  const ContactIndex idx = ContactIndex::build(evs, 2, 4, 2);
  EXPECT_EQ(idx.contacts(0, 1), (std::vector<ActivityInterval>{{0, 3}}));
}

TEST(ContactIndex, EmptyHistory) {
  const ContactIndex idx = ContactIndex::build(TemporalEdgeList{}, 3, 0, 2);
  EXPECT_EQ(idx.num_contacts(), 0u);
  EXPECT_FALSE(idx.edge_active(0, 1, 0));
  EXPECT_TRUE(idx.neighbors_at(1, 0).empty());
}

TEST(ContactIndex, AgreesWithDifferentialTcsr) {
  const TemporalEdgeList evs = graph::evolving_graph(70, 3500, 10, 41, 4);
  const auto tcsr = DifferentialTcsr::build(evs, 70, 10, 4);
  const ContactIndex idx = ContactIndex::build(evs, 70, 10, 4);

  pcq::util::SplitMix64 rng(43);
  for (int i = 0; i < 1500; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(70));
    const auto v = static_cast<VertexId>(rng.next_below(70));
    const auto t = static_cast<TimeFrame>(rng.next_below(10));
    ASSERT_EQ(idx.edge_active(u, v, t), tcsr.edge_active(u, v, t))
        << u << "->" << v << "@" << t;
  }
  for (VertexId u = 0; u < 70; u += 11)
    for (TimeFrame t = 0; t < 10; t += 3)
      EXPECT_EQ(idx.neighbors_at(u, t), tcsr.neighbors_at(u, t));
}

TEST(ContactIndex, IntervalsMatchTcsrActivityIntervals) {
  const TemporalEdgeList evs = graph::evolving_graph(40, 1500, 8, 47, 4);
  const auto tcsr = DifferentialTcsr::build(evs, 40, 8, 4);
  const ContactIndex idx = ContactIndex::build(evs, 40, 8, 4);
  for (VertexId u = 0; u < 40; u += 3)
    for (VertexId v = 0; v < 40; v += 5)
      EXPECT_EQ(idx.contacts(u, v), tcsr.activity_intervals(u, v))
          << u << "->" << v;
}

TEST(ContactIndex, WindowQueryMatchesBruteForce) {
  const TemporalEdgeList evs = graph::evolving_graph(30, 800, 12, 53, 4);
  const ContactIndex idx = ContactIndex::build(evs, 30, 12, 4);
  const auto window = idx.contacts_in_window(4, 7);
  for (const Contact& c : window) {
    EXPECT_LE(c.begin, 7u);
    EXPECT_GE(c.end, 4u);
  }
  // Every window contact implies activity at some frame in [4, 7].
  const auto tcsr = DifferentialTcsr::build(evs, 30, 12, 4);
  for (const Contact& c : window)
    EXPECT_TRUE(tcsr.edge_active_in_window(c.u, c.v, 4, 7));
}

TEST(ContactIndex, PersistentWorkloadIsCompact) {
  // Long-lived edges: contacts are few intervals, far smaller than the
  // raw event list or even the differential TCSR deltas.
  const TemporalEdgeList evs =
      graph::evolving_graph_churn(200, 5000, 24, 50, 0.4, 59);
  const ContactIndex idx = ContactIndex::build(evs, 200, 24, 4);
  EXPECT_LT(idx.size_bytes(), evs.size_bytes());
}

}  // namespace
}  // namespace pcq::tcsr
