// Exhaustive kernel-conformance suite for the SIMD unpack tier.
//
// Contract under test (docs/SIMD.md): every dispatched variant — scalar,
// AVX2, AVX-512, present and future — decodes bit-for-bit identically to
// the scalar reference for EVERY (width, source bit offset, count) cell,
// and never reads past the 64-bit word holding the last payload bit.
//
// The grid: width 1-32 × bit offset 0-63 × count {0, 1, lane-1, lane,
// lane+1, 4*lane+3, 1000} (lane = the variant's values-per-block), each on
// patterned, random and all-ones (width-saturating) payloads, with the
// source buffer sized EXACTLY to the packed payload so ASan catches any
// vector over-read. Every variant compiled into this binary and executable
// on this host runs the full grid; a host without AVX repeats the scalar
// tier and still proves the grid harness itself.
//
// Dispatch-layer behaviour (probing, overrides, routing of unpack_words /
// RowCursor / FixedWidthArray through the active tier) is covered at the
// bottom; those tests flip the active ISA with set_isa and restore it.
#include "bits/simd_dispatch.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bits/bitvector.hpp"
#include "bits/packed_array.hpp"
#include "bits/unpack.hpp"
#include "util/rng.hpp"

namespace pcq::bits {
namespace {

using simd::Isa;

/// Every tier that can actually run here (scalar always first: it is the
/// reference the others are compared against).
std::vector<Isa> available_isas() {
  std::vector<Isa> isas{Isa::kScalar};
  if (simd::variant_available(Isa::kAvx2)) isas.push_back(Isa::kAvx2);
  if (simd::variant_available(Isa::kAvx512)) isas.push_back(Isa::kAvx512);
  return isas;
}

/// Values per vector block: the alignment-critical counts of the grid.
unsigned lanes_of(Isa isa, unsigned width) {
  switch (isa) {
    case Isa::kAvx512:
      return width <= 25 ? 16 : 8;
    case Isa::kAvx2:
    case Isa::kScalar:
      return 8;
  }
  return 8;
}

enum class Payload { kPatterned, kRandom, kAllOnes };

/// Builds storage holding exactly the words spanned by
/// [bit_begin, bit_begin + count*width) — not one word more, so any load
/// past the payload trips ASan (and the all-ones case proves no value
/// leaks bits from its neighbours).
std::vector<std::uint64_t> make_payload(std::size_t bit_begin, unsigned width,
                                        std::size_t count, Payload kind,
                                        std::uint64_t seed) {
  const std::size_t end_bits = bit_begin + count * width;
  const std::size_t nwords = (end_bits + 63) / 64;
  std::vector<std::uint64_t> words(nwords);
  switch (kind) {
    case Payload::kPatterned:
      for (std::size_t i = 0; i < nwords; ++i)
        words[i] = (i & 1) ? 0xAAAAAAAAAAAAAAAAULL : 0x5555555555555555ULL;
      break;
    case Payload::kRandom: {
      pcq::util::SplitMix64 rng(seed);
      for (auto& w : words) w = rng.next();
      break;
    }
    case Payload::kAllOnes:
      for (auto& w : words) w = ~0ULL;
      break;
  }
  return words;
}

/// Reference decode: the scalar kernel, which fuzz_unpack already pins
/// against per-element BitVector::read_bits.
std::vector<std::uint32_t> reference(const std::uint64_t* words,
                                     std::size_t bit_begin, unsigned width,
                                     std::size_t count) {
  std::vector<std::uint32_t> out(count);
  detail::unpack_words_scalar(words, bit_begin, width, count, out.data());
  return out;
}

/// Runs one variant over the full conformance grid.
void run_grid(Isa isa) {
  simd::UnpackFn32 fn = simd::variant_fn(isa);
  ASSERT_NE(fn, nullptr) << simd::isa_name(isa);
  const Payload kinds[] = {Payload::kPatterned, Payload::kRandom,
                           Payload::kAllOnes};
  for (unsigned width = 1; width <= 32; ++width) {
    const unsigned lane = lanes_of(isa, width);
    const std::size_t counts[] = {
        0, 1, lane - 1, lane, lane + 1, 4 * std::size_t{lane} + 3, 1000};
    for (std::size_t bit_begin = 0; bit_begin < 64; ++bit_begin) {
      for (const std::size_t count : counts) {
        for (const Payload kind : kinds) {
          const std::uint64_t seed =
              width * 1000003ULL + bit_begin * 101ULL + count;
          const auto words =
              make_payload(bit_begin, width, count, kind, seed);
          const auto expect =
              count == 0 ? std::vector<std::uint32_t>{}
                         : reference(words.data(), bit_begin, width, count);
          // Output sized exactly as well: a kernel writing past `count`
          // values is as broken as one over-reading the source.
          std::vector<std::uint32_t> got(count);
          fn(words.empty() ? nullptr : words.data(), bit_begin, width, count,
             got.data());
          ASSERT_EQ(got, expect)
              << simd::isa_name(isa) << " width=" << width
              << " offset=" << bit_begin << " count=" << count
              << " payload=" << static_cast<int>(kind);
          if (kind == Payload::kAllOnes) {
            const std::uint32_t saturated =
                width == 32 ? ~std::uint32_t{0}
                            : (std::uint32_t{1} << width) - 1;
            for (std::size_t i = 0; i < count; ++i) {
              ASSERT_EQ(got[i], saturated)
                  << simd::isa_name(isa) << " width=" << width
                  << " offset=" << bit_begin << " i=" << i;
            }
          }
        }
      }
    }
  }
}

TEST(UnpackSimdConformance, ScalarGrid) { run_grid(Isa::kScalar); }

TEST(UnpackSimdConformance, Avx2Grid) {
  if (!simd::variant_available(Isa::kAvx2))
    GTEST_SKIP() << "AVX2 tier not available on this build/host";
  run_grid(Isa::kAvx2);
}

TEST(UnpackSimdConformance, Avx512Grid) {
  if (!simd::variant_available(Isa::kAvx512))
    GTEST_SKIP() << "AVX-512 tier not available on this build/host";
  run_grid(Isa::kAvx512);
}

// Long unaligned runs across every variant pair: the grid bounds counts at
// 1000; this adds a 100k-value run so multi-page payloads and the
// block-loop/tail seam far from the buffer edges get one deep soak each.
TEST(UnpackSimdConformance, LongRunAllVariants) {
  for (const unsigned width : {1u, 5u, 13u, 14u, 17u, 25u, 26u, 31u, 32u}) {
    const std::size_t count = 100'000;
    const std::size_t bit_begin = 13;
    const auto words =
        make_payload(bit_begin, width, count, Payload::kRandom, width);
    const auto expect = reference(words.data(), bit_begin, width, count);
    for (const Isa isa : available_isas()) {
      std::vector<std::uint32_t> got(count);
      simd::variant_fn(isa)(words.data(), bit_begin, width, count, got.data());
      ASSERT_EQ(got, expect) << simd::isa_name(isa) << " width=" << width;
    }
  }
}

// --- dispatch layer ---------------------------------------------------------

/// Restores the dispatch tier a test flipped, even on assertion failure.
class IsaGuard {
 public:
  IsaGuard() : saved_(simd::active_isa()) {}
  ~IsaGuard() { simd::set_isa(saved_); }

 private:
  Isa saved_;
};

TEST(UnpackSimdDispatch, ScalarAlwaysAvailable) {
  EXPECT_TRUE(simd::variant_compiled(Isa::kScalar));
  EXPECT_TRUE(simd::cpu_supports(Isa::kScalar));
  EXPECT_NE(simd::variant_fn(Isa::kScalar), nullptr);
  EXPECT_TRUE(simd::variant_available(Isa::kScalar));
}

TEST(UnpackSimdDispatch, NamesRoundTrip) {
  for (const Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    Isa parsed{};
    ASSERT_TRUE(simd::parse_isa(simd::isa_name(isa), &parsed));
    EXPECT_EQ(parsed, isa);
  }
  Isa parsed{};
  EXPECT_FALSE(simd::parse_isa("neon", &parsed));
  EXPECT_FALSE(simd::parse_isa("", &parsed));
  EXPECT_FALSE(simd::parse_isa(nullptr, &parsed));
}

TEST(UnpackSimdDispatch, SetIsaRoutesAndRejects) {
  IsaGuard guard;
  for (const Isa isa : available_isas()) {
    ASSERT_TRUE(simd::set_isa(isa)) << simd::isa_name(isa);
    EXPECT_EQ(simd::active_isa(), isa);
  }
  // A tier that is not available must be refused and leave routing alone.
  for (const Isa isa : {Isa::kAvx2, Isa::kAvx512}) {
    if (simd::variant_available(isa)) continue;
    const Isa before = simd::active_isa();
    EXPECT_FALSE(simd::set_isa(isa));
    EXPECT_EQ(simd::active_isa(), before);
  }
}

/// unpack_words (32- and 64-bit outputs), RowCursor (both its buffered
/// block mode and short-run carry mode) and FixedWidthArray::get_range all
/// route through whatever tier is active: run them under each and demand
/// identical answers.
TEST(UnpackSimdDispatch, ConsumersAgreeUnderEveryTier) {
  IsaGuard guard;
  for (const unsigned width : {1u, 7u, 13u, 17u, 26u, 32u}) {
    pcq::util::SplitMix64 rng(width);
    const std::size_t n = 3000;
    std::vector<std::uint64_t> values(n);
    const std::uint64_t mask =
        width == 64 ? ~0ULL : ((std::uint64_t{1} << width) - 1);
    for (auto& v : values) v = rng.next() & mask;
    const auto packed = FixedWidthArray::pack_with_width(values, width, 2);
    for (const Isa isa : available_isas()) {
      ASSERT_TRUE(simd::set_isa(isa));
      // Bulk 64-bit out, offset rows so the range is not word-aligned.
      std::vector<std::uint64_t> out64(n - 1);
      packed.get_range(1, n - 1, out64);
      for (std::size_t i = 0; i < n - 1; ++i)
        ASSERT_EQ(out64[i], values[i + 1])
            << simd::isa_name(isa) << " width=" << width << " i=" << i;
      // Bulk 32-bit out (the VertexId column path).
      std::vector<std::uint32_t> out32(n - 1);
      packed.get_range_into(1, n - 1, out32.data());
      for (std::size_t i = 0; i < n - 1; ++i)
        ASSERT_EQ(out32[i], static_cast<std::uint32_t>(values[i + 1]))
            << simd::isa_name(isa) << " width=" << width << " i=" << i;
      // Streaming cursor: long run (buffered mode) and short run (carry
      // mode), both must agree with the packed values.
      RowCursor long_run = packed.cursor(1, n - 1);
      for (std::size_t i = 0; i < n - 1; ++i)
        ASSERT_EQ(long_run.next(), values[i + 1])
            << simd::isa_name(isa) << " width=" << width << " i=" << i;
      EXPECT_TRUE(long_run.done());
      RowCursor short_run = packed.cursor(5, 7);
      for (std::size_t i = 0; i < 7; ++i)
        ASSERT_EQ(short_run.next(), values[5 + i]) << simd::isa_name(isa);
      EXPECT_TRUE(short_run.done());
    }
  }
}

/// The cursor's block buffer must not read ahead past the payload: a
/// cursor over values at the very end of an exactly-sized buffer refills
/// in payload-clamped blocks (ASan arbitrates).
TEST(UnpackSimdDispatch, CursorRefillStaysInExactBuffer) {
  IsaGuard guard;
  for (const Isa isa : available_isas()) {
    ASSERT_TRUE(simd::set_isa(isa));
    for (const unsigned width : {3u, 13u, 26u, 31u}) {
      const std::size_t count = 61;  // not a multiple of any block size
      const std::size_t bit_begin = 7;
      const auto words =
          make_payload(bit_begin, width, count, Payload::kRandom, width);
      const auto expect = reference(words.data(), bit_begin, width, count);
      RowCursor cursor(words.data(), bit_begin, width, count);
      for (std::size_t i = 0; i < count; ++i)
        ASSERT_EQ(cursor.next(), expect[i])
            << simd::isa_name(isa) << " width=" << width << " i=" << i;
      EXPECT_TRUE(cursor.done());
    }
  }
}

}  // namespace
}  // namespace pcq::bits
