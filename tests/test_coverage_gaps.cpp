// Closing coverage gaps found in a final audit:
//   * EdgeList::sort_radix equivalence with the comparison sort,
//   * foremost_arrival against an independent time-expanded BFS oracle,
//   * GapZetaGraph across every legal zeta parameter,
//   * K2Tree boundary ids at the padding edge,
//   * temporal window/batch query boundary cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <set>

#include "csr/builder.hpp"
#include "graph/generators.hpp"
#include "graph/k2tree.hpp"
#include "graph/webgraph.hpp"
#include "tcsr/journeys.hpp"
#include "tcsr/tcsr.hpp"
#include "util/rng.hpp"

namespace pcq {
namespace {

using graph::Edge;
using graph::EdgeList;
using graph::TemporalEdgeList;
using graph::TimeFrame;
using graph::VertexId;

TEST(SortRadix, MatchesComparisonSortOnEdgeLists) {
  for (std::uint64_t seed : {1u, 7u, 19u}) {
    EdgeList a = graph::rmat(1 << 12, 40'000, 0.57, 0.19, 0.19, seed, 4);
    EdgeList b = a;
    a.sort(4);
    for (int p : {1, 4, 16}) {
      EdgeList c = b;
      c.sort_radix(p);
      ASSERT_EQ(c.size(), a.size());
      for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(c.edges()[i], a.edges()[i]) << "seed=" << seed << " p=" << p;
    }
  }
}

TEST(SortRadix, LargeIdsUseFullKeyWidth) {
  // Ids near 2^32 exercise the upper radix digits.
  EdgeList g;
  pcq::util::SplitMix64 rng(3);
  for (int i = 0; i < 5000; ++i)
    g.push_back({static_cast<VertexId>(rng.next()),
                 static_cast<VertexId>(rng.next())});
  EdgeList ref = g;
  ref.sort(1);
  g.sort_radix(4);
  for (std::size_t i = 0; i < g.size(); ++i)
    ASSERT_EQ(g.edges()[i], ref.edges()[i]);
}

/// Independent oracle for foremost journeys: explicit per-frame snapshot
/// adjacency + frame-by-frame closure, written without any pcq machinery
/// beyond edge_active.
std::vector<TimeFrame> oracle_arrival(const tcsr::DifferentialTcsr& tcsr,
                                      VertexId source, TimeFrame start) {
  const VertexId n = tcsr.num_nodes();
  const TimeFrame frames = tcsr.num_frames();
  std::vector<TimeFrame> arrival(n, tcsr::kNeverReached);
  arrival[source] = start;
  for (TimeFrame t = start; t < frames; ++t) {
    // Closure over the snapshot at t.
    bool changed = true;
    while (changed) {
      changed = false;
      for (VertexId u = 0; u < n; ++u) {
        if (arrival[u] == tcsr::kNeverReached || arrival[u] > t) continue;
        for (VertexId v = 0; v < n; ++v) {
          if (arrival[v] != tcsr::kNeverReached) continue;
          if (tcsr.edge_active(u, v, t)) {
            arrival[v] = t;
            changed = true;
          }
        }
      }
    }
  }
  return arrival;
}

TEST(ForemostArrival, MatchesBruteForceOracle) {
  const TemporalEdgeList evs = graph::evolving_graph(24, 260, 6, 91, 4);
  const auto tcsr = tcsr::DifferentialTcsr::build(evs, 24, 6, 4);
  for (VertexId source : {VertexId{0}, VertexId{7}, VertexId{23}}) {
    for (TimeFrame start : {TimeFrame{0}, TimeFrame{2}}) {
      EXPECT_EQ(tcsr::foremost_arrival(tcsr, source, start, 4),
                oracle_arrival(tcsr, source, start))
          << "source=" << source << " start=" << start;
    }
  }
}

TEST(GapZeta, AllLegalShrinkingParameters) {
  EdgeList g = graph::rmat(256, 5000, 0.57, 0.19, 0.19, 5, 4);
  g.sort(4);
  g.dedupe();
  const csr::CsrGraph ref = csr::build_csr_from_sorted(g, 256, 4);
  for (unsigned k = 1; k <= 16; ++k) {
    const graph::GapZetaGraph z =
        graph::GapZetaGraph::build_from_sorted(g, 256, k, 4);
    for (VertexId u = 0; u < 256; u += 19) {
      const auto row = z.neighbors(u);
      const auto expect = ref.neighbors(u);
      ASSERT_EQ(row.size(), expect.size()) << "k=" << k << " u=" << u;
      ASSERT_TRUE(std::equal(row.begin(), row.end(), expect.begin()))
          << "k=" << k;
    }
  }
}

TEST(K2Tree, BoundaryIdsAtPaddingEdge) {
  // n = 9 pads to s = 16 (k = 2): ids 8 and edges touching the last real
  // row/column sit exactly on the padding boundary.
  EdgeList g({{8, 0}, {0, 8}, {8, 8}, {7, 8}});
  const graph::K2Tree t = graph::K2Tree::build(g, 9, 2, 2);
  EXPECT_TRUE(t.has_edge(8, 0));
  EXPECT_TRUE(t.has_edge(0, 8));
  EXPECT_TRUE(t.has_edge(8, 8));
  EXPECT_TRUE(t.has_edge(7, 8));
  EXPECT_FALSE(t.has_edge(8, 7));
  EXPECT_EQ(t.neighbors(8), (std::vector<VertexId>{0, 8}));
  EXPECT_EQ(t.reverse_neighbors(8), (std::vector<VertexId>{0, 7, 8}));
}

TEST(TemporalWindows, DegenerateSingleFrameWindow) {
  TemporalEdgeList evs({{0, 1, 0}, {0, 1, 2}});
  evs.sort(2);
  const auto tcsr = tcsr::DifferentialTcsr::build(evs, 2, 4, 2);
  EXPECT_TRUE(tcsr.edge_active_in_window(0, 1, 1, 1));
  EXPECT_FALSE(tcsr.edge_active_in_window(0, 1, 2, 2));
  EXPECT_FALSE(tcsr.edge_active_in_window(0, 1, 3, 3));
}

TEST(TemporalBatches, EmptyQueryArrays) {
  const auto tcsr = tcsr::DifferentialTcsr::build(
      TemporalEdgeList({{0, 1, 0}}), 2, 1, 2);
  EXPECT_TRUE(tcsr.batch_edge_active({}, 4).empty());
  EXPECT_TRUE(tcsr.batch_neighbors_at({}, 4).empty());
}

}  // namespace
}  // namespace pcq
