#include "tcsr/edge_set.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace pcq::tcsr {
namespace {

using graph::Edge;

SortedEdgeSet make_set(std::vector<Edge> edges) {
  return SortedEdgeSet::from_multiset(std::move(edges));
}

TEST(SortedEdgeSet, DefaultIsEmptyIdentity) {
  SortedEdgeSet empty;
  SortedEdgeSet s = make_set({{0, 1}, {2, 3}});
  EXPECT_EQ(symmetric_difference(empty, s), s);
  EXPECT_EQ(symmetric_difference(s, empty), s);
}

TEST(SortedEdgeSet, FromMultisetParityCancellation) {
  // (0,1) x2 cancels, (2,3) x3 survives once, (4,5) x1 survives.
  const SortedEdgeSet s =
      make_set({{2, 3}, {0, 1}, {2, 3}, {4, 5}, {0, 1}, {2, 3}});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains({2, 3}));
  EXPECT_TRUE(s.contains({4, 5}));
  EXPECT_FALSE(s.contains({0, 1}));
}

TEST(SortedEdgeSet, SelfInverse) {
  const SortedEdgeSet s = make_set({{0, 1}, {5, 2}, {9, 9}});
  EXPECT_TRUE(symmetric_difference(s, s).empty());
}

TEST(SortedEdgeSet, Commutative) {
  const SortedEdgeSet a = make_set({{0, 1}, {2, 3}});
  const SortedEdgeSet b = make_set({{2, 3}, {4, 5}});
  EXPECT_EQ(symmetric_difference(a, b), symmetric_difference(b, a));
}

TEST(SortedEdgeSet, KnownSymmetricDifference) {
  const SortedEdgeSet a = make_set({{0, 1}, {2, 3}, {4, 5}});
  const SortedEdgeSet b = make_set({{2, 3}, {6, 7}});
  const SortedEdgeSet d = symmetric_difference(a, b);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_TRUE(d.contains({0, 1}));
  EXPECT_TRUE(d.contains({4, 5}));
  EXPECT_TRUE(d.contains({6, 7}));
  EXPECT_FALSE(d.contains({2, 3}));
}

TEST(SortedEdgeSet, AssociativeOnRandomSets) {
  pcq::util::SplitMix64 rng(5);
  auto random_set = [&] {
    std::vector<Edge> edges;
    for (int i = 0; i < 50; ++i)
      edges.push_back({static_cast<graph::VertexId>(rng.next_below(16)),
                       static_cast<graph::VertexId>(rng.next_below(16))});
    return make_set(std::move(edges));
  };
  for (int trial = 0; trial < 20; ++trial) {
    const SortedEdgeSet a = random_set(), b = random_set(), c = random_set();
    EXPECT_EQ(symmetric_difference(symmetric_difference(a, b), c),
              symmetric_difference(a, symmetric_difference(b, c)));
  }
}

TEST(SortedEdgeSet, ResultStaysSorted) {
  pcq::util::SplitMix64 rng(7);
  std::vector<Edge> ea, eb;
  for (int i = 0; i < 200; ++i) {
    ea.push_back({static_cast<graph::VertexId>(rng.next_below(32)),
                  static_cast<graph::VertexId>(rng.next_below(32))});
    eb.push_back({static_cast<graph::VertexId>(rng.next_below(32)),
                  static_cast<graph::VertexId>(rng.next_below(32))});
  }
  const SortedEdgeSet d =
      symmetric_difference(make_set(std::move(ea)), make_set(std::move(eb)));
  const auto edges = d.edges();
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  EXPECT_EQ(std::adjacent_find(edges.begin(), edges.end()), edges.end());
}

TEST(SortedEdgeSet, TakeReleasesVector) {
  SortedEdgeSet s = make_set({{1, 2}, {0, 1}});
  const std::vector<Edge> v = std::move(s).take();
  EXPECT_EQ(v, (std::vector<Edge>{{0, 1}, {1, 2}}));
}

}  // namespace
}  // namespace pcq::tcsr
