#include "svc/mpmc_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "svc/service.hpp"

namespace pcq::svc {
namespace {

using namespace std::chrono_literals;

constexpr auto kLong = std::chrono::microseconds(1'000'000);
constexpr auto kShort = std::chrono::microseconds(0);

TEST(BoundedMpmcQueue, RejectsWhenFull) {
  BoundedMpmcQueue<int> q(3);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_FALSE(q.try_push(4));  // bounded: reject, never block
  EXPECT_EQ(q.size(), 3u);

  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 8, kLong, kShort), 3u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(q.try_push(4));  // space again after the pop
}

TEST(BoundedMpmcQueue, FlushesOnBatchSize) {
  BoundedMpmcQueue<int> q(64);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.try_push(int{i}));
  std::vector<int> out;
  // Window is huge, but max_items=4 must flush immediately.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(q.pop_batch(out, 4, kLong, std::chrono::microseconds(10'000'000)),
            4u);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 1s);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.size(), 6u);
}

TEST(BoundedMpmcQueue, FlushesOnWindowDeadline) {
  BoundedMpmcQueue<int> q(64);
  ASSERT_TRUE(q.try_push(7));
  std::vector<int> out;
  // Only one element available: the 2ms window must expire and flush a
  // partial batch rather than waiting for max_items.
  EXPECT_EQ(q.pop_batch(out, 100, kLong, std::chrono::microseconds(2000)), 1u);
  EXPECT_EQ(out, std::vector<int>{7});
}

TEST(BoundedMpmcQueue, PopTimesOutOnEmptyQueue) {
  BoundedMpmcQueue<int> q(4);
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 4, std::chrono::microseconds(1000), kShort), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(BoundedMpmcQueue, CloseDrainsThenReturnsZero) {
  BoundedMpmcQueue<int> q(8);
  ASSERT_TRUE(q.try_push(1));
  ASSERT_TRUE(q.try_push(2));
  q.close();
  EXPECT_FALSE(q.try_push(3));  // closed rejects producers
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 8, kLong, kLong), 2u);  // drains without waiting
  EXPECT_EQ(q.pop_batch(out, 8, kLong, kLong), 0u);  // then always 0
}

TEST(BoundedMpmcQueue, CloseWakesBlockedConsumer) {
  BoundedMpmcQueue<int> q(4);
  std::thread consumer([&q] {
    std::vector<int> out;
    EXPECT_EQ(q.pop_batch(out, 4, std::chrono::microseconds(10'000'000),
                          kShort),
              0u);
  });
  std::this_thread::sleep_for(10ms);
  q.close();
  consumer.join();
}

// The TSan target: concurrent producers and consumers moving every element
// exactly once, with rejections retried.
TEST(BoundedMpmcQueue, ConcurrentProducersConsumersDeliverEverything) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 2;
  constexpr int kPerProducer = 2000;
  BoundedMpmcQueue<int> q(64);
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> popped{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c)
    consumers.emplace_back([&] {
      std::vector<int> out;
      for (;;) {
        out.clear();
        const std::size_t n =
            q.pop_batch(out, 16, std::chrono::microseconds(50'000),
                        std::chrono::microseconds(100));
        for (std::size_t i = 0; i < n; ++i)
          sum.fetch_add(static_cast<std::uint64_t>(out[i]),
                        std::memory_order_relaxed);
        popped.fetch_add(n, std::memory_order_relaxed);
        if (n == 0 && q.closed()) return;
      }
    });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        while (!q.try_push(int{value})) std::this_thread::yield();
      }
    });
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  const std::uint64_t total = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), total);
  EXPECT_EQ(sum.load(), total * (total - 1) / 2);
}

// The adaptive batch-window controller. Regression: repeated halving used
// to decay the window to a permanent 0us (0 / 2 == 0), silently turning
// the service into single-dispatch mode with no way back. The controller
// must floor at 1us and grow again when batches run near-full.
TEST(AdaptiveWindow, ShrinkFloorsAtOneMicrosecondAndRecovers) {
  ServiceConfig config;
  config.max_batch = 256;
  config.batch_window = std::chrono::microseconds(200);
  auto window = config.batch_window;
  for (int i = 0; i < 64; ++i)
    window = adapt_window(window, /*batch_size=*/1, config);
  EXPECT_EQ(window, std::chrono::microseconds(1));  // floored, not zero
  // A run of near-full batches must reopen the window from the floor.
  for (int i = 0; i < 64 && window < config.batch_window; ++i)
    window = adapt_window(window, config.max_batch, config);
  EXPECT_EQ(window, config.batch_window);
}

TEST(AdaptiveWindow, GrowsOnlyOnNearFullBatches) {
  ServiceConfig config;
  config.max_batch = 256;
  config.batch_window = std::chrono::microseconds(200);
  const auto mid = std::chrono::microseconds(100);
  // 7/8 of max_batch is the near-full threshold: one request below it
  // still shrinks, at it the window grows.
  const std::size_t near_full = config.max_batch - config.max_batch / 8;
  EXPECT_LT(adapt_window(mid, near_full - 1, config), mid);
  EXPECT_GT(adapt_window(mid, near_full, config), mid);
  // Growth saturates at the configured window, never beyond.
  EXPECT_EQ(adapt_window(config.batch_window, config.max_batch, config),
            config.batch_window);
}

}  // namespace
}  // namespace pcq::svc
