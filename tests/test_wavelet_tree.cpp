#include "bits/wavelet_tree.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "util/rng.hpp"

namespace pcq::bits {
namespace {

std::vector<std::uint32_t> random_sequence(std::size_t n, std::uint32_t sigma,
                                           std::uint64_t seed) {
  pcq::util::SplitMix64 rng(seed);
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) x = static_cast<std::uint32_t>(rng.next_below(sigma));
  return v;
}

TEST(WaveletTree, EmptySequence) {
  const WaveletTree wt = WaveletTree::build({}, 8);
  EXPECT_EQ(wt.size(), 0u);
  EXPECT_EQ(wt.rank(3, 0), 0u);
}

TEST(WaveletTree, SingleSymbolAlphabet) {
  const std::vector<std::uint32_t> v(100, 0);
  const WaveletTree wt = WaveletTree::build(v);
  EXPECT_EQ(wt.alphabet_size(), 1u);
  EXPECT_EQ(wt.rank(0, 100), 100u);
  EXPECT_EQ(wt.access(57), 0u);
}

TEST(WaveletTree, KnownSmallSequence) {
  const std::vector<std::uint32_t> v{3, 1, 4, 1, 5, 1, 2, 6, 5, 3};
  const WaveletTree wt = WaveletTree::build(v);
  EXPECT_EQ(wt.alphabet_size(), 7u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(wt.access(i), v[i]) << i;
  EXPECT_EQ(wt.rank(1, 10), 3u);
  EXPECT_EQ(wt.rank(1, 4), 2u);
  EXPECT_EQ(wt.rank(5, 9), 2u);  // positions 4 and 8
  EXPECT_EQ(wt.rank(5, 8), 1u);
  EXPECT_EQ(wt.count(2, 6, 1), 2u);
  EXPECT_EQ(wt.count(0, 10, 7), 0u);  // absent symbol within alphabet bound
}

TEST(WaveletTree, AccessMatchesInput) {
  const auto v = random_sequence(5000, 300, 3);
  const WaveletTree wt = WaveletTree::build(v);
  for (std::size_t i = 0; i < v.size(); i += 7) EXPECT_EQ(wt.access(i), v[i]);
}

TEST(WaveletTree, RankMatchesBruteForce) {
  const auto v = random_sequence(3000, 50, 5);
  const WaveletTree wt = WaveletTree::build(v);
  std::vector<std::size_t> running(50, 0);
  for (std::size_t i = 0; i <= v.size(); i += 113) {
    for (std::uint32_t c = 0; c < 50; c += 7) {
      std::size_t expected = 0;
      for (std::size_t j = 0; j < i; ++j) expected += v[j] == c;
      ASSERT_EQ(wt.rank(c, i), expected) << "c=" << c << " i=" << i;
    }
  }
}

TEST(WaveletTree, RankOfOutOfAlphabetSymbolIsZero) {
  const auto v = random_sequence(100, 10, 7);
  const WaveletTree wt = WaveletTree::build(v, 10);
  EXPECT_EQ(wt.rank(10'000, 100), 0u);
}

TEST(WaveletTree, NonPowerOfTwoAlphabet) {
  const auto v = random_sequence(2000, 37, 9);
  const WaveletTree wt = WaveletTree::build(v, 37);
  for (std::uint32_t c = 0; c < 37; ++c) {
    std::size_t expected = 0;
    for (auto x : v) expected += x == c;
    ASSERT_EQ(wt.rank(c, v.size()), expected) << c;
  }
}

TEST(WaveletTree, ForEachDistinctCountsAndOrder) {
  const auto v = random_sequence(1000, 16, 11);
  const WaveletTree wt = WaveletTree::build(v, 16);
  constexpr std::size_t kLo = 123, kHi = 789;
  std::map<std::uint32_t, std::size_t> expected;
  for (std::size_t i = kLo; i < kHi; ++i) ++expected[v[i]];

  std::vector<std::pair<std::uint32_t, std::size_t>> got;
  wt.for_each_distinct(kLo, kHi, [&](std::uint32_t sym, std::size_t count) {
    got.emplace_back(sym, count);
  });
  ASSERT_EQ(got.size(), expected.size());
  std::size_t idx = 0;
  for (const auto& [sym, count] : expected) {  // std::map iterates ascending
    EXPECT_EQ(got[idx].first, sym);
    EXPECT_EQ(got[idx].second, count);
    ++idx;
  }
}

TEST(WaveletTree, ForEachDistinctEmptyRange) {
  const auto v = random_sequence(100, 8, 13);
  const WaveletTree wt = WaveletTree::build(v, 8);
  bool called = false;
  wt.for_each_distinct(50, 50, [&](std::uint32_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(WaveletTree, SpaceIsAboutLogSigmaBitsPerSymbol) {
  const auto v = random_sequence(1 << 16, 1 << 10, 15);
  const WaveletTree wt = WaveletTree::build(v, 1 << 10);
  // 10 levels of n bits + 12.5% rank overhead + small constants.
  const std::size_t raw_bits = static_cast<std::size_t>(1 << 16) * 10;
  EXPECT_LT(wt.size_bytes(), raw_bits / 8 * 5 / 4 + 1024);
}

}  // namespace
}  // namespace pcq::bits
