#include "algos/sssp.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace pcq::algos {
namespace {

using graph::VertexId;
using graph::WeightedEdge;

csr::WeightedCsr weighted_csr(std::vector<WeightedEdge> edges, VertexId n) {
  std::sort(edges.begin(), edges.end());
  return csr::WeightedCsr::build_from_sorted(edges, n, 4);
}

TEST(Sssp, DiamondPicksCheaperPath) {
  //   0 -> 1 (1), 0 -> 2 (10), 1 -> 2 (1): dist(2) = 2 via 1.
  const auto g = weighted_csr({{0, 1, 1}, {0, 2, 10}, {1, 2, 1}}, 3);
  const auto d = sssp_dijkstra(g, 0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], 2u);
}

TEST(Sssp, UnreachableNodesInf) {
  const auto g = weighted_csr({{0, 1, 5}}, 4);
  const auto d = sssp_dijkstra(g, 0);
  EXPECT_EQ(d[1], 5u);
  EXPECT_EQ(d[2], kInfDistance);
  EXPECT_EQ(d[3], kInfDistance);
}

TEST(Sssp, ZeroWeightEdges) {
  const auto g = weighted_csr({{0, 1, 0}, {1, 2, 0}, {0, 2, 5}}, 3);
  const auto d = sssp_dijkstra(g, 0);
  EXPECT_EQ(d[2], 0u);
}

TEST(Sssp, BellmanFordMatchesDijkstraOnRandomGraphs) {
  pcq::util::SplitMix64 rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<WeightedEdge> edges(4000);
    for (auto& e : edges)
      e = {static_cast<VertexId>(rng.next_below(300)),
           static_cast<VertexId>(rng.next_below(300)),
           static_cast<std::uint32_t>(rng.next_below(100))};
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const WeightedEdge& a, const WeightedEdge& b) {
                              return a.u == b.u && a.v == b.v;
                            }),
                edges.end());
    const auto g = csr::WeightedCsr::build_from_sorted(edges, 300, 4);
    const auto ref = sssp_dijkstra(g, 0);
    for (int p : {1, 4, 8}) {
      EXPECT_EQ(sssp_bellman_ford(g, 0, p), ref)
          << "trial=" << trial << " p=" << p;
    }
  }
}

TEST(Sssp, LongChainAccumulates) {
  std::vector<WeightedEdge> edges;
  for (VertexId i = 0; i + 1 < 100; ++i) edges.push_back({i, i + 1, 3});
  const auto g = weighted_csr(std::move(edges), 100);
  const auto d = sssp_dijkstra(g, 0);
  EXPECT_EQ(d[99], 99u * 3);
  EXPECT_EQ(sssp_bellman_ford(g, 0, 4)[99], 99u * 3);
}

TEST(Sssp, LargeWeightsNoOverflow) {
  // Two hops of ~2^31 weights exceed 32 bits.
  const std::uint32_t big = 0xf0000000u;
  const auto g = weighted_csr({{0, 1, big}, {1, 2, big}}, 3);
  const auto d = sssp_dijkstra(g, 0);
  EXPECT_EQ(d[2], 2ull * big);
}

TEST(Sssp, SourceOnlyGraph) {
  const auto g = weighted_csr({}, 1);
  EXPECT_EQ(sssp_dijkstra(g, 0), (std::vector<std::uint64_t>{0}));
  EXPECT_EQ(sssp_bellman_ford(g, 0, 4), (std::vector<std::uint64_t>{0}));
}

}  // namespace
}  // namespace pcq::algos
