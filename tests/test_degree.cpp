#include "csr/degree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "util/rng.hpp"

namespace pcq::csr {
namespace {

using graph::VertexId;

TEST(SequentialDegree, PaperFigure3Example) {
  // Figure 3's input: sorted source ids 0 0 1 1 1 2 3 3 4 5 5 5 (grouped
  // runs across chunk boundaries).
  const std::vector<VertexId> sources{0, 0, 1, 1, 1, 2, 3, 3, 4, 5, 5, 5};
  const auto deg = sequential_degree_from_sorted(sources, 6);
  EXPECT_EQ(deg, (std::vector<std::uint32_t>{2, 3, 1, 2, 1, 3}));
}

TEST(SequentialDegree, EmptyInput) {
  EXPECT_EQ(sequential_degree_from_sorted({}, 4),
            (std::vector<std::uint32_t>{0, 0, 0, 0}));
}

TEST(ParallelDegree, MatchesSequentialOnFigure3) {
  const std::vector<VertexId> sources{0, 0, 1, 1, 1, 2, 3, 3, 4, 5, 5, 5};
  for (int p : {1, 2, 3, 4, 8, 12, 64}) {
    EXPECT_EQ(parallel_degree_from_sorted(sources, 6, p),
              sequential_degree_from_sorted(sources, 6))
        << "p=" << p;
  }
}

TEST(ParallelDegree, ZeroDegreeNodesStayZero) {
  const std::vector<VertexId> sources{2, 2, 7};
  const auto deg = parallel_degree_from_sorted(sources, 10, 4);
  EXPECT_EQ(deg[0], 0u);
  EXPECT_EQ(deg[2], 2u);
  EXPECT_EQ(deg[7], 1u);
  EXPECT_EQ(deg[9], 0u);
}

TEST(ParallelDegree, SingleRunSpanningEveryChunk) {
  // The corner case the paper glosses over: one node's run covers the
  // whole array, so every chunk spills into globalTempDegree and the merge
  // must accumulate them all onto one node.
  const std::vector<VertexId> sources(1000, 3);
  for (int p : {2, 4, 8, 64}) {
    const auto deg = parallel_degree_from_sorted(sources, 5, p);
    EXPECT_EQ(deg[3], 1000u) << "p=" << p;
    EXPECT_EQ(deg[0] + deg[1] + deg[2] + deg[4], 0u);
  }
}

TEST(ParallelDegree, RunSpanningTwoBoundaries) {
  // 12 elements, 4 chunks of 3: node 1's run occupies positions 2..8,
  // crossing two chunk boundaries.
  const std::vector<VertexId> sources{0, 0, 1, 1, 1, 1, 1, 1, 1, 2, 2, 3};
  const auto deg = parallel_degree_from_sorted(sources, 4, 4);
  EXPECT_EQ(deg, (std::vector<std::uint32_t>{2, 7, 2, 1}));
}

TEST(ParallelDegree, EveryNodeDistinct) {
  std::vector<VertexId> sources(100);
  for (VertexId i = 0; i < 100; ++i) sources[i] = i;
  const auto deg = parallel_degree_from_sorted(sources, 100, 8);
  EXPECT_TRUE(std::all_of(deg.begin(), deg.end(),
                          [](std::uint32_t d) { return d == 1; }));
}

// Property sweep: random sorted arrays, all thread counts, vs sequential.
class ParallelDegreeProperty
    : public testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(ParallelDegreeProperty, MatchesSequential) {
  const auto [n, threads] = GetParam();
  pcq::util::SplitMix64 rng(n * 131 + threads);
  constexpr VertexId kNodes = 64;
  std::vector<VertexId> sources(n);
  for (auto& s : sources) s = static_cast<VertexId>(rng.next_below(kNodes));
  std::sort(sources.begin(), sources.end());
  EXPECT_EQ(parallel_degree_from_sorted(sources, kNodes, threads),
            sequential_degree_from_sorted(sources, kNodes));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelDegreeProperty,
    testing::Combine(testing::Values<std::size_t>(0, 1, 2, 3, 63, 64, 65, 1000,
                                                  10'000),
                     testing::Values(1, 2, 3, 4, 8, 16, 64)));

}  // namespace
}  // namespace pcq::csr
