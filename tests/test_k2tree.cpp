#include "graph/k2tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "csr/builder.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace pcq::graph {
namespace {

EdgeList sorted_dedup(EdgeList g) {
  g.sort(4);
  g.dedupe();
  return g;
}

TEST(K2Tree, TableOneExample) {
  // The paper's Table I matrix (full symmetric form).
  EdgeList g({{0, 5}, {1, 6}, {1, 7}, {2, 7}, {3, 8}, {3, 9}, {4, 9},
              {5, 0}, {6, 1}, {7, 1}, {7, 2}, {8, 2}, {8, 3}, {9, 3}, {9, 4}});
  const K2Tree t = K2Tree::build(g, 10, 2, 2);
  EXPECT_EQ(t.num_edges(), g.size());
  EXPECT_TRUE(t.has_edge(0, 5));
  EXPECT_TRUE(t.has_edge(9, 4));
  EXPECT_FALSE(t.has_edge(0, 1));
  EXPECT_FALSE(t.has_edge(5, 5));
  EXPECT_EQ(t.neighbors(1), (std::vector<VertexId>{6, 7}));
  EXPECT_EQ(t.neighbors(3), (std::vector<VertexId>{8, 9}));
  EXPECT_EQ(t.reverse_neighbors(9), (std::vector<VertexId>{3, 4}));
}

TEST(K2Tree, EmptyGraph) {
  const K2Tree t = K2Tree::build(EdgeList{}, 8, 2, 2);
  EXPECT_EQ(t.num_edges(), 0u);
  EXPECT_FALSE(t.has_edge(0, 0));
  EXPECT_TRUE(t.neighbors(3).empty());
}

TEST(K2Tree, SingleEdgeDeepTree) {
  const K2Tree t = K2Tree::build(EdgeList({{1000, 2000}}), 3000, 2, 2);
  EXPECT_TRUE(t.has_edge(1000, 2000));
  EXPECT_FALSE(t.has_edge(2000, 1000));
  EXPECT_EQ(t.neighbors(1000), (std::vector<VertexId>{2000}));
  EXPECT_EQ(t.reverse_neighbors(2000), (std::vector<VertexId>{1000}));
}

class K2TreeParam : public testing::TestWithParam<unsigned> {};

TEST_P(K2TreeParam, MatchesCsrOnRandomGraph) {
  const unsigned k = GetParam();
  const EdgeList g = sorted_dedup(rmat(600, 12'000, 0.57, 0.19, 0.19, 3, 4));
  const csr::CsrGraph csr = csr::build_csr_from_sorted(g, 600, 4);
  const K2Tree t = K2Tree::build(g, 600, k, 4);
  ASSERT_EQ(t.num_edges(), csr.num_edges());
  for (VertexId u = 0; u < 600; u += 7) {
    const auto row = t.neighbors(u);
    const auto expect = csr.neighbors(u);
    ASSERT_EQ(row.size(), expect.size()) << "k=" << k << " u=" << u;
    EXPECT_TRUE(std::equal(row.begin(), row.end(), expect.begin()));
  }
  pcq::util::SplitMix64 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(600));
    const auto v = static_cast<VertexId>(rng.next_below(600));
    ASSERT_EQ(t.has_edge(u, v), csr.has_edge(u, v))
        << "k=" << k << " " << u << "," << v;
  }
}

TEST_P(K2TreeParam, ReverseNeighborsMatchTranspose) {
  const unsigned k = GetParam();
  const EdgeList g = sorted_dedup(rmat(300, 5000, 0.57, 0.19, 0.19, 7, 4));
  const K2Tree t = K2Tree::build(g, 300, k, 4);
  std::vector<std::vector<VertexId>> in_rows(300);
  for (const Edge& e : g.edges()) in_rows[e.v].push_back(e.u);
  for (VertexId v = 0; v < 300; v += 11) {
    std::sort(in_rows[v].begin(), in_rows[v].end());
    EXPECT_EQ(t.reverse_neighbors(v), in_rows[v]) << "k=" << k << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, K2TreeParam, testing::Values(2u, 4u, 8u));

TEST(K2Tree, ThreadCountInvariance) {
  const EdgeList g = sorted_dedup(rmat(400, 8000, 0.57, 0.19, 0.19, 9, 4));
  const K2Tree ref = K2Tree::build(g, 400, 2, 1);
  for (int p : {2, 4, 8}) {
    const K2Tree t = K2Tree::build(g, 400, 2, p);
    EXPECT_EQ(t.size_bytes(), ref.size_bytes()) << "p=" << p;
    for (VertexId u = 0; u < 400; u += 37)
      EXPECT_EQ(t.neighbors(u), ref.neighbors(u)) << "p=" << p;
  }
}

TEST(K2Tree, SparseClusteredBeatsItsDenseFootprint) {
  // A graph living entirely in one corner of the id space: the k²-tree
  // prunes the empty quadrants at one bit per level.
  EdgeList corner;
  for (VertexId u = 0; u < 64; ++u)
    for (VertexId v = 0; v < 64; ++v)
      if (((u * 31 + v) % 7) == 0) corner.push_back({u, v});
  const K2Tree small_ids = K2Tree::build(corner, 64, 2, 2);
  // Same edges embedded in a 100x larger id space.
  const K2Tree large_ids = K2Tree::build(corner, 6400, 2, 2);
  // The embedding costs only O(levels) extra bits, not O(n^2).
  EXPECT_LT(large_ids.size_bytes(), small_ids.size_bytes() + 128);
}

TEST(K2Tree, PaddingColumnsNeverReported) {
  // n = 5 pads to s = 8; nodes 5-7 are padding and must stay invisible.
  const EdgeList g({{0, 4}, {4, 0}});
  const K2Tree t = K2Tree::build(g, 5, 2, 2);
  for (VertexId u = 0; u < 5; ++u)
    for (VertexId v : t.neighbors(u)) EXPECT_LT(v, 5u);
  EXPECT_FALSE(t.has_edge(6, 6));
}

}  // namespace
}  // namespace pcq::graph
