#include "par/prefix_sum.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "util/rng.hpp"

namespace pcq::par {
namespace {

std::vector<std::uint64_t> random_values(std::size_t n, std::uint64_t seed) {
  pcq::util::SplitMix64 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_below(1000);
  return v;
}

std::vector<std::uint64_t> reference_scan(std::vector<std::uint64_t> v) {
  std::partial_sum(v.begin(), v.end(), v.begin());
  return v;
}

TEST(SequentialScan, MatchesPartialSum) {
  auto v = random_values(257, 1);
  const auto expected = reference_scan(v);
  sequential_inclusive_scan(std::span<std::uint64_t>(v));
  EXPECT_EQ(v, expected);
}

TEST(ChunkedScan, EmptyAndSingleton) {
  std::vector<std::uint64_t> empty;
  chunked_inclusive_scan(std::span<std::uint64_t>(empty), 4);
  EXPECT_TRUE(empty.empty());

  std::vector<std::uint64_t> one{42};
  chunked_inclusive_scan(std::span<std::uint64_t>(one), 4);
  EXPECT_EQ(one, (std::vector<std::uint64_t>{42}));
}

TEST(ChunkedScan, PaperFigure2Shape) {
  // Figure 2's walkthrough: chunked scan equals the sequential scan on a
  // small array with 4 chunks.
  std::vector<std::uint64_t> v{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8};
  const auto expected = reference_scan(v);
  chunked_inclusive_scan(std::span<std::uint64_t>(v), 4);
  EXPECT_EQ(v, expected);
}

TEST(ChunkedScan, MoreThreadsThanElements) {
  std::vector<std::uint64_t> v{1, 2, 3};
  const auto expected = reference_scan(v);
  chunked_inclusive_scan(std::span<std::uint64_t>(v), 64);
  EXPECT_EQ(v, expected);
}

TEST(ChunkedScan, GenericMonoidMax) {
  std::vector<std::uint64_t> v{3, 1, 7, 2, 9, 4, 9, 1};
  auto expected = v;
  for (std::size_t i = 1; i < expected.size(); ++i)
    expected[i] = std::max(expected[i - 1], expected[i]);
  chunked_inclusive_scan(std::span<std::uint64_t>(v), 3,
                         [](std::uint64_t a, std::uint64_t b) {
                           return std::max(a, b);
                         });
  EXPECT_EQ(v, expected);
}

TEST(ChunkedScan, GenericMonoidXor) {
  auto v = random_values(1000, 5);
  auto expected = v;
  for (std::size_t i = 1; i < expected.size(); ++i) expected[i] ^= expected[i - 1];
  chunked_inclusive_scan(std::span<std::uint64_t>(v), 8,
                         std::bit_xor<std::uint64_t>{});
  EXPECT_EQ(v, expected);
}

TEST(BlellochScan, MatchesReferenceNonPowerOfTwo) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 63u, 64u, 65u, 1000u}) {
    auto v = random_values(n, n);
    const auto expected = reference_scan(v);
    blelloch_inclusive_scan(std::span<std::uint64_t>(v), 4);
    EXPECT_EQ(v, expected) << "n=" << n;
  }
}

TEST(OffsetsFromDegrees, BasicShape) {
  // Paper Figure 1: degrees of the 10-node example's upper triangle.
  std::vector<std::uint32_t> degrees{1, 2, 1, 2, 1, 0, 0, 0, 0, 0};
  const auto offsets = offsets_from_degrees(degrees, 4);
  ASSERT_EQ(offsets.size(), 11u);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), 7u);  // total degree
  for (std::size_t i = 0; i < degrees.size(); ++i)
    EXPECT_EQ(offsets[i + 1] - offsets[i], degrees[i]);
}

TEST(OffsetsFromDegrees, EmptyDegrees) {
  const auto offsets = offsets_from_degrees({}, 4);
  EXPECT_EQ(offsets, (std::vector<std::uint64_t>{0}));
}

TEST(OffsetsFromDegrees, NoOverflowAt32BitBoundary) {
  // Two nodes of degree 2^31 each: the sum needs 33 bits.
  std::vector<std::uint32_t> degrees{0x80000000u, 0x80000000u};
  const auto offsets = offsets_from_degrees(degrees, 2);
  EXPECT_EQ(offsets.back(), 0x100000000ull);
}

// Property sweep: chunked == sequential for every (size, threads) combo.
class ChunkedScanProperty
    : public testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(ChunkedScanProperty, MatchesReference) {
  const auto [n, threads] = GetParam();
  auto v = random_values(n, 1234 + n + threads);
  const auto expected = reference_scan(v);
  chunked_inclusive_scan(std::span<std::uint64_t>(v), threads);
  EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChunkedScanProperty,
    testing::Combine(testing::Values<std::size_t>(0, 1, 2, 3, 15, 16, 17, 100,
                                                  1023, 4096, 100003),
                     testing::Values(1, 2, 3, 4, 8, 16, 64)));

class BlellochScanProperty
    : public testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(BlellochScanProperty, MatchesReference) {
  const auto [n, threads] = GetParam();
  auto v = random_values(n, 999 + n + threads);
  const auto expected = reference_scan(v);
  blelloch_inclusive_scan(std::span<std::uint64_t>(v), threads);
  EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlellochScanProperty,
    testing::Combine(testing::Values<std::size_t>(1, 2, 7, 64, 100, 1000),
                     testing::Values(1, 4, 16)));

}  // namespace
}  // namespace pcq::par
