// Compile-only proof that building with PCQ_TRACE_ENABLED=0 (CMake option
// PCQ_TRACE=OFF) turns PCQ_TRACE_SCOPE into literally nothing: a void
// expression with no scope object and no clock reads. This TU #undefs the
// build-wide definition and re-includes the header in its OFF shape; it is
// compiled as an OBJECT library that is never linked, so the differing
// macro expansion cannot collide with the ON-build TUs.
#undef PCQ_TRACE_ENABLED
#define PCQ_TRACE_ENABLED 0
#include "obs/trace.hpp"

#include <type_traits>

namespace {

static_assert(!pcq::obs::kTraceCompiledIn,
              "this TU sees the tracer compiled out");
static_assert(std::is_void_v<decltype(PCQ_TRACE_SCOPE("off"))>,
              "a disabled PCQ_TRACE_SCOPE must be a void expression");
static_assert(std::is_empty_v<pcq::obs::NullTraceScope>,
              "the OFF-build scope type carries no state");

// The disabled macro must still swallow its argument forms as statements.
[[maybe_unused]] void off_macro_compiles() {
  PCQ_TRACE_SCOPE("off");
  PCQ_TRACE_SCOPE("off", 42);
}

// The collector API stays declared (and linkable from pcq_obs) so tools
// need no #ifdefs around their trace exports.
[[maybe_unused]] auto* collector_api_visible = &pcq::obs::collect_trace;

}  // namespace
