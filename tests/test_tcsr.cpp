#include "tcsr/tcsr.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace pcq::tcsr {
namespace {

using graph::Edge;
using graph::TemporalEdge;
using graph::TemporalEdgeList;
using graph::TimeFrame;
using graph::VertexId;

/// Brute-force oracle: parity of (u, v) events at frames <= t.
class TemporalOracle {
 public:
  explicit TemporalOracle(const TemporalEdgeList& evs) {
    for (const TemporalEdge& e : evs.edges()) events_[{e.u, e.v}].insert_count(e.t);
  }

  bool edge_active(VertexId u, VertexId v, TimeFrame t) const {
    auto it = events_.find({u, v});
    if (it == events_.end()) return false;
    return it->second.parity_up_to(t);
  }

  std::set<VertexId> neighbors_at(VertexId u, TimeFrame t) const {
    std::set<VertexId> out;
    for (const auto& [edge, counts] : events_)
      if (edge.u == u && counts.parity_up_to(t)) out.insert(edge.v);
    return out;
  }

 private:
  struct Counts {
    std::map<TimeFrame, int> per_frame;
    void insert_count(TimeFrame t) { ++per_frame[t]; }
    bool parity_up_to(TimeFrame t) const {
      int total = 0;
      for (const auto& [frame, count] : per_frame)
        if (frame <= t) total += count;
      return total % 2 == 1;
    }
  };
  std::map<Edge, Counts> events_;
};

/// The paper's Figure 4 storyline: a graph evolving over 4 frames with
/// edges added and deleted.
TemporalEdgeList figure4_events() {
  std::vector<TemporalEdge> evs{
      {0, 1, 0}, {1, 2, 0}, {2, 3, 0},  // T0: initial triangle path
      {0, 1, 1},                        // T1: delete (0,1)
      {0, 3, 2}, {1, 2, 2},             // T2: add (0,3), delete (1,2)
      {0, 1, 3},                        // T3: re-add (0,1)
  };
  TemporalEdgeList list(std::move(evs));
  list.sort(2);
  return list;
}

TEST(DifferentialTcsr, Figure4EdgeLifecycle) {
  const auto tcsr = DifferentialTcsr::build(figure4_events(), 4, 4, 4);
  // (0,1): added at T0, deleted at T1, re-added at T3.
  EXPECT_TRUE(tcsr.edge_active(0, 1, 0));
  EXPECT_FALSE(tcsr.edge_active(0, 1, 1));
  EXPECT_FALSE(tcsr.edge_active(0, 1, 2));
  EXPECT_TRUE(tcsr.edge_active(0, 1, 3));
  // (1,2): active T0-T1, deleted at T2.
  EXPECT_TRUE(tcsr.edge_active(1, 2, 1));
  EXPECT_FALSE(tcsr.edge_active(1, 2, 2));
  // (2,3): active throughout; (0,3): appears at T2.
  EXPECT_TRUE(tcsr.edge_active(2, 3, 3));
  EXPECT_FALSE(tcsr.edge_active(0, 3, 1));
  EXPECT_TRUE(tcsr.edge_active(0, 3, 3));
  // Never-seen edge.
  EXPECT_FALSE(tcsr.edge_active(3, 0, 3));
}

TEST(DifferentialTcsr, Figure4Snapshots) {
  const auto tcsr = DifferentialTcsr::build(figure4_events(), 4, 4, 4);
  const csr::CsrGraph t0 = tcsr.snapshot_at(0, 4);
  EXPECT_EQ(t0.num_edges(), 3u);
  const csr::CsrGraph t2 = tcsr.snapshot_at(2, 4);
  EXPECT_EQ(t2.num_edges(), 2u);  // (2,3) and (0,3)
  EXPECT_TRUE(t2.has_edge(2, 3));
  EXPECT_TRUE(t2.has_edge(0, 3));
}

TEST(DifferentialTcsr, EmptyEventList) {
  const auto tcsr = DifferentialTcsr::build(TemporalEdgeList{}, 0, 0, 4);
  EXPECT_EQ(tcsr.num_frames(), 0u);
  EXPECT_EQ(tcsr.size_bytes(), 0u);
}

TEST(DifferentialTcsr, RandomWorkloadMatchesOracle) {
  const TemporalEdgeList evs = graph::evolving_graph(60, 3000, 12, 17, 4);
  const TemporalOracle oracle(evs);
  const auto tcsr = DifferentialTcsr::build(evs, 60, 12, 4);

  pcq::util::SplitMix64 rng(29);
  for (int i = 0; i < 1500; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(60));
    const auto v = static_cast<VertexId>(rng.next_below(60));
    const auto t = static_cast<TimeFrame>(rng.next_below(12));
    EXPECT_EQ(tcsr.edge_active(u, v, t), oracle.edge_active(u, v, t))
        << u << "->" << v << " @ " << t;
  }
}

TEST(DifferentialTcsr, NeighborsAtMatchesOracle) {
  const TemporalEdgeList evs = graph::evolving_graph(40, 2000, 8, 19, 4);
  const TemporalOracle oracle(evs);
  const auto tcsr = DifferentialTcsr::build(evs, 40, 8, 4);
  for (VertexId u = 0; u < 40; ++u) {
    for (TimeFrame t = 0; t < 8; t += 3) {
      const auto got = tcsr.neighbors_at(u, t);
      const auto expect = oracle.neighbors_at(u, t);
      EXPECT_EQ(std::set<VertexId>(got.begin(), got.end()), expect)
          << "u=" << u << " t=" << t;
      EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    }
  }
}

TEST(DifferentialTcsr, BatchQueriesMatchScalar) {
  const TemporalEdgeList evs = graph::evolving_graph(50, 2000, 10, 23, 4);
  const auto tcsr = DifferentialTcsr::build(evs, 50, 10, 4);
  pcq::util::SplitMix64 rng(31);
  std::vector<TemporalEdgeQuery> queries(400);
  for (auto& q : queries)
    q = {static_cast<VertexId>(rng.next_below(50)),
         static_cast<VertexId>(rng.next_below(50)),
         static_cast<TimeFrame>(rng.next_below(10))};
  for (int p : {1, 2, 4, 8, 64}) {
    const auto result = tcsr.batch_edge_active(queries, p);
    ASSERT_EQ(result.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i)
      EXPECT_EQ(result[i] != 0,
                tcsr.edge_active(queries[i].u, queries[i].v, queries[i].t));
  }
}

TEST(DifferentialTcsr, AllSnapshotsMatchSnapshotAt) {
  const TemporalEdgeList evs = graph::evolving_graph(40, 1500, 6, 37, 4);
  const auto tcsr = DifferentialTcsr::build(evs, 40, 6, 4);
  const auto snaps = tcsr.all_snapshots(4);
  ASSERT_EQ(snaps.size(), 6u);
  for (TimeFrame t = 0; t < 6; ++t) {
    const csr::CsrGraph snap = tcsr.snapshot_at(t, 4);
    EXPECT_EQ(snap.num_edges(), snaps[t].size()) << "t=" << t;
    for (const Edge& e : snaps[t].edges())
      EXPECT_TRUE(snap.has_edge(e.u, e.v));
  }
}

TEST(DifferentialTcsr, ThreadCountInvariance) {
  const TemporalEdgeList evs = graph::evolving_graph(80, 4000, 10, 41, 4);
  const auto ref = DifferentialTcsr::build(evs, 80, 10, 1);
  for (int p : {2, 4, 8, 64}) {
    const auto got = DifferentialTcsr::build(evs, 80, 10, p);
    ASSERT_EQ(got.num_frames(), ref.num_frames());
    EXPECT_EQ(got.size_bytes(), ref.size_bytes()) << "p=" << p;
    EXPECT_EQ(got.num_delta_edges(), ref.num_delta_edges()) << "p=" << p;
    for (TimeFrame t = 0; t < ref.num_frames(); ++t)
      EXPECT_TRUE(got.delta(t).packed_columns() == ref.delta(t).packed_columns());
  }
}

TEST(DifferentialTcsr, TimingsPopulated) {
  const TemporalEdgeList evs = graph::evolving_graph(100, 5000, 8, 43, 4);
  TcsrBuildTimings timings;
  DifferentialTcsr::build(evs, 100, 8, 4, &timings);
  EXPECT_GT(timings.total(), 0.0);
}

TEST(DifferentialTcsrDeathTest, UnsortedInputAborts) {
  TemporalEdgeList evs({{0, 1, 5}, {0, 1, 2}});  // time goes backwards
  EXPECT_DEATH(DifferentialTcsr::build(evs, 2, 6, 2), "sorted");
}

}  // namespace
}  // namespace pcq::tcsr
