#include "tcsr/serialize.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace pcq::tcsr {
namespace {

using graph::TimeFrame;
using graph::VertexId;

class TcsrSerializeTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pcq_tcsr_ser_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(TcsrSerializeTest, RoundTripPreservesStructure) {
  const auto events = graph::evolving_graph(100, 5000, 12, 3, 4);
  const auto original = DifferentialTcsr::build(events, 100, 12, 4);
  save_tcsr(original, path("h.tcsr"));
  const auto loaded = load_tcsr(path("h.tcsr"));
  EXPECT_EQ(loaded.num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded.num_frames(), original.num_frames());
  EXPECT_EQ(loaded.size_bytes(), original.size_bytes());
  for (TimeFrame t = 0; t < original.num_frames(); ++t) {
    EXPECT_TRUE(loaded.delta(t).packed_columns() ==
                original.delta(t).packed_columns())
        << "t=" << t;
  }
}

TEST_F(TcsrSerializeTest, LoadedStructureAnswersQueries) {
  const auto events = graph::evolving_graph(80, 3000, 8, 5, 4);
  const auto original = DifferentialTcsr::build(events, 80, 8, 4);
  save_tcsr(original, path("h.tcsr"));
  const auto loaded = load_tcsr(path("h.tcsr"));
  pcq::util::SplitMix64 rng(9);
  for (int i = 0; i < 500; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(80));
    const auto v = static_cast<VertexId>(rng.next_below(80));
    const auto t = static_cast<TimeFrame>(rng.next_below(8));
    EXPECT_EQ(loaded.edge_active(u, v, t), original.edge_active(u, v, t));
  }
  EXPECT_EQ(loaded.neighbors_at(7, 5), original.neighbors_at(7, 5));
}

TEST_F(TcsrSerializeTest, EmptyHistoryRoundTrip) {
  const auto original =
      DifferentialTcsr::build(graph::TemporalEdgeList{}, 0, 0, 2);
  save_tcsr(original, path("empty.tcsr"));
  const auto loaded = load_tcsr(path("empty.tcsr"));
  EXPECT_EQ(loaded.num_frames(), 0u);
}

TEST_F(TcsrSerializeTest, BadMagicAborts) {
  {
    std::ofstream out(path("bad.tcsr"), std::ios::binary);
    out << std::string(64, 'z');
  }
  EXPECT_DEATH(load_tcsr(path("bad.tcsr")), "bad TCSR magic");
}

TEST_F(TcsrSerializeTest, TruncatedAborts) {
  const auto events = graph::evolving_graph(50, 1000, 6, 7, 4);
  save_tcsr(DifferentialTcsr::build(events, 50, 6, 4), path("h.tcsr"));
  std::filesystem::resize_file(
      path("h.tcsr"), std::filesystem::file_size(path("h.tcsr")) / 3);
  EXPECT_DEATH(load_tcsr(path("h.tcsr")), "truncated");
}

}  // namespace
}  // namespace pcq::tcsr
