#include "tcsr/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "graph/generators.hpp"
#include "util/io_error.hpp"
#include "util/rng.hpp"

namespace pcq::tcsr {
namespace {

using graph::TimeFrame;
using graph::VertexId;

class TcsrSerializeTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pcq_tcsr_ser_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(TcsrSerializeTest, RoundTripPreservesStructure) {
  const auto events = graph::evolving_graph(100, 5000, 12, 3, 4);
  const auto original = DifferentialTcsr::build(events, 100, 12, 4);
  save_tcsr(original, path("h.tcsr"));
  const auto loaded = load_tcsr(path("h.tcsr"));
  EXPECT_EQ(loaded.num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded.num_frames(), original.num_frames());
  EXPECT_EQ(loaded.size_bytes(), original.size_bytes());
  for (TimeFrame t = 0; t < original.num_frames(); ++t) {
    EXPECT_TRUE(loaded.delta(t).packed_columns() ==
                original.delta(t).packed_columns())
        << "t=" << t;
  }
}

TEST_F(TcsrSerializeTest, LoadedStructureAnswersQueries) {
  const auto events = graph::evolving_graph(80, 3000, 8, 5, 4);
  const auto original = DifferentialTcsr::build(events, 80, 8, 4);
  save_tcsr(original, path("h.tcsr"));
  const auto loaded = load_tcsr(path("h.tcsr"));
  pcq::util::SplitMix64 rng(9);
  for (int i = 0; i < 500; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(80));
    const auto v = static_cast<VertexId>(rng.next_below(80));
    const auto t = static_cast<TimeFrame>(rng.next_below(8));
    EXPECT_EQ(loaded.edge_active(u, v, t), original.edge_active(u, v, t));
  }
  EXPECT_EQ(loaded.neighbors_at(7, 5), original.neighbors_at(7, 5));
}

TEST_F(TcsrSerializeTest, EmptyHistoryRoundTrip) {
  const auto original =
      DifferentialTcsr::build(graph::TemporalEdgeList{}, 0, 0, 2);
  save_tcsr(original, path("empty.tcsr"));
  const auto loaded = load_tcsr(path("empty.tcsr"));
  EXPECT_EQ(loaded.num_frames(), 0u);
}

TEST_F(TcsrSerializeTest, ZeroEdgeFramesRoundTrip) {
  // Frames 1 and 3 carry no state changes at all: their deltas are empty
  // CSRs, which must survive the round trip as empty frames (not collapse
  // the frame count).
  graph::TemporalEdgeList events;
  events.push_back({0, 1, 0});
  events.push_back({2, 3, 2});
  events.push_back({0, 1, 4});
  events.sort(2);
  const auto original = DifferentialTcsr::build(events, 5, 5, 2);
  ASSERT_EQ(original.num_frames(), 5u);
  ASSERT_EQ(original.delta(1).num_edges(), 0u);
  save_tcsr(original, path("sparse.tcsr"));
  const auto loaded = load_tcsr(path("sparse.tcsr"));
  EXPECT_EQ(loaded.num_frames(), 5u);
  EXPECT_EQ(loaded.delta(1).num_edges(), 0u);
  EXPECT_EQ(loaded.delta(3).num_edges(), 0u);
  EXPECT_TRUE(loaded.edge_active(0, 1, 3));
  EXPECT_FALSE(loaded.edge_active(0, 1, 4));  // toggled off at frame 4
  EXPECT_TRUE(loaded.edge_active(2, 3, 2));
}

TEST_F(TcsrSerializeTest, MissingFileThrows) {
  EXPECT_THROW(load_tcsr(path("nonexistent.tcsr")), pcq::IoError);
}

TEST_F(TcsrSerializeTest, BadMagicThrows) {
  {
    std::ofstream out(path("bad.tcsr"), std::ios::binary);
    out << std::string(64, 'z');
  }
  try {
    load_tcsr(path("bad.tcsr"));
    FAIL() << "expected IoError";
  } catch (const pcq::IoError& e) {
    EXPECT_NE(std::string(e.what()).find("bad TCSR magic"), std::string::npos);
  }
}

TEST_F(TcsrSerializeTest, TruncatedThrows) {
  const auto events = graph::evolving_graph(50, 1000, 6, 7, 4);
  save_tcsr(DifferentialTcsr::build(events, 50, 6, 4), path("h.tcsr"));
  std::filesystem::resize_file(
      path("h.tcsr"), std::filesystem::file_size(path("h.tcsr")) / 3);
  EXPECT_THROW(load_tcsr(path("h.tcsr")), pcq::IoError);
}

TEST_F(TcsrSerializeTest, WrongCanaryThrows) {
  const auto events = graph::evolving_graph(30, 500, 4, 3, 2);
  save_tcsr(DifferentialTcsr::build(events, 30, 4, 2), path("h.tcsr"));
  {
    std::fstream f(path("h.tcsr"),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8);  // canary sits right after the 8-byte magic
    const std::uint32_t swapped = 0x04030201;
    f.write(reinterpret_cast<const char*>(&swapped), 4);
  }
  try {
    load_tcsr(path("h.tcsr"));
    FAIL() << "expected IoError";
  } catch (const pcq::IoError& e) {
    EXPECT_NE(std::string(e.what()).find("canary"), std::string::npos);
  }
}

TEST_F(TcsrSerializeTest, CorruptedFrameHeaderThrows) {
  const auto events = graph::evolving_graph(30, 500, 4, 5, 2);
  save_tcsr(DifferentialTcsr::build(events, 30, 4, 2), path("h.tcsr"));
  {
    // First frame header starts after the 32-byte file header; blow up
    // its edge count so the geometry check fires.
    std::fstream f(path("h.tcsr"),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(32);
    const std::uint64_t bogus_edges = std::uint64_t{1} << 60;
    f.write(reinterpret_cast<const char*>(&bogus_edges), 8);
  }
  EXPECT_THROW(load_tcsr(path("h.tcsr")), pcq::IoError);
}

}  // namespace
}  // namespace pcq::tcsr
