// pcq::dyn::Cpma — differential tests against a std::set<Key> oracle,
// structural invariants after every batch, snapshot isolation, and
// concurrent readers racing batch writers (the TSan preset runs these).
#include "dyn/cpma.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace pcq::dyn {
namespace {

using pcq::util::SplitMix64;

std::vector<Key> random_keys(SplitMix64& rng, std::size_t n,
                             std::uint64_t key_space) {
  std::vector<Key> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back(rng.next_below(key_space));
  return keys;
}

/// Snapshot contents == oracle contents, plus structural invariants.
void expect_matches(const Cpma& cpma, const std::set<Key>& oracle) {
  const Cpma::Snapshot snap = cpma.snapshot();
  ASSERT_TRUE(snap.valid());
  ASSERT_TRUE(snap.check_invariants());
  ASSERT_EQ(snap.size(), oracle.size());
  const std::vector<Key> got = snap.keys();
  ASSERT_TRUE(std::equal(got.begin(), got.end(), oracle.begin(), oracle.end()));
}

TEST(Cpma, EmptyState) {
  const Cpma cpma;
  const Cpma::Snapshot snap = cpma.snapshot();
  ASSERT_TRUE(snap.valid());
  EXPECT_EQ(snap.size(), 0u);
  EXPECT_TRUE(snap.empty());
  EXPECT_FALSE(snap.contains(0));
  EXPECT_FALSE(snap.contains(Cpma::kNoKey - 1));
  EXPECT_TRUE(snap.row(5).empty());
  EXPECT_TRUE(snap.check_invariants());
}

TEST(Cpma, SingleBatchInsert) {
  Cpma cpma;
  SplitMix64 rng(1);
  std::vector<Key> keys = random_keys(rng, 5000, 1u << 20);
  EXPECT_GT(cpma.insert_batch(keys, 4), 0u);
  std::set<Key> oracle(keys.begin(), keys.end());
  expect_matches(cpma, oracle);
  for (const Key k : oracle) EXPECT_TRUE(cpma.contains(k));
  EXPECT_FALSE(cpma.contains(1u << 21));
}

TEST(Cpma, UnsortedDuplicateInput) {
  Cpma cpma;
  const std::vector<Key> keys = {9, 3, 9, 1, 3, 7, 1, 1};
  EXPECT_EQ(cpma.insert_batch(keys, 2), 4u);
  // Re-inserting the same multiset is a no-op.
  EXPECT_EQ(cpma.insert_batch(keys, 2), 0u);
  expect_matches(cpma, {1, 3, 7, 9});
}

TEST(Cpma, EraseBatch) {
  Cpma cpma;
  std::vector<Key> keys;
  for (Key k = 0; k < 3000; ++k) keys.push_back(k * 3);
  cpma.insert_batch(keys, 4);
  std::vector<Key> to_erase;
  for (Key k = 0; k < 3000; k += 2) to_erase.push_back(k * 3);
  to_erase.push_back(1);  // absent — must not count
  EXPECT_EQ(cpma.erase_batch(to_erase, 4), 1500u);
  std::set<Key> oracle;
  for (Key k = 1; k < 3000; k += 2) oracle.insert(k * 3);
  expect_matches(cpma, oracle);
}

TEST(Cpma, EraseEverything) {
  Cpma cpma;
  SplitMix64 rng(2);
  std::vector<Key> keys = random_keys(rng, 8000, 1u << 24);
  cpma.insert_batch(keys, 4);
  const std::size_t live = cpma.size();
  EXPECT_EQ(cpma.erase_batch(keys, 4), live);
  expect_matches(cpma, {});
}

TEST(Cpma, ApplyBatchChangedFlags) {
  Cpma cpma;
  cpma.insert_batch(std::vector<Key>{10, 20, 30}, 1);
  // inserts: 20 exists (no change), 25 fresh. erases: 30 exists, 40 absent.
  const std::vector<Key> ins = {20, 25};
  const std::vector<Key> ers = {30, 40};
  std::vector<std::uint8_t> ci, ce;
  const auto result = cpma.apply_batch(ins, ers, 2, &ci, &ce);
  EXPECT_EQ(result.inserted, 1u);
  EXPECT_EQ(result.erased, 1u);
  ASSERT_EQ(ci.size(), 2u);
  ASSERT_EQ(ce.size(), 2u);
  EXPECT_EQ(ci[0], 0u);
  EXPECT_EQ(ci[1], 1u);
  EXPECT_EQ(ce[0], 1u);
  EXPECT_EQ(ce[1], 0u);
  expect_matches(cpma, {10, 20, 25});
}

TEST(Cpma, InterleavedBatchesVsOracle) {
  Cpma cpma;
  std::set<Key> oracle;
  SplitMix64 rng(3);
  for (int round = 0; round < 40; ++round) {
    const std::size_t n = 1 + rng.next_below(2000);
    std::vector<Key> batch = random_keys(rng, n, 1u << 16);
    if (rng.next_bool(0.6)) {
      const std::size_t added = cpma.insert_batch(batch, 4);
      std::size_t expect_added = 0;
      for (const Key k : std::set<Key>(batch.begin(), batch.end()))
        if (oracle.insert(k).second) ++expect_added;
      EXPECT_EQ(added, expect_added) << "round " << round;
    } else {
      const std::size_t erased = cpma.erase_batch(batch, 4);
      std::size_t expect_erased = 0;
      for (const Key k : std::set<Key>(batch.begin(), batch.end()))
        if (oracle.erase(k) > 0) ++expect_erased;
      EXPECT_EQ(erased, expect_erased) << "round " << round;
    }
    ASSERT_TRUE(cpma.snapshot().check_invariants()) << "round " << round;
    ASSERT_EQ(cpma.size(), oracle.size()) << "round " << round;
  }
  expect_matches(cpma, oracle);
}

TEST(Cpma, GrowAndShrink) {
  Cpma cpma;
  std::vector<Key> keys;
  for (Key k = 0; k < 100'000; ++k) keys.push_back(k);
  cpma.insert_batch(keys, 8);
  const std::size_t grown_leaves = cpma.snapshot().num_leaves();
  EXPECT_GT(grown_leaves, 1u);
  // Drain to 1% — the root byte density falls below min and the array
  // shrinks instead of limping along at ~0 density.
  std::vector<Key> most(keys.begin(), keys.begin() + 99'000);
  cpma.erase_batch(most, 8);
  EXPECT_LT(cpma.snapshot().num_leaves(), grown_leaves);
  std::set<Key> oracle(keys.begin() + 99'000, keys.end());
  expect_matches(cpma, oracle);
}

TEST(Cpma, DenseKeysCompress) {
  // Consecutive keys delta-encode to ~1 byte each; the footprint must be
  // far below the 8 bytes/key of an uncompressed PMA.
  Cpma cpma;
  std::vector<Key> keys;
  for (Key k = 0; k < 50'000; ++k) keys.push_back(1'000'000 + k);
  cpma.insert_batch(keys, 4);
  EXPECT_LT(cpma.size_bytes(), keys.size() * 4);
}

TEST(Cpma, RowScan) {
  Cpma cpma;
  std::vector<Key> keys;
  for (graph::VertexId v = 10; v < 500; v += 7) keys.push_back(key_of(42, v));
  keys.push_back(key_of(41, 9999));
  keys.push_back(key_of(43, 0));
  cpma.insert_batch(keys, 2);
  const auto row = cpma.snapshot().row(42);
  std::vector<graph::VertexId> expect;
  for (graph::VertexId v = 10; v < 500; v += 7) expect.push_back(v);
  EXPECT_EQ(row, expect);
  EXPECT_TRUE(cpma.snapshot().row(40).empty());
  EXPECT_EQ(cpma.snapshot().row(43), std::vector<graph::VertexId>{0});
}

TEST(Cpma, SnapshotIsolation) {
  Cpma cpma;
  cpma.insert_batch(std::vector<Key>{1, 2, 3}, 1);
  const Cpma::Snapshot before = cpma.snapshot();
  cpma.insert_batch(std::vector<Key>{4, 5}, 1);
  cpma.erase_batch(std::vector<Key>{1}, 1);
  // The pinned epoch still sees exactly {1, 2, 3}.
  EXPECT_EQ(before.size(), 3u);
  EXPECT_TRUE(before.contains(1));
  EXPECT_FALSE(before.contains(4));
  const Cpma::Snapshot after = cpma.snapshot();
  EXPECT_EQ(after.size(), 4u);
  EXPECT_FALSE(after.contains(1));
  EXPECT_GT(after.version(), before.version());
}

TEST(Cpma, ClearResets) {
  Cpma cpma;
  SplitMix64 rng(4);
  std::vector<Key> keys = random_keys(rng, 10'000, 1u << 30);
  cpma.insert_batch(keys, 4);
  cpma.clear();
  expect_matches(cpma, {});
  cpma.insert_batch(std::vector<Key>{7}, 1);
  expect_matches(cpma, {7});
}

TEST(Cpma, TinyLeafConfig) {
  // The minimum 64-byte leaf budget stresses window splits: a handful of
  // wide-delta keys fills a leaf.
  Cpma::Config config;
  config.leaf_bytes = 64;
  Cpma cpma(config);
  std::set<Key> oracle;
  SplitMix64 rng(5);
  for (int round = 0; round < 20; ++round) {
    std::vector<Key> batch = random_keys(rng, 500, ~std::uint64_t{0} >> 1);
    cpma.insert_batch(batch, 4);
    for (const Key k : batch) oracle.insert(k);
    ASSERT_TRUE(cpma.snapshot().check_invariants()) << "round " << round;
  }
  expect_matches(cpma, oracle);
}

// Readers iterate pinned snapshots while a writer lands batches: every
// snapshot must be internally consistent (invariants hold, monotone
// versions) no matter where the writer is. Run under TSan via the tsan
// preset's tests_dyn label.
TEST(Cpma, ConcurrentReadersDuringBatches) {
  Cpma cpma;
  std::atomic<bool> done{false};
  std::atomic<int> checked{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_version = 0;
      while (!done.load(std::memory_order_acquire)) {
        const Cpma::Snapshot snap = cpma.snapshot();
        ASSERT_GE(snap.version(), last_version);
        last_version = snap.version();
        ASSERT_TRUE(snap.check_invariants());
        // The pinned epoch must not change size under us.
        const std::size_t size = snap.size();
        std::size_t seen = 0;
        snap.for_each([&](Key) { ++seen; });
        ASSERT_EQ(seen, size);
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  SplitMix64 rng(6);
  std::set<Key> oracle;
  for (int round = 0; round < 30; ++round) {
    std::vector<Key> batch = random_keys(rng, 1500, 1u << 18);
    if (round % 3 == 2) {
      cpma.erase_batch(batch, 2);
      for (const Key k : batch) oracle.erase(k);
    } else {
      cpma.insert_batch(batch, 2);
      for (const Key k : batch) oracle.insert(k);
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_GT(checked.load(), 0);
  expect_matches(cpma, oracle);
}

}  // namespace
}  // namespace pcq::dyn
