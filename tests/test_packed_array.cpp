#include "bits/packed_array.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <tuple>
#include <vector>

#include "util/rng.hpp"

namespace pcq::bits {
namespace {

std::vector<std::uint64_t> random_values(std::size_t n, unsigned width,
                                         std::uint64_t seed) {
  pcq::util::SplitMix64 rng(seed);
  std::vector<std::uint64_t> v(n);
  const std::uint64_t mask =
      width == 64 ? ~0ULL : ((std::uint64_t{1} << width) - 1);
  for (auto& x : v) x = rng.next() & mask;
  return v;
}

TEST(PackedArray, EmptyArray) {
  const auto packed = FixedWidthArray::pack({}, 4);
  EXPECT_EQ(packed.size(), 0u);
  EXPECT_TRUE(packed.empty());
  EXPECT_TRUE(packed.unpack().empty());
}

TEST(PackedArray, AutoWidthFromMax) {
  const std::vector<std::uint64_t> v{0, 5, 3, 7};
  const auto packed = FixedWidthArray::pack(v, 1);
  EXPECT_EQ(packed.width(), 3u);  // max is 7 -> 3 bits
  EXPECT_EQ(packed.unpack(), v);
}

TEST(PackedArray, AllZeros) {
  const std::vector<std::uint64_t> v(100, 0);
  const auto packed = FixedWidthArray::pack(v, 4);
  EXPECT_EQ(packed.width(), 1u);
  EXPECT_EQ(packed.unpack(), v);
  EXPECT_EQ(packed.size_bytes(), 16u);  // 100 bits -> 2 words
}

TEST(PackedArray, RandomAccessGet) {
  const auto v = random_values(1000, 17, 3);
  const auto packed = FixedWidthArray::pack_with_width(v, 17, 4);
  for (std::size_t i = 0; i < v.size(); i += 37) EXPECT_EQ(packed.get(i), v[i]);
  EXPECT_EQ(packed[999], v[999]);
}

TEST(PackedArray, GetRangeDecodesRow) {
  const auto v = random_values(500, 11, 9);
  const auto packed = FixedWidthArray::pack_with_width(v, 11, 4);
  std::vector<std::uint64_t> out(100);
  packed.get_range(123, 100, out);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(out[i], v[123 + i]);
}

TEST(PackedArray, Width64Values) {
  const auto v = random_values(257, 64, 5);
  const auto packed = FixedWidthArray::pack_with_width(v, 64, 4);
  EXPECT_EQ(packed.unpack(), v);
}

TEST(PackedArray, Width1Values) {
  const auto v = random_values(1000, 1, 7);
  const auto packed = FixedWidthArray::pack_with_width(v, 1, 8);
  EXPECT_EQ(packed.unpack(), v);
  EXPECT_EQ(packed.size_bytes(), 128u);  // 1000 bits -> 16 words
}

TEST(PackedArray, CompressionRatioIsWidthOver64) {
  // 1e4 values < 2^10 packed at 10 bits: ~6.4x smaller than raw u64.
  const auto v = random_values(10'000, 10, 11);
  const auto packed = FixedWidthArray::pack(v, 4);
  EXPECT_LE(packed.size_bytes(), 10'000 * 10 / 8 + 8);
  EXPECT_LT(packed.size_bytes() * 6, v.size() * sizeof(std::uint64_t));
}

TEST(PackedArray, ParallelEqualsSerial) {
  const auto v = random_values(10'000, 23, 13);
  const auto serial = FixedWidthArray::pack_with_width(v, 23, 1);
  const auto parallel = FixedWidthArray::pack_with_width(v, 23, 8);
  EXPECT_TRUE(serial == parallel);
}

// Algorithm 4 merge stress: widths that misalign chunk boundaries against
// 64-bit words in every possible way, swept across sizes and thread counts.
class PackedArrayMergeProperty
    : public testing::TestWithParam<std::tuple<unsigned, std::size_t, int>> {};

TEST_P(PackedArrayMergeProperty, ParallelPackRoundTrips) {
  const auto [width, n, threads] = GetParam();
  const auto v = random_values(n, width, width * 1000003 + n * 31 + threads);
  const auto packed = FixedWidthArray::pack_with_width(v, width, threads);
  ASSERT_EQ(packed.size(), n);
  EXPECT_EQ(packed.unpack(), v);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PackedArrayMergeProperty,
    testing::Combine(testing::Values(1u, 2u, 3u, 7u, 8u, 13u, 16u, 31u, 32u,
                                     33u, 63u, 64u),
                     testing::Values<std::size_t>(1, 2, 63, 64, 65, 1000),
                     testing::Values(2, 3, 4, 8, 64)));

// --- word-streaming unpack kernel ------------------------------------------
//
// Hostile inputs for the bulk decoder: widths that never straddle (1),
// always fill a word (64), straddle every single boundary (63, 33), plus
// the byte-aligned fast paths (8/16/32) and empty ranges.

class UnpackKernelWidthSweep : public testing::TestWithParam<unsigned> {};

TEST_P(UnpackKernelWidthSweep, GetRangeMatchesPerElementGet) {
  const unsigned width = GetParam();
  const std::size_t n = 700;  // > 10 words at every width
  const auto v = random_values(n, width, width * 7919 + 1);
  const auto packed = FixedWidthArray::pack_with_width(v, width, 4);
  // Every (begin, count) alignment against the 64-bit words: sweeping the
  // start offset exercises a straddle at each possible bit position.
  std::vector<std::uint64_t> out(n);
  for (std::size_t begin = 0; begin < 130 && begin < n; ++begin) {
    const std::size_t count = std::min<std::size_t>(n - begin, 131);
    packed.get_range(begin, count, out);
    for (std::size_t i = 0; i < count; ++i)
      ASSERT_EQ(out[i], packed.get(begin + i))
          << "width=" << width << " begin=" << begin << " i=" << i;
  }
}

TEST_P(UnpackKernelWidthSweep, CursorStreamsWholeArray) {
  const unsigned width = GetParam();
  const auto v = random_values(513, width, width * 104729 + 3);
  const auto packed = FixedWidthArray::pack_with_width(v, width, 2);
  RowCursor cursor = packed.cursor(0, packed.size());
  std::size_t i = 0;
  while (!cursor.done()) {
    ASSERT_EQ(cursor.remaining(), v.size() - i);
    ASSERT_EQ(cursor.next(), v[i]) << "width=" << width << " i=" << i;
    ++i;
  }
  EXPECT_EQ(i, v.size());
}

TEST_P(UnpackKernelWidthSweep, CursorMidArrayStart) {
  const unsigned width = GetParam();
  const auto v = random_values(300, width, width * 31 + 17);
  const auto packed = FixedWidthArray::pack_with_width(v, width, 2);
  // Start the cursor at every offset in a word-straddling window.
  for (std::size_t begin : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                            std::size_t{65}, std::size_t{127}}) {
    RowCursor cursor = packed.cursor(begin, v.size() - begin);
    for (std::size_t i = begin; i < v.size(); ++i)
      ASSERT_EQ(cursor.next(), v[i]) << "width=" << width << " begin=" << begin;
    EXPECT_TRUE(cursor.done());
  }
}

INSTANTIATE_TEST_SUITE_P(HostileWidths, UnpackKernelWidthSweep,
                         testing::Values(1u, 2u, 7u, 8u, 9u, 15u, 16u, 17u,
                                         31u, 32u, 33u, 63u, 64u));

TEST(UnpackKernel, EmptyRangeDecodesNothing) {
  const auto v = random_values(64, 13, 5);
  const auto packed = FixedWidthArray::pack_with_width(v, 13, 2);
  std::vector<std::uint64_t> out;
  packed.get_range(0, 0, out);     // empty prefix
  packed.get_range(64, 0, out);    // empty range at the very end
  packed.get_range(30, 0, out);    // empty mid-array range
  RowCursor cursor = packed.cursor(64, 0);
  EXPECT_TRUE(cursor.done());
  EXPECT_EQ(cursor.remaining(), 0u);
}

TEST(UnpackKernel, RangeEndingExactlyOnWordBoundary) {
  // 64 values of width 16 = 1024 bits = exactly 16 words: the final
  // element must not trigger a read past the last storage word.
  const auto v = random_values(64, 16, 23);
  const auto packed = FixedWidthArray::pack_with_width(v, 16, 1);
  EXPECT_EQ(packed.unpack(), v);
  std::vector<std::uint64_t> out(1);
  packed.get_range(63, 1, out);
  EXPECT_EQ(out[0], v[63]);
}

TEST(UnpackKernel, NarrowOutputTypeDecodesColumns) {
  const auto v = random_values(500, 17, 29);
  const auto packed = FixedWidthArray::pack_with_width(v, 17, 4);
  std::vector<std::uint32_t> out(500);
  packed.get_range_into(0, 500, out.data());
  for (std::size_t i = 0; i < 500; ++i)
    ASSERT_EQ(out[i], static_cast<std::uint32_t>(v[i]));
}

TEST(UnpackKernel, DifferentialRandomizedWidths) {
  // Randomised widths/sizes/slices: bulk decode vs per-element oracle.
  pcq::util::SplitMix64 rng(20260806);
  for (int round = 0; round < 50; ++round) {
    const auto width = static_cast<unsigned>(1 + rng.next_below(64));
    const std::size_t n = 1 + rng.next_below(2000);
    const auto v = random_values(n, width, rng.next());
    const auto packed = FixedWidthArray::pack_with_width(v, width, 4);
    const std::size_t begin = rng.next_below(n);
    const std::size_t count = 1 + rng.next_below(n - begin);
    std::vector<std::uint64_t> out(count);
    packed.get_range(begin, count, out);
    RowCursor cursor = packed.cursor(begin, count);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(out[i], packed.get(begin + i))
          << "round=" << round << " width=" << width;
      ASSERT_EQ(cursor.next(), out[i]) << "round=" << round;
    }
  }
}

TEST(UnpackKernel, CursorRangeForYieldsAllValues) {
  const auto v = random_values(97, 11, 37);
  const auto packed = FixedWidthArray::pack_with_width(v, 11, 2);
  RowCursor cursor = packed.cursor(0, v.size());
  std::size_t i = 0;
  for (std::uint64_t x : cursor) ASSERT_EQ(x, v[i++]);
  EXPECT_EQ(i, v.size());
}

TEST(UnpackKernel, ParallelUnpackMatchesSerial) {
  const auto v = random_values(50'000, 21, 41);
  const auto packed = FixedWidthArray::pack_with_width(v, 21, 4);
  EXPECT_EQ(packed.unpack(1), v);
  for (int p : {2, 3, 8, 64}) EXPECT_EQ(packed.unpack(p), v) << "p=" << p;
}

// --- Hostile-width / hostile-argument regressions (SIMD tier audit) ------

TEST(UnpackKernel, Width32AllOnesThroughEveryPath) {
  // width == 32 is the shift-by-32 trap: `value >> (32 - width)` and
  // `mask = (1u << width) - 1` are both UB at 32 unless phrased in 64-bit
  // arithmetic. All-ones payloads make a wrapped mask decode to 0 loudly.
  std::vector<std::uint64_t> v(300, 0xFFFF'FFFFull);
  v[0] = 0;  // non-saturated sentinels on both ends of the run
  v[299] = 1;
  const auto packed = FixedWidthArray::pack_with_width(v, 32, 2);
  EXPECT_EQ(packed.unpack(), v);
  std::vector<std::uint32_t> out32(257);
  packed.get_range_into(1, 257, out32.data());  // odd begin: misaligned phase
  for (std::size_t i = 0; i < 257; ++i)
    ASSERT_EQ(out32[i], static_cast<std::uint32_t>(v[1 + i])) << "i=" << i;
  RowCursor cursor = packed.cursor(0, 300);
  for (std::size_t i = 0; i < 300; ++i) ASSERT_EQ(cursor.next(), v[i]);
}

TEST(UnpackKernel, CountZeroAtEveryBoundary) {
  // count == 0 must early-exit without touching `out` (nullptr is legal)
  // or reading storage — including begin == size(), the one-past-the-end
  // position a half-open caller naturally produces.
  const auto v = random_values(64, 13, 51);
  const auto packed = FixedWidthArray::pack_with_width(v, 13, 1);
  for (std::size_t begin : {std::size_t{0}, std::size_t{37}, v.size()}) {
    packed.get_range_into(begin, 0, static_cast<std::uint32_t*>(nullptr));
    RowCursor cursor = packed.cursor(begin, 0);
    EXPECT_TRUE(cursor.done()) << "begin=" << begin;
  }
}

TEST(UnpackKernel, OverflowingRangeArgumentsDie) {
  // begin + count wrapping past SIZE_MAX must hit the range gate, not
  // sneak through as a tiny sum and over-read storage.
  const auto v = random_values(16, 8, 77);
  const auto packed = FixedWidthArray::pack_with_width(v, 8, 1);
  const std::size_t kHuge = std::numeric_limits<std::size_t>::max();
  std::uint32_t sink[1];
  EXPECT_DEATH(packed.get_range_into(1, kHuge, sink), "PCQ_CHECK");
  EXPECT_DEATH((void)packed.cursor(8, kHuge - 4), "PCQ_CHECK");
  EXPECT_DEATH((void)packed.cursor(kHuge, 2), "PCQ_CHECK");
}

}  // namespace
}  // namespace pcq::bits
