#include "bits/packed_array.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "util/rng.hpp"

namespace pcq::bits {
namespace {

std::vector<std::uint64_t> random_values(std::size_t n, unsigned width,
                                         std::uint64_t seed) {
  pcq::util::SplitMix64 rng(seed);
  std::vector<std::uint64_t> v(n);
  const std::uint64_t mask =
      width == 64 ? ~0ULL : ((std::uint64_t{1} << width) - 1);
  for (auto& x : v) x = rng.next() & mask;
  return v;
}

TEST(PackedArray, EmptyArray) {
  const auto packed = FixedWidthArray::pack({}, 4);
  EXPECT_EQ(packed.size(), 0u);
  EXPECT_TRUE(packed.empty());
  EXPECT_TRUE(packed.unpack().empty());
}

TEST(PackedArray, AutoWidthFromMax) {
  const std::vector<std::uint64_t> v{0, 5, 3, 7};
  const auto packed = FixedWidthArray::pack(v, 1);
  EXPECT_EQ(packed.width(), 3u);  // max is 7 -> 3 bits
  EXPECT_EQ(packed.unpack(), v);
}

TEST(PackedArray, AllZeros) {
  const std::vector<std::uint64_t> v(100, 0);
  const auto packed = FixedWidthArray::pack(v, 4);
  EXPECT_EQ(packed.width(), 1u);
  EXPECT_EQ(packed.unpack(), v);
  EXPECT_EQ(packed.size_bytes(), 16u);  // 100 bits -> 2 words
}

TEST(PackedArray, RandomAccessGet) {
  const auto v = random_values(1000, 17, 3);
  const auto packed = FixedWidthArray::pack_with_width(v, 17, 4);
  for (std::size_t i = 0; i < v.size(); i += 37) EXPECT_EQ(packed.get(i), v[i]);
  EXPECT_EQ(packed[999], v[999]);
}

TEST(PackedArray, GetRangeDecodesRow) {
  const auto v = random_values(500, 11, 9);
  const auto packed = FixedWidthArray::pack_with_width(v, 11, 4);
  std::vector<std::uint64_t> out(100);
  packed.get_range(123, 100, out);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(out[i], v[123 + i]);
}

TEST(PackedArray, Width64Values) {
  const auto v = random_values(257, 64, 5);
  const auto packed = FixedWidthArray::pack_with_width(v, 64, 4);
  EXPECT_EQ(packed.unpack(), v);
}

TEST(PackedArray, Width1Values) {
  const auto v = random_values(1000, 1, 7);
  const auto packed = FixedWidthArray::pack_with_width(v, 1, 8);
  EXPECT_EQ(packed.unpack(), v);
  EXPECT_EQ(packed.size_bytes(), 128u);  // 1000 bits -> 16 words
}

TEST(PackedArray, CompressionRatioIsWidthOver64) {
  // 1e4 values < 2^10 packed at 10 bits: ~6.4x smaller than raw u64.
  const auto v = random_values(10'000, 10, 11);
  const auto packed = FixedWidthArray::pack(v, 4);
  EXPECT_LE(packed.size_bytes(), 10'000 * 10 / 8 + 8);
  EXPECT_LT(packed.size_bytes() * 6, v.size() * sizeof(std::uint64_t));
}

TEST(PackedArray, ParallelEqualsSerial) {
  const auto v = random_values(10'000, 23, 13);
  const auto serial = FixedWidthArray::pack_with_width(v, 23, 1);
  const auto parallel = FixedWidthArray::pack_with_width(v, 23, 8);
  EXPECT_TRUE(serial == parallel);
}

// Algorithm 4 merge stress: widths that misalign chunk boundaries against
// 64-bit words in every possible way, swept across sizes and thread counts.
class PackedArrayMergeProperty
    : public testing::TestWithParam<std::tuple<unsigned, std::size_t, int>> {};

TEST_P(PackedArrayMergeProperty, ParallelPackRoundTrips) {
  const auto [width, n, threads] = GetParam();
  const auto v = random_values(n, width, width * 1000003 + n * 31 + threads);
  const auto packed = FixedWidthArray::pack_with_width(v, width, threads);
  ASSERT_EQ(packed.size(), n);
  EXPECT_EQ(packed.unpack(), v);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PackedArrayMergeProperty,
    testing::Combine(testing::Values(1u, 2u, 3u, 7u, 8u, 13u, 16u, 31u, 32u,
                                     33u, 63u, 64u),
                     testing::Values<std::size_t>(1, 2, 63, 64, 65, 1000),
                     testing::Values(2, 3, 4, 8, 64)));

}  // namespace
}  // namespace pcq::bits
