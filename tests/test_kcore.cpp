#include "algos/kcore.hpp"

#include <gtest/gtest.h>

#include "csr/builder.hpp"
#include "graph/generators.hpp"

namespace pcq::algos {
namespace {

using graph::EdgeList;
using graph::VertexId;

csr::CsrGraph symmetric_csr(EdgeList g, VertexId n) {
  g.symmetrize();
  g.sort(4);
  g.dedupe();
  g.remove_self_loops();
  return csr::build_csr_from_sorted(g, n, 4);
}

TEST(KCore, TriangleWithTail) {
  // Triangle {0,1,2} (coreness 2) with a pendant path 2-3-4 (coreness 1).
  const csr::CsrGraph g =
      symmetric_csr(EdgeList({{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}}), 5);
  const auto core = kcore_peeling(g);
  EXPECT_EQ(core, (std::vector<std::uint32_t>{2, 2, 2, 1, 1}));
  EXPECT_EQ(degeneracy(core), 2u);
}

TEST(KCore, CompleteGraphCorenessIsNMinusOne) {
  EdgeList g;
  for (VertexId u = 0; u < 8; ++u)
    for (VertexId v = u + 1; v < 8; ++v) g.push_back({u, v});
  const csr::CsrGraph csr = symmetric_csr(std::move(g), 8);
  const auto core = kcore_peeling(csr);
  for (auto c : core) EXPECT_EQ(c, 7u);
}

TEST(KCore, StarGraphCorenessOne) {
  EdgeList g;
  for (VertexId v = 1; v < 30; ++v) g.push_back({0, v});
  const csr::CsrGraph csr = symmetric_csr(std::move(g), 30);
  const auto core = kcore_peeling(csr);
  for (auto c : core) EXPECT_EQ(c, 1u);
}

TEST(KCore, IsolatedNodesZero) {
  const csr::CsrGraph g = symmetric_csr(EdgeList({{0, 1}}), 5);
  const auto core = kcore_peeling(g);
  EXPECT_EQ(core[0], 1u);
  EXPECT_EQ(core[4], 0u);
}

TEST(KCore, HIndexMatchesPeeling) {
  const csr::CsrGraph g =
      symmetric_csr(graph::rmat(512, 10'000, 0.57, 0.19, 0.19, 7, 4), 512);
  const auto exact = kcore_peeling(g);
  for (int p : {1, 4, 8}) {
    EXPECT_EQ(kcore_hindex(g, p), exact) << "p=" << p;
  }
}

TEST(KCore, EmptyGraph) {
  const csr::CsrGraph g = csr::build_csr_from_sorted(EdgeList{}, 3, 2);
  const auto core = kcore_peeling(g);
  EXPECT_EQ(core, (std::vector<std::uint32_t>{0, 0, 0}));
  EXPECT_EQ(degeneracy(core), 0u);
}

TEST(KCore, CorenessBoundedByDegree) {
  const csr::CsrGraph g =
      symmetric_csr(graph::erdos_renyi(300, 3000, 11, 4), 300);
  const auto core = kcore_peeling(g);
  for (VertexId v = 0; v < 300; ++v) EXPECT_LE(core[v], g.degree(v));
}

}  // namespace
}  // namespace pcq::algos
