#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace pcq::util {
namespace {

TEST(Rng, Deterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Rng, NextBelowInRange) {
  SplitMix64 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  SplitMix64 rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  SplitMix64 rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) EXPECT_NEAR(c, expected, expected * 0.08);
}

TEST(Rng, NextDoubleInUnitInterval) {
  SplitMix64 rng(13);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, NextBoolMatchesProbability) {
  SplitMix64 rng(17);
  int trues = 0;
  for (int i = 0; i < 50'000; ++i)
    if (rng.next_bool(0.3)) ++trues;
  EXPECT_NEAR(trues / 50'000.0, 0.3, 0.02);
}

TEST(Rng, SplitStreamsAreIndependent) {
  SplitMix64 base(42);
  SplitMix64 s0 = base.split(0);
  SplitMix64 s1 = base.split(1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(s0.next());
    seen.insert(s1.next());
  }
  EXPECT_EQ(seen.size(), 2000u);  // no collisions across streams
}

TEST(Rng, SplitIsDeterministicAndStateless) {
  SplitMix64 base(42);
  EXPECT_EQ(base.split(5).next(), SplitMix64(42).split(5).next());
  // split() must not perturb the parent.
  SplitMix64 a(9), b(9);
  (void)a.split(3);
  EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, Mix64AvalanchesSingleBits) {
  // Flipping one input bit should flip ~half the output bits.
  const std::uint64_t h0 = mix64(0x1234567890abcdefULL);
  for (int bit = 0; bit < 64; bit += 7) {
    const std::uint64_t h1 = mix64(0x1234567890abcdefULL ^ (1ULL << bit));
    const int flipped = __builtin_popcountll(h0 ^ h1);
    EXPECT_GT(flipped, 16);
    EXPECT_LT(flipped, 48);
  }
}

}  // namespace
}  // namespace pcq::util
