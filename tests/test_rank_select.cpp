#include "bits/rank_select.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace pcq::bits {
namespace {

BitVector random_bits(std::size_t n, double density, std::uint64_t seed) {
  pcq::util::SplitMix64 rng(seed);
  BitVector bv(n);
  for (std::size_t i = 0; i < n; ++i)
    if (rng.next_bool(density)) bv.set(i, true);
  return bv;
}

std::size_t reference_rank(const BitVector& bv, std::size_t i) {
  std::size_t count = 0;
  for (std::size_t j = 0; j < i; ++j) count += bv.get(j);
  return count;
}

TEST(RankBitVector, EmptyVector) {
  RankBitVector rb{BitVector{}};
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.ones(), 0u);
  EXPECT_EQ(rb.rank1(0), 0u);
}

TEST(RankBitVector, AllZeros) {
  RankBitVector rb{BitVector(1000)};
  EXPECT_EQ(rb.ones(), 0u);
  EXPECT_EQ(rb.rank1(1000), 0u);
  EXPECT_EQ(rb.rank0(1000), 1000u);
}

TEST(RankBitVector, AllOnes) {
  BitVector bv(777);
  for (std::size_t i = 0; i < 777; ++i) bv.set(i, true);
  RankBitVector rb(std::move(bv));
  EXPECT_EQ(rb.ones(), 777u);
  for (std::size_t i = 0; i <= 777; i += 91) EXPECT_EQ(rb.rank1(i), i);
  for (std::size_t j = 0; j < 777; j += 77) EXPECT_EQ(rb.select1(j), j);
}

TEST(RankBitVector, RankMatchesReferenceAtEveryPosition) {
  const BitVector bv = random_bits(3000, 0.3, 7);
  RankBitVector rb{BitVector(bv)};
  for (std::size_t i = 0; i <= 3000; ++i)
    ASSERT_EQ(rb.rank1(i), reference_rank(bv, i)) << i;
}

TEST(RankBitVector, RankAcrossBlockBoundaries) {
  // Exactly probe the 512-bit superblock edges.
  const BitVector bv = random_bits(2048, 0.5, 9);
  RankBitVector rb{BitVector(bv)};
  for (std::size_t i : {511u, 512u, 513u, 1023u, 1024u, 1025u, 2047u, 2048u})
    EXPECT_EQ(rb.rank1(i), reference_rank(bv, i)) << i;
}

TEST(RankBitVector, SelectIsRankInverse) {
  const BitVector bv = random_bits(5000, 0.2, 11);
  RankBitVector rb{BitVector(bv)};
  for (std::size_t j = 0; j < rb.ones(); ++j) {
    const std::size_t pos = rb.select1(j);
    ASSERT_TRUE(rb.get(pos)) << j;
    ASSERT_EQ(rb.rank1(pos), j) << j;
  }
}

TEST(RankBitVector, SparseSelect) {
  BitVector bv(100'000);
  const std::vector<std::size_t> positions{0, 63, 64, 511, 512, 99'999};
  for (auto p : positions) bv.set(p, true);
  RankBitVector rb(std::move(bv));
  ASSERT_EQ(rb.ones(), positions.size());
  for (std::size_t j = 0; j < positions.size(); ++j)
    EXPECT_EQ(rb.select1(j), positions[j]);
}

TEST(RankBitVectorDeathTest, SelectOutOfRangeAborts) {
  RankBitVector rb{random_bits(100, 0.5, 13)};
  EXPECT_DEATH((void)rb.select1(rb.ones()), "select1 out of range");
}

TEST(RankBitVector, DirectoryOverheadIsSmall) {
  RankBitVector rb{BitVector(1 << 20)};
  // 12.5% directory (one u64 per 512 bits) plus the payload.
  EXPECT_LE(rb.size_bytes(), (1u << 20) / 8 + (1u << 20) / 512 * 8 + 64);
}

}  // namespace
}  // namespace pcq::bits
