#include "net/server.hpp"

#include <cstring>

#include "util/check.hpp"
#include "util/io_error.hpp"

#ifdef __linux__

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

namespace pcq::net {

struct TcpServer::Conn {
  // The fields above `mu` are owned by the epoll thread (see the
  // pcq:epoll-thread markers below): only that thread reads or writes
  // them, so they need no lock — the concurrency lint enforces that the
  // owning functions never block.
  int fd = -1;
  bool admin = false;      ///< accepted on the admin listener (HTTP path)
  bool reading = true;     ///< EPOLLIN registered
  bool want_write = false; ///< EPOLLOUT registered
  std::vector<std::uint8_t> rbuf;
  std::size_t rpos = 0;  ///< parse offset into rbuf
  std::vector<std::uint8_t> wbuf;
  std::size_t wpos = 0;  ///< flush offset into wbuf
  /// Worker-thread side: completed responses land here; the epoll thread
  /// splices them into wbuf. `closed` stops late completions from growing
  /// a buffer nobody will ever flush. `half_closed` is the read-side EOF
  /// (client did shutdown(SHUT_WR) after pipelining): the connection stays
  /// open until its in-flight answers are written, then closes — so a
  /// one-shot client can send N frames, half-close, and read N responses.
  util::Mutex mu;
  std::vector<std::uint8_t> pending PCQ_GUARDED_BY(mu);
  std::uint64_t pending_frames PCQ_GUARDED_BY(mu) = 0;
  /// Admitted requests not yet queued back.
  std::uint64_t inflight PCQ_GUARDED_BY(mu) = 0;
  bool dirty_queued PCQ_GUARDED_BY(mu) = false;
  bool half_closed PCQ_GUARDED_BY(mu) = false;
  /// Single-writer (epoll thread) lifecycle flag. Written with mu held so
  /// worker threads deciding whether to append (queue_response) can't race
  /// the teardown; the owning epoll thread reads it lock-free — relaxed is
  /// enough, every cross-thread transition is ordered by mu.
  std::atomic<bool> closed{false};
};

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError("tcp", what + ": " + std::strerror(errno));
}

/// Opens a nonblocking listening socket bound to host:port; writes the
/// resolved port (for ephemeral port = 0) through `bound`. Throws IoError.
int open_listener(const std::string& host, std::uint16_t port, int backlog,
                  std::uint16_t* bound) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw IoError(host, "not an IPv4 address");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, backlog) < 0) {
    const int err = errno;
    ::close(fd);
    throw IoError(host + ":" + std::to_string(port),
                  std::string("bind/listen: ") + std::strerror(err));
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  *bound = ntohs(addr.sin_port);
  return fd;
}

}  // namespace

TcpServer::TcpServer(svc::QueryService& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  listen_fd_ =
      open_listener(options_.host, options_.port, options_.backlog, &port_);
  if (options_.admin_enabled) {
    try {
      admin_listen_fd_ = open_listener(options_.host, options_.admin_port,
                                       options_.backlog, &admin_port_);
    } catch (...) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw;
    }
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (admin_listen_fd_ >= 0) {
      ::close(admin_listen_fd_);
      admin_listen_fd_ = -1;
    }
    throw_errno("epoll/eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  PCQ_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0);
  ev.data.fd = wake_fd_;
  PCQ_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0);
  if (admin_listen_fd_ >= 0) {
    ev.data.fd = admin_listen_fd_;
    PCQ_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, admin_listen_fd_, &ev) ==
              0);
  }
}

TcpServer::~TcpServer() {
  for (auto& [fd, conn] : conns_) {
    util::MutexLock lock(conn->mu);
    if (!conn->closed.load(std::memory_order_relaxed)) {
      conn->closed.store(true, std::memory_order_relaxed);
      ::close(conn->fd);
    }
  }
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (admin_listen_fd_ >= 0) ::close(admin_listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

void TcpServer::request_stop() {
  // Async-signal-safe: one atomic store and one eventfd write.
  stop_requested_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

// pcq:epoll-thread — run() IS the epoll thread; everything it calls below
// carries the same marker and must never block on a condvar/sleep/join.
void TcpServer::run() {
  std::vector<epoll_event> events(128);
  for (;;) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("epoll", std::string("epoll_wait: ") +
                                 std::strerror(errno));
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[static_cast<std::size_t>(i)];
      if (ev.data.fd == wake_fd_) {
        std::uint64_t drainv = 0;
        while (::read(wake_fd_, &drainv, sizeof drainv) > 0) {}
        continue;
      }
      if (ev.data.fd == listen_fd_) {
        accept_ready(listen_fd_, /*admin=*/false);
        continue;
      }
      if (admin_listen_fd_ >= 0 && ev.data.fd == admin_listen_fd_) {
        accept_ready(admin_listen_fd_, /*admin=*/true);
        continue;
      }
      const auto it = conns_.find(ev.data.fd);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      const std::shared_ptr<Conn> conn = it->second;
      if ((ev.events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(conn);
        continue;
      }
      if ((ev.events & EPOLLIN) != 0) conn_readable(conn);
      if ((ev.events & EPOLLOUT) != 0 &&
          !conn->closed.load(std::memory_order_relaxed))
        conn_writable(conn);
    }
    sweep_dirty();
    if (stop_requested_.load(std::memory_order_acquire) && !draining_)
      begin_drain();
    if (draining_ && drain_complete()) break;
  }
  // Everything admitted was answered and flushed. Lingering close: FIN
  // first, then briefly read-and-discard until the peer closes — a plain
  // close() on a socket with unread inbound bytes sends RST, and an RST
  // can destroy flushed responses still in the peer's receive path. The
  // deadline bounds a peer that never closes; a well-behaved client that
  // reads its answers and sees EOF closes within microseconds on loopback.
  const auto linger_deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(250);
  for (auto& [fd, conn] : conns_) {
    if (conn->closed.load(std::memory_order_relaxed)) continue;
    ::shutdown(conn->fd, SHUT_WR);
    std::uint8_t chunk[4096];
    for (;;) {
      const ssize_t got = ::read(conn->fd, chunk, sizeof chunk);
      if (got > 0) continue;  // discard
      if (got == 0) break;    // peer closed: receive queue is empty
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= linger_deadline) break;
        pollfd p{conn->fd, POLLIN, 0};
        const int wait_ms = static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                linger_deadline - now)
                .count());
        if (::poll(&p, 1, std::max(wait_ms, 1)) <= 0) break;
        continue;
      }
      break;  // ECONNRESET and friends: the peer is gone anyway
    }
  }
  for (auto& [fd, conn] : conns_) {
    util::MutexLock lock(conn->mu);
    if (!conn->closed.load(std::memory_order_relaxed)) {
      conn->closed.store(true, std::memory_order_relaxed);
      ::close(conn->fd);
      stats_.open_conns.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  conns_.clear();
}

// pcq:epoll-thread
void TcpServer::accept_ready(int listen_fd, bool admin) {
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN, or a racing client that went away
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->admin = admin;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
    stats_.open_conns.fetch_add(1, std::memory_order_relaxed);
  }
}

// pcq:epoll-thread
void TcpServer::conn_readable(const std::shared_ptr<Conn>& conn) {
  if (conn->closed.load(std::memory_order_relaxed)) return;
  if (conn->admin) {
    admin_readable(conn);
    return;
  }
  std::uint8_t chunk[64 * 1024];
  bool eof = false;
  for (;;) {
    const ssize_t got = ::read(conn->fd, chunk, sizeof chunk);
    if (got > 0) {
      stats_.bytes_in.fetch_add(static_cast<std::uint64_t>(got),
                                std::memory_order_relaxed);
      // During the drain inbound bytes are read and DISCARDED, not parsed:
      // leaving them unread would make the final close() an RST, and an
      // RST can destroy flushed responses the client has not read yet —
      // exactly what a graceful drain promises not to do.
      if (draining_) continue;
      conn->rbuf.insert(conn->rbuf.end(), chunk,
                        chunk + static_cast<std::size_t>(got));
      if (conn->rbuf.size() - conn->rpos > kMaxFrameBytes) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        close_conn(conn);
        return;
      }
      continue;
    }
    if (got == 0) {  // read-side EOF: parse what arrived, then half-close
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_conn(conn);
    return;
  }
  if (draining_) {
    if (eof) {
      {
        util::MutexLock lock(conn->mu);
        conn->half_closed = true;
      }
      flush(conn);
    }
    return;
  }
  // Decode every complete frame buffered so far.
  for (;;) {
    WireRequest w;
    std::size_t consumed = 0;
    const DecodeResult r =
        decode_request(conn->rbuf.data() + conn->rpos,
                       conn->rbuf.size() - conn->rpos, &w, &consumed);
    if (r == DecodeResult::kNeedMore) break;
    if (r == DecodeResult::kError) {
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      close_conn(conn);
      return;
    }
    conn->rpos += consumed;
    handle_frame(conn, w);
    if (conn->closed.load(std::memory_order_relaxed) || draining_) break;
  }
  if (conn->closed.load(std::memory_order_relaxed)) return;
  conn->rbuf.erase(conn->rbuf.begin(),
                   conn->rbuf.begin() + static_cast<std::ptrdiff_t>(conn->rpos));
  conn->rpos = 0;
  if (eof) {
    {
      util::MutexLock lock(conn->mu);
      conn->half_closed = true;
    }
    // May close immediately (nothing in flight, nothing buffered) or
    // arm EPOLLOUT for whatever remains.
    flush(conn);
    return;
  }
  update_read_interest(conn);
}

// pcq:epoll-thread
void TcpServer::admin_readable(const std::shared_ptr<Conn>& conn) {
  // One HTTP request per connection, answered inline on the epoll thread
  // (building a scrape body is microseconds of string work; it shares the
  // thread the same way accept and flush do). The response is appended
  // straight to wbuf — the epoll thread owns wbuf, no lock needed — and
  // half_closed makes flush() tear the connection down once it drains.
  constexpr std::size_t kMaxAdminHeader = 16 * 1024;
  std::uint8_t chunk[4096];
  bool eof = false;
  for (;;) {
    const ssize_t got = ::read(conn->fd, chunk, sizeof chunk);
    if (got > 0) {
      stats_.bytes_in.fetch_add(static_cast<std::uint64_t>(got),
                                std::memory_order_relaxed);
      if (draining_) continue;  // discard, same rationale as the frame path
      conn->rbuf.insert(conn->rbuf.end(), chunk,
                        chunk + static_cast<std::size_t>(got));
      if (conn->rbuf.size() > kMaxAdminHeader) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        close_conn(conn);
        return;
      }
      continue;
    }
    if (got == 0) {
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_conn(conn);
    return;
  }
  if (draining_) {
    if (eof) {
      {
        util::MutexLock lock(conn->mu);
        conn->half_closed = true;
      }
      flush(conn);
    }
    return;
  }
  const std::string_view buf(reinterpret_cast<const char*>(conn->rbuf.data()),
                             conn->rbuf.size());
  if (buf.find("\r\n\r\n") == std::string_view::npos) {
    if (eof) close_conn(conn);  // the peer gave up mid-request
    return;
  }
  const std::string_view line = buf.substr(0, buf.find("\r\n"));
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  std::string response;
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    response =
        "HTTP/1.0 400 Bad Request\r\nContent-Length: 0\r\n"
        "Connection: close\r\n\r\n";
  } else if (!admin_handler_) {
    response =
        "HTTP/1.0 503 Service Unavailable\r\nContent-Length: 0\r\n"
        "Connection: close\r\n\r\n";
  } else {
    response = admin_handler_(line.substr(0, sp1),
                              line.substr(sp1 + 1, sp2 - sp1 - 1));
  }
  stats_.admin_requests.fetch_add(1, std::memory_order_relaxed);
  conn->rbuf.clear();
  conn->rpos = 0;
  conn->wbuf.insert(conn->wbuf.end(), response.begin(), response.end());
  {
    util::MutexLock lock(conn->mu);
    conn->half_closed = true;  // respond-and-close
  }
  flush(conn);
}

// pcq:epoll-thread
void TcpServer::handle_frame(const std::shared_ptr<Conn>& conn,
                             const WireRequest& w) {
  stats_.frames_in.fetch_add(1, std::memory_order_relaxed);
  if (w.kind == kShutdownKind) {
    WireResponse resp;
    resp.id = w.id;
    resp.status = static_cast<std::uint8_t>(svc::Status::kOk);
    queue_response(conn, std::move(resp), /*completes_inflight=*/false);
    // Same path as SIGINT: the drain starts at the end of this epoll
    // iteration, after the acknowledgement is queued.
    stop_requested_.store(true, std::memory_order_release);
    return;
  }
  if (!is_query_kind(w.kind)) {
    WireResponse resp;
    resp.id = w.id;
    resp.status = static_cast<std::uint8_t>(svc::Status::kInvalid);
    queue_response(conn, std::move(resp), /*completes_inflight=*/false);
    return;
  }
  const svc::Request req = to_service_request(w, svc::Clock::now());
  const std::uint64_t id = w.id;
  // Increment before submit: the callback (which decrements) can fire on a
  // worker thread before submit even returns.
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  {
    util::MutexLock lock(conn->mu);
    ++conn->inflight;
  }
  const bool admitted =
      service_.submit(req, [this, conn, id](svc::Response&& response) {
        queue_response(conn, from_service_response(id, std::move(response)),
                       /*completes_inflight=*/true);
        // Decrement only after the encoded bytes are queued, so a drain
        // that observes in_flight_ == 0 also observes every response byte.
        // The last completion during a stop must wake the epoll thread:
        // it may already be parked in epoll_wait having seen in_flight_
        // nonzero, and no further socket event is coming.
        if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
            stop_requested_.load(std::memory_order_acquire)) {
          const std::uint64_t one = 1;
          [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
        }
      });
  if (!admitted) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    {
      util::MutexLock lock(conn->mu);
      --conn->inflight;
    }
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    // Explicit backpressure: a saturated shard answers a kRejected frame
    // immediately; nothing is buffered on the request side.
    WireResponse resp;
    resp.id = id;
    resp.status = static_cast<std::uint8_t>(svc::Status::kRejected);
    queue_response(conn, std::move(resp), /*completes_inflight=*/false);
  }
}

void TcpServer::queue_response(const std::shared_ptr<Conn>& conn,
                               WireResponse&& w, bool completes_inflight) {
  bool need_wake = false;
  {
    util::MutexLock lock(conn->mu);
    if (completes_inflight) --conn->inflight;
    if (conn->closed.load(std::memory_order_relaxed)) return;
    encode_response(w, conn->pending);
    ++conn->pending_frames;
    if (!conn->dirty_queued) {
      conn->dirty_queued = true;
      need_wake = true;
    }
  }
  if (need_wake) {
    {
      util::MutexLock lock(dirty_mu_);
      dirty_.push_back(conn);
    }
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
  }
}

// pcq:epoll-thread
void TcpServer::sweep_dirty() {
  std::vector<std::weak_ptr<Conn>> batch;
  {
    util::MutexLock lock(dirty_mu_);
    batch.swap(dirty_);
  }
  for (auto& weak : batch) {
    const std::shared_ptr<Conn> conn = weak.lock();
    if (conn == nullptr || conn->closed.load(std::memory_order_relaxed))
      continue;
    flush(conn);
  }
}

// pcq:epoll-thread
void TcpServer::flush(const std::shared_ptr<Conn>& conn) {
  {
    util::MutexLock lock(conn->mu);
    conn->dirty_queued = false;
    if (!conn->pending.empty()) {
      conn->wbuf.insert(conn->wbuf.end(), conn->pending.begin(),
                        conn->pending.end());
      stats_.frames_out.fetch_add(conn->pending_frames,
                                  std::memory_order_relaxed);
      conn->pending.clear();
      conn->pending_frames = 0;
    }
  }
  while (conn->wpos < conn->wbuf.size()) {
    // MSG_NOSIGNAL: a peer that vanished mid-write is an EPIPE error to
    // handle here, not a process-wide SIGPIPE.
    const ssize_t sent =
        ::send(conn->fd, conn->wbuf.data() + conn->wpos,
               conn->wbuf.size() - conn->wpos, MSG_NOSIGNAL);
    if (sent > 0) {
      stats_.bytes_out.fetch_add(static_cast<std::uint64_t>(sent),
                                 std::memory_order_relaxed);
      conn->wpos += static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (sent < 0 && errno == EINTR) continue;
    close_conn(conn);  // EPIPE / ECONNRESET: the reader is gone
    return;
  }
  if (conn->wpos >= conn->wbuf.size()) {
    conn->wbuf.clear();
    conn->wpos = 0;
  } else if (conn->wpos > 0 && conn->wpos * 2 >= conn->wbuf.size()) {
    // Reclaim the flushed prefix once it dominates the buffer.
    conn->wbuf.erase(conn->wbuf.begin(),
                     conn->wbuf.begin() +
                         static_cast<std::ptrdiff_t>(conn->wpos));
    conn->wpos = 0;
  }
  conn->want_write = conn->wpos < conn->wbuf.size();
  // A half-closed connection whose last in-flight answer has been written
  // has nothing left to live for; everything it asked is on the wire.
  bool close_now = false;
  if (!conn->want_write) {
    util::MutexLock lock(conn->mu);
    close_now =
        conn->half_closed && conn->inflight == 0 && conn->pending.empty();
  }
  if (close_now) {
    close_conn(conn);
    return;
  }
  update_read_interest(conn);
}

// pcq:epoll-thread
void TcpServer::conn_writable(const std::shared_ptr<Conn>& conn) {
  flush(conn);
}

// pcq:epoll-thread
void TcpServer::update_read_interest(const std::shared_ptr<Conn>& conn) {
  if (conn->closed.load(std::memory_order_relaxed)) return;
  // Flow control: a connection whose outbound bytes exceed the limit is
  // not read until its reader catches up. During drain reading stays on —
  // conn_readable discards instead of parsing — so the receive queue is
  // empty when the connection finally closes (FIN, not RST).
  std::size_t outbound = conn->wbuf.size() - conn->wpos;
  bool half_closed = false;
  {
    util::MutexLock lock(conn->mu);
    outbound += conn->pending.size();
    half_closed = conn->half_closed;
  }
  const bool reading =
      !half_closed && (draining_ || outbound <= options_.write_buffer_limit);
  conn->reading = reading;
  epoll_event ev{};
  ev.events = (reading ? EPOLLIN : 0u) | (conn->want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

// pcq:epoll-thread
void TcpServer::close_conn(const std::shared_ptr<Conn>& conn) {
  util::MutexLock lock(conn->mu);
  if (conn->closed.load(std::memory_order_relaxed)) return;
  conn->closed.store(true, std::memory_order_relaxed);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(conn->fd);
  stats_.open_conns.fetch_sub(1, std::memory_order_relaxed);
}

// pcq:epoll-thread
void TcpServer::begin_drain() {
  draining_ = true;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (admin_listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, admin_listen_fd_, nullptr);
    ::close(admin_listen_fd_);
    admin_listen_fd_ = -1;
  }
  stats_.drained_in_flight.store(in_flight_.load(std::memory_order_acquire),
                                 std::memory_order_relaxed);
  // Stop parsing everywhere: requests already admitted are answered and
  // flushed; bytes a client sends after the drain began are read and
  // discarded (it sees its in-flight answers, then EOF, and can retry
  // elsewhere).
  for (auto& [fd, conn] : conns_) update_read_interest(conn);
}

// pcq:epoll-thread
bool TcpServer::drain_complete() const {
  if (in_flight_.load(std::memory_order_acquire) != 0) return false;
  for (const auto& [fd, conn] : conns_) {
    if (conn->wpos < conn->wbuf.size()) return false;
    util::MutexLock lock(conn->mu);
    if (!conn->pending.empty()) return false;
  }
  return true;
}

}  // namespace pcq::net

#else  // !__linux__

namespace pcq::net {

struct TcpServer::Conn {};

TcpServer::TcpServer(svc::QueryService& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  throw IoError("tcp", "pcq::net requires Linux (epoll)");
}

TcpServer::~TcpServer() = default;
void TcpServer::run() {}
void TcpServer::request_stop() {}
void TcpServer::accept_ready(int, bool) {}
void TcpServer::conn_readable(const std::shared_ptr<Conn>&) {}
void TcpServer::admin_readable(const std::shared_ptr<Conn>&) {}
void TcpServer::conn_writable(const std::shared_ptr<Conn>&) {}
void TcpServer::handle_frame(const std::shared_ptr<Conn>&, const WireRequest&) {}
void TcpServer::queue_response(const std::shared_ptr<Conn>&, WireResponse&&,
                               bool) {}
void TcpServer::sweep_dirty() {}
void TcpServer::flush(const std::shared_ptr<Conn>&) {}
void TcpServer::close_conn(const std::shared_ptr<Conn>&) {}
void TcpServer::update_read_interest(const std::shared_ptr<Conn>&) {}
void TcpServer::begin_drain() {}
bool TcpServer::drain_complete() const { return true; }

}  // namespace pcq::net

#endif
