// pcq::net — admin (scrape) endpoint request handling.
//
// The TcpServer can open a SECOND listener whose connections speak a
// minimal HTTP/1.0 subset instead of the binary frame protocol, so CI,
// load generators, Prometheus and dashboards can observe a running server
// without linking the wire codec. One request per connection (the
// response always says `Connection: close`), GET only. Routes:
//
//   /metrics       Prometheus text exposition of the global registry
//   /metrics.json  composite JSON: uptime, service snapshot (qps, latency
//                  percentiles, per-shard queue depths), server counters,
//                  slow-query summary, and the full registry dump
//   /slow          the bounded slow-query log (obs::SlowLog) as JSON
//   /trace         Chrome trace-event JSON of everything recorded
//   /healthz       "ok" — liveness for scripts and orchestrators
//   /buildinfo     compiler / build-mode / trace-compiled-in JSON
//
// The handler is pure request -> response-bytes: TcpServer does the
// socket work; tests call handle_admin_request directly. `refresh` (when
// set) runs before any metrics route so sampled gauges (queue depths,
// rusage, connection stats) are at most one call old.
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <string_view>

namespace pcq::svc {
class QueryService;
}

namespace pcq::net {

struct ServerStats;

/// What the admin routes report on. Pointers may be null (the route then
/// omits that section); everything pointed at must outlive the handler.
struct AdminContext {
  svc::QueryService* service = nullptr;
  const ServerStats* server_stats = nullptr;
  /// Runs registered gauge samplers before a metrics scrape (usually
  /// Reporter::run_samplers on the serving process's reporter).
  std::function<void()> refresh;
  std::chrono::steady_clock::time_point started =
      std::chrono::steady_clock::now();
};

/// Builds the COMPLETE HTTP response (status line, headers, body) for one
/// admin request. Never throws; unknown paths get 404, non-GET 405.
[[nodiscard]] std::string handle_admin_request(const AdminContext& context,
                                               std::string_view method,
                                               std::string_view target);

}  // namespace pcq::net
