// pcq::net wire protocol — length-prefixed binary frames mapping 1:1 onto
// svc::Request / svc::Response.
//
// Every frame is a 4-byte little-endian payload length followed by the
// payload. A client sends fixed-size request frames and receives exactly
// one response frame per request frame, in any order (responses carry the
// request's id, so pipelined clients match them up). All integers are
// little-endian.
//
//   request payload (kRequestPayloadBytes == 25):
//     u64 id           echoed verbatim in the response
//     u8  kind         svc::QueryKind (0..7, incl. the kAddEdges/
//                      kRemoveEdges mutations), or kShutdownKind (255)
//     u32 u, v, t      query operands (unused ones are ignored)
//     u32 deadline_ms  0 = none; else deadline relative to server receipt
//
//   response payload (22 + 4 * n_neighbors bytes):
//     u64 id
//     u8  status       svc::Status
//     u8  exists
//     u32 degree
//     u32 arrival
//     u32 n_neighbors
//     u32 neighbors[n_neighbors]
//
// The shutdown control frame (kind == kShutdownKind) is answered with
// status kOk and then starts the server's graceful drain: stop accepting,
// answer everything in flight, flush write buffers, exit — the same path
// SIGINT takes. A frame whose declared length is not a well-formed request
// (wrong size, or over kMaxFrameBytes on the response side) is a protocol
// error: the server closes that connection rather than guessing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "svc/request.hpp"

namespace pcq::net {

/// Request kind value (outside svc::QueryKind) asking the server to drain
/// and exit gracefully.
inline constexpr std::uint8_t kShutdownKind = 255;

inline constexpr std::size_t kLengthBytes = 4;
inline constexpr std::size_t kRequestPayloadBytes = 25;
inline constexpr std::size_t kResponseHeaderBytes = 22;
/// Upper bound on any payload this implementation will accept; a response
/// carrying a full neighbour row of the paper's largest graphs fits with
/// room to spare, and anything larger is treated as a corrupt stream.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

/// One request as it travels the wire: the svc::Request fields plus the
/// client-chosen id and a relative deadline (absolute time_points don't
/// cross machines).
struct WireRequest {
  std::uint64_t id = 0;
  std::uint8_t kind = 0;  ///< svc::QueryKind value, or kShutdownKind
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  std::uint32_t t = 0;
  std::uint32_t deadline_ms = 0;  ///< 0 = no deadline
};

/// One response as it travels the wire.
struct WireResponse {
  std::uint64_t id = 0;
  std::uint8_t status = 0;  ///< svc::Status value
  std::uint8_t exists = 0;
  std::uint32_t degree = 0;
  std::uint32_t arrival = 0;
  std::vector<std::uint32_t> neighbors;
};

/// Result of trying to decode one frame from a byte stream.
enum class DecodeResult : std::uint8_t {
  kOk,        ///< one frame decoded; `consumed` bytes were used
  kNeedMore,  ///< the buffer holds a frame prefix; read more bytes
  kError,     ///< malformed frame — close the connection
};

/// Appends one encoded request frame to `out`.
void encode_request(const WireRequest& request, std::vector<std::uint8_t>& out);

/// Appends one encoded response frame to `out`.
void encode_response(const WireResponse& response,
                     std::vector<std::uint8_t>& out);

/// Decodes one request frame from `data[0..size)`. On kOk, `*consumed` is
/// the total frame size (length prefix included).
DecodeResult decode_request(const std::uint8_t* data, std::size_t size,
                            WireRequest* request, std::size_t* consumed);

/// Decodes one response frame from `data[0..size)`.
DecodeResult decode_response(const std::uint8_t* data, std::size_t size,
                             WireResponse* response, std::size_t* consumed);

/// WireRequest -> svc::Request. `now` anchors the relative deadline. The
/// kind must be a query kind (not kShutdownKind; check is_query first).
svc::Request to_service_request(const WireRequest& request,
                                svc::Clock::time_point now);

/// svc::Response -> WireResponse (moves the neighbour row, no copy).
WireResponse from_service_response(std::uint64_t id, svc::Response&& response);

/// True when the kind byte names a servable svc::QueryKind.
[[nodiscard]] bool is_query_kind(std::uint8_t kind);

}  // namespace pcq::net
