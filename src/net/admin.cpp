#include "net/admin.hpp"

#include <cstdio>
#include <sstream>

#include "net/server.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/slowlog.hpp"
#include "obs/trace.hpp"
#include "svc/service.hpp"

namespace pcq::net {

namespace {

std::string build_response(int status, const char* reason,
                           const char* content_type, const std::string& body) {
  // HTTP/1.0 + Connection: close keeps the connection lifecycle trivial:
  // the server half-closes after the body and the drain machinery it
  // already has finishes the job. Content-Length still set so HTTP/1.1
  // clients (curl, Prometheus) are happy too.
  std::string out;
  out.reserve(body.size() + 128);
  char head[160];
  std::snprintf(head, sizeof head,
                "HTTP/1.0 %d %s\r\nContent-Type: %s\r\n"
                "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                status, reason, content_type, body.size());
  out += head;
  out += body;
  return out;
}

std::string not_found() {
  return build_response(404, "Not Found", "text/plain; charset=utf-8",
                        "not found\n");
}

void append_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

void append_hist(std::string& out, const char* name, double mean, double p50,
                 double p95, double p99) {
  out += "\"";
  out += name;
  out += "\":{\"mean\":";
  append_double(out, mean);
  out += ",\"p50\":";
  append_double(out, p50);
  out += ",\"p95\":";
  append_double(out, p95);
  out += ",\"p99\":";
  append_double(out, p99);
  out += "}";
}

std::string metrics_json(const AdminContext& ctx) {
  std::string body = "{\"uptime_s\":";
  append_double(body,
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - ctx.started)
                    .count());
  if (ctx.server_stats != nullptr) {
    const ServerStats& s = *ctx.server_stats;
    body += ",\"server\":{\"accepted\":";
    append_u64(body, s.accepted.load(std::memory_order_relaxed));
    body += ",\"open_conns\":";
    body += std::to_string(s.open_conns.load(std::memory_order_relaxed));
    body += ",\"frames_in\":";
    append_u64(body, s.frames_in.load(std::memory_order_relaxed));
    body += ",\"frames_out\":";
    append_u64(body, s.frames_out.load(std::memory_order_relaxed));
    body += ",\"bytes_in\":";
    append_u64(body, s.bytes_in.load(std::memory_order_relaxed));
    body += ",\"bytes_out\":";
    append_u64(body, s.bytes_out.load(std::memory_order_relaxed));
    body += ",\"rejected\":";
    append_u64(body, s.rejected.load(std::memory_order_relaxed));
    body += ",\"protocol_errors\":";
    append_u64(body, s.protocol_errors.load(std::memory_order_relaxed));
    body += ",\"admin_requests\":";
    append_u64(body, s.admin_requests.load(std::memory_order_relaxed));
    body += "}";
  }
  if (ctx.service != nullptr) {
    const svc::MetricsSnapshot m = ctx.service->metrics();
    body += ",\"service\":{\"submitted\":";
    append_u64(body, m.submitted);
    body += ",\"completed\":";
    append_u64(body, m.completed);
    body += ",\"rejected\":";
    append_u64(body, m.rejected);
    body += ",\"expired\":";
    append_u64(body, m.expired);
    body += ",\"batches\":";
    append_u64(body, m.batches);
    body += ",\"mutations\":";
    append_u64(body, m.mutations);
    body += ",\"qps\":";
    append_double(body, m.qps);
    body += ",";
    append_hist(body, "latency_us", m.latency_mean_us, m.latency_p50_us,
                m.latency_p95_us, m.latency_p99_us);
    body += ",";
    append_hist(body, "queue_wait_us", m.queue_wait_mean_us,
                m.queue_wait_p50_us, m.queue_wait_p95_us, m.queue_wait_p99_us);
    body += ",";
    append_hist(body, "batch_size", m.mean_batch_size, m.batch_p50,
                m.batch_p95, m.batch_p99);
    body += ",\"queue_depths\":[";
    const std::vector<std::size_t> depths = ctx.service->queue_depths();
    for (std::size_t i = 0; i < depths.size(); ++i) {
      if (i > 0) body += ",";
      body += std::to_string(depths[i]);
    }
    body += "]}";
  }
  const obs::SlowLog& slow = obs::SlowLog::global();
  body += ",\"slowlog\":{\"threshold_us\":";
  append_u64(body, slow.threshold_us());
  body += ",\"captured\":";
  append_u64(body, slow.captured());
  body += ",\"capacity\":";
  append_u64(body, slow.capacity());
  body += "},\"registry\":";
  std::ostringstream registry;
  obs::MetricsRegistry::global().write_json(registry);
  body += registry.str();
  body += "}";
  return body;
}

std::string buildinfo_json() {
  std::string body = "{\"project\":\"pcq\",\"component\":\"pcq_serve\"";
  body += ",\"trace_compiled_in\":";
  body += obs::kTraceCompiledIn ? "true" : "false";
#ifdef NDEBUG
  body += ",\"build\":\"release\"";
#else
  body += ",\"build\":\"debug\"";
#endif
#ifdef __VERSION__
  body += ",\"compiler\":\"";
  body += __VERSION__;
  body += "\"";
#endif
  body += "}";
  return body;
}

}  // namespace

std::string handle_admin_request(const AdminContext& context,
                                 std::string_view method,
                                 std::string_view target) {
  if (method != "GET")
    return build_response(405, "Method Not Allowed",
                          "text/plain; charset=utf-8", "GET only\n");
  // Ignore a query string: "/metrics?x=1" scrapes /metrics.
  const std::size_t q = target.find('?');
  const std::string_view path =
      q == std::string_view::npos ? target : target.substr(0, q);

  if (path == "/healthz")
    return build_response(200, "OK", "text/plain; charset=utf-8", "ok\n");

  if (path == "/buildinfo")
    return build_response(200, "OK", "application/json", buildinfo_json());

  if (path == "/metrics") {
    if (context.refresh) context.refresh();
    std::ostringstream body;
    obs::write_prometheus(obs::MetricsRegistry::global(), body);
    return build_response(200, "OK",
                          "text/plain; version=0.0.4; charset=utf-8",
                          body.str());
  }

  if (path == "/metrics.json") {
    if (context.refresh) context.refresh();
    return build_response(200, "OK", "application/json",
                          metrics_json(context));
  }

  if (path == "/slow") {
    std::ostringstream body;
    obs::SlowLog::global().write_json(body);
    return build_response(200, "OK", "application/json", body.str());
  }

  if (path == "/trace") {
    std::ostringstream body;
    obs::write_chrome_trace(body);
    return build_response(200, "OK", "application/json", body.str());
  }

  return not_found();
}

}  // namespace pcq::net
