#include "net/client.hpp"

#include <cstring>
#include <utility>

#include "util/io_error.hpp"

#if defined(__unix__) || defined(__APPLE__)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace pcq::net {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), rbuf_(std::move(other.rbuf_)),
      rpos_(std::exchange(other.rpos_, 0)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    rbuf_ = std::move(other.rbuf_);
    rpos_ = std::exchange(other.rpos_, 0);
  }
  return *this;
}

void Client::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw IoError(host, std::string("socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw IoError(host, "not an IPv4 address");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    close();
    throw IoError(host + ":" + std::to_string(port),
                  std::string("connect: ") + std::strerror(err));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void Client::send_request(const WireRequest& request) {
  std::vector<std::uint8_t> frame;
  frame.reserve(kLengthBytes + kRequestPayloadBytes);
  encode_request(request, frame);
#ifdef MSG_NOSIGNAL
  constexpr int kSendFlags = MSG_NOSIGNAL;
#else
  constexpr int kSendFlags = 0;
#endif
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + sent, frame.size() - sent, kSendFlags);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("tcp", std::string("write: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool Client::read_response(WireResponse* response) {
  for (;;) {
    std::size_t consumed = 0;
    const DecodeResult r = decode_response(
        rbuf_.data() + rpos_, rbuf_.size() - rpos_, response, &consumed);
    if (r == DecodeResult::kOk) {
      rpos_ += consumed;
      if (rpos_ >= rbuf_.size()) {
        rbuf_.clear();
        rpos_ = 0;
      }
      return true;
    }
    if (r == DecodeResult::kError)
      throw IoError("tcp", "malformed response frame");
    std::uint8_t chunk[64 * 1024];
    const ssize_t got = ::read(fd_, chunk, sizeof chunk);
    if (got > 0) {
      rbuf_.insert(rbuf_.end(), chunk, chunk + static_cast<std::size_t>(got));
      continue;
    }
    if (got == 0) {
      if (rbuf_.size() > rpos_)
        throw IoError("tcp", "connection closed mid-frame");
      return false;  // clean EOF: the server drained and closed
    }
    if (errno == EINTR) continue;
    throw IoError("tcp", std::string("read: ") + std::strerror(errno));
  }
}

void Client::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
  rpos_ = 0;
}

}  // namespace pcq::net

#else  // !unix

namespace pcq::net {

Client::~Client() = default;
Client::Client(Client&&) noexcept {}
Client& Client::operator=(Client&&) noexcept { return *this; }

void Client::connect(const std::string&, std::uint16_t) {
  throw IoError("tcp", "pcq::net requires a POSIX socket layer");
}
void Client::send_request(const WireRequest&) {
  throw IoError("tcp", "pcq::net requires a POSIX socket layer");
}
bool Client::read_response(WireResponse*) { return false; }
void Client::shutdown_write() {}
void Client::close() {}

}  // namespace pcq::net

#endif
