// Blocking TCP client for the pcq::net frame protocol.
//
// Deliberately simple: one socket, blocking syscalls, an internal read
// buffer. send_request() writes a frame (pipelining is fine — call it as
// many times as you like before reading), read_response() blocks until one
// whole response frame arrives. The server answers every well-formed
// request frame exactly once (kOk, kRejected, kInvalid, ... — rejection is
// a response, not a dropped frame), so a client that sent N requests can
// simply read N responses. Used by the bench_svc TCP load generator, the
// net test suite, and `pcq_serve --connect`.
#pragma once

#include <cstdint>
#include <string>

#include "net/protocol.hpp"

namespace pcq::net {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to host:port; throws pcq::IoError on failure.
  void connect(const std::string& host, std::uint16_t port);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Writes one request frame (blocking until the kernel takes the bytes).
  /// Throws pcq::IoError when the connection broke.
  void send_request(const WireRequest& request);

  /// Blocks until one whole response frame is read. Returns false on a
  /// clean EOF with no partial frame buffered (the server drained and
  /// closed); throws pcq::IoError on a mid-frame EOF, a read error, or a
  /// malformed frame.
  bool read_response(WireResponse* response);

  /// Closes the write side so the server sees EOF; responses already in
  /// flight can still be read.
  void shutdown_write();

  void close();

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> rbuf_;
  std::size_t rpos_ = 0;
};

}  // namespace pcq::net
