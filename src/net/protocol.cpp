#include "net/protocol.hpp"

#include <cstring>

namespace pcq::net {

namespace {

// Little-endian scalar append/read. memcpy keeps every access aligned-safe
// and the byte order is the host's on every platform this builds for; the
// explicit shifts below would also work but memcpy optimizes to a plain
// store.
template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  std::uint8_t bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

template <typename T>
T get(const std::uint8_t* data) {
  T value;
  std::memcpy(&value, data, sizeof(T));
  return value;
}

}  // namespace

bool is_query_kind(std::uint8_t kind) {
  // Mutation kinds ride the same frames; a read-only service answers them
  // kUnsupported, so admitting them here is always safe.
  return kind <= static_cast<std::uint8_t>(svc::QueryKind::kRemoveEdges);
}

void encode_request(const WireRequest& request,
                    std::vector<std::uint8_t>& out) {
  put<std::uint32_t>(out, kRequestPayloadBytes);
  put<std::uint64_t>(out, request.id);
  put<std::uint8_t>(out, request.kind);
  put<std::uint32_t>(out, request.u);
  put<std::uint32_t>(out, request.v);
  put<std::uint32_t>(out, request.t);
  put<std::uint32_t>(out, request.deadline_ms);
}

void encode_response(const WireResponse& response,
                     std::vector<std::uint8_t>& out) {
  const std::size_t payload =
      kResponseHeaderBytes + 4 * response.neighbors.size();
  put<std::uint32_t>(out, static_cast<std::uint32_t>(payload));
  put<std::uint64_t>(out, response.id);
  put<std::uint8_t>(out, response.status);
  put<std::uint8_t>(out, response.exists);
  put<std::uint32_t>(out, response.degree);
  put<std::uint32_t>(out, response.arrival);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(response.neighbors.size()));
  for (const std::uint32_t v : response.neighbors) put<std::uint32_t>(out, v);
}

DecodeResult decode_request(const std::uint8_t* data, std::size_t size,
                            WireRequest* request, std::size_t* consumed) {
  if (size < kLengthBytes) return DecodeResult::kNeedMore;
  const auto len = get<std::uint32_t>(data);
  // Requests are fixed-size; any other declared length is a corrupt or
  // foreign stream, not a frame to wait for.
  if (len != kRequestPayloadBytes) return DecodeResult::kError;
  if (size < kLengthBytes + len) return DecodeResult::kNeedMore;
  const std::uint8_t* p = data + kLengthBytes;
  request->id = get<std::uint64_t>(p);
  request->kind = get<std::uint8_t>(p + 8);
  request->u = get<std::uint32_t>(p + 9);
  request->v = get<std::uint32_t>(p + 13);
  request->t = get<std::uint32_t>(p + 17);
  request->deadline_ms = get<std::uint32_t>(p + 21);
  *consumed = kLengthBytes + len;
  return DecodeResult::kOk;
}

DecodeResult decode_response(const std::uint8_t* data, std::size_t size,
                             WireResponse* response, std::size_t* consumed) {
  if (size < kLengthBytes) return DecodeResult::kNeedMore;
  const auto len = get<std::uint32_t>(data);
  if (len < kResponseHeaderBytes || len > kMaxFrameBytes ||
      (len - kResponseHeaderBytes) % 4 != 0)
    return DecodeResult::kError;
  if (size < kLengthBytes + len) return DecodeResult::kNeedMore;
  const std::uint8_t* p = data + kLengthBytes;
  response->id = get<std::uint64_t>(p);
  response->status = get<std::uint8_t>(p + 8);
  response->exists = get<std::uint8_t>(p + 9);
  response->degree = get<std::uint32_t>(p + 10);
  response->arrival = get<std::uint32_t>(p + 14);
  const auto n = get<std::uint32_t>(p + 18);
  if (static_cast<std::size_t>(n) * 4 != len - kResponseHeaderBytes)
    return DecodeResult::kError;
  response->neighbors.resize(n);
  if (n > 0) std::memcpy(response->neighbors.data(), p + 22, n * 4u);
  *consumed = kLengthBytes + len;
  return DecodeResult::kOk;
}

svc::Request to_service_request(const WireRequest& request,
                                svc::Clock::time_point now) {
  svc::Request r;
  r.kind = static_cast<svc::QueryKind>(request.kind);
  r.u = request.u;
  r.v = request.v;
  r.t = request.t;
  if (request.deadline_ms > 0)
    r.deadline = now + std::chrono::milliseconds(request.deadline_ms);
  // The wire id doubles as the trace id: slow-query log entries and trace
  // spans for this request are findable from the client's own id space.
  r.trace_id = request.id;
  return r;
}

WireResponse from_service_response(std::uint64_t id, svc::Response&& response) {
  WireResponse w;
  w.id = id;
  w.status = static_cast<std::uint8_t>(response.status);
  w.exists = response.exists ? 1 : 0;
  w.degree = response.degree;
  w.arrival = response.arrival;
  w.neighbors = std::move(response.neighbors);
  return w;
}

}  // namespace pcq::net
