// pcq::net — epoll TCP serving front-end for the pcq::svc query service.
//
// One epoll thread owns every socket; it never touches the graph. Parsed
// request frames fan in to the existing per-shard BoundedMpmcQueue via
// QueryService::submit, and completions travel back on the service's
// worker threads as encoded response bytes appended to the connection's
// outbound buffer (mutex-guarded, wake via eventfd) — so the only new
// threading the network layer introduces is the epoll loop itself; the
// shared-nothing shard model is untouched.
//
//   accept ──► Conn{read buffer} ──decode──► svc::submit ──► shard queues
//                                                │ callback (worker thread)
//   epoll ◄── eventfd wake ◄── Conn{outbound} ◄─┘ encoded response
//
// Backpressure is explicit end to end: a saturated shard queue makes
// submit() return false and the server answers a kRejected frame
// immediately instead of buffering the request anywhere; a connection
// whose outbound buffer exceeds Options::write_buffer_limit (a slow
// reader) stops being read until the buffer drains below the limit, so
// neither direction grows unboundedly.
//
// Graceful drain (SIGINT/SIGTERM via request_stop(), or a shutdown control
// frame): stop accepting, stop reading, answer everything in flight, flush
// every write buffer, then run() returns. request_stop() is
// async-signal-safe (one eventfd write).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"
#include "svc/service.hpp"
#include "util/thread_annotations.hpp"

namespace pcq::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read the bound one via port()
  int backlog = 128;
  /// Per-connection outbound cap: above it the connection is not read
  /// (flow control), so a slow reader throttles itself instead of growing
  /// the server's memory.
  std::size_t write_buffer_limit = 8u << 20;
  /// Opens a SECOND listener on the same epoll thread whose connections
  /// speak the minimal HTTP subset of net/admin.hpp (scrapes, slow-query
  /// log, trace export) instead of the binary frame protocol.
  bool admin_enabled = false;
  std::uint16_t admin_port = 0;  ///< 0 = ephemeral; read via admin_port()
};

/// Counters the epoll thread maintains; read them after run() returns (or
/// racily for monitoring — they are atomics).
struct ServerStats {
  std::atomic<std::uint64_t> accepted{0};        ///< connections accepted
  std::atomic<std::uint64_t> frames_in{0};       ///< request frames decoded
  std::atomic<std::uint64_t> frames_out{0};      ///< response frames flushed
  std::atomic<std::uint64_t> bytes_in{0};        ///< payload bytes read
  std::atomic<std::uint64_t> bytes_out{0};       ///< payload bytes written
  std::atomic<std::uint64_t> rejected{0};        ///< kRejected answered
  std::atomic<std::uint64_t> protocol_errors{0}; ///< connections closed on bad frames
  std::atomic<std::uint64_t> drained_in_flight{0};///< answered during drain
  std::atomic<std::uint64_t> admin_requests{0};  ///< admin HTTP requests answered
  std::atomic<std::int64_t> open_conns{0};       ///< currently open connections
};

class TcpServer {
 public:
  /// Binds and listens immediately (so port() is valid before run());
  /// throws pcq::IoError when the socket/bind/listen setup fails.
  /// `service` must outlive the server.
  TcpServer(svc::QueryService& service, ServerOptions options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The bound port (resolves an ephemeral Options::port = 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// The bound admin port; 0 when Options::admin_enabled is false.
  [[nodiscard]] std::uint16_t admin_port() const { return admin_port_; }

  /// Installs the admin request handler (net/admin.hpp's
  /// handle_admin_request bound to an AdminContext). Must be set before
  /// run(); without one, admin connections answer 503.
  void set_admin_handler(
      std::function<std::string(std::string_view method,
                                std::string_view target)>
          handler) {
    admin_handler_ = std::move(handler);
  }

  /// Runs the epoll loop on the calling thread. Returns after a graceful
  /// drain completes: every admitted request answered, every response
  /// frame flushed (or its connection gone), all sockets closed.
  void run();

  /// Requests a graceful drain. Async-signal-safe (a single eventfd
  /// write), callable from any thread or a signal handler; run() finishes
  /// the drain and returns.
  void request_stop();

  [[nodiscard]] const ServerStats& stats() const { return stats_; }

 private:
  struct Conn;

  void accept_ready(int listen_fd, bool admin);
  void conn_readable(const std::shared_ptr<Conn>& conn);
  /// HTTP parse/respond path for admin connections: one request, one
  /// response, half-close (flush()'s existing teardown finishes the job).
  void admin_readable(const std::shared_ptr<Conn>& conn);
  void conn_writable(const std::shared_ptr<Conn>& conn);
  void handle_frame(const std::shared_ptr<Conn>& conn, const WireRequest& w);
  /// Appends one encoded response to the connection's outbound bytes and
  /// wakes the epoll thread. `completes_inflight` is true on the service
  /// callback path (the per-connection in-flight count drops with the same
  /// lock held, so half-close teardown can't miss the final answer).
  void queue_response(const std::shared_ptr<Conn>& conn, WireResponse&& w,
                      bool completes_inflight);
  void sweep_dirty();
  void flush(const std::shared_ptr<Conn>& conn);
  void close_conn(const std::shared_ptr<Conn>& conn);
  void update_read_interest(const std::shared_ptr<Conn>& conn);
  void begin_drain();
  [[nodiscard]] bool drain_complete() const;

  svc::QueryService& service_;
  ServerOptions options_;
  ServerStats stats_;
  int listen_fd_ = -1;
  int admin_listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: completion wakeups + stop requests
  std::uint16_t port_ = 0;
  std::uint16_t admin_port_ = 0;
  std::function<std::string(std::string_view, std::string_view)>
      admin_handler_;
  std::atomic<bool> stop_requested_{false};
  bool draining_ = false;
  /// Requests admitted to the service whose responses have not yet been
  /// handed back to the epoll thread; drain waits for it to hit zero.
  std::atomic<std::uint64_t> in_flight_{0};
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
  /// Connections with freshly completed responses, filled by service
  /// worker threads, swapped out and flushed by the epoll thread.
  util::Mutex dirty_mu_;
  std::vector<std::weak_ptr<Conn>> dirty_ PCQ_GUARDED_BY(dirty_mu_);
};

}  // namespace pcq::net
