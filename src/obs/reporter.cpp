#include "obs/reporter.hpp"

#include <cstdio>
#include <utility>

#include "obs/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace pcq::obs {

void Reporter::add_sampler(std::function<void()> sampler) {
  util::MutexLock lock(samplers_mu_);
  samplers_.push_back(std::move(sampler));
}

void Reporter::run_samplers() {
  // Copy under the lock, run outside it: a sampler that takes its own lock
  // (queue mutexes) must not nest inside samplers_mu_.
  std::vector<std::function<void()>> samplers;
  {
    util::MutexLock lock(samplers_mu_);
    samplers = samplers_;
  }
  for (const auto& s : samplers) s();
}

void Reporter::tick(std::ostream& out) {
  run_samplers();
  const auto now = std::chrono::steady_clock::now();
  const double interval_s =
      std::chrono::duration<double>(now - prev_tick_).count();
  const double uptime_s =
      std::chrono::duration<double>(now - started_).count();
  const auto ts_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();

  char buf[128];
  std::snprintf(buf, sizeof buf,
                "{\"ts_ms\":%lld,\"uptime_s\":%.3f,\"interval_s\":%.3f,"
                "\"counters\":{",
                static_cast<long long>(ts_ms), uptime_s, interval_s);
  out << buf;
  std::map<std::string, std::uint64_t> totals;
  bool first = true;
  MetricsRegistry::global().for_each(
      [&](const std::string& name, std::uint64_t value) {
        totals[name] = value;
        const auto it = prev_counters_.find(name);
        const std::uint64_t prev = it == prev_counters_.end() ? 0 : it->second;
        // A reset() between ticks makes value < prev; clamp the delta to 0
        // rather than reporting a huge wrapped rate.
        const std::uint64_t delta = value >= prev ? value - prev : 0;
        const double rate =
            interval_s > 0 ? static_cast<double>(delta) / interval_s : 0.0;
        std::snprintf(buf, sizeof buf, "%s\"%s\":{\"total\":%llu,\"rate\":%.3f}",
                      first ? "" : ",", name.c_str(),
                      static_cast<unsigned long long>(value), rate);
        out << buf;
        first = false;
      },
      nullptr, nullptr);
  out << "},\"gauges\":{";
  first = true;
  MetricsRegistry::global().for_each(
      nullptr,
      [&](const std::string& name, std::int64_t value) {
        std::snprintf(buf, sizeof buf, "%s\"%s\":%lld", first ? "" : ",",
                      name.c_str(), static_cast<long long>(value));
        out << buf;
        first = false;
      },
      nullptr);
  out << "}}\n";
  prev_counters_ = std::move(totals);
  prev_tick_ = now;
  ticks_.fetch_add(1, std::memory_order_relaxed);
}

bool Reporter::start(ReporterOptions options) {
  if (running_.load(std::memory_order_acquire)) return true;
  options_ = std::move(options);
  if (!options_.jsonl_path.empty()) {
    out_.open(options_.jsonl_path, std::ios::app);
    if (!out_) return false;
  }
  {
    util::MutexLock lock(stop_mu_);
    stop_requested_ = false;
  }
  started_ = prev_tick_ = std::chrono::steady_clock::now();
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
  return true;
}

void Reporter::loop() {
  for (;;) {
    {
      // Explicit predicate loop in the locked scope (not a wait lambda),
      // so the capability analysis sees every stop_requested_ read under
      // stop_mu_. A timeout with no stop request falls through to the tick.
      util::MutexLock lock(stop_mu_);
      const auto deadline =
          std::chrono::steady_clock::now() + options_.interval;
      while (!stop_requested_) {
        if (stop_cv_.wait_until(lock, deadline) == std::cv_status::timeout)
          break;
      }
      if (stop_requested_) break;
    }
    if (out_.is_open()) {
      tick(out_);
      out_.flush();
    } else {
      // No file: still refresh sampled gauges so admin scrapes between
      // explicit refreshes stay at most one interval stale.
      run_samplers();
    }
  }
  // Final line: a run shorter than one interval still leaves a data point.
  if (out_.is_open()) {
    tick(out_);
    out_.flush();
    out_.close();
  }
}

void Reporter::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  {
    util::MutexLock lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void sample_process_gauges() {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return;
  auto& reg = MetricsRegistry::global();
  // ru_maxrss is kilobytes on Linux (bytes on macOS; close enough for a
  // trend gauge there — exactness matters on the deploy target).
  reg.gauge("proc.maxrss_kb").set(static_cast<std::int64_t>(ru.ru_maxrss));
  reg.gauge("proc.user_cpu_ms")
      .set(ru.ru_utime.tv_sec * 1000 + ru.ru_utime.tv_usec / 1000);
  reg.gauge("proc.sys_cpu_ms")
      .set(ru.ru_stime.tv_sec * 1000 + ru.ru_stime.tv_usec / 1000);
#endif
}

}  // namespace pcq::obs
