#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <new>
#include <ostream>
#include <type_traits>

#include "util/thread_annotations.hpp"

namespace pcq::obs {

int LogHistogram::bucket_index(std::uint64_t value) {
  // Values below kSub map to themselves (exact small-value buckets);
  // larger values land in octave `bit_width - kSubBits` with the top
  // kSubBits bits after the leading one selecting the linear sub-bucket.
  if (value < kSub) return static_cast<int>(value);
  const int msb = static_cast<int>(std::bit_width(value)) - 1;  // >= kSubBits
  const int sub =
      static_cast<int>((value >> (msb - kSubBits)) & (kSub - 1));
  const int idx = (msb - kSubBits + 1) * kSub + sub;
  return idx >= kBuckets ? kBuckets - 1 : idx;
}

std::uint64_t LogHistogram::bucket_floor(int i) {
  if (i < kSub) return static_cast<std::uint64_t>(i);
  const int octave = i / kSub - 1 + kSubBits;
  const int sub = i % kSub;
  return (std::uint64_t{1} << octave) |
         (static_cast<std::uint64_t>(sub) << (octave - kSubBits));
}

LogHistogram::Snapshot LogHistogram::snapshot() const {
  Snapshot s;
  s.buckets.resize(kBuckets);
  accumulate(s);
  return s;
}

void LogHistogram::accumulate(Snapshot& into) const {
  if (into.buckets.size() != static_cast<std::size_t>(kBuckets))
    into.buckets.resize(kBuckets);
  for (int i = 0; i < kBuckets; ++i)
    into.buckets[static_cast<std::size_t>(i)] +=
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  into.count += count_.load(std::memory_order_relaxed);
  into.sum += sum_.load(std::memory_order_relaxed);
  into.min_seen =
      std::min(into.min_seen, min_.load(std::memory_order_relaxed));
  into.max_seen =
      std::max(into.max_seen, max_.load(std::memory_order_relaxed));
}

double LogHistogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t b = buckets[static_cast<std::size_t>(i)];
    if (b == 0) continue;
    if (static_cast<double>(seen + b) >= target) {
      const std::uint64_t lo = bucket_floor(i);
      // Width-1 buckets (every value below kSub) are exact. Otherwise
      // report the geometric midpoint of [lo, hi) — never a boundary, so
      // the estimate stays a value the bucket could actually contain; see
      // the error bound in the class comment.
      const std::uint64_t hi =
          i + 1 < kBuckets ? bucket_floor(i + 1) : lo + 1;
      if (hi - lo <= 1) return static_cast<double>(lo);
      return std::sqrt(static_cast<double>(lo) * static_cast<double>(hi));
    }
    seen += b;
  }
  return static_cast<double>(bucket_floor(kBuckets - 1));
}

// --- MetricsRegistry --------------------------------------------------------

struct MetricsRegistry::Impl {
  mutable util::Mutex mu;
  // Node-based maps: references handed out stay valid as entries are added.
  std::map<std::string, Counter> counters PCQ_GUARDED_BY(mu);
  std::map<std::string, Gauge> gauges PCQ_GUARDED_BY(mu);
  std::map<std::string, LogHistogram> histograms PCQ_GUARDED_BY(mu);
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* r = new MetricsRegistry();  // never destroyed:
  return *r;  // instrumented worker threads may outlive main()'s statics
}

Counter& MetricsRegistry::counter(std::string_view name) {
  util::MutexLock lock(impl_->mu);
  return impl_->counters[std::string(name)];
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  util::MutexLock lock(impl_->mu);
  return impl_->gauges[std::string(name)];
}

LogHistogram& MetricsRegistry::histogram(std::string_view name) {
  util::MutexLock lock(impl_->mu);
  return impl_->histograms[std::string(name)];
}

void MetricsRegistry::write_text(std::ostream& out) const {
  util::MutexLock lock(impl_->mu);
  for (const auto& [name, c] : impl_->counters)
    out << name << " " << c.value() << "\n";
  for (const auto& [name, g] : impl_->gauges)
    out << name << " " << g.value() << "\n";
  for (const auto& [name, h] : impl_->histograms) {
    const auto s = h.snapshot();
    out << name << " count " << s.count << " mean " << s.mean() << " p50 "
        << s.quantile(0.50) << " p95 " << s.quantile(0.95) << " p99 "
        << s.quantile(0.99) << " min " << s.min() << " max " << s.max()
        << "\n";
  }
}

void MetricsRegistry::write_json(std::ostream& out) const {
  util::MutexLock lock(impl_->mu);
  out << "{";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",";
    first = false;
  };
  for (const auto& [name, c] : impl_->counters) {
    sep();
    out << "\"" << name << "\":" << c.value();
  }
  for (const auto& [name, g] : impl_->gauges) {
    sep();
    out << "\"" << name << "\":" << g.value();
  }
  for (const auto& [name, h] : impl_->histograms) {
    const auto s = h.snapshot();
    sep();
    out << "\"" << name << "\":{\"count\":" << s.count
        << ",\"mean\":" << s.mean() << ",\"p50\":" << s.quantile(0.50)
        << ",\"p95\":" << s.quantile(0.95) << ",\"p99\":" << s.quantile(0.99)
        << ",\"min\":" << s.min() << ",\"max\":" << s.max() << "}";
  }
  out << "}";
}

void MetricsRegistry::for_each(
    const std::function<void(const std::string&, std::uint64_t)>& on_counter,
    const std::function<void(const std::string&, std::int64_t)>& on_gauge,
    const std::function<void(const std::string&,
                             const LogHistogram::Snapshot&)>& on_histogram)
    const {
  util::MutexLock lock(impl_->mu);
  if (on_counter)
    for (const auto& [name, c] : impl_->counters) on_counter(name, c.value());
  if (on_gauge)
    for (const auto& [name, g] : impl_->gauges) on_gauge(name, g.value());
  if (on_histogram)
    for (const auto& [name, h] : impl_->histograms)
      on_histogram(name, h.snapshot());
}

void MetricsRegistry::reset() {
  util::MutexLock lock(impl_->mu);
  // Atomics are not assignable; rebuild each metric in place (references
  // handed out keep pointing at the same, now-zeroed, object).
  const auto rebuild = [](auto& metric) {
    using T = std::remove_reference_t<decltype(metric)>;
    metric.~T();
    new (&metric) T();
  };
  for (auto& [name, c] : impl_->counters) rebuild(c);
  for (auto& [name, g] : impl_->gauges) rebuild(g);
  for (auto& [name, h] : impl_->histograms) rebuild(h);
}

}  // namespace pcq::obs
