#include "obs/exposition.hpp"

#include <cstdio>
#include <ostream>

#include "obs/metrics.hpp"

namespace pcq::obs {

namespace {

bool valid_first(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool valid_rest(char c) { return valid_first(c) || (c >= '0' && c <= '9'); }

/// %g prints doubles compactly without locale surprises; histograms carry
/// quantile estimates that are doubles by construction.
void write_double(std::ostream& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out << buf;
}

}  // namespace

bool is_valid_metric_name(std::string_view name) {
  if (name.empty() || !valid_first(name[0])) return false;
  for (std::size_t i = 1; i < name.size(); ++i)
    if (!valid_rest(name[i])) return false;
  return true;
}

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) out.push_back(valid_rest(c) ? c : '_');
  if (out.empty() || !valid_first(out[0])) out.insert(out.begin(), '_');
  return out;
}

void write_prometheus(const MetricsRegistry& registry, std::ostream& out) {
  registry.for_each(
      [&](const std::string& name, std::uint64_t value) {
        const std::string n = sanitize_metric_name(name);
        out << "# TYPE " << n << " counter\n" << n << " " << value << "\n";
      },
      [&](const std::string& name, std::int64_t value) {
        const std::string n = sanitize_metric_name(name);
        out << "# TYPE " << n << " gauge\n" << n << " " << value << "\n";
      },
      [&](const std::string& name, const LogHistogram::Snapshot& s) {
        const std::string n = sanitize_metric_name(name);
        out << "# TYPE " << n << " summary\n";
        for (const double q : {0.5, 0.95, 0.99}) {
          out << n << "{quantile=\"";
          write_double(out, q);
          out << "\"} ";
          write_double(out, s.quantile(q));
          out << "\n";
        }
        out << n << "_sum " << s.sum << "\n";
        out << n << "_count " << s.count << "\n";
        // Exact extremes as companion gauges — the summary type has no
        // min/max slots but the tails are the point of tracking them.
        out << "# TYPE " << n << "_min gauge\n"
            << n << "_min " << s.min() << "\n";
        out << "# TYPE " << n << "_max gauge\n"
            << n << "_max " << s.max() << "\n";
      });
}

}  // namespace pcq::obs
