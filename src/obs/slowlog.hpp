// pcq::obs — bounded slow-query log with tail-based sampling.
//
// The serving path cannot afford full per-request span capture at several
// hundred thousand qps, and a uniform sample mostly records the boring
// median. Tail-based sampling inverts that: every completed request does
// ONE relaxed atomic load (the latency threshold; 0 = sampling off) and
// only requests at or above the threshold take the slow path — a mutex
// push into a bounded ring of SlowQuery records plus full phase spans into
// the TraceRing. The hot path therefore costs a load and a predicted
// branch per request; the mutex is only ever contended by requests that
// are already milliseconds late.
//
// The log is bounded (drop-oldest): it is a flight recorder of the worst
// recent requests, queryable at runtime via the admin endpoint (/slow) and
// in-process via snapshot(). `captured` counts everything ever recorded,
// so `captured - min(captured, capacity)` is the evicted tail.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <vector>

#include "util/thread_annotations.hpp"

namespace pcq::obs {

/// One captured slow request: identity, phase split and context. Times are
/// microseconds; ts_ns is the completion instant on the trace clock.
struct SlowQuery {
  std::uint64_t trace_id = 0;  ///< wire request id (0 for in-process submits)
  std::uint8_t kind = 0;       ///< svc::QueryKind value
  std::uint8_t status = 0;     ///< svc::Status value
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  std::uint32_t t = 0;
  std::uint64_t total_us = 0;   ///< enqueue -> completion
  std::uint64_t queue_us = 0;   ///< enqueue -> batch dispatch
  std::uint64_t service_us = 0; ///< batch dispatch -> completion (kernel side)
  std::uint32_t batch_size = 0; ///< size of the dispatched batch it rode in
  std::uint32_t shard = 0;
  std::uint64_t ts_ns = 0;      ///< completion time (trace clock)
};

/// Process-wide bounded slow-query log. All methods are thread-safe; only
/// threshold_us() is on the per-request hot path.
class SlowLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  /// The instance the service instrumentation records into.
  static SlowLog& global();

  /// Capture threshold in microseconds; 0 disables sampling entirely.
  void set_threshold_us(std::uint64_t us) {
    threshold_us_.store(us, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t threshold_us() const {
    return threshold_us_.load(std::memory_order_relaxed);
  }

  /// Bound on retained records; older entries are evicted first. Shrinking
  /// drops the oldest overflow immediately.
  void set_capacity(std::size_t capacity) PCQ_EXCLUDES(mu_);
  [[nodiscard]] std::size_t capacity() const PCQ_EXCLUDES(mu_);

  /// Appends one record (drop-oldest beyond capacity).
  void record(const SlowQuery& q) PCQ_EXCLUDES(mu_);

  /// Records ever captured (including since-evicted ones).
  [[nodiscard]] std::uint64_t captured() const {
    return captured_.load(std::memory_order_relaxed);
  }

  /// Copies the retained records, oldest first.
  [[nodiscard]] std::vector<SlowQuery> snapshot() const PCQ_EXCLUDES(mu_);

  /// Drops all retained records and zeroes the captured count (tests /
  /// tools between runs).
  void clear() PCQ_EXCLUDES(mu_);

  /// Writes the retained records as a JSON document:
  /// {"threshold_us":..,"captured":..,"capacity":..,"entries":[...]}.
  void write_json(std::ostream& out) const PCQ_EXCLUDES(mu_);

 private:
  std::atomic<std::uint64_t> threshold_us_{0};
  std::atomic<std::uint64_t> captured_{0};
  mutable util::Mutex mu_;
  std::size_t capacity_ PCQ_GUARDED_BY(mu_) = kDefaultCapacity;
  std::deque<SlowQuery> entries_ PCQ_GUARDED_BY(mu_);
};

}  // namespace pcq::obs
