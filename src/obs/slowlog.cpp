#include "obs/slowlog.hpp"

#include <ostream>

namespace pcq::obs {

SlowLog& SlowLog::global() {
  static SlowLog* log = new SlowLog();  // never destroyed: worker threads
  return *log;  // may record past main()'s static teardown
}

void SlowLog::set_capacity(std::size_t capacity) {
  util::MutexLock lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  while (entries_.size() > capacity_) entries_.pop_front();
}

std::size_t SlowLog::capacity() const {
  util::MutexLock lock(mu_);
  return capacity_;
}

void SlowLog::record(const SlowQuery& q) {
  captured_.fetch_add(1, std::memory_order_relaxed);
  util::MutexLock lock(mu_);
  if (entries_.size() >= capacity_) entries_.pop_front();
  entries_.push_back(q);
}

std::vector<SlowQuery> SlowLog::snapshot() const {
  util::MutexLock lock(mu_);
  return std::vector<SlowQuery>(entries_.begin(), entries_.end());
}

void SlowLog::clear() {
  util::MutexLock lock(mu_);
  entries_.clear();
  captured_.store(0, std::memory_order_relaxed);
}

void SlowLog::write_json(std::ostream& out) const {
  const std::vector<SlowQuery> entries = snapshot();
  out << "{\"threshold_us\":" << threshold_us() << ",\"captured\":"
      << captured() << ",\"capacity\":" << capacity() << ",\"entries\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const SlowQuery& q = entries[i];
    if (i > 0) out << ",";
    out << "{\"trace_id\":" << q.trace_id
        << ",\"kind\":" << static_cast<unsigned>(q.kind)
        << ",\"status\":" << static_cast<unsigned>(q.status) << ",\"u\":"
        << q.u << ",\"v\":" << q.v << ",\"t\":" << q.t << ",\"total_us\":"
        << q.total_us << ",\"queue_us\":" << q.queue_us << ",\"service_us\":"
        << q.service_us << ",\"batch_size\":" << q.batch_size << ",\"shard\":"
        << q.shard << ",\"ts_ns\":" << q.ts_ns << "}";
  }
  out << "]}";
}

}  // namespace pcq::obs
