// pcq::obs — periodic telemetry reporter: interval-delta snapshots of the
// MetricsRegistry exported as a JSONL time series.
//
// The registry's counters are monotonic by design; what an operator wants
// on a chart is rates. The reporter owns one background thread that every
// `interval`:
//
//   1. runs the registered samplers — callbacks that refresh gauges whose
//      sources live outside the registry (per-shard queue depths, the TCP
//      server's connection stats, rusage/maxrss, dyn compaction progress);
//   2. snapshots every counter and gauge, differences the counters against
//      the previous tick, and appends ONE JSON object line to the
//      configured file: {"ts_ms":..,"uptime_s":..,"interval_s":..,
//      "counters":{name:{"total":..,"rate":..}},"gauges":{name:..}}.
//
// The samplers are shared with the admin endpoint: run_samplers() is
// thread-safe and the admin handler calls it before building a /metrics
// response, so scrapes see gauges at most one call old instead of one
// reporter interval old.
//
// tick(out) exposes a single snapshot-delta step for tests and one-shot
// tools; start()/stop() manage the background thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace pcq::obs {

struct ReporterOptions {
  std::chrono::milliseconds interval{1000};
  /// JSONL output path; appended to (a serving process restarted onto the
  /// same path extends the series). Empty = sample gauges but write nothing.
  std::string jsonl_path;
};

class Reporter {
 public:
  Reporter() = default;
  ~Reporter() { stop(); }
  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  /// Registers a gauge-refresh callback (see file comment). Callable before
  /// or after start(); callbacks must be thread-safe and cheap.
  void add_sampler(std::function<void()> sampler) PCQ_EXCLUDES(samplers_mu_);

  /// Runs every registered sampler once (the admin scrape path).
  void run_samplers() PCQ_EXCLUDES(samplers_mu_);

  /// Starts the background thread. Returns false (and does not start) when
  /// the JSONL file cannot be opened. No-op when already running.
  bool start(ReporterOptions options);

  /// Stops and joins the background thread, flushing a final line so short
  /// runs still produce a series. Idempotent.
  void stop() PCQ_EXCLUDES(stop_mu_);

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// Completed ticks (lines written when a file is configured).
  [[nodiscard]] std::uint64_t ticks() const {
    return ticks_.load(std::memory_order_relaxed);
  }

  /// One sampler + snapshot + interval-delta step, writing one JSONL line
  /// to `out`. The delta baseline persists across calls (first call reports
  /// rates since construction). Exposed for tests and one-shot tools; do
  /// not mix with a running background thread (they would share the
  /// baseline).
  void tick(std::ostream& out);

 private:
  void loop() PCQ_EXCLUDES(stop_mu_);

  util::Mutex samplers_mu_;
  std::vector<std::function<void()>> samplers_ PCQ_GUARDED_BY(samplers_mu_);

  /// Delta baseline: counter totals at the previous tick.
  std::map<std::string, std::uint64_t> prev_counters_;
  std::chrono::steady_clock::time_point prev_tick_{
      std::chrono::steady_clock::now()};
  std::chrono::steady_clock::time_point started_{
      std::chrono::steady_clock::now()};

  ReporterOptions options_;
  std::ofstream out_;
  std::thread thread_;
  util::Mutex stop_mu_;
  util::CondVar stop_cv_;
  bool stop_requested_ PCQ_GUARDED_BY(stop_mu_) = false;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> ticks_{0};
};

/// Refreshes process-level gauges in the global registry from getrusage:
/// proc.maxrss_kb, proc.user_cpu_ms, proc.sys_cpu_ms (no-op off unix). The
/// standard rusage sampler to hand to Reporter::add_sampler.
void sample_process_gauges();

}  // namespace pcq::obs
