#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/thread_annotations.hpp"

namespace pcq::obs {

namespace detail {

namespace {

bool env_enables_trace() {
  const char* e = std::getenv("PCQ_TRACE");
  if (e == nullptr) return false;
  return std::strcmp(e, "1") == 0 || std::strcmp(e, "on") == 0 ||
         std::strcmp(e, "ON") == 0 || std::strcmp(e, "true") == 0;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

/// All rings ever registered. Rings are never destroyed before process
/// exit — a thread may die but its recorded spans stay collectable.
struct RingRegistry {
  static constexpr std::size_t kMaxRings = 256;

  util::Mutex mu;
  std::vector<std::unique_ptr<TraceRing>> rings PCQ_GUARDED_BY(mu);
  /// Spans from threads that arrived after kMaxRings rings existed.
  std::atomic<std::uint64_t> unregistered_dropped{0};

  static RingRegistry& instance() {
    static RingRegistry* r = new RingRegistry();  // never destroyed: worker
    return *r;  // threads may outlive main()'s statics
  }
};

}  // namespace

std::atomic<bool> g_trace_enabled{env_enables_trace()};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

TraceRing::TraceRing(std::uint32_t tid)
    : slots_(new Slot[kCapacity]), tid_(tid) {}

// pcq:lock-free — per-request hot path; a mutex here would serialize every
// instrumented scope across all shard workers.
void TraceRing::record(const char* name, std::uint64_t start_ns,
                       std::uint64_t end_ns, std::uint64_t arg) {
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  Slot& slot = slots_[h & (kCapacity - 1)];
  // Seqlock write: odd seq marks the slot unreadable while the fields
  // change; the release fence orders the odd mark before the field stores,
  // the release store orders the field stores before the even mark.
  const std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.name.store(name, std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.end_ns.store(end_ns, std::memory_order_relaxed);
  slot.arg.store(arg, std::memory_order_relaxed);
  slot.seq.store(seq + 2, std::memory_order_release);
  head_.store(h + 1, std::memory_order_release);
}

// pcq:seqlock-reader — the lint checks this function re-reads the sequence
// word after the field loads and carries at least one acquire.
void TraceRing::drain(std::vector<CollectedSpan>& out) const {
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  const std::uint64_t n = h < kCapacity ? h : kCapacity;
  for (std::uint64_t i = h - n; i < h; ++i) {
    const Slot& slot = slots_[i & (kCapacity - 1)];
    const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 & 1) continue;  // mid-write, will be accounted as overwritten
    CollectedSpan span;
    span.name = slot.name.load(std::memory_order_relaxed);
    span.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    span.end_ns = slot.end_ns.load(std::memory_order_relaxed);
    span.arg = slot.arg.load(std::memory_order_relaxed);
    span.tid = tid_;
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t s2 = slot.seq.load(std::memory_order_relaxed);
    if (s1 != s2 || span.name == nullptr) continue;  // torn, skip
    out.push_back(span);
  }
}

void TraceRing::reset() {
  head_.store(0, std::memory_order_release);
  for (std::size_t i = 0; i < kCapacity; ++i) {
    slots_[i].seq.store(0, std::memory_order_relaxed);
    slots_[i].name.store(nullptr, std::memory_order_relaxed);
  }
}

TraceRing* ring_for_this_thread() {
  thread_local TraceRing* cached = nullptr;
  thread_local bool rejected = false;
  if (cached != nullptr) return cached;
  if (rejected) {
    RingRegistry::instance().unregistered_dropped.fetch_add(
        1, std::memory_order_relaxed);
    return nullptr;
  }
  RingRegistry& reg = RingRegistry::instance();
  util::MutexLock lock(reg.mu);
  if (reg.rings.size() >= RingRegistry::kMaxRings) {
    rejected = true;
    reg.unregistered_dropped.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  reg.rings.push_back(
      std::make_unique<TraceRing>(static_cast<std::uint32_t>(reg.rings.size())));
  cached = reg.rings.back().get();
  return cached;
}

}  // namespace detail

void set_trace_enabled(bool enabled) {
  detail::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t trace_now_ns() { return detail::now_ns(); }

std::uint64_t trace_time_ns(std::chrono::steady_clock::time_point tp) {
  const auto d = std::chrono::duration_cast<std::chrono::nanoseconds>(
      tp - detail::trace_epoch());
  return d.count() < 0 ? 0 : static_cast<std::uint64_t>(d.count());
}

void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t end_ns, std::uint64_t arg) {
  if (!trace_enabled()) return;
  if (detail::TraceRing* ring = detail::ring_for_this_thread())
    ring->record(name, start_ns, end_ns, arg);
}

std::vector<CollectedSpan> collect_trace() {
  auto& reg = detail::RingRegistry::instance();
  std::vector<CollectedSpan> spans;
  {
    util::MutexLock lock(reg.mu);
    for (const auto& ring : reg.rings) ring->drain(spans);
  }
  // Per-thread lanes in start order; ties broken longer-span-first so an
  // enclosing scope precedes the scopes it contains.
  std::sort(spans.begin(), spans.end(),
            [](const CollectedSpan& a, const CollectedSpan& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.end_ns > b.end_ns;
            });
  return spans;
}

TraceStats trace_stats() {
  auto& reg = detail::RingRegistry::instance();
  TraceStats stats;
  util::MutexLock lock(reg.mu);
  stats.threads = reg.rings.size();
  for (const auto& ring : reg.rings) {
    stats.written += ring->written();
    stats.dropped += ring->wrap_dropped();
  }
  const std::uint64_t unreg =
      reg.unregistered_dropped.load(std::memory_order_relaxed);
  stats.written += unreg;
  stats.dropped += unreg;
  return stats;
}

void reset_trace() {
  auto& reg = detail::RingRegistry::instance();
  util::MutexLock lock(reg.mu);
  for (const auto& ring : reg.rings) ring->reset();
  reg.unregistered_dropped.store(0, std::memory_order_relaxed);
}

namespace {

void write_json_escaped(std::ostream& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\')
      out << '\\' << c;
    else if (static_cast<unsigned char>(c) < 0x20)
      out << ' ';
    else
      out << c;
  }
}

}  // namespace

void write_chrome_trace(std::ostream& out) {
  const std::vector<CollectedSpan> spans = collect_trace();
  out << "{\"traceEvents\":[";
  out << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
         "\"args\":{\"name\":\"pcq\"}}";
  char buf[160];
  for (const CollectedSpan& s : spans) {
    // Chrome trace timestamps/durations are microseconds; fractional
    // values keep the nanosecond resolution.
    std::snprintf(buf, sizeof buf,
                  ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                  "\"dur\":%.3f,\"name\":\"",
                  s.tid, static_cast<double>(s.start_ns) / 1e3,
                  static_cast<double>(s.end_ns - s.start_ns) / 1e3);
    out << buf;
    write_json_escaped(out, s.name);
    std::snprintf(buf, sizeof buf, "\",\"args\":{\"arg\":%llu}}",
                  static_cast<unsigned long long>(s.arg));
    out << buf;
  }
  out << "\n]}\n";
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  write_chrome_trace(out);
  return static_cast<bool>(out);
}

void write_phase_table(std::ostream& out) {
  const std::vector<CollectedSpan> spans = collect_trace();
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
  };
  std::map<std::string, Agg> by_name;
  std::uint64_t lo = ~std::uint64_t{0}, hi = 0;
  for (const CollectedSpan& s : spans) {
    Agg& a = by_name[s.name];
    a.count += 1;
    a.total_ns += s.end_ns - s.start_ns;
    lo = std::min(lo, s.start_ns);
    hi = std::max(hi, s.end_ns);
  }
  if (by_name.empty()) {
    out << "(no spans recorded — is tracing enabled?)\n";
    return;
  }
  // Sort rows by total descending for the at-a-glance hot-phase view.
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  const double wall_ns = static_cast<double>(hi - lo);
  char buf[192];
  std::snprintf(buf, sizeof buf, "%-28s %8s %12s %12s %7s\n", "phase",
                "count", "total_ms", "mean_us", "wall%");
  out << buf;
  for (const auto& [name, a] : rows) {
    std::snprintf(buf, sizeof buf, "%-28s %8llu %12.3f %12.3f %6.1f%%\n",
                  name.c_str(), static_cast<unsigned long long>(a.count),
                  static_cast<double>(a.total_ns) / 1e6,
                  static_cast<double>(a.total_ns) / 1e3 /
                      static_cast<double>(a.count),
                  wall_ns > 0
                      ? 100.0 * static_cast<double>(a.total_ns) / wall_ns
                      : 0.0);
    out << buf;
  }
  const TraceStats stats = trace_stats();
  std::snprintf(buf, sizeof buf,
                "%llu spans on %llu threads (%llu dropped), traced wall "
                "%.3f ms\n",
                static_cast<unsigned long long>(stats.written),
                static_cast<unsigned long long>(stats.threads),
                static_cast<unsigned long long>(stats.dropped),
                wall_ns / 1e6);
  out << buf;
}

}  // namespace pcq::obs
