// pcq::obs — low-overhead span tracing for the build and serve paths.
//
// Design (flight-recorder style, GBBS/ParaGrapher-inspired):
//
//   * Each thread that records owns a fixed-capacity ring buffer of span
//     events. A span is recorded by the RAII `PCQ_TRACE_SCOPE("name")`
//     macro: two steady_clock reads (scope entry/exit) plus a handful of
//     relaxed atomic stores into the thread's own ring. No locks, no
//     allocation, no cross-thread traffic on the hot path — the only
//     synchronisation is a per-slot seqlock so a concurrent collector
//     (pcq_serve's TRACE command drains while shard workers are live) can
//     detect and skip slots that are mid-overwrite.
//   * When the ring wraps, the oldest events are overwritten and counted
//     as dropped — the tracer degrades into a "last N spans per thread"
//     flight recorder instead of growing without bound.
//   * Span names must be string literals (or other pointers with static
//     storage duration): the ring stores the pointer, never the bytes.
//   * The collector drains every ring into a single event list and exports
//     Chrome trace-event JSON ("ph":"X" complete events, microsecond
//     timestamps) loadable in Perfetto / chrome://tracing.
//
// Compile-time switch: building with -DPCQ_TRACE_ENABLED=0 (CMake option
// PCQ_TRACE=OFF) compiles `PCQ_TRACE_SCOPE` to literally nothing — a void
// expression with no clock reads, no TraceScope object, no code. The
// collector API remains linkable so tools need no #ifdefs; it just
// observes empty rings.
//
// Runtime switch: even when compiled in, recording is off until
// `set_trace_enabled(true)` (or environment variable PCQ_TRACE=1). A
// compiled-in but runtime-disabled scope costs one relaxed atomic load
// and a predictable branch.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#ifndef PCQ_TRACE_ENABLED
#define PCQ_TRACE_ENABLED 1
#endif

namespace pcq::obs {

/// True when the tracer was compiled in (PCQ_TRACE=ON builds).
inline constexpr bool kTraceCompiledIn = PCQ_TRACE_ENABLED != 0;

/// One collected span. Times are nanoseconds since the process trace
/// epoch (the first steady_clock read the tracer ever makes).
struct CollectedSpan {
  const char* name = nullptr;  ///< static string, never owned
  std::uint32_t tid = 0;       ///< dense per-ring thread index
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t arg = 0;  ///< free-form payload (batch size, chunk count...)
};

/// Aggregate accounting across all rings — written/collected/dropped must
/// reconcile: written == collectable + dropped (dropped counts ring-wrap
/// overwrites plus events from threads beyond the ring cap).
struct TraceStats {
  std::uint64_t threads = 0;    ///< rings ever registered
  std::uint64_t written = 0;    ///< spans successfully recorded into rings
  std::uint64_t dropped = 0;    ///< overwritten by wrap + unregistered-thread
};

namespace detail {

extern std::atomic<bool> g_trace_enabled;

/// Nanoseconds since the trace epoch (steady_clock based).
std::uint64_t now_ns();

/// Fixed-capacity single-writer ring. The owning thread records; any
/// thread may drain concurrently (seqlock per slot).
class TraceRing {
 public:
  static constexpr std::size_t kCapacity = 1 << 12;  ///< spans per thread

  explicit TraceRing(std::uint32_t tid);

  /// Owner thread only.
  void record(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
              std::uint64_t arg);

  /// Appends every readable span to `out`. Slots being overwritten during
  /// the read are skipped (they are part of the wrap-dropped count by the
  /// time the writer finishes). Safe concurrently with record().
  void drain(std::vector<CollectedSpan>& out) const;

  [[nodiscard]] std::uint64_t written() const {
    return head_.load(std::memory_order_acquire);
  }
  /// Spans lost to ring wrap so far.
  [[nodiscard]] std::uint64_t wrap_dropped() const {
    const std::uint64_t h = written();
    return h > kCapacity ? h - kCapacity : 0;
  }
  [[nodiscard]] std::uint32_t tid() const { return tid_; }

  /// Owner-thread-or-quiescent only: forgets all recorded spans.
  void reset();

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< odd while being written
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> end_ns{0};
    std::atomic<std::uint64_t> arg{0};
  };

  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};  ///< total spans ever recorded
  std::uint32_t tid_;
};

/// The calling thread's ring, registering it on first use. Returns nullptr
/// once the global ring cap is reached (the span is then counted dropped).
TraceRing* ring_for_this_thread();

}  // namespace detail

/// Runtime recording toggle. Initialised from the PCQ_TRACE environment
/// variable ("1"/"on"/"true" enable).
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}
void set_trace_enabled(bool enabled);

/// RAII span: stamps entry on construction, records on destruction.
/// `arg` rides along into the Chrome trace "args" object.
class TraceScope {
 public:
  explicit TraceScope(const char* name, std::uint64_t arg = 0) {
    if (trace_enabled()) {
      name_ = name;
      arg_ = arg;
      start_ns_ = detail::now_ns();
    }
  }
  ~TraceScope() {
    if (name_ == nullptr) return;
    if (detail::TraceRing* ring = detail::ring_for_this_thread())
      ring->record(name_, start_ns_, detail::now_ns(), arg_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t arg_ = 0;
};

/// Records a span with explicit endpoints (for code that cannot use RAII,
/// e.g. "only record the wait if it yielded a batch"). Timestamps come
/// from trace_now_ns(). No-op when recording is disabled.
void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t end_ns, std::uint64_t arg = 0);

/// Current trace clock (ns since epoch) — pairs with record_span.
std::uint64_t trace_now_ns();

/// Converts a steady_clock time_point into trace-clock nanoseconds, so
/// timestamps stamped outside the tracer (svc enqueue times, net receipt)
/// can become span endpoints. Points before the trace epoch clamp to 0.
std::uint64_t trace_time_ns(std::chrono::steady_clock::time_point tp);

/// Drains every ring. Events are sorted by (tid, start, longer-first), so
/// each thread's lane is time-ordered with parents before children.
std::vector<CollectedSpan> collect_trace();

[[nodiscard]] TraceStats trace_stats();

/// Forgets all recorded spans and resets drop accounting. Only meaningful
/// at quiescence (no concurrent recorders) — tests and tools between runs.
void reset_trace();

/// Writes the Chrome trace-event JSON for everything currently recorded.
void write_chrome_trace(std::ostream& out);

/// Convenience: write_chrome_trace to a file. Returns false on I/O error.
bool write_chrome_trace_file(const std::string& path);

/// Human-readable per-phase aggregate of the recorded spans: one row per
/// span name with count, total/mean wall time and share of the traced
/// wall-clock range. The `--stats` table of pcq_cli.
void write_phase_table(std::ostream& out);

/// The OFF-build expansion target: proves by type that a disabled
/// PCQ_TRACE_SCOPE carries no state (see tests/test_obs_trace.cpp).
struct NullTraceScope {};

#define PCQ_OBS_CAT2(a, b) a##b
#define PCQ_OBS_CAT(a, b) PCQ_OBS_CAT2(a, b)

#if PCQ_TRACE_ENABLED
/// PCQ_TRACE_SCOPE("name"[, arg]) — RAII span over the enclosing scope.
#define PCQ_TRACE_SCOPE(...) \
  ::pcq::obs::TraceScope PCQ_OBS_CAT(pcq_trace_scope_, __LINE__) { __VA_ARGS__ }
#else
#define PCQ_TRACE_SCOPE(...) static_cast<void>(0)
#endif

}  // namespace pcq::obs
