// pcq::obs — unified metrics: lock-free counters, gauges and log-linear
// histograms, individually embeddable (pcq::svc's per-shard blocks) or
// named through the process-wide MetricsRegistry.
//
// Every primitive is a relaxed std::atomic, so recording from any number
// of threads is wait-free and contention-free at the cache-line level as
// long as writers keep to their own instances (the shard pattern); even
// shared instances only contend on the fetch_add itself. Snapshots are
// racy-by-design: all counters are monotonic, so a concurrent snapshot is
// a consistent-enough point-in-time view.
#pragma once

#include <atomic>
#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace pcq::obs {

/// Log-linear histogram of non-negative 64-bit samples (microseconds for
/// latency, request counts for batch sizes). Thread-safe for concurrent
/// record(); see file comment for the snapshot consistency model.
///
/// Quantile error bound: values < kSub land in exact width-1 buckets, so
/// their quantiles are exact. Above that, a bucket spans [lo, lo * (1 +
/// 2^-kSubBits)), and quantile() reports the bucket's geometric midpoint
/// sqrt(lo * hi) — the multiplicative-error-minimising point estimate —
/// so the relative error is at most sqrt(1 + 2^-kSubBits) - 1 ≈ 11.8%
/// for kSubBits = 2 (and the estimate never leaves the winning bucket,
/// unlike boundary interpolation, which could report the upper bound hi,
/// a value no recorded sample may have reached).
class LogHistogram {
 public:
  static constexpr int kSubBits = 2;  ///< 4 linear sub-buckets per octave
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kOctaves = 40;  ///< covers [0, 2^40) — 12 days in us
  static constexpr int kBuckets = kOctaves * kSub;

  void record(std::uint64_t value) {
    // bucket_index is always in [0, kBuckets); the cast keeps this header
    // clean under the packed-format targets' -Wsign-conversion.
    buckets_[static_cast<std::size_t>(bucket_index(value))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    // Exact min/max anchor the tails the bucketed quantiles only estimate.
    // After warmup the CAS loops almost never run: the loads are relaxed
    // and the compare fails the loop guard for any in-range sample.
    std::uint64_t seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed))
      ;
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed))
      ;
  }

  struct Snapshot {
    std::vector<std::uint64_t> buckets;  ///< kBuckets counts
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /// Raw extremes (min_seen is the ~0 sentinel while empty); read them
    /// through min()/max(), which normalise the empty case to 0.
    std::uint64_t min_seen = ~std::uint64_t{0};
    std::uint64_t max_seen = 0;

    /// Quantile estimate, q in [0, 1]; 0 when empty. Exact for values
    /// below kSub, geometric midpoint of the winning bucket otherwise
    /// (see the class comment for the ~12% error bound).
    [[nodiscard]] double quantile(double q) const;
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
    /// Exact smallest/largest recorded sample; 0 when empty.
    [[nodiscard]] std::uint64_t min() const {
      return count == 0 ? 0 : min_seen;
    }
    [[nodiscard]] std::uint64_t max() const { return max_seen; }
  };

  [[nodiscard]] Snapshot snapshot() const;

  /// Merges this histogram's counts into `into` (shard aggregation).
  void accumulate(Snapshot& into) const;

  /// Bucket index for a value (exposed for tests).
  static int bucket_index(std::uint64_t value);

  /// Inclusive lower bound of bucket i (exposed for tests).
  static std::uint64_t bucket_floor(int i);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (queue depths, window sizes...).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Process-wide registry of named metrics. Lookup takes a mutex (cache the
/// returned reference at the call site — references are stable for the
/// registry's lifetime); recording through the returned reference is
/// lock-free. Naming convention: dotted lowercase paths, `layer.noun` or
/// `layer.noun_unit`, e.g. "csr.builds", "svc.queue_wait_us".
class MetricsRegistry {
 public:
  /// The process-wide instance used by the library's instrumentation.
  static MetricsRegistry& global();

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. The same name always yields the same object.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LogHistogram& histogram(std::string_view name);

  /// Snapshot as "name value" lines (histograms expand to count/mean/
  /// p50/p95/p99), names sorted.
  void write_text(std::ostream& out) const;

  /// Snapshot as a single JSON object keyed by metric name.
  void write_json(std::ostream& out) const;

  /// Visits every registered metric (counters, then gauges, then
  /// histograms — each group in name order) under the registry mutex.
  /// Histograms are handed over as point-in-time snapshots. The visitors
  /// must not call back into the registry (the lock is held throughout);
  /// they power the Prometheus exposition writer and the reporter's
  /// interval-delta snapshots.
  void for_each(
      const std::function<void(const std::string&, std::uint64_t)>& on_counter,
      const std::function<void(const std::string&, std::int64_t)>& on_gauge,
      const std::function<void(const std::string&,
                               const LogHistogram::Snapshot&)>& on_histogram)
      const;

  /// Zeroes counters/gauges and drops histogram contents — quiescent use
  /// (tests, tools between runs). Registered names and references survive.
  void reset();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pcq::obs
