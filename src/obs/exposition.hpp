// pcq::obs — Prometheus-style text exposition of the MetricsRegistry.
//
// The registry's naming convention is dotted lowercase paths
// ("svc.flush.size"); the Prometheus exposition grammar only admits
// [a-zA-Z_:][a-zA-Z0-9_:]* for metric names, so every name is sanitised on
// the way out (dots and other invalid characters become underscores, a
// leading digit gains an underscore prefix). Sanitisation is deterministic
// and total — any registry name maps to exactly one valid exposition name —
// and a unit test lints every name the library ever registers against the
// grammar (tests/test_obs_exposition.cpp).
//
// Exposition mapping:
//   Counter    -> `# TYPE name counter`  + one sample line
//   Gauge      -> `# TYPE name gauge`    + one sample line
//   Histogram  -> `# TYPE name summary`  + quantile{0.5,0.95,0.99} samples,
//                 name_sum / name_count, plus name_min / name_max gauges
//                 (exact tail anchors the bucketed quantiles lack).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

namespace pcq::obs {

class MetricsRegistry;

/// True when `name` matches the Prometheus metric-name grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]*.
[[nodiscard]] bool is_valid_metric_name(std::string_view name);

/// Maps an arbitrary registry name onto the exposition grammar: dots and
/// every other invalid character become '_', and a name whose first
/// character is a digit (or that is empty) gains a leading '_'. Idempotent;
/// the result always satisfies is_valid_metric_name.
[[nodiscard]] std::string sanitize_metric_name(std::string_view name);

/// Writes the whole registry in the Prometheus text exposition format
/// (version 0.0.4): `# TYPE` comment then sample lines per metric, names
/// sanitised as above. Safe concurrently with recording (same racy-but-
/// monotonic snapshot model as write_text/write_json).
void write_prometheus(const MetricsRegistry& registry, std::ostream& out);

}  // namespace pcq::obs
