// ContactIndex — interval ("contact") representation of a temporal graph.
//
// Caro et al. (§II, ref [5]) model a temporal graph as a set of contacts
// (u, v, t_begin, t_end) and compress the resulting 4D binary matrix with
// a ck-d-tree. This module implements the contact model with flat packed
// storage instead of the tree: contacts are derived from the event list
// (maximal activity intervals per edge), sorted by (u, v, t_begin), and
// stored as four fixed-width packed columns with a per-vertex offset
// directory.
//
// Queries:
//   edge_active(u, v, t)  — binary search u's slice for pair v, then its
//                           intervals: O(log deg_c(u)).
//   neighbors_at(u, t)    — scan u's contacts filtering t: O(deg_c(u)).
//   contacts(u, v)        — the full lifetime of one relationship.
//
// For histories where edges persist (few long intervals instead of many
// events), this is the most compact of the temporal structures — the
// comparison bench_tcsr makes.
#pragma once

#include <cstdint>
#include <vector>

#include "bits/packed_array.hpp"
#include "graph/edge_list.hpp"
#include "tcsr/tcsr.hpp"

namespace pcq::tcsr {

/// One contact: edge (u, v) active during [begin, end], inclusive frames.
struct Contact {
  graph::VertexId u = 0;
  graph::VertexId v = 0;
  graph::TimeFrame begin = 0;
  graph::TimeFrame end = 0;
  friend constexpr bool operator==(const Contact&, const Contact&) = default;
};

class ContactIndex {
 public:
  ContactIndex() = default;

  /// Builds from a (t, u, v)-sorted event list: events are converted to
  /// maximal activity intervals (open intervals close at the last frame).
  static ContactIndex build(const graph::TemporalEdgeList& events,
                            graph::VertexId num_nodes,
                            graph::TimeFrame num_frames, int num_threads);

  [[nodiscard]] graph::VertexId num_nodes() const {
    return static_cast<graph::VertexId>(
        offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  [[nodiscard]] std::size_t num_contacts() const { return targets_.size(); }

  [[nodiscard]] bool edge_active(graph::VertexId u, graph::VertexId v,
                                 graph::TimeFrame t) const;

  /// Active neighbours of u at frame t, ascending, deduplicated.
  [[nodiscard]] std::vector<graph::VertexId> neighbors_at(
      graph::VertexId u, graph::TimeFrame t) const;

  /// All contacts of the pair (u, v), chronological.
  [[nodiscard]] std::vector<ActivityInterval> contacts(
      graph::VertexId u, graph::VertexId v) const;

  /// Contacts overlapping the window [t_begin, t_end] from any source —
  /// the "slice" query of the contact model. O(total contacts).
  [[nodiscard]] std::vector<Contact> contacts_in_window(
      graph::TimeFrame t_begin, graph::TimeFrame t_end) const;

  [[nodiscard]] std::size_t size_bytes() const;

 private:
  std::vector<std::uint64_t> offsets_;   ///< per-source contact slice bounds
  pcq::bits::FixedWidthArray targets_;   ///< contact target v
  pcq::bits::FixedWidthArray begins_;    ///< interval begin frames
  pcq::bits::FixedWidthArray ends_;      ///< interval end frames
};

}  // namespace pcq::tcsr
