#include "tcsr/edge_set.hpp"

#include "util/check.hpp"

namespace pcq::tcsr {

using graph::Edge;

SortedEdgeSet SortedEdgeSet::from_sorted(std::vector<Edge> edges) {
  PCQ_DCHECK(std::is_sorted(edges.begin(), edges.end()));
  PCQ_DCHECK(std::adjacent_find(edges.begin(), edges.end()) == edges.end());
  SortedEdgeSet set;
  set.edges_ = std::move(edges);
  return set;
}

SortedEdgeSet SortedEdgeSet::from_multiset(std::vector<Edge> edges) {
  std::sort(edges.begin(), edges.end());
  std::vector<Edge> kept;
  kept.reserve(edges.size());
  std::size_t i = 0;
  while (i < edges.size()) {
    std::size_t j = i;
    while (j < edges.size() && edges[j] == edges[i]) ++j;
    if ((j - i) % 2 == 1) kept.push_back(edges[i]);  // odd count survives
    i = j;
  }
  SortedEdgeSet set;
  set.edges_ = std::move(kept);
  return set;
}

SortedEdgeSet symmetric_difference(const SortedEdgeSet& a, const SortedEdgeSet& b) {
  const auto ea = a.edges();
  const auto eb = b.edges();
  std::vector<Edge> out;
  out.reserve(ea.size() + eb.size());
  std::size_t i = 0, j = 0;
  while (i < ea.size() && j < eb.size()) {
    if (ea[i] < eb[j]) {
      out.push_back(ea[i++]);
    } else if (eb[j] < ea[i]) {
      out.push_back(eb[j++]);
    } else {
      ++i;  // present in both: cancels
      ++j;
    }
  }
  out.insert(out.end(), ea.begin() + static_cast<std::ptrdiff_t>(i), ea.end());
  out.insert(out.end(), eb.begin() + static_cast<std::ptrdiff_t>(j), eb.end());
  return SortedEdgeSet::from_sorted(std::move(out));
}

}  // namespace pcq::tcsr
