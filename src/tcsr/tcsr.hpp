// Differential time-evolving CSR (TCSR) — Section IV / Algorithm 5.
//
// Storage: one bit-packed CSR per time-frame holding that frame's *state
// changes* (the differential form — frame 0's deltas are the initial
// graph). An edge is active at frame t iff it appears in an odd number of
// delta frames 0..t (§IV parity rule).
//
// Reconstruction: the snapshot at frame t is the prefix-XOR of the deltas,
// computed in parallel with the paper's chunked prefix-sum schedule
// (Algorithm 1) instantiated over the symmetric-difference monoid
// (edge_set.hpp) — "Perform differential CSR for every time-frame using
// the prefix sum algorithm."
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "csr/bitpacked_csr.hpp"
#include "csr/csr_graph.hpp"
#include "graph/edge_list.hpp"
#include "tcsr/edge_set.hpp"

namespace pcq::tcsr {

/// Per-phase wall times of one TCSR construction (Algorithm 5 steps).
struct TcsrBuildTimings {
  double frame_split = 0;   ///< locate frame slices (Alg. 2/3 on time column)
  double frame_build = 0;   ///< per-frame CSR construction + parity filter
  double pack = 0;          ///< Algorithm 4 bit packing of every frame

  [[nodiscard]] double total() const { return frame_split + frame_build + pack; }
};

/// A temporal point query: is edge (u, v) active at frame t?
struct TemporalEdgeQuery {
  graph::VertexId u = 0;
  graph::VertexId v = 0;
  graph::TimeFrame t = 0;
};

/// A temporal neighbourhood query: who are u's neighbours at frame t?
struct TemporalNodeQuery {
  graph::VertexId u = 0;
  graph::TimeFrame t = 0;
};

/// A maximal interval [begin, end] (inclusive frames) during which an edge
/// was continuously active — the "contact" of Caro et al.'s ck-d-trees
/// (§II) restricted to one edge.
struct ActivityInterval {
  graph::TimeFrame begin = 0;
  graph::TimeFrame end = 0;
  friend constexpr bool operator==(const ActivityInterval&,
                                   const ActivityInterval&) = default;
};

class DifferentialTcsr {
 public:
  DifferentialTcsr() = default;

  /// Builds from a (t, u, v)-sorted event list with `num_threads`
  /// processors (Algorithm 5). num_nodes/num_frames == 0 means derive from
  /// the input.
  static DifferentialTcsr build(const graph::TemporalEdgeList& events,
                                graph::VertexId num_nodes,
                                graph::TimeFrame num_frames, int num_threads,
                                TcsrBuildTimings* timings = nullptr);

  /// Reassembles from already-built per-frame deltas (deserialization).
  static DifferentialTcsr from_parts(graph::VertexId num_nodes,
                                     std::vector<csr::BitPackedCsr> deltas) {
    DifferentialTcsr tcsr;
    tcsr.num_nodes_ = num_nodes;
    tcsr.deltas_ = std::move(deltas);
    return tcsr;
  }

  [[nodiscard]] graph::VertexId num_nodes() const { return num_nodes_; }
  [[nodiscard]] graph::TimeFrame num_frames() const {
    return static_cast<graph::TimeFrame>(deltas_.size());
  }

  /// Total state-change edges stored across all frames.
  [[nodiscard]] std::size_t num_delta_edges() const;

  /// The bit-packed delta CSR of frame t.
  [[nodiscard]] const csr::BitPackedCsr& delta(graph::TimeFrame t) const {
    PCQ_DCHECK(t < deltas_.size());
    return deltas_[t];
  }

  /// Payload footprint across all frames.
  [[nodiscard]] std::size_t size_bytes() const;

  // --- temporal queries (Section V algorithms lifted to frames) -----------

  /// Parity of (u, v) occurrences in delta frames 0..t — active iff odd.
  /// O(t · log degree) packed binary searches.
  [[nodiscard]] bool edge_active(graph::VertexId u, graph::VertexId v,
                                 graph::TimeFrame t) const;

  /// Active neighbours of u at frame t: XOR-accumulates u's delta rows.
  [[nodiscard]] std::vector<graph::VertexId> neighbors_at(
      graph::VertexId u, graph::TimeFrame t) const;

  /// Batch form of edge_active, parallel over queries (Algorithm 7/9
  /// applied to the temporal structure).
  [[nodiscard]] std::vector<std::uint8_t> batch_edge_active(
      std::span<const TemporalEdgeQuery> queries, int num_threads) const;

  /// Batch form of neighbors_at, parallel over queries (the temporal
  /// Algorithm 6).
  [[nodiscard]] std::vector<std::vector<graph::VertexId>> batch_neighbors_at(
      std::span<const TemporalNodeQuery> queries, int num_threads) const;

  /// Was (u, v) active at ANY frame in [t_begin, t_end]? One parity pass.
  [[nodiscard]] bool edge_active_in_window(graph::VertexId u,
                                           graph::VertexId v,
                                           graph::TimeFrame t_begin,
                                           graph::TimeFrame t_end) const;

  /// All maximal activity intervals of (u, v) over the whole history,
  /// in chronological order.
  [[nodiscard]] std::vector<ActivityInterval> activity_intervals(
      graph::VertexId u, graph::VertexId v) const;

  /// Full snapshot at frame t via the parallel prefix-XOR over frames
  /// 0..t (chunked Algorithm 1 schedule, symmetric-difference monoid).
  [[nodiscard]] csr::CsrGraph snapshot_at(graph::TimeFrame t,
                                          int num_threads) const;

  /// Snapshots at *every* frame 0..num_frames-1 in one parallel scan —
  /// the workload Figure 5 illustrates.
  [[nodiscard]] std::vector<SortedEdgeSet> all_snapshots(int num_threads) const;

 private:
  graph::VertexId num_nodes_ = 0;
  std::vector<csr::BitPackedCsr> deltas_;
};

}  // namespace pcq::tcsr
