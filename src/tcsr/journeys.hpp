// Journeys over time-evolving graphs.
//
// The related work (§II, Bui-Xuan/Ferreira/Jarry [22]) computes shortest,
// fastest and *foremost* journeys in dynamic networks. This module
// implements foremost (earliest-arrival) reachability directly on the
// differential TCSR: frames are replayed in order, the active snapshot is
// maintained incrementally by XOR-ing each frame's delta rows, and within
// a frame the reached set closes transitively over the currently-active
// edges (the non-strict journey model: traversal within a frame is
// instantaneous, waiting at nodes is free).
#pragma once

#include <cstdint>
#include <vector>

#include "tcsr/tcsr.hpp"

namespace pcq::tcsr {

/// Arrival label for nodes not reachable within the history.
inline constexpr graph::TimeFrame kNeverReached = ~graph::TimeFrame{0};

/// Earliest frame (>= start_frame) at which each node is reachable from
/// `source`. result[source] == start_frame. Parallelises the per-frame
/// delta application; the per-frame closure is a BFS.
std::vector<graph::TimeFrame> foremost_arrival(const DifferentialTcsr& tcsr,
                                               graph::VertexId source,
                                               graph::TimeFrame start_frame,
                                               int num_threads);

/// Nodes reachable from `source` within the window [start_frame,
/// end_frame] (inclusive), i.e. arrival <= end_frame.
std::vector<graph::VertexId> reachable_in_window(const DifferentialTcsr& tcsr,
                                                 graph::VertexId source,
                                                 graph::TimeFrame start_frame,
                                                 graph::TimeFrame end_frame,
                                                 int num_threads);

}  // namespace pcq::tcsr
