// EdgeLog — the gap-encoded interval-adjacency baseline of §II.
//
// "In [22], the authors present a data structure of adjacency lists where
//  each neighbour has a sublist indicating the time intervals when the arc
//  is active, to improve query times. EdgeLog [21] compresses this idea
//  using gap encoding."
//
// Layout per source vertex: a gap-encoded ascending neighbour list, and
// per neighbour a gap-encoded interval sublist (begin, length pairs,
// deltas between consecutive intervals). Queries decode one vertex's lists
// front to back — cheaper than EveLog's full event replay (intervals
// aggregate many events) but without ContactIndex's packed random access;
// the three sit on distinct points of the space/time curve that
// bench_tcsr measures.
#pragma once

#include <cstdint>
#include <vector>

#include "bits/bitvector.hpp"
#include "graph/edge_list.hpp"
#include "tcsr/tcsr.hpp"

namespace pcq::tcsr {

class EdgeLog {
 public:
  EdgeLog() = default;

  /// Builds from a (t, u, v)-sorted event list (open intervals close at
  /// frame num_frames - 1).
  static EdgeLog build(const graph::TemporalEdgeList& events,
                       graph::VertexId num_nodes, graph::TimeFrame num_frames,
                       int num_threads);

  [[nodiscard]] graph::VertexId num_nodes() const {
    return static_cast<graph::VertexId>(logs_.size());
  }

  [[nodiscard]] bool edge_active(graph::VertexId u, graph::VertexId v,
                                 graph::TimeFrame t) const;

  [[nodiscard]] std::vector<graph::VertexId> neighbors_at(
      graph::VertexId u, graph::TimeFrame t) const;

  /// All intervals of (u, v), chronological.
  [[nodiscard]] std::vector<ActivityInterval> intervals(
      graph::VertexId u, graph::VertexId v) const;

  [[nodiscard]] std::size_t size_bytes() const;

 private:
  /// One vertex's compressed log. The stream holds, gamma-coded:
  ///   #neighbours + 1,
  ///   then per neighbour: neighbour-gap + 1, #intervals,
  ///     then per interval: begin-gap + 1, length (frames, >= 1),
  /// with neighbour gaps relative to the previous neighbour and interval
  /// begin-gaps relative to the previous interval's end.
  struct VertexLog {
    pcq::bits::BitVector stream;
  };

  std::vector<VertexLog> logs_;
};

}  // namespace pcq::tcsr
