#include "tcsr/frame_builder.hpp"

#include <algorithm>

#include "csr/builder.hpp"
#include "csr/degree.hpp"
#include "par/parallel_for.hpp"
#include "par/prefix_sum.hpp"
#include "util/check.hpp"

namespace pcq::tcsr {

using graph::TemporalEdge;
using graph::TemporalEdgeList;
using graph::TimeFrame;
using graph::VertexId;

std::vector<std::uint64_t> frame_offsets(const TemporalEdgeList& events,
                                         TimeFrame num_frames,
                                         int num_threads) {
  PCQ_DCHECK(events.is_sorted());
  // The time column is a sorted array of frame ids — exactly the input
  // shape of the degree computation, so Algorithms 2/3 count events per
  // frame and Algorithm 1 turns counts into slice offsets.
  std::vector<VertexId> times(events.size());
  const auto evs = events.edges();
  pcq::par::parallel_for(evs.size(), num_threads,
                         [&](std::size_t i) { times[i] = evs[i].t; });
  std::vector<std::uint32_t> counts =
      csr::parallel_degree_from_sorted(times, num_frames, num_threads);
  return pcq::par::offsets_from_degrees(counts, num_threads);
}

std::vector<csr::CsrGraph> build_frame_csrs(
    const TemporalEdgeList& events, VertexId num_nodes, TimeFrame num_frames,
    int num_threads, const std::vector<std::uint64_t>* precomputed_offsets) {
  if (num_nodes == 0) num_nodes = events.num_nodes();
  if (num_frames == 0) num_frames = events.num_frames();
  const std::vector<std::uint64_t> offsets =
      precomputed_offsets ? *precomputed_offsets
                          : frame_offsets(events, num_frames, num_threads);
  const auto evs = events.edges();

  std::vector<csr::CsrGraph> frames(num_frames);
  // Frame-level parallelism: each frame's slice is independent. Within a
  // slice events are already (u, v)-sorted (§IV input order), so the
  // parity cancellation is a run-length filter and the CSR build is the
  // sequential reference builder on a small sorted list.
  pcq::par::parallel_for(num_frames, num_threads, [&](std::size_t t) {
    std::vector<graph::Edge> kept;
    const std::size_t lo = offsets[t], hi = offsets[t + 1];
    kept.reserve(hi - lo);
    std::size_t i = lo;
    while (i < hi) {
      std::size_t j = i;
      while (j < hi && evs[j].u == evs[i].u && evs[j].v == evs[i].v) ++j;
      if ((j - i) % 2 == 1) {
        PCQ_DCHECK_MSG(evs[i].u < num_nodes && evs[i].v < num_nodes,
                       "temporal event outside declared vertex range");
        kept.push_back({evs[i].u, evs[i].v});
      }
      i = j;
    }
    frames[t] = csr::build_csr_sequential(graph::EdgeList(std::move(kept)),
                                          num_nodes);
  });
  return frames;
}

}  // namespace pcq::tcsr
