// Baseline time-evolving representations, for the S3 size/query
// comparison (related work, §II).
//
//   * SnapshotSequence — one full bit-packed CSR per frame ("a sequence of
//     static graphs"). Fast queries, heavy storage; this is exactly the
//     space blow-up §IV motivates the differential form with ("storing the
//     CSR this way is space-consuming, as not all nodes have changed state
//     from one time-frame to another").
//   * EveLog — per-vertex log of (time-frame, neighbour) toggle events,
//     time-frames gap-encoded, neighbour ids fixed-width packed (Caro et
//     al.'s "log of events" strategy). Queries replay the log
//     sequentially, which is why the paper calls this class slow.
#pragma once

#include <cstdint>
#include <vector>

#include "bits/codecs.hpp"
#include "bits/packed_array.hpp"
#include "csr/bitpacked_csr.hpp"
#include "graph/edge_list.hpp"

namespace pcq::tcsr {

class SnapshotSequence {
 public:
  SnapshotSequence() = default;

  /// Materialises the snapshot graph at every frame and bit-packs each.
  static SnapshotSequence build(const graph::TemporalEdgeList& events,
                                graph::VertexId num_nodes,
                                graph::TimeFrame num_frames, int num_threads);

  [[nodiscard]] graph::TimeFrame num_frames() const {
    return static_cast<graph::TimeFrame>(snapshots_.size());
  }
  [[nodiscard]] const csr::BitPackedCsr& snapshot(graph::TimeFrame t) const {
    return snapshots_[t];
  }

  [[nodiscard]] bool edge_active(graph::VertexId u, graph::VertexId v,
                                 graph::TimeFrame t) const {
    return snapshots_[t].has_edge(u, v);
  }
  [[nodiscard]] std::vector<graph::VertexId> neighbors_at(
      graph::VertexId u, graph::TimeFrame t) const {
    return snapshots_[t].neighbors(u);
  }

  [[nodiscard]] std::size_t size_bytes() const;

 private:
  std::vector<csr::BitPackedCsr> snapshots_;
};

class EveLog {
 public:
  EveLog() = default;

  static EveLog build(const graph::TemporalEdgeList& events,
                      graph::VertexId num_nodes, int num_threads);

  /// Sequential log replay: parity of (v, <= t) events in u's log.
  [[nodiscard]] bool edge_active(graph::VertexId u, graph::VertexId v,
                                 graph::TimeFrame t) const;

  /// Sequential log replay accumulating the active neighbour set.
  [[nodiscard]] std::vector<graph::VertexId> neighbors_at(
      graph::VertexId u, graph::TimeFrame t) const;

  [[nodiscard]] std::size_t size_bytes() const;

 private:
  struct VertexLog {
    pcq::bits::GapEncodedSequence times;     // non-decreasing frame ids
    pcq::bits::FixedWidthArray neighbors;    // parallel array of targets
  };
  std::vector<VertexLog> logs_;
};

}  // namespace pcq::tcsr
