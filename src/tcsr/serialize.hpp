// On-disk persistence of the differential TCSR: one header plus each
// frame's bit-packed delta arrays, so a compressed history is built once
// and queried by later runs.
#pragma once

#include <cstdio>
#include <string>

#include "tcsr/tcsr.hpp"

namespace pcq::tcsr {

/// Writes `tcsr` to `path` (format v2: canary-carrying header + one
/// bit-packed delta pair per frame). Throws pcq::IoError on I/O failure.
void save_tcsr(const DifferentialTcsr& tcsr, const std::string& path);

/// Reads a history previously written by save_tcsr. Throws pcq::IoError on
/// open/read failure, bad magic (including v1 files), a wrong endianness
/// canary, inconsistent frame geometry, or a truncated payload — never
/// returning a partially-constructed structure.
DifferentialTcsr load_tcsr(const std::string& path);

/// Same parser over an already-open stream (the caller keeps ownership and
/// closes it). `name` labels IoError diagnostics. Used by the fuzz
/// harnesses to feed arbitrary bytes through the loader via fmemopen.
DifferentialTcsr load_tcsr_stream(std::FILE* stream, const std::string& name);

}  // namespace pcq::tcsr
