// On-disk persistence of the differential TCSR: one header plus each
// frame's bit-packed delta arrays, so a compressed history is built once
// and queried by later runs.
#pragma once

#include <string>

#include "tcsr/tcsr.hpp"

namespace pcq::tcsr {

void save_tcsr(const DifferentialTcsr& tcsr, const std::string& path);

DifferentialTcsr load_tcsr(const std::string& path);

}  // namespace pcq::tcsr
