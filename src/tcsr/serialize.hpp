// On-disk persistence of the differential TCSR: one header plus each
// frame's bit-packed delta arrays, so a compressed history is built once
// and queried by later runs.
//
// Two layouts share the header/canary scheme:
//   * v2 — headers and payloads packed back to back (legacy; read-only).
//   * v3 — every frame's packed payload (delta iA, delta jA) starts on a
//     64-byte boundary relative to the file start. Written by save_tcsr;
//     the alignment makes the file directly memory-mappable so every
//     frame's arrays can be queried in place with zero payload copies
//     (map_tcsr below).
#pragma once

#include <cstddef>
#include <cstdio>
#include <span>
#include <string>

#include "io/mapped_file.hpp"
#include "tcsr/tcsr.hpp"

namespace pcq::tcsr {

/// Writes `tcsr` to `path` (format v3: canary-carrying header + one
/// 64-byte-aligned bit-packed delta pair per frame). Throws pcq::IoError
/// on I/O failure.
void save_tcsr(const DifferentialTcsr& tcsr, const std::string& path);

/// Reads a history previously written by save_tcsr (v3) or by older
/// releases (v2). Throws pcq::IoError on open/read failure, bad magic
/// (including v1 files), a wrong endianness canary, inconsistent frame
/// geometry, or a truncated payload — never returning a
/// partially-constructed structure.
DifferentialTcsr load_tcsr(const std::string& path);

/// Same parser over an already-open stream (the caller keeps ownership and
/// closes it). `name` labels IoError diagnostics. Used by the fuzz
/// harnesses to feed arbitrary bytes through the loader via fmemopen.
DifferentialTcsr load_tcsr_stream(std::FILE* stream, const std::string& name);

/// A differential TCSR whose per-frame packed arrays borrow from a mapped
/// file; the mapping must outlive the structure. `mapped` is false when
/// map_tcsr fell back to the buffered loader (v2 file, or no mmap on this
/// host), in which case `file` is empty and `tcsr` owns its storage.
struct MappedTcsr {
  pcq::io::MappedFile file;
  DifferentialTcsr tcsr;
  bool mapped = false;
};

/// Zero-copy load: maps `path` and constructs every frame's delta CSR
/// directly over the mapped payload bytes — O(frames), independent of the
/// payload size. Falls back to the buffered loader for v2 files and hosts
/// without mmap. Throws pcq::IoError exactly like load_tcsr. The result is
/// untrusted until pcq::check::validate_tcsr passes on it.
MappedTcsr map_tcsr(const std::string& path);

/// The mapped-view parser over an in-memory v3 image: `bytes.data()` must
/// be 8-byte aligned and outlive the returned structure, which borrows
/// every frame payload in place. Used by map_tcsr and the fuzz harnesses.
/// Throws pcq::IoError on any malformed image, including v1/v2 magic.
DifferentialTcsr map_tcsr_bytes(std::span<const std::byte> bytes,
                                const std::string& name);

}  // namespace pcq::tcsr
