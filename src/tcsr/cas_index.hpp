// CAS-style temporal index (§II, Caro, Rodríguez & Brisaboa).
//
// The related work's answer to EveLog's linear log replay: order the
// global event sequence by vertex (CAS = "by source"), keep each vertex's
// event times in a searchable array, and put a Wavelet Tree over the
// target-id sequence. Then
//
//   edge_active(u, v, t):  binary-search u's time slice for the first
//                          event past t, then count v's occurrences in the
//                          surviving prefix with one wavelet rank —
//                          O(log deg + log n), parity decides activity.
//   neighbors_at(u, t):    enumerate distinct targets with odd counts in
//                          that prefix, output-sensitive O(k log n).
//
// This gives the differential TCSR a related-work comparator with genuine
// logarithmic query bounds (EveLog replays linearly; the snapshot
// sequence pays frame-count storage).
#pragma once

#include <cstdint>
#include <vector>

#include "bits/packed_array.hpp"
#include "bits/wavelet_tree.hpp"
#include "graph/edge_list.hpp"

namespace pcq::tcsr {

class CasIndex {
 public:
  CasIndex() = default;

  /// Builds from any temporal edge list (re-sorted internally by
  /// (u, t, v) — the CAS ordering).
  static CasIndex build(const graph::TemporalEdgeList& events,
                        graph::VertexId num_nodes, int num_threads);

  [[nodiscard]] graph::VertexId num_nodes() const {
    return static_cast<graph::VertexId>(offsets_.empty() ? 0
                                                         : offsets_.size() - 1);
  }
  [[nodiscard]] std::size_t num_events() const { return targets_.size(); }

  /// Parity of (u, v) events with time <= t.
  [[nodiscard]] bool edge_active(graph::VertexId u, graph::VertexId v,
                                 graph::TimeFrame t) const;

  /// Active neighbours of u at frame t, ascending.
  [[nodiscard]] std::vector<graph::VertexId> neighbors_at(
      graph::VertexId u, graph::TimeFrame t) const;

  [[nodiscard]] std::size_t size_bytes() const;

 private:
  /// Index one past the last event of u with time <= t.
  [[nodiscard]] std::size_t time_boundary(graph::VertexId u,
                                          graph::TimeFrame t) const;

  std::vector<std::uint64_t> offsets_;     ///< per-vertex event slice bounds
  pcq::bits::FixedWidthArray times_;       ///< event times, slice-sorted
  pcq::bits::WaveletTree targets_;         ///< event targets, CAS order
};

}  // namespace pcq::tcsr
