#include "tcsr/journeys.hpp"

#include <algorithm>

#include "par/parallel_for.hpp"
#include "util/check.hpp"

namespace pcq::tcsr {

using graph::TimeFrame;
using graph::VertexId;

std::vector<TimeFrame> foremost_arrival(const DifferentialTcsr& tcsr,
                                        VertexId source,
                                        TimeFrame start_frame,
                                        int num_threads) {
  const VertexId n = tcsr.num_nodes();
  const TimeFrame frames = tcsr.num_frames();
  PCQ_CHECK(source < n);
  std::vector<TimeFrame> arrival(n, kNeverReached);

  // Active snapshot maintained incrementally: adjacency[u] is u's sorted
  // active row. XOR-merging a delta row toggles membership.
  std::vector<std::vector<VertexId>> adjacency(n);
  std::vector<VertexId> reached;  // BFS work queue over all frames

  for (TimeFrame t = 0; t < frames; ++t) {
    // Apply frame t's delta (parallel over nodes with a non-empty row).
    const csr::BitPackedCsr& delta = tcsr.delta(t);
    pcq::par::parallel_for(n, num_threads, [&](std::size_t ui) {
      const auto u = static_cast<VertexId>(ui);
      // Stream the packed delta row through the word-wise cursor; only the
      // merged accumulator is materialised.
      pcq::bits::RowCursor row = delta.row_cursor(u);
      if (row.done()) return;
      auto& active = adjacency[u];
      std::vector<VertexId> merged;
      merged.reserve(active.size() + row.remaining());
      std::size_t i = 0;
      auto r = static_cast<VertexId>(row.next());
      bool row_live = true;
      while (i < active.size() && row_live) {
        if (active[i] < r) {
          merged.push_back(active[i++]);
        } else {
          if (r < active[i]) {
            merged.push_back(r);
          } else {
            ++i;  // toggle off
          }
          if (row.done())
            row_live = false;
          else
            r = static_cast<VertexId>(row.next());
        }
      }
      merged.insert(merged.end(),
                    active.begin() + static_cast<std::ptrdiff_t>(i),
                    active.end());
      if (row_live) {
        merged.push_back(r);
        while (!row.done()) merged.push_back(static_cast<VertexId>(row.next()));
      }
      active.swap(merged);
    });

    if (t < start_frame) continue;
    if (t == start_frame && arrival[source] == kNeverReached) {
      arrival[source] = start_frame;
      reached.push_back(source);
    }

    // Close the reached set over the current snapshot: BFS restarted from
    // every already-reached node, since this frame's edges may open new
    // paths through old nodes.
    std::vector<VertexId> queue = reached;
    std::size_t head = 0;
    while (head < queue.size()) {
      const VertexId v = queue[head++];
      for (VertexId w : adjacency[v]) {
        if (arrival[w] == kNeverReached) {
          arrival[w] = t;
          reached.push_back(w);
          queue.push_back(w);
        }
      }
    }
  }
  return arrival;
}

std::vector<VertexId> reachable_in_window(const DifferentialTcsr& tcsr,
                                          VertexId source,
                                          TimeFrame start_frame,
                                          TimeFrame end_frame,
                                          int num_threads) {
  PCQ_CHECK(start_frame <= end_frame);
  const auto arrival =
      foremost_arrival(tcsr, source, start_frame, num_threads);
  std::vector<VertexId> out;
  for (VertexId v = 0; v < tcsr.num_nodes(); ++v)
    if (arrival[v] != kNeverReached && arrival[v] <= end_frame)
      out.push_back(v);
  return out;
}

}  // namespace pcq::tcsr
