#include "tcsr/contact_index.hpp"

#include <algorithm>

#include "par/parallel_for.hpp"
#include "par/prefix_sum.hpp"
#include "par/radix_sort.hpp"
#include "util/check.hpp"

namespace pcq::tcsr {

using graph::TemporalEdge;
using graph::TimeFrame;
using graph::VertexId;

ContactIndex ContactIndex::build(const graph::TemporalEdgeList& events,
                                 VertexId num_nodes, TimeFrame num_frames,
                                 int num_threads) {
  if (num_nodes == 0) num_nodes = events.num_nodes();
  if (num_frames == 0) num_frames = events.num_frames();

  // Group events per edge: sort by (u, v, t). Two stable radix passes.
  std::vector<TemporalEdge> evs(events.edges().begin(), events.edges().end());
  pcq::par::parallel_radix_sort(
      std::span<TemporalEdge>(evs), num_threads,
      [](const TemporalEdge& e) { return std::uint64_t{e.t}; });
  pcq::par::parallel_radix_sort(
      std::span<TemporalEdge>(evs), num_threads, [](const TemporalEdge& e) {
        return (static_cast<std::uint64_t>(e.u) << 32) | e.v;
      });

  // Convert toggle runs to maximal intervals. Consecutive equal (u, v)
  // events alternate on/off; an interval left open closes at the last
  // frame. Events repeated within one frame cancel pairwise.
  std::vector<Contact> contacts;
  std::size_t i = 0;
  while (i < evs.size()) {
    const VertexId u = evs[i].u, v = evs[i].v;
    bool active = false;
    TimeFrame begin = 0;
    std::size_t j = i;
    while (j < evs.size() && evs[j].u == u && evs[j].v == v) {
      // Collapse equal-frame repeats to their parity.
      const TimeFrame t = evs[j].t;
      std::size_t reps = 0;
      while (j < evs.size() && evs[j].u == u && evs[j].v == v && evs[j].t == t) {
        ++reps;
        ++j;
      }
      if (reps % 2 == 0) continue;  // even toggles cancel
      if (!active) {
        active = true;
        begin = t;
      } else {
        active = false;
        contacts.push_back({u, v, begin, static_cast<TimeFrame>(t - 1)});
      }
    }
    if (active)
      contacts.push_back(
          {u, v, begin, static_cast<TimeFrame>(num_frames - 1)});
    i = j;
  }

  ContactIndex index;
  std::vector<std::uint32_t> counts(num_nodes, 0);
  for (const Contact& c : contacts) ++counts[c.u];
  index.offsets_ = pcq::par::offsets_from_degrees(counts, num_threads);

  std::vector<std::uint64_t> targets(contacts.size());
  std::vector<std::uint64_t> begins(contacts.size());
  std::vector<std::uint64_t> ends(contacts.size());
  pcq::par::parallel_for(contacts.size(), num_threads, [&](std::size_t k) {
    targets[k] = contacts[k].v;
    begins[k] = contacts[k].begin;
    ends[k] = contacts[k].end;
  });
  index.targets_ = pcq::bits::FixedWidthArray::pack(targets, num_threads);
  index.begins_ = pcq::bits::FixedWidthArray::pack(begins, num_threads);
  index.ends_ = pcq::bits::FixedWidthArray::pack(ends, num_threads);
  return index;
}

bool ContactIndex::edge_active(VertexId u, VertexId v, TimeFrame t) const {
  PCQ_DCHECK(u < num_nodes());
  // Binary search the (v, begin)-sorted slice for the last contact of v
  // with begin <= t, then check its end.
  std::size_t lo = offsets_[u], hi = offsets_[u + 1];
  // First narrow to the pair's subrange by target id.
  std::size_t pair_lo = lo, pair_hi = hi;
  {
    std::size_t a = lo, b = hi;
    while (a < b) {
      const std::size_t mid = a + (b - a) / 2;
      if (targets_.get(mid) < v)
        a = mid + 1;
      else
        b = mid;
    }
    pair_lo = a;
    a = pair_lo;
    b = hi;
    while (a < b) {
      const std::size_t mid = a + (b - a) / 2;
      if (targets_.get(mid) <= v)
        a = mid + 1;
      else
        b = mid;
    }
    pair_hi = a;
  }
  // Last interval starting at or before t.
  std::size_t a = pair_lo, b = pair_hi;
  while (a < b) {
    const std::size_t mid = a + (b - a) / 2;
    if (begins_.get(mid) <= t)
      a = mid + 1;
    else
      b = mid;
  }
  if (a == pair_lo) return false;  // every contact starts after t
  return ends_.get(a - 1) >= t;
}

std::vector<VertexId> ContactIndex::neighbors_at(VertexId u,
                                                 TimeFrame t) const {
  PCQ_DCHECK(u < num_nodes());
  std::vector<VertexId> out;
  for (std::size_t k = offsets_[u]; k < offsets_[u + 1]; ++k) {
    if (begins_.get(k) <= t && t <= ends_.get(k)) {
      const auto v = static_cast<VertexId>(targets_.get(k));
      // Contacts of one pair are disjoint intervals, so at most one can
      // contain t; slice order keeps output ascending.
      out.push_back(v);
    }
  }
  return out;
}

std::vector<ActivityInterval> ContactIndex::contacts(VertexId u,
                                                     VertexId v) const {
  std::vector<ActivityInterval> out;
  for (std::size_t k = offsets_[u]; k < offsets_[u + 1]; ++k) {
    if (targets_.get(k) == v)
      out.push_back({static_cast<TimeFrame>(begins_.get(k)),
                     static_cast<TimeFrame>(ends_.get(k))});
  }
  return out;
}

std::vector<Contact> ContactIndex::contacts_in_window(TimeFrame t_begin,
                                                      TimeFrame t_end) const {
  PCQ_CHECK(t_begin <= t_end);
  std::vector<Contact> out;
  const VertexId n = num_nodes();
  for (VertexId u = 0; u < n; ++u) {
    for (std::size_t k = offsets_[u]; k < offsets_[u + 1]; ++k) {
      const auto cb = static_cast<TimeFrame>(begins_.get(k));
      const auto ce = static_cast<TimeFrame>(ends_.get(k));
      if (cb <= t_end && ce >= t_begin)
        out.push_back({u, static_cast<VertexId>(targets_.get(k)), cb, ce});
    }
  }
  return out;
}

std::size_t ContactIndex::size_bytes() const {
  return offsets_.size() * sizeof(std::uint64_t) + targets_.size_bytes() +
         begins_.size_bytes() + ends_.size_bytes();
}

}  // namespace pcq::tcsr
