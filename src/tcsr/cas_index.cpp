#include "tcsr/cas_index.hpp"

#include <algorithm>

#include "par/parallel_for.hpp"
#include "par/prefix_sum.hpp"
#include "par/radix_sort.hpp"
#include "util/check.hpp"

namespace pcq::tcsr {

using graph::TemporalEdge;
using graph::TimeFrame;
using graph::VertexId;

CasIndex CasIndex::build(const graph::TemporalEdgeList& events,
                         VertexId num_nodes, int num_threads) {
  if (num_nodes == 0) num_nodes = events.num_nodes();
  CasIndex index;

  // CAS ordering: by source, then time, then target. Radix on the packed
  // (u, t) key is stable, so a prior (t, u, v) sort's v-order within equal
  // (u, t) survives — but the input order is unconstrained, so sort fully.
  std::vector<TemporalEdge> evs(events.edges().begin(), events.edges().end());
  pcq::par::parallel_radix_sort(
      std::span<TemporalEdge>(evs), num_threads, [](const TemporalEdge& e) {
        return (static_cast<std::uint64_t>(e.u) << 32) | e.v;
      });
  pcq::par::parallel_radix_sort(
      std::span<TemporalEdge>(evs), num_threads, [](const TemporalEdge& e) {
        return (static_cast<std::uint64_t>(e.u) << 32) | e.t;
      });

  // Per-vertex slice offsets (degree-count + scan, the usual pipeline).
  std::vector<std::uint32_t> counts(num_nodes, 0);
  for (const TemporalEdge& e : evs) ++counts[e.u];
  index.offsets_ = pcq::par::offsets_from_degrees(counts, num_threads);

  // Column arrays.
  std::vector<std::uint64_t> times(evs.size());
  std::vector<std::uint32_t> targets(evs.size());
  pcq::par::parallel_for(evs.size(), num_threads, [&](std::size_t i) {
    times[i] = evs[i].t;
    targets[i] = evs[i].v;
  });
  index.times_ = pcq::bits::FixedWidthArray::pack(times, num_threads);
  index.targets_ = pcq::bits::WaveletTree::build(targets, num_nodes);
  return index;
}

std::size_t CasIndex::time_boundary(VertexId u, TimeFrame t) const {
  // Binary search within u's slice for the first event with time > t.
  std::size_t lo = offsets_[u], hi = offsets_[u + 1];
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (times_.get(mid) <= t)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

bool CasIndex::edge_active(VertexId u, VertexId v, TimeFrame t) const {
  PCQ_DCHECK(u < num_nodes());
  const std::size_t begin = offsets_[u];
  const std::size_t end = time_boundary(u, t);
  return targets_.count(begin, end, v) % 2 == 1;
}

std::vector<VertexId> CasIndex::neighbors_at(VertexId u, TimeFrame t) const {
  PCQ_DCHECK(u < num_nodes());
  const std::size_t begin = offsets_[u];
  const std::size_t end = time_boundary(u, t);
  std::vector<VertexId> out;
  targets_.for_each_distinct(begin, end,
                             [&](std::uint32_t symbol, std::size_t count) {
                               if (count % 2 == 1)
                                 out.push_back(static_cast<VertexId>(symbol));
                             });
  return out;  // ascending: the enumeration is in symbol order
}

std::size_t CasIndex::size_bytes() const {
  return offsets_.size() * sizeof(std::uint64_t) + times_.size_bytes() +
         targets_.size_bytes();
}

}  // namespace pcq::tcsr
