// Per-frame CSR construction from a time-sorted event list — the first two
// steps of Algorithm 5.
//
// "Divide the input edge list, and construct CSR for each time-frame in
//  the chunk. Merge overflowing CSR's between chunks."
//
// A frame's events can straddle a chunk boundary exactly the way a node's
// run straddles one in the degree computation, so the same run-counting +
// spill-merge machinery (Algorithms 2/3 applied to the *time* column)
// locates every frame's slice of the global array; the per-frame CSRs are
// then built in parallel over frames. The result is identical to merging
// per-chunk partial CSRs — the merge is realised as slice arithmetic
// instead of array stitching.
#pragma once

#include <vector>

#include "csr/csr_graph.hpp"
#include "graph/edge_list.hpp"

namespace pcq::tcsr {

/// Finds each frame's slice [frame_offsets[t], frame_offsets[t+1]) in the
/// (t, u, v)-sorted event list. Run-counting on the time column
/// (Algorithms 2/3) + chunked prefix sum (Algorithm 1).
std::vector<std::uint64_t> frame_offsets(const graph::TemporalEdgeList& events,
                                         graph::TimeFrame num_frames,
                                         int num_threads);

/// Builds one event-CSR per frame from the sorted event list. CSR t holds
/// the edges whose state toggles in frame t, with within-frame duplicate
/// events parity-cancelled (an edge added and deleted inside one frame has
/// not changed state). These are the paper's per-frame "differences".
/// `precomputed_offsets` (optional) skips the frame_offsets pass when the
/// caller already ran it.
std::vector<csr::CsrGraph> build_frame_csrs(
    const graph::TemporalEdgeList& events, graph::VertexId num_nodes,
    graph::TimeFrame num_frames, int num_threads,
    const std::vector<std::uint64_t>* precomputed_offsets = nullptr);

}  // namespace pcq::tcsr
