#include "tcsr/edgelog.hpp"

#include <algorithm>

#include "bits/codecs.hpp"
#include "par/parallel_for.hpp"
#include "par/radix_sort.hpp"
#include "tcsr/contact_index.hpp"
#include "util/check.hpp"

namespace pcq::tcsr {

using graph::TemporalEdge;
using graph::TimeFrame;
using graph::VertexId;

EdgeLog EdgeLog::build(const graph::TemporalEdgeList& events,
                       VertexId num_nodes, TimeFrame num_frames,
                       int num_threads) {
  if (num_nodes == 0) num_nodes = events.num_nodes();
  if (num_frames == 0) num_frames = events.num_frames();

  // Reuse the contact derivation: group events by (u, v), convert toggle
  // runs to maximal intervals.
  std::vector<TemporalEdge> evs(events.edges().begin(), events.edges().end());
  pcq::par::parallel_radix_sort(
      std::span<TemporalEdge>(evs), num_threads,
      [](const TemporalEdge& e) { return std::uint64_t{e.t}; });
  pcq::par::parallel_radix_sort(
      std::span<TemporalEdge>(evs), num_threads, [](const TemporalEdge& e) {
        return (static_cast<std::uint64_t>(e.u) << 32) | e.v;
      });

  // Per-vertex slices of the (u, v, t)-sorted event array.
  std::vector<std::size_t> bounds(num_nodes + 1, 0);
  {
    std::size_t i = 0;
    for (VertexId u = 0; u < num_nodes; ++u) {
      bounds[u] = i;
      while (i < evs.size() && evs[i].u == u) ++i;
    }
    bounds[num_nodes] = evs.size();
  }

  EdgeLog log;
  log.logs_.resize(num_nodes);
  pcq::par::parallel_for(num_nodes, num_threads, [&](std::size_t ui) {
    // Derive (neighbour, intervals) pairs for this vertex.
    struct NeighborIntervals {
      VertexId v;
      std::vector<ActivityInterval> intervals;
    };
    std::vector<NeighborIntervals> rows;
    std::size_t i = bounds[ui];
    while (i < bounds[ui + 1]) {
      const VertexId v = evs[i].v;
      NeighborIntervals row{v, {}};
      bool active = false;
      TimeFrame begin = 0;
      while (i < bounds[ui + 1] && evs[i].v == v) {
        const TimeFrame t = evs[i].t;
        std::size_t reps = 0;
        while (i < bounds[ui + 1] && evs[i].v == v && evs[i].t == t) {
          ++reps;
          ++i;
        }
        if (reps % 2 == 0) continue;
        if (!active) {
          active = true;
          begin = t;
        } else {
          active = false;
          row.intervals.push_back({begin, static_cast<TimeFrame>(t - 1)});
        }
      }
      if (active)
        row.intervals.push_back(
            {begin, static_cast<TimeFrame>(num_frames - 1)});
      if (!row.intervals.empty()) rows.push_back(std::move(row));
    }

    // Encode the vertex's stream.
    pcq::bits::BitVector& out = log.logs_[ui].stream;
    pcq::bits::elias_gamma_encode(rows.size() + 1, out);
    VertexId prev_v = 0;
    bool first_v = true;
    for (const auto& row : rows) {
      const std::uint64_t vgap =
          first_v ? static_cast<std::uint64_t>(row.v) + 1 : row.v - prev_v;
      pcq::bits::elias_gamma_encode(vgap, out);
      pcq::bits::elias_gamma_encode(row.intervals.size(), out);
      TimeFrame prev_end = 0;
      bool first_iv = true;
      for (const ActivityInterval& iv : row.intervals) {
        const std::uint64_t bgap = first_iv
                                       ? static_cast<std::uint64_t>(iv.begin) + 1
                                       : iv.begin - prev_end;
        pcq::bits::elias_gamma_encode(bgap, out);
        pcq::bits::elias_gamma_encode(iv.end - iv.begin + 1, out);  // length
        prev_end = iv.end;
        first_iv = false;
      }
      prev_v = row.v;
      first_v = false;
    }
  });
  return log;
}

namespace {

/// Streaming decoder over one vertex's log; fn(v, interval) per interval.
/// Returning true from fn stops the walk early.
template <typename Fn>
void walk_log(const pcq::bits::BitVector& stream, Fn&& fn) {
  if (stream.size() == 0) return;
  std::size_t pos = 0;
  const std::uint64_t rows = pcq::bits::elias_gamma_decode(stream, pos) - 1;
  VertexId v = 0;
  for (std::uint64_t r = 0; r < rows; ++r) {
    const std::uint64_t vgap = pcq::bits::elias_gamma_decode(stream, pos);
    v = r == 0 ? static_cast<VertexId>(vgap - 1)
               : v + static_cast<VertexId>(vgap);
    const std::uint64_t count = pcq::bits::elias_gamma_decode(stream, pos);
    TimeFrame end = 0;
    for (std::uint64_t k = 0; k < count; ++k) {
      const std::uint64_t bgap = pcq::bits::elias_gamma_decode(stream, pos);
      const TimeFrame begin =
          k == 0 ? static_cast<TimeFrame>(bgap - 1)
                 : end + static_cast<TimeFrame>(bgap);
      const std::uint64_t len = pcq::bits::elias_gamma_decode(stream, pos);
      end = begin + static_cast<TimeFrame>(len) - 1;
      if (fn(v, ActivityInterval{begin, end})) return;
    }
  }
}

}  // namespace

bool EdgeLog::edge_active(VertexId u, VertexId v, TimeFrame t) const {
  PCQ_DCHECK(u < logs_.size());
  bool active = false;
  walk_log(logs_[u].stream, [&](VertexId nv, ActivityInterval iv) {
    if (nv > v) return true;  // neighbours ascend: v is absent
    if (nv == v && iv.begin <= t && t <= iv.end) {
      active = true;
      return true;
    }
    return false;
  });
  return active;
}

std::vector<VertexId> EdgeLog::neighbors_at(VertexId u, TimeFrame t) const {
  PCQ_DCHECK(u < logs_.size());
  std::vector<VertexId> out;
  walk_log(logs_[u].stream, [&](VertexId nv, ActivityInterval iv) {
    if (iv.begin <= t && t <= iv.end) out.push_back(nv);
    return false;
  });
  return out;  // intervals of one pair are disjoint -> no duplicates
}

std::vector<ActivityInterval> EdgeLog::intervals(VertexId u, VertexId v) const {
  PCQ_DCHECK(u < logs_.size());
  std::vector<ActivityInterval> out;
  walk_log(logs_[u].stream, [&](VertexId nv, ActivityInterval iv) {
    if (nv > v) return true;
    if (nv == v) out.push_back(iv);
    return false;
  });
  return out;
}

std::size_t EdgeLog::size_bytes() const {
  std::size_t bytes = logs_.size() * sizeof(VertexLog);
  for (const auto& log : logs_) bytes += log.stream.size_bytes();
  return bytes;
}

}  // namespace pcq::tcsr
