#include "tcsr/tcsr.hpp"

#include <numeric>

#include "csr/builder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/chunking.hpp"
#include "par/parallel_for.hpp"
#include "par/prefix_sum.hpp"
#include "tcsr/frame_builder.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pcq::tcsr {

using graph::Edge;
using graph::TemporalEdgeList;
using graph::TimeFrame;
using graph::VertexId;

DifferentialTcsr DifferentialTcsr::build(const TemporalEdgeList& events,
                                         VertexId num_nodes,
                                         TimeFrame num_frames, int num_threads,
                                         TcsrBuildTimings* timings) {
  PCQ_CHECK_MSG(events.is_sorted(), "TCSR input must be (t, u, v)-sorted");
  if (num_nodes == 0) num_nodes = events.num_nodes();
  if (num_frames == 0) num_frames = events.num_frames();

  DifferentialTcsr tcsr;
  tcsr.num_nodes_ = num_nodes;
  if (num_frames == 0) return tcsr;
  pcq::obs::MetricsRegistry::global().counter("tcsr.builds").add(1);

  pcq::util::Timer timer;
  // Algorithm 5 steps 1-2: locate frame slices (overlap merge included).
  std::vector<std::uint64_t> offsets;
  {
    PCQ_TRACE_SCOPE("tcsr.frame_split", num_frames);
    offsets = frame_offsets(events, num_frames, num_threads);
  }
  if (timings) timings->frame_split = timer.seconds();

  // Step 3: per-frame differential CSRs (frame_builder handles the parity
  // cancellation that makes each frame a pure state-change set).
  timer.restart();
  std::vector<csr::CsrGraph> frames;
  {
    PCQ_TRACE_SCOPE("tcsr.frame_build", num_frames);
    frames =
        build_frame_csrs(events, num_nodes, num_frames, num_threads, &offsets);
  }
  if (timings) timings->frame_build = timer.seconds();

  // Step 4: bit-pack every frame (Algorithm 4). Frames are independent, so
  // parallelism is over frames; each pack call runs single-threaded.
  timer.restart();
  tcsr.deltas_.resize(num_frames);
  {
    PCQ_TRACE_SCOPE("tcsr.pack", num_frames);
    pcq::par::parallel_for(num_frames, num_threads, [&](std::size_t t) {
      tcsr.deltas_[t] = csr::BitPackedCsr::from_csr(frames[t], 1);
    });
  }
  if (timings) timings->pack = timer.seconds();
  return tcsr;
}

std::size_t DifferentialTcsr::num_delta_edges() const {
  return std::accumulate(deltas_.begin(), deltas_.end(), std::size_t{0},
                         [](std::size_t acc, const csr::BitPackedCsr& d) {
                           return acc + d.num_edges();
                         });
}

std::size_t DifferentialTcsr::size_bytes() const {
  return std::accumulate(deltas_.begin(), deltas_.end(), std::size_t{0},
                         [](std::size_t acc, const csr::BitPackedCsr& d) {
                           return acc + d.size_bytes();
                         });
}

bool DifferentialTcsr::edge_active(VertexId u, VertexId v, TimeFrame t) const {
  PCQ_DCHECK(t < deltas_.size());
  PCQ_DCHECK_MSG(u < num_nodes_, "temporal query node outside vertex range");
  bool active = false;
  for (TimeFrame f = 0; f <= t; ++f)
    if (deltas_[f].has_edge(u, v)) active = !active;
  return active;
}

std::vector<VertexId> DifferentialTcsr::neighbors_at(VertexId u,
                                                     TimeFrame t) const {
  PCQ_DCHECK(t < deltas_.size());
  PCQ_DCHECK_MSG(u < num_nodes_, "temporal query node outside vertex range");
  // XOR-accumulate u's delta rows: a neighbour toggled an odd number of
  // times is active. Rows are sorted, so a sorted symmetric-difference
  // merge keeps the accumulator sorted. The delta row side streams from
  // the packed columns via RowCursor — only the accumulator is ever
  // materialised.
  std::vector<VertexId> active;
  std::vector<VertexId> merged;
  for (TimeFrame f = 0; f <= t; ++f) {
    pcq::bits::RowCursor row = deltas_[f].row_cursor(u);
    if (row.done()) continue;
    merged.clear();
    merged.reserve(active.size() + row.remaining());
    std::size_t i = 0;
    auto r = static_cast<VertexId>(row.next());
    bool row_live = true;
    while (i < active.size() && row_live) {
      if (active[i] < r) {
        merged.push_back(active[i++]);
      } else {
        if (r < active[i]) {
          merged.push_back(r);
        } else {
          ++i;  // cancels
        }
        if (row.done())
          row_live = false;
        else
          r = static_cast<VertexId>(row.next());
      }
    }
    merged.insert(merged.end(), active.begin() + static_cast<std::ptrdiff_t>(i),
                  active.end());
    if (row_live) {
      merged.push_back(r);
      while (!row.done()) merged.push_back(static_cast<VertexId>(row.next()));
    }
    active.swap(merged);
  }
  return active;
}

std::vector<std::uint8_t> DifferentialTcsr::batch_edge_active(
    std::span<const TemporalEdgeQuery> queries, int num_threads) const {
  std::vector<std::uint8_t> result(queries.size(), 0);
  pcq::par::parallel_for_chunks(
      queries.size(), num_threads, [&](std::size_t, pcq::par::ChunkRange r) {
        for (std::size_t i = r.begin; i < r.end; ++i) {
          const auto& q = queries[i];
          result[i] = edge_active(q.u, q.v, q.t) ? 1 : 0;
        }
      });
  return result;
}

std::vector<std::vector<VertexId>> DifferentialTcsr::batch_neighbors_at(
    std::span<const TemporalNodeQuery> queries, int num_threads) const {
  std::vector<std::vector<VertexId>> result(queries.size());
  pcq::par::parallel_for_chunks(
      queries.size(), num_threads, [&](std::size_t, pcq::par::ChunkRange r) {
        for (std::size_t i = r.begin; i < r.end; ++i)
          result[i] = neighbors_at(queries[i].u, queries[i].t);
      });
  return result;
}

bool DifferentialTcsr::edge_active_in_window(VertexId u, VertexId v,
                                             TimeFrame t_begin,
                                             TimeFrame t_end) const {
  PCQ_CHECK(t_begin <= t_end && t_end < deltas_.size());
  bool active = false;
  for (TimeFrame f = 0; f <= t_end; ++f) {
    if (deltas_[f].has_edge(u, v)) active = !active;
    if (f >= t_begin && active) return true;
  }
  return false;
}

std::vector<ActivityInterval> DifferentialTcsr::activity_intervals(
    VertexId u, VertexId v) const {
  std::vector<ActivityInterval> intervals;
  bool active = false;
  TimeFrame begin = 0;
  const auto frames = static_cast<TimeFrame>(deltas_.size());
  for (TimeFrame f = 0; f < frames; ++f) {
    if (!deltas_[f].has_edge(u, v)) continue;
    if (!active) {
      active = true;
      begin = f;
    } else {
      active = false;
      intervals.push_back({begin, f - 1});
    }
  }
  if (active) intervals.push_back({begin, frames - 1});
  return intervals;
}

namespace {

/// Streams a packed delta straight into a sorted edge vector (row cursors,
/// no intermediate CsrGraph).
std::vector<Edge> delta_edges(const csr::BitPackedCsr& delta) {
  std::vector<Edge> edges;
  edges.reserve(delta.num_edges());
  for (VertexId u = 0; u < delta.num_nodes(); ++u)
    for (std::uint64_t v : delta.row_cursor(u))
      edges.push_back({u, static_cast<VertexId>(v)});
  return edges;
}

}  // namespace

std::vector<SortedEdgeSet> DifferentialTcsr::all_snapshots(
    int num_threads) const {
  const std::size_t frames = deltas_.size();
  std::vector<SortedEdgeSet> sets(frames);
  // Materialise each delta as a sorted edge set...
  pcq::par::parallel_for(frames, num_threads, [&](std::size_t t) {
    sets[t] = SortedEdgeSet::from_sorted(delta_edges(deltas_[t]));
  });
  // ...then run the paper's chunked prefix-sum schedule with the
  // symmetric-difference monoid: sets[t] becomes the snapshot at frame t.
  {
    PCQ_TRACE_SCOPE("tcsr.differential_scan", frames);
    pcq::par::chunked_inclusive_scan(std::span<SortedEdgeSet>(sets),
                                     num_threads, SymmetricDifferenceOp{});
  }
  return sets;
}

csr::CsrGraph DifferentialTcsr::snapshot_at(TimeFrame t,
                                            int num_threads) const {
  PCQ_CHECK(t < deltas_.size());
  // Scan only the prefix 0..t, then convert the accumulated set to CSR.
  std::vector<SortedEdgeSet> sets(t + 1);
  pcq::par::parallel_for(static_cast<std::size_t>(t) + 1, num_threads,
                         [&](std::size_t f) {
                           sets[f] = SortedEdgeSet::from_sorted(
                               delta_edges(deltas_[f]));
                         });
  {
    PCQ_TRACE_SCOPE("tcsr.differential_scan", sets.size());
    pcq::par::chunked_inclusive_scan(std::span<SortedEdgeSet>(sets),
                                     num_threads, SymmetricDifferenceOp{});
  }
  graph::EdgeList list(std::move(sets[t]).take());
  return csr::build_csr_sequential(list, num_nodes_);
}

}  // namespace pcq::tcsr
