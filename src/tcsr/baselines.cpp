#include "tcsr/baselines.hpp"

#include <algorithm>

#include "csr/builder.hpp"
#include "par/parallel_for.hpp"
#include "tcsr/tcsr.hpp"
#include "util/check.hpp"

namespace pcq::tcsr {

using graph::TemporalEdgeList;
using graph::TimeFrame;
using graph::VertexId;

SnapshotSequence SnapshotSequence::build(const TemporalEdgeList& events,
                                         VertexId num_nodes,
                                         TimeFrame num_frames,
                                         int num_threads) {
  if (num_nodes == 0) num_nodes = events.num_nodes();
  if (num_frames == 0) num_frames = events.num_frames();

  // Reuse the differential pipeline to get per-frame snapshots, then pack
  // each full snapshot instead of each delta.
  DifferentialTcsr tcsr =
      DifferentialTcsr::build(events, num_nodes, num_frames, num_threads);
  std::vector<SortedEdgeSet> snaps = tcsr.all_snapshots(num_threads);

  SnapshotSequence seq;
  seq.snapshots_.resize(snaps.size());
  pcq::par::parallel_for(snaps.size(), num_threads, [&](std::size_t t) {
    graph::EdgeList list(std::move(snaps[t]).take());
    const csr::CsrGraph csr = csr::build_csr_sequential(list, num_nodes);
    seq.snapshots_[t] = csr::BitPackedCsr::from_csr(csr, 1);
  });
  return seq;
}

std::size_t SnapshotSequence::size_bytes() const {
  std::size_t bytes = 0;
  for (const auto& s : snapshots_) bytes += s.size_bytes();
  return bytes;
}

EveLog EveLog::build(const TemporalEdgeList& events, VertexId num_nodes,
                     int num_threads) {
  if (num_nodes == 0) num_nodes = events.num_nodes();
  const auto evs = events.edges();

  // Bucket events per source vertex, preserving time order (input is
  // (t, u, v)-sorted, so per-vertex order stays chronological).
  std::vector<std::vector<std::pair<TimeFrame, VertexId>>> buckets(num_nodes);
  for (const auto& e : evs) buckets[e.u].emplace_back(e.t, e.v);

  EveLog log;
  log.logs_.resize(num_nodes);
  pcq::par::parallel_for(num_nodes, num_threads, [&](std::size_t u) {
    const auto& bucket = buckets[u];
    if (bucket.empty()) return;
    std::vector<std::uint64_t> times(bucket.size());
    std::vector<std::uint64_t> nbrs(bucket.size());
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      times[i] = bucket[i].first;
      nbrs[i] = bucket[i].second;
    }
    log.logs_[u].times = pcq::bits::GapEncodedSequence::encode(
        times, pcq::bits::GapCodec::kDelta);
    log.logs_[u].neighbors = pcq::bits::FixedWidthArray::pack_with_width(
        nbrs, pcq::bits::bits_for(num_nodes == 0 ? 0 : num_nodes - 1), 1);
  });
  return log;
}

bool EveLog::edge_active(VertexId u, VertexId v, TimeFrame t) const {
  PCQ_DCHECK(u < logs_.size());
  const VertexLog& log = logs_[u];
  // "To determine if an arc is active ... it is necessary to sequentially
  // read the log of events" (§II) — decode and replay.
  const std::vector<std::uint64_t> times = log.times.decode();
  bool active = false;
  for (std::size_t i = 0; i < times.size() && times[i] <= t; ++i)
    if (log.neighbors.get(i) == v) active = !active;
  return active;
}

std::vector<VertexId> EveLog::neighbors_at(VertexId u, TimeFrame t) const {
  PCQ_DCHECK(u < logs_.size());
  const VertexLog& log = logs_[u];
  const std::vector<std::uint64_t> times = log.times.decode();
  std::vector<VertexId> active;
  for (std::size_t i = 0; i < times.size() && times[i] <= t; ++i) {
    const auto v = static_cast<VertexId>(log.neighbors.get(i));
    auto it = std::find(active.begin(), active.end(), v);
    if (it == active.end())
      active.push_back(v);
    else
      active.erase(it);
  }
  std::sort(active.begin(), active.end());
  return active;
}

std::size_t EveLog::size_bytes() const {
  std::size_t bytes = 0;
  for (const auto& log : logs_)
    bytes += log.times.size_bytes() + log.neighbors.size_bytes();
  return bytes;
}

}  // namespace pcq::tcsr
