#include "tcsr/serialize.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <vector>

#include "bits/packed_array.hpp"
#include "util/io_error.hpp"

namespace pcq::tcsr {

namespace {

// Format v2: v1 lacked the endianness canary, so a big-endian (or
// bit-flipped) file decoded into garbage counts instead of being rejected.
constexpr char kMagic[8] = {'P', 'C', 'Q', 'T', 'C', 'S', 'R', '2'};
constexpr std::uint32_t kEndianCanary = 0x01020304;

struct FileHeader {
  char magic[8];
  std::uint32_t canary;
  std::uint32_t reserved;
  std::uint64_t num_nodes;
  std::uint64_t num_frames;
};

struct FrameHeader {
  std::uint64_t num_edges;
  std::uint32_t offset_width;
  std::uint32_t column_width;
  std::uint64_t offset_bits;
  std::uint64_t column_bits;
};

class File {
 public:
  File(const std::string& path, const char* mode)
      : path_(path), f_(std::fopen(path.c_str(), mode)), owns_(true) {
    if (f_ == nullptr) throw IoError(path_, "cannot open TCSR file");
  }
  /// Borrows an already-open stream (in-memory parsing: fmemopen'd fuzz
  /// inputs, pipes); the caller keeps ownership.
  File(std::FILE* stream, const std::string& name)
      : path_(name), f_(stream), owns_(false) {
    if (f_ == nullptr) throw IoError(path_, "cannot open TCSR stream");
  }
  ~File() {
    if (f_ && owns_) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  std::FILE* get() const { return f_; }
  [[noreturn]] void fail(const char* what) const { throw IoError(path_, what); }

 private:
  std::string path_;
  std::FILE* f_;
  bool owns_;
};

void write_bits(const File& f, const pcq::bits::BitVector& bits) {
  const auto words = bits.words();
  if (!words.empty() &&
      std::fwrite(words.data(), 8, words.size(), f.get()) != words.size())
    f.fail("short write");
}

pcq::bits::BitVector read_bits(const File& f, std::uint64_t nbits) {
  const auto total = static_cast<std::size_t>((nbits + 63) / 64);
  // Bounded-slab read: a corrupt frame header can declare a payload of many
  // gigabytes, and allocating it all before the first fread is itself a
  // denial of service. 8 MiB at a time bounds the waste before the
  // truncation is detected.
  constexpr std::size_t kSlabWords = std::size_t{1} << 20;
  std::vector<std::uint64_t> words;
  words.reserve(std::min(total, kSlabWords));
  std::size_t done = 0;
  while (done < total) {
    const std::size_t n = std::min(kSlabWords, total - done);
    words.resize(done + n);
    if (std::fread(words.data() + done, 8, n, f.get()) != n)
      f.fail("truncated TCSR file");
    done += n;
  }
  return pcq::bits::BitVector::from_words(std::move(words), nbits);
}

void validate_header(const File& f, const FileHeader& h) {
  if (std::memcmp(h.magic, kMagic, 8) != 0) {
    // The v1 layout is header-incompatible (no canary field); name the
    // actual problem instead of a generic magic failure.
    if (std::memcmp(h.magic, kMagic, 7) == 0 && h.magic[7] == '1')
      f.fail("unsupported TCSR format v1 — re-run tcompress");
    f.fail("bad TCSR magic");
  }
  if (h.canary != kEndianCanary) f.fail("endianness canary mismatch");
  if (h.num_nodes > std::numeric_limits<graph::VertexId>::max() - 1)
    f.fail("corrupt TCSR header: node count exceeds VertexId range");
  if (h.num_frames > std::numeric_limits<graph::TimeFrame>::max())
    f.fail("corrupt TCSR header: frame count exceeds TimeFrame range");
}

void validate_frame(const File& f, const FileHeader& h, const FrameHeader& fh) {
  if (fh.offset_width < 1 || fh.offset_width > 64 || fh.column_width < 1 ||
      fh.column_width > 64)
    f.fail("corrupt TCSR frame: bit width out of [1, 64]");
  if (fh.num_edges > (std::uint64_t{1} << 57))
    f.fail("corrupt TCSR frame: implausible edge count");
  if (fh.offset_bits != (h.num_nodes + 1) * fh.offset_width)
    f.fail("corrupt TCSR frame: offset bit count mismatch");
  if (fh.column_bits != fh.num_edges * fh.column_width)
    f.fail("corrupt TCSR frame: column bit count mismatch");
}

}  // namespace

void save_tcsr(const DifferentialTcsr& tcsr, const std::string& path) {
  File f(path, "wb");
  FileHeader h{};
  std::memcpy(h.magic, kMagic, 8);
  h.canary = kEndianCanary;
  h.num_nodes = tcsr.num_nodes();
  h.num_frames = tcsr.num_frames();
  if (std::fwrite(&h, sizeof h, 1, f.get()) != 1) f.fail("short write");
  for (graph::TimeFrame t = 0; t < tcsr.num_frames(); ++t) {
    const csr::BitPackedCsr& d = tcsr.delta(t);
    FrameHeader fh{};
    fh.num_edges = d.num_edges();
    fh.offset_width = d.offset_bits();
    fh.column_width = d.column_bits();
    fh.offset_bits = d.packed_offsets().bits().size();
    fh.column_bits = d.packed_columns().bits().size();
    if (std::fwrite(&fh, sizeof fh, 1, f.get()) != 1) f.fail("short write");
    write_bits(f, d.packed_offsets().bits());
    write_bits(f, d.packed_columns().bits());
  }
  if (std::fflush(f.get()) != 0) f.fail("short write");
}

namespace {

DifferentialTcsr load_from(const File& f) {
  FileHeader h{};
  if (std::fread(&h, sizeof h, 1, f.get()) != 1) f.fail("truncated header");
  validate_header(f, h);

  std::vector<csr::BitPackedCsr> deltas;
  // A corrupt frame count is caught by the first truncated frame read;
  // cap the reserve so it cannot pre-allocate gigabytes before that.
  deltas.reserve(std::min<std::uint64_t>(h.num_frames, 1 << 16));
  for (std::uint64_t t = 0; t < h.num_frames; ++t) {
    FrameHeader fh{};
    if (std::fread(&fh, sizeof fh, 1, f.get()) != 1)
      f.fail("truncated frame header");
    validate_frame(f, h, fh);
    auto offsets = pcq::bits::FixedWidthArray::from_bits(
        read_bits(f, fh.offset_bits),
        static_cast<std::size_t>(h.num_nodes) + 1, fh.offset_width);
    auto columns = pcq::bits::FixedWidthArray::from_bits(
        read_bits(f, fh.column_bits),
        static_cast<std::size_t>(fh.num_edges), fh.column_width);
    // O(1) per-frame payload spot checks (full scan: validate_tcsr).
    if (offsets.get(0) != 0)
      f.fail("corrupt TCSR frame payload: first offset not 0");
    if (offsets.get(static_cast<std::size_t>(h.num_nodes)) != fh.num_edges)
      f.fail("corrupt TCSR frame payload: final offset != edge count");
    deltas.push_back(csr::BitPackedCsr::from_parts(
        static_cast<graph::VertexId>(h.num_nodes),
        static_cast<std::size_t>(fh.num_edges), std::move(offsets),
        std::move(columns)));
  }
  return DifferentialTcsr::from_parts(static_cast<graph::VertexId>(h.num_nodes),
                                      std::move(deltas));
}

}  // namespace

DifferentialTcsr load_tcsr(const std::string& path) {
  File f(path, "rb");
  return load_from(f);
}

DifferentialTcsr load_tcsr_stream(std::FILE* stream, const std::string& name) {
  File f(stream, name);
  return load_from(f);
}

}  // namespace pcq::tcsr
