#include "tcsr/serialize.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <vector>

#include "bits/packed_array.hpp"
#include "util/io_error.hpp"

namespace pcq::tcsr {

namespace {

// Format lineage: v1 lacked the endianness canary (a big-endian or
// bit-flipped file decoded into garbage counts instead of being rejected);
// v2 added it; v3 keeps the v2 headers but 64-byte-aligns every frame
// payload so the file can be queried in place through mmap.
constexpr char kMagicV2[8] = {'P', 'C', 'Q', 'T', 'C', 'S', 'R', '2'};
constexpr char kMagicV3[8] = {'P', 'C', 'Q', 'T', 'C', 'S', 'R', '3'};
constexpr std::uint32_t kEndianCanary = 0x01020304;

constexpr std::size_t kPayloadAlign = 64;

constexpr std::size_t align_up(std::size_t pos) {
  return (pos + kPayloadAlign - 1) & ~(kPayloadAlign - 1);
}

struct FileHeader {
  char magic[8];
  std::uint32_t canary;
  std::uint32_t reserved;
  std::uint64_t num_nodes;
  std::uint64_t num_frames;
};

struct FrameHeader {
  std::uint64_t num_edges;
  std::uint32_t offset_width;
  std::uint32_t column_width;
  std::uint64_t offset_bits;
  std::uint64_t column_bits;
};

class File {
 public:
  File(const std::string& path, const char* mode)
      : path_(path), f_(std::fopen(path.c_str(), mode)), owns_(true) {
    if (f_ == nullptr) throw IoError(path_, "cannot open TCSR file");
  }
  /// Borrows an already-open stream (in-memory parsing: fmemopen'd fuzz
  /// inputs, pipes); the caller keeps ownership.
  File(std::FILE* stream, const std::string& name)
      : path_(name), f_(stream), owns_(false) {
    if (f_ == nullptr) throw IoError(path_, "cannot open TCSR stream");
  }
  ~File() {
    if (f_ && owns_) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  std::FILE* get() const { return f_; }
  [[noreturn]] void fail(const char* what) const { throw IoError(path_, what); }

 private:
  std::string path_;
  std::FILE* f_;
  bool owns_;
};

void write_bits(const File& f, const pcq::bits::BitVector& bits) {
  const auto words = bits.words();
  if (!words.empty() &&
      std::fwrite(words.data(), 8, words.size(), f.get()) != words.size())
    f.fail("short write");
}

/// Writes zero bytes advancing `pos` to the next payload boundary.
void write_pad(const File& f, std::size_t& pos) {
  static constexpr char kZeros[kPayloadAlign] = {};
  const std::size_t pad = align_up(pos) - pos;
  if (pad != 0 && std::fwrite(kZeros, 1, pad, f.get()) != pad)
    f.fail("short write");
  pos += pad;
}

/// Consumes padding up to the next payload boundary (fread, not fseek, so
/// pipes and fmemopen streams behave identically).
void skip_pad(const File& f, std::size_t& pos) {
  char sink[kPayloadAlign];
  const std::size_t pad = align_up(pos) - pos;
  if (pad != 0 && std::fread(sink, 1, pad, f.get()) != pad)
    f.fail("truncated TCSR file");
  pos += pad;
}

pcq::bits::BitVector read_bits(const File& f, std::uint64_t nbits) {
  const auto total = static_cast<std::size_t>((nbits + 63) / 64);
  // Bounded-slab read: a corrupt frame header can declare a payload of many
  // gigabytes, and allocating it all before the first fread is itself a
  // denial of service. 8 MiB at a time bounds the waste before the
  // truncation is detected.
  constexpr std::size_t kSlabWords = std::size_t{1} << 20;
  std::vector<std::uint64_t> words;
  words.reserve(std::min(total, kSlabWords));
  std::size_t done = 0;
  while (done < total) {
    const std::size_t n = std::min(kSlabWords, total - done);
    words.resize(done + n);
    if (std::fread(words.data() + done, 8, n, f.get()) != n)
      f.fail("truncated TCSR file");
    done += n;
  }
  return pcq::bits::BitVector::from_words(std::move(words), nbits);
}

/// Shared by the buffered and mapped parsers; throws IoError labelled with
/// `name`. Returns true for the padded (v3) layout.
bool validate_header(const std::string& name, const FileHeader& h) {
  const bool v3 = std::memcmp(h.magic, kMagicV3, 8) == 0;
  if (!v3 && std::memcmp(h.magic, kMagicV2, 8) != 0) {
    // The v1 layout is header-incompatible (no canary field); name the
    // actual problem instead of a generic magic failure.
    if (std::memcmp(h.magic, kMagicV2, 7) == 0 && h.magic[7] == '1')
      throw IoError(name, "unsupported TCSR format v1 — re-run tcompress");
    throw IoError(name, "bad TCSR magic");
  }
  if (h.canary != kEndianCanary)
    throw IoError(name, "endianness canary mismatch");
  if (h.num_nodes > std::numeric_limits<graph::VertexId>::max() - 1)
    throw IoError(name, "corrupt TCSR header: node count exceeds VertexId range");
  if (h.num_frames > std::numeric_limits<graph::TimeFrame>::max())
    throw IoError(name, "corrupt TCSR header: frame count exceeds TimeFrame range");
  return v3;
}

void validate_frame(const std::string& name, const FileHeader& h,
                    const FrameHeader& fh) {
  if (fh.offset_width < 1 || fh.offset_width > 64 || fh.column_width < 1 ||
      fh.column_width > 64)
    throw IoError(name, "corrupt TCSR frame: bit width out of [1, 64]");
  if (fh.num_edges > (std::uint64_t{1} << 57))
    throw IoError(name, "corrupt TCSR frame: implausible edge count");
  if (fh.offset_bits != (h.num_nodes + 1) * fh.offset_width)
    throw IoError(name, "corrupt TCSR frame: offset bit count mismatch");
  if (fh.column_bits != fh.num_edges * fh.column_width)
    throw IoError(name, "corrupt TCSR frame: column bit count mismatch");
}

csr::BitPackedCsr assemble_frame(const std::string& name, const FileHeader& h,
                                 const FrameHeader& fh,
                                 pcq::bits::FixedWidthArray offsets,
                                 pcq::bits::FixedWidthArray columns) {
  // O(1) per-frame payload spot checks (full scan: validate_tcsr).
  if (offsets.get(0) != 0)
    throw IoError(name, "corrupt TCSR frame payload: first offset not 0");
  if (offsets.get(static_cast<std::size_t>(h.num_nodes)) != fh.num_edges)
    throw IoError(name, "corrupt TCSR frame payload: final offset != edge count");
  return csr::BitPackedCsr::from_parts(
      static_cast<graph::VertexId>(h.num_nodes),
      static_cast<std::size_t>(fh.num_edges), std::move(offsets),
      std::move(columns));
}

}  // namespace

void save_tcsr(const DifferentialTcsr& tcsr, const std::string& path) {
  File f(path, "wb");
  FileHeader h{};
  std::memcpy(h.magic, kMagicV3, 8);
  h.canary = kEndianCanary;
  h.num_nodes = tcsr.num_nodes();
  h.num_frames = tcsr.num_frames();
  if (std::fwrite(&h, sizeof h, 1, f.get()) != 1) f.fail("short write");
  std::size_t pos = sizeof h;
  for (graph::TimeFrame t = 0; t < tcsr.num_frames(); ++t) {
    const csr::BitPackedCsr& d = tcsr.delta(t);
    FrameHeader fh{};
    fh.num_edges = d.num_edges();
    fh.offset_width = d.offset_bits();
    fh.column_width = d.column_bits();
    fh.offset_bits = d.packed_offsets().bits().size();
    fh.column_bits = d.packed_columns().bits().size();
    if (std::fwrite(&fh, sizeof fh, 1, f.get()) != 1) f.fail("short write");
    pos += sizeof fh;
    write_pad(f, pos);
    write_bits(f, d.packed_offsets().bits());
    pos += d.packed_offsets().bits().words().size() * 8;
    write_pad(f, pos);
    write_bits(f, d.packed_columns().bits());
    pos += d.packed_columns().bits().words().size() * 8;
  }
  if (std::fflush(f.get()) != 0) f.fail("short write");
}

namespace {

DifferentialTcsr load_from(const File& f, const std::string& name) {
  FileHeader h{};
  if (std::fread(&h, sizeof h, 1, f.get()) != 1) f.fail("truncated header");
  const bool padded = validate_header(name, h);

  std::vector<csr::BitPackedCsr> deltas;
  // A corrupt frame count is caught by the first truncated frame read;
  // cap the reserve so it cannot pre-allocate gigabytes before that.
  deltas.reserve(std::min<std::uint64_t>(h.num_frames, 1 << 16));
  std::size_t pos = sizeof h;
  for (std::uint64_t t = 0; t < h.num_frames; ++t) {
    FrameHeader fh{};
    if (std::fread(&fh, sizeof fh, 1, f.get()) != 1)
      f.fail("truncated frame header");
    validate_frame(name, h, fh);
    pos += sizeof fh;
    if (padded) skip_pad(f, pos);
    auto offsets = pcq::bits::FixedWidthArray::from_bits(
        read_bits(f, fh.offset_bits),
        static_cast<std::size_t>(h.num_nodes) + 1, fh.offset_width);
    pos += static_cast<std::size_t>((fh.offset_bits + 63) / 64) * 8;
    if (padded) skip_pad(f, pos);
    auto columns = pcq::bits::FixedWidthArray::from_bits(
        read_bits(f, fh.column_bits),
        static_cast<std::size_t>(fh.num_edges), fh.column_width);
    pos += static_cast<std::size_t>((fh.column_bits + 63) / 64) * 8;
    deltas.push_back(
        assemble_frame(name, h, fh, std::move(offsets), std::move(columns)));
  }
  return DifferentialTcsr::from_parts(static_cast<graph::VertexId>(h.num_nodes),
                                      std::move(deltas));
}

}  // namespace

DifferentialTcsr load_tcsr(const std::string& path) {
  File f(path, "rb");
  return load_from(f, path);
}

DifferentialTcsr load_tcsr_stream(std::FILE* stream, const std::string& name) {
  File f(stream, name);
  return load_from(f, name);
}

DifferentialTcsr map_tcsr_bytes(std::span<const std::byte> bytes,
                                const std::string& name) {
  PCQ_CHECK_MSG(reinterpret_cast<std::uintptr_t>(bytes.data()) % 8 == 0,
                "mapped TCSR image must be 8-byte aligned");
  if (bytes.size() < sizeof(FileHeader))
    throw IoError(name, "truncated header");
  FileHeader h{};
  std::memcpy(&h, bytes.data(), sizeof h);
  if (!validate_header(name, h))
    throw IoError(name, "TCSR v2 layout is not mappable (unaligned payload)");

  std::vector<csr::BitPackedCsr> deltas;
  deltas.reserve(std::min<std::uint64_t>(h.num_frames, 1 << 16));
  std::size_t pos = sizeof h;
  const auto words_at = [&](std::size_t at, std::size_t count) {
    return std::span<const std::uint64_t>(
        reinterpret_cast<const std::uint64_t*>(bytes.data() + at), count);
  };
  for (std::uint64_t t = 0; t < h.num_frames; ++t) {
    if (pos + sizeof(FrameHeader) > bytes.size())
      throw IoError(name, "truncated frame header");
    FrameHeader fh{};
    std::memcpy(&fh, bytes.data() + pos, sizeof fh);
    validate_frame(name, h, fh);
    // Bit counts were just validated as products of bounded factors, so
    // the word counts and running position cannot overflow.
    const auto owords = static_cast<std::size_t>((fh.offset_bits + 63) / 64);
    const auto cwords = static_cast<std::size_t>((fh.column_bits + 63) / 64);
    const std::size_t opos = align_up(pos + sizeof fh);
    const std::size_t cpos = align_up(opos + owords * 8);
    if (cpos + cwords * 8 > bytes.size())
      throw IoError(name, "truncated TCSR file");
    auto offsets = pcq::bits::FixedWidthArray::view(
        words_at(opos, owords), static_cast<std::size_t>(h.num_nodes) + 1,
        fh.offset_width);
    auto columns = pcq::bits::FixedWidthArray::view(
        words_at(cpos, cwords), static_cast<std::size_t>(fh.num_edges),
        fh.column_width);
    deltas.push_back(
        assemble_frame(name, h, fh, std::move(offsets), std::move(columns)));
    pos = cpos + cwords * 8;
  }
  return DifferentialTcsr::from_parts(static_cast<graph::VertexId>(h.num_nodes),
                                      std::move(deltas));
}

MappedTcsr map_tcsr(const std::string& path) {
  MappedTcsr out;
  if (!pcq::io::MappedFile::supported()) {
    out.tcsr = load_tcsr(path);
    return out;
  }
  pcq::io::MappedFile file = pcq::io::MappedFile::open(path);
  // v2 files have unaligned payloads: fall back to the buffered loader
  // rather than refusing files older releases wrote.
  if (file.size() >= 8 && std::memcmp(file.data(), kMagicV2, 8) == 0) {
    file = pcq::io::MappedFile();
    out.tcsr = load_tcsr(path);
    return out;
  }
  out.tcsr = map_tcsr_bytes(file.bytes(), path);
  file.advise_random();
  out.file = std::move(file);
  out.mapped = true;
  return out;
}

}  // namespace pcq::tcsr
