#include "tcsr/serialize.hpp"

#include <cstdio>
#include <cstring>
#include <vector>

#include "bits/packed_array.hpp"
#include "util/check.hpp"

namespace pcq::tcsr {

namespace {

constexpr char kMagic[8] = {'P', 'C', 'Q', 'T', 'C', 'S', 'R', '1'};

struct FileHeader {
  char magic[8];
  std::uint64_t num_nodes;
  std::uint64_t num_frames;
};

struct FrameHeader {
  std::uint64_t num_edges;
  std::uint32_t offset_width;
  std::uint32_t column_width;
  std::uint64_t offset_bits;
  std::uint64_t column_bits;
};

class File {
 public:
  File(const std::string& path, const char* mode)
      : f_(std::fopen(path.c_str(), mode)) {
    PCQ_CHECK_MSG(f_ != nullptr, "cannot open TCSR file");
  }
  ~File() {
    if (f_) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  std::FILE* get() const { return f_; }

 private:
  std::FILE* f_;
};

void write_bits(std::FILE* f, const pcq::bits::BitVector& bits) {
  const auto words = bits.words();
  if (!words.empty())
    PCQ_CHECK(std::fwrite(words.data(), 8, words.size(), f) == words.size());
}

pcq::bits::BitVector read_bits(std::FILE* f, std::uint64_t nbits) {
  std::vector<std::uint64_t> words((nbits + 63) / 64);
  if (!words.empty())
    PCQ_CHECK_MSG(std::fread(words.data(), 8, words.size(), f) == words.size(),
                  "truncated TCSR file");
  return pcq::bits::BitVector::from_words(std::move(words), nbits);
}

}  // namespace

void save_tcsr(const DifferentialTcsr& tcsr, const std::string& path) {
  File f(path, "wb");
  FileHeader h{};
  std::memcpy(h.magic, kMagic, 8);
  h.num_nodes = tcsr.num_nodes();
  h.num_frames = tcsr.num_frames();
  PCQ_CHECK(std::fwrite(&h, sizeof h, 1, f.get()) == 1);
  for (graph::TimeFrame t = 0; t < tcsr.num_frames(); ++t) {
    const csr::BitPackedCsr& d = tcsr.delta(t);
    FrameHeader fh{};
    fh.num_edges = d.num_edges();
    fh.offset_width = d.offset_bits();
    fh.column_width = d.column_bits();
    fh.offset_bits = d.packed_offsets().bits().size();
    fh.column_bits = d.packed_columns().bits().size();
    PCQ_CHECK(std::fwrite(&fh, sizeof fh, 1, f.get()) == 1);
    write_bits(f.get(), d.packed_offsets().bits());
    write_bits(f.get(), d.packed_columns().bits());
  }
}

DifferentialTcsr load_tcsr(const std::string& path) {
  File f(path, "rb");
  FileHeader h{};
  PCQ_CHECK_MSG(std::fread(&h, sizeof h, 1, f.get()) == 1, "truncated header");
  PCQ_CHECK_MSG(std::memcmp(h.magic, kMagic, 8) == 0, "bad TCSR magic");

  std::vector<csr::BitPackedCsr> deltas;
  deltas.reserve(h.num_frames);
  for (std::uint64_t t = 0; t < h.num_frames; ++t) {
    FrameHeader fh{};
    PCQ_CHECK_MSG(std::fread(&fh, sizeof fh, 1, f.get()) == 1,
                  "truncated frame header");
    auto offsets = pcq::bits::FixedWidthArray::from_bits(
        read_bits(f.get(), fh.offset_bits),
        static_cast<std::size_t>(h.num_nodes) + 1, fh.offset_width);
    auto columns = pcq::bits::FixedWidthArray::from_bits(
        read_bits(f.get(), fh.column_bits),
        static_cast<std::size_t>(fh.num_edges), fh.column_width);
    deltas.push_back(csr::BitPackedCsr::from_parts(
        static_cast<graph::VertexId>(h.num_nodes),
        static_cast<std::size_t>(fh.num_edges), std::move(offsets),
        std::move(columns)));
  }
  return DifferentialTcsr::from_parts(static_cast<graph::VertexId>(h.num_nodes),
                                      std::move(deltas));
}

}  // namespace pcq::tcsr
