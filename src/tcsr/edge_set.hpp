// SortedEdgeSet — a set of edges under symmetric difference.
//
// Section IV defines activity by parity: "if an edge appears an even
// number of times, the edge is set to be inactive, and if the count is
// odd, then the edge is set to be active". Combining two frames' edge sets
// under that rule is exactly symmetric difference (XOR of indicator
// vectors), which is associative with the empty set as identity — so the
// paper's chunked prefix-sum schedule (Algorithm 1) applies verbatim with
// + replaced by XOR. That instantiation is what reconstructs snapshots
// from the differential TCSR in parallel.
#pragma once

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "graph/types.hpp"

namespace pcq::tcsr {

class SortedEdgeSet {
 public:
  /// The identity element: the empty set.
  SortedEdgeSet() = default;

  /// Takes ownership of a (u, v)-sorted, duplicate-free edge vector.
  static SortedEdgeSet from_sorted(std::vector<graph::Edge> edges);

  /// Sorts and parity-cancels an arbitrary edge multiset: pairs of equal
  /// edges annihilate (even count -> absent, odd -> present once).
  static SortedEdgeSet from_multiset(std::vector<graph::Edge> edges);

  [[nodiscard]] std::size_t size() const { return edges_.size(); }
  [[nodiscard]] bool empty() const { return edges_.empty(); }
  [[nodiscard]] std::span<const graph::Edge> edges() const { return edges_; }
  [[nodiscard]] bool contains(graph::Edge e) const {
    return std::binary_search(edges_.begin(), edges_.end(), e);
  }

  /// Releases the underlying sorted vector.
  [[nodiscard]] std::vector<graph::Edge> take() && { return std::move(edges_); }

  friend bool operator==(const SortedEdgeSet&, const SortedEdgeSet&) = default;

 private:
  std::vector<graph::Edge> edges_;
};

/// Symmetric difference: edges present in exactly one of a, b. A single
/// sorted-merge pass, O(|a| + |b|).
SortedEdgeSet symmetric_difference(const SortedEdgeSet& a, const SortedEdgeSet& b);

/// Function object usable as the Op of par::chunked_inclusive_scan.
struct SymmetricDifferenceOp {
  SortedEdgeSet operator()(const SortedEdgeSet& a, const SortedEdgeSet& b) const {
    return symmetric_difference(a, b);
  }
};

}  // namespace pcq::tcsr
