#include "graph/transforms.hpp"

#include <algorithm>
#include <numeric>

#include "par/parallel_for.hpp"
#include "par/radix_sort.hpp"
#include "util/check.hpp"

namespace pcq::graph {

EdgeList transpose(const EdgeList& list, int num_threads) {
  std::vector<Edge> reversed(list.size());
  const auto edges = list.edges();
  pcq::par::parallel_for(edges.size(), num_threads, [&](std::size_t i) {
    reversed[i] = {edges[i].v, edges[i].u};
  });
  return EdgeList(std::move(reversed));
}

RelabelResult relabel_by_degree(const EdgeList& list, VertexId num_nodes,
                                int num_threads) {
  if (num_nodes == 0) num_nodes = list.num_nodes();
  const auto edges = list.edges();

  // Out-degree histogram (input need not be sorted, so run-counting does
  // not apply; per-thread histograms avoid atomics).
  std::vector<std::uint32_t> degree(num_nodes, 0);
  for (const Edge& e : edges) ++degree[e.u];

  // Sort node ids by (degree desc, id asc) via a single radix pass on the
  // packed key (~degree, id).
  std::vector<std::uint64_t> keyed(num_nodes);
  pcq::par::parallel_for(num_nodes, num_threads, [&](std::size_t u) {
    keyed[u] = (static_cast<std::uint64_t>(~degree[u]) << 32) | u;
  });
  pcq::par::parallel_radix_sort_u64(keyed, num_threads);

  RelabelResult result;
  result.old_id.resize(num_nodes);
  result.new_id.resize(num_nodes);
  pcq::par::parallel_for(num_nodes, num_threads, [&](std::size_t rank) {
    const auto old_id = static_cast<VertexId>(keyed[rank] & 0xffffffffu);
    result.old_id[rank] = old_id;
    result.new_id[old_id] = static_cast<VertexId>(rank);
  });

  std::vector<Edge> rewritten(edges.size());
  pcq::par::parallel_for(edges.size(), num_threads, [&](std::size_t i) {
    rewritten[i] = {result.new_id[edges[i].u], result.new_id[edges[i].v]};
  });
  result.list = EdgeList(std::move(rewritten));
  return result;
}

EdgeList induced_subgraph(const EdgeList& list,
                          std::span<const std::uint8_t> keep, int num_threads,
                          std::vector<VertexId>* old_id_out) {
  // Dense renumbering of the kept nodes (prefix sum over the keep mask).
  std::vector<VertexId> new_id(keep.size(), 0);
  VertexId next = 0;
  std::vector<VertexId> old_id;
  for (std::size_t u = 0; u < keep.size(); ++u) {
    if (keep[u]) {
      new_id[u] = next++;
      old_id.push_back(static_cast<VertexId>(u));
    }
  }
  if (old_id_out) *old_id_out = std::move(old_id);

  // Parallel filter: per-chunk survivors, then concatenate.
  const auto edges = list.edges();
  const auto p = static_cast<std::size_t>(pcq::par::clamp_threads(num_threads));
  const std::size_t chunks = pcq::par::num_nonempty_chunks(edges.size(), p);
  std::vector<std::vector<Edge>> kept(chunks == 0 ? 1 : chunks);
  pcq::par::parallel_for_chunks(
      edges.size(), static_cast<int>(p), [&](std::size_t c, pcq::par::ChunkRange r) {
        auto& local = kept[c];
        for (std::size_t i = r.begin; i < r.end; ++i) {
          const Edge& e = edges[i];
          PCQ_DCHECK(e.u < keep.size() && e.v < keep.size());
          if (keep[e.u] && keep[e.v])
            local.push_back({new_id[e.u], new_id[e.v]});
        }
      });

  EdgeList out;
  std::size_t total = 0;
  for (const auto& local : kept) total += local.size();
  out.reserve(total);
  for (const auto& local : kept)
    for (const Edge& e : local) out.push_back(e);
  return out;
}

}  // namespace pcq::graph
