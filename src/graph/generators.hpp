// Synthetic graph generators.
//
// The paper evaluates on four public SNAP graphs (LiveJournal, Pokec,
// Orkut, WebNotreDame). This environment has no network access, so the
// benchmark harnesses use deterministic generators whose presets match each
// graph's node/edge counts and degree skew (see DESIGN.md §1.3). SNAP text
// files, if available, can be loaded instead via graph/io.hpp — the rest of
// the pipeline is identical.
//
// All generators are seeded and deterministic; R-MAT and Erdős–Rényi draw
// each edge from a stateless per-index stream, so results are independent
// of thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace pcq::graph {

/// G(n, m): m edges sampled uniformly (with replacement) among n nodes.
/// Self-loops are excluded. Parallel.
EdgeList erdos_renyi(VertexId n, std::size_t m, std::uint64_t seed,
                     int num_threads);

/// R-MAT (Chakrabarti et al.): recursive quadrant sampling with
/// probabilities (a, b, c, d), a + b + c + d == 1. Produces the heavy-tailed
/// degree distribution characteristic of social networks. Parallel.
EdgeList rmat(VertexId n, std::size_t m, double a, double b, double c,
              std::uint64_t seed, int num_threads);

/// Barabási–Albert preferential attachment: each new node attaches
/// `edges_per_node` edges to endpoints sampled uniformly from the existing
/// edge multiset (degree-proportional). Inherently sequential.
EdgeList barabasi_albert(VertexId n, unsigned edges_per_node,
                         std::uint64_t seed);

/// Watts–Strogatz small world: ring lattice with `k` neighbours per side,
/// each edge rewired with probability `beta`. Parallel over nodes.
EdgeList watts_strogatz(VertexId n, unsigned k, double beta,
                        std::uint64_t seed, int num_threads);

/// Planted partition (stochastic block model with equal blocks): n nodes
/// in `blocks` equal communities; each of the m edges is intra-community
/// with probability `p_intra`, otherwise between two random communities.
/// Ground truth for community detection: node v belongs to block
/// v % blocks. Parallel, stateless per edge.
EdgeList planted_partition(VertexId n, std::size_t m, unsigned blocks,
                           double p_intra, std::uint64_t seed,
                           int num_threads);

/// Time-evolving workload for Section IV: `events` (u, v, t) triplets over
/// `frames` time-frames. Edges are drawn R-MAT-skewed; repeated draws of
/// the same pair across frames produce the activate/deactivate toggles the
/// differential TCSR compresses. Output is (t, u, v)-sorted as §IV assumes.
TemporalEdgeList evolving_graph(VertexId n, std::size_t events,
                                TimeFrame frames, std::uint64_t seed,
                                int num_threads);

/// Churn-model history: `initial_edges` R-MAT edges appear in frame 0,
/// then each later frame toggles `churn_per_frame` edges — a fraction
/// `deletion_bias` of them re-toggles of currently live edges (deletions),
/// the rest fresh additions. This matches the "mostly persistent edges,
/// small per-frame delta" shape of real social histories, where the
/// differential TCSR's advantage over per-frame snapshots is largest
/// (§IV's motivation). Sequential across frames (the live set is stateful)
/// but deterministic; output is (t, u, v)-sorted.
TemporalEdgeList evolving_graph_churn(VertexId n, std::size_t initial_edges,
                                      TimeFrame frames,
                                      std::size_t churn_per_frame,
                                      double deletion_bias,
                                      std::uint64_t seed);

// --- Presets shaped like the paper's evaluation graphs ---------------------

struct GraphPreset {
  std::string name;        ///< Paper's name for the graph.
  VertexId nodes;          ///< Full-scale node count (Table II).
  std::size_t edges;       ///< Full-scale edge count (Table II).
  double rmat_a, rmat_b, rmat_c;  ///< Skew parameters.
};

/// The four Table II graphs, full scale.
const std::vector<GraphPreset>& paper_presets();

/// Looks a preset up by (case-insensitive) name; aborts if unknown.
const GraphPreset& preset_by_name(const std::string& name);

/// Instantiates a preset at `scale` in (0, 1]: node and edge counts are
/// multiplied by `scale`. The generated list is source-sorted (the paper's
/// input precondition) with duplicates kept — SNAP lists may also repeat
/// edges, and CSR construction cost depends on list length, not
/// distinctness.
EdgeList make_preset_graph(const GraphPreset& preset, double scale,
                           std::uint64_t seed, int num_threads);

}  // namespace pcq::graph
