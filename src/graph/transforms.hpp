// Whole-graph transforms on edge lists.
//
// These are the preprocessing steps real pipelines run before compression:
// transposition (in-link queries, PageRank), degree-descending relabeling
// (the locality trick behind WebGraph-class compressors — hubs get small
// ids, shrinking the fixed-width column array and tightening gap codes),
// and induced-subgraph extraction (community / ego-network analysis).
// All are parallel and deterministic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace pcq::graph {

/// Reverses every edge: (u, v) -> (v, u). Output is NOT sorted.
EdgeList transpose(const EdgeList& list, int num_threads);

/// Result of a relabeling: the rewritten list plus the permutation that
/// produced it (new_id[old] = position of old id in the new numbering).
struct RelabelResult {
  EdgeList list;                      ///< edges with ids rewritten, unsorted
  std::vector<VertexId> new_id;       ///< old id -> new id
  std::vector<VertexId> old_id;       ///< new id -> old id (inverse)
};

/// Renumbers nodes in order of non-increasing out-degree (ties broken by
/// old id, so the result is deterministic). With heavy-tailed graphs this
/// concentrates columns near 0, which both narrows the packed jA width for
/// subgraphs and improves gap-coded baselines.
RelabelResult relabel_by_degree(const EdgeList& list, VertexId num_nodes,
                                int num_threads);

/// Keeps only edges whose BOTH endpoints satisfy keep[node] != 0, and
/// compacts the surviving node ids to a dense [0, k) range. Returns the
/// compacted list; `old_id_out` (optional) receives the new->old mapping.
EdgeList induced_subgraph(const EdgeList& list, std::span<const std::uint8_t> keep,
                          int num_threads,
                          std::vector<VertexId>* old_id_out = nullptr);

}  // namespace pcq::graph
