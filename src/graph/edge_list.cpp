#include "graph/edge_list.hpp"

#include <algorithm>

#include "par/radix_sort.hpp"
#include "par/reduce.hpp"
#include "par/sort.hpp"

namespace pcq::graph {

VertexId EdgeList::num_nodes() const {
  if (edges_.empty()) return 0;
  VertexId max_id = 0;
  for (const Edge& e : edges_) max_id = std::max({max_id, e.u, e.v});
  return max_id + 1;
}

std::size_t EdgeList::text_size_bytes() const {
  auto digits = [](VertexId v) {
    std::size_t d = 1;
    while (v >= 10) {
      v /= 10;
      ++d;
    }
    return d;
  };
  std::size_t bytes = 0;
  for (const Edge& e : edges_) bytes += digits(e.u) + digits(e.v) + 2;
  return bytes;
}

void EdgeList::sort(int num_threads) {
  pcq::par::parallel_sort(std::span<Edge>(edges_), num_threads);
}

void EdgeList::sort_radix(int num_threads) {
  pcq::par::parallel_radix_sort(
      std::span<Edge>(edges_), num_threads, [](const Edge& e) {
        return (static_cast<std::uint64_t>(e.u) << 32) | e.v;
      });
}

bool EdgeList::is_sorted() const {
  return std::is_sorted(edges_.begin(), edges_.end());
}

void EdgeList::dedupe() {
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
}

void EdgeList::remove_self_loops() {
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [](const Edge& e) { return e.u == e.v; }),
               edges_.end());
}

void EdgeList::symmetrize() {
  const std::size_t n = edges_.size();
  edges_.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i)
    edges_.push_back({edges_[i].v, edges_[i].u});
}

void EdgeList::to_upper_triangle() {
  for (Edge& e : edges_)
    if (e.u > e.v) std::swap(e.u, e.v);
  std::sort(edges_.begin(), edges_.end());
  dedupe();
  remove_self_loops();
}

VertexId TemporalEdgeList::num_nodes() const {
  if (edges_.empty()) return 0;
  VertexId max_id = 0;
  for (const TemporalEdge& e : edges_) max_id = std::max({max_id, e.u, e.v});
  return max_id + 1;
}

TimeFrame TemporalEdgeList::num_frames() const {
  if (edges_.empty()) return 0;
  TimeFrame max_t = 0;
  for (const TemporalEdge& e : edges_) max_t = std::max(max_t, e.t);
  return max_t + 1;
}

void TemporalEdgeList::sort(int num_threads) {
  pcq::par::parallel_sort(std::span<TemporalEdge>(edges_), num_threads,
                          TimeSourceOrder{});
}

bool TemporalEdgeList::is_sorted() const {
  return std::is_sorted(edges_.begin(), edges_.end(), TimeSourceOrder{});
}

}  // namespace pcq::graph
