#include "graph/generators.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "par/parallel_for.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace pcq::graph {

using pcq::util::SplitMix64;

EdgeList erdos_renyi(VertexId n, std::size_t m, std::uint64_t seed,
                     int num_threads) {
  PCQ_CHECK(n >= 2);
  std::vector<Edge> edges(m);
  pcq::par::parallel_for(m, num_threads, [&](std::size_t i) {
    SplitMix64 rng = SplitMix64(seed).split(i);
    VertexId u = static_cast<VertexId>(rng.next_below(n));
    VertexId v = static_cast<VertexId>(rng.next_below(n));
    while (v == u) v = static_cast<VertexId>(rng.next_below(n));
    edges[i] = {u, v};
  });
  return EdgeList(std::move(edges));
}

namespace {

/// One R-MAT edge: descend the adjacency matrix quadrant tree levels times.
Edge rmat_edge(VertexId n, unsigned levels, double a, double b, double c,
               SplitMix64& rng) {
  std::uint64_t u = 0, v = 0;
  for (unsigned level = 0; level < levels; ++level) {
    const double r = rng.next_double();
    u <<= 1;
    v <<= 1;
    if (r < a) {
      // top-left: no bits set
    } else if (r < a + b) {
      v |= 1;  // top-right
    } else if (r < a + b + c) {
      u |= 1;  // bottom-left
    } else {
      u |= 1;  // bottom-right
      v |= 1;
    }
  }
  // The quadrant tree spans the next power of two >= n; fold overflowing
  // ids back into range. The fold is deterministic and preserves skew
  // (low ids stay hot).
  return {static_cast<VertexId>(u % n), static_cast<VertexId>(v % n)};
}

unsigned levels_for(VertexId n) {
  unsigned levels = 1;
  while ((std::uint64_t{1} << levels) < n) ++levels;
  return levels;
}

}  // namespace

EdgeList rmat(VertexId n, std::size_t m, double a, double b, double c,
              std::uint64_t seed, int num_threads) {
  PCQ_CHECK(n >= 2);
  PCQ_CHECK_MSG(a + b + c <= 1.0 + 1e-9, "rmat probabilities exceed 1");
  const unsigned levels = levels_for(n);
  std::vector<Edge> edges(m);
  pcq::par::parallel_for(m, num_threads, [&](std::size_t i) {
    SplitMix64 rng = SplitMix64(seed).split(i);
    Edge e = rmat_edge(n, levels, a, b, c, rng);
    while (e.u == e.v) e = rmat_edge(n, levels, a, b, c, rng);
    edges[i] = e;
  });
  return EdgeList(std::move(edges));
}

EdgeList barabasi_albert(VertexId n, unsigned edges_per_node,
                         std::uint64_t seed) {
  PCQ_CHECK(n >= 2);
  PCQ_CHECK(edges_per_node >= 1);
  SplitMix64 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * edges_per_node);

  // Seed clique-free start: node 1 connects to node 0.
  edges.push_back({1, 0});
  for (VertexId u = 2; u < n; ++u) {
    for (unsigned j = 0; j < edges_per_node; ++j) {
      // Sampling a uniform endpoint of a uniform existing edge selects a
      // node with probability proportional to its degree.
      const std::size_t k = rng.next_below(2 * edges.size());
      const Edge& pick = edges[k / 2];
      VertexId target = (k % 2 == 0) ? pick.u : pick.v;
      if (target == u) target = pick.u == u ? pick.v : pick.u;
      if (target == u) target = 0;  // degenerate early self-edge fallback
      edges.push_back({u, target});
    }
  }
  return EdgeList(std::move(edges));
}

EdgeList watts_strogatz(VertexId n, unsigned k, double beta,
                        std::uint64_t seed, int num_threads) {
  PCQ_CHECK(n >= 2 * k + 2);
  std::vector<Edge> edges(static_cast<std::size_t>(n) * k);
  pcq::par::parallel_for(n, num_threads, [&](std::size_t ui) {
    const auto u = static_cast<VertexId>(ui);
    SplitMix64 rng = SplitMix64(seed).split(ui);
    for (unsigned j = 1; j <= k; ++j) {
      VertexId v = static_cast<VertexId>((u + j) % n);
      if (rng.next_bool(beta)) {
        v = static_cast<VertexId>(rng.next_below(n));
        while (v == u) v = static_cast<VertexId>(rng.next_below(n));
      }
      edges[ui * k + (j - 1)] = {u, v};
    }
  });
  return EdgeList(std::move(edges));
}

EdgeList planted_partition(VertexId n, std::size_t m, unsigned blocks,
                           double p_intra, std::uint64_t seed,
                           int num_threads) {
  PCQ_CHECK(blocks >= 1 && n >= 2 * blocks);
  const VertexId per_block = n / blocks;  // block b holds {v : v % blocks == b}
  std::vector<Edge> edges(m);
  pcq::par::parallel_for(m, num_threads, [&](std::size_t i) {
    SplitMix64 rng = SplitMix64(seed).split(i);
    VertexId u, v;
    if (rng.next_bool(p_intra)) {
      // Intra-community: pick a block, then two members.
      const auto b = static_cast<VertexId>(rng.next_below(blocks));
      u = static_cast<VertexId>(rng.next_below(per_block)) * blocks + b;
      v = static_cast<VertexId>(rng.next_below(per_block)) * blocks + b;
      while (v == u)
        v = static_cast<VertexId>(rng.next_below(per_block)) * blocks + b;
    } else {
      u = static_cast<VertexId>(rng.next_below(n));
      v = static_cast<VertexId>(rng.next_below(n));
      while (v == u) v = static_cast<VertexId>(rng.next_below(n));
    }
    edges[i] = {u, v};
  });
  return EdgeList(std::move(edges));
}

TemporalEdgeList evolving_graph(VertexId n, std::size_t events,
                                TimeFrame frames, std::uint64_t seed,
                                int num_threads) {
  PCQ_CHECK(n >= 2);
  PCQ_CHECK(frames >= 1);
  const unsigned levels = levels_for(n);
  std::vector<TemporalEdge> edges(events);
  pcq::par::parallel_for(events, num_threads, [&](std::size_t i) {
    SplitMix64 rng = SplitMix64(seed).split(i);
    Edge e = rmat_edge(n, levels, 0.57, 0.19, 0.19, rng);
    while (e.u == e.v) e = rmat_edge(n, levels, 0.57, 0.19, 0.19, rng);
    const auto t = static_cast<TimeFrame>(rng.next_below(frames));
    edges[i] = {e.u, e.v, t};
  });
  TemporalEdgeList list(std::move(edges));
  list.sort(num_threads);
  return list;
}

const std::vector<GraphPreset>& paper_presets() {
  // Node/edge counts from Table II; R-MAT skew (0.57, 0.19, 0.19, 0.05) is
  // the standard social-network parameterisation (Graph500). WebNotreDame
  // is a web crawl: slightly stronger diagonal skew.
  static const std::vector<GraphPreset> presets = {
      {"LiveJournal", 4'847'571, 68'993'773, 0.57, 0.19, 0.19},
      {"Pokec", 1'632'803, 30'622'564, 0.57, 0.19, 0.19},
      {"Orkut", 3'072'627, 117'185'083, 0.57, 0.19, 0.19},
      {"WebNotreDame", 325'729, 1'497'134, 0.60, 0.18, 0.17},
  };
  return presets;
}

const GraphPreset& preset_by_name(const std::string& name) {
  auto lower = [](std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    return s;
  };
  for (const GraphPreset& p : paper_presets())
    if (lower(p.name) == lower(name)) return p;
  PCQ_CHECK_MSG(false, "unknown graph preset");
  __builtin_unreachable();
}

EdgeList make_preset_graph(const GraphPreset& preset, double scale,
                           std::uint64_t seed, int num_threads) {
  PCQ_CHECK_MSG(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
  const auto n = std::max<VertexId>(
      2, static_cast<VertexId>(std::llround(preset.nodes * scale)));
  const auto m = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             static_cast<double>(preset.edges) * scale)));
  EdgeList list =
      rmat(n, m, preset.rmat_a, preset.rmat_b, preset.rmat_c, seed, num_threads);
  list.sort(num_threads);
  return list;
}

}  // namespace pcq::graph
