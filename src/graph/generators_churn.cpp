// evolving_graph_churn — split from generators.cpp because it maintains a
// live-edge set across frames (stateful, sequential) unlike the other
// generators' stateless per-index draws.
#include <algorithm>
#include <vector>

#include "graph/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace pcq::graph {

using pcq::util::SplitMix64;

TemporalEdgeList evolving_graph_churn(VertexId n, std::size_t initial_edges,
                                      TimeFrame frames,
                                      std::size_t churn_per_frame,
                                      double deletion_bias,
                                      std::uint64_t seed) {
  PCQ_CHECK(n >= 2);
  PCQ_CHECK(frames >= 1);
  PCQ_CHECK(deletion_bias >= 0.0 && deletion_bias <= 1.0);
  SplitMix64 rng(seed);

  auto draw_edge = [&] {
    // Mild skew: square one coordinate's distribution toward low ids so
    // the live set has hub structure without needing the full R-MAT walk.
    VertexId u = static_cast<VertexId>(
        rng.next_below(n) * rng.next_below(n) / std::max<VertexId>(1, n));
    VertexId v = static_cast<VertexId>(rng.next_below(n));
    while (v == u) v = static_cast<VertexId>(rng.next_below(n));
    return Edge{u, v};
  };

  std::vector<TemporalEdge> events;
  events.reserve(initial_edges + static_cast<std::size_t>(frames) * churn_per_frame);

  // `live` doubles as a sampling pool for deletions; lazy membership via
  // sorting at frame boundaries is avoided by tolerating duplicates in
  // the pool and checking liveness parity when sampling.
  std::vector<Edge> live;
  live.reserve(initial_edges);

  for (std::size_t i = 0; i < initial_edges; ++i) {
    const Edge e = draw_edge();
    events.push_back({e.u, e.v, 0});
    live.push_back(e);
  }
  // Initial duplicates cancel pairwise in the differential pipeline; drop
  // them from the live pool so deletions target genuinely live edges.
  std::sort(live.begin(), live.end());
  std::vector<Edge> dedup;
  for (std::size_t i = 0; i < live.size();) {
    std::size_t j = i;
    while (j < live.size() && live[j] == live[i]) ++j;
    if ((j - i) % 2 == 1) dedup.push_back(live[i]);
    i = j;
  }
  live.swap(dedup);

  for (TimeFrame t = 1; t < frames; ++t) {
    for (std::size_t c = 0; c < churn_per_frame; ++c) {
      const bool remove = !live.empty() && rng.next_bool(deletion_bias);
      if (remove) {
        const std::size_t k = rng.next_below(live.size());
        const Edge e = live[k];
        live[k] = live.back();
        live.pop_back();
        events.push_back({e.u, e.v, t});
      } else {
        const Edge e = draw_edge();
        // A duplicate addition of a live edge would be a deletion; accept
        // the rare flip — parity semantics make it a valid deletion event
        // — but keep the pool consistent.
        const auto it = std::find(live.begin(), live.end(), e);
        if (it != live.end()) {
          *it = live.back();
          live.pop_back();
        } else {
          live.push_back(e);
        }
        events.push_back({e.u, e.v, t});
      }
    }
  }

  TemporalEdgeList list(std::move(events));
  list.sort(0);
  return list;
}

}  // namespace pcq::graph
