// Fundamental graph value types shared across the library.
#pragma once

#include <compare>
#include <cstdint>

namespace pcq::graph {

/// Node identifier. The paper's largest evaluation graph (LiveJournal) has
/// 4.85M nodes, far inside 32 bits; CSR offsets are 64-bit (edge counts at
/// full Orkut scale exceed 2^26 and sums of degrees must never overflow).
using VertexId = std::uint32_t;

/// Discrete time-frame index of a time-evolving graph (Section IV).
using TimeFrame = std::uint32_t;

/// A directed edge u -> v. Undirected graphs store both directions (or the
/// upper triangle only, as in the paper's Figure 1 example — see
/// EdgeList::to_upper_triangle).
struct Edge {
  VertexId u = 0;
  VertexId v = 0;

  friend constexpr auto operator<=>(const Edge&, const Edge&) = default;
};

/// A temporal event: edge (u, v) toggles state at time-frame t. Per
/// Section IV, an edge that has appeared an odd number of times in frames
/// <= t is active at t; an even count means it has been deleted again.
struct TemporalEdge {
  VertexId u = 0;
  VertexId v = 0;
  TimeFrame t = 0;

  friend constexpr auto operator<=>(const TemporalEdge&, const TemporalEdge&) = default;
};

/// Ordering used by the temporal pipeline: time-frame first, then source,
/// then destination — the paper's §IV input assumption ("sorted with
/// respect to the time-frames and then sorted by node numbers").
struct TimeSourceOrder {
  constexpr bool operator()(const TemporalEdge& a, const TemporalEdge& b) const {
    if (a.t != b.t) return a.t < b.t;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  }
};

}  // namespace pcq::graph
