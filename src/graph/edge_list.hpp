// EdgeList — the raw input representation every pipeline starts from.
//
// Matches the paper's input model: a flat list of (u, v) pairs, possibly
// on disk in SNAP text format, which is sorted by source node before CSR
// construction. Size accounting matches the paper's Table II "EdgeList
// Size" column (8 bytes per edge: two 32-bit endpoints).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace pcq::graph {

class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(std::vector<Edge> edges) : edges_(std::move(edges)) {}

  [[nodiscard]] std::size_t size() const { return edges_.size(); }
  [[nodiscard]] bool empty() const { return edges_.empty(); }
  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }
  [[nodiscard]] std::span<Edge> mutable_edges() { return edges_; }

  void push_back(Edge e) { edges_.push_back(e); }
  void reserve(std::size_t n) { edges_.reserve(n); }

  /// 1 + the largest vertex id referenced (0 for an empty list).
  [[nodiscard]] VertexId num_nodes() const;

  /// In-memory footprint of the raw binary pairs (8 bytes/edge).
  [[nodiscard]] std::size_t size_bytes() const { return edges_.size() * sizeof(Edge); }

  /// Exact on-disk size of the list in SNAP text format ("u\tv\n" per
  /// edge) — the unit of Table II's "EdgeList Size" column (~16 bytes/edge
  /// on the paper's graphs).
  [[nodiscard]] std::size_t text_size_bytes() const;

  /// Sorts by (u, v) with `num_threads` — the precondition of the parallel
  /// degree computation (Algorithm 2 requires source-sorted chunks).
  /// Comparison-based parallel merge sort.
  void sort(int num_threads);

  /// Same ordering via parallel radix sort on the packed (u, v) key —
  /// typically faster on large lists (see bench_sort); identical result.
  void sort_radix(int num_threads);

  /// True if sorted by (u, v).
  [[nodiscard]] bool is_sorted() const;

  /// Removes duplicate edges (requires sorted input).
  void dedupe();

  /// Removes self-loops u == u.
  void remove_self_loops();

  /// Adds the reverse of every edge (directed list -> undirected adjacency).
  /// Does not sort or dedupe.
  void symmetrize();

  /// Keeps only edges with u < v — the paper's Figure 1 stores the upper
  /// triangle of the symmetric adjacency matrix.
  void to_upper_triangle();

 private:
  std::vector<Edge> edges_;
};

/// Flat list of temporal events, time-sorted per §IV before TCSR builds.
class TemporalEdgeList {
 public:
  TemporalEdgeList() = default;
  explicit TemporalEdgeList(std::vector<TemporalEdge> edges)
      : edges_(std::move(edges)) {}

  [[nodiscard]] std::size_t size() const { return edges_.size(); }
  [[nodiscard]] bool empty() const { return edges_.empty(); }
  [[nodiscard]] std::span<const TemporalEdge> edges() const { return edges_; }

  void push_back(TemporalEdge e) { edges_.push_back(e); }
  void reserve(std::size_t n) { edges_.reserve(n); }

  [[nodiscard]] VertexId num_nodes() const;

  /// 1 + the largest time-frame referenced (0 for an empty list).
  [[nodiscard]] TimeFrame num_frames() const;

  [[nodiscard]] std::size_t size_bytes() const {
    return edges_.size() * sizeof(TemporalEdge);
  }

  /// Sorts by (t, u, v) — the §IV input assumption.
  void sort(int num_threads);

  [[nodiscard]] bool is_sorted() const;

 private:
  std::vector<TemporalEdge> edges_;
};

}  // namespace pcq::graph
