#include "graph/webgraph.hpp"

#include <algorithm>

#include "bits/codecs.hpp"
#include "par/chunking.hpp"
#include "par/parallel_for.hpp"
#include "par/threads.hpp"
#include "util/check.hpp"

namespace pcq::graph {

using pcq::bits::BitVector;

GapZetaGraph GapZetaGraph::build_from_sorted(const EdgeList& list,
                                             VertexId num_nodes, unsigned k,
                                             int num_threads) {
  PCQ_DCHECK(list.is_sorted());
  PCQ_CHECK(k >= 1 && k <= 16);
  if (num_nodes == 0) num_nodes = list.num_nodes();
  const auto edges = list.edges();

  GapZetaGraph g;
  g.k_ = k;
  g.num_nodes_ = num_nodes;
  g.num_edges_ = edges.size();
  if (num_nodes == 0) {
    const std::vector<std::uint64_t> zero{0};
    g.row_offsets_ = pcq::bits::FixedWidthArray::pack(zero, 1);
    return g;
  }

  // Row boundaries in the sorted edge array: rows[u] = first index of u.
  std::vector<std::size_t> row_begin(num_nodes + 1, 0);
  {
    std::size_t i = 0;
    for (VertexId u = 0; u < num_nodes; ++u) {
      row_begin[u] = i;
      while (i < edges.size() && edges[i].u == u) ++i;
    }
    row_begin[num_nodes] = edges.size();
    PCQ_CHECK_MSG(row_begin[num_nodes] == edges.size(),
                  "edge list references nodes >= num_nodes");
  }

  // Parallel encode: one chunk of rows per processor into a private
  // stream, then concatenate (the Algorithm 4 pattern at row granularity).
  const auto p = static_cast<std::size_t>(pcq::par::clamp_threads(num_threads));
  const std::size_t chunks =
      pcq::par::num_nonempty_chunks(num_nodes, p);
  std::vector<BitVector> partial(chunks == 0 ? 1 : chunks);
  std::vector<std::vector<std::uint64_t>> partial_offsets(chunks == 0 ? 1 : chunks);

  pcq::par::parallel_for_chunks(
      num_nodes, static_cast<int>(p), [&](std::size_t c, pcq::par::ChunkRange r) {
        BitVector& out = partial[c];
        auto& offs = partial_offsets[c];
        offs.reserve(r.size());
        for (std::size_t u = r.begin; u < r.end; ++u) {
          offs.push_back(out.size());
          const std::size_t lo = row_begin[u], hi = row_begin[u + 1];
          pcq::bits::zeta_encode(hi - lo + 1, k, out);  // degree + 1
          VertexId prev = 0;
          for (std::size_t i = lo; i < hi; ++i) {
            const VertexId v = edges[i].v;
            PCQ_DCHECK(i == lo || v > prev);  // sorted, duplicate-free
            const std::uint64_t gap =
                i == lo ? static_cast<std::uint64_t>(v) + 1 : v - prev;
            pcq::bits::zeta_encode(gap, k, out);
            prev = v;
          }
        }
      });

  // Concatenate streams and rebase per-chunk offsets.
  std::vector<std::uint64_t> offsets;
  offsets.reserve(static_cast<std::size_t>(num_nodes) + 1);
  BitVector stream;
  for (std::size_t c = 0; c < partial.size(); ++c) {
    const std::uint64_t base = stream.size();
    for (std::uint64_t off : partial_offsets[c]) offsets.push_back(base + off);
    stream.append(partial[c]);
  }
  offsets.push_back(stream.size());

  g.stream_ = std::move(stream);
  g.row_offsets_ = pcq::bits::FixedWidthArray::pack(offsets, num_threads);
  return g;
}

std::uint32_t GapZetaGraph::degree(VertexId u) const {
  PCQ_DCHECK(u < num_nodes_);
  std::size_t pos = row_offsets_.get(u);
  return static_cast<std::uint32_t>(pcq::bits::zeta_decode(stream_, pos, k_) - 1);
}

std::vector<VertexId> GapZetaGraph::neighbors(VertexId u) const {
  PCQ_DCHECK(u < num_nodes_);
  std::size_t pos = row_offsets_.get(u);
  const auto deg =
      static_cast<std::size_t>(pcq::bits::zeta_decode(stream_, pos, k_) - 1);
  std::vector<VertexId> row(deg);
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < deg; ++i) {
    const std::uint64_t gap = pcq::bits::zeta_decode(stream_, pos, k_);
    value = i == 0 ? gap - 1 : value + gap;
    row[i] = static_cast<VertexId>(value);
  }
  return row;
}

bool GapZetaGraph::has_edge(VertexId u, VertexId v) const {
  PCQ_DCHECK(u < num_nodes_);
  std::size_t pos = row_offsets_.get(u);
  const auto deg =
      static_cast<std::size_t>(pcq::bits::zeta_decode(stream_, pos, k_) - 1);
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < deg; ++i) {
    const std::uint64_t gap = pcq::bits::zeta_decode(stream_, pos, k_);
    value = i == 0 ? gap - 1 : value + gap;
    if (value == v) return true;
    if (value > v) return false;  // rows are ascending
  }
  return false;
}

std::size_t GapZetaGraph::size_bytes() const {
  return stream_.size_bytes() + row_offsets_.size_bytes();
}

}  // namespace pcq::graph
