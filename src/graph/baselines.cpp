#include "graph/baselines.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pcq::graph {

AdjacencyListGraph::AdjacencyListGraph(const EdgeList& list, VertexId num_nodes) {
  const VertexId n = num_nodes == 0 ? list.num_nodes() : num_nodes;
  adj_.resize(n);
  for (const Edge& e : list.edges()) adj_[e.u].push_back(e.v);
  num_edges_ = list.size();
}

bool AdjacencyListGraph::has_edge(VertexId u, VertexId v) const {
  PCQ_DCHECK(u < adj_.size());
  const auto& nbrs = adj_[u];
  return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

std::size_t AdjacencyListGraph::size_bytes() const {
  std::size_t bytes = adj_.size() * sizeof(std::vector<VertexId>);
  for (const auto& nbrs : adj_) bytes += nbrs.capacity() * sizeof(VertexId);
  return bytes;
}

DenseBitMatrixGraph::DenseBitMatrixGraph(const EdgeList& list, VertexId num_nodes) {
  n_ = num_nodes == 0 ? list.num_nodes() : num_nodes;
  PCQ_CHECK_MSG(n_ <= kMaxNodes, "dense matrix too large; use CSR");
  bits_ = pcq::bits::BitVector(static_cast<std::size_t>(n_) * n_);
  for (const Edge& e : list.edges())
    bits_.set(static_cast<std::size_t>(e.u) * n_ + e.v, true);
}

std::vector<VertexId> DenseBitMatrixGraph::neighbors(VertexId u) const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < n_; ++v)
    if (has_edge(u, v)) out.push_back(v);
  return out;
}

EdgeListGraph::EdgeListGraph(EdgeList list) : list_(std::move(list)) {
  sorted_ = list_.is_sorted();
}

bool EdgeListGraph::has_edge(VertexId u, VertexId v) const {
  const auto edges = list_.edges();
  if (sorted_) {
    return std::binary_search(edges.begin(), edges.end(), Edge{u, v});
  }
  return std::find(edges.begin(), edges.end(), Edge{u, v}) != edges.end();
}

std::vector<VertexId> EdgeListGraph::neighbors(VertexId u) const {
  const auto edges = list_.edges();
  std::vector<VertexId> out;
  if (sorted_) {
    auto lo = std::lower_bound(edges.begin(), edges.end(), Edge{u, 0},
                               [](const Edge& a, const Edge& b) { return a.u < b.u; });
    for (; lo != edges.end() && lo->u == u; ++lo) out.push_back(lo->v);
  } else {
    for (const Edge& e : edges)
      if (e.u == u) out.push_back(e.v);
  }
  return out;
}

}  // namespace pcq::graph
