#include "graph/io.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/io_error.hpp"

namespace pcq::graph {

namespace {

/// RAII stdio handle (C streams are measurably faster than iostreams for
/// the multi-hundred-MB edge lists the paper works with). Open and read
/// failures throw pcq::IoError — edge lists come from user-supplied paths,
/// so a missing or corrupt file is a reportable condition, not a
/// programming error (the CLI turns it into exit code 3).
class File {
 public:
  File(const std::string& path, const char* mode)
      : path_(path), f_(std::fopen(path.c_str(), mode)) {
    if (f_ == nullptr) throw IoError(path_, "cannot open file");
  }
  ~File() {
    if (f_) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  std::FILE* get() const { return f_; }
  [[noreturn]] void fail(const char* what) const { throw IoError(path_, what); }

 private:
  std::string path_;
  std::FILE* f_;
};

/// Parses up to `want` unsigned fields from a text line; returns how many
/// were found. Skips blank and '#' comment lines by returning 0.
int parse_fields(const char* line, std::uint64_t* out, int want) {
  const char* p = line;
  while (*p == ' ' || *p == '\t') ++p;
  if (*p == '#' || *p == '\0' || *p == '\n' || *p == '\r') return 0;
  int found = 0;
  while (found < want) {
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(p, &end, 10);
    if (end == p) break;
    out[found++] = v;
    p = end;
  }
  return found;
}

/// Bounded-slab bulk read of `count` PODs: a corrupt header can declare a
/// count worth many gigabytes, and allocating it all before the first
/// fread is itself a denial of service. 8 MiB at a time bounds the waste
/// before the truncation is detected.
template <typename T>
std::vector<T> read_pod_array(const File& f, std::uint64_t count,
                              const char* what) {
  const std::size_t kSlab = (std::size_t{8} << 20) / sizeof(T);
  std::vector<T> items;
  items.reserve(std::min<std::uint64_t>(count, kSlab));
  std::size_t done = 0;
  while (done < count) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(kSlab, count - done));
    items.resize(done + n);
    if (std::fread(items.data() + done, sizeof(T), n, f.get()) != n)
      f.fail(what);
    done += n;
  }
  return items;
}

}  // namespace

EdgeList load_snap_text(const std::string& path) {
  File f(path, "r");
  EdgeList list;
  char line[256];
  std::uint64_t fields[2];
  while (std::fgets(line, sizeof line, f.get())) {
    if (parse_fields(line, fields, 2) == 2) {
      list.push_back({static_cast<VertexId>(fields[0]),
                      static_cast<VertexId>(fields[1])});
    }
  }
  return list;
}

void save_snap_text(const EdgeList& list, const std::string& path) {
  File f(path, "w");
  std::fprintf(f.get(), "# Directed edge list (pcq)\n# Nodes: %u Edges: %zu\n",
               list.num_nodes(), list.size());
  for (const Edge& e : list.edges())
    std::fprintf(f.get(), "%u\t%u\n", e.u, e.v);
}

TemporalEdgeList load_temporal_text(const std::string& path) {
  File f(path, "r");
  TemporalEdgeList list;
  char line[256];
  std::uint64_t fields[3];
  while (std::fgets(line, sizeof line, f.get())) {
    if (parse_fields(line, fields, 3) == 3) {
      list.push_back({static_cast<VertexId>(fields[0]),
                      static_cast<VertexId>(fields[1]),
                      static_cast<TimeFrame>(fields[2])});
    }
  }
  return list;
}

void save_temporal_text(const TemporalEdgeList& list, const std::string& path) {
  File f(path, "w");
  std::fprintf(f.get(), "# Temporal edge list (pcq): u v t\n");
  for (const TemporalEdge& e : list.edges())
    std::fprintf(f.get(), "%u\t%u\t%u\n", e.u, e.v, e.t);
}

namespace {
constexpr char kMagic[8] = {'P', 'C', 'Q', 'E', 'D', 'G', 'E', '1'};
constexpr char kTemporalMagic[8] = {'P', 'C', 'Q', 'T', 'E', 'M', 'P', '1'};
}

EdgeList load_binary(const std::string& path) {
  File f(path, "rb");
  char magic[8];
  if (std::fread(magic, 1, 8, f.get()) != 8) f.fail("truncated header");
  if (std::memcmp(magic, kMagic, 8) != 0) f.fail("bad edge-list magic");
  std::uint64_t count = 0;
  if (std::fread(&count, sizeof count, 1, f.get()) != 1)
    f.fail("truncated header");
  return EdgeList(read_pod_array<Edge>(f, count, "truncated edge list"));
}

void save_binary(const EdgeList& list, const std::string& path) {
  File f(path, "wb");
  if (std::fwrite(kMagic, 1, 8, f.get()) != 8) f.fail("short write");
  const std::uint64_t count = list.size();
  if (std::fwrite(&count, sizeof count, 1, f.get()) != 1) f.fail("short write");
  if (count > 0 && std::fwrite(list.edges().data(), sizeof(Edge), count,
                               f.get()) != count)
    f.fail("short write");
}

TemporalEdgeList load_temporal_binary(const std::string& path) {
  File f(path, "rb");
  char magic[8];
  if (std::fread(magic, 1, 8, f.get()) != 8) f.fail("truncated header");
  if (std::memcmp(magic, kTemporalMagic, 8) != 0)
    f.fail("bad temporal edge-list magic");
  std::uint64_t count = 0;
  if (std::fread(&count, sizeof count, 1, f.get()) != 1)
    f.fail("truncated header");
  return TemporalEdgeList(
      read_pod_array<TemporalEdge>(f, count, "truncated temporal edge list"));
}

void save_temporal_binary(const TemporalEdgeList& list,
                          const std::string& path) {
  File f(path, "wb");
  if (std::fwrite(kTemporalMagic, 1, 8, f.get()) != 8) f.fail("short write");
  const std::uint64_t count = list.size();
  if (std::fwrite(&count, sizeof count, 1, f.get()) != 1) f.fail("short write");
  if (count > 0 && std::fwrite(list.edges().data(), sizeof(TemporalEdge), count,
                               f.get()) != count)
    f.fail("short write");
}

}  // namespace pcq::graph
