#include "graph/io.hpp"

#include <cstdio>
#include <cstring>

#include "util/check.hpp"

namespace pcq::graph {

namespace {

/// RAII stdio handle (C streams are measurably faster than iostreams for
/// the multi-hundred-MB edge lists the paper works with).
class File {
 public:
  File(const std::string& path, const char* mode) : f_(std::fopen(path.c_str(), mode)) {
    PCQ_CHECK_MSG(f_ != nullptr, "cannot open file");
  }
  ~File() {
    if (f_) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  std::FILE* get() const { return f_; }

 private:
  std::FILE* f_;
};

/// Parses up to `want` unsigned fields from a text line; returns how many
/// were found. Skips blank and '#' comment lines by returning 0.
int parse_fields(const char* line, std::uint64_t* out, int want) {
  const char* p = line;
  while (*p == ' ' || *p == '\t') ++p;
  if (*p == '#' || *p == '\0' || *p == '\n' || *p == '\r') return 0;
  int found = 0;
  while (found < want) {
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(p, &end, 10);
    if (end == p) break;
    out[found++] = v;
    p = end;
  }
  return found;
}

}  // namespace

EdgeList load_snap_text(const std::string& path) {
  File f(path, "r");
  EdgeList list;
  char line[256];
  std::uint64_t fields[2];
  while (std::fgets(line, sizeof line, f.get())) {
    if (parse_fields(line, fields, 2) == 2) {
      list.push_back({static_cast<VertexId>(fields[0]),
                      static_cast<VertexId>(fields[1])});
    }
  }
  return list;
}

void save_snap_text(const EdgeList& list, const std::string& path) {
  File f(path, "w");
  std::fprintf(f.get(), "# Directed edge list (pcq)\n# Nodes: %u Edges: %zu\n",
               list.num_nodes(), list.size());
  for (const Edge& e : list.edges())
    std::fprintf(f.get(), "%u\t%u\n", e.u, e.v);
}

TemporalEdgeList load_temporal_text(const std::string& path) {
  File f(path, "r");
  TemporalEdgeList list;
  char line[256];
  std::uint64_t fields[3];
  while (std::fgets(line, sizeof line, f.get())) {
    if (parse_fields(line, fields, 3) == 3) {
      list.push_back({static_cast<VertexId>(fields[0]),
                      static_cast<VertexId>(fields[1]),
                      static_cast<TimeFrame>(fields[2])});
    }
  }
  return list;
}

void save_temporal_text(const TemporalEdgeList& list, const std::string& path) {
  File f(path, "w");
  std::fprintf(f.get(), "# Temporal edge list (pcq): u v t\n");
  for (const TemporalEdge& e : list.edges())
    std::fprintf(f.get(), "%u\t%u\t%u\n", e.u, e.v, e.t);
}

namespace {
constexpr char kMagic[8] = {'P', 'C', 'Q', 'E', 'D', 'G', 'E', '1'};
constexpr char kTemporalMagic[8] = {'P', 'C', 'Q', 'T', 'E', 'M', 'P', '1'};
}

EdgeList load_binary(const std::string& path) {
  File f(path, "rb");
  char magic[8];
  PCQ_CHECK(std::fread(magic, 1, 8, f.get()) == 8);
  PCQ_CHECK_MSG(std::memcmp(magic, kMagic, 8) == 0, "bad magic");
  std::uint64_t count = 0;
  PCQ_CHECK(std::fread(&count, sizeof count, 1, f.get()) == 1);
  std::vector<Edge> edges(count);
  if (count > 0)
    PCQ_CHECK(std::fread(edges.data(), sizeof(Edge), count, f.get()) == count);
  return EdgeList(std::move(edges));
}

void save_binary(const EdgeList& list, const std::string& path) {
  File f(path, "wb");
  PCQ_CHECK(std::fwrite(kMagic, 1, 8, f.get()) == 8);
  const std::uint64_t count = list.size();
  PCQ_CHECK(std::fwrite(&count, sizeof count, 1, f.get()) == 1);
  if (count > 0)
    PCQ_CHECK(std::fwrite(list.edges().data(), sizeof(Edge), count, f.get()) ==
              count);
}

TemporalEdgeList load_temporal_binary(const std::string& path) {
  File f(path, "rb");
  char magic[8];
  PCQ_CHECK(std::fread(magic, 1, 8, f.get()) == 8);
  PCQ_CHECK_MSG(std::memcmp(magic, kTemporalMagic, 8) == 0, "bad magic");
  std::uint64_t count = 0;
  PCQ_CHECK(std::fread(&count, sizeof count, 1, f.get()) == 1);
  std::vector<TemporalEdge> edges(count);
  if (count > 0)
    PCQ_CHECK(std::fread(edges.data(), sizeof(TemporalEdge), count, f.get()) ==
              count);
  return TemporalEdgeList(std::move(edges));
}

void save_temporal_binary(const TemporalEdgeList& list,
                          const std::string& path) {
  File f(path, "wb");
  PCQ_CHECK(std::fwrite(kTemporalMagic, 1, 8, f.get()) == 8);
  const std::uint64_t count = list.size();
  PCQ_CHECK(std::fwrite(&count, sizeof count, 1, f.get()) == 1);
  if (count > 0)
    PCQ_CHECK(std::fwrite(list.edges().data(), sizeof(TemporalEdge), count,
                          f.get()) == count);
}

}  // namespace pcq::graph
