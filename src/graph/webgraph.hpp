// GapZetaGraph — a WebGraph-style compressed adjacency baseline.
//
// The paper's related work opens with Boldi & Vigna's WebGraph framework
// (ref [2]): sorted adjacency lists stored as gaps, entropy-coded with
// zeta_k codes tuned to power-law gap distributions. This class implements
// that storage scheme (without WebGraph's reference-copying layer) so the
// S2 compression bench can place the paper's fixed-width bit packing on
// the spectrum between "raw" and "entropy-coded":
//
//   * usually *smaller* than the fixed-width packed CSR (gaps beat
//     absolute ids when rows are long and clustered — especially after
//     relabel_by_degree),
//   * but *slower to query*: rows must be decoded gap-by-gap from the
//     front; there is no O(1) random access into a row and no binary
//     search, which is exactly the time/space trade-off the paper's
//     fixed-width choice sits on the other side of.
#pragma once

#include <cstdint>
#include <vector>

#include "bits/bitvector.hpp"
#include "bits/packed_array.hpp"
#include "graph/edge_list.hpp"

namespace pcq::graph {

class GapZetaGraph {
 public:
  GapZetaGraph() = default;

  /// Builds from a (u, v)-sorted, duplicate-free edge list. `k` is the
  /// zeta shrinking parameter (WebGraph's default 3 suits social graphs).
  /// Row encoding: degree in zeta, first neighbour + 1 in zeta, then
  /// gaps (v_i - v_{i-1}) in zeta. Parallel over per-chunk row groups.
  static GapZetaGraph build_from_sorted(const EdgeList& list,
                                        VertexId num_nodes, unsigned k,
                                        int num_threads);

  [[nodiscard]] VertexId num_nodes() const { return num_nodes_; }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }
  [[nodiscard]] unsigned zeta_k() const { return k_; }

  /// Decodes node u's full neighbour row (sequential gap walk).
  [[nodiscard]] std::vector<VertexId> neighbors(VertexId u) const;

  [[nodiscard]] std::uint32_t degree(VertexId u) const;

  /// Gap-walks u's row until v is reached or passed. O(degree).
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  /// Payload bytes: the coded bit stream plus the packed row pointers.
  [[nodiscard]] std::size_t size_bytes() const;

 private:
  unsigned k_ = 3;
  VertexId num_nodes_ = 0;
  std::size_t num_edges_ = 0;
  pcq::bits::BitVector stream_;             ///< concatenated row codes
  pcq::bits::FixedWidthArray row_offsets_;  ///< bit offset of each row, packed
};

}  // namespace pcq::graph
