// Traditional graph storage structures — the comparators for the paper's
// "smaller memory footprint and faster querying than traditional storage
// structures" claim (abstract, §VI). Each exposes the same two queries the
// paper benchmarks: neighbours(u) and has_edge(u, v), plus size_bytes() for
// the footprint comparison.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bits/bitvector.hpp"
#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace pcq::graph {

/// Per-node vectors of neighbours — the textbook adjacency list.
class AdjacencyListGraph {
 public:
  AdjacencyListGraph() = default;
  explicit AdjacencyListGraph(const EdgeList& list, VertexId num_nodes = 0);

  [[nodiscard]] VertexId num_nodes() const {
    return static_cast<VertexId>(adj_.size());
  }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  [[nodiscard]] std::span<const VertexId> neighbors(VertexId u) const {
    return adj_[u];
  }

  /// Linear scan of u's list.
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  /// Heap footprint: per-node vector headers + neighbour payloads.
  [[nodiscard]] std::size_t size_bytes() const;

 private:
  std::vector<std::vector<VertexId>> adj_;
  std::size_t num_edges_ = 0;
};

/// Dense n*n bit matrix. O(1) edge queries, O(n) neighbour queries,
/// O(n^2 / 8) bytes — the structure whose footprint the paper's intro
/// rules out (Friendster at 30 PB). Guarded to small n.
class DenseBitMatrixGraph {
 public:
  DenseBitMatrixGraph() = default;
  explicit DenseBitMatrixGraph(const EdgeList& list, VertexId num_nodes = 0);

  /// Largest n accepted (n^2 bits = 512 MB at this bound).
  static constexpr VertexId kMaxNodes = 65'536;

  [[nodiscard]] VertexId num_nodes() const { return n_; }

  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const {
    return bits_.get(static_cast<std::size_t>(u) * n_ + v);
  }

  [[nodiscard]] std::vector<VertexId> neighbors(VertexId u) const;

  [[nodiscard]] std::size_t size_bytes() const { return bits_.size_bytes(); }

 private:
  VertexId n_ = 0;
  pcq::bits::BitVector bits_;
};

/// The raw edge list kept as the query structure ("EdgeList Size" column
/// of Table II). Queries scan; if the list is sorted by (u, v), has_edge
/// and neighbors use binary search instead.
class EdgeListGraph {
 public:
  EdgeListGraph() = default;
  explicit EdgeListGraph(EdgeList list);

  [[nodiscard]] std::size_t num_edges() const { return list_.size(); }

  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;
  [[nodiscard]] std::vector<VertexId> neighbors(VertexId u) const;

  [[nodiscard]] std::size_t size_bytes() const { return list_.size_bytes(); }

 private:
  EdgeList list_;
  bool sorted_ = false;
};

}  // namespace pcq::graph
