// Graph file I/O.
//
// Text format is SNAP's edge-list convention ('#'-prefixed comment lines,
// then one "u<whitespace>v" pair per line), so the paper's actual
// evaluation inputs — downloaded from https://snap.stanford.edu/data/ —
// can be fed to every bench via --input without any conversion. The binary
// format is a fast round-trip cache. Temporal lists add a third column t.
#pragma once

#include <string>

#include "graph/edge_list.hpp"

namespace pcq::graph {

/// Reads a SNAP text edge list. Aborts with a message on malformed input.
EdgeList load_snap_text(const std::string& path);

/// Writes SNAP text with a generator comment header.
void save_snap_text(const EdgeList& list, const std::string& path);

/// Reads "u v t" temporal triplets (SNAP temporal convention).
TemporalEdgeList load_temporal_text(const std::string& path);

void save_temporal_text(const TemporalEdgeList& list, const std::string& path);

/// Binary round-trip format: magic, count, raw little-endian pairs.
EdgeList load_binary(const std::string& path);
void save_binary(const EdgeList& list, const std::string& path);

/// Binary temporal round-trip: magic, count, raw (u, v, t) triplets.
TemporalEdgeList load_temporal_binary(const std::string& path);
void save_temporal_binary(const TemporalEdgeList& list,
                          const std::string& path);

}  // namespace pcq::graph
