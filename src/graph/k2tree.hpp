// k²-tree — the succinct adjacency-matrix representation of Brisaboa,
// Ladra & Navarro (paper's §II, ref [18]; the ck-d-trees of ref [5] extend
// it to temporal graphs).
//
// The adjacency matrix is padded to side s = k^h and partitioned
// recursively into k × k submatrices. One bit per submatrix records
// whether it contains any edge; internal levels are concatenated into a
// rank-indexed bitmap T and the last level (single cells) into a plain
// bitmap L. Children of the set bit at position p start at position
// rank1(T, p + 1) * k² — which is why RankBitVector exists.
//
// Trade-off relative to the paper's bit-packed CSR: on sparse clustered
// matrices the k²-tree can be smaller (empty regions cost one bit per
// level), both edge queries and *reverse* neighbour queries are supported
// in O(log_k n) descents, but forward row decoding is slower than the
// CSR's contiguous packed row — the comparison bench_query quantifies.
#pragma once

#include <cstdint>
#include <vector>

#include "bits/rank_select.hpp"
#include "graph/edge_list.hpp"

namespace pcq::graph {

class K2Tree {
 public:
  K2Tree() = default;

  /// Builds from a duplicate-free edge list (any order; builds sort a
  /// Morton-keyed copy internally). `k` must be a power of two in
  /// {2, 4, 8}. num_nodes == 0 derives the count.
  static K2Tree build(const EdgeList& list, VertexId num_nodes, unsigned k,
                      int num_threads);

  [[nodiscard]] VertexId num_nodes() const { return n_; }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }
  [[nodiscard]] unsigned k() const { return k_; }
  [[nodiscard]] unsigned height() const { return height_; }

  /// O(log_k n) descent.
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  /// Row u of the matrix (out-neighbours), ascending.
  [[nodiscard]] std::vector<VertexId> neighbors(VertexId u) const;

  /// Column v of the matrix (in-neighbours), ascending — the query
  /// adjacency lists cannot answer without a transpose.
  [[nodiscard]] std::vector<VertexId> reverse_neighbors(VertexId v) const;

  /// Bitmap payload + rank directory.
  [[nodiscard]] std::size_t size_bytes() const {
    return tree_.size_bytes() + leaves_.size_bytes();
  }

 private:
  /// Descends one level: returns the children base position of the set
  /// internal bit at position p.
  [[nodiscard]] std::size_t children_of(std::size_t p) const {
    return tree_.rank1(p + 1) * k_ * k_;
  }

  void collect_row(std::size_t base, std::size_t row0, std::size_t col0,
                   std::size_t size, VertexId u,
                   std::vector<VertexId>* out) const;
  void collect_col(std::size_t base, std::size_t row0, std::size_t col0,
                   std::size_t size, VertexId v,
                   std::vector<VertexId>* out) const;

  unsigned k_ = 2;
  unsigned height_ = 0;  ///< levels; side s_ == k_^height_
  VertexId n_ = 0;
  std::size_t s_ = 1;
  std::size_t num_edges_ = 0;
  pcq::bits::RankBitVector tree_;  ///< T: internal levels, rank-indexed
  pcq::bits::BitVector leaves_;    ///< L: last level (cell bits)
};

}  // namespace pcq::graph
