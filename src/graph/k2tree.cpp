#include "graph/k2tree.hpp"

#include <bit>

#include "par/radix_sort.hpp"
#include "util/check.hpp"

namespace pcq::graph {

using pcq::bits::BitVector;

namespace {

/// Interleaved base-k digits of (u, v), most significant level first —
/// sorting by this key makes every k²-tree node a contiguous edge range.
std::uint64_t morton_key(VertexId u, VertexId v, unsigned log2k,
                         unsigned height) {
  std::uint64_t key = 0;
  for (unsigned level = 0; level < height; ++level) {
    const unsigned shift = (height - 1 - level) * log2k;
    const std::uint64_t ru = (u >> shift) & ((1u << log2k) - 1);
    const std::uint64_t rv = (v >> shift) & ((1u << log2k) - 1);
    key = (key << (2 * log2k)) | (ru << log2k) | rv;
  }
  return key;
}

struct BuildNode {
  std::size_t begin;  ///< edge range in the morton-sorted array
  std::size_t end;
  std::size_t row;  ///< submatrix origin
  std::size_t col;
};

}  // namespace

K2Tree K2Tree::build(const EdgeList& list, VertexId num_nodes, unsigned k,
                     int num_threads) {
  PCQ_CHECK_MSG(k == 2 || k == 4 || k == 8, "k must be 2, 4 or 8");
  if (num_nodes == 0) num_nodes = list.num_nodes();

  K2Tree t;
  t.k_ = k;
  t.n_ = num_nodes;
  t.num_edges_ = list.size();
  const auto log2k = static_cast<unsigned>(std::countr_zero(k));

  // Side s = k^h >= max(n, k).
  t.height_ = 1;
  t.s_ = k;
  while (t.s_ < num_nodes) {
    t.s_ *= k;
    ++t.height_;
  }

  // Morton-sort a copy of the edges.
  std::vector<Edge> edges(list.edges().begin(), list.edges().end());
  const unsigned height = t.height_;
  pcq::par::parallel_radix_sort(
      std::span<Edge>(edges), num_threads, [log2k, height](const Edge& e) {
        return morton_key(e.u, e.v, log2k, height);
      });

  // Level-synchronous construction: every node emits k² child-occupancy
  // bits; nonempty children become the next level's nodes. Both BFS and
  // the morton order list nodes of one level identically, so per-level
  // emission in node order is the canonical layout.
  std::vector<BitVector> levels(height);
  std::vector<BuildNode> frontier;
  if (!edges.empty()) frontier.push_back({0, edges.size(), 0, 0});

  std::size_t size = t.s_;
  for (unsigned level = 0; level < height; ++level) {
    const std::size_t half = size / k;
    std::vector<BuildNode> next;
    BitVector& bits = levels[level];
    for (const BuildNode& node : frontier) {
      // Children are contiguous sub-ranges; digits are non-decreasing in
      // morton order, so one linear boundary walk partitions the slice.
      std::size_t i = node.begin;
      for (unsigned child = 0; child < k * k; ++child) {
        const std::size_t child_row = node.row + (child / k) * half;
        const std::size_t child_col = node.col + (child % k) * half;
        std::size_t j = i;
        while (j < node.end) {
          const Edge& e = edges[j];
          const unsigned digit =
              static_cast<unsigned>((e.u - node.row) / half) * k +
              static_cast<unsigned>((e.v - node.col) / half);
          if (digit != child) break;
          ++j;
        }
        const bool occupied = j > i;
        bits.push_back(occupied);
        if (occupied && half > 1) next.push_back({i, j, child_row, child_col});
        i = j;
      }
      PCQ_DCHECK(i == node.end);
    }
    frontier.swap(next);
    size = half;
  }

  // Concatenate: internal levels -> T, last level -> L.
  BitVector tree_bits;
  for (unsigned level = 0; level + 1 < height; ++level)
    tree_bits.append(levels[level]);
  t.tree_ = pcq::bits::RankBitVector(std::move(tree_bits));
  t.leaves_ = std::move(levels[height - 1]);
  return t;
}

bool K2Tree::has_edge(VertexId u, VertexId v) const {
  if (num_edges_ == 0 || u >= s_ || v >= s_) return false;
  std::size_t base = 0;
  std::size_t size = s_;
  std::size_t row = 0, col = 0;
  for (unsigned level = 0; level < height_; ++level) {
    const std::size_t half = size / k_;
    const auto child = static_cast<std::size_t>((u - row) / half) * k_ +
                       static_cast<std::size_t>((v - col) / half);
    const std::size_t p = base + child;
    if (p < tree_.size()) {
      if (!tree_.get(p)) return false;
      base = children_of(p);
    } else {
      return leaves_.get(p - tree_.size());
    }
    row += ((u - row) / half) * half;
    col += ((v - col) / half) * half;
    size = half;
  }
  return false;  // unreachable for height >= 1
}

void K2Tree::collect_row(std::size_t base, std::size_t row0, std::size_t col0,
                         std::size_t size, VertexId u,
                         std::vector<VertexId>* out) const {
  const std::size_t half = size / k_;
  const std::size_t r = (u - row0) / half;
  for (unsigned j = 0; j < k_; ++j) {
    const std::size_t p = base + r * k_ + j;
    if (p < tree_.size()) {
      if (tree_.get(p))
        collect_row(children_of(p), row0 + r * half, col0 + j * half, half, u,
                    out);
    } else if (leaves_.get(p - tree_.size())) {
      out->push_back(static_cast<VertexId>(col0 + j));  // half == 1
    }
  }
}

std::vector<VertexId> K2Tree::neighbors(VertexId u) const {
  std::vector<VertexId> out;
  if (num_edges_ == 0 || u >= s_) return out;
  collect_row(0, 0, 0, s_, u, &out);
  // Padding columns >= n_ can never be set (edges bound-checked on input).
  return out;
}

void K2Tree::collect_col(std::size_t base, std::size_t row0, std::size_t col0,
                         std::size_t size, VertexId v,
                         std::vector<VertexId>* out) const {
  const std::size_t half = size / k_;
  const std::size_t c = (v - col0) / half;
  for (unsigned i = 0; i < k_; ++i) {
    const std::size_t p = base + i * k_ + c;
    if (p < tree_.size()) {
      if (tree_.get(p))
        collect_col(children_of(p), row0 + i * half, col0 + c * half, half, v,
                    out);
    } else if (leaves_.get(p - tree_.size())) {
      out->push_back(static_cast<VertexId>(row0 + i));
    }
  }
}

std::vector<VertexId> K2Tree::reverse_neighbors(VertexId v) const {
  std::vector<VertexId> out;
  if (num_edges_ == 0 || v >= s_) return out;
  collect_col(0, 0, 0, s_, v, &out);
  return out;
}

}  // namespace pcq::graph
