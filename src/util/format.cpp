#include "util/format.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace pcq::util {

std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fixed(double v, int decimals) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", decimals, v);
  return std::string(buf.data());
}

std::string human_bytes(std::uint64_t bytes) {
  constexpr std::array<const char*, 5> units = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  std::size_t u = 0;
  while (v >= 1024.0 && u + 1 < units.size()) {
    v /= 1024.0;
    ++u;
  }
  const int decimals = (u == 0) ? 0 : 2;
  return fixed(v, decimals) + " " + units[u];
}

std::string human_seconds(double seconds) {
  const double a = std::fabs(seconds);
  if (a >= 1.0) return fixed(seconds, 2) + " s";
  if (a >= 1e-3) return fixed(seconds * 1e3, 2) + " ms";
  if (a >= 1e-6) return fixed(seconds * 1e6, 2) + " us";
  return fixed(seconds * 1e9, 0) + " ns";
}

std::string percent(double fraction) { return fixed(fraction * 100.0, 2); }

}  // namespace pcq::util
