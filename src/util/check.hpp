// Lightweight runtime checking macros.
//
// PCQ_CHECK is always on (argument validation at API boundaries); PCQ_DCHECK
// compiles out in release builds (internal invariants on hot paths).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pcq::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "PCQ_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace pcq::util

#define PCQ_CHECK(expr)                                                 \
  do {                                                                  \
    if (!(expr)) ::pcq::util::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define PCQ_CHECK_MSG(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) ::pcq::util::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define PCQ_DCHECK(expr) ((void)0)
#else
#define PCQ_DCHECK(expr) PCQ_CHECK(expr)
#endif
