// Lightweight runtime checking macros.
//
// Two tiers, by who is being distrusted:
//
//   PCQ_CHECK / PCQ_CHECK_MSG — always on, in every build type. Argument
//   validation at API boundaries: the caller is outside the module's
//   control, the check is O(1), and a violation means the process state is
//   already wrong. Cost is one predictable branch — never use these inside
//   per-element hot loops.
//
//   PCQ_DCHECK / PCQ_DCHECK_MSG — internal invariants on hot paths (per
//   packed element, per decoded row). Compiled to nothing in Release
//   (NDEBUG) builds; enabled in Debug builds and — regardless of NDEBUG —
//   when PCQ_DEBUG_CHECKS is defined non-zero, which is what the
//   `debug-check` CMake preset does: full optimization with every internal
//   invariant armed, the configuration the fuzzers and the corruption
//   tests run under.
//
// docs/CORRECTNESS.md catalogues the invariants these macros guard.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pcq::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "PCQ_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace pcq::util

#define PCQ_CHECK(expr)                                                 \
  do {                                                                  \
    if (!(expr)) ::pcq::util::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define PCQ_CHECK_MSG(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) ::pcq::util::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#if !defined(PCQ_DEBUG_CHECKS)
#define PCQ_DEBUG_CHECKS 0
#endif

#if defined(NDEBUG) && !PCQ_DEBUG_CHECKS
#define PCQ_DCHECK(expr) ((void)0)
#define PCQ_DCHECK_MSG(expr, msg) ((void)0)
#else
#define PCQ_DCHECK(expr) PCQ_CHECK(expr)
#define PCQ_DCHECK_MSG(expr, msg) PCQ_CHECK_MSG(expr, msg)
#endif
