// Wall-clock timing helpers used by benchmarks and examples.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace pcq::util {

/// Monotonic wall-clock stopwatch with millisecond/microsecond readouts.
///
/// Started on construction; `restart()` resets the origin. All readouts are
/// non-destructive, so a single Timer can report several intermediate splits.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Elapsed time in seconds since construction or last restart().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const { return seconds() * 1e3; }
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates repeated timings of one phase and reports simple statistics.
/// Used by the paper-style harnesses, which repeat each configuration a few
/// times and report the minimum (least-noise) wall time.
class TimingStats {
 public:
  void add(double seconds);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double median() const;

 private:
  std::vector<double> samples_;
};

/// Runs `fn` `repeats` times (after `warmups` unrecorded warm-up runs) and
/// returns the recorded statistics. `fn` must be idempotent.
template <typename Fn>
TimingStats time_repeated(Fn&& fn, int repeats = 3, int warmups = 1) {
  TimingStats stats;
  for (int i = 0; i < warmups; ++i) fn();
  for (int i = 0; i < repeats; ++i) {
    Timer t;
    fn();
    stats.add(t.seconds());
  }
  return stats;
}

}  // namespace pcq::util
