// Human-readable formatting of byte counts, durations and large integers,
// used by the paper-style benchmark tables.
#pragma once

#include <cstdint>
#include <string>

namespace pcq::util {

/// 1234567 -> "1,234,567".
std::string with_commas(std::uint64_t v);

/// Bytes with binary-ish units as the paper prints them: "24.73 MB",
/// "1.1 GB", "405 MB", "22 MB". Uses two decimals below 10 GB units.
std::string human_bytes(std::uint64_t bytes);

/// Seconds as "164.76 ms", "1.23 s", "577 us" — matched to the magnitude.
std::string human_seconds(double seconds);

/// Fixed-precision double, e.g. fixed(3.14159, 2) == "3.14".
std::string fixed(double v, int decimals);

/// Percentage with two decimals: pct(0.6483) == "64.83".
std::string percent(double fraction);

}  // namespace pcq::util
