// Clang Thread Safety Analysis capability macros + annotated lock types.
//
// The concurrency-dense layers (svc, net, dyn, obs, par) encode their
// locking discipline with these macros so `-Wthread-safety` (the
// `thread-safety` CMake preset, Clang only) proves at compile time that
// every access to a PCQ_GUARDED_BY member happens with its mutex held and
// that every PCQ_REQUIRES function is only called under the right lock.
// Under GCC (the default toolchain) every macro expands to nothing and the
// wrappers compile to exactly the std primitives they hold — zero runtime
// or layout cost either way.
//
// Policy (docs/CORRECTNESS.md "Concurrency discipline"):
//   * Mutex-protected state: declare the mutex as `util::Mutex`, annotate
//     each protected member `PCQ_GUARDED_BY(mu_)`, and lock with
//     `util::MutexLock` (never a bare std::lock_guard — the raw std types
//     are invisible to the analysis, and scripts/concurrency_lint.py
//     rejects them in the concurrent layers).
//   * Functions called with a lock already held take PCQ_REQUIRES(mu);
//     functions that acquire a lock internally and must not be called
//     with it held take PCQ_EXCLUDES(mu).
//   * Condition variables: util::CondVar waits on a util::MutexLock.
//     Predicates are written as explicit while-loops in the locked scope
//     (not lambda predicates) so the analysis sees the guarded reads
//     inside the scope that holds the capability.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// Clang exposes the analysis attributes via __attribute__; GCC parses but
// ignores a subset and warns on the rest, so everything no-ops off-Clang.
#if defined(__clang__)
#define PCQ_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PCQ_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a capability (lockable). The string names the
/// capability kind in diagnostics ("mutex").
#define PCQ_CAPABILITY(x) PCQ_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define PCQ_SCOPED_CAPABILITY PCQ_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the named capability held.
#define PCQ_GUARDED_BY(x) PCQ_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee is guarded by the named capability.
#define PCQ_PT_GUARDED_BY(x) PCQ_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the capability held (and does not
/// release it).
#define PCQ_REQUIRES(...) \
  PCQ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PCQ_REQUIRES_SHARED(...) \
  PCQ_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function that acquires / releases the capability itself.
#define PCQ_ACQUIRE(...) PCQ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PCQ_ACQUIRE_SHARED(...) \
  PCQ_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define PCQ_RELEASE(...) PCQ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PCQ_RELEASE_SHARED(...) \
  PCQ_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define PCQ_TRY_ACQUIRE(...) \
  PCQ_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function that must NOT be called with the capability held (it acquires
/// it internally, or would deadlock).
#define PCQ_EXCLUDES(...) PCQ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations.
#define PCQ_ACQUIRED_BEFORE(...) \
  PCQ_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define PCQ_ACQUIRED_AFTER(...) \
  PCQ_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returning a reference to the named capability.
#define PCQ_RETURN_CAPABILITY(x) PCQ_THREAD_ANNOTATION(lock_returned(x))

/// Runtime assertion that the capability is held (for code the analysis
/// cannot follow, e.g. callbacks invoked under a caller's lock).
#define PCQ_ASSERT_CAPABILITY(x) PCQ_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch: suppress the analysis for one function. Every use needs a
/// comment explaining why the discipline cannot be expressed.
#define PCQ_NO_THREAD_SAFETY_ANALYSIS \
  PCQ_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace pcq::util {

class CondVar;
class MutexLock;

/// std::mutex with the capability annotation the analysis needs. Same
/// size, same cost; lock()/unlock() exist for the rare manual pairing but
/// MutexLock is the expected way to hold it.
class PCQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PCQ_ACQUIRE() { mu_.lock(); }
  void unlock() PCQ_RELEASE() { mu_.unlock(); }
  bool try_lock() PCQ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII scoped lock over Mutex (the std::lock_guard/unique_lock of the
/// annotated world). Holds for its whole lifetime; CondVar waits through
/// it (the capability is held again whenever a wait returns, which is all
/// the analysis needs for the guarded reads around the wait).
class PCQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PCQ_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() PCQ_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable waiting on a MutexLock. Deliberately predicate-free:
/// callers loop on the guarded condition in their own locked scope, e.g.
///
///   util::MutexLock lock(mu_);
///   while (!closed_ && jobs_.empty()) cv_.wait(lock);
///
/// so the analysis sees every guarded read under the capability (a lambda
/// predicate would be analyzed as an unlocked function body).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lock.lock_, d);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      MutexLock& lock, const std::chrono::time_point<Clock, Duration>& tp) {
    return cv_.wait_until(lock.lock_, tp);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pcq::util
