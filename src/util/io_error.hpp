// Typed I/O failure reporting for the (de)serialization layer.
//
// The serializers originally aborted the process on any I/O problem, which
// is fine for a benchmark binary but fatal for a long-running service: a
// single corrupt graph file must reject that load and leave the process
// up. Loaders and savers throw IoError instead; callers that want the old
// behaviour simply don't catch it (an uncaught exception still terminates).
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace pcq {

/// Thrown on file open/read/write failure or a malformed on-disk artifact
/// (bad magic, wrong endianness canary, truncated payload, inconsistent
/// header geometry). `path()` names the offending file.
class IoError : public std::runtime_error {
 public:
  IoError(std::string path, const std::string& what)
      : std::runtime_error(what + ": " + path), path_(std::move(path)) {}

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace pcq
