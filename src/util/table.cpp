#include "util/table.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace pcq::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PCQ_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  PCQ_CHECK_MSG(cells.size() == headers_.size(), "row width != header width");
  rows_.push_back(std::move(cells));
}

void Table::add_rule() { rows_.emplace_back(); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > widths[c]) widths[c] = row[c].size();

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  auto rule = [&] {
    std::string line = "+";
    for (std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };

  std::string out = rule() + render_row(headers_) + rule();
  for (const auto& row : rows_) {
    out += row.empty() ? rule() : render_row(row);
  }
  out += rule();
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace pcq::util
