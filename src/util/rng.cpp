#include "util/rng.hpp"

#include "util/check.hpp"

namespace pcq::util {

std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t SplitMix64::next_below(std::uint64_t bound) {
  PCQ_DCHECK(bound > 0);
  // Lemire's multiply-shift rejection method: unbiased and far cheaper than
  // modulo for the tight generator loops in the graph generators.
  std::uint64_t x = next();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0ULL - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<unsigned __int128>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

SplitMix64 SplitMix64::split(std::uint64_t index) const {
  // Mixing the current state with a mixed index gives a decorrelated seed.
  return SplitMix64(mix64(state_ ^ mix64(index + 0x9e3779b97f4a7c15ULL)));
}

}  // namespace pcq::util
