// Column-aligned plain-text table printer. The benchmark harnesses use this
// to print rows in the same layout as the paper's Table II.
#pragma once

#include <string>
#include <vector>

namespace pcq::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; must have exactly as many cells as there are headers
  /// (empty strings render as blanks, matching the paper's merged cells).
  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal rule before the next row (used between graphs).
  void add_rule();

  /// Renders the table with a header rule and column padding.
  [[nodiscard]] std::string to_string() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == rule
};

}  // namespace pcq::util
