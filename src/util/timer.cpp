#include "util/timer.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace pcq::util {

void TimingStats::add(double seconds) { samples_.push_back(seconds); }

double TimingStats::min() const {
  PCQ_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double TimingStats::max() const {
  PCQ_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double TimingStats::mean() const {
  PCQ_CHECK(!samples_.empty());
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double TimingStats::median() const {
  PCQ_CHECK(!samples_.empty());
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  if (sorted.size() % 2 == 1) return sorted[mid];
  return 0.5 * (sorted[mid - 1] + sorted[mid]);
}

}  // namespace pcq::util
