// Minimal command-line flag parsing for the benchmark harnesses and
// examples. Supports `--name value` and `--name=value`; unknown flags abort
// with a usage message so experiment scripts fail loudly rather than
// silently running the wrong configuration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pcq::util {

class Flags {
 public:
  /// Parses argv. `spec` maps flag name -> help string; flags not in the
  /// spec are rejected.
  Flags(int argc, char** argv, std::map<std::string, std::string> spec);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated integer list, e.g. "--threads 1,4,8,16,64".
  [[nodiscard]] std::vector<int> get_int_list(
      const std::string& name, const std::vector<int>& fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  void usage_and_exit(const std::string& err) const;

  std::string program_;
  std::map<std::string, std::string> spec_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace pcq::util
