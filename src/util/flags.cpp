#include "util/flags.hpp"

#include <cstdio>
#include <cstdlib>

namespace pcq::util {

Flags::Flags(int argc, char** argv, std::map<std::string, std::string> spec)
    : program_(argc > 0 ? argv[0] : "?"), spec_(std::move(spec)) {
  spec_.emplace("help", "print this message");
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    } else {
      value = "true";  // bare boolean flag
    }
    if (!spec_.count(name)) usage_and_exit("unknown flag --" + name);
    values_[name] = std::move(value);
  }
  if (values_.count("help")) usage_and_exit("");
}

void Flags::usage_and_exit(const std::string& err) const {
  if (!err.empty()) std::fprintf(stderr, "error: %s\n", err.c_str());
  std::fprintf(stderr, "usage: %s [flags]\n", program_.c_str());
  for (const auto& [name, help] : spec_)
    std::fprintf(stderr, "  --%-18s %s\n", name.c_str(), help.c_str());
  std::exit(err.empty() ? 0 : 2);
}

bool Flags::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::get(const std::string& name, const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<int> Flags::get_int_list(const std::string& name,
                                     const std::vector<int>& fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<int> out;
  const std::string& s = it->second;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::atoi(s.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return out;
}

}  // namespace pcq::util
