// Deterministic, fast pseudo-random number generation.
//
// All synthetic workloads in this repository are seeded, so every experiment
// is exactly reproducible run-to-run and thread-count-to-thread-count (each
// parallel worker derives an independent stream with `split`).
#pragma once

#include <cstdint>

namespace pcq::util {

/// SplitMix64 — tiny, statistically solid 64-bit generator. Used directly
/// for seeding and as the workhorse generator for synthetic graphs.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Derives an independent generator for worker `index`; streams from
  /// distinct indices are non-overlapping for all practical purposes.
  [[nodiscard]] SplitMix64 split(std::uint64_t index) const;

 private:
  std::uint64_t state_;
};

/// Hashes an arbitrary 64-bit value to a well-mixed 64-bit value
/// (finalizer of SplitMix64). Handy for stateless per-element randomness.
std::uint64_t mix64(std::uint64_t x);

}  // namespace pcq::util
