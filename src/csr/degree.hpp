// Parallel degree-array computation — Algorithms 2 and 3.
//
// Input: the source-node column of a source-sorted edge list. The array is
// split into one contiguous chunk per processor. Because the input is
// sorted, equal source ids form consecutive runs, and a run can cross a
// chunk boundary only at a chunk's *front*. Each processor therefore:
//
//   * counts its first run into a per-processor spill slot
//     (globalTempDegree[pid] in the paper) — that run may belong to the
//     left neighbour's node;
//   * counts every other run directly into the shared degree array — no
//     atomics are needed, because for any node at most one chunk sees its
//     run as a non-first run (every other fragment of that run is some
//     chunk's first run and goes to a spill slot).
//
// After a sync, the spill slots are merged back (Algorithm 3, Figure 3):
// globalDegArray[first node of chunk c] += globalTempDegree[c]. The merge
// is O(p) and done sequentially, which also handles the corner case the
// paper glosses over — a run longer than an entire chunk contributes
// several spill slots to the same node.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace pcq::csr {

/// Computes the degree of each node from a sorted source-id array
/// (Algorithms 2 + 3). `sources[i]` is the source endpoint of edge i;
/// `num_nodes` sizes the result. Aborts in debug builds if the input is
/// not sorted.
std::vector<std::uint32_t> parallel_degree_from_sorted(
    std::span<const graph::VertexId> sources, graph::VertexId num_nodes,
    int num_threads);

/// Sequential run-counting baseline (the p == 1 configuration of Table II).
std::vector<std::uint32_t> sequential_degree_from_sorted(
    std::span<const graph::VertexId> sources, graph::VertexId num_nodes);

}  // namespace pcq::csr
