// Plain (unpacked) Compressed Sparse Row graph.
//
// Two flat arrays (§III): `offsets` — the cumulative degree array iA, with
// offsets[u] the index of node u's first neighbour — and `columns` — the
// neighbour array jA. The graphs here are unweighted, so the paper's value
// array vA is omitted (§III: "an unweighted array is also a boolean
// array"). This is both a usable structure in its own right and the
// intermediate the bit-packed CSR is built from.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "util/check.hpp"

namespace pcq::csr {

class CsrGraph {
 public:
  CsrGraph() = default;
  CsrGraph(std::vector<std::uint64_t> offsets, std::vector<graph::VertexId> columns)
      : offsets_(std::move(offsets)), columns_(std::move(columns)) {
    PCQ_CHECK(!offsets_.empty());
    PCQ_CHECK(offsets_.back() == columns_.size());
  }

  [[nodiscard]] graph::VertexId num_nodes() const {
    return static_cast<graph::VertexId>(offsets_.size() - 1);
  }
  [[nodiscard]] std::size_t num_edges() const { return columns_.size(); }

  [[nodiscard]] std::uint32_t degree(graph::VertexId u) const {
    PCQ_DCHECK(u < num_nodes());
    return static_cast<std::uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// Zero-copy view of u's neighbour row (sorted ascending when built from
  /// a (u, v)-sorted edge list).
  [[nodiscard]] std::span<const graph::VertexId> neighbors(graph::VertexId u) const {
    PCQ_DCHECK(u < num_nodes());
    return {columns_.data() + offsets_[u], columns_.data() + offsets_[u + 1]};
  }

  /// Binary search of u's sorted row.
  [[nodiscard]] bool has_edge(graph::VertexId u, graph::VertexId v) const;

  [[nodiscard]] std::span<const std::uint64_t> offsets() const { return offsets_; }
  [[nodiscard]] std::span<const graph::VertexId> columns() const { return columns_; }

  /// Heap footprint: 8 bytes per offset + 4 bytes per column entry.
  [[nodiscard]] std::size_t size_bytes() const {
    return offsets_.size() * sizeof(std::uint64_t) +
           columns_.size() * sizeof(graph::VertexId);
  }

 private:
  // A default-constructed graph is the valid empty graph (0 nodes, 0
  // edges): offsets always holds num_nodes + 1 entries.
  std::vector<std::uint64_t> offsets_ = {0};
  std::vector<graph::VertexId> columns_;
};

}  // namespace pcq::csr
