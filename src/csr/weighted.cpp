#include "csr/weighted.hpp"

#include <algorithm>

#include "csr/degree.hpp"
#include "par/parallel_for.hpp"
#include "par/prefix_sum.hpp"
#include "util/check.hpp"

namespace pcq::csr {

using graph::VertexId;
using graph::WeightedEdge;

WeightedCsr WeightedCsr::build_from_sorted(std::span<const WeightedEdge> edges,
                                           VertexId num_nodes,
                                           int num_threads) {
  PCQ_DCHECK(std::is_sorted(edges.begin(), edges.end()));
  if (num_nodes == 0) {
    VertexId max_id = 0;
    for (const auto& e : edges) max_id = std::max({max_id, e.u, e.v});
    num_nodes = edges.empty() ? 0 : max_id + 1;
  }

  // Same pipeline as the unweighted builder: degree (Alg. 2/3), offsets
  // (Alg. 1), then parallel copies of the jA *and* vA columns.
  std::vector<VertexId> sources(edges.size());
  pcq::par::parallel_for(edges.size(), num_threads,
                         [&](std::size_t i) { sources[i] = edges[i].u; });
  const auto degrees =
      parallel_degree_from_sorted(sources, num_nodes, num_threads);
  auto offsets = pcq::par::offsets_from_degrees(degrees, num_threads);

  std::vector<VertexId> columns(edges.size());
  std::vector<std::uint32_t> weights(edges.size());
  pcq::par::parallel_for(edges.size(), num_threads, [&](std::size_t i) {
    columns[i] = edges[i].v;
    weights[i] = edges[i].w;
  });

  WeightedCsr out;
  out.csr_ = CsrGraph(std::move(offsets), std::move(columns));
  out.weights_ = std::move(weights);
  return out;
}

std::span<const std::uint32_t> WeightedCsr::weights(VertexId u) const {
  const auto offs = csr_.offsets();
  return {weights_.data() + offs[u], weights_.data() + offs[u + 1]};
}

bool WeightedCsr::edge_weight(VertexId u, VertexId v,
                              std::uint32_t* weight_out) const {
  const auto row = csr_.neighbors(u);
  const auto it = std::lower_bound(row.begin(), row.end(), v);
  if (it == row.end() || *it != v) return false;
  const std::size_t index =
      csr_.offsets()[u] + static_cast<std::size_t>(it - row.begin());
  if (weight_out) *weight_out = weights_[index];
  return true;
}

BitPackedWeightedCsr BitPackedWeightedCsr::from_weighted_csr(
    const WeightedCsr& csr, int num_threads) {
  BitPackedWeightedCsr out;
  out.num_nodes_ = csr.num_nodes();
  out.num_edges_ = csr.num_edges();

  const auto offs = csr.structure().offsets();
  out.offsets_ = pcq::bits::FixedWidthArray::pack_with_width(
      offs, pcq::bits::bits_for(csr.num_edges()), num_threads);

  std::vector<std::uint64_t> wide(csr.num_edges());
  const auto cols = csr.structure().columns();
  pcq::par::parallel_for(wide.size(), num_threads,
                         [&](std::size_t i) { wide[i] = cols[i]; });
  const std::uint64_t max_col = csr.num_nodes() == 0 ? 0 : csr.num_nodes() - 1;
  out.columns_ = pcq::bits::FixedWidthArray::pack_with_width(
      wide, pcq::bits::bits_for(max_col), num_threads);

  const auto ws = csr.weight_array();
  pcq::par::parallel_for(wide.size(), num_threads,
                         [&](std::size_t i) { wide[i] = ws[i]; });
  out.weights_ = pcq::bits::FixedWidthArray::pack(wide, num_threads);
  return out;
}

bool BitPackedWeightedCsr::edge_weight(VertexId u, VertexId v,
                                       std::uint32_t* weight_out) const {
  std::uint64_t lo = offset(u), hi = offset(u + 1);
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const VertexId c = column(mid);
    if (c == v) {
      if (weight_out) *weight_out = weight(mid);
      return true;
    }
    if (c < v)
      lo = mid + 1;
    else
      hi = mid;
  }
  return false;
}

}  // namespace pcq::csr
