#include "csr/dynamic.hpp"

#include <algorithm>
#include <chrono>

#include "csr/builder.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace pcq::csr {

using graph::Edge;
using graph::VertexId;

namespace {

// Registry lookups are name-hashed; cache the stable references once so the
// single-edge mutation path stays a couple of loads. Mirrors the dyn.cpma.*
// family (src/dyn/cpma.cpp) so dashboards can overlay the two tiers.
struct ObsHandles {
  obs::Counter& rebuilds;
  obs::LogHistogram& rebuild_us;
  obs::Gauge& overlay;

  static ObsHandles& get() {
    auto& reg = obs::MetricsRegistry::global();
    static ObsHandles h{reg.counter("csr.dynamic.rebuilds"),
                        reg.histogram("csr.dynamic.rebuild_us"),
                        reg.gauge("csr.dynamic.overlay")};
    return h;
  }
};

}  // namespace

std::size_t DynamicCsr::num_edges() const {
  // Every overlay entry either adds an edge absent from the base or
  // removes one present in it.
  std::size_t count = base_.num_edges();
  for (const Edge& e : overlay_) {
    if (base_.has_edge(e.u, e.v))
      --count;
    else
      ++count;
  }
  return count;
}

void DynamicCsr::toggle(VertexId u, VertexId v) {
  const Edge e{u, v};
  const auto it = std::lower_bound(overlay_.begin(), overlay_.end(), e);
  if (it != overlay_.end() && *it == e)
    overlay_.erase(it);
  else
    overlay_.insert(it, e);
  ObsHandles::get().overlay.set(static_cast<std::int64_t>(overlay_.size()));
}

void DynamicCsr::add_edge(VertexId u, VertexId v) {
  PCQ_CHECK_MSG(u < num_nodes() && v < num_nodes(),
                "node id out of range; rebuild with a larger node count");
  if (has_edge(u, v)) return;
  toggle(u, v);
}

void DynamicCsr::remove_edge(VertexId u, VertexId v) {
  PCQ_CHECK_MSG(u < num_nodes() && v < num_nodes(),
                "node id out of range");
  if (!has_edge(u, v)) return;
  toggle(u, v);
}

bool DynamicCsr::has_edge(VertexId u, VertexId v) const {
  const bool in_base = base_.has_edge(u, v);
  const bool toggled =
      std::binary_search(overlay_.begin(), overlay_.end(), Edge{u, v});
  return in_base != toggled;  // XOR
}

std::vector<VertexId> DynamicCsr::neighbors(VertexId u) const {
  std::vector<VertexId> row = base_.neighbors(u);
  // Overlay entries for u form a contiguous sorted slice.
  const auto lo = std::lower_bound(overlay_.begin(), overlay_.end(), Edge{u, 0});
  std::vector<VertexId> merged;
  merged.reserve(row.size());
  std::size_t i = 0;
  auto it = lo;
  while (i < row.size() || (it != overlay_.end() && it->u == u)) {
    const bool overlay_left = it != overlay_.end() && it->u == u;
    if (!overlay_left) {
      merged.push_back(row[i++]);
    } else if (i >= row.size()) {
      merged.push_back(it->v);  // pending addition past the row's end
      ++it;
    } else if (row[i] < it->v) {
      merged.push_back(row[i++]);
    } else if (it->v < row[i]) {
      merged.push_back(it->v);  // pending addition
      ++it;
    } else {
      ++i;  // pending removal cancels the base entry
      ++it;
    }
  }
  return merged;
}

bool DynamicCsr::needs_rebuild() const {
  return static_cast<double>(overlay_.size()) >
         rebuild_ratio_ * static_cast<double>(std::max<std::size_t>(
                              1, base_.num_edges()));
}

void DynamicCsr::rebuild(int num_threads) {
  const auto t0 = std::chrono::steady_clock::now();
  graph::EdgeList merged;
  merged.reserve(num_edges());
  const VertexId n = base_.num_nodes();
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v : neighbors(u)) merged.push_back({u, v});
  overlay_.clear();
  // `merged` is emitted in (u, v) order, so the sorted-input pipeline
  // applies directly.
  base_ = build_bitpacked_csr_from_sorted(merged, n, num_threads);
  ObsHandles& obs = ObsHandles::get();
  obs.rebuilds.add(1);
  obs.rebuild_us.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  obs.overlay.set(0);
}

}  // namespace pcq::csr
