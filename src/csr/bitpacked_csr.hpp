// Bit-packed CSR — §III-A3 / Algorithm 4.
//
// Both CSR arrays are fixed-width bit packed (the codec of ref [7]): the
// cumulative degree array iA in bits_for(num_edges) bits per entry and the
// column array jA in bits_for(num_nodes - 1) bits per entry. Fixed widths
// keep random access O(1) — row u is the packed slice
// [offset(u), offset(u+1)) of jA — so all the querying algorithms of
// Section V run directly on the compressed form, never decompressing more
// than the rows they touch.
//
// `decode_row` is the paper's GetRowFromCSR(A, startingIndex, degree,
// numBits) from ref [28]: it takes the packed bit array, a starting index,
// a count and the per-value bit width, and returns the decoded neighbour
// row.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bits/packed_array.hpp"
#include "csr/csr_graph.hpp"
#include "graph/types.hpp"

namespace pcq::csr {

class BitPackedCsr {
 public:
  BitPackedCsr() = default;

  /// Packs a plain CSR (Algorithm 4: per-chunk packing + merge, applied
  /// once to iA and once to jA).
  static BitPackedCsr from_csr(const CsrGraph& csr, int num_threads);

  /// Reassembles a structure from already-packed arrays (deserialization).
  /// `offsets` must hold num_nodes + 1 entries and `columns` num_edges.
  static BitPackedCsr from_parts(graph::VertexId num_nodes,
                                 std::size_t num_edges,
                                 pcq::bits::FixedWidthArray offsets,
                                 pcq::bits::FixedWidthArray columns) {
    PCQ_CHECK(offsets.size() == static_cast<std::size_t>(num_nodes) + 1);
    PCQ_CHECK(columns.size() == num_edges);
    BitPackedCsr out;
    out.num_nodes_ = num_nodes;
    out.num_edges_ = num_edges;
    out.offsets_ = std::move(offsets);
    out.columns_ = std::move(columns);
    return out;
  }

  [[nodiscard]] graph::VertexId num_nodes() const { return num_nodes_; }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  /// offset(u): index into jA of u's first neighbour.
  [[nodiscard]] std::uint64_t offset(graph::VertexId u) const {
    PCQ_DCHECK(u <= num_nodes_);
    return offsets_.get(u);
  }

  [[nodiscard]] std::uint32_t degree(graph::VertexId u) const {
    return static_cast<std::uint32_t>(offset(u + 1) - offset(u));
  }

  /// Both bounds of row u, decoded with one inline kernel call on the
  /// adjacent packed offsets instead of two out-of-line read_bits calls —
  /// this is per-row overhead on every decode, so it matters for the
  /// short rows that dominate social-network degree distributions.
  struct RowBounds {
    std::uint64_t begin;
    std::uint64_t end;
  };
  [[nodiscard]] RowBounds row_bounds(graph::VertexId u) const {
    PCQ_DCHECK(u < num_nodes_);
    std::uint64_t pair[2];
    offsets_.get_range_into(u, 2, pair);
    return {pair[0], pair[1]};
  }

  /// Decodes the single column entry at packed index i (jA[i]).
  [[nodiscard]] graph::VertexId column(std::uint64_t i) const {
    return static_cast<graph::VertexId>(columns_.get(i));
  }

  /// GetRowFromCSR: decodes u's neighbour row into `out`, which must have
  /// room for degree(u) values. Returns the row length. Runs the bulk
  /// word-streaming kernel straight into the VertexId buffer. Inline so
  /// per-row call overhead doesn't dominate short rows in batch decodes.
  std::size_t decode_row(graph::VertexId u, std::span<graph::VertexId> out) const {
    const RowBounds row = row_bounds(u);
    const auto deg = static_cast<std::size_t>(row.end - row.begin);
    PCQ_CHECK(out.size() >= deg);
    columns_.get_range_into(row.begin, deg, out.data());
    return deg;
  }

  /// Convenience allocation-returning variant.
  [[nodiscard]] std::vector<graph::VertexId> neighbors(graph::VertexId u) const;

  /// Streaming decoder over u's packed row — iterates the neighbours
  /// without materialising them (values are the packed column ids).
  [[nodiscard]] pcq::bits::RowCursor row_cursor(graph::VertexId u) const {
    const RowBounds row = row_bounds(u);
    return columns_.cursor(row.begin,
                           static_cast<std::size_t>(row.end - row.begin));
  }

  /// Binary search of u's packed row (rows are v-sorted by construction).
  /// Decodes O(log degree) packed values, not the whole row.
  [[nodiscard]] bool has_edge(graph::VertexId u, graph::VertexId v) const;

  /// Bits per iA entry / per jA entry (the paper's numBits).
  [[nodiscard]] unsigned offset_bits() const { return offsets_.width(); }
  [[nodiscard]] unsigned column_bits() const { return columns_.width(); }

  /// Payload footprint — Table II's "CSR" column.
  [[nodiscard]] std::size_t size_bytes() const {
    return offsets_.size_bytes() + columns_.size_bytes();
  }

  /// Expands back to a plain CSR (round-trip testing and interop); both
  /// arrays decode through the bulk kernel, chunked over `num_threads`.
  [[nodiscard]] CsrGraph to_csr(int num_threads = 1) const;

  [[nodiscard]] const pcq::bits::FixedWidthArray& packed_offsets() const {
    return offsets_;
  }
  [[nodiscard]] const pcq::bits::FixedWidthArray& packed_columns() const {
    return columns_;
  }

 private:
  graph::VertexId num_nodes_ = 0;
  std::size_t num_edges_ = 0;
  pcq::bits::FixedWidthArray offsets_;  // iA: n + 1 cumulative degrees
  pcq::bits::FixedWidthArray columns_;  // jA: m column ids
};

}  // namespace pcq::csr
