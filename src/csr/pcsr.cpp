#include "csr/pcsr.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace pcq::csr {

using graph::Edge;
using graph::VertexId;

namespace {

std::size_t segment_size_for(std::size_t capacity) {
  // Θ(log N) slots per leaf segment, rounded to a power of two >= 8.
  std::size_t size = 8;
  while (size * size < capacity) size *= 2;
  return std::min(size, capacity);
}

}  // namespace

PmaCsr::PmaCsr() {
  slots_.assign(16, kEmpty);
  segment_size_ = 8;
  seg_min_.assign(num_segments(), kEmpty);
  seg_count_.assign(num_segments(), 0);
}

PmaCsr::PmaCsr(const graph::EdgeList& sorted) : PmaCsr() {
  PCQ_DCHECK(sorted.is_sorted());
  const auto edges = sorted.edges();
  if (edges.empty()) return;

  // Capacity for 50% density.
  std::size_t capacity = 16;
  while (capacity < edges.size() * 2) capacity *= 2;
  segment_size_ = segment_size_for(capacity);
  slots_.assign(capacity, kEmpty);
  count_ = edges.size();

  // Spread evenly: element i goes to slot floor(i * capacity / count).
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const std::size_t slot = i * capacity / edges.size();
    slots_[slot] = key_of(edges[i].u, edges[i].v);
  }
  seg_min_.assign(num_segments(), kEmpty);
  seg_count_.assign(num_segments(), 0);
  rebuild_directory(0, num_segments());
}

unsigned PmaCsr::tree_height() const {
  const std::size_t segs = num_segments();
  return segs <= 1 ? 0
                   : static_cast<unsigned>(std::bit_width(segs - 1));
}

double PmaCsr::max_density(unsigned level) const {
  // Leaf 1.0 down to root 0.75 (linear in level / height).
  const unsigned h = tree_height();
  if (h == 0) return 1.0;
  return 1.0 - 0.25 * static_cast<double>(level) / static_cast<double>(h);
}

double PmaCsr::min_density(unsigned level) const {
  // Leaf 0.10 up to root 0.30.
  const unsigned h = tree_height();
  if (h == 0) return 0.0;
  return 0.10 + 0.20 * static_cast<double>(level) / static_cast<double>(h);
}

std::size_t PmaCsr::find_segment(std::uint64_t key) const {
  // Effective min of segment m: the min of the nearest non-empty segment
  // at or before m ("-inf" when that prefix is all empty). Effective
  // minima are non-decreasing, so binary search finds the last segment
  // with effective min <= key — the segment where `key` belongs.
  std::size_t lo = 0, hi = num_segments() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    std::size_t probe = mid;
    while (probe > 0 && seg_min_[probe] == kEmpty) --probe;
    const bool le = seg_min_[probe] == kEmpty || seg_min_[probe] <= key;
    if (le)
      lo = mid;
    else
      hi = mid - 1;
  }
  return lo;
}

std::size_t PmaCsr::find_slot(std::uint64_t key) const {
  // A key can only live in the nearest non-empty segment at or before the
  // segment find_segment designates (empty segments carry no keys).
  std::size_t seg = find_segment(key);
  while (seg > 0 && seg_min_[seg] == kEmpty) --seg;
  const std::size_t begin = seg * segment_size_;
  const std::size_t end = begin + segment_size_;
  for (std::size_t i = begin; i < end; ++i)
    if (slots_[i] == key) return i;
  return static_cast<std::size_t>(-1);
}

bool PmaCsr::has_edge(VertexId u, VertexId v) const {
  return find_slot(key_of(u, v)) != static_cast<std::size_t>(-1);
}

void PmaCsr::insert_into_segment(std::size_t seg, std::uint64_t key) {
  const std::size_t begin = seg * segment_size_;
  const std::size_t end = begin + segment_size_;
  // Compact the segment right-to-left while finding the insertion point:
  // gather live keys, insert sorted, rewrite left-packed.
  std::vector<std::uint64_t> live;
  live.reserve(segment_size_);
  for (std::size_t i = begin; i < end; ++i)
    if (slots_[i] != kEmpty) live.push_back(slots_[i]);
  live.insert(std::lower_bound(live.begin(), live.end(), key), key);
  PCQ_DCHECK(live.size() <= segment_size_);
  std::size_t i = begin;
  for (std::uint64_t k : live) slots_[i++] = k;
  for (; i < end; ++i) slots_[i] = kEmpty;
  seg_min_[seg] = live.front();
  seg_count_[seg] = static_cast<std::uint32_t>(live.size());
}

void PmaCsr::redistribute(std::size_t first_seg, std::size_t last_seg) {
  const std::size_t begin = first_seg * segment_size_;
  const std::size_t end = last_seg * segment_size_;
  std::vector<std::uint64_t> live;
  live.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i)
    if (slots_[i] != kEmpty) live.push_back(slots_[i]);
  const std::size_t window = end - begin;
  std::fill(slots_.begin() + static_cast<std::ptrdiff_t>(begin),
            slots_.begin() + static_cast<std::ptrdiff_t>(end), kEmpty);
  for (std::size_t i = 0; i < live.size(); ++i)
    slots_[begin + i * window / live.size()] = live[i];
  rebuild_directory(first_seg, last_seg);
}

void PmaCsr::rebuild_directory(std::size_t first_seg, std::size_t last_seg) {
  for (std::size_t s = first_seg; s < last_seg; ++s) {
    seg_min_[s] = kEmpty;
    std::uint32_t cnt = 0;
    const std::size_t begin = s * segment_size_;
    for (std::size_t i = begin; i < begin + segment_size_; ++i) {
      if (slots_[i] == kEmpty) continue;
      if (seg_min_[s] == kEmpty) seg_min_[s] = slots_[i];
      ++cnt;
    }
    seg_count_[s] = cnt;
  }
}

void PmaCsr::resize_capacity(std::size_t new_capacity) {
  std::vector<std::uint64_t> live;
  live.reserve(count_);
  for (std::uint64_t k : slots_)
    if (k != kEmpty) live.push_back(k);

  segment_size_ = segment_size_for(new_capacity);
  slots_.assign(new_capacity, kEmpty);
  seg_min_.assign(num_segments(), kEmpty);
  seg_count_.assign(num_segments(), 0);
  if (!live.empty()) {
    for (std::size_t i = 0; i < live.size(); ++i)
      slots_[i * new_capacity / live.size()] = live[i];
  }
  rebuild_directory(0, num_segments());
}

bool PmaCsr::add_edge(VertexId u, VertexId v) {
  const std::uint64_t key = key_of(u, v);
  if (find_slot(key) != static_cast<std::size_t>(-1)) return false;

  // Insert into the nearest non-empty segment at or before the designated
  // one — that segment may hold keys larger than `key`, which inserting
  // into a later (empty) segment would leapfrog.
  auto target_segment = [this](std::uint64_t k) {
    std::size_t s = find_segment(k);
    while (s > 0 && seg_min_[s] == kEmpty) --s;
    return s;
  };
  std::size_t seg = target_segment(key);
  if (seg_count_[seg] >= segment_size_) {
    // Find the smallest enclosing power-of-two window under its density
    // threshold and redistribute it; grow if even the root is full.
    const std::size_t segs = num_segments();
    std::size_t window = 1;
    unsigned level = 0;
    std::size_t first = seg, last = seg + 1;
    bool balanced = false;
    while (window <= segs) {
      first = (seg / window) * window;
      last = std::min(first + window, segs);
      std::size_t used = 0;
      for (std::size_t s = first; s < last; ++s) used += seg_count_[s];
      const double density = static_cast<double>(used + 1) /
                             static_cast<double>((last - first) * segment_size_);
      if (density <= max_density(level)) {
        if (window > 1) redistribute(first, last);
        balanced = true;
        break;
      }
      window *= 2;
      ++level;
    }
    if (!balanced) resize_capacity(slots_.size() * 2);
    seg = target_segment(key);
    if (seg_count_[seg] >= segment_size_) {
      // Degenerate skew (all keys in one segment after redistribute):
      // force growth.
      resize_capacity(slots_.size() * 2);
      seg = target_segment(key);
    }
  }
  insert_into_segment(seg, key);
  ++count_;
  return true;
}

bool PmaCsr::remove_edge(VertexId u, VertexId v) {
  const std::uint64_t key = key_of(u, v);
  const std::size_t slot = find_slot(key);
  if (slot == static_cast<std::size_t>(-1)) return false;
  const std::size_t seg = slot / segment_size_;
  slots_[slot] = kEmpty;
  --count_;
  rebuild_directory(seg, seg + 1);
  // Shrink when globally sparse (quarter density), keeping a floor.
  if (slots_.size() > 16 && count_ * 4 < slots_.size()) {
    resize_capacity(std::max<std::size_t>(16, slots_.size() / 2));
    return true;
  }
  // Low-density window rebalance — the downward mirror of add_edge's
  // walk. A partial drain can empty this segment while the array as a
  // whole stays above the shrink trigger; without redistribution the
  // emptied run grows with every delete (neighbors() and find_segment
  // walk backwards over it) and a later skewed insert burst pays the
  // worst-case redistribute. Walk up to the smallest enclosing
  // power-of-two window still at/above its min-density bound and spread
  // its keys evenly; if even the root window is below its bound (the
  // [0.25, 0.30) gap the global trigger leaves), rebalance the whole
  // array in place.
  if (tree_height() > 0 &&
      static_cast<double>(seg_count_[seg]) <
          min_density(0) * static_cast<double>(segment_size_)) {
    const std::size_t segs = num_segments();
    std::size_t window = 2;
    unsigned level = 1;
    bool balanced = false;
    while (window <= segs) {
      const std::size_t first = (seg / window) * window;
      const std::size_t last = std::min(first + window, segs);
      std::size_t used = 0;
      for (std::size_t s = first; s < last; ++s) used += seg_count_[s];
      if (static_cast<double>(used) >=
          min_density(level) *
              static_cast<double>((last - first) * segment_size_)) {
        redistribute(first, last);
        balanced = true;
        break;
      }
      window *= 2;
      ++level;
    }
    if (!balanced) redistribute(0, segs);
  }
  return true;
}

std::vector<VertexId> PmaCsr::neighbors(VertexId u) const {
  const std::uint64_t lo_key = key_of(u, 0);
  std::vector<VertexId> out;
  // Start scanning at the nearest non-empty segment at or before the one
  // that would contain (u, 0).
  std::size_t seg = find_segment(lo_key);
  while (seg > 0 && seg_min_[seg] == kEmpty) --seg;
  for (std::size_t i = seg * segment_size_; i < slots_.size(); ++i) {
    const std::uint64_t k = slots_[i];
    if (k == kEmpty) continue;
    const auto ku = static_cast<VertexId>(k >> 32);
    if (ku > u) break;
    if (ku == u) out.push_back(static_cast<VertexId>(k & 0xffffffffu));
  }
  return out;
}

std::vector<Edge> PmaCsr::to_edges() const {
  std::vector<Edge> out;
  out.reserve(count_);
  for (std::uint64_t k : slots_) {
    if (k == kEmpty) continue;
    out.push_back({static_cast<VertexId>(k >> 32),
                   static_cast<VertexId>(k & 0xffffffffu)});
  }
  return out;
}

std::size_t PmaCsr::size_bytes() const {
  return slots_.size() * sizeof(std::uint64_t) +
         seg_min_.size() * sizeof(std::uint64_t) +
         seg_count_.size() * sizeof(std::uint32_t);
}

bool PmaCsr::check_invariants() const {
  // Sorted ignoring gaps; directory consistent; count matches.
  std::uint64_t prev = 0;
  bool first = true;
  std::size_t live = 0;
  for (std::uint64_t k : slots_) {
    if (k == kEmpty) continue;
    ++live;
    if (!first && k <= prev) return false;
    prev = k;
    first = false;
  }
  if (live != count_) return false;
  for (std::size_t s = 0; s < num_segments(); ++s) {
    std::uint32_t cnt = 0;
    std::uint64_t min = kEmpty;
    for (std::size_t i = s * segment_size_; i < (s + 1) * segment_size_; ++i) {
      if (slots_[i] == kEmpty) continue;
      if (min == kEmpty) min = slots_[i];
      ++cnt;
    }
    if (cnt != seg_count_[s] || min != seg_min_[s]) return false;
  }
  return true;
}

}  // namespace pcq::csr
