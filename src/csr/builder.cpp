#include "csr/builder.hpp"

#include "csr/degree.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/parallel_for.hpp"
#include "par/prefix_sum.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pcq::csr {

using graph::EdgeList;
using graph::VertexId;

namespace {

/// Extracts the source column of the edge list (the array A that
/// Algorithms 2/3 operate on).
std::vector<VertexId> source_column(const EdgeList& list, int num_threads) {
  std::vector<VertexId> sources(list.size());
  const auto edges = list.edges();
  pcq::par::parallel_for(edges.size(), num_threads,
                         [&](std::size_t i) { sources[i] = edges[i].u; });
  return sources;
}

}  // namespace

CsrGraph build_csr_from_sorted(const EdgeList& list, VertexId num_nodes,
                               int num_threads, CsrBuildTimings* timings) {
  PCQ_DCHECK(list.is_sorted());
  if (num_nodes == 0) num_nodes = list.num_nodes();
  pcq::obs::MetricsRegistry::global().counter("csr.builds").add(1);
  pcq::util::Timer timer;

  // Phase 1: degree array (Algorithms 2 + 3).
  const std::vector<VertexId> sources = source_column(list, num_threads);
  timer.restart();
  std::vector<std::uint32_t> degrees;
  {
    PCQ_TRACE_SCOPE("csr.degree", list.size());
    degrees = parallel_degree_from_sorted(sources, num_nodes, num_threads);
  }
  if (timings) timings->degree = timer.seconds();

  // Phase 2: offsets via the chunked prefix sum (Algorithm 1).
  timer.restart();
  std::vector<std::uint64_t> offsets;
  {
    PCQ_TRACE_SCOPE("csr.scan", degrees.size());
    offsets = pcq::par::offsets_from_degrees(degrees, num_threads);
  }
  // Contract: the scan's cumulative total must equal the edge count, or
  // every row slice downstream is wrong (the degree/scan chunk-merge
  // arithmetic is exactly what debug-check builds re-verify here).
  PCQ_DCHECK_MSG(offsets.back() == list.size(),
                 "prefix sum of degrees != edge count");
  if (timings) timings->scan = timer.seconds();

  // Phase 3: with the input sorted by source, the column array is the
  // destination column verbatim — a parallel copy.
  timer.restart();
  std::vector<VertexId> columns(list.size());
  {
    PCQ_TRACE_SCOPE("csr.fill", list.size());
    const auto edges = list.edges();
    pcq::par::parallel_for(edges.size(), num_threads, [&](std::size_t i) {
      PCQ_DCHECK_MSG(edges[i].v < num_nodes,
                     "edge destination outside declared vertex range");
      columns[i] = edges[i].v;
    });
  }
  if (timings) timings->fill = timer.seconds();

  return CsrGraph(std::move(offsets), std::move(columns));
}

CsrGraph build_csr(EdgeList list, VertexId num_nodes, int num_threads,
                   CsrBuildTimings* timings) {
  list.sort(num_threads);
  return build_csr_from_sorted(list, num_nodes, num_threads, timings);
}

BitPackedCsr build_bitpacked_csr_from_sorted(const EdgeList& list,
                                             VertexId num_nodes,
                                             int num_threads,
                                             CsrBuildTimings* timings) {
  CsrGraph csr = build_csr_from_sorted(list, num_nodes, num_threads, timings);
  pcq::util::Timer timer;
  BitPackedCsr packed;
  {
    PCQ_TRACE_SCOPE("csr.pack", csr.num_edges());
    packed = BitPackedCsr::from_csr(csr, num_threads);
  }
  if (timings) timings->pack = timer.seconds();
  return packed;
}

CsrGraph build_csr_sequential(const EdgeList& list, VertexId num_nodes) {
  PCQ_DCHECK(list.is_sorted());
  if (num_nodes == 0) num_nodes = list.num_nodes();
  const auto edges = list.edges();

  std::vector<std::uint64_t> offsets(num_nodes + 1, 0);
  for (const auto& e : edges) ++offsets[e.u + 1];
  for (std::size_t i = 1; i <= num_nodes; ++i) offsets[i] += offsets[i - 1];

  std::vector<VertexId> columns(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) columns[i] = edges[i].v;
  return CsrGraph(std::move(offsets), std::move(columns));
}

}  // namespace pcq::csr
