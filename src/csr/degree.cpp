#include "csr/degree.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "par/chunking.hpp"
#include "par/parallel_for.hpp"
#include "par/threads.hpp"
#include "util/check.hpp"

namespace pcq::csr {

using graph::VertexId;

std::vector<std::uint32_t> sequential_degree_from_sorted(
    std::span<const VertexId> sources, VertexId num_nodes) {
  std::vector<std::uint32_t> degrees(num_nodes, 0);
  std::size_t i = 0;
  const std::size_t n = sources.size();
  while (i < n) {
    const VertexId node = sources[i];
    PCQ_DCHECK(node < num_nodes);
    std::uint32_t run = 0;
    while (i < n && sources[i] == node) {
      ++run;
      ++i;
    }
    degrees[node] = run;
  }
  return degrees;
}

std::vector<std::uint32_t> parallel_degree_from_sorted(
    std::span<const VertexId> sources, VertexId num_nodes, int num_threads) {
  const std::size_t n = sources.size();
  PCQ_DCHECK(std::is_sorted(sources.begin(), sources.end()));

  const auto p = static_cast<std::size_t>(pcq::par::clamp_threads(num_threads));
  const std::size_t chunks = pcq::par::num_nonempty_chunks(n, p);
  if (chunks <= 1) return sequential_degree_from_sorted(sources, num_nodes);

  std::vector<std::uint32_t> degrees(num_nodes, 0);
  // globalTempDegree: one spill slot per processor for its first run.
  std::vector<std::uint32_t> temp(chunks, 0);

  // Algorithm 2, one invocation per chunk. The implicit barrier at the end
  // of the region is Algorithm 3's sync().
  {
    PCQ_TRACE_SCOPE("degree.count", chunks);
    pcq::par::parallel_for_chunks(
        n, static_cast<int>(chunks),
        [&](std::size_t c, pcq::par::ChunkRange r) {
          std::size_t i = r.begin;
          // First run -> spill slot: it may continue the left neighbour's
          // final run (lines 2-4 of Algorithm 2).
          const VertexId first = sources[i];
          std::uint32_t run = 0;
          while (i < r.end && sources[i] == first) {
            ++run;
            ++i;
          }
          temp[c] = run;
          // Remaining runs start inside this chunk, so this chunk is the
          // unique direct writer for their nodes (lines 5-7).
          while (i < r.end) {
            const VertexId node = sources[i];
            PCQ_DCHECK(node < num_nodes);
            run = 0;
            while (i < r.end && sources[i] == node) {
              ++run;
              ++i;
            }
            degrees[node] = run;
          }
        });
  }

  // Algorithm 3 merge (Figure 3): fold each chunk's spill slot into the
  // degree of the node at the chunk's front. Sequential — O(p) work — which
  // also makes runs spanning multiple whole chunks (several spill slots,
  // one node) correct without atomics.
  {
    PCQ_TRACE_SCOPE("degree.merge", chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      const auto r = pcq::par::chunk_range(n, chunks, c);
      // The direct-write loop bounds-checks every run head, but a chunk
      // whose *first* node is out of range only ever reaches this merge.
      PCQ_DCHECK_MSG(sources[r.begin] < num_nodes,
                     "source id outside declared vertex range");
      degrees[sources[r.begin]] += temp[c];
    }
  }
  return degrees;
}

}  // namespace pcq::csr
