// Dynamic CSR: a compressed base plus a mutable overlay.
//
// §II notes CSR's weakness — "a static storage format that can require
// shifting the entire edge array when adding an edge" — and cites PCSR/
// PPCSR as heavyweight cures. This module is the lightweight alternative
// the paper's own machinery suggests: keep the bulk of the graph in the
// bit-packed CSR and buffer mutations in a small sorted overlay; when the
// overlay grows past a threshold, merge and re-compress with the parallel
// pipeline (which Table II shows is fast enough to amortise).
//
// Semantics: add_edge/remove_edge toggle the overlay (adding an edge that
// is pending-removed cancels the removal and vice versa). Queries see
// base XOR overlay — the same parity rule Section IV uses for time frames.
#pragma once

#include <cstdint>
#include <vector>

#include "csr/bitpacked_csr.hpp"
#include "graph/edge_list.hpp"

namespace pcq::csr {

class DynamicCsr {
 public:
  DynamicCsr() = default;

  /// Wraps an existing compressed graph.
  explicit DynamicCsr(BitPackedCsr base, double rebuild_ratio = 0.25)
      : base_(std::move(base)), rebuild_ratio_(rebuild_ratio) {}

  [[nodiscard]] graph::VertexId num_nodes() const { return base_.num_nodes(); }

  /// Edges visible to queries (base plus pending additions, minus pending
  /// removals).
  [[nodiscard]] std::size_t num_edges() const;

  /// Buffers the addition of (u, v); a pending removal of the same edge is
  /// cancelled instead. No-op if the edge is already visible.
  /// u and v must be < num_nodes() (grow the graph by rebuilding from an
  /// edge list with a larger node count).
  void add_edge(graph::VertexId u, graph::VertexId v);

  /// Buffers the removal of (u, v); cancels a pending addition. No-op if
  /// the edge is not visible.
  void remove_edge(graph::VertexId u, graph::VertexId v);

  /// Query through the overlay: base XOR pending toggles.
  [[nodiscard]] bool has_edge(graph::VertexId u, graph::VertexId v) const;

  /// Neighbour row with the overlay applied, sorted ascending.
  [[nodiscard]] std::vector<graph::VertexId> neighbors(graph::VertexId u) const;

  /// Pending (unmerged) toggles.
  [[nodiscard]] std::size_t overlay_size() const { return overlay_.size(); }

  /// True when the overlay exceeds rebuild_ratio * base edges and a
  /// rebuild() is advised. add_edge/remove_edge never rebuild implicitly —
  /// the caller controls when the (parallel, but non-trivial) compaction
  /// runs.
  [[nodiscard]] bool needs_rebuild() const;

  /// Merges the overlay into the base by re-running the parallel pipeline
  /// (Algorithms 1-4) on the merged edge list.
  void rebuild(int num_threads);

  [[nodiscard]] const BitPackedCsr& base() const { return base_; }

 private:
  /// Flips (u, v)'s presence in the sorted overlay.
  void toggle(graph::VertexId u, graph::VertexId v);

  BitPackedCsr base_;
  std::vector<graph::Edge> overlay_;  ///< sorted; membership == pending toggle
  double rebuild_ratio_ = 0.25;
};

}  // namespace pcq::csr
