#include "csr/serialize.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <vector>

#include "util/io_error.hpp"

namespace pcq::csr {

namespace {

constexpr char kMagicV1[8] = {'P', 'C', 'Q', 'C', 'S', 'R', 'v', '1'};
constexpr char kMagicV2[8] = {'P', 'C', 'Q', 'C', 'S', 'R', 'v', '2'};
constexpr std::uint32_t kEndianCanary = 0x01020304;

// v2: each packed payload starts on a 64-byte boundary relative to the
// file start, so an mmap of the file (page-aligned) yields word- and
// cacheline-aligned payload pointers that BitVector views can borrow.
constexpr std::size_t kPayloadAlign = 64;

constexpr std::size_t align_up(std::size_t pos) {
  return (pos + kPayloadAlign - 1) & ~(kPayloadAlign - 1);
}

struct Header {
  char magic[8];
  std::uint32_t canary;
  std::uint32_t offset_width;
  std::uint32_t column_width;
  std::uint32_t reserved;
  std::uint64_t num_nodes;
  std::uint64_t num_edges;
  std::uint64_t offset_bits;
  std::uint64_t column_bits;
};
static_assert(sizeof(Header) == 56);

class File {
 public:
  File(const std::string& path, const char* mode)
      : path_(path), f_(std::fopen(path.c_str(), mode)), owns_(true) {
    if (f_ == nullptr) throw IoError(path_, "cannot open CSR file");
  }
  /// Borrows an already-open stream (in-memory parsing: fmemopen'd fuzz
  /// inputs, pipes); the caller keeps ownership.
  File(std::FILE* stream, const std::string& name)
      : path_(name), f_(stream), owns_(false) {
    if (f_ == nullptr) throw IoError(path_, "cannot open CSR stream");
  }
  ~File() {
    if (f_ && owns_) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  std::FILE* get() const { return f_; }
  [[noreturn]] void fail(const char* what) const { throw IoError(path_, what); }

 private:
  std::string path_;
  std::FILE* f_;
  bool owns_;
};

void write_bits(const File& f, const pcq::bits::BitVector& bits) {
  const auto words = bits.words();
  if (!words.empty() &&
      std::fwrite(words.data(), 8, words.size(), f.get()) != words.size())
    f.fail("short write");
}

/// Writes zero bytes advancing `pos` to the next payload boundary.
void write_pad(const File& f, std::size_t& pos) {
  static constexpr char kZeros[kPayloadAlign] = {};
  const std::size_t pad = align_up(pos) - pos;
  if (pad != 0 && std::fwrite(kZeros, 1, pad, f.get()) != pad)
    f.fail("short write");
  pos += pad;
}

/// Consumes padding bytes up to the next payload boundary (fread, not
/// fseek, so pipes and fmemopen streams behave identically).
void skip_pad(const File& f, std::size_t& pos) {
  char sink[kPayloadAlign];
  const std::size_t pad = align_up(pos) - pos;
  if (pad != 0 && std::fread(sink, 1, pad, f.get()) != pad)
    f.fail("truncated CSR file");
  pos += pad;
}

pcq::bits::BitVector read_bits(const File& f, std::uint64_t nbits) {
  const auto total = static_cast<std::size_t>((nbits + 63) / 64);
  // Read in bounded slabs: a corrupt header can declare a payload of many
  // gigabytes, and a single up-front allocation of that size is itself a
  // denial of service (the fuzz harnesses OOM on it long before fread
  // reports the truncation). 8 MiB at a time bounds the waste.
  constexpr std::size_t kSlabWords = std::size_t{1} << 20;
  std::vector<std::uint64_t> words;
  words.reserve(std::min(total, kSlabWords));
  std::size_t done = 0;
  while (done < total) {
    const std::size_t n = std::min(kSlabWords, total - done);
    words.resize(done + n);
    if (std::fread(words.data() + done, 8, n, f.get()) != n)
      f.fail("truncated CSR file");
    done += n;
  }
  return pcq::bits::BitVector::from_words(std::move(words), nbits);
}

/// Rejects a header whose geometry is internally inconsistent *before* any
/// structure is constructed, so a corrupt file can never yield a
/// partially-valid BitPackedCsr (and never drives FixedWidthArray::from_bits
/// into an aborting PCQ_CHECK). Shared by the buffered and mapped parsers;
/// `name` labels the thrown IoError.
void validate_header(const std::string& name, const Header& h) {
  if (h.canary != kEndianCanary)
    throw IoError(name, "endianness canary mismatch");
  if (h.offset_width < 1 || h.offset_width > 64 || h.column_width < 1 ||
      h.column_width > 64)
    throw IoError(name, "corrupt CSR header: bit width out of [1, 64]");
  if (h.num_nodes > std::numeric_limits<graph::VertexId>::max() - 1)
    throw IoError(name, "corrupt CSR header: node count exceeds VertexId range");
  if (h.num_edges > (std::uint64_t{1} << 57))
    throw IoError(name, "corrupt CSR header: implausible edge count");
  // Widths are <= 64 and counts are bounded above, so these products
  // cannot overflow.
  if (h.offset_bits != (h.num_nodes + 1) * h.offset_width)
    throw IoError(name, "corrupt CSR header: offset bit count mismatch");
  if (h.column_bits != h.num_edges * h.column_width)
    throw IoError(name, "corrupt CSR header: column bit count mismatch");
}

BitPackedCsr assemble(const std::string& name, const Header& h,
                      pcq::bits::FixedWidthArray offsets,
                      pcq::bits::FixedWidthArray columns) {
  // O(1) payload spot checks: the packed iA must start at 0 and end at the
  // header's edge count, or every row slice derived from it is garbage.
  // (pcq::check::validate_csr is the full O(n + m) scan; `pcq check`
  // exposes it for files of untrusted provenance.)
  if (offsets.get(0) != 0)
    throw IoError(name, "corrupt CSR payload: first offset not 0");
  if (offsets.get(static_cast<std::size_t>(h.num_nodes)) != h.num_edges)
    throw IoError(name, "corrupt CSR payload: final offset != edge count");
  return BitPackedCsr::from_parts(static_cast<graph::VertexId>(h.num_nodes),
                                  static_cast<std::size_t>(h.num_edges),
                                  std::move(offsets), std::move(columns));
}

}  // namespace

void save_bitpacked_csr(const BitPackedCsr& csr, const std::string& path) {
  File f(path, "wb");
  Header h{};
  std::memcpy(h.magic, kMagicV2, 8);
  h.canary = kEndianCanary;
  h.offset_width = csr.offset_bits();
  h.column_width = csr.column_bits();
  h.num_nodes = csr.num_nodes();
  h.num_edges = csr.num_edges();
  h.offset_bits = csr.packed_offsets().bits().size();
  h.column_bits = csr.packed_columns().bits().size();
  if (std::fwrite(&h, sizeof h, 1, f.get()) != 1) f.fail("short write");
  std::size_t pos = sizeof h;
  write_pad(f, pos);
  write_bits(f, csr.packed_offsets().bits());
  pos += csr.packed_offsets().bits().words().size() * 8;
  write_pad(f, pos);
  write_bits(f, csr.packed_columns().bits());
  if (std::fflush(f.get()) != 0) f.fail("short write");
}

namespace {

BitPackedCsr load_from(const File& f, const std::string& name) {
  Header h{};
  if (std::fread(&h, sizeof h, 1, f.get()) != 1) f.fail("truncated header");
  const bool v2 = std::memcmp(h.magic, kMagicV2, 8) == 0;
  if (!v2 && std::memcmp(h.magic, kMagicV1, 8) != 0) f.fail("bad CSR magic");
  validate_header(name, h);

  std::size_t pos = sizeof h;
  if (v2) skip_pad(f, pos);
  auto offsets = pcq::bits::FixedWidthArray::from_bits(
      read_bits(f, h.offset_bits),
      static_cast<std::size_t>(h.num_nodes) + 1, h.offset_width);
  pos += static_cast<std::size_t>((h.offset_bits + 63) / 64) * 8;
  if (v2) skip_pad(f, pos);
  auto columns = pcq::bits::FixedWidthArray::from_bits(
      read_bits(f, h.column_bits),
      static_cast<std::size_t>(h.num_edges), h.column_width);
  return assemble(name, h, std::move(offsets), std::move(columns));
}

}  // namespace

BitPackedCsr load_bitpacked_csr(const std::string& path) {
  File f(path, "rb");
  return load_from(f, path);
}

BitPackedCsr load_bitpacked_csr_stream(std::FILE* stream,
                                       const std::string& name) {
  File f(stream, name);
  return load_from(f, name);
}

BitPackedCsr map_bitpacked_csr_bytes(std::span<const std::byte> bytes,
                                     const std::string& name) {
  PCQ_CHECK_MSG(reinterpret_cast<std::uintptr_t>(bytes.data()) % 8 == 0,
                "mapped CSR image must be 8-byte aligned");
  if (bytes.size() < sizeof(Header)) throw IoError(name, "truncated header");
  Header h{};
  std::memcpy(&h, bytes.data(), sizeof h);
  if (std::memcmp(h.magic, kMagicV2, 8) != 0) {
    if (std::memcmp(h.magic, kMagicV1, 8) == 0)
      throw IoError(name, "CSR v1 layout is not mappable (unaligned payload)");
    throw IoError(name, "bad CSR magic");
  }
  validate_header(name, h);

  // Payload geometry. offset_bits/column_bits were just validated as
  // products of bounded factors, so the word counts fit comfortably and
  // the running position cannot overflow.
  const auto owords = static_cast<std::size_t>((h.offset_bits + 63) / 64);
  const auto cwords = static_cast<std::size_t>((h.column_bits + 63) / 64);
  const std::size_t opos = align_up(sizeof(Header));
  const std::size_t cpos = align_up(opos + owords * 8);
  if (cpos + cwords * 8 > bytes.size())
    throw IoError(name, "truncated CSR file");

  const auto words_at = [&](std::size_t pos, std::size_t count) {
    return std::span<const std::uint64_t>(
        reinterpret_cast<const std::uint64_t*>(bytes.data() + pos), count);
  };
  auto offsets = pcq::bits::FixedWidthArray::view(
      words_at(opos, owords), static_cast<std::size_t>(h.num_nodes) + 1,
      h.offset_width);
  auto columns = pcq::bits::FixedWidthArray::view(
      words_at(cpos, cwords), static_cast<std::size_t>(h.num_edges),
      h.column_width);
  return assemble(name, h, std::move(offsets), std::move(columns));
}

MappedCsr map_bitpacked_csr(const std::string& path) {
  MappedCsr out;
  if (!pcq::io::MappedFile::supported()) {
    out.csr = load_bitpacked_csr(path);
    return out;
  }
  pcq::io::MappedFile file = pcq::io::MappedFile::open(path);
  // v1 files have unaligned payloads: fall back to the buffered loader
  // rather than refusing files older releases wrote.
  if (file.size() >= 8 && std::memcmp(file.data(), kMagicV1, 8) == 0) {
    file = pcq::io::MappedFile();
    out.csr = load_bitpacked_csr(path);
    return out;
  }
  out.csr = map_bitpacked_csr_bytes(file.bytes(), path);
  file.advise_random();  // serving decodes rows at arbitrary offsets
  out.file = std::move(file);
  out.mapped = true;
  return out;
}

}  // namespace pcq::csr
