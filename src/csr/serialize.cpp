#include "csr/serialize.hpp"

#include <cstdio>
#include <cstring>
#include <vector>

#include "util/check.hpp"

namespace pcq::csr {

namespace {

constexpr char kMagic[8] = {'P', 'C', 'Q', 'C', 'S', 'R', 'v', '1'};
constexpr std::uint32_t kEndianCanary = 0x01020304;

struct Header {
  char magic[8];
  std::uint32_t canary;
  std::uint32_t offset_width;
  std::uint32_t column_width;
  std::uint32_t reserved;
  std::uint64_t num_nodes;
  std::uint64_t num_edges;
  std::uint64_t offset_bits;
  std::uint64_t column_bits;
};
static_assert(sizeof(Header) == 56);

class File {
 public:
  File(const std::string& path, const char* mode)
      : f_(std::fopen(path.c_str(), mode)) {
    PCQ_CHECK_MSG(f_ != nullptr, "cannot open CSR file");
  }
  ~File() {
    if (f_) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  std::FILE* get() const { return f_; }

 private:
  std::FILE* f_;
};

void write_bits(std::FILE* f, const pcq::bits::BitVector& bits) {
  const auto words = bits.words();
  if (!words.empty())
    PCQ_CHECK(std::fwrite(words.data(), 8, words.size(), f) == words.size());
}

pcq::bits::BitVector read_bits(std::FILE* f, std::uint64_t nbits) {
  std::vector<std::uint64_t> words((nbits + 63) / 64);
  if (!words.empty())
    PCQ_CHECK_MSG(std::fread(words.data(), 8, words.size(), f) == words.size(),
                  "truncated CSR file");
  return pcq::bits::BitVector::from_words(std::move(words), nbits);
}

}  // namespace

void save_bitpacked_csr(const BitPackedCsr& csr, const std::string& path) {
  File f(path, "wb");
  Header h{};
  std::memcpy(h.magic, kMagic, 8);
  h.canary = kEndianCanary;
  h.offset_width = csr.offset_bits();
  h.column_width = csr.column_bits();
  h.num_nodes = csr.num_nodes();
  h.num_edges = csr.num_edges();
  h.offset_bits = csr.packed_offsets().bits().size();
  h.column_bits = csr.packed_columns().bits().size();
  PCQ_CHECK(std::fwrite(&h, sizeof h, 1, f.get()) == 1);
  write_bits(f.get(), csr.packed_offsets().bits());
  write_bits(f.get(), csr.packed_columns().bits());
}

BitPackedCsr load_bitpacked_csr(const std::string& path) {
  File f(path, "rb");
  Header h{};
  PCQ_CHECK_MSG(std::fread(&h, sizeof h, 1, f.get()) == 1, "truncated header");
  PCQ_CHECK_MSG(std::memcmp(h.magic, kMagic, 8) == 0, "bad CSR magic");
  PCQ_CHECK_MSG(h.canary == kEndianCanary, "endianness mismatch");

  auto offsets = pcq::bits::FixedWidthArray::from_bits(
      read_bits(f.get(), h.offset_bits),
      static_cast<std::size_t>(h.num_nodes) + 1, h.offset_width);
  auto columns = pcq::bits::FixedWidthArray::from_bits(
      read_bits(f.get(), h.column_bits),
      static_cast<std::size_t>(h.num_edges), h.column_width);
  return BitPackedCsr::from_parts(static_cast<graph::VertexId>(h.num_nodes),
                                  static_cast<std::size_t>(h.num_edges),
                                  std::move(offsets), std::move(columns));
}

}  // namespace pcq::csr
