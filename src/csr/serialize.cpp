#include "csr/serialize.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <vector>

#include "util/io_error.hpp"

namespace pcq::csr {

namespace {

constexpr char kMagic[8] = {'P', 'C', 'Q', 'C', 'S', 'R', 'v', '1'};
constexpr std::uint32_t kEndianCanary = 0x01020304;

struct Header {
  char magic[8];
  std::uint32_t canary;
  std::uint32_t offset_width;
  std::uint32_t column_width;
  std::uint32_t reserved;
  std::uint64_t num_nodes;
  std::uint64_t num_edges;
  std::uint64_t offset_bits;
  std::uint64_t column_bits;
};
static_assert(sizeof(Header) == 56);

class File {
 public:
  File(const std::string& path, const char* mode)
      : path_(path), f_(std::fopen(path.c_str(), mode)), owns_(true) {
    if (f_ == nullptr) throw IoError(path_, "cannot open CSR file");
  }
  /// Borrows an already-open stream (in-memory parsing: fmemopen'd fuzz
  /// inputs, pipes); the caller keeps ownership.
  File(std::FILE* stream, const std::string& name)
      : path_(name), f_(stream), owns_(false) {
    if (f_ == nullptr) throw IoError(path_, "cannot open CSR stream");
  }
  ~File() {
    if (f_ && owns_) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  std::FILE* get() const { return f_; }
  [[noreturn]] void fail(const char* what) const { throw IoError(path_, what); }

 private:
  std::string path_;
  std::FILE* f_;
  bool owns_;
};

void write_bits(const File& f, const pcq::bits::BitVector& bits) {
  const auto words = bits.words();
  if (!words.empty() &&
      std::fwrite(words.data(), 8, words.size(), f.get()) != words.size())
    f.fail("short write");
}

pcq::bits::BitVector read_bits(const File& f, std::uint64_t nbits) {
  const auto total = static_cast<std::size_t>((nbits + 63) / 64);
  // Read in bounded slabs: a corrupt header can declare a payload of many
  // gigabytes, and a single up-front allocation of that size is itself a
  // denial of service (the fuzz harnesses OOM on it long before fread
  // reports the truncation). 8 MiB at a time bounds the waste.
  constexpr std::size_t kSlabWords = std::size_t{1} << 20;
  std::vector<std::uint64_t> words;
  words.reserve(std::min(total, kSlabWords));
  std::size_t done = 0;
  while (done < total) {
    const std::size_t n = std::min(kSlabWords, total - done);
    words.resize(done + n);
    if (std::fread(words.data() + done, 8, n, f.get()) != n)
      f.fail("truncated CSR file");
    done += n;
  }
  return pcq::bits::BitVector::from_words(std::move(words), nbits);
}

/// Rejects a header whose geometry is internally inconsistent *before* any
/// structure is constructed, so a corrupt file can never yield a
/// partially-valid BitPackedCsr (and never drives FixedWidthArray::from_bits
/// into an aborting PCQ_CHECK).
void validate_header(const File& f, const Header& h) {
  if (std::memcmp(h.magic, kMagic, 8) != 0) f.fail("bad CSR magic");
  if (h.canary != kEndianCanary) f.fail("endianness canary mismatch");
  if (h.offset_width < 1 || h.offset_width > 64 || h.column_width < 1 ||
      h.column_width > 64)
    f.fail("corrupt CSR header: bit width out of [1, 64]");
  if (h.num_nodes > std::numeric_limits<graph::VertexId>::max() - 1)
    f.fail("corrupt CSR header: node count exceeds VertexId range");
  if (h.num_edges > (std::uint64_t{1} << 57))
    f.fail("corrupt CSR header: implausible edge count");
  // Widths are <= 64 and counts are bounded above, so these products
  // cannot overflow.
  if (h.offset_bits != (h.num_nodes + 1) * h.offset_width)
    f.fail("corrupt CSR header: offset bit count mismatch");
  if (h.column_bits != h.num_edges * h.column_width)
    f.fail("corrupt CSR header: column bit count mismatch");
}

}  // namespace

void save_bitpacked_csr(const BitPackedCsr& csr, const std::string& path) {
  File f(path, "wb");
  Header h{};
  std::memcpy(h.magic, kMagic, 8);
  h.canary = kEndianCanary;
  h.offset_width = csr.offset_bits();
  h.column_width = csr.column_bits();
  h.num_nodes = csr.num_nodes();
  h.num_edges = csr.num_edges();
  h.offset_bits = csr.packed_offsets().bits().size();
  h.column_bits = csr.packed_columns().bits().size();
  if (std::fwrite(&h, sizeof h, 1, f.get()) != 1) f.fail("short write");
  write_bits(f, csr.packed_offsets().bits());
  write_bits(f, csr.packed_columns().bits());
  if (std::fflush(f.get()) != 0) f.fail("short write");
}

namespace {

BitPackedCsr load_from(const File& f) {
  Header h{};
  if (std::fread(&h, sizeof h, 1, f.get()) != 1) f.fail("truncated header");
  validate_header(f, h);

  auto offsets = pcq::bits::FixedWidthArray::from_bits(
      read_bits(f, h.offset_bits),
      static_cast<std::size_t>(h.num_nodes) + 1, h.offset_width);
  auto columns = pcq::bits::FixedWidthArray::from_bits(
      read_bits(f, h.column_bits),
      static_cast<std::size_t>(h.num_edges), h.column_width);
  // O(1) payload spot checks: the packed iA must start at 0 and end at the
  // header's edge count, or every row slice derived from it is garbage.
  // (pcq::check::validate_csr is the full O(n + m) scan; `pcq check`
  // exposes it for files of untrusted provenance.)
  if (offsets.get(0) != 0)
    f.fail("corrupt CSR payload: first offset not 0");
  if (offsets.get(static_cast<std::size_t>(h.num_nodes)) != h.num_edges)
    f.fail("corrupt CSR payload: final offset != edge count");
  return BitPackedCsr::from_parts(static_cast<graph::VertexId>(h.num_nodes),
                                  static_cast<std::size_t>(h.num_edges),
                                  std::move(offsets), std::move(columns));
}

}  // namespace

BitPackedCsr load_bitpacked_csr(const std::string& path) {
  File f(path, "rb");
  return load_from(f);
}

BitPackedCsr load_bitpacked_csr_stream(std::FILE* stream,
                                       const std::string& name) {
  File f(stream, name);
  return load_from(f);
}

}  // namespace pcq::csr
