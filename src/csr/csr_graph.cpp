#include "csr/csr_graph.hpp"

#include <algorithm>

namespace pcq::csr {

bool CsrGraph::has_edge(graph::VertexId u, graph::VertexId v) const {
  const auto row = neighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

}  // namespace pcq::csr
