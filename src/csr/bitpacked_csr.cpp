#include "csr/bitpacked_csr.hpp"

#include "par/parallel_for.hpp"

namespace pcq::csr {

using graph::VertexId;

BitPackedCsr BitPackedCsr::from_csr(const CsrGraph& csr, int num_threads) {
  BitPackedCsr packed;
  packed.num_nodes_ = csr.num_nodes();
  packed.num_edges_ = csr.num_edges();

  // Algorithm 4, first pass: the degree array iA.
  const auto offs = csr.offsets();
  PCQ_DCHECK_MSG(offs.back() == csr.num_edges(),
                 "CSR final offset != edge count before packing");
  packed.offsets_ = pcq::bits::FixedWidthArray::pack_with_width(
      offs, pcq::bits::bits_for(csr.num_edges()), num_threads);

  // Second pass: the column array jA. Widened to u64 for the packer; the
  // copy is parallel and transient.
  std::vector<std::uint64_t> cols(csr.num_edges());
  const auto src = csr.columns();
  pcq::par::parallel_for(cols.size(), num_threads,
                         [&](std::size_t i) { cols[i] = src[i]; });
  const std::uint64_t max_col = csr.num_nodes() == 0 ? 0 : csr.num_nodes() - 1;
  packed.columns_ = pcq::bits::FixedWidthArray::pack_with_width(
      cols, pcq::bits::bits_for(max_col), num_threads);
  return packed;
}

std::vector<VertexId> BitPackedCsr::neighbors(VertexId u) const {
  std::vector<VertexId> out(degree(u));
  decode_row(u, out);
  return out;
}

bool BitPackedCsr::has_edge(VertexId u, VertexId v) const {
  PCQ_DCHECK_MSG(u < num_nodes_, "has_edge source outside vertex range");
  std::uint64_t lo = offset(u);
  std::uint64_t hi = offset(u + 1);
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const VertexId c = column(mid);
    if (c == v) return true;
    if (c < v)
      lo = mid + 1;
    else
      hi = mid;
  }
  return false;
}

CsrGraph BitPackedCsr::to_csr(int num_threads) const {
  std::vector<std::uint64_t> offs = offsets_.unpack(num_threads);
  std::vector<VertexId> cols(num_edges_);
  pcq::par::parallel_for_chunks(
      num_edges_, num_threads, [&](std::size_t, pcq::par::ChunkRange r) {
        columns_.get_range_into(r.begin, r.size(), cols.data() + r.begin);
      });
  return CsrGraph(std::move(offs), std::move(cols));
}

}  // namespace pcq::csr
