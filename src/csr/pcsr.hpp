// PCSR-lite: a Packed Memory Array edge store.
//
// §II describes PCSR [9] / PPCSR [13]: CSR whose edge array is replaced by
// a Packed Memory Array [10][11] — a sorted array with evenly spread gaps
// that supports O(log² N) amortised inserts without shifting everything.
// This is the related-work cure for the static-CSR weakness that the
// lightweight overlay (csr/dynamic.hpp) works around; bench_dynamic puts
// the two side by side.
//
// Edges are stored as packed 64-bit keys (u << 32 | v) in a PMA whose leaf
// segments hold Θ(log N) slots. Per-segment minima and counts accelerate
// the search; inserts that overflow a segment rebalance the smallest
// enclosing window still under its density threshold (doubling the array
// when even the root is over). Neighbour queries scan the key range
// [u << 32, (u + 1) << 32).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"

namespace pcq::csr {

class PmaCsr {
 public:
  /// Empty store sized for a few edges.
  PmaCsr();

  /// Bulk load from a (u, v)-sorted duplicate-free edge list at 50%
  /// density.
  explicit PmaCsr(const graph::EdgeList& sorted);

  [[nodiscard]] std::size_t num_edges() const { return count_; }

  /// Inserts (u, v); returns false (no change) if already present.
  bool add_edge(graph::VertexId u, graph::VertexId v);

  /// Removes (u, v); returns false if absent.
  bool remove_edge(graph::VertexId u, graph::VertexId v);

  [[nodiscard]] bool has_edge(graph::VertexId u, graph::VertexId v) const;

  /// u's neighbours, ascending.
  [[nodiscard]] std::vector<graph::VertexId> neighbors(graph::VertexId u) const;

  /// All edges in sorted order (testing / conversion back to EdgeList).
  [[nodiscard]] std::vector<graph::Edge> to_edges() const;

  /// Slot array + per-segment directories.
  [[nodiscard]] std::size_t size_bytes() const;

  /// Invariant checker used by tests: slots sorted (ignoring gaps),
  /// directories consistent, densities within root bounds.
  [[nodiscard]] bool check_invariants() const;

 private:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  static std::uint64_t key_of(graph::VertexId u, graph::VertexId v) {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  [[nodiscard]] std::size_t num_segments() const {
    return slots_.size() / segment_size_;
  }
  [[nodiscard]] unsigned tree_height() const;

  /// Max/min density for a window at `level` (0 = leaf segment).
  [[nodiscard]] double max_density(unsigned level) const;
  [[nodiscard]] double min_density(unsigned level) const;

  /// Segment that should contain `key` (last segment with min <= key).
  [[nodiscard]] std::size_t find_segment(std::uint64_t key) const;

  /// Index of `key` within the slot array, or SIZE_MAX.
  [[nodiscard]] std::size_t find_slot(std::uint64_t key) const;

  /// Inserts key into segment `seg` (which has room), keeping order.
  void insert_into_segment(std::size_t seg, std::uint64_t key);

  /// Evenly redistributes the elements of segments [first, last) in place.
  void redistribute(std::size_t first_seg, std::size_t last_seg);

  /// Grows (factor 2) or shrinks (factor 1/2) and redistributes globally.
  void resize_capacity(std::size_t new_capacity);

  void rebuild_directory(std::size_t first_seg, std::size_t last_seg);

  std::vector<std::uint64_t> slots_;     ///< sorted keys with kEmpty gaps
  std::vector<std::uint64_t> seg_min_;   ///< first key per segment (kEmpty if none)
  std::vector<std::uint32_t> seg_count_; ///< live keys per segment
  std::size_t segment_size_ = 8;
  std::size_t count_ = 0;
};

}  // namespace pcq::csr
