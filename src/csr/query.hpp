// Parallel querying of the bit-packed CSR — Section V, Algorithms 6–9.
//
// Three entry points, each mirroring one "do in parallel" block of the
// paper's Algorithm 9 dispatcher:
//
//   * batch_neighbors      (Alg. 6) — an array of neighbourhood queries is
//     split into p chunks; each processor decodes its queries' rows with
//     GetRowFromCSR.
//   * batch_edge_existence (Alg. 7) — an array of (u, v) queries is split
//     into p chunks; each processor decodes u's row and scans it for v.
//   * edge_exists_intra_row (Alg. 8) — a single (u, v) query; u's row is
//     split into p chunks and all processors search concurrently. The
//     paper notes the scan "could also be extended to a binary search";
//     both variants are provided.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "csr/bitpacked_csr.hpp"
#include "graph/types.hpp"

namespace pcq::csr {

/// Algorithm 6: neighbours of every node in `query_nodes`, computed with
/// `num_threads` processors. result[i] is the neighbour row of
/// query_nodes[i] (duplicate query nodes are answered independently).
std::vector<std::vector<graph::VertexId>> batch_neighbors(
    const BitPackedCsr& csr, std::span<const graph::VertexId> query_nodes,
    int num_threads);

/// Algorithm 6 into caller-owned storage: out[i] is assigned the neighbour
/// row of query_nodes[i]. out.size() must equal query_nodes.size(). This is
/// the serving-layer entry point (pcq::svc): the service owns one response
/// slot per request and the kernel writes rows straight into them, so a
/// coalesced batch costs no intermediate result array.
void batch_neighbors_into(const BitPackedCsr& csr,
                          std::span<const graph::VertexId> query_nodes,
                          std::span<std::vector<graph::VertexId>> out,
                          int num_threads);

/// Degrees of every node in `query_nodes` into caller-owned storage
/// (the cheapest per-request query the service batches).
void batch_degrees_into(const BitPackedCsr& csr,
                        std::span<const graph::VertexId> query_nodes,
                        std::span<std::uint32_t> out, int num_threads);

/// Flat result of a neighbourhood batch: row i of query node i lives at
/// values[offsets[i] .. offsets[i + 1]). CSR-shaped, so a million-query
/// batch costs two allocations instead of a million.
struct BatchNeighborsResult {
  std::vector<std::uint64_t> offsets;  ///< size queries + 1
  std::vector<graph::VertexId> values;

  [[nodiscard]] std::span<const graph::VertexId> row(std::size_t i) const {
    return {values.data() + offsets[i], values.data() + offsets[i + 1]};
  }
};

/// Algorithm 6 with flat output. Two passes: degrees of all query nodes ->
/// offsets via the chunked prefix sum (Algorithm 1 again) -> parallel row
/// decode straight into the flat buffer.
BatchNeighborsResult batch_neighbors_flat(
    const BitPackedCsr& csr, std::span<const graph::VertexId> query_nodes,
    int num_threads);

/// How a neighbour row is searched for a target column.
enum class RowSearch {
  kLinear,  ///< as written in Algorithms 7/8 (the paper-faithful ablation)
  kBinary,  ///< the paper's suggested extension (rows are sorted)
};

/// Algorithm 7: existence of every edge in `query_edges`; result[i] is 1
/// iff query_edges[i] is present. The default streams each row through
/// the word-wise cursor with the paper's linear scan; kBinary switches to
/// an O(log deg) packed binary search per query (builder rows are
/// column-sorted — asserted in debug builds).
std::vector<std::uint8_t> batch_edge_existence(
    const BitPackedCsr& csr, std::span<const graph::Edge> query_edges,
    int num_threads, RowSearch search = RowSearch::kLinear);

/// Algorithm 7 into caller-owned storage: out[i] = 1 iff query_edges[i] is
/// present. out.size() must equal query_edges.size().
void batch_edge_existence_into(const BitPackedCsr& csr,
                               std::span<const graph::Edge> query_edges,
                               std::span<std::uint8_t> out, int num_threads,
                               RowSearch search = RowSearch::kLinear);

/// Algorithm 8: single edge query answered by splitting u's row across
/// `num_threads` processors. "One of the processors will return true if
/// the edge exists, if not all return false."
bool edge_exists_intra_row(const BitPackedCsr& csr, graph::VertexId u,
                           graph::VertexId v, int num_threads,
                           RowSearch search = RowSearch::kLinear);

}  // namespace pcq::csr
