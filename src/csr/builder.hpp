// Parallel CSR construction — the paper's §III pipeline.
//
// From a source-sorted edge list:
//   1. degree array via run counting (Algorithms 2 + 3),
//   2. cumulative offsets via the chunked prefix sum (Algorithm 1),
//   3. column array: with the list sorted by source, jA is exactly the
//      destination column of the input, so the fill is a parallel copy,
//   4. (optional) fixed-width bit packing of both arrays (Algorithm 4).
//
// Each step reports its wall time through CsrBuildTimings; the Table II /
// Figure 6 / Figure 7 harnesses sweep `num_threads` over the paper's
// p ∈ {1, 4, 8, 16, 64} and the analytic scaling model (bench/model) is
// calibrated from these per-phase numbers.
#pragma once

#include "csr/bitpacked_csr.hpp"
#include "csr/csr_graph.hpp"
#include "graph/edge_list.hpp"

namespace pcq::csr {

/// Per-phase wall times (seconds) of one construction run.
struct CsrBuildTimings {
  double degree = 0;  ///< Algorithms 2 + 3
  double scan = 0;    ///< Algorithm 1 over the degree array
  double fill = 0;    ///< column copy
  double pack = 0;    ///< Algorithm 4 (bit-packed builds only)

  [[nodiscard]] double total() const { return degree + scan + fill + pack; }
};

/// Builds a plain CSR from a (u, v)-sorted edge list with `num_threads`
/// processors. `num_nodes` == 0 derives the node count from the list.
CsrGraph build_csr_from_sorted(const graph::EdgeList& list,
                               graph::VertexId num_nodes, int num_threads,
                               CsrBuildTimings* timings = nullptr);

/// Convenience: parallel-sorts a copy of the list first, then builds.
CsrGraph build_csr(graph::EdgeList list, graph::VertexId num_nodes,
                   int num_threads, CsrBuildTimings* timings = nullptr);

/// Full paper pipeline: sorted edge list -> bit-packed CSR (Algorithm 4 on
/// top of the plain build). This is the configuration Table II times.
BitPackedCsr build_bitpacked_csr_from_sorted(const graph::EdgeList& list,
                                             graph::VertexId num_nodes,
                                             int num_threads,
                                             CsrBuildTimings* timings = nullptr);

/// Fully sequential reference build (validation baseline; equals the
/// parallel result bit-for-bit).
CsrGraph build_csr_sequential(const graph::EdgeList& list,
                              graph::VertexId num_nodes);

}  // namespace pcq::csr
