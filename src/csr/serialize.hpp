// On-disk persistence of the bit-packed CSR.
//
// Compression is only useful if the compressed artifact outlives the
// process: these functions write/read the packed structure verbatim
// (header + the two packed word arrays), so a graph compressed once can be
// queried by later runs without re-running the pipeline. Little-endian
// hosts only (checked via a header canary).
#pragma once

#include <cstdio>
#include <string>

#include "csr/bitpacked_csr.hpp"

namespace pcq::csr {

/// Writes `csr` to `path`. Throws pcq::IoError on I/O failure.
void save_bitpacked_csr(const BitPackedCsr& csr, const std::string& path);

/// Reads a structure previously written by save_bitpacked_csr. Throws
/// pcq::IoError on open/read failure, bad magic, a wrong endianness canary,
/// an internally inconsistent header, or a truncated payload — never
/// returning a partially-constructed structure.
BitPackedCsr load_bitpacked_csr(const std::string& path);

/// Same parser over an already-open stream (the caller keeps ownership and
/// closes it). `name` labels IoError diagnostics. This is how the fuzz
/// harnesses feed arbitrary bytes through the loader via fmemopen without
/// touching the filesystem.
BitPackedCsr load_bitpacked_csr_stream(std::FILE* stream,
                                       const std::string& name);

}  // namespace pcq::csr
