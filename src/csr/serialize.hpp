// On-disk persistence of the bit-packed CSR.
//
// Compression is only useful if the compressed artifact outlives the
// process: these functions write/read the packed structure verbatim
// (header + the two packed word arrays), so a graph compressed once can be
// queried by later runs without re-running the pipeline. Little-endian
// hosts only (checked via a header canary).
//
// Two on-disk layouts share the header/canary scheme:
//   * v1 — header immediately followed by the packed words (legacy;
//     read-only support).
//   * v2 — each packed payload (iA, jA) starts on a 64-byte boundary
//     relative to the file start. Written by save_bitpacked_csr; the
//     alignment is what makes the file directly memory-mappable, so the
//     packed arrays can be queried in place with zero payload copies
//     (map_bitpacked_csr below).
#pragma once

#include <cstddef>
#include <cstdio>
#include <span>
#include <string>

#include "csr/bitpacked_csr.hpp"
#include "io/mapped_file.hpp"

namespace pcq::csr {

/// Writes `csr` to `path` in the v2 (mmap-aligned) layout. Throws
/// pcq::IoError on I/O failure.
void save_bitpacked_csr(const BitPackedCsr& csr, const std::string& path);

/// Reads a structure previously written by save_bitpacked_csr (v2) or by
/// older releases (v1) — the buffered, copying loader. Throws pcq::IoError
/// on open/read failure, bad magic, a wrong endianness canary, an
/// internally inconsistent header, or a truncated payload — never
/// returning a partially-constructed structure.
BitPackedCsr load_bitpacked_csr(const std::string& path);

/// Same parser over an already-open stream (the caller keeps ownership and
/// closes it). `name` labels IoError diagnostics. This is how the fuzz
/// harnesses feed arbitrary bytes through the loader via fmemopen without
/// touching the filesystem.
BitPackedCsr load_bitpacked_csr_stream(std::FILE* stream,
                                       const std::string& name);

/// A bit-packed CSR whose packed arrays live in (borrow from) a mapped
/// file. The mapping must outlive the structure, which is why the two
/// travel together; `mapped` is false when map_bitpacked_csr had to fall
/// back to the buffered loader (v1 file, or a host without mmap), in which
/// case `file` is empty and `csr` owns its storage as usual.
struct MappedCsr {
  pcq::io::MappedFile file;
  BitPackedCsr csr;
  bool mapped = false;
};

/// Zero-copy load: maps `path` and constructs the CSR directly over the
/// mapped payload bytes — O(1) in the payload size. Falls back to the
/// buffered loader for v1 files and for hosts without mmap support.
/// Throws pcq::IoError exactly like load_bitpacked_csr on anything
/// malformed. The returned structure is untrusted until
/// pcq::check::validate_csr passes on it (map -> validate -> serve).
MappedCsr map_bitpacked_csr(const std::string& path);

/// The mapped-view parser over an in-memory v2 image: `bytes.data()` must
/// be 8-byte aligned and must outlive the returned structure, which
/// borrows the payload words in place. Used by map_bitpacked_csr and by
/// the fuzz harnesses (hostile offsets/headers over aligned copies of the
/// fuzz input). Throws pcq::IoError on any malformed image, including v1
/// magic (v1 payloads are unaligned, hence unmappable).
BitPackedCsr map_bitpacked_csr_bytes(std::span<const std::byte> bytes,
                                     const std::string& name);

}  // namespace pcq::csr
