// Weighted CSR — the paper's third array.
//
// §III: "vA: a value array (if the graph is weighted)". The unweighted
// pipeline drops vA; this module carries it through both the plain and the
// bit-packed form. Weights ride along the same parallel construction: the
// edge list is sorted by (u, v), so vA — like jA — is a parallel copy of
// the input's weight column, and Algorithm 4's fixed-width packing applies
// to it unchanged (width = bits_for(max weight)).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bits/packed_array.hpp"
#include "csr/csr_graph.hpp"
#include "graph/types.hpp"

namespace pcq::graph {

/// A directed edge with an unsigned weight (capacities, counts,
/// interaction strengths — social-network weights are non-negative).
struct WeightedEdge {
  VertexId u = 0;
  VertexId v = 0;
  std::uint32_t w = 0;

  /// Ordering ignores the weight: (u, v) determines the CSR position.
  friend constexpr bool operator<(const WeightedEdge& a, const WeightedEdge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  }
  friend constexpr bool operator==(const WeightedEdge&,
                                   const WeightedEdge&) = default;
};

}  // namespace pcq::graph

namespace pcq::csr {

/// Plain weighted CSR: iA + jA + vA.
class WeightedCsr {
 public:
  WeightedCsr() = default;

  /// Builds from a (u, v)-sorted weighted edge list with `num_threads`
  /// processors. num_nodes == 0 derives the count from the input.
  static WeightedCsr build_from_sorted(
      std::span<const graph::WeightedEdge> edges, graph::VertexId num_nodes,
      int num_threads);

  [[nodiscard]] graph::VertexId num_nodes() const { return csr_.num_nodes(); }
  [[nodiscard]] std::size_t num_edges() const { return csr_.num_edges(); }
  [[nodiscard]] std::uint32_t degree(graph::VertexId u) const {
    return csr_.degree(u);
  }

  [[nodiscard]] std::span<const graph::VertexId> neighbors(graph::VertexId u) const {
    return csr_.neighbors(u);
  }

  /// Weights aligned with neighbors(u): weights(u)[i] is the weight of the
  /// edge to neighbors(u)[i].
  [[nodiscard]] std::span<const std::uint32_t> weights(graph::VertexId u) const;

  /// Weight lookup; returns false if the edge is absent.
  bool edge_weight(graph::VertexId u, graph::VertexId v,
                   std::uint32_t* weight_out) const;

  [[nodiscard]] const CsrGraph& structure() const { return csr_; }
  [[nodiscard]] std::span<const std::uint32_t> weight_array() const {
    return weights_;
  }

  [[nodiscard]] std::size_t size_bytes() const {
    return csr_.size_bytes() + weights_.size() * sizeof(std::uint32_t);
  }

 private:
  CsrGraph csr_;
  std::vector<std::uint32_t> weights_;  // vA
};

/// Bit-packed weighted CSR: iA, jA and vA all fixed-width packed.
class BitPackedWeightedCsr {
 public:
  BitPackedWeightedCsr() = default;

  static BitPackedWeightedCsr from_weighted_csr(const WeightedCsr& csr,
                                                int num_threads);

  [[nodiscard]] graph::VertexId num_nodes() const { return num_nodes_; }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  [[nodiscard]] std::uint64_t offset(graph::VertexId u) const {
    return offsets_.get(u);
  }
  [[nodiscard]] std::uint32_t degree(graph::VertexId u) const {
    return static_cast<std::uint32_t>(offset(u + 1) - offset(u));
  }
  [[nodiscard]] graph::VertexId column(std::uint64_t i) const {
    return static_cast<graph::VertexId>(columns_.get(i));
  }
  [[nodiscard]] std::uint32_t weight(std::uint64_t i) const {
    return static_cast<std::uint32_t>(weights_.get(i));
  }

  /// Weight lookup via packed binary search of u's row.
  bool edge_weight(graph::VertexId u, graph::VertexId v,
                   std::uint32_t* weight_out) const;

  [[nodiscard]] std::size_t size_bytes() const {
    return offsets_.size_bytes() + columns_.size_bytes() + weights_.size_bytes();
  }

  [[nodiscard]] unsigned weight_bits() const { return weights_.width(); }

 private:
  graph::VertexId num_nodes_ = 0;
  std::size_t num_edges_ = 0;
  pcq::bits::FixedWidthArray offsets_;  // iA
  pcq::bits::FixedWidthArray columns_;  // jA
  pcq::bits::FixedWidthArray weights_;  // vA
};

}  // namespace pcq::csr
