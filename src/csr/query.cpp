#include "csr/query.hpp"

#include <atomic>

#include "par/chunking.hpp"
#include "par/parallel_for.hpp"
#include "par/prefix_sum.hpp"
#include "par/threads.hpp"

namespace pcq::csr {

using graph::Edge;
using graph::VertexId;

void batch_neighbors_into(const BitPackedCsr& csr,
                          std::span<const VertexId> query_nodes,
                          std::span<std::vector<VertexId>> out,
                          int num_threads) {
  PCQ_CHECK(out.size() == query_nodes.size());
  // Algorithm 9, first block: split the query array into p parts; each
  // processor runs Algorithm 6 on its [startI, endI) slice.
  pcq::par::parallel_for_chunks(
      query_nodes.size(), num_threads,
      [&](std::size_t, pcq::par::ChunkRange r) {
        for (std::size_t i = r.begin; i < r.end; ++i) {
          const VertexId u = query_nodes[i];
          PCQ_DCHECK_MSG(u < csr.num_nodes(),
                         "batch query node outside vertex range");
          // GetRowFromCSR(A, startingIndex, degree, numBits).
          std::vector<VertexId> row(csr.degree(u));
          csr.decode_row(u, row);
          out[i] = std::move(row);
        }
      });
}

std::vector<std::vector<VertexId>> batch_neighbors(
    const BitPackedCsr& csr, std::span<const VertexId> query_nodes,
    int num_threads) {
  std::vector<std::vector<VertexId>> result(query_nodes.size());
  batch_neighbors_into(csr, query_nodes, result, num_threads);
  return result;
}

void batch_degrees_into(const BitPackedCsr& csr,
                        std::span<const VertexId> query_nodes,
                        std::span<std::uint32_t> out, int num_threads) {
  PCQ_CHECK(out.size() == query_nodes.size());
  pcq::par::parallel_for_chunks(
      query_nodes.size(), num_threads,
      [&](std::size_t, pcq::par::ChunkRange r) {
        for (std::size_t i = r.begin; i < r.end; ++i)
          out[i] = csr.degree(query_nodes[i]);
      });
}

BatchNeighborsResult batch_neighbors_flat(
    const BitPackedCsr& csr, std::span<const VertexId> query_nodes,
    int num_threads) {
  BatchNeighborsResult result;
  const std::size_t q = query_nodes.size();

  // Pass 1: per-query degrees, then offsets by the chunked prefix sum.
  std::vector<std::uint32_t> degrees(q);
  pcq::par::parallel_for(q, num_threads, [&](std::size_t i) {
    degrees[i] = csr.degree(query_nodes[i]);
  });
  result.offsets = pcq::par::offsets_from_degrees(degrees, num_threads);

  // Pass 2: decode every row into its slot; rows are disjoint, so the
  // writes are race-free.
  result.values.resize(result.offsets.back());
  pcq::par::parallel_for_chunks(
      q, num_threads, [&](std::size_t, pcq::par::ChunkRange r) {
        for (std::size_t i = r.begin; i < r.end; ++i) {
          std::span<VertexId> slot(result.values.data() + result.offsets[i],
                                   degrees[i]);
          csr.decode_row(query_nodes[i], slot);
        }
      });
  return result;
}

namespace {

/// Debug invariant behind RowSearch::kBinary: builder output is
/// column-sorted, so binary search over the packed row is sound.
[[maybe_unused]] bool row_is_sorted(const BitPackedCsr& csr, VertexId u) {
  pcq::bits::RowCursor cursor = csr.row_cursor(u);
  std::uint64_t prev = 0;
  bool first = true;
  while (!cursor.done()) {
    const std::uint64_t c = cursor.next();
    if (!first && c < prev) return false;
    prev = c;
    first = false;
  }
  return true;
}

}  // namespace

void batch_edge_existence_into(const BitPackedCsr& csr,
                               std::span<const Edge> query_edges,
                               std::span<std::uint8_t> out, int num_threads,
                               RowSearch search) {
  PCQ_CHECK(out.size() == query_edges.size());
  // Algorithm 9, second block: split the edge array into p parts; each
  // processor runs Algorithm 7 on its slice.
  pcq::par::parallel_for_chunks(
      query_edges.size(), num_threads,
      [&](std::size_t, pcq::par::ChunkRange r) {
        for (std::size_t i = r.begin; i < r.end; ++i) {
          const auto [u, v] = query_edges[i];
          PCQ_DCHECK_MSG(u < csr.num_nodes(),
                         "batch query edge source outside vertex range");
          if (search == RowSearch::kBinary) {
            // Rows are sorted, so the packed binary search answers in
            // O(log deg) decodes instead of a full row scan.
            PCQ_DCHECK(row_is_sorted(csr, u));
            out[i] = csr.has_edge(u, v) ? 1 : 0;
            continue;
          }
          // uNeighs = GetRowFromCSR(...); then scan for v (Algorithm 7
          // lines 3-6), streamed through the cursor — no row buffer.
          bool found = false;
          for (pcq::bits::RowCursor row = csr.row_cursor(u); !row.done();) {
            if (row.next() == v) {
              found = true;
              break;
            }
          }
          out[i] = found ? 1 : 0;
        }
      });
}

std::vector<std::uint8_t> batch_edge_existence(
    const BitPackedCsr& csr, std::span<const Edge> query_edges,
    int num_threads, RowSearch search) {
  std::vector<std::uint8_t> result(query_edges.size(), 0);
  batch_edge_existence_into(csr, query_edges, result, num_threads, search);
  return result;
}

bool edge_exists_intra_row(const BitPackedCsr& csr, VertexId u, VertexId v,
                           int num_threads, RowSearch search) {
  const std::uint64_t row_begin = csr.offset(u);
  const auto deg = static_cast<std::size_t>(csr.offset(u + 1) - row_begin);
  if (deg == 0) return false;

  // Algorithm 9, third block: retrieve u's neighbourhood bounds, split the
  // row into p parts, and let every processor search its chunk. The packed
  // row is streamed through the word-wise cursor — no materialisation.
  std::atomic<bool> found{false};
  // Re-checked every kPollStride elements so a hit in one chunk stops the
  // others mid-scan instead of only gating chunk entry.
  constexpr std::size_t kPollStride = 1024;
  pcq::par::parallel_for_chunks(
      deg, num_threads, [&](std::size_t, pcq::par::ChunkRange r) {
        if (found.load(std::memory_order_relaxed)) return;  // early exit
        if (search == RowSearch::kLinear) {
          pcq::bits::RowCursor cursor =
              csr.packed_columns().cursor(row_begin + r.begin, r.size());
          std::size_t until_poll = kPollStride;
          while (!cursor.done()) {
            if (cursor.next() == v) {
              found.store(true, std::memory_order_relaxed);
              return;
            }
            if (--until_poll == 0) {
              if (found.load(std::memory_order_relaxed)) return;
              until_poll = kPollStride;
            }
          }
        } else {
          // Binary search within this processor's chunk (rows are sorted).
          std::size_t lo = r.begin, hi = r.end;
          while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            const VertexId c = csr.column(row_begin + mid);
            if (c == v) {
              found.store(true, std::memory_order_relaxed);
              return;
            }
            if (c < v)
              lo = mid + 1;
            else
              hi = mid;
          }
        }
      });
  return found.load(std::memory_order_relaxed);
}

}  // namespace pcq::csr
