// Bounded MPMC queue with micro-batch pop — the coalescing point of the
// query service.
//
// Producers (any number of client threads) push single requests and are
// never blocked: a full queue rejects the push, which is the service's
// backpressure signal (admission control rather than unbounded buffering).
// Consumers pop *batches*: pop_batch blocks for the first element, then
// keeps gathering until either `max_items` are collected or `batch_window`
// has elapsed since the first pop — the "flush on batch-size OR deadline,
// whichever first" rule. A mutex+condvar ring keeps every path TSan-clean
// under the std::thread backend; the hot-path cost is one uncontended
// lock per push and ~one per popped batch. The locking discipline is
// capability-annotated (util/thread_annotations.hpp), so the
// `thread-safety` preset proves every ring access holds mu_.
#pragma once

#include <chrono>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/thread_annotations.hpp"

namespace pcq::svc {

template <typename T>
class BoundedMpmcQueue {
 public:
  /// Guarded members are initialized in the member-init list (exempt from
  /// the capability analysis — no other thread can exist yet).
  explicit BoundedMpmcQueue(std::size_t capacity)
      : ring_(ring_size_for(capacity)), capacity_(capacity),
        mask_(ring_size_for(capacity) - 1) {}

  /// Non-blocking push. Returns false when the queue is full or closed —
  /// the caller turns that into a kRejected response.
  bool try_push(T&& item) {
    {
      util::MutexLock lock(mu_);
      if (closed_ || count_ == capacity_) return false;
      ring_[(head_ + count_) & mask_] = std::move(item);
      ++count_;
    }
    cv_.notify_one();
    return true;
  }

  /// Pops up to `max_items` into `out` (appended). Blocks up to
  /// `wait_for_first` for the first element; once one arrives, gathers
  /// more until `out` holds `max_items` or `batch_window` has elapsed
  /// since the first pop. Returns the number of items appended; 0 after
  /// `wait_for_first` expires with nothing queued (spurious-wakeup safe).
  /// After close(), drains whatever is queued and then always returns 0.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max_items,
                        std::chrono::microseconds wait_for_first,
                        std::chrono::microseconds batch_window) {
    PCQ_CHECK(max_items > 0);
    std::size_t taken = 0;
    util::MutexLock lock(mu_);
    // Explicit predicate loop (not a wait lambda) so the guarded reads sit
    // in the scope that holds the capability; a timeout re-checks once —
    // the notify may have landed just as the deadline expired.
    const auto first_deadline =
        std::chrono::steady_clock::now() + wait_for_first;
    while (count_ == 0 && !closed_) {
      if (cv_.wait_until(lock, first_deadline) == std::cv_status::timeout) {
        if (count_ == 0 && !closed_) return 0;
        break;
      }
    }
    if (count_ == 0) return 0;  // closed and drained
    const auto flush_at = std::chrono::steady_clock::now() + batch_window;
    for (;;) {
      while (count_ > 0 && taken < max_items) {
        out.push_back(std::move(ring_[head_]));
        head_ = (head_ + 1) & mask_;
        --count_;
        ++taken;
      }
      if (taken >= max_items || closed_) break;
      if (cv_.wait_until(lock, flush_at) == std::cv_status::timeout &&
          count_ == 0 && !closed_)
        break;  // window expired — flush what we have
    }
    return taken;
  }

  /// Stops producers; consumers drain the remainder and then see 0.
  void close() {
    {
      util::MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    util::MutexLock lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    util::MutexLock lock(mu_);
    return count_;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  /// The ring is sized to the next power of two so slot indexing is a
  /// mask instead of a modulo; `capacity_` still bounds occupancy.
  static std::size_t ring_size_for(std::size_t capacity) {
    PCQ_CHECK(capacity > 0);
    std::size_t ring = 1;
    while (ring < capacity) ring <<= 1;
    return ring;
  }

  mutable util::Mutex mu_;
  util::CondVar cv_;
  std::vector<T> ring_ PCQ_GUARDED_BY(mu_);
  std::size_t capacity_;  ///< immutable after construction
  std::size_t mask_ = 0;  ///< immutable after construction
  std::size_t head_ PCQ_GUARDED_BY(mu_) = 0;   ///< index of the oldest element
  std::size_t count_ PCQ_GUARDED_BY(mu_) = 0;  ///< elements currently queued
  bool closed_ PCQ_GUARDED_BY(mu_) = false;
};

}  // namespace pcq::svc
