// pcq::svc — in-process concurrent batch query service over the packed
// CSR/TCSR.
//
// Architecture (shared-nothing per shard):
//
//   clients ──try_push──► shard 0: [bounded MPMC queue] ──► worker 0 ─┐
//           ──try_push──► shard 1: [bounded MPMC queue] ──► worker 1 ─┤► batch
//                ...                                                  │ kernels
//           ──try_push──► shard S: [bounded MPMC queue] ──► worker S ─┘
//
// Requests are routed to a shard by hash(u); each shard owns its queue,
// its metrics block and one persistent worker (a pcq::par::WorkerPool
// job), so shards never share mutable state — the only cross-thread
// traffic is the queue handoff and the immutable graph reads.
//
// Each worker runs the adaptive micro-batching loop: pop a batch (flush
// on batch-size OR batch-window deadline, whichever first), partition it
// by query kind, and answer every kind with ONE call into the paper's
// parallel batch kernels (Algorithms 6/7 for neighbour/edge queries, the
// temporal variants for TCSR kinds). The batch window adapts to load: a
// size-triggered flush (full batch) relaxes the window back toward the
// configured one, a deadline-triggered flush (partial batch) halves it —
// so a saturated service batches at full size while a lightly-loaded one
// answers at single-request latency.
//
// Backpressure: the queue is bounded and try_push never blocks — a full
// shard rejects (Status::kRejected). A request whose deadline passes
// while queued is answered kExpired without touching the graph.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <vector>

#include "csr/bitpacked_csr.hpp"
#include "csr/query.hpp"
#include "svc/metrics.hpp"
#include "svc/mpmc_queue.hpp"
#include "svc/request.hpp"
#include "tcsr/tcsr.hpp"

namespace pcq::par {
class WorkerPool;
}

namespace pcq::dyn {
class HybridGraph;
}

namespace pcq::svc {

struct ServiceConfig {
  int shards = 1;                   ///< queues/workers (>= 1)
  std::size_t queue_capacity = 4096;///< per shard; full queue => kRejected
  std::size_t max_batch = 256;      ///< flush when this many are gathered
  std::chrono::microseconds batch_window{200};  ///< flush deadline
  bool adaptive_window = true;      ///< shrink window under light load
  int kernel_threads = 1;           ///< threads per batch-kernel call
  csr::RowSearch edge_search = csr::RowSearch::kBinary;
  /// Test/CI hook: sleep this long after dispatching each query batch,
  /// before the kernels run, so the added time lands inside the measured
  /// service phase. Deterministically produces slow requests for the
  /// slow-query log and tail-sampling tests. 0 (the default) = off.
  std::chrono::microseconds debug_kernel_delay{0};
};

/// One step of the adaptive batch-window controller (pure, so it is
/// unit-testable without a live service). A near-full batch (>= 7/8 of
/// max_batch — arrivals are keeping up with the window, even if the exact
/// size trigger didn't fire) relaxes the window back toward the configured
/// one; a partial batch means the deadline flushed and the wait was pure
/// added latency, so the window halves — but never below a 1us floor, or
/// an idle spell would decay it to a permanent 0 from which a moderately
/// loaded shard could never re-form batches.
inline std::chrono::microseconds adapt_window(std::chrono::microseconds window,
                                              std::size_t batch_size,
                                              const ServiceConfig& config) {
  const std::size_t near_full = config.max_batch - config.max_batch / 8;
  if (batch_size >= near_full) {
    return std::min(config.batch_window,
                    window + config.batch_window / 8 +
                        std::chrono::microseconds{1});
  }
  return std::max(window / 2, std::chrono::microseconds{1});
}

class QueryService {
 public:
  /// `graph` must outlive the service. `history` may be null (temporal
  /// queries then answer kUnsupported). Mutation kinds answer kUnsupported
  /// on this read-only form.
  QueryService(const csr::BitPackedCsr& graph,
               const tcsr::DifferentialTcsr* history, ServiceConfig config);

  /// Live-ingest form: reads AND mutations flow through `graph`'s CPMA
  /// tier. Reads pin one HybridGraph::View per batch (snapshot-consistent
  /// against concurrent mutations from other shards); a batch's mutations
  /// coalesce into one add_edges/remove_edges call, after which the worker
  /// opportunistically runs the ratio-triggered compaction — readers stay
  /// wait-free throughout, only co-writers block on it.
  QueryService(dyn::HybridGraph& graph, const tcsr::DifferentialTcsr* history,
               ServiceConfig config);

  /// Stops and drains (see stop()).
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Callback completion API. Returns true if the request was admitted
  /// (the callback will fire exactly once, on a worker thread); false if
  /// it was rejected by backpressure — the callback is NOT invoked, so
  /// open-loop clients can count rejections synchronously.
  bool submit(const Request& request, Callback callback);

  /// Future completion API. Rejected requests complete the future
  /// immediately with Status::kRejected.
  [[nodiscard]] std::future<Response> submit(const Request& request);

  /// Closes all queues, answers everything still queued, joins workers.
  /// Idempotent; called by the destructor.
  void stop();

  /// Aggregated counters + latency/batch-size percentiles across shards.
  [[nodiscard]] MetricsSnapshot metrics() const;

  /// Instantaneous queued-request count per shard (telemetry gauges; each
  /// read takes that shard's queue mutex briefly).
  [[nodiscard]] std::vector<std::size_t> queue_depths() const;

  [[nodiscard]] int shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Pending {
    Request request;
    Callback callback;
    Clock::time_point enqueued;
  };

  struct Shard {
    explicit Shard(std::size_t capacity) : queue(capacity) {}
    BoundedMpmcQueue<Pending> queue;
    ShardMetrics metrics;
    /// Per-batch context for slow-query capture; written only by the
    /// shard's own worker at dispatch, read by complete() on that same
    /// thread — no synchronisation needed.
    Clock::time_point batch_dispatch{};
    std::size_t batch_n = 0;
    std::uint32_t index = 0;
  };

  std::size_t shard_of(graph::VertexId u) const;
  void shard_loop(Shard& shard);
  void execute_batch(Shard& shard, std::vector<Pending>& batch);
  void execute_mutations(Shard& shard, std::vector<Pending>& batch,
                         const std::vector<std::size_t>& ids, bool add);
  void complete(Shard& shard, Pending& pending, Response&& response,
                Clock::time_point now);
  [[nodiscard]] graph::VertexId num_nodes() const;
  void start_workers();

  /// Exactly one of these is set; the static pair answers reads with the
  /// batch kernels, the dynamic one through per-batch pinned Views.
  const csr::BitPackedCsr* static_graph_ = nullptr;
  dyn::HybridGraph* dynamic_ = nullptr;
  const tcsr::DifferentialTcsr* history_;
  ServiceConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<par::WorkerPool> pool_;
  Clock::time_point started_;
  /// exchange() makes stop() idempotent under concurrent callers (signal
  /// path vs. destructor) — a plain bool read-modify-write here is a race.
  std::atomic<bool> stopped_{false};
};

}  // namespace pcq::svc
