// Request/response vocabulary of the pcq::svc batch query service.
//
// The paper's Section V algorithms answer *pre-collected* query arrays;
// a serving layer receives queries one at a time. One Request describes a
// single query of any supported kind; the service coalesces requests into
// arrays and hands them to the batch kernels (csr/query.hpp, tcsr/tcsr.hpp),
// so Algorithms 6/7 become the inner loop of the server instead of a
// benchmark-only entry point.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "graph/types.hpp"

namespace pcq::svc {

using Clock = std::chrono::steady_clock;

enum class QueryKind : std::uint8_t {
  kDegree,           ///< degree(u)
  kNeighbors,        ///< Alg. 6 — neighbour row of u
  kEdgeExists,       ///< Alg. 7 — is (u, v) present?
  kTemporalEdge,     ///< is (u, v) active at frame t? (TCSR parity query)
  kTemporalNeighbors,///< neighbours of u at frame t (temporal Alg. 6)
  kForemostArrival,  ///< earliest frame >= t at which v is reachable from u
  // Mutation kinds (dynamic services only; kUnsupported otherwise). Each
  // request carries one (u, v) edge; the shard loop coalesces a batch's
  // mutations into one HybridGraph::add_edges/remove_edges call, so the
  // CPMA absorbs them batch-parallel just like queries hit batch kernels.
  kAddEdges,         ///< make (u, v) visible
  kRemoveEdges,      ///< make (u, v) invisible
};

/// True for the kinds that mutate the graph instead of reading it.
inline constexpr bool is_mutation_kind(QueryKind kind) {
  return kind == QueryKind::kAddEdges || kind == QueryKind::kRemoveEdges;
}

/// One query. `u` is always the primary node (also the shard-routing key);
/// `v` is the target for edge/journey kinds; `t` the time-frame for
/// temporal kinds (start frame for kForemostArrival).
struct Request {
  QueryKind kind = QueryKind::kDegree;
  graph::VertexId u = 0;
  graph::VertexId v = 0;
  graph::TimeFrame t = 0;
  /// Absolute completion deadline. A request still queued past its
  /// deadline is answered kExpired without touching the graph (admission
  /// control under overload). Clock::time_point::max() = no deadline.
  Clock::time_point deadline = Clock::time_point::max();
  /// Caller-assigned id threaded through the shard queue into the slow-query
  /// log and per-request trace spans (the net front-end puts the wire
  /// request id here). 0 = unidentified; spans are still recorded.
  std::uint64_t trace_id = 0;
};

enum class Status : std::uint8_t {
  kOk,
  kRejected,     ///< bounded queue was full, or service already stopped
  kExpired,      ///< deadline passed while queued
  kInvalid,      ///< node/frame out of range for the loaded graph
  kUnsupported,  ///< temporal query but no TCSR loaded
};

/// Answer to one Request. Which payload field is meaningful depends on the
/// request kind; `latency` is enqueue-to-completion (what the histograms
/// record).
struct Response {
  Status status = Status::kOk;
  /// kEdgeExists / kTemporalEdge; for mutation kinds: true iff the edge's
  /// visibility actually changed (false = the mutation was a no-op).
  bool exists = false;
  std::uint32_t degree = 0;                  ///< kDegree
  graph::TimeFrame arrival = 0;              ///< kForemostArrival
  std::vector<graph::VertexId> neighbors;    ///< kNeighbors / kTemporalNeighbors
  std::chrono::nanoseconds latency{0};
};

/// Completion callback; invoked exactly once per accepted request, on a
/// service worker thread. Must be cheap and must not call back into the
/// service synchronously (it runs inside the batch completion loop).
using Callback = std::function<void(Response&&)>;

}  // namespace pcq::svc
