#include "svc/service.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "dyn/hybrid.hpp"
#include "obs/metrics.hpp"
#include "obs/slowlog.hpp"
#include "obs/trace.hpp"
#include "par/parallel_for.hpp"
#include "par/worker_pool.hpp"
#include "tcsr/journeys.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace pcq::svc {

using graph::VertexId;

namespace {

/// How long an idle worker sleeps before re-checking for shutdown. Purely
/// a shutdown-latency bound — requests wake the worker immediately.
constexpr std::chrono::microseconds kIdleWait{50'000};

std::uint64_t to_us(std::chrono::nanoseconds ns) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(ns).count());
}

}  // namespace

QueryService::QueryService(const csr::BitPackedCsr& graph,
                           const tcsr::DifferentialTcsr* history,
                           ServiceConfig config)
    : static_graph_(&graph), history_(history), config_(config),
      started_(Clock::now()) {
  start_workers();
}

QueryService::QueryService(dyn::HybridGraph& graph,
                           const tcsr::DifferentialTcsr* history,
                           ServiceConfig config)
    : dynamic_(&graph), history_(history), config_(config),
      started_(Clock::now()) {
  start_workers();
}

void QueryService::start_workers() {
  PCQ_CHECK(config_.shards >= 1);
  PCQ_CHECK(config_.max_batch >= 1);
  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(config_.queue_capacity));
    shards_.back()->index = static_cast<std::uint32_t>(s);
  }
  pool_ = std::make_unique<par::WorkerPool>(config_.shards);
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    pool_->submit([this, raw] { shard_loop(*raw); });
  }
}

graph::VertexId QueryService::num_nodes() const {
  // Stable across the service's lifetime: compaction swaps the base but
  // never the node-id space.
  return dynamic_ != nullptr ? dynamic_->num_nodes()
                             : static_graph_->num_nodes();
}

QueryService::~QueryService() { stop(); }

void QueryService::stop() {
  // Only one caller wins the exchange; a concurrent second stop() (signal
  // handler path vs. destructor) returns immediately instead of racing on
  // the queue close / pool teardown below.
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  for (auto& shard : shards_) shard->queue.close();
  // WorkerPool's destructor closes its job queue and joins; the shard
  // loops exit once their queues drain, so everything still queued is
  // answered before stop() returns.
  pool_.reset();
}

std::size_t QueryService::shard_of(VertexId u) const {
  return static_cast<std::size_t>(util::mix64(u)) % shards_.size();
}

bool QueryService::submit(const Request& request, Callback callback) {
  Shard& shard = *shards_[shard_of(request.u)];
  Pending pending{request, std::move(callback), Clock::now()};
  if (!shard.queue.try_push(std::move(pending))) {
    shard.metrics.rejected.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.metrics.submitted.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::future<Response> QueryService::submit(const Request& request) {
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();
  const bool admitted = submit(request, [promise](Response&& response) {
    promise->set_value(std::move(response));
  });
  if (!admitted) {
    Response rejected;
    rejected.status = Status::kRejected;
    promise->set_value(std::move(rejected));
  }
  return future;
}

void QueryService::complete(Shard& shard, Pending& pending,
                            Response&& response, Clock::time_point now) {
  // `now` is sampled once per kind-sweep: every request a kernel call
  // answers became ready at the same instant (kernel completion), so one
  // clock read serves the whole sweep instead of one per request.
  response.latency = now - pending.enqueued;
  const std::uint64_t lat_us = to_us(response.latency);
  shard.metrics.latency_us.record(lat_us);
  shard.metrics.completed.fetch_add(1, std::memory_order_relaxed);
  // Tail-based sampling: one relaxed load + predicted branch per request;
  // only requests already past the threshold (milliseconds late) take the
  // capture path below.
  const std::uint64_t threshold = obs::SlowLog::global().threshold_us();
  if (threshold != 0 && lat_us >= threshold) {
    obs::SlowQuery slow;
    slow.trace_id = pending.request.trace_id;
    slow.kind = static_cast<std::uint8_t>(pending.request.kind);
    slow.status = static_cast<std::uint8_t>(response.status);
    slow.u = pending.request.u;
    slow.v = pending.request.v;
    slow.t = pending.request.t;
    slow.total_us = lat_us;
    // Early completions (expired/invalid) finish at dispatch time, so the
    // phase split clamps instead of wrapping negative durations.
    slow.queue_us = shard.batch_dispatch > pending.enqueued
                        ? to_us(shard.batch_dispatch - pending.enqueued)
                        : lat_us;
    slow.service_us =
        now > shard.batch_dispatch ? to_us(now - shard.batch_dispatch) : 0;
    slow.batch_size = static_cast<std::uint32_t>(shard.batch_n);
    slow.shard = shard.index;
    slow.ts_ns = obs::trace_now_ns();
    obs::SlowLog::global().record(slow);
    // Full phase spans for the captured tail only: the Chrome trace shows
    // a queue bar and a service bar per slow request, keyed by trace id.
    if (obs::kTraceCompiledIn && obs::trace_enabled()) {
      const std::uint64_t t0 = obs::trace_time_ns(pending.enqueued);
      const std::uint64_t t1 = obs::trace_time_ns(shard.batch_dispatch);
      const std::uint64_t t2 = obs::trace_time_ns(now);
      if (t1 >= t0) obs::record_span("req.queue", t0, t1, slow.trace_id);
      if (t2 >= t1) obs::record_span("req.service", t1, t2, slow.trace_id);
    }
  }
  if (pending.callback) pending.callback(std::move(response));
}

void QueryService::shard_loop(Shard& shard) {
  auto window = config_.batch_window;
  std::vector<Pending> batch;
  batch.reserve(config_.max_batch);
  // Registry references are stable for the registry's lifetime, so the
  // mutex-guarded name lookup happens once per shard, not per batch.
  obs::Counter& flush_size =
      obs::MetricsRegistry::global().counter("svc.flush.size");
  obs::Counter& flush_deadline =
      obs::MetricsRegistry::global().counter("svc.flush.deadline");
  for (;;) {
    batch.clear();
    // The dequeue span is recorded only for waits that yielded a batch;
    // idle 50 ms shutdown-poll waits would otherwise dominate the trace.
    const bool traced = obs::kTraceCompiledIn && obs::trace_enabled();
    const std::uint64_t wait_t0 = traced ? obs::trace_now_ns() : 0;
    const std::size_t n =
        shard.queue.pop_batch(batch, config_.max_batch, kIdleWait, window);
    if (n == 0) {
      if (shard.queue.closed() && shard.queue.size() == 0) return;
      continue;
    }
    if (traced) obs::record_span("svc.dequeue", wait_t0, obs::trace_now_ns(), n);
    shard.metrics.batches.fetch_add(1, std::memory_order_relaxed);
    shard.metrics.batch_size.record(n);
    if (n >= config_.max_batch)
      flush_size.add(1);
    else
      flush_deadline.add(1);
    execute_batch(shard, batch);
    // The shrink half of the controller is what keeps a closed-loop
    // client with fewer than max_batch outstanding requests from stalling
    // a full window on every batch, and what gives an idle service
    // single-request latency; near-full batches restore the window on
    // their own (see adapt_window for the floor/near-full rationale).
    if (config_.adaptive_window) window = adapt_window(window, n, config_);
  }
}

void QueryService::execute_batch(Shard& shard, std::vector<Pending>& batch) {
  PCQ_TRACE_SCOPE("svc.batch", batch.size());
  const auto now = Clock::now();
  // Per-batch slow-query context: complete() reads these on this same
  // thread to split total latency into queue vs. service phases.
  shard.batch_dispatch = now;
  shard.batch_n = batch.size();
  const VertexId n = num_nodes();
  const graph::TimeFrame frames =
      history_ == nullptr ? 0 : history_->num_frames();

  // Partition indices by kind; requests that can be answered without the
  // graph (expired / invalid / unsupported) complete right here.
  std::vector<std::size_t> degree_ids, neighbor_ids, edge_ids;
  std::vector<std::size_t> tedge_ids, tneighbor_ids, journey_ids;
  std::vector<std::size_t> add_ids, remove_ids;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Pending& p = batch[i];
    const Request& r = p.request;
    // Queueing delay alone (enqueue -> batch dispatch); the latency
    // histogram minus this is service time.
    shard.metrics.queue_wait_us.record(to_us(now - p.enqueued));
    Response early;
    if (now > r.deadline) {
      early.status = Status::kExpired;
      shard.metrics.expired.fetch_add(1, std::memory_order_relaxed);
      complete(shard, p, std::move(early), now);
      continue;
    }
    const bool temporal = r.kind == QueryKind::kTemporalEdge ||
                          r.kind == QueryKind::kTemporalNeighbors ||
                          r.kind == QueryKind::kForemostArrival;
    if ((temporal && history_ == nullptr) ||
        (is_mutation_kind(r.kind) && dynamic_ == nullptr)) {
      early.status = Status::kUnsupported;
      complete(shard, p, std::move(early), now);
      continue;
    }
    // The CSR and TCSR are independent artifacts, so temporal kinds
    // validate against the history's node/frame space, not the CSR's.
    const VertexId limit = temporal ? history_->num_nodes() : n;
    const bool has_target = r.kind == QueryKind::kEdgeExists ||
                            r.kind == QueryKind::kTemporalEdge ||
                            r.kind == QueryKind::kForemostArrival ||
                            is_mutation_kind(r.kind);
    if (r.u >= limit || (temporal && r.t >= frames) ||
        (has_target && r.v >= limit)) {
      early.status = Status::kInvalid;
      complete(shard, p, std::move(early), now);
      continue;
    }
    switch (r.kind) {
      case QueryKind::kDegree: degree_ids.push_back(i); break;
      case QueryKind::kNeighbors: neighbor_ids.push_back(i); break;
      case QueryKind::kEdgeExists: edge_ids.push_back(i); break;
      case QueryKind::kTemporalEdge: tedge_ids.push_back(i); break;
      case QueryKind::kTemporalNeighbors: tneighbor_ids.push_back(i); break;
      case QueryKind::kForemostArrival: journey_ids.push_back(i); break;
      case QueryKind::kAddEdges: add_ids.push_back(i); break;
      case QueryKind::kRemoveEdges: remove_ids.push_back(i); break;
    }
  }

  const int kt = config_.kernel_threads;

  // Test/CI hook: injected kernel delay lands after dispatch, so it shows
  // up in the service phase of every request in the batch and
  // deterministically trips the slow-query threshold.
  if (config_.debug_kernel_delay.count() > 0)
    std::this_thread::sleep_for(config_.debug_kernel_delay);

  // The dynamic read path pins ONE View for the whole batch: every read in
  // the batch sees the same (base, delta) epoch regardless of concurrent
  // mutations on other shards. This shard's own mutations run after the
  // reads below, so within a batch reads-before-writes ordering holds too.
  dyn::HybridGraph::View view;
  if (dynamic_ != nullptr) view = dynamic_->view();

  if (!degree_ids.empty()) {
    std::vector<VertexId> nodes(degree_ids.size());
    for (std::size_t j = 0; j < degree_ids.size(); ++j)
      nodes[j] = batch[degree_ids[j]].request.u;
    std::vector<std::uint32_t> degrees(nodes.size());
    {
      PCQ_TRACE_SCOPE("svc.kernel.degree", degree_ids.size());
      if (dynamic_ != nullptr)
        par::parallel_for(nodes.size(), kt, [&](std::size_t j) {
          degrees[j] = view.degree(nodes[j]);
        });
      else
        csr::batch_degrees_into(*static_graph_, nodes, degrees, kt);
    }
    const auto done = Clock::now();
    for (std::size_t j = 0; j < degree_ids.size(); ++j) {
      Response r;
      r.degree = degrees[j];
      complete(shard, batch[degree_ids[j]], std::move(r), done);
    }
  }

  if (!neighbor_ids.empty()) {
    // Algorithm 6 over the coalesced node array, decoded straight into
    // caller-owned rows that move into the responses.
    std::vector<VertexId> nodes(neighbor_ids.size());
    for (std::size_t j = 0; j < neighbor_ids.size(); ++j)
      nodes[j] = batch[neighbor_ids[j]].request.u;
    std::vector<std::vector<VertexId>> rows(nodes.size());
    {
      PCQ_TRACE_SCOPE("svc.kernel.neighbors", neighbor_ids.size());
      if (dynamic_ != nullptr)
        par::parallel_for(nodes.size(), kt, [&](std::size_t j) {
          rows[j] = view.neighbors(nodes[j]);
        });
      else
        csr::batch_neighbors_into(*static_graph_, nodes, rows, kt);
    }
    const auto done = Clock::now();
    for (std::size_t j = 0; j < neighbor_ids.size(); ++j) {
      Response r;
      r.neighbors = std::move(rows[j]);
      complete(shard, batch[neighbor_ids[j]], std::move(r), done);
    }
  }

  if (!edge_ids.empty()) {
    // Algorithm 7 over the coalesced edge array.
    std::vector<graph::Edge> edges(edge_ids.size());
    for (std::size_t j = 0; j < edge_ids.size(); ++j)
      edges[j] = {batch[edge_ids[j]].request.u, batch[edge_ids[j]].request.v};
    std::vector<std::uint8_t> hits(edges.size());
    {
      PCQ_TRACE_SCOPE("svc.kernel.edge", edge_ids.size());
      if (dynamic_ != nullptr)
        par::parallel_for(edges.size(), kt, [&](std::size_t j) {
          hits[j] = view.has_edge(edges[j].u, edges[j].v) ? 1 : 0;
        });
      else
        csr::batch_edge_existence_into(*static_graph_, edges, hits, kt,
                                       config_.edge_search);
    }
    const auto done = Clock::now();
    for (std::size_t j = 0; j < edge_ids.size(); ++j) {
      Response r;
      r.exists = hits[j] != 0;
      complete(shard, batch[edge_ids[j]], std::move(r), done);
    }
  }

  if (!add_ids.empty()) execute_mutations(shard, batch, add_ids, true);
  if (!remove_ids.empty()) execute_mutations(shard, batch, remove_ids, false);
  if (!add_ids.empty() || !remove_ids.empty()) {
    // Opportunistic background compaction: at most one shard worker runs
    // it (maybe_compact's flag), readers keep their pinned snapshots, and
    // the other shards keep serving while this one folds the delta in.
    PCQ_TRACE_SCOPE("svc.maybe_compact", 0);
    dynamic_->maybe_compact(kt);
  }

  if (!tedge_ids.empty()) {
    std::vector<tcsr::TemporalEdgeQuery> queries(tedge_ids.size());
    for (std::size_t j = 0; j < tedge_ids.size(); ++j) {
      const Request& r = batch[tedge_ids[j]].request;
      queries[j] = {r.u, r.v, r.t};
    }
    std::vector<std::uint8_t> hits;
    {
      PCQ_TRACE_SCOPE("svc.kernel.tedge", tedge_ids.size());
      hits = history_->batch_edge_active(queries, kt);
    }
    const auto done = Clock::now();
    for (std::size_t j = 0; j < tedge_ids.size(); ++j) {
      Response r;
      r.exists = hits[j] != 0;
      complete(shard, batch[tedge_ids[j]], std::move(r), done);
    }
  }

  if (!tneighbor_ids.empty()) {
    std::vector<tcsr::TemporalNodeQuery> queries(tneighbor_ids.size());
    for (std::size_t j = 0; j < tneighbor_ids.size(); ++j) {
      const Request& r = batch[tneighbor_ids[j]].request;
      queries[j] = {r.u, r.t};
    }
    std::vector<std::vector<VertexId>> rows;
    {
      PCQ_TRACE_SCOPE("svc.kernel.tneighbors", tneighbor_ids.size());
      rows = history_->batch_neighbors_at(queries, kt);
    }
    const auto done = Clock::now();
    for (std::size_t j = 0; j < tneighbor_ids.size(); ++j) {
      Response r;
      r.neighbors = std::move(rows[j]);
      complete(shard, batch[tneighbor_ids[j]], std::move(r), done);
    }
  }

  // Journey queries are whole-graph sweeps (foremost_arrival labels every
  // node), so they don't coalesce into an array kernel — each runs the
  // parallel frame replay on its own.
  for (const std::size_t i : journey_ids) {
    const Request& req = batch[i].request;
    PCQ_TRACE_SCOPE("svc.kernel.journey", 1);
    const auto arrivals =
        tcsr::foremost_arrival(*history_, req.u, req.t, kt);
    Response r;
    r.arrival = arrivals[req.v];
    r.exists = r.arrival != tcsr::kNeverReached;
    complete(shard, batch[i], std::move(r), Clock::now());
  }
}

void QueryService::execute_mutations(Shard& shard, std::vector<Pending>& batch,
                                     const std::vector<std::size_t>& ids,
                                     bool add) {
  // One HybridGraph call per polarity: the batch's mutations land in the
  // CPMA as a single batch-parallel apply (and a single published epoch).
  std::vector<graph::Edge> edges(ids.size());
  for (std::size_t j = 0; j < ids.size(); ++j)
    edges[j] = {batch[ids[j]].request.u, batch[ids[j]].request.v};
  std::vector<std::uint8_t> changed;
  {
    PCQ_TRACE_SCOPE("svc.kernel.mutate", ids.size());
    if (add)
      dynamic_->add_edges(edges, config_.kernel_threads, &changed);
    else
      dynamic_->remove_edges(edges, config_.kernel_threads, &changed);
  }
  shard.metrics.mutations.fetch_add(ids.size(), std::memory_order_relaxed);
  const auto done = Clock::now();
  for (std::size_t j = 0; j < ids.size(); ++j) {
    Response r;
    r.exists = changed[j] != 0;
    complete(shard, batch[ids[j]], std::move(r), done);
  }
}

std::vector<std::size_t> QueryService::queue_depths() const {
  std::vector<std::size_t> depths;
  depths.reserve(shards_.size());
  for (const auto& shard : shards_) depths.push_back(shard->queue.size());
  return depths;
}

MetricsSnapshot QueryService::metrics() const {
  MetricsSnapshot snap;
  LogHistogram::Snapshot latency;
  LogHistogram::Snapshot queue_wait;
  LogHistogram::Snapshot sizes;
  for (const auto& shard : shards_) {
    const ShardMetrics& m = shard->metrics;
    snap.submitted += m.submitted.load(std::memory_order_relaxed);
    snap.rejected += m.rejected.load(std::memory_order_relaxed);
    snap.expired += m.expired.load(std::memory_order_relaxed);
    snap.completed += m.completed.load(std::memory_order_relaxed);
    snap.batches += m.batches.load(std::memory_order_relaxed);
    snap.mutations += m.mutations.load(std::memory_order_relaxed);
    m.latency_us.accumulate(latency);
    m.queue_wait_us.accumulate(queue_wait);
    m.batch_size.accumulate(sizes);
  }
  snap.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - started_).count();
  snap.qps = snap.elapsed_seconds > 0
                 ? static_cast<double>(snap.completed) / snap.elapsed_seconds
                 : 0.0;
  snap.mean_batch_size = sizes.mean();
  snap.batch_p50 = sizes.quantile(0.50);
  snap.batch_p95 = sizes.quantile(0.95);
  snap.batch_p99 = sizes.quantile(0.99);
  snap.latency_mean_us = latency.mean();
  snap.latency_p50_us = latency.quantile(0.50);
  snap.latency_p95_us = latency.quantile(0.95);
  snap.latency_p99_us = latency.quantile(0.99);
  snap.queue_wait_mean_us = queue_wait.mean();
  snap.queue_wait_p50_us = queue_wait.quantile(0.50);
  snap.queue_wait_p95_us = queue_wait.quantile(0.95);
  snap.queue_wait_p99_us = queue_wait.quantile(0.99);
  return snap;
}

}  // namespace pcq::svc
