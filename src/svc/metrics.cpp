#include "svc/metrics.hpp"

#include <bit>

namespace pcq::svc {

int LogHistogram::bucket_index(std::uint64_t value) {
  // Values below kSub map to themselves (exact small-value buckets);
  // larger values land in octave `bit_width - kSubBits` with the top
  // kSubBits bits after the leading one selecting the linear sub-bucket.
  if (value < kSub) return static_cast<int>(value);
  const int msb = std::bit_width(value) - 1;  // >= kSubBits
  const int sub =
      static_cast<int>((value >> (msb - kSubBits)) & (kSub - 1));
  const int idx = (msb - kSubBits + 1) * kSub + sub;
  return idx >= kBuckets ? kBuckets - 1 : idx;
}

std::uint64_t LogHistogram::bucket_floor(int i) {
  if (i < kSub) return static_cast<std::uint64_t>(i);
  const int octave = i / kSub - 1 + kSubBits;
  const int sub = i % kSub;
  return (std::uint64_t{1} << octave) |
         (static_cast<std::uint64_t>(sub) << (octave - kSubBits));
}

LogHistogram::Snapshot LogHistogram::snapshot() const {
  Snapshot s;
  s.buckets.resize(kBuckets);
  accumulate(s);
  return s;
}

void LogHistogram::accumulate(Snapshot& into) const {
  if (into.buckets.size() != static_cast<std::size_t>(kBuckets))
    into.buckets.resize(kBuckets);
  for (int i = 0; i < kBuckets; ++i)
    into.buckets[static_cast<std::size_t>(i)] +=
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  into.count += count_.load(std::memory_order_relaxed);
  into.sum += sum_.load(std::memory_order_relaxed);
}

double LogHistogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t b = buckets[static_cast<std::size_t>(i)];
    if (b == 0) continue;
    if (static_cast<double>(seen + b) >= target) {
      const std::uint64_t lo = bucket_floor(i);
      const std::uint64_t hi =
          i + 1 < kBuckets ? bucket_floor(i + 1) : lo + 1;
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(b);
      return static_cast<double>(lo) +
             frac * static_cast<double>(hi - lo);
    }
    seen += b;
  }
  return static_cast<double>(bucket_floor(kBuckets - 1));
}

}  // namespace pcq::svc
