// Service metrics with a lock-free hot path.
//
// Every counter and histogram bucket is a relaxed std::atomic, so workers
// record latencies and batch sizes with plain fetch_adds — no locks, no
// false contention between shards (each shard owns its own block; the
// service aggregates at snapshot time). Percentiles come from a log-linear
// histogram (4 linear sub-buckets per power of two), accurate to ~12% at
// any magnitude, which is plenty for p50/p95/p99 reporting.
#pragma once

#include <atomic>
#include <array>
#include <cstdint>
#include <vector>

namespace pcq::svc {

/// Log-linear histogram of non-negative 64-bit samples (microseconds for
/// latency, request counts for batch sizes). Thread-safe for concurrent
/// record(); snapshot reads are racy-by-design (monotonic counters, so a
/// concurrent snapshot is merely a consistent-enough point-in-time view).
class LogHistogram {
 public:
  static constexpr int kSubBits = 2;  ///< 4 linear sub-buckets per octave
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kOctaves = 40;  ///< covers [0, 2^40) — 12 days in us
  static constexpr int kBuckets = kOctaves * kSub;

  void record(std::uint64_t value) {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::vector<std::uint64_t> buckets;  ///< kBuckets counts
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    /// Quantile estimate, q in [0, 1]; 0 when empty. Linear interpolation
    /// inside the winning bucket.
    [[nodiscard]] double quantile(double q) const;
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
  };

  [[nodiscard]] Snapshot snapshot() const;

  /// Merges this histogram's counts into `into` (shard aggregation).
  void accumulate(Snapshot& into) const;

  /// Bucket index for a value (exposed for tests).
  static int bucket_index(std::uint64_t value);

  /// Inclusive lower bound of bucket i (exposed for tests).
  static std::uint64_t bucket_floor(int i);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// One shard's counters. All relaxed atomics — see file comment.
struct ShardMetrics {
  std::atomic<std::uint64_t> submitted{0};  ///< accepted into the queue
  std::atomic<std::uint64_t> rejected{0};   ///< queue full / stopped
  std::atomic<std::uint64_t> expired{0};    ///< deadline passed while queued
  std::atomic<std::uint64_t> completed{0};  ///< answered (incl. invalid/unsup.)
  std::atomic<std::uint64_t> batches{0};    ///< batch dispatches
  LogHistogram latency_us;                  ///< enqueue -> completion
  LogHistogram batch_size;                  ///< requests per dispatched batch
};

/// Point-in-time aggregate over all shards, with derived percentiles —
/// what QueryService::metrics() returns and the load generators print.
struct MetricsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;
  double elapsed_seconds = 0;   ///< since service start
  double qps = 0;               ///< completed / elapsed
  double mean_batch_size = 0;
  double batch_p50 = 0, batch_p95 = 0, batch_p99 = 0;
  double latency_mean_us = 0;
  double latency_p50_us = 0, latency_p95_us = 0, latency_p99_us = 0;
};

}  // namespace pcq::svc
