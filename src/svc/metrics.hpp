// Service metrics with a lock-free hot path.
//
// The histogram/counter primitives live in pcq::obs (src/obs/metrics.hpp)
// since the observability PR; this header re-exports them under pcq::svc
// for existing call sites and keeps the service-specific aggregates. Every
// counter and histogram bucket is a relaxed std::atomic, so workers record
// latencies and batch sizes with plain fetch_adds — no locks, no false
// contention between shards (each shard owns its own block; the service
// aggregates at snapshot time). Percentiles come from a log-linear
// histogram (4 linear sub-buckets per power of two), accurate to ~12% at
// any magnitude, which is plenty for p50/p95/p99 reporting.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/metrics.hpp"

namespace pcq::svc {

using obs::Counter;
using obs::Gauge;
using obs::LogHistogram;

/// One shard's counters. All relaxed atomics — see file comment.
struct ShardMetrics {
  std::atomic<std::uint64_t> submitted{0};  ///< accepted into the queue
  std::atomic<std::uint64_t> rejected{0};   ///< queue full / stopped
  std::atomic<std::uint64_t> expired{0};    ///< deadline passed while queued
  std::atomic<std::uint64_t> completed{0};  ///< answered (incl. invalid/unsup.)
  std::atomic<std::uint64_t> batches{0};    ///< batch dispatches
  std::atomic<std::uint64_t> mutations{0};  ///< kAddEdges/kRemoveEdges answered kOk
  LogHistogram latency_us;     ///< enqueue -> completion
  LogHistogram queue_wait_us;  ///< enqueue -> batch dispatch (queueing only)
  LogHistogram batch_size;     ///< requests per dispatched batch
};

/// Point-in-time aggregate over all shards, with derived percentiles —
/// what QueryService::metrics() returns and the load generators print.
struct MetricsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;
  std::uint64_t mutations = 0;
  double elapsed_seconds = 0;   ///< since service start
  double qps = 0;               ///< completed / elapsed
  double mean_batch_size = 0;
  double batch_p50 = 0, batch_p95 = 0, batch_p99 = 0;
  double latency_mean_us = 0;
  double latency_p50_us = 0, latency_p95_us = 0, latency_p99_us = 0;
  /// Queueing delay alone (enqueue -> dispatch); latency minus this is
  /// service time, so the two are separable per the batching analysis.
  double queue_wait_mean_us = 0;
  double queue_wait_p50_us = 0, queue_wait_p95_us = 0, queue_wait_p99_us = 0;
};

}  // namespace pcq::svc
