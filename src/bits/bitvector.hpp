// Dynamic bit vector backed by 64-bit words.
//
// This is the raw storage for every compressed structure in the library:
// the bit-packed CSR arrays, the TCSR frames and the codec outputs all
// bottom out in a BitVector.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace pcq::bits {

class BitVector {
 public:
  BitVector() = default;

  /// A vector of `nbits` zero bits.
  explicit BitVector(std::size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  /// Adopts a raw word buffer (deserialization); `words` must hold exactly
  /// ceil(nbits / 64) entries.
  static BitVector from_words(std::vector<std::uint64_t> words,
                              std::size_t nbits) {
    PCQ_CHECK(words.size() == (nbits + 63) / 64);
    BitVector bv;
    bv.nbits_ = nbits;
    bv.words_ = std::move(words);
    return bv;
  }

  /// Number of bits.
  [[nodiscard]] std::size_t size() const { return nbits_; }
  [[nodiscard]] bool empty() const { return nbits_ == 0; }

  /// Heap bytes used by the payload (what the size benchmarks report).
  [[nodiscard]] std::size_t size_bytes() const { return words_.size() * 8; }

  [[nodiscard]] bool get(std::size_t i) const {
    PCQ_DCHECK(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i, bool value) {
    PCQ_DCHECK(i < nbits_);
    const std::uint64_t mask = 1ULL << (i & 63);
    if (value)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  /// Appends a single bit.
  void push_back(bool value) {
    if ((nbits_ & 63) == 0) words_.push_back(0);
    if (value) words_[nbits_ >> 6] |= 1ULL << (nbits_ & 63);
    ++nbits_;
  }

  /// Appends the low `width` bits of `value` (LSB-first layout).
  /// width must be in [0, 64]; width 0 appends nothing.
  void append_bits(std::uint64_t value, unsigned width);

  /// Reads `width` (<= 64) bits starting at bit offset `pos`, LSB-first.
  [[nodiscard]] std::uint64_t read_bits(std::size_t pos, unsigned width) const;

  /// Appends all of `other`'s bits to this vector. Used by the Algorithm 4
  /// merge step, where per-chunk bit arrays are concatenated into the final
  /// global array.
  void append(const BitVector& other);

  /// Number of set bits.
  [[nodiscard]] std::size_t popcount() const;

  [[nodiscard]] std::span<const std::uint64_t> words() const { return words_; }
  /// Mutable word access for parallel merges (word-aligned OR writes).
  [[nodiscard]] std::span<std::uint64_t> mutable_words() { return words_; }

  friend bool operator==(const BitVector& a, const BitVector& b);

 private:
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Minimum width (>= 1) able to represent `max_value`.
inline unsigned bits_for(std::uint64_t max_value) {
  if (max_value == 0) return 1;
  return static_cast<unsigned>(64 - std::countl_zero(max_value));
}

}  // namespace pcq::bits
