// Dynamic bit vector backed by 64-bit words.
//
// This is the raw storage for every compressed structure in the library:
// the bit-packed CSR arrays, the TCSR frames and the codec outputs all
// bottom out in a BitVector.
//
// Two storage modes share one read path:
//   * owning (default) — the words live in a private heap vector, and the
//     vector is freely mutable/appendable;
//   * borrowed view (`BitVector::view`) — the words live in storage the
//     caller keeps alive (a memory-mapped file region); reads are
//     identical, mutation is refused. This is what lets the packed
//     CSR/TCSR query kernels run zero-copy over an mmap'd artifact.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace pcq::bits {

class BitVector {
 public:
  BitVector() = default;

  /// A vector of `nbits` zero bits.
  explicit BitVector(std::size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0) {
    sync();
  }

  // Owned storage may reallocate, so the borrowed-vs-owned data pointer
  // must be re-derived on copy/move instead of blindly copied.
  BitVector(const BitVector& other) { assign(other); }
  BitVector& operator=(const BitVector& other) {
    if (this != &other) assign(other);
    return *this;
  }
  BitVector(BitVector&& other) noexcept { assign_move(std::move(other)); }
  BitVector& operator=(BitVector&& other) noexcept {
    if (this != &other) assign_move(std::move(other));
    return *this;
  }
  ~BitVector() = default;

  /// Adopts a raw word buffer (deserialization); `words` must hold exactly
  /// ceil(nbits / 64) entries.
  static BitVector from_words(std::vector<std::uint64_t> words,
                              std::size_t nbits) {
    PCQ_CHECK(words.size() == (nbits + 63) / 64);
    BitVector bv;
    bv.nbits_ = nbits;
    bv.words_ = std::move(words);
    bv.sync();
    return bv;
  }

  /// Borrows `nbits` of already-packed storage the caller keeps alive
  /// (mapped file payloads). `words` must hold at least ceil(nbits / 64)
  /// entries; the view never mutates and never frees them. Copies of a
  /// view alias the same external words.
  static BitVector view(std::span<const std::uint64_t> words,
                        std::size_t nbits) {
    const std::size_t need = (nbits + 63) / 64;
    PCQ_CHECK_MSG(words.size() >= need,
                  "BitVector::view span shorter than nbits");
    BitVector bv;
    bv.nbits_ = nbits;
    bv.data_ = words.data();
    bv.num_words_ = need;
    bv.owns_ = false;
    return bv;
  }

  /// False for a borrowed view over caller-owned storage.
  [[nodiscard]] bool owns_storage() const { return owns_; }

  /// Number of bits.
  [[nodiscard]] std::size_t size() const { return nbits_; }
  [[nodiscard]] bool empty() const { return nbits_ == 0; }

  /// Payload bytes used (heap for owned storage, mapped bytes for views —
  /// what the size benchmarks report either way).
  [[nodiscard]] std::size_t size_bytes() const { return num_words_ * 8; }

  [[nodiscard]] bool get(std::size_t i) const {
    PCQ_DCHECK(i < nbits_);
    return (data_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i, bool value) {
    PCQ_DCHECK(i < nbits_);
    PCQ_DCHECK_MSG(owns_, "cannot mutate a borrowed BitVector view");
    const std::uint64_t mask = 1ULL << (i & 63);
    if (value)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  /// Appends a single bit.
  void push_back(bool value) {
    PCQ_DCHECK_MSG(owns_, "cannot mutate a borrowed BitVector view");
    if ((nbits_ & 63) == 0) words_.push_back(0);
    if (value) words_[nbits_ >> 6] |= 1ULL << (nbits_ & 63);
    ++nbits_;
    sync();
  }

  /// Appends the low `width` bits of `value` (LSB-first layout).
  /// width must be in [0, 64]; width 0 appends nothing.
  void append_bits(std::uint64_t value, unsigned width);

  /// Reads `width` (<= 64) bits starting at bit offset `pos`, LSB-first.
  [[nodiscard]] std::uint64_t read_bits(std::size_t pos, unsigned width) const;

  /// Appends all of `other`'s bits to this vector. Used by the Algorithm 4
  /// merge step, where per-chunk bit arrays are concatenated into the final
  /// global array.
  void append(const BitVector& other);

  /// Number of set bits.
  [[nodiscard]] std::size_t popcount() const;

  [[nodiscard]] std::span<const std::uint64_t> words() const {
    return {data_, num_words_};
  }
  /// Mutable word access for parallel merges (word-aligned OR writes).
  /// Refused on borrowed views — mapped bytes are read-only.
  [[nodiscard]] std::span<std::uint64_t> mutable_words() {
    PCQ_CHECK_MSG(owns_, "cannot mutate a borrowed BitVector view");
    return words_;
  }

  friend bool operator==(const BitVector& a, const BitVector& b);

 private:
  /// Re-points data_ at the owned vector after any mutation that may have
  /// reallocated it.
  void sync() {
    data_ = words_.data();
    num_words_ = words_.size();
  }

  void assign(const BitVector& other) {
    nbits_ = other.nbits_;
    owns_ = other.owns_;
    if (other.owns_) {
      words_ = other.words_;
      sync();
    } else {
      words_.clear();
      data_ = other.data_;
      num_words_ = other.num_words_;
    }
  }

  void assign_move(BitVector&& other) noexcept {
    nbits_ = other.nbits_;
    owns_ = other.owns_;
    if (other.owns_) {
      words_ = std::move(other.words_);
      sync();
    } else {
      words_.clear();
      data_ = other.data_;
      num_words_ = other.num_words_;
    }
    other.nbits_ = 0;
    other.words_.clear();
    other.owns_ = true;
    other.sync();
  }

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;     ///< owned storage (empty for views)
  const std::uint64_t* data_ = nullptr;  ///< words_.data() or borrowed words
  std::size_t num_words_ = 0;
  bool owns_ = true;
};

/// Minimum width (>= 1) able to represent `max_value`.
inline unsigned bits_for(std::uint64_t max_value) {
  if (max_value == 0) return 1;
  return static_cast<unsigned>(64 - std::countl_zero(max_value));
}

}  // namespace pcq::bits
