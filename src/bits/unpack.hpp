// Word-streaming fixed-width unpack kernel.
//
// `FixedWidthArray::get` decodes one element per `read_bits` call: two
// shifts, a straddle branch and a word load that is usually a reload of
// the word the previous element ended in. For bulk row decoding (the
// GetRowFromCSR hot path behind every Section V query and every packed
// graph traversal) that redundancy dominates. The bulk kernel here picks
// the fastest safe decode per (width, alignment):
//   * byte-aligned 8/16/32/64-bit values are a little-endian integer
//     array — memcpy or a widening copy loop;
//   * width <= 57: one unaligned 64-bit load + shift + mask per value,
//     with no loop-carried dependency, so iterations pipeline;
//   * otherwise a carry-remainder loop that loads each storage word
//     exactly once.
//
// Two entry points:
//   * unpack_words — bulk decode of `count` consecutive values into an
//     output array (templated on the output integer type, so packed
//     columns decode straight into VertexId buffers with no widening
//     round-trip);
//   * RowCursor — a zero-materialisation streaming decoder over the same
//     layout, for consumers (neighbour scans, sorted merges) that never
//     need the whole row in memory at once.
//
// Byte-aligned widths (8/16/32/64 starting on a byte boundary) skip the
// shift loop entirely and memcpy from the storage bytes; the LSB-first
// packing makes the packed layout identical to a little-endian integer
// array in that case.
//
// Widths 1-32 into 32-bit lanes additionally route through the runtime-
// dispatched SIMD tier (simd_dispatch.hpp): AVX2/AVX-512 batched unpack
// resolved once per process from cpuid, falling back to the scalar paths
// here on other hosts. Every variant is bit-for-bit equal to the scalar
// reference (tests/test_unpack_simd.cpp), so routing is purely a speed
// decision.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "bits/simd_dispatch.hpp"
#include "util/check.hpp"

namespace pcq::bits {

namespace detail {

/// Carry-remainder loop — the endian-independent fallback. `cur` always
/// holds exactly `avail` valid low bits of the stream (zeros above), so a
/// value either fits in `cur` or straddles into the next word, which is
/// loaded exactly once.
template <typename OutT>
inline void unpack_words_carry(const std::uint64_t* words,
                               std::size_t bit_begin, unsigned width,
                               std::size_t count, OutT* out) {
  const std::uint64_t mask =
      width == 64 ? ~0ULL : ((std::uint64_t{1} << width) - 1);
  std::size_t w = bit_begin >> 6;
  const unsigned offset = static_cast<unsigned>(bit_begin & 63);
  std::uint64_t cur = words[w] >> offset;
  unsigned avail = 64 - offset;
  for (std::size_t i = 0; i < count; ++i) {
    if (avail == 0) {  // refilled lazily so the last word is never over-read
      cur = words[++w];
      avail = 64;
    }
    if (avail >= width) {
      out[i] = static_cast<OutT>(cur & mask);
      cur = width < 64 ? cur >> width : 0;
      avail -= width;
    } else {
      // 1 <= avail < width <= 64: the value straddles into the next word.
      const std::uint64_t next = words[++w];
      out[i] = static_cast<OutT>((cur | (next << avail)) & mask);
      const unsigned taken = width - avail;  // in [1, 63]
      cur = next >> taken;
      avail = 64 - taken;
    }
  }
}

/// Unaligned-load path for width <= 57 on little-endian targets: every
/// value lies within the 8 bytes starting at its byte position, so one
/// unaligned 64-bit load + shift + mask decodes it. Iterations carry no
/// dependency (the bit counter is a plain add), so they pipeline ~2x
/// better than the carry loop. An 8-byte load at byte b>>3 stays inside
/// the storage iff b + 57 < storage bits, which the caller guarantees up
/// to the word holding the last packed bit — the few tail elements past
/// that bound fall back to the carry loop.
template <typename OutT>
inline void unpack_words_unaligned(const std::uint64_t* words,
                                   std::size_t bit_begin, unsigned width,
                                   std::size_t count, OutT* out) {
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  const auto* bytes = reinterpret_cast<const unsigned char*>(words);
  const std::size_t end_bits = bit_begin + count * width;
  const std::size_t safe_bits = ((end_bits + 63) >> 6) << 6;
  // Common case first: the last element's load also stays in bounds, so
  // every element takes the unaligned path and no boundary division is
  // needed (an idiv per row would dominate short-row decodes).
  std::size_t n_unaligned;
  const std::size_t last_bit = end_bits - width;
  if (last_bit + 57 <= safe_bits)
    n_unaligned = count;
  else if (safe_bits >= bit_begin + 57)
    n_unaligned = count < (safe_bits - 57 - bit_begin) / width + 1
                      ? count
                      : (safe_bits - 57 - bit_begin) / width + 1;
  else
    n_unaligned = 0;
  std::size_t bit = bit_begin;
  for (std::size_t i = 0; i < n_unaligned; ++i, bit += width) {
    std::uint64_t v;
    std::memcpy(&v, bytes + (bit >> 3), 8);
    out[i] = static_cast<OutT>((v >> (bit & 7)) & mask);
  }
  if (n_unaligned < count)
    unpack_words_carry(words, bit, width, count - n_unaligned,
                       out + n_unaligned);
}

/// Widening copy from a packed little-endian Elem array. The element size
/// is a compile-time constant so each memcpy inlines to one load (a
/// runtime-sized memcpy would be a libc call per element).
template <typename Elem, typename OutT>
inline void unpack_words_bytes_as(const unsigned char* bytes,
                                  std::size_t count, OutT* out) {
  for (std::size_t i = 0; i < count; ++i, bytes += sizeof(Elem)) {
    Elem v;
    std::memcpy(&v, bytes, sizeof(Elem));
    out[i] = static_cast<OutT>(v);
  }
}

/// Byte-aligned fast path: elements are width/8-byte little-endian
/// integers sitting at consecutive byte offsets.
template <typename OutT>
inline void unpack_words_bytes(const std::uint64_t* words,
                               std::size_t bit_begin, unsigned width,
                               std::size_t count, OutT* out) {
  const auto* bytes =
      reinterpret_cast<const unsigned char*>(words) + (bit_begin >> 3);
  if (sizeof(OutT) * 8 == width) {
    std::memcpy(out, bytes, count * (width >> 3));
    return;
  }
  switch (width) {
    case 8:
      unpack_words_bytes_as<std::uint8_t>(bytes, count, out);
      break;
    case 16:
      unpack_words_bytes_as<std::uint16_t>(bytes, count, out);
      break;
    case 32:
      unpack_words_bytes_as<std::uint32_t>(bytes, count, out);
      break;
    default:
      unpack_words_bytes_as<std::uint64_t>(bytes, count, out);
      break;
  }
}

/// The pure-scalar kernel: byte-aligned memcpy, unaligned 64-bit loads, or
/// the carry loop — never the SIMD tier. This is both the dispatch
/// fallback and the reference every vector variant is proven against.
template <typename OutT>
inline void unpack_words_scalar(const std::uint64_t* words,
                                std::size_t bit_begin, unsigned width,
                                std::size_t count, OutT* out) {
  if (count == 0) return;
  if constexpr (std::endian::native == std::endian::little) {
    if ((width & 7) == 0 && (bit_begin & 7) == 0 &&
        (width == 8 || width == 16 || width == 32 || width == 64)) {
      detail::unpack_words_bytes(words, bit_begin, width, count, out);
      return;
    }
    if (width <= 57) {
      detail::unpack_words_unaligned(words, bit_begin, width, count, out);
      return;
    }
  }
  detail::unpack_words_carry(words, bit_begin, width, count, out);
}

}  // namespace detail

/// Decodes `count` consecutive `width`-bit values starting at `bit_begin`
/// into `out`. `words` is the LSB-first packed storage (BitVector layout);
/// the caller guarantees the range lies inside it. Values wider than OutT
/// are truncated by static_cast, which is only valid when the caller knows
/// they fit (e.g. packed VertexId columns).
template <typename OutT>
inline void unpack_words(const std::uint64_t* words, std::size_t bit_begin,
                         unsigned width, std::size_t count, OutT* out) {
  PCQ_DCHECK(width >= 1 && width <= 64);
  if (count == 0) return;
  PCQ_DCHECK_MSG(words != nullptr && out != nullptr,
                 "unpack_words needs source words and an output buffer");
  if constexpr (std::endian::native == std::endian::little) {
    // Byte-aligned element widths are a little-endian integer array; a
    // plain (glibc-vectorised) memcpy or widening copy beats any shuffle
    // kernel, so this stays ahead of the dispatch.
    if ((width & 7) == 0 && (bit_begin & 7) == 0 &&
        (width == 8 || width == 16 || width == 32 || width == 64)) {
      detail::unpack_words_bytes(words, bit_begin, width, count, out);
      return;
    }
    if constexpr (sizeof(OutT) == 4 && std::is_integral_v<OutT>) {
      if (width <= 32) {
        simd::unpack32(words, bit_begin, width, count,
                       reinterpret_cast<std::uint32_t*>(out));
        return;
      }
    } else if constexpr (sizeof(OutT) == 8 && std::is_integral_v<OutT>) {
      // Wide outputs of narrow values: decode through the SIMD tier into a
      // stack block, then widen (the copy auto-vectorises). Only worth the
      // extra pass when a vector tier actually resolved and the run is long
      // enough to amortise it.
      if (width <= 32 && count >= 64 &&
          simd::active_isa() != simd::Isa::kScalar) {
        std::uint32_t block[256];
        std::size_t done = 0;
        std::size_t bit = bit_begin;
        while (done < count) {
          const std::size_t n =
              count - done < std::size_t{256} ? count - done : std::size_t{256};
          simd::unpack32(words, bit, width, n, block);
          for (std::size_t i = 0; i < n; ++i)
            out[done + i] = static_cast<OutT>(block[i]);
          done += n;
          bit += n * width;
        }
        return;
      }
    }
    if (width <= 57) {
      detail::unpack_words_unaligned(words, bit_begin, width, count, out);
      return;
    }
  }
  detail::unpack_words_carry(words, bit_begin, width, count, out);
}

/// Streaming decoder over a packed run: the zero-materialisation
/// counterpart of unpack_words.
///
/// Two internal modes, picked at construction:
///   * widths <= 32 over long runs refill a small block buffer through the
///     dispatched SIMD tier (simd::unpack32), so a streamed row decodes at
///     bulk-kernel speed while the API stays one-value-at-a-time;
///   * otherwise the original carry state (current word, valid-bit count)
///     is held across next() calls — same word loads as the bulk kernel,
///     no scratch buffer, and no refill look-ahead for consumers that
///     bail out after a handful of values.
///
/// Supports both explicit iteration
///     for (RowCursor c = ...; !c.done();) use(c.next());
/// and range-for (yields std::uint64_t):
///     for (std::uint64_t v : cursor) ...
class RowCursor {
 public:
  RowCursor() = default;

  /// Cursor over `count` `width`-bit values starting at `bit_begin`.
  RowCursor(const std::uint64_t* words, std::size_t bit_begin, unsigned width,
            std::size_t count)
      : words_(words),
        mask_(width == 64 ? ~0ULL : ((std::uint64_t{1} << width) - 1)),
        remaining_(count),
        width_(width) {
    PCQ_DCHECK(width >= 1 && width <= 64);
    if (count == 0) return;
    if (width <= 32 && count >= kRefillMin) {
      // Block mode: defer all decoding to refill(); nothing is read here,
      // so constructing a cursor the consumer abandons unread stays free.
      buffered_ = true;
      bit_ = bit_begin;
      return;
    }
    w_ = bit_begin >> 6;
    const unsigned offset = static_cast<unsigned>(bit_begin & 63);
    cur_ = words_[w_] >> offset;
    avail_ = 64 - offset;
  }

  /// Values not yet consumed.
  [[nodiscard]] std::size_t remaining() const { return remaining_; }
  [[nodiscard]] bool done() const { return remaining_ == 0; }

  /// Decodes and consumes the next value.
  std::uint64_t next() {
    PCQ_DCHECK(remaining_ > 0);
    --remaining_;
    if (buffered_) {
      if (buf_pos_ == buf_len_) refill();
      return buf_[buf_pos_++];
    }
    if (avail_ == 0) {
      cur_ = words_[++w_];
      avail_ = 64;
    }
    if (avail_ >= width_) {
      const std::uint64_t v = cur_ & mask_;
      cur_ = width_ < 64 ? cur_ >> width_ : 0;
      avail_ -= width_;
      return v;
    }
    const std::uint64_t next_word = words_[++w_];
    const std::uint64_t v = (cur_ | (next_word << avail_)) & mask_;
    const unsigned taken = width_ - avail_;
    cur_ = next_word >> taken;
    avail_ = 64 - taken;
    return v;
  }

  struct Sentinel {};
  class Iterator {
   public:
    explicit Iterator(RowCursor* cursor) : cursor_(cursor) { advance(); }
    std::uint64_t operator*() const { return value_; }
    Iterator& operator++() {
      advance();
      return *this;
    }
    bool operator!=(Sentinel) const { return !at_end_; }

   private:
    void advance() {
      if (cursor_->done())
        at_end_ = true;
      else
        value_ = cursor_->next();
    }
    RowCursor* cursor_;
    std::uint64_t value_ = 0;
    bool at_end_ = false;
  };

  /// Iteration consumes the cursor (input-iterator semantics).
  Iterator begin() { return Iterator(this); }
  static Sentinel end() { return {}; }

 private:
  // Block-mode geometry: buffering pays once a run amortises the refill
  // call; shorter runs keep the branch-free carry decode.
  static constexpr unsigned kBlock = 32;
  static constexpr std::size_t kRefillMin = 16;

  /// Decodes the next block through the dispatched kernel. Called with at
  /// least one value left to produce: next() already consumed its value
  /// from remaining_, so the undecoded run is remaining_ + 1 long.
  void refill() {
    const std::size_t left = remaining_ + 1;
    const std::size_t n = left < kBlock ? left : kBlock;
    simd::unpack32(words_, bit_, width_, n, buf_);
    bit_ += n * width_;
    buf_len_ = static_cast<unsigned>(n);
    buf_pos_ = 0;
  }

  const std::uint64_t* words_ = nullptr;
  std::uint64_t cur_ = 0;
  std::uint64_t mask_ = 0;
  std::size_t w_ = 0;
  std::size_t remaining_ = 0;
  std::size_t bit_ = 0;
  std::uint32_t buf_[kBlock];
  unsigned width_ = 1;
  unsigned avail_ = 0;
  unsigned buf_pos_ = 0;
  unsigned buf_len_ = 0;
  bool buffered_ = false;
};

}  // namespace pcq::bits
