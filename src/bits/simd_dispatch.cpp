// ISA resolution for the batched unpack tier (see simd_dispatch.hpp for
// the contract). This TU is compiled with baseline flags only: it must run
// on any x86-64 (and any other architecture), probing at runtime what the
// host can execute before a single vector instruction is reachable.
#include "bits/simd_dispatch.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bits/unpack.hpp"

namespace pcq::bits::simd {

namespace detail {

std::atomic<UnpackFn32> g_unpack32{nullptr};

// Which tier the stored pointer corresponds to, for active_isa(). Written
// together with g_unpack32; both are idempotent under racing resolution,
// so relaxed ordering suffices (no dependent data is published).
namespace {
std::atomic<unsigned char> g_active_isa{0};
}  // namespace

void unpack32_scalar(const std::uint64_t* words, std::size_t bit_begin,
                     unsigned width, std::size_t count,
                     std::uint32_t* out) noexcept {
  pcq::bits::detail::unpack_words_scalar(words, bit_begin, width, count, out);
}

}  // namespace detail

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool parse_isa(const char* name, Isa* out) noexcept {
  if (name == nullptr || out == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    *out = Isa::kScalar;
  } else if (std::strcmp(name, "avx2") == 0) {
    *out = Isa::kAvx2;
  } else if (std::strcmp(name, "avx512") == 0) {
    *out = Isa::kAvx512;
  } else {
    return false;
  }
  return true;
}

bool variant_compiled(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if defined(PCQ_SIMD_AVX2)
      return true;
#else
      return false;
#endif
    case Isa::kAvx512:
#if defined(PCQ_SIMD_AVX512)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool cpu_supports(Isa isa) noexcept {
  if (isa == Isa::kScalar) return true;
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports handles both the cpuid feature bit and the
  // OS-enabled state (xgetbv), which a raw cpuid probe gets wrong.
  switch (isa) {
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Isa::kAvx512:
      // The 512-bit kernel uses vpermb (VBMI) plus the F/BW/VL core set.
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0 &&
             __builtin_cpu_supports("avx512vbmi") != 0;
    case Isa::kScalar:
      return true;
  }
#endif
  return false;
}

UnpackFn32 variant_fn(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return &detail::unpack32_scalar;
    case Isa::kAvx2:
#if defined(PCQ_SIMD_AVX2)
      return &detail::unpack32_avx2;
#else
      return nullptr;
#endif
    case Isa::kAvx512:
#if defined(PCQ_SIMD_AVX512)
      return &detail::unpack32_avx512;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

namespace {

/// Truthy env var: set to anything but "" or "0".
bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

/// The tier resolution picks absent any override: the best tier that is
/// both compiled in and executable here.
Isa best_available() {
  if (variant_available(Isa::kAvx512)) return Isa::kAvx512;
  if (variant_available(Isa::kAvx2)) return Isa::kAvx2;
  return Isa::kScalar;
}

Isa pick_isa() {
  if (env_truthy("PCQ_FORCE_SCALAR")) return Isa::kScalar;
  if (const char* request = std::getenv("PCQ_UNPACK_ISA")) {
    Isa isa{};
    if (parse_isa(request, &isa) && variant_available(isa)) return isa;
    std::fprintf(stderr,
                 "pcq: PCQ_UNPACK_ISA=%s unavailable on this build/host; "
                 "using %s\n",
                 request, isa_name(best_available()));
  }
  return best_available();
}

void publish(Isa isa, UnpackFn32 fn) {
  detail::g_active_isa.store(static_cast<unsigned char>(isa),
                             std::memory_order_relaxed);
  detail::g_unpack32.store(fn, std::memory_order_relaxed);
}

}  // namespace

namespace detail {

UnpackFn32 resolve_unpack32() noexcept {
  const Isa isa = pick_isa();
  UnpackFn32 fn = variant_fn(isa);
  if (fn == nullptr) fn = &unpack32_scalar;  // unreachable belt-and-braces
  publish(isa, fn);
  return fn;
}

}  // namespace detail

Isa active_isa() noexcept {
  if (detail::g_unpack32.load(std::memory_order_relaxed) == nullptr)
    detail::resolve_unpack32();
  return static_cast<Isa>(detail::g_active_isa.load(std::memory_order_relaxed));
}

bool set_isa(Isa isa) noexcept {
  if (!variant_available(isa)) return false;
  publish(isa, variant_fn(isa));
  return true;
}

}  // namespace pcq::bits::simd
