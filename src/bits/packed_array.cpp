#include "bits/packed_array.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "par/chunking.hpp"
#include "par/parallel_for.hpp"
#include "par/reduce.hpp"
#include "par/threads.hpp"

namespace pcq::bits {

FixedWidthArray FixedWidthArray::pack(std::span<const std::uint64_t> values,
                                      int num_threads) {
  std::uint64_t max_value = 0;
  if (!values.empty()) {
    max_value = pcq::par::parallel_reduce<std::uint64_t>(
        values, 0, num_threads,
        [](std::uint64_t a, std::uint64_t b) { return std::max(a, b); });
  }
  return pack_with_width(values, bits_for(max_value), num_threads);
}

FixedWidthArray FixedWidthArray::pack_with_width(
    std::span<const std::uint64_t> values, unsigned width, int num_threads) {
  PCQ_CHECK(width >= 1 && width <= 64);
  const std::size_t n = values.size();
  const auto p = static_cast<std::size_t>(pcq::par::clamp_threads(num_threads));
  const std::size_t chunks = pcq::par::num_nonempty_chunks(n, p);

  if (chunks <= 1) {
    BitVector bv;
    for (std::uint64_t v : values) {
      PCQ_DCHECK(width == 64 || (v >> width) == 0);
      bv.append_bits(v, width);
    }
    return FixedWidthArray(std::move(bv), n, width);
  }

  // Algorithm 4: each processor packs its chunk into a private bit array
  // stored "in a global location"...
  std::vector<BitVector> partial(chunks);
  {
    PCQ_TRACE_SCOPE("pack.chunks", chunks);
    pcq::par::parallel_for_chunks(
        n, static_cast<int>(chunks),
        [&](std::size_t c, pcq::par::ChunkRange r) {
          BitVector local;
          for (std::size_t i = r.begin; i < r.end; ++i) {
            PCQ_DCHECK(width == 64 || (values[i] >> width) == 0);
            local.append_bits(values[i], width);
          }
          partial[c] = std::move(local);
        });
  }

  // ...then the per-chunk arrays are merged into the final bit array. With
  // a fixed element width the destination offset of every chunk is known, so
  // the merge copies whole words in parallel and ORs the one word each pair
  // of neighbouring chunks can share. The span covers both the parallel
  // word copy and the sequential boundary pass (recorded explicitly — the
  // merge straddles two statements RAII can't bracket cleanly).
  const bool traced = pcq::obs::kTraceCompiledIn && pcq::obs::trace_enabled();
  const std::uint64_t merge_t0 = traced ? pcq::obs::trace_now_ns() : 0;
  BitVector merged(n * width);
  auto dst = merged.mutable_words();
  pcq::par::parallel_for_chunks(
      n, static_cast<int>(chunks), [&](std::size_t c, pcq::par::ChunkRange r) {
        const BitVector& src = partial[c];
        const std::size_t bit_off = r.begin * width;
        const unsigned shift = bit_off & 63;
        std::size_t w = bit_off >> 6;
        const auto src_words = src.words();
        // Destination words on chunk boundaries can be shared between two
        // neighbouring chunks; OR-ing them from two threads would be a data
        // race, so each chunk's first word is deferred to a sequential
        // boundary pass below, and spills that carry no bits are skipped
        // (an |= 0 is still a racing store).
        if (shift == 0) {
          for (std::size_t i = 0; i < src_words.size(); ++i) {
            if (i == 0 && c > 0) continue;  // deferred boundary word
            dst[w + i] |= src_words[i];
          }
        } else {
          for (std::size_t i = 0; i < src_words.size(); ++i) {
            if (i == 0 && c > 0) continue;  // deferred boundary word
            dst[w + i] |= src_words[i] << shift;
            const std::uint64_t high = src_words[i] >> (64 - shift);
            if (high != 0) dst[w + i + 1] |= high;
          }
        }
      });

  // Sequential boundary pass: the first source word of every chunk after
  // the first may straddle a destination word also written by the left
  // neighbour. There are only `chunks - 1` such words, so this pass is
  // negligible — it is the packing analogue of the degree-merge step.
  for (std::size_t c = 1; c < chunks; ++c) {
    const auto r = pcq::par::chunk_range(n, chunks, c);
    const BitVector& src = partial[c];
    if (src.size() == 0) continue;
    const std::size_t bit_off = r.begin * width;
    const unsigned shift = bit_off & 63;
    const std::size_t w = bit_off >> 6;
    const std::uint64_t first = src.words()[0];
    if (shift == 0) {
      dst[w] |= first;
    } else {
      dst[w] |= first << shift;
      if (w + 1 < dst.size()) dst[w + 1] |= first >> (64 - shift);
    }
  }
  if (traced)
    pcq::obs::record_span("pack.merge", merge_t0, pcq::obs::trace_now_ns(),
                          chunks);

  FixedWidthArray out(std::move(merged), n, width);
  // Contract: the chunked merge's boundary-word arithmetic (shift/spill of
  // each chunk's first word) is the riskiest part of Algorithm 4 — spot
  // check that the first and last elements of every chunk boundary decode
  // back to their inputs. O(chunks), not O(n).
#if !defined(NDEBUG) || PCQ_DEBUG_CHECKS
  for (std::size_t c = 0; c < chunks; ++c) {
    const auto r = pcq::par::chunk_range(n, chunks, c);
    PCQ_DCHECK_MSG(out.get(r.begin) == values[r.begin],
                   "pack merge corrupted a chunk's first element");
    PCQ_DCHECK_MSG(out.get(r.end - 1) == values[r.end - 1],
                   "pack merge corrupted a chunk's last element");
  }
#endif
  return out;
}

void FixedWidthArray::get_range(std::size_t begin, std::size_t count,
                                std::span<std::uint64_t> out) const {
  PCQ_CHECK(out.size() >= count);
  get_range_into(begin, count, out.data());
}

std::vector<std::uint64_t> FixedWidthArray::unpack(int num_threads) const {
  std::vector<std::uint64_t> out(size_);
  // Chunks decode disjoint element ranges; they may read (but never write)
  // a shared boundary word, so the kernel runs race-free in parallel.
  pcq::par::parallel_for_chunks(
      size_, num_threads, [&](std::size_t, pcq::par::ChunkRange r) {
        get_range_into(r.begin, r.size(), out.data() + r.begin);
      });
  return out;
}

}  // namespace pcq::bits
