// Fixed-width bit packing — the codec of the paper's reference [7]
// ("On Compressing Time-Evolving Networks", Gopal Krishna et al. 2021).
//
// Every integer in the array is stored in exactly `width` bits, where
// `width = bits_for(max value)`. Because the width is fixed, element i
// lives at bit offset i*width: random access needs no decoding of earlier
// elements, which is what makes the bit-packed CSR of Section III-A3
// queryable without decompression.
//
// `pack` follows Algorithm 4: the input is split into one chunk per
// processor, each chunk is packed into a private bit array, and the
// per-chunk arrays are merged into the final global bit array.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "bits/bitvector.hpp"
#include "bits/unpack.hpp"

namespace pcq::bits {

/// Overflow-checked size * width in bits. Header-supplied sizes can be
/// adversarial (anything near SIZE_MAX wraps a naive product and slips
/// past a `storage >= size * width` gate); refuse them outright.
inline std::size_t checked_packed_bits(std::size_t size, unsigned width) {
  PCQ_CHECK(width >= 1 && width <= 64);
  PCQ_CHECK_MSG(size <= std::numeric_limits<std::size_t>::max() / width,
                "packed size * width overflows");
  return size * width;
}

class FixedWidthArray {
 public:
  FixedWidthArray() = default;

  /// Packs `values` with the minimum width for its maximum element, using
  /// `num_threads` chunks (Algorithm 4).
  static FixedWidthArray pack(std::span<const std::uint64_t> values,
                              int num_threads);

  /// Packs with an explicit width; every value must fit in `width` bits.
  static FixedWidthArray pack_with_width(std::span<const std::uint64_t> values,
                                         unsigned width, int num_threads);

  /// Adopts already-packed storage (deserialization); storage must hold at
  /// least size * width bits (computed overflow-checked — a header-supplied
  /// size near SIZE_MAX must die here, not wrap past the gate).
  static FixedWidthArray from_bits(BitVector storage, std::size_t size,
                                   unsigned width) {
    PCQ_CHECK(storage.size() >= checked_packed_bits(size, width));
    return FixedWidthArray(std::move(storage), size, width);
  }

  /// Borrows already-packed storage the caller keeps alive (a mapped file
  /// payload): zero-copy construction over read-only words. Refuses (like
  /// from_bits, with overflow-checked arithmetic) a span shorter than
  /// size * width bits.
  static FixedWidthArray view(std::span<const std::uint64_t> storage,
                              std::size_t size, unsigned width) {
    const std::size_t nbits = checked_packed_bits(size, width);
    return FixedWidthArray(BitVector::view(storage, nbits), size, width);
  }

  /// Element count.
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Bits per element.
  [[nodiscard]] unsigned width() const { return width_; }

  /// Payload bytes (what the compression benchmarks report).
  [[nodiscard]] std::size_t size_bytes() const { return storage_.size_bytes(); }

  /// Random access decode of element i.
  [[nodiscard]] std::uint64_t get(std::size_t i) const {
    PCQ_DCHECK(i < size_);
    return storage_.read_bits(i * width_, width_);
  }
  std::uint64_t operator[](std::size_t i) const { return get(i); }

  /// Decodes elements [begin, begin+count) into `out`. This is the bulk
  /// row decode behind GetRowFromCSR: neighbours of one node are `count`
  /// consecutive packed values. Runs the word-streaming kernel: each
  /// storage word is loaded once, not once per element.
  void get_range(std::size_t begin, std::size_t count,
                 std::span<std::uint64_t> out) const;

  /// get_range decoding into any integer type wide enough for the stored
  /// values (packed graph columns decode straight into VertexId buffers).
  /// The range check is phrased subtraction-side: `begin + count` can wrap
  /// for hostile (attacker-derived) arguments and slip past a naive gate.
  template <typename OutT>
  void get_range_into(std::size_t begin, std::size_t count, OutT* out) const {
    PCQ_CHECK(begin <= size_ && count <= size_ - begin);
    unpack_words(storage_.words().data(), begin * width_, width_, count, out);
  }

  /// Streaming decoder over [begin, begin+count) — no scratch buffer.
  /// Overflow-safe range gate, as in get_range_into.
  [[nodiscard]] RowCursor cursor(std::size_t begin, std::size_t count) const {
    PCQ_CHECK(begin <= size_ && count <= size_ - begin);
    return RowCursor(storage_.words().data(), begin * width_, width_, count);
  }

  /// Decodes the whole array; chunks the kernel across `num_threads`.
  [[nodiscard]] std::vector<std::uint64_t> unpack(int num_threads = 1) const;

  /// Underlying bit storage (exposed for the query algorithms, which the
  /// paper phrases in terms of "an array of unsigned bits A").
  [[nodiscard]] const BitVector& bits() const { return storage_; }

  friend bool operator==(const FixedWidthArray& a, const FixedWidthArray& b) {
    return a.size_ == b.size_ && a.width_ == b.width_ && a.storage_ == b.storage_;
  }

 private:
  FixedWidthArray(BitVector storage, std::size_t size, unsigned width)
      : storage_(std::move(storage)), size_(size), width_(width) {}

  BitVector storage_;
  std::size_t size_ = 0;
  unsigned width_ = 1;
};

}  // namespace pcq::bits
