#include "bits/bitvector.hpp"

#include <bit>

namespace pcq::bits {

void BitVector::append_bits(std::uint64_t value, unsigned width) {
  PCQ_DCHECK(width <= 64);
  PCQ_DCHECK_MSG(owns_, "cannot mutate a borrowed BitVector view");
  if (width == 0) return;
  if (width < 64) value &= (1ULL << width) - 1;

  const unsigned offset = nbits_ & 63;
  if (offset == 0) words_.push_back(0);
  words_[nbits_ >> 6] |= value << offset;
  const unsigned room = 64 - offset;
  if (width > room) words_.push_back(value >> room);
  nbits_ += width;
  sync();
}

std::uint64_t BitVector::read_bits(std::size_t pos, unsigned width) const {
  PCQ_DCHECK(width <= 64);
  if (width == 0) return 0;
  PCQ_DCHECK(pos + width <= nbits_);

  const std::size_t word = pos >> 6;
  const unsigned offset = pos & 63;
  std::uint64_t value = data_[word] >> offset;
  const unsigned room = 64 - offset;
  if (width > room) value |= data_[word + 1] << room;
  if (width < 64) value &= (1ULL << width) - 1;
  return value;
}

void BitVector::append(const BitVector& other) {
  PCQ_DCHECK_MSG(owns_, "cannot mutate a borrowed BitVector view");
  // Fast path: this vector is word-aligned, so whole words can be copied.
  if ((nbits_ & 63) == 0) {
    const auto src = other.words();
    words_.insert(words_.end(), src.begin(), src.end());
    nbits_ += other.nbits_;
    sync();
    return;
  }
  std::size_t remaining = other.nbits_;
  std::size_t pos = 0;
  while (remaining > 0) {
    const unsigned take = remaining >= 64 ? 64 : static_cast<unsigned>(remaining);
    append_bits(other.read_bits(pos, take), take);
    pos += take;
    remaining -= take;
  }
}

std::size_t BitVector::popcount() const {
  std::size_t total = 0;
  for (std::uint64_t w : words()) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool operator==(const BitVector& a, const BitVector& b) {
  if (a.nbits_ != b.nbits_) return false;
  const std::size_t full = a.nbits_ >> 6;
  for (std::size_t i = 0; i < full; ++i)
    if (a.data_[i] != b.data_[i]) return false;
  const unsigned tail = a.nbits_ & 63;
  if (tail != 0) {
    const std::uint64_t mask = (1ULL << tail) - 1;
    if ((a.data_[full] & mask) != (b.data_[full] & mask)) return false;
  }
  return true;
}

}  // namespace pcq::bits
