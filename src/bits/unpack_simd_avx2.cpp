// AVX2 batched fixed-width unpack: widths 1-32 into uint32_t lanes.
//
// Compiled with -mavx2 into its own TU; reachable only through the cpuid
// dispatch in simd_dispatch.cpp. The kernel decodes 8 values per loop
// iteration from precomputed per-(width, bit_begin & 7) shuffle/shift
// tables:
//
//   * widths 1-25: each value lies in 4 consecutive bytes after a shift of
//     at most 7 (width + 7 <= 32). Two 16-byte loads per block (values 0-3
//     from the block base, values 4-7 from base + hi_off) feed one in-lane
//     vpshufb that places each lane's 4 source bytes, one vpsrlvd by the
//     per-lane sub-byte shift, and one mask.
//   * widths 26-32: width + 7 can exceed 32 bits, so values decode in
//     64-bit lanes (8 source bytes, shift, mask, then narrow the four
//     lane-lows to uint32_t) — two 4-value halves per 8-value block.
//
// The block geometry is what makes the tables loop-invariant: a block is
// 8 values = 8*width bits = exactly `width` bytes, so the sub-byte phase
// (bit_begin & 7) — and with it every shuffle control and shift vector —
// repeats for the whole call, and the source pointer just advances by
// `width` bytes per block.
//
// Bounds contract: every load stays inside the 64-bit words spanned by the
// payload [bit_begin, bit_begin + count*width). Blocks run only while the
// widest load window fits under that ceiling; remaining values fall back
// to the scalar kernel (compiled here with AVX2 codegen — this TU only
// executes on AVX2 hosts).
#include <immintrin.h>

#include <array>
#include <cstddef>
#include <cstdint>

#include "bits/simd_dispatch.hpp"
#include "bits/unpack.hpp"

namespace pcq::bits::simd {
namespace {

/// Control block for one (width, phase) cell of the 32-bit-lane kernel
/// (widths 1-25): vpshufb byte selectors, vpsrlvd shift counts, and the
/// load geometry.
struct Ctl32 {
  alignas(32) std::uint8_t shuf[32] = {};
  alignas(32) std::uint32_t shift[8] = {};
  std::uint8_t hi_off = 0;  ///< byte offset of the second 16-byte load
  std::uint8_t span = 0;    ///< bytes read from the block base (hi_off + 16)
};

constexpr Ctl32 make_ctl32(unsigned w, unsigned o) {
  Ctl32 c{};
  c.hi_off = static_cast<std::uint8_t>((o + 4 * w) >> 3);
  c.span = static_cast<std::uint8_t>(c.hi_off + 16);
  for (unsigned i = 0; i < 8; ++i) {
    const unsigned bit = o + i * w;
    // Lanes 0-3 select from the low 16 loaded bytes, lanes 4-7 from the 16
    // bytes loaded at hi_off; vpshufb indexes within each 128-bit half.
    const unsigned rel =
        i < 4 ? bit : bit - 8u * static_cast<unsigned>(c.hi_off);
    const unsigned byte = rel >> 3;
    for (unsigned j = 0; j < 4; ++j)
      c.shuf[i * 4 + j] = static_cast<std::uint8_t>(byte + j);
    c.shift[i] = bit & 7;
  }
  return c;
}

/// Control block for one (width, phase) cell of the 64-bit-lane kernel
/// (widths 26-32). An 8-value block is two 4-value halves; each half takes
/// two 16-byte loads and its own shuffle/shift controls.
struct Ctl64 {
  alignas(32) std::uint8_t shuf[2][32] = {};
  alignas(32) std::uint64_t shift[2][4] = {};
  std::uint8_t a0[2] = {};  ///< byte offset of each half's low load
  std::uint8_t a1[2] = {};  ///< byte offset of each half's high load
  std::uint8_t span = 0;    ///< bytes read from the block base
};

constexpr Ctl64 make_ctl64(unsigned w, unsigned o) {
  Ctl64 c{};
  for (unsigned h = 0; h < 2; ++h) {
    const unsigned start = o + 4 * w * h;
    c.a0[h] = static_cast<std::uint8_t>(start >> 3);
    c.a1[h] = static_cast<std::uint8_t>((start + 2 * w) >> 3);
    for (unsigned i = 0; i < 4; ++i) {
      const unsigned bit = start + i * w;
      const unsigned base = 8u * static_cast<unsigned>(i < 2 ? c.a0[h] : c.a1[h]);
      const unsigned byte = (bit - base) >> 3;
      for (unsigned j = 0; j < 8; ++j)
        c.shuf[h][i * 8 + j] = static_cast<std::uint8_t>(byte + j);
      c.shift[h][i] = bit & 7;
    }
  }
  c.span = static_cast<std::uint8_t>(c.a1[1] + 16);
  return c;
}

constexpr auto kCtl32 = [] {
  std::array<std::array<Ctl32, 8>, 26> t{};
  for (unsigned w = 1; w <= 25; ++w)
    for (unsigned o = 0; o < 8; ++o) t[w][o] = make_ctl32(w, o);
  return t;
}();

constexpr auto kCtl64 = [] {
  std::array<std::array<Ctl64, 8>, 33> t{};
  for (unsigned w = 26; w <= 32; ++w)
    for (unsigned o = 0; o < 8; ++o) t[w][o] = make_ctl64(w, o);
  return t;
}();

/// Number of full 8-value blocks whose widest load (span bytes from the
/// block base p0 + k*width) stays inside the safe byte ceiling.
inline std::size_t full_blocks(std::size_t count, std::size_t p0,
                               unsigned width, unsigned span,
                               std::size_t safe_bytes) {
  if (safe_bytes < p0 + span) return 0;
  const std::size_t by_bounds = (safe_bytes - span - p0) / width + 1;
  const std::size_t by_count = count / 8;
  return by_bounds < by_count ? by_bounds : by_count;
}

}  // namespace

namespace detail {

void unpack32_avx2(const std::uint64_t* words, std::size_t bit_begin,
                   unsigned width, std::size_t count,
                   std::uint32_t* out) noexcept {
  if (count < 16) {
    pcq::bits::detail::unpack_words_scalar(words, bit_begin, width, count, out);
    return;
  }
  const auto* bytes = reinterpret_cast<const unsigned char*>(words);
  const std::size_t end_bits = bit_begin + count * width;
  const std::size_t safe_bytes = ((end_bits + 63) >> 6) << 3;
  const std::size_t p0 = bit_begin >> 3;
  const unsigned o = static_cast<unsigned>(bit_begin & 7);

  std::size_t blocks = 0;
  if (width <= 25) {
    const Ctl32& c = kCtl32[width][o];
    blocks = full_blocks(count, p0, width, c.span, safe_bytes);
    const __m256i shuf =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(c.shuf));
    const __m256i shift =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(c.shift));
    const __m256i mask = _mm256_set1_epi32(
        static_cast<int>((std::uint32_t{1} << width) - 1));
    const unsigned char* p = bytes + p0;
    for (std::size_t k = 0; k < blocks; ++k, p += width) {
      const __m128i lo =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
      const __m128i hi =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + c.hi_off));
      __m256i v = _mm256_set_m128i(hi, lo);
      v = _mm256_shuffle_epi8(v, shuf);
      v = _mm256_srlv_epi32(v, shift);
      v = _mm256_and_si256(v, mask);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k * 8), v);
    }
  } else {
    const Ctl64& c = kCtl64[width][o];
    blocks = full_blocks(count, p0, width, c.span, safe_bytes);
    const __m256i shuf0 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(c.shuf[0]));
    const __m256i shuf1 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(c.shuf[1]));
    const __m256i shift0 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(c.shift[0]));
    const __m256i shift1 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(c.shift[1]));
    const __m256i mask = _mm256_set1_epi64x(
        static_cast<long long>((std::uint64_t{1} << width) - 1));
    const __m256i pick_lows = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
    const unsigned char* p = bytes + p0;
    for (std::size_t k = 0; k < blocks; ++k, p += width) {
      for (unsigned h = 0; h < 2; ++h) {
        const __m128i lo = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(p + c.a0[h]));
        const __m128i hi = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(p + c.a1[h]));
        __m256i v = _mm256_set_m128i(hi, lo);
        v = _mm256_shuffle_epi8(v, h == 0 ? shuf0 : shuf1);
        v = _mm256_srlv_epi64(v, h == 0 ? shift0 : shift1);
        v = _mm256_and_si256(v, mask);
        v = _mm256_permutevar8x32_epi32(v, pick_lows);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k * 8 + h * 4),
                         _mm256_castsi256_si128(v));
      }
    }
  }

  const std::size_t done = blocks * 8;
  if (done < count)
    pcq::bits::detail::unpack_words_scalar(words, bit_begin + done * width,
                                           width, count - done, out + done);
}

}  // namespace detail
}  // namespace pcq::bits::simd
