// AVX-512 batched fixed-width unpack: widths 1-32 into uint32_t lanes.
//
// Compiled with -mavx512f/bw/vl/vbmi into its own TU; reachable only
// through the cpuid dispatch in simd_dispatch.cpp (which demands all four
// feature bits — the byte permute below is VBMI).
//
// Same table discipline as the AVX2 kernel (see unpack_simd_avx2.cpp), but
// the full-register byte permute (vpermb) removes the in-lane shuffle
// restriction: one 64-byte load covers a whole block, and a single
// permute places every lane's source bytes.
//
//   * widths 1-25: 16 values per block. Lane 15's last source byte sits at
//     byte (7 + 15*25)/8 + 3 = 50 < 64, so one 64-byte load at the block
//     base feeds vpermb + vpsrlvd + mask. A block is 16*width bits =
//     2*width bytes, a multiple of 8 bits, so the sub-byte phase — and the
//     permute/shift controls — are loop-invariant.
//   * widths 26-32: 8 values per block in 64-bit lanes (8 source bytes,
//     max byte (7 + 7*32)/8 + 7 = 35 < 64), narrowed to uint32_t with
//     vpmovqd. A block is 8*width bits = width bytes.
//
// Bounds contract: identical to every other variant — no load past the
// 64-bit word holding the last payload bit. The 64-byte window makes the
// vector loop stop earlier than AVX2's 16-byte windows; the tail falls
// back to the scalar kernel.
#include <immintrin.h>

#include <array>
#include <cstddef>
#include <cstdint>

#include "bits/simd_dispatch.hpp"
#include "bits/unpack.hpp"

namespace pcq::bits::simd {
namespace {

/// Control block for one (width, phase) cell of the 32-bit-lane kernel
/// (widths 1-25): vpermb byte selectors and vpsrlvd shift counts.
struct Ctl32z {
  alignas(64) std::uint8_t perm[64] = {};
  alignas(64) std::uint32_t shift[16] = {};
};

constexpr Ctl32z make_ctl32z(unsigned w, unsigned o) {
  Ctl32z c{};
  for (unsigned i = 0; i < 16; ++i) {
    const unsigned bit = o + i * w;
    const unsigned byte = bit >> 3;
    for (unsigned j = 0; j < 4; ++j)
      c.perm[i * 4 + j] = static_cast<std::uint8_t>(byte + j);
    c.shift[i] = bit & 7;
  }
  return c;
}

/// Control block for the 64-bit-lane kernel (widths 26-32).
struct Ctl64z {
  alignas(64) std::uint8_t perm[64] = {};
  alignas(64) std::uint64_t shift[8] = {};
};

constexpr Ctl64z make_ctl64z(unsigned w, unsigned o) {
  Ctl64z c{};
  for (unsigned i = 0; i < 8; ++i) {
    const unsigned bit = o + i * w;
    const unsigned byte = bit >> 3;
    for (unsigned j = 0; j < 8; ++j)
      c.perm[i * 8 + j] = static_cast<std::uint8_t>(byte + j);
    c.shift[i] = bit & 7;
  }
  return c;
}

constexpr auto kCtl32z = [] {
  std::array<std::array<Ctl32z, 8>, 26> t{};
  for (unsigned w = 1; w <= 25; ++w)
    for (unsigned o = 0; o < 8; ++o) t[w][o] = make_ctl32z(w, o);
  return t;
}();

constexpr auto kCtl64z = [] {
  std::array<std::array<Ctl64z, 8>, 33> t{};
  for (unsigned w = 26; w <= 32; ++w)
    for (unsigned o = 0; o < 8; ++o) t[w][o] = make_ctl64z(w, o);
  return t;
}();

/// Full blocks of `per_block` values whose 64-byte load window stays under
/// the safe byte ceiling; the block base advances `stride` bytes per block.
inline std::size_t full_blocks(std::size_t count, unsigned per_block,
                               std::size_t p0, unsigned stride,
                               std::size_t safe_bytes) {
  if (safe_bytes < p0 + 64) return 0;
  const std::size_t by_bounds = (safe_bytes - 64 - p0) / stride + 1;
  const std::size_t by_count = count / per_block;
  return by_bounds < by_count ? by_bounds : by_count;
}

}  // namespace

namespace detail {

void unpack32_avx512(const std::uint64_t* words, std::size_t bit_begin,
                     unsigned width, std::size_t count,
                     std::uint32_t* out) noexcept {
  if (count < 32) {
    pcq::bits::detail::unpack_words_scalar(words, bit_begin, width, count, out);
    return;
  }
  const auto* bytes = reinterpret_cast<const unsigned char*>(words);
  const std::size_t end_bits = bit_begin + count * width;
  const std::size_t safe_bytes = ((end_bits + 63) >> 6) << 3;
  const std::size_t p0 = bit_begin >> 3;
  const unsigned o = static_cast<unsigned>(bit_begin & 7);

  std::size_t done = 0;
  if (width <= 25) {
    const Ctl32z& c = kCtl32z[width][o];
    const std::size_t blocks =
        full_blocks(count, 16, p0, 2 * width, safe_bytes);
    const __m512i perm = _mm512_load_si512(c.perm);
    const __m512i shift = _mm512_load_si512(c.shift);
    const __m512i mask = _mm512_set1_epi32(
        static_cast<int>((std::uint32_t{1} << width) - 1));
    const unsigned char* p = bytes + p0;
    for (std::size_t k = 0; k < blocks; ++k, p += 2 * width) {
      __m512i v = _mm512_loadu_si512(p);
      v = _mm512_permutexvar_epi8(perm, v);
      v = _mm512_srlv_epi32(v, shift);
      v = _mm512_and_si512(v, mask);
      _mm512_storeu_si512(out + k * 16, v);
    }
    done = blocks * 16;
  } else {
    const Ctl64z& c = kCtl64z[width][o];
    const std::size_t blocks = full_blocks(count, 8, p0, width, safe_bytes);
    const __m512i perm = _mm512_load_si512(c.perm);
    const __m512i shift = _mm512_load_si512(c.shift);
    const __m512i mask = _mm512_set1_epi64(
        static_cast<long long>((std::uint64_t{1} << width) - 1));
    const unsigned char* p = bytes + p0;
    for (std::size_t k = 0; k < blocks; ++k, p += width) {
      __m512i v = _mm512_loadu_si512(p);
      v = _mm512_permutexvar_epi8(perm, v);
      v = _mm512_srlv_epi64(v, shift);
      v = _mm512_and_si512(v, mask);
      // maskz variant: the plain cvt leaves its passthrough operand
      // formally uninitialised, which -Wmaybe-uninitialized flags.
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + k * 8),
          _mm512_maskz_cvtepi64_epi32(static_cast<__mmask8>(0xff), v));
    }
    done = blocks * 8;
  }

  if (done < count)
    pcq::bits::detail::unpack_words_scalar(words, bit_begin + done * width,
                                           width, count - done, out + done);
}

}  // namespace detail
}  // namespace pcq::bits::simd
