#include "bits/wavelet_tree.hpp"

#include <algorithm>

#include "util/check.hpp"

// Implementation note: this is the pointerless "wavelet matrix" layout
// (Claude & Navarro): each level is one global stable partition on one
// symbol bit (MSB first), zeros before ones, with zeros_[l] recording the
// split point. All node intervals stay contiguous under this mapping, and
// every query is O(levels) rank operations.

namespace pcq::bits {

WaveletTree WaveletTree::build(std::span<const std::uint32_t> values,
                               std::uint32_t alphabet_size) {
  WaveletTree wt;
  wt.size_ = values.size();
  std::uint32_t max_value = 0;
  for (std::uint32_t v : values) max_value = std::max(max_value, v);
  wt.sigma_ = alphabet_size == 0 ? max_value + 1 : alphabet_size;
  PCQ_CHECK_MSG(alphabet_size == 0 || max_value < wt.sigma_,
                "symbol exceeds alphabet size");

  const unsigned num_levels = bits_for(wt.sigma_ == 0 ? 0 : wt.sigma_ - 1);
  wt.levels_.reserve(num_levels);
  wt.zeros_.reserve(num_levels);

  std::vector<std::uint32_t> cur(values.begin(), values.end());
  std::vector<std::uint32_t> next(cur.size());
  for (unsigned level = 0; level < num_levels; ++level) {
    const unsigned shift = num_levels - 1 - level;
    BitVector bits(cur.size());
    std::size_t zeros = 0;
    for (std::size_t i = 0; i < cur.size(); ++i) {
      const bool bit = (cur[i] >> shift) & 1u;
      if (bit)
        bits.set(i, true);
      else
        ++zeros;
    }
    // Stable partition: zeros keep relative order on the left, ones on
    // the right.
    std::size_t z = 0, o = zeros;
    for (std::size_t i = 0; i < cur.size(); ++i) {
      if ((cur[i] >> shift) & 1u)
        next[o++] = cur[i];
      else
        next[z++] = cur[i];
    }
    cur.swap(next);
    wt.zeros_.push_back(zeros);
    wt.levels_.emplace_back(std::move(bits));
  }
  return wt;
}

std::uint32_t WaveletTree::access(std::size_t i) const {
  PCQ_DCHECK(i < size_);
  std::uint32_t symbol = 0;
  for (std::size_t level = 0; level < levels_.size(); ++level) {
    const RankBitVector& bits = levels_[level];
    const bool bit = bits.get(i);
    symbol = (symbol << 1) | (bit ? 1u : 0u);
    i = bit ? zeros_[level] + bits.rank1(i) : bits.rank0(i);
  }
  return symbol;
}

std::size_t WaveletTree::rank(std::uint32_t symbol, std::size_t i) const {
  PCQ_DCHECK(i <= size_);
  if (symbol >= sigma_) return 0;
  std::size_t p = 0;  // start of the current node's interval
  for (std::size_t level = 0; level < levels_.size(); ++level) {
    const RankBitVector& bits = levels_[level];
    const unsigned shift =
        static_cast<unsigned>(levels_.size() - 1 - level);
    if ((symbol >> shift) & 1u) {
      p = zeros_[level] + bits.rank1(p);
      i = zeros_[level] + bits.rank1(i);
    } else {
      p = bits.rank0(p);
      i = bits.rank0(i);
    }
  }
  return i - p;
}

void WaveletTree::enumerate(
    unsigned level, std::size_t lo, std::size_t hi, std::uint32_t prefix,
    const std::function<void(std::uint32_t, std::size_t)>& fn) const {
  if (lo >= hi) return;
  if (level == levels_.size()) {
    fn(prefix, hi - lo);
    return;
  }
  const RankBitVector& bits = levels_[level];
  const std::size_t lo0 = bits.rank0(lo);
  const std::size_t hi0 = bits.rank0(hi);
  enumerate(level + 1, lo0, hi0, prefix << 1, fn);
  const std::size_t lo1 = zeros_[level] + (lo - lo0);  // rank1 = i - rank0
  const std::size_t hi1 = zeros_[level] + (hi - hi0);
  enumerate(level + 1, lo1, hi1, (prefix << 1) | 1u, fn);
}

void WaveletTree::for_each_distinct(
    std::size_t lo, std::size_t hi,
    const std::function<void(std::uint32_t, std::size_t)>& fn) const {
  PCQ_DCHECK(lo <= hi && hi <= size_);
  enumerate(0, lo, hi, 0, fn);
}

std::size_t WaveletTree::size_bytes() const {
  std::size_t bytes = zeros_.size() * sizeof(std::size_t);
  for (const auto& level : levels_) bytes += level.size_bytes();
  return bytes;
}

}  // namespace pcq::bits
