// Variable-length integer codecs: LEB128 varints, Elias gamma/delta, and
// gap encoding of sorted sequences.
//
// The paper's own structures use fixed-width packing (packed_array.hpp);
// these codecs implement the encodings of the related-work baselines —
// EveLog/EdgeLog compress time-frame logs with gap encoding (§II) — and
// give the compression benchmark a spectrum of size/speed trade-offs.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "bits/bitvector.hpp"

namespace pcq::bits {

/// Thrown by every decoder in this header on truncated or malformed input
/// (a unary prefix running past the end of the stream, a length field that
/// would shift past 64 bits, a varint continuing past 10 bytes). Decoders
/// never read out of bounds and never abort on bad bytes: callers feeding
/// untrusted payloads catch this the same way loaders catch pcq::IoError.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

// --- LEB128 varint (byte-aligned) -----------------------------------------

/// Appends `value` to `out` as a little-endian base-128 varint (1-10 bytes).
void varint_encode(std::uint64_t value, std::vector<std::uint8_t>& out);

/// Decodes one varint starting at out[pos]; advances pos past it. Throws
/// CodecError on a truncated or over-long (> 64-bit) varint.
std::uint64_t varint_decode(std::span<const std::uint8_t> in, std::size_t& pos);

// --- Elias gamma / delta (bit-aligned, for values >= 1) --------------------

/// Gamma: unary length prefix + binary remainder; ~2*log2(v)+1 bits.
void elias_gamma_encode(std::uint64_t value, BitVector& out);
std::uint64_t elias_gamma_decode(const BitVector& in, std::size_t& pos);

/// Delta: gamma-coded length + binary remainder; ~log2(v)+2*log2(log2(v))
/// bits — smaller than gamma for large values.
void elias_delta_encode(std::uint64_t value, BitVector& out);
std::uint64_t elias_delta_decode(const BitVector& in, std::size_t& pos);

// --- Minimal binary + zeta codes (WebGraph, Boldi & Vigna — ref [2]) --------

/// Minimal binary code of x in [0, n), n >= 1: the optimal fixed-interval
/// code (short codewords of ceil(log2 n) - 1 bits for the first values
/// when n is not a power of two).
void minimal_binary_encode(std::uint64_t x, std::uint64_t n, BitVector& out);
std::uint64_t minimal_binary_decode(const BitVector& in, std::size_t& pos,
                                    std::uint64_t n);

/// Zeta_k code (value >= 1): unary-coded h with 2^(hk) <= value <
/// 2^((h+1)k), then the offset in minimal binary. Tuned for the power-law
/// gap distributions of web/social graphs; k = 3 is WebGraph's default.
void zeta_encode(std::uint64_t value, unsigned k, BitVector& out);
std::uint64_t zeta_decode(const BitVector& in, std::size_t& pos, unsigned k);

// --- Gap encoding of sorted sequences --------------------------------------

enum class GapCodec { kVarint, kGamma, kDelta };

/// A strictly/weakly increasing sequence stored as first value + gaps.
/// This is how EveLog compresses per-vertex time-frame lists.
class GapEncodedSequence {
 public:
  GapEncodedSequence() = default;

  /// `values` must be non-decreasing.
  static GapEncodedSequence encode(std::span<const std::uint64_t> values,
                                   GapCodec codec = GapCodec::kDelta);

  [[nodiscard]] std::vector<std::uint64_t> decode() const;

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t size_bytes() const;

 private:
  GapCodec codec_ = GapCodec::kDelta;
  std::size_t count_ = 0;
  std::vector<std::uint8_t> bytes_;  // varint payload
  BitVector bits_;                   // gamma/delta payload
};

}  // namespace pcq::bits
