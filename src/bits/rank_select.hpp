// Bit vector with O(1) rank and O(log n) select.
//
// rank1(i) = number of set bits in [0, i) — the navigation primitive of
// every succinct tree structure; the k²-tree (§II, Brisaboa et al. [18])
// locates a node's children at position rank1(node_index) * k². Block
// counts are absolute per 512-bit superblock with 64-bit words popcounted
// on the fly: 12.5% space overhead, one cache line per query.
#pragma once

#include <cstdint>
#include <vector>

#include "bits/bitvector.hpp"

namespace pcq::bits {

class RankBitVector {
 public:
  RankBitVector() = default;

  /// Takes ownership of `bits` and builds the rank directory.
  explicit RankBitVector(BitVector bits);

  [[nodiscard]] std::size_t size() const { return bits_.size(); }
  [[nodiscard]] bool get(std::size_t i) const { return bits_.get(i); }

  /// Number of 1-bits in [0, i). rank1(size()) == total ones.
  [[nodiscard]] std::size_t rank1(std::size_t i) const;

  /// Number of 0-bits in [0, i).
  [[nodiscard]] std::size_t rank0(std::size_t i) const { return i - rank1(i); }

  /// Position of the (j+1)-th set bit (j is 0-based); j < ones().
  [[nodiscard]] std::size_t select1(std::size_t j) const;

  /// Total set bits.
  [[nodiscard]] std::size_t ones() const { return total_ones_; }

  [[nodiscard]] const BitVector& bits() const { return bits_; }

  /// Payload + directory bytes.
  [[nodiscard]] std::size_t size_bytes() const {
    return bits_.size_bytes() + blocks_.size() * sizeof(std::uint64_t);
  }

 private:
  static constexpr std::size_t kBlockBits = 512;  // 8 words per superblock

  BitVector bits_;
  std::vector<std::uint64_t> blocks_;  ///< ones before each superblock
  std::size_t total_ones_ = 0;
};

}  // namespace pcq::bits
