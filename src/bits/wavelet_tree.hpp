// Wavelet tree over an integer sequence.
//
// §II: the CAS/CET temporal indexes of Caro et al. "add a Wavelet Tree
// data structure to allow for logarithmic time queries" over event logs.
// This is that structure: a balanced binary decomposition of the alphabet,
// one rank-indexed bitmap per level, supporting in O(log σ):
//
//   * access(i)          — the i-th symbol,
//   * rank(symbol, i)    — occurrences of symbol in [0, i),
//   * count(lo, hi, sym) — occurrences in [lo, hi),
//
// plus an output-sensitive enumeration of the distinct symbols in a range
// with their counts (the primitive behind neighbors-at-time queries).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "bits/rank_select.hpp"

namespace pcq::bits {

class WaveletTree {
 public:
  WaveletTree() = default;

  /// Builds over `values`; symbols must be < alphabet_size.
  /// alphabet_size == 0 derives it from the maximum value + 1.
  static WaveletTree build(std::span<const std::uint32_t> values,
                           std::uint32_t alphabet_size = 0);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::uint32_t alphabet_size() const { return sigma_; }
  [[nodiscard]] unsigned levels() const {
    return static_cast<unsigned>(levels_.size());
  }

  /// The i-th symbol of the original sequence.
  [[nodiscard]] std::uint32_t access(std::size_t i) const;

  /// Occurrences of `symbol` in the prefix [0, i).
  [[nodiscard]] std::size_t rank(std::uint32_t symbol, std::size_t i) const;

  /// Occurrences of `symbol` in [lo, hi).
  [[nodiscard]] std::size_t count(std::size_t lo, std::size_t hi,
                                  std::uint32_t symbol) const {
    return rank(symbol, hi) - rank(symbol, lo);
  }

  /// Calls fn(symbol, count) once per distinct symbol in [lo, hi), in
  /// ascending symbol order. O(distinct * log σ).
  void for_each_distinct(
      std::size_t lo, std::size_t hi,
      const std::function<void(std::uint32_t, std::size_t)>& fn) const;

  /// Bitmap + rank-directory bytes across all levels.
  [[nodiscard]] std::size_t size_bytes() const;

 private:
  void enumerate(unsigned level, std::size_t lo, std::size_t hi,
                 std::uint32_t prefix,
                 const std::function<void(std::uint32_t, std::size_t)>& fn) const;

  std::size_t size_ = 0;
  std::uint32_t sigma_ = 1;
  /// levels_[0] partitions on the symbol's top bit; node boundaries are
  /// implicit (every level is a stable partition of the previous one).
  std::vector<RankBitVector> levels_;
  /// zeros_[l]: total 0-bits at level l (the size of the left half of the
  /// next level's layout).
  std::vector<std::size_t> zeros_;
};

}  // namespace pcq::bits
