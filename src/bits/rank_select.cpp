#include "bits/rank_select.hpp"

#include <bit>

#include "util/check.hpp"

namespace pcq::bits {

RankBitVector::RankBitVector(BitVector bits) : bits_(std::move(bits)) {
  const auto words = bits_.words();
  const std::size_t num_blocks = (bits_.size() + kBlockBits - 1) / kBlockBits;
  blocks_.resize(num_blocks + 1, 0);
  std::uint64_t running = 0;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    blocks_[b] = running;
    const std::size_t first_word = b * (kBlockBits / 64);
    const std::size_t last_word =
        std::min(first_word + kBlockBits / 64, words.size());
    for (std::size_t w = first_word; w < last_word; ++w)
      running += static_cast<std::uint64_t>(std::popcount(words[w]));
  }
  blocks_[num_blocks] = running;
  total_ones_ = running;
}

std::size_t RankBitVector::rank1(std::size_t i) const {
  PCQ_DCHECK(i <= bits_.size());
  const std::size_t block = i / kBlockBits;
  std::uint64_t count = blocks_[block];
  const auto words = bits_.words();
  const std::size_t first_word = block * (kBlockBits / 64);
  const std::size_t word = i / 64;
  for (std::size_t w = first_word; w < word; ++w)
    count += static_cast<std::uint64_t>(std::popcount(words[w]));
  const unsigned offset = i & 63;
  if (offset != 0)
    count += static_cast<std::uint64_t>(
        std::popcount(words[word] & ((std::uint64_t{1} << offset) - 1)));
  return static_cast<std::size_t>(count);
}

std::size_t RankBitVector::select1(std::size_t j) const {
  PCQ_CHECK_MSG(j < total_ones_, "select1 out of range");
  // Binary search over superblocks, then linear within.
  std::size_t lo = 0, hi = blocks_.size() - 1;
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (blocks_[mid] <= j)
      lo = mid;
    else
      hi = mid;
  }
  std::uint64_t remaining = j - blocks_[lo];
  const auto words = bits_.words();
  for (std::size_t w = lo * (kBlockBits / 64); w < words.size(); ++w) {
    const auto pop = static_cast<std::uint64_t>(std::popcount(words[w]));
    if (remaining < pop) {
      // Find the (remaining+1)-th set bit in this word.
      std::uint64_t word = words[w];
      for (std::uint64_t r = 0; r < remaining; ++r) word &= word - 1;
      return w * 64 +
             static_cast<std::size_t>(std::countr_zero(word));
    }
    remaining -= pop;
  }
  PCQ_CHECK_MSG(false, "select1 internal inconsistency");
  __builtin_unreachable();
}

}  // namespace pcq::bits
