// Runtime ISA dispatch for the batched fixed-width unpack kernels.
//
// One binary serves every micro-architecture: the ISA-specific kernels
// (src/bits/unpack_simd_avx2.cpp, unpack_simd_avx512.cpp) are compiled into
// their own translation units with that ISA's flags only, and are reached
// exclusively through a cpuid-probed function pointer resolved on first
// use — never statically, so the baseline build runs on any x86-64 (and the
// scalar kernel on any architecture at all).
//
// Dispatch contract (see docs/SIMD.md):
//   * Every variant decodes `count` consecutive `width`-bit values
//     (1 <= width <= 32) starting at bit `bit_begin` of the LSB-first
//     packed `words` into uint32_t lanes, bit-for-bit identical to the
//     scalar reference for every (width, offset, count) — proven by the
//     conformance grid in tests/test_unpack_simd.cpp.
//   * No variant reads past the 64-bit word containing the last payload
//     bit (bit_begin + count*width - 1). A buffer sized exactly to the
//     packed payload is safe storage for every variant.
//   * Resolution order: PCQ_FORCE_SCALAR env (any value but "" / "0")
//     forces scalar; else PCQ_UNPACK_ISA env ("scalar" | "avx2" |
//     "avx512") picks a tier when available (warning + best tier
//     otherwise); else the best compiled-in tier the CPU supports.
//   * set_isa() overrides programmatically (tests, bench --isa sweeps).
//     It is not meant for concurrent use with in-flight decodes: variants
//     agree bit-for-bit so racing decodes stay correct, but which variant
//     a racing call uses is unspecified.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace pcq::bits::simd {

/// Dispatch tiers, ordered by preference.
enum class Isa : unsigned char { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Batched unpack into uint32_t lanes; valid for width in [1, 32].
using UnpackFn32 = void (*)(const std::uint64_t* words, std::size_t bit_begin,
                            unsigned width, std::size_t count,
                            std::uint32_t* out);

/// Stable lower-case name ("scalar" / "avx2" / "avx512").
const char* isa_name(Isa isa) noexcept;

/// Parses an isa_name back into the enum; false on unknown names.
bool parse_isa(const char* name, Isa* out) noexcept;

/// True when the variant's translation unit is linked into this binary
/// (scalar always; AVX tiers depend on compiler support at build time).
bool variant_compiled(Isa isa) noexcept;

/// True when the host CPU can execute the variant (cpuid probe; scalar
/// always). Independent of whether it was compiled in.
bool cpu_supports(Isa isa) noexcept;

/// True when the variant can actually run here: compiled in and supported.
inline bool variant_available(Isa isa) noexcept {
  return variant_compiled(isa) && cpu_supports(isa);
}

/// The variant's kernel entry point, or nullptr when not compiled in.
/// Callers probing variants directly (conformance tests, benchmarks) must
/// also check cpu_supports before invoking a non-null pointer.
UnpackFn32 variant_fn(Isa isa) noexcept;

/// The tier the dispatcher currently routes to (resolving it first if this
/// is the first query).
Isa active_isa() noexcept;

/// Overrides the dispatched tier; returns false (and leaves the dispatch
/// unchanged) when the tier is not available on this build/host.
bool set_isa(Isa isa) noexcept;

namespace detail {

// The resolved kernel pointer. nullptr until first use; the resolver is
// idempotent (every racer computes the same answer), so a relaxed
// load/store pair is sufficient — there is no dependent data to order.
extern std::atomic<UnpackFn32> g_unpack32;

UnpackFn32 resolve_unpack32() noexcept;

// Kernel entry points. The scalar variant is always defined
// (simd_dispatch.cpp); the AVX variants exist only when their TU was
// compiled in (reach them through variant_fn, never directly).
void unpack32_scalar(const std::uint64_t* words, std::size_t bit_begin,
                     unsigned width, std::size_t count,
                     std::uint32_t* out) noexcept;
void unpack32_avx2(const std::uint64_t* words, std::size_t bit_begin,
                   unsigned width, std::size_t count,
                   std::uint32_t* out) noexcept;
void unpack32_avx512(const std::uint64_t* words, std::size_t bit_begin,
                     unsigned width, std::size_t count,
                     std::uint32_t* out) noexcept;

}  // namespace detail

/// The dispatched batched unpack: decodes through whichever tier resolution
/// picked. Hot path is one relaxed load + one indirect call.
inline void unpack32(const std::uint64_t* words, std::size_t bit_begin,
                     unsigned width, std::size_t count, std::uint32_t* out) {
  UnpackFn32 fn = detail::g_unpack32.load(std::memory_order_relaxed);
  if (fn == nullptr) fn = detail::resolve_unpack32();
  fn(words, bit_begin, width, count, out);
}

}  // namespace pcq::bits::simd
